// Cross-module integration tests: behaviors that only hold when the whole
// stack (data -> partition -> topology -> engine -> energy -> metrics)
// works together.
package repro_test

import (
	"bytes"
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sim"
)

func integrationWorld(t *testing.T, nodes int, seed uint64) (*graph.Graph, *graph.Weights, dataset.Partition, *dataset.Dataset) {
	t.Helper()
	g, err := graph.Regular(nodes, 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dataset.SyntheticConfig{Classes: 8, Dim: 16, Train: nodes * 30, Test: 320, Noise: 1.5, Seed: seed}
	train, test, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	part, err := dataset.ShardPartition(train, nodes, 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g, graph.Metropolis(g), part, test
}

// TestGlobalModelCheckpointDeployment exercises the full deployment path:
// train decentralized, extract the consensus model, checkpoint it to bytes,
// load it into a fresh network, and verify it scores exactly the accuracy
// the engine reported.
func TestGlobalModelCheckpointDeployment(t *testing.T) {
	g, w, part, test := integrationWorld(t, 12, 31)
	factory := func(node int, r *rng.RNG) *nn.Network {
		return nn.LogisticRegression(16, 8, r)
	}
	res, err := sim.Run(sim.Config{
		Graph: g, Weights: w,
		Algo:         core.SkipTrain(core.Gamma{GammaTrain: 2, GammaSync: 2}),
		Rounds:       16,
		ModelFactory: factory,
		LR:           0.1, BatchSize: 8, LocalSteps: 3,
		Partition: part, Test: test,
		EvalEvery: 0, EvalGlobalModel: true,
		Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalGlobalParams == nil {
		t.Fatal("FinalGlobalParams missing with EvalGlobalModel set")
	}
	// Checkpoint through bytes.
	staging := factory(-1, rng.New(1))
	staging.SetParams(res.FinalGlobalParams)
	var buf bytes.Buffer
	if err := staging.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	deployed := factory(-1, rng.New(2))
	if err := deployed.LoadParams(&buf); err != nil {
		t.Fatal(err)
	}
	acc := deployed.Accuracy(test.Inputs(), test.Labels())
	if math.Abs(acc-res.FinalGlobalAcc) > 1e-12 {
		t.Fatalf("deployed model accuracy %.6f != engine-reported %.6f", acc, res.FinalGlobalAcc)
	}
	if acc < 1.0/8+0.1 {
		t.Fatalf("deployed model barely above chance: %.3f", acc)
	}
}

// TestFairnessReportFromConstrainedRun checks that the Section 5.1 analysis
// is computable from a real constrained run and that participation is
// measurably unequal when budgets are heterogeneous.
func TestFairnessReportFromConstrainedRun(t *testing.T) {
	g, w, part, test := integrationWorld(t, 12, 32)
	devices := energy.AssignDevices(12, energy.Devices())
	// Heterogeneous budgets: 2..13 rounds.
	taus := make([]int, 12)
	budgets := make([]float64, 12)
	groups := make([]string, 12)
	for i := range taus {
		taus[i] = 2 + i
		budgets[i] = float64(taus[i])
		groups[i] = devices[i].Name
	}
	gamma := core.Gamma{GammaTrain: 1, GammaSync: 1}
	res, err := sim.Run(sim.Config{
		Graph: g, Weights: w,
		Algo:   core.SkipTrainConstrained(gamma, 24, energy.NewBudget(taus), 12),
		Rounds: 24,
		ModelFactory: func(node int, r *rng.RNG) *nn.Network {
			return nn.LogisticRegression(16, 8, r)
		},
		LR: 0.1, BatchSize: 8, LocalSteps: 3,
		Partition: part, Test: test,
		EvalEvery: 0,
		Devices:   devices, Workload: energy.CIFAR10Workload(),
		Seed: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := metrics.NewFairnessReport(res.FinalNodeAccs, res.TrainedRounds, budgets, groups)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ParticipationGini <= 0 {
		t.Fatalf("heterogeneous budgets must yield positive participation Gini, got %v", rep.ParticipationGini)
	}
	if len(rep.AccByGroup) != 4 {
		t.Fatalf("expected 4 device groups, got %d", len(rep.AccByGroup))
	}
	if math.IsNaN(rep.BudgetAccCorr) {
		t.Fatal("budget-accuracy correlation is NaN")
	}
}

// TestSection51ExperimentRenders runs the packaged fairness experiment at
// tiny scale.
func TestSection51ExperimentRenders(t *testing.T) {
	var sb strings.Builder
	o := experiments.Options{
		Nodes: 16, Rounds: 16, Seed: 5, Out: &sb,
		LocalSteps: 2, BatchSize: 8, TrainPerNode: 20, TestSamples: 160, EvalSubsample: 80,
	}
	res, err := experiments.Section51Fairness(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Constrained == nil || res.Baseline == nil {
		t.Fatal("missing reports")
	}
	// D-PSGD trains everyone equally: its participation Gini is exactly 0,
	// and the constrained variant's is strictly larger.
	if res.Baseline.ParticipationGini != 0 {
		t.Fatalf("D-PSGD participation Gini = %v, want 0", res.Baseline.ParticipationGini)
	}
	if res.Constrained.ParticipationGini <= 0 {
		t.Fatal("constrained participation Gini should be positive")
	}
	if !strings.Contains(sb.String(), "participation Gini") {
		t.Fatalf("render incomplete:\n%s", sb.String())
	}
}

// TestExperimentLayerDeterminism runs a full paper experiment twice and
// requires identical results end to end.
func TestExperimentLayerDeterminism(t *testing.T) {
	o := experiments.Options{
		Nodes: 12, Rounds: 12, Seed: 9,
		LocalSteps: 2, BatchSize: 8, TrainPerNode: 20, TestSamples: 160, EvalSubsample: 80,
	}
	a, err := experiments.Figure5(o, []int{4}, []string{"cifar"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiments.Figure5(o, []int{4}, []string{"cifar"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Arms {
		if a.Arms[i].FinalAcc != b.Arms[i].FinalAcc {
			t.Fatalf("arm %d: %.6f vs %.6f", i, a.Arms[i].FinalAcc, b.Arms[i].FinalAcc)
		}
	}
}

// TestTraceFileDrivesExperiment ships traces through a file and runs an
// experiment with the reloaded devices, matching the built-in result.
func TestTraceFileDrivesExperiment(t *testing.T) {
	path := t.TempDir() + "/traces.csv"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := energy.WriteTraces(f, energy.Devices()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	loaded, err := energy.ReadTraces(rf)
	if err != nil {
		t.Fatal(err)
	}
	run := func(devices []energy.Device) float64 {
		g, w, part, test := integrationWorld(t, 8, 33)
		res, err := sim.Run(sim.Config{
			Graph: g, Weights: w,
			Algo:   core.DPSGD(),
			Rounds: 6,
			ModelFactory: func(node int, r *rng.RNG) *nn.Network {
				return nn.LogisticRegression(16, 8, r)
			},
			LR: 0.1, BatchSize: 8, LocalSteps: 2,
			Partition: part, Test: test,
			EvalEvery: 0,
			Devices:   energy.AssignDevices(8, devices),
			Workload:  energy.CIFAR10Workload(),
			Seed:      33,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalTrainWh
	}
	if a, b := run(energy.Devices()), run(loaded); math.Abs(a-b) > 1e-12 {
		t.Fatalf("trace-file devices give different energy: %v vs %v", a, b)
	}
}
