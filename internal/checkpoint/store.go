package checkpoint

import (
	"fmt"

	"repro/internal/tensor"
)

// Snapshot is one durable model image: the parameters a node held after its
// last completed aggregation, and the round that aggregation closed.
type Snapshot struct {
	// Round is the round whose aggregation produced Params. A node that
	// browned out before ever aggregating carries Round -1 (its
	// initialization snapshot).
	Round int
	// Params is the post-aggregation parameter vector. Loaded snapshots are
	// read-only: callers must copy before mutating.
	Params tensor.Vector
}

// Store persists per-node model snapshots across brown-outs. The engine
// drives a store strictly sequentially (snapshots happen in the round's
// phase-0 transition handling), so implementations need not be safe for
// concurrent use.
type Store interface {
	// Save persists node's post-aggregation parameters stamped with the
	// round that produced them, replacing any previous snapshot.
	Save(node, round int, params tensor.Vector) error
	// Load returns the node's latest snapshot. ok is false when the node
	// has never been snapshotted. The returned parameters are read-only.
	Load(node int) (snap Snapshot, ok bool, err error)
	// Nodes returns how many nodes the store covers.
	Nodes() int
}

// MemStore keeps snapshots in memory: the zero-cost store for simulations
// where durability inside one process is enough.
type MemStore struct {
	rounds []int
	params []tensor.Vector // nil until first Save
}

// NewMemStore returns an in-memory store covering n nodes.
func NewMemStore(n int) (*MemStore, error) {
	if n < 1 {
		return nil, fmt.Errorf("checkpoint: store needs >= 1 node, got %d", n)
	}
	return &MemStore{rounds: make([]int, n), params: make([]tensor.Vector, n)}, nil
}

// Nodes returns the number of nodes the store covers.
func (s *MemStore) Nodes() int { return len(s.params) }

// Save copies params into the node's snapshot slot.
func (s *MemStore) Save(node, round int, params tensor.Vector) error {
	if node < 0 || node >= len(s.params) {
		return fmt.Errorf("checkpoint: node %d outside store of %d", node, len(s.params))
	}
	if s.params[node] == nil || len(s.params[node]) != len(params) {
		s.params[node] = tensor.NewVector(len(params))
	}
	copy(s.params[node], params)
	s.rounds[node] = round
	return nil
}

// Load returns the node's snapshot without copying; treat it as read-only.
func (s *MemStore) Load(node int) (Snapshot, bool, error) {
	if node < 0 || node >= len(s.params) {
		return Snapshot{}, false, fmt.Errorf("checkpoint: node %d outside store of %d", node, len(s.params))
	}
	if s.params[node] == nil {
		return Snapshot{}, false, nil
	}
	return Snapshot{Round: s.rounds[node], Params: s.params[node]}, true, nil
}
