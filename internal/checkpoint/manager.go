package checkpoint

import (
	"fmt"

	"repro/internal/tensor"
)

// Manager binds a Store, a Tracker, and a RejoinRule into the hook the
// simulation engine drives: BeginRound turns the live mask into life-cycle
// events, Snapshot persists a dying node's last aggregated model, and Rule
// decides what a reviving node resumes with. The engine calls every method
// sequentially at the start of a round, so the manager holds no locks.
type Manager struct {
	store Store
	rule  RejoinRule
	tr    *Tracker
}

// NewManager returns a manager for n nodes. A nil store defaults to an
// in-memory store; the rule is required.
func NewManager(n int, store Store, rule RejoinRule) (*Manager, error) {
	if rule == nil {
		return nil, fmt.Errorf("checkpoint: nil rejoin rule")
	}
	if store == nil {
		var err error
		if store, err = NewMemStore(n); err != nil {
			return nil, err
		}
	}
	if store.Nodes() != n {
		return nil, fmt.Errorf("checkpoint: store covers %d nodes, manager needs %d", store.Nodes(), n)
	}
	tr, err := NewTracker(n)
	if err != nil {
		return nil, err
	}
	return &Manager{store: store, rule: rule, tr: tr}, nil
}

// Nodes returns the number of nodes the manager covers.
func (m *Manager) Nodes() int { return m.tr.Nodes() }

// Rule returns the configured rejoin rule.
func (m *Manager) Rule() RejoinRule { return m.rule }

// Store returns the backing snapshot store.
func (m *Manager) Store() Store { return m.store }

// Tracker returns the per-node staleness tracker.
func (m *Manager) Tracker() *Tracker { return m.tr }

// BeginRound ingests round t's live mask and returns this round's deaths
// and revivals (ascending node order, with staleness attached).
func (m *Manager) BeginRound(t int, live []bool) (died []int, revived []Revival) {
	return m.tr.Observe(t, live)
}

// Snapshot persists a node's post-aggregation parameters stamped with the
// round whose aggregation produced them.
func (m *Manager) Snapshot(node, round int, params tensor.Vector) error {
	return m.store.Save(node, round, params)
}

// Load returns the node's latest snapshot (read-only), ok false when none.
func (m *Manager) Load(node int) (Snapshot, bool, error) {
	return m.store.Load(node)
}
