package checkpoint

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// randomParams builds a parameter vector with a mix of ordinary and
// awkward-but-finite values, so round-trip checks exercise the codec's
// full bit range.
func randomParams(r *rng.RNG, n int) tensor.Vector {
	v := tensor.NewVector(n)
	for i := range v {
		switch r.Intn(8) {
		case 0:
			v[i] = 0
		case 1:
			v[i] = -0.0
		case 2:
			v[i] = math.SmallestNonzeroFloat64 * float64(1+r.Intn(100))
		case 3:
			v[i] = math.MaxFloat64 * r.Float64()
		default:
			v[i] = r.NormFloat64()
		}
	}
	return v
}

func sameBits(t *testing.T, want, got tensor.Vector) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("length %d != %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("param %d: %v (%#x) != %v (%#x)",
				i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// TestStoreRoundTripProperty is the round-trip property test: Save -> Load
// must be byte-identical for random networks, for both store kinds.
func TestStoreRoundTripProperty(t *testing.T) {
	r := rng.New(99)
	dir := t.TempDir()
	const nodes = 6
	mem, err := NewMemStore(nodes)
	if err != nil {
		t.Fatal(err)
	}
	file, err := NewFileStore(filepath.Join(dir, "store"), nodes)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		// A random network geometry each trial; its parameters are the
		// random init of nn.LogisticRegression plus adversarial values.
		dim, classes := 1+r.Intn(40), 2+r.Intn(10)
		net := nn.LogisticRegression(dim, classes, rng.Derive(99, uint64(trial)))
		params := randomParams(r, net.ParamCount())
		net.SetParams(params)
		want := tensor.NewVector(net.ParamCount())
		net.CopyParamsTo(want)

		node, round := trial%nodes, trial
		for name, store := range map[string]Store{"mem": mem, "file": file} {
			if err := store.Save(node, round, want); err != nil {
				t.Fatalf("%s save: %v", name, err)
			}
			snap, ok, err := store.Load(node)
			if err != nil || !ok {
				t.Fatalf("%s load: ok=%v err=%v", name, ok, err)
			}
			if snap.Round != round {
				t.Fatalf("%s round stamp %d, want %d", name, snap.Round, round)
			}
			sameBits(t, want, snap.Params)
		}
	}
}

func TestStoreValidatesAndMissReports(t *testing.T) {
	if _, err := NewMemStore(0); err == nil {
		t.Fatal("zero-node mem store should error")
	}
	if _, err := NewFileStore("", 4); err == nil {
		t.Fatal("empty dir should error")
	}
	if _, err := NewFileStore(t.TempDir(), 0); err == nil {
		t.Fatal("zero-node file store should error")
	}
	mem, _ := NewMemStore(2)
	file, _ := NewFileStore(t.TempDir(), 2)
	for name, store := range map[string]Store{"mem": mem, "file": file} {
		if store.Nodes() != 2 {
			t.Fatalf("%s covers %d nodes", name, store.Nodes())
		}
		if _, ok, err := store.Load(1); ok || err != nil {
			t.Fatalf("%s: unsnapshotted load ok=%v err=%v", name, ok, err)
		}
		if err := store.Save(2, 0, tensor.NewVector(3)); err == nil {
			t.Fatalf("%s: out-of-range save should error", name)
		}
		if _, _, err := store.Load(-1); err == nil {
			t.Fatalf("%s: out-of-range load should error", name)
		}
	}
}

func TestFileStoreNegativeRoundAndOverwrite(t *testing.T) {
	s, err := NewFileStore(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// A node that dies before ever aggregating is stamped -1.
	if err := s.Save(0, -1, tensor.Vector{1, 2}); err != nil {
		t.Fatal(err)
	}
	snap, ok, err := s.Load(0)
	if err != nil || !ok || snap.Round != -1 {
		t.Fatalf("round stamp %d ok=%v err=%v, want -1", snap.Round, ok, err)
	}
	// Overwrite replaces, never appends.
	if err := s.Save(0, 7, tensor.Vector{3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	snap, _, _ = s.Load(0)
	if snap.Round != 7 || len(snap.Params) != 3 || snap.Params[2] != 5 {
		t.Fatalf("overwrite failed: %+v", snap)
	}
}

func TestFileStoreDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(0, 3, tensor.Vector{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "node-0000.ckpt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0xff // flip a param byte; crc must catch it
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(0); err == nil {
		t.Fatal("corrupted snapshot loaded without error")
	}
}

func TestTrackerLifecycle(t *testing.T) {
	tr, err := NewTracker(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTracker(0); err == nil {
		t.Fatal("zero-node tracker should error")
	}
	// Round 0: node 2 starts dead (presumed live before round 0 -> death).
	died, revived := tr.Observe(0, []bool{true, true, false})
	if len(died) != 1 || died[0] != 2 || len(revived) != 0 {
		t.Fatalf("round 0: died=%v revived=%v", died, revived)
	}
	// Round 1: node 0 dies; nil-mask shorthand not used here.
	died, revived = tr.Observe(1, []bool{false, true, false})
	if len(died) != 1 || died[0] != 0 || len(revived) != 0 {
		t.Fatalf("round 1: died=%v revived=%v", died, revived)
	}
	if !tr.Dead(0) || tr.Dead(1) || !tr.Dead(2) {
		t.Fatal("dead mask wrong after round 1")
	}
	// Round 4: everyone back. Node 0 missed rounds 1-3 (staleness 3);
	// node 2 missed rounds 0-3 (staleness 4, never live).
	died, revived = tr.Observe(4, nil)
	if len(died) != 0 || len(revived) != 2 {
		t.Fatalf("round 4: died=%v revived=%v", died, revived)
	}
	if revived[0] != (Revival{Node: 0, Staleness: 3}) {
		t.Fatalf("node 0 revival %+v", revived[0])
	}
	if revived[1] != (Revival{Node: 2, Staleness: 4}) {
		t.Fatalf("node 2 revival %+v", revived[1])
	}
	if tr.LastLive(1) != 4 || tr.LastLive(0) != 4 {
		t.Fatal("lastLive not advanced")
	}
	// Dead for exactly one round -> staleness 1.
	tr.Observe(5, []bool{false, true, true})
	_, revived = tr.Observe(6, nil)
	if len(revived) != 1 || revived[0] != (Revival{Node: 0, Staleness: 1}) {
		t.Fatalf("one-round outage revival %+v", revived)
	}
}

func TestTrackerRejectsNonIncreasingRounds(t *testing.T) {
	tr, err := NewTracker(2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.LastObserved() != -1 {
		t.Fatalf("fresh tracker observed %d", tr.LastObserved())
	}
	tr.Observe(3, nil)
	if tr.LastObserved() != 3 {
		t.Fatalf("LastObserved = %d, want 3", tr.LastObserved())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Observe going backwards must panic")
		}
	}()
	tr.Observe(3, nil)
}

// TestCatchUpWeightsConvexProperty is the convexity property test: for 1k
// random staleness draws (and random half-lives) the blend weights are
// non-negative and sum to exactly 1.
func TestCatchUpWeightsConvexProperty(t *testing.T) {
	r := rng.New(1234)
	for trial := 0; trial < 1000; trial++ {
		halfLife := 0.1 + 20*r.Float64()
		c, err := NewCatchUp(halfLife)
		if err != nil {
			t.Fatal(err)
		}
		s := r.Intn(10000)
		wSnap, wNbr := c.Weights(s)
		if wSnap < 0 || wNbr < 0 {
			t.Fatalf("h=%v s=%d: negative weight (%v, %v)", halfLife, s, wSnap, wNbr)
		}
		if wSnap+wNbr != 1 {
			t.Fatalf("h=%v s=%d: weights sum to %v, want exactly 1", halfLife, s, wSnap+wNbr)
		}
		if wSnap > 1 {
			t.Fatalf("h=%v s=%d: snapshot weight %v > 1", halfLife, s, wSnap)
		}
	}
	// Half-life semantics: at s = halfLife the node trusts both sides equally.
	c, _ := NewCatchUp(4)
	if w, _ := c.Weights(4); math.Abs(w-0.5) > 1e-15 {
		t.Fatalf("at one half-life w=%v, want 0.5", w)
	}
	// Monotone decay.
	prev := math.Inf(1)
	for s := 0; s < 50; s++ {
		w, _ := c.Weights(s)
		if w >= prev {
			t.Fatalf("weight not strictly decaying at s=%d", s)
		}
		prev = w
	}
	if _, err := NewCatchUp(0); err == nil {
		t.Fatal("zero half-life should error")
	}
	if _, err := NewCatchUp(math.Inf(1)); err == nil {
		t.Fatal("infinite half-life should error")
	}
}

func TestRulesApplySemantics(t *testing.T) {
	current := tensor.Vector{1, 1}
	snapshot := tensor.Vector{1, 1} // own snapshot == frozen state by construction
	nbr := tensor.Vector{3, 5}
	dst := tensor.NewVector(2)
	rj := Rejoin{Node: 0, Round: 10, Staleness: 2, Current: current, Snapshot: snapshot, NeighborMean: nbr}

	if restored := (ResumeStale{}).Apply(dst, rj); restored {
		t.Fatal("resume-stale claims to restore")
	}
	sameVec(t, dst, tensor.Vector{1, 1})

	if restored := (RestoreCheckpoint{}).Apply(dst, rj); !restored {
		t.Fatal("restore-checkpoint with live neighbors must restore")
	}
	sameVec(t, dst, nbr)

	// Isolated revival falls back to the durable snapshot — which equals
	// the frozen state, so it does not count as replacing it.
	iso := rj
	iso.NeighborMean = nil
	if restored := (RestoreCheckpoint{}).Apply(dst, iso); restored {
		t.Fatal("isolated snapshot fallback must not count as a restore")
	}
	sameVec(t, dst, snapshot)
	iso.Snapshot = nil
	if restored := (RestoreCheckpoint{}).Apply(dst, iso); restored {
		t.Fatal("nothing to restore from must report false")
	}

	// CatchUp at one half-life: exact midpoint.
	c, _ := NewCatchUp(2)
	if restored := c.Apply(dst, rj); !restored {
		t.Fatal("catch-up with neighbors must restore")
	}
	sameVec(t, dst, tensor.Vector{0.5*1 + 0.5*3, 0.5*1 + 0.5*5})
	// No neighbors: pure snapshot, no restore claimed.
	if restored := c.Apply(dst, iso); restored {
		t.Fatal("catch-up without neighbors or snapshot cannot restore")
	}
}

func TestRuleByName(t *testing.T) {
	for name, want := range map[string]string{
		"stale":   "resume-stale",
		"restore": "restore-checkpoint",
		"catchup": "catch-up(h=2)",
	} {
		rule, err := RuleByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if rule.Name() != want {
			t.Fatalf("%s -> %s, want %s", name, rule.Name(), want)
		}
	}
	if _, err := RuleByName("nope"); err == nil {
		t.Fatal("unknown rule should error")
	}
}

func TestManagerWiring(t *testing.T) {
	if _, err := NewManager(4, nil, nil); err == nil {
		t.Fatal("nil rule should error")
	}
	small, _ := NewMemStore(2)
	if _, err := NewManager(4, small, ResumeStale{}); err == nil {
		t.Fatal("store/manager size mismatch should error")
	}
	m, err := NewManager(4, nil, ResumeStale{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes() != 4 || m.Store().Nodes() != 4 || m.Rule().Name() != "resume-stale" {
		t.Fatal("manager accessors wrong")
	}
	died, revived := m.BeginRound(0, []bool{true, false, true, true})
	if len(died) != 1 || died[0] != 1 || len(revived) != 0 {
		t.Fatalf("round 0 events: died=%v revived=%v", died, revived)
	}
	if err := m.Snapshot(1, -1, tensor.Vector{9}); err != nil {
		t.Fatal(err)
	}
	snap, ok, err := m.Load(1)
	if err != nil || !ok || snap.Round != -1 || snap.Params[0] != 9 {
		t.Fatalf("manager load %+v ok=%v err=%v", snap, ok, err)
	}
	_, revived = m.BeginRound(1, nil)
	if len(revived) != 1 || revived[0] != (Revival{Node: 1, Staleness: 1}) {
		t.Fatalf("revival %+v", revived)
	}
	if m.Tracker().LastLive(1) != 1 {
		t.Fatal("tracker not advanced through manager")
	}
}

func sameVec(t *testing.T, got, want tensor.Vector) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vector %v, want %v", got, want)
		}
	}
}
