package checkpoint

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// FileStore persists snapshots to disk, one file per node, in the nn
// checkpoint format prefixed with an 8-byte round stamp. It is the durable
// store an intermittently-powered deployment would back with flash: a node
// that loses volatile state in a brown-out restores from here.
//
// Writes are atomic (temp file + rename), so a power failure mid-save
// leaves the previous snapshot intact — the property the whole subsystem
// exists to provide.
type FileStore struct {
	dir string
	n   int
}

// NewFileStore returns a file-backed store for n nodes rooted at dir,
// creating the directory if needed. Snapshots already present in dir (from
// an earlier process) remain loadable.
func NewFileStore(dir string, n int) (*FileStore, error) {
	if n < 1 {
		return nil, fmt.Errorf("checkpoint: store needs >= 1 node, got %d", n)
	}
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create store dir: %w", err)
	}
	return &FileStore{dir: dir, n: n}, nil
}

// Nodes returns the number of nodes the store covers.
func (s *FileStore) Nodes() int { return s.n }

// Dir returns the directory snapshots are written under.
func (s *FileStore) Dir() string { return s.dir }

func (s *FileStore) path(node int) string {
	return filepath.Join(s.dir, fmt.Sprintf("node-%04d.ckpt", node))
}

// Save writes the node's snapshot atomically: round stamp, then the nn
// checkpoint encoding of params.
func (s *FileStore) Save(node, round int, params tensor.Vector) error {
	if node < 0 || node >= s.n {
		return fmt.Errorf("checkpoint: node %d outside store of %d", node, s.n)
	}
	tmp, err := os.CreateTemp(s.dir, "ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: save node %d: %w", node, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	var stamp [8]byte
	binary.LittleEndian.PutUint64(stamp[:], uint64(int64(round)))
	if _, err := tmp.Write(stamp[:]); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: save node %d: %w", node, err)
	}
	if err := nn.WriteVector(tmp, params); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: save node %d: %w", node, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: save node %d: %w", node, err)
	}
	if err := os.Rename(tmp.Name(), s.path(node)); err != nil {
		return fmt.Errorf("checkpoint: save node %d: %w", node, err)
	}
	return nil
}

// Load reads the node's snapshot file; ok is false when none exists.
func (s *FileStore) Load(node int) (Snapshot, bool, error) {
	if node < 0 || node >= s.n {
		return Snapshot{}, false, fmt.Errorf("checkpoint: node %d outside store of %d", node, s.n)
	}
	f, err := os.Open(s.path(node))
	if os.IsNotExist(err) {
		return Snapshot{}, false, nil
	}
	if err != nil {
		return Snapshot{}, false, fmt.Errorf("checkpoint: load node %d: %w", node, err)
	}
	defer f.Close()
	var stamp [8]byte
	if _, err := io.ReadFull(f, stamp[:]); err != nil {
		return Snapshot{}, false, fmt.Errorf("checkpoint: load node %d: %w", node, err)
	}
	params, err := nn.ReadVector(f)
	if err != nil {
		return Snapshot{}, false, fmt.Errorf("checkpoint: load node %d: %w", node, err)
	}
	return Snapshot{Round: int(int64(binary.LittleEndian.Uint64(stamp[:]))), Params: params}, true, nil
}
