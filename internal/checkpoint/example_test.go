package checkpoint_test

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/tensor"
)

// Example walks a three-node neighborhood through a death and a rejoin:
// node 1 browns out at round 3, misses two rounds, and comes back under the
// CatchUp rule, which blends its durable snapshot with its live neighbors'
// mean, discounting the snapshot by staleness.
func Example() {
	rule, _ := checkpoint.NewCatchUp(2) // trust halves every 2 rounds dead
	m, _ := checkpoint.NewManager(3, nil, rule)

	// Rounds 0-2: everyone live.
	for t := 0; t < 3; t++ {
		m.BeginRound(t, nil)
	}

	// Round 3: node 1's battery crosses the cutoff. The engine snapshots
	// its post-aggregation model from round 2 at the death transition.
	died, _ := m.BeginRound(3, []bool{true, false, true})
	fmt.Println("died:", died)
	m.Snapshot(1, 2, tensor.Vector{1, 1})

	// Round 4: still dead. Round 5: recharged — staleness is 2 (missed
	// rounds 3 and 4).
	m.BeginRound(4, []bool{true, false, true})
	_, revived := m.BeginRound(5, nil)
	fmt.Printf("revived: node %d, staleness %d\n", revived[0].Node, revived[0].Staleness)

	// The engine hands the rule the frozen state, the snapshot, and the
	// continuously-live neighbors' mean; at one half-life per side the
	// blend is exactly 50/50.
	snap, _, _ := m.Load(1)
	resumed := tensor.NewVector(2)
	rule.Apply(resumed, checkpoint.Rejoin{
		Node: 1, Round: 5, Staleness: revived[0].Staleness,
		Current:  snap.Params, // frozen in RAM == own durable snapshot
		Snapshot: snap.Params, SnapshotRound: snap.Round,
		NeighborMean: tensor.Vector{3, 5},
	})
	fmt.Println("resumes with:", resumed)
	// Output:
	// died: [1]
	// revived: node 1, staleness 2
	// resumes with: [2 3]
}
