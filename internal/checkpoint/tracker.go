package checkpoint

import "fmt"

// Revival records one node coming back from a brown-out.
type Revival struct {
	Node int
	// Staleness is how many rounds the node missed while dead: the revival
	// round minus one, minus the last round it completed live. A node that
	// revives after being dead for exactly one round has staleness 1.
	Staleness int
}

// Tracker watches the per-round live mask and turns it into discrete
// life-cycle events: deaths (live -> dead) and revivals (dead -> live),
// with per-node staleness. All nodes are presumed live before round 0, so
// a fleet that starts with drained batteries registers its deaths on the
// first observed round.
type Tracker struct {
	lastLive  []int // last round node i completed live; -1 before any
	dead      []bool
	lastRound int // last round fed to Observe; -1 before any
}

// NewTracker returns a tracker for n nodes.
func NewTracker(n int) (*Tracker, error) {
	if n < 1 {
		return nil, fmt.Errorf("checkpoint: tracker needs >= 1 node, got %d", n)
	}
	tr := &Tracker{lastLive: make([]int, n), dead: make([]bool, n), lastRound: -1}
	for i := range tr.lastLive {
		tr.lastLive[i] = -1
	}
	return tr, nil
}

// LastObserved returns the last round fed to Observe, -1 before any. A
// tracker (and the manager holding it) is single-run state: the engine
// rejects one that has already observed rounds.
func (tr *Tracker) LastObserved() int { return tr.lastRound }

// Nodes returns the number of tracked nodes.
func (tr *Tracker) Nodes() int { return len(tr.dead) }

// Dead reports whether node i was dead at the last observed round.
func (tr *Tracker) Dead(i int) bool { return tr.dead[i] }

// LastLive returns the last round node i completed live (-1 before any).
func (tr *Tracker) LastLive(i int) int { return tr.lastLive[i] }

// Observe ingests round t's live mask (nil means all live) and returns the
// nodes that died and revived this round, in ascending node order. Observe
// must be called once per round with t strictly increasing; going
// backwards (reusing a tracker across runs) panics, because the staleness
// bookkeeping would silently go negative.
func (tr *Tracker) Observe(t int, live []bool) (died []int, revived []Revival) {
	if t <= tr.lastRound {
		panic(fmt.Sprintf("checkpoint: Observe(%d) after round %d; trackers are single-run state", t, tr.lastRound))
	}
	tr.lastRound = t
	for i := range tr.dead {
		alive := live == nil || live[i]
		switch {
		case alive && tr.dead[i]:
			revived = append(revived, Revival{Node: i, Staleness: t - 1 - tr.lastLive[i]})
		case !alive && !tr.dead[i]:
			died = append(died, i)
		}
		tr.dead[i] = !alive
		if alive {
			tr.lastLive[i] = t
		}
	}
	return died, revived
}
