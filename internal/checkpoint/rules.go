package checkpoint

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Rejoin is everything a rejoin rule may draw on when a node comes back
// from a brown-out. All vectors share the model's parameter length and are
// read-only; a rule writes its decision into the destination it is given.
type Rejoin struct {
	Node      int
	Round     int // the round the node revives at
	Staleness int // rounds missed while dead (>= 1)

	// Current is the node's frozen in-RAM state: its post-aggregation
	// parameters from its last live round, held unchanged through the
	// outage. Under the drop-dead engine this is bit-identical to the
	// node's own durable snapshot, which is why beating ResumeStale
	// requires neighborhood information.
	Current tensor.Vector
	// Snapshot is the node's own durable snapshot (nil when it was never
	// checkpointed) and SnapshotRound the round that produced it.
	Snapshot      tensor.Vector
	SnapshotRound int
	// NeighborMean is the mean of the current post-aggregation models of
	// the node's continuously-live neighbors — the freshest aggregated
	// state reachable at revival. Nil when the node revives isolated (no
	// neighbor was live both this round and last).
	NeighborMean tensor.Vector
}

// RejoinRule decides what parameters a node resumes with after a brown-out.
type RejoinRule interface {
	// Name identifies the rule in reports and CLI flags.
	Name() string
	// Apply writes the parameters the node resumes with into dst and
	// reports whether it replaced the stale in-RAM state (false means the
	// node resumes exactly where it froze).
	Apply(dst tensor.Vector, rj Rejoin) bool
}

// ResumeStale is the baseline — the engine's behavior before the
// checkpoint subsystem existed: the node resumes from the parameters
// frozen at its death and immediately trains on them, however many rounds
// old they are.
type ResumeStale struct{}

// Name returns "resume-stale".
func (ResumeStale) Name() string { return "resume-stale" }

// Apply keeps the frozen parameters.
func (ResumeStale) Apply(dst tensor.Vector, rj Rejoin) bool {
	copy(dst, rj.Current)
	return false
}

// RestoreCheckpoint resumes from the last aggregated snapshot reachable at
// revival: the mean of the continuously-live neighbors' current models —
// the decentralized analogue of re-fetching the model from a live peer on
// rejoin — falling back to the node's own durable snapshot when it revives
// isolated. A node's own snapshot alone equals its frozen state (see
// Rejoin.Current), so the neighborhood is where freshness comes from.
type RestoreCheckpoint struct{}

// Name returns "restore-checkpoint".
func (RestoreCheckpoint) Name() string { return "restore-checkpoint" }

// Apply restores the freshest aggregated state available. The isolated
// fallback copies the node's own snapshot, which is bit-identical to the
// frozen state, so only a neighborhood restore counts as replacing it —
// keeping the Restores metric comparable across rules.
func (RestoreCheckpoint) Apply(dst tensor.Vector, rj Rejoin) bool {
	switch {
	case rj.NeighborMean != nil:
		copy(dst, rj.NeighborMean)
		return true
	case rj.Snapshot != nil:
		copy(dst, rj.Snapshot)
		return false
	default:
		copy(dst, rj.Current)
		return false
	}
}

// CatchUp blends the node's own snapshot with its live neighbors' mean,
// discounting the snapshot by how stale it is:
//
//	w(s)      = 2^(-s / HalfLife)
//	x_rejoin  = w(s) * x_snapshot + (1 - w(s)) * x̄_neighbors
//
// A node dead for one half-life keeps half of its own state; one dead for
// many half-lives effectively re-syncs to its neighborhood. The weights
// are convex for every staleness s >= 0: w ∈ (0, 1] and the pair sums to
// exactly 1.
type CatchUp struct {
	halfLife float64
}

// DefaultHalfLife is the staleness (in rounds) at which CatchUp trusts its
// own snapshot and its neighborhood equally.
const DefaultHalfLife = 2.0

// NewCatchUp returns a CatchUp rule with the given half-life in rounds.
func NewCatchUp(halfLife float64) (*CatchUp, error) {
	if halfLife <= 0 || math.IsNaN(halfLife) || math.IsInf(halfLife, 0) {
		return nil, fmt.Errorf("checkpoint: catch-up half-life %v must be positive and finite", halfLife)
	}
	return &CatchUp{halfLife: halfLife}, nil
}

// Name returns e.g. "catch-up(h=2)".
func (c *CatchUp) Name() string { return fmt.Sprintf("catch-up(h=%g)", c.halfLife) }

// Weights returns the convex blend (wSnapshot, wNeighbors) for a given
// staleness: wSnapshot decays exponentially in rounds-dead and the pair
// always sums to exactly 1 with both terms non-negative.
func (c *CatchUp) Weights(staleness int) (wSnapshot, wNeighbors float64) {
	if staleness < 0 {
		staleness = 0
	}
	wSnapshot = math.Exp2(-float64(staleness) / c.halfLife)
	return wSnapshot, 1 - wSnapshot
}

// Apply blends snapshot and neighborhood. Without live neighbors there is
// nothing to catch up to and the node resumes from its snapshot (or frozen
// state); without a snapshot the frozen state stands in for it.
func (c *CatchUp) Apply(dst tensor.Vector, rj Rejoin) bool {
	base := rj.Snapshot
	if base == nil {
		base = rj.Current
	}
	if rj.NeighborMean == nil {
		copy(dst, base)
		return false
	}
	wSnap, wNbr := c.Weights(rj.Staleness)
	tensor.ScaleTo(dst, wSnap, base)
	tensor.AXPY(dst, wNbr, rj.NeighborMean)
	return true
}

// RuleByName maps a CLI/table name to a rule: "stale", "restore", or
// "catchup" (the latter with DefaultHalfLife).
func RuleByName(name string) (RejoinRule, error) {
	switch name {
	case "stale":
		return ResumeStale{}, nil
	case "restore":
		return RestoreCheckpoint{}, nil
	case "catchup":
		return NewCatchUp(DefaultHalfLife)
	default:
		return nil, fmt.Errorf("checkpoint: unknown rejoin rule %q (want stale, restore, or catchup)", name)
	}
}
