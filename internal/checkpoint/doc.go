// Package checkpoint gives brown-outs a memory model: it persists each
// node's last post-aggregation parameters across power failures and decides
// what a node resumes with when its battery recovers.
//
// The simulation engine (internal/sim) freezes a browned-out node: no
// training, no sends, no receives, model held until the battery climbs back
// over its cutoff. Intermittent-computing systems show that on-device
// learners must persist state across power failures to make progress at
// all, and that how a node rejoins dominates convergence under energy
// harvesting. This package supplies both halves:
//
//   - A Store (MemStore in memory, FileStore on disk reusing the nn
//     checkpoint codec with atomic writes) that snapshots a node's
//     post-aggregation model and round stamp at its death transition.
//
//   - A Tracker that turns the per-round live mask into discrete deaths and
//     revivals, with per-node staleness (rounds missed while dead).
//
//   - A family of RejoinRule strategies applied at revival:
//
//     ResumeStale        resume from the parameters frozen at death — the
//     pre-checkpoint engine behavior and the baseline.
//     RestoreCheckpoint  resume from the last aggregated snapshot reachable
//     at revival: the continuously-live neighbors' mean
//     (own durable snapshot when reviving isolated).
//     CatchUp            staleness-discounted convex blend,
//     w(s)·snapshot + (1−w(s))·neighborMean with
//     w(s) = 2^(−s/halfLife).
//
// A deliberate subtlety: under the drop-dead engine a node's own durable
// snapshot is bit-identical to its frozen in-RAM state, so restoring it
// alone can never beat ResumeStale. What the checkpoint layer buys is the
// trustworthy round stamp — the staleness the rules discount by — and the
// durable rendezvous point; the freshness that actually improves rejoin
// accuracy comes from the live neighborhood.
//
// Wire a Manager into a run through sim.Config.Checkpoint (requires
// DropDeadNodes); experiments.TableRejoin compares the three rules across
// harvest regimes, and cmd/harvestsim exposes them as -rejoin/-ckptdir.
// See docs/ARCHITECTURE.md, section "Death, checkpoint, rejoin".
package checkpoint
