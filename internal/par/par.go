// Package par holds the engine's worker fan-out primitive, shared by the
// simulation phases (internal/sim), the fleet round close-out
// (internal/harvest), and the sweep scheduler (internal/sweep). Callers
// guarantee fn(i) touches index-i state only, which makes results
// bit-identical to a serial loop regardless of worker count or scheduling.
package par

import (
	"runtime"
	"sync"
)

// Pool is a bounded fan-out executor: every For/ForErr call it serves runs
// at most Workers() bodies concurrently. The zero value and a nil *Pool
// both behave like NewPool(0) — one worker per GOMAXPROCS, resolved at
// call time — so callers can thread an optional *Pool without nil checks.
//
// A Pool carries no goroutines or queues of its own; it is a concurrency
// bound, cheap to copy and safe for concurrent use. Determinism contract:
// results and errors land in per-index slots, so the outcome of a call is
// independent of the worker count and of scheduling order.
type Pool struct {
	workers int
}

// NewPool returns a pool bounded to the given worker count. workers <= 0
// means "track GOMAXPROCS at call time", matching the historical behavior
// of the package-level For/ForErr.
func NewPool(workers int) *Pool {
	if workers < 0 {
		workers = 0
	}
	return &Pool{workers: workers}
}

// Workers reports the concurrency bound: the configured worker count, or
// the current GOMAXPROCS for an unbounded (zero/nil) pool.
func (p *Pool) Workers() int {
	if p == nil || p.workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.workers
}

// For runs fn(0..n-1) across the pool's workers and waits. Workloads with
// fewer than minSerial items take the serial path outright — goroutine
// fan-out only pays for itself above a caller-known size (use 0 to always
// fan out).
func (p *Pool) For(n, minSerial int, fn func(i int)) {
	p.forIndices(n, minSerial, fn)
}

// ForErr is For with a fallible body: every fn(i) runs to completion (no
// early cancellation, so side effects into preallocated index-i slots stay
// deterministic) and the lowest-index error is returned. Errors land in
// per-index slots, which keeps the result independent of worker count and
// scheduling — the property the experiment grids pin with their
// GOMAXPROCS tests.
func (p *Pool) ForErr(n, minSerial int, fn func(i int) error) error {
	errs := make([]error, n)
	p.forIndices(n, minSerial, func(i int) {
		errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// For runs fn on the default (GOMAXPROCS-wide) pool. See Pool.For.
func For(n, minSerial int, fn func(i int)) {
	(*Pool)(nil).For(n, minSerial, fn)
}

// ForErr runs fn on the default (GOMAXPROCS-wide) pool. See Pool.ForErr.
func ForErr(n, minSerial int, fn func(i int) error) error {
	return (*Pool)(nil).ForErr(n, minSerial, fn)
}

func (p *Pool) forIndices(n, minSerial int, fn func(i int)) {
	workers := p.Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minSerial {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	wg.Wait()
}
