// Package par holds the engine's worker fan-out primitive, shared by the
// simulation phases (internal/sim) and the fleet round close-out
// (internal/harvest). Callers guarantee fn(i) touches index-i state only,
// which makes results bit-identical to a serial loop regardless of worker
// count or scheduling.
package par

import (
	"runtime"
	"sync"
)

// For runs fn(0..n-1) across GOMAXPROCS workers and waits. Workloads with
// fewer than minSerial items take the serial path outright — goroutine
// fan-out only pays for itself above a caller-known size (use 0 to always
// fan out).
func For(n, minSerial int, fn func(i int)) {
	forIndices(n, minSerial, fn)
}

// ForErr is For with a fallible body: every fn(i) runs to completion (no
// early cancellation, so side effects into preallocated index-i slots stay
// deterministic) and the lowest-index error is returned. Errors land in
// per-index slots, which keeps the result independent of worker count and
// scheduling — the property the experiment grids pin with their
// GOMAXPROCS tests.
func ForErr(n, minSerial int, fn func(i int) error) error {
	errs := make([]error, n)
	forIndices(n, minSerial, func(i int) {
		errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func forIndices(n, minSerial int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minSerial {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	wg.Wait()
}
