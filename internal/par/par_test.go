package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, minSerial := range []int{0, 1000} { // parallel and serial paths
		counts := make([]int64, 257)
		For(len(counts), minSerial, func(i int) { atomic.AddInt64(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("minSerial=%d: index %d visited %d times", minSerial, i, c)
			}
		}
	}
	For(0, 0, func(int) { t.Fatal("must not call fn for n=0") })
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	for _, minSerial := range []int{0, 1000} { // parallel and serial paths
		var calls int64
		err := ForErr(64, minSerial, func(i int) error {
			atomic.AddInt64(&calls, 1)
			if i == 7 || i == 41 {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 7 failed" {
			t.Fatalf("minSerial=%d: err = %v, want the lowest-index error", minSerial, err)
		}
		// No early cancellation: every index still ran.
		if calls != 64 {
			t.Fatalf("minSerial=%d: %d calls, want 64", minSerial, calls)
		}
	}
}

func TestForErrNilOnSuccess(t *testing.T) {
	if err := ForErr(16, 0, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForErr(0, 0, func(int) error { return errors.New("no") }); err != nil {
		t.Fatal("n=0 must not call fn")
	}
}
