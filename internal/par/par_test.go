package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, minSerial := range []int{0, 1000} { // parallel and serial paths
		counts := make([]int64, 257)
		For(len(counts), minSerial, func(i int) { atomic.AddInt64(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("minSerial=%d: index %d visited %d times", minSerial, i, c)
			}
		}
	}
	For(0, 0, func(int) { t.Fatal("must not call fn for n=0") })
}
