package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, minSerial := range []int{0, 1000} { // parallel and serial paths
		counts := make([]int64, 257)
		For(len(counts), minSerial, func(i int) { atomic.AddInt64(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("minSerial=%d: index %d visited %d times", minSerial, i, c)
			}
		}
	}
	For(0, 0, func(int) { t.Fatal("must not call fn for n=0") })
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	for _, minSerial := range []int{0, 1000} { // parallel and serial paths
		var calls int64
		err := ForErr(64, minSerial, func(i int) error {
			atomic.AddInt64(&calls, 1)
			if i == 7 || i == 41 {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 7 failed" {
			t.Fatalf("minSerial=%d: err = %v, want the lowest-index error", minSerial, err)
		}
		// No early cancellation: every index still ran.
		if calls != 64 {
			t.Fatalf("minSerial=%d: %d calls, want 64", minSerial, calls)
		}
	}
}

func TestForErrNilOnSuccess(t *testing.T) {
	if err := ForErr(16, 0, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForErr(0, 0, func(int) error { return errors.New("no") }); err != nil {
		t.Fatal("n=0 must not call fn")
	}
}

// A bounded pool must never run more bodies concurrently than its worker
// count, and must still cover every index exactly once.
func TestPoolBoundsConcurrency(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := NewPool(workers)
		if got := p.Workers(); got != workers {
			t.Fatalf("NewPool(%d).Workers() = %d", workers, got)
		}
		var inFlight, peak int64
		counts := make([]int64, 200)
		p.For(len(counts), 0, func(i int) {
			cur := atomic.AddInt64(&inFlight, 1)
			for {
				old := atomic.LoadInt64(&peak)
				if cur <= old || atomic.CompareAndSwapInt64(&peak, old, cur) {
					break
				}
			}
			atomic.AddInt64(&counts[i], 1)
			atomic.AddInt64(&inFlight, -1)
		})
		if peak > int64(workers) {
			t.Fatalf("workers=%d: observed %d concurrent bodies", workers, peak)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

// Results written to per-index slots must be identical across worker
// counts — the order-independence contract the sweep scheduler relies on.
func TestPoolResultsOrderIndependent(t *testing.T) {
	compute := func(p *Pool) ([]float64, error) {
		out := make([]float64, 128)
		err := p.ForErr(len(out), 0, func(i int) error {
			out[i] = float64(i*i) / 7
			if i%31 == 5 {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		return out, err
	}
	ref, refErr := compute(NewPool(1))
	for _, workers := range []int{2, 4, 16} {
		got, err := compute(NewPool(workers))
		if (err == nil) != (refErr == nil) || (err != nil && err.Error() != refErr.Error()) {
			t.Fatalf("workers=%d: err = %v, serial err = %v", workers, err, refErr)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d] = %v, serial = %v", workers, i, got[i], ref[i])
			}
		}
	}
}

// Nil and zero-valued pools fall back to the GOMAXPROCS-wide default, so
// an optional *Pool field needs no nil checks at call sites.
func TestNilPoolActsAsDefault(t *testing.T) {
	var p *Pool
	if p.Workers() < 1 {
		t.Fatalf("nil pool workers = %d", p.Workers())
	}
	var calls int64
	p.For(32, 0, func(int) { atomic.AddInt64(&calls, 1) })
	if calls != 32 {
		t.Fatalf("nil pool ran %d of 32 bodies", calls)
	}
	zero := &Pool{}
	if zero.Workers() < 1 {
		t.Fatalf("zero pool workers = %d", zero.Workers())
	}
	if NewPool(-3).Workers() < 1 {
		t.Fatal("negative worker count must clamp to the default")
	}
}
