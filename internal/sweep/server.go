package sweep

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/transport"
)

// Handler computes one registered workload. It receives a job-scoped
// Runner (shared cache and pool, per-job stats and progress probe) and
// the request's raw parameters; the returned value is JSON-encoded into
// the reply. Handlers run one per connection at a time but concurrently
// across connections, so they must not share mutable state outside the
// Runner.
type Handler func(r *Runner, params json.RawMessage) (any, error)

// Server is the sweepd core: it accepts connections, reads job frames,
// dispatches registered handlers through a shared memoizing Runner, and
// streams per-cell progress back to the submitting client.
type Server struct {
	ln     net.Listener
	runner *Runner

	mu       sync.Mutex
	handlers map[string]Handler
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer listens on addr (host:port, ":0" for an OS-assigned port) and
// schedules cells over the given store and pool.
func NewServer(addr string, store Store, pool *par.Pool) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sweep: listen %s: %w", addr, err)
	}
	return &Server{
		ln:       ln,
		runner:   NewRunner(store, pool),
		handlers: map[string]Handler{},
		conns:    map[net.Conn]struct{}{},
	}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Runner returns the server's shared scheduler handle (its stats
// accumulate across all jobs).
func (s *Server) Runner() *Runner { return s.runner }

// Handle registers a workload under kind. Registrations must complete
// before Serve.
func (s *Server) Handle(kind string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[kind] = h
}

// Serve accepts and serves connections until Close; it returns nil after
// a clean shutdown.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("sweep: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Close stops the listener, closes live connections, and waits for their
// handlers to return. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	wmu := &connWriteMu{}
	for {
		m, err := transport.ReadMessage(conn)
		if err != nil {
			return // client went away or stream corrupt
		}
		reply := s.runJob(conn, wmu, m)
		wmu.mu.Lock()
		err = writeFrame(conn, transport.KindResult, m.Round, reply)
		wmu.mu.Unlock()
		if err != nil {
			return
		}
	}
}

// runJob executes one job frame and builds its reply; workload panics and
// errors become reply errors, never a dead connection.
func (s *Server) runJob(conn net.Conn, wmu *connWriteMu, m transport.Message) (reply JobReply) {
	if m.Kind != transport.KindJob {
		return JobReply{Error: fmt.Sprintf("unexpected frame kind %d", m.Kind)}
	}
	var req JobRequest
	if err := decodeFrame(m, &req); err != nil {
		return JobReply{Error: err.Error()}
	}
	s.mu.Lock()
	h, ok := s.handlers[req.Kind]
	s.mu.Unlock()
	if !ok {
		return JobReply{Error: fmt.Sprintf("unknown job kind %q", req.Kind)}
	}

	probe := obs.NewProbe(&progressSink{w: conn, mu: wmu, seq: m.Round})
	scoped := s.runner.Scope(probe)
	defer func() {
		reply.Stats = scoped.Stats()
		if r := recover(); r != nil {
			reply = JobReply{Stats: scoped.Stats(), Error: fmt.Sprintf("job %q panicked: %v", req.Kind, r)}
		}
	}()
	result, err := h(scoped, req.Params)
	if err != nil {
		return JobReply{Error: err.Error()}
	}
	b, err := json.Marshal(result)
	if err != nil {
		return JobReply{Error: fmt.Sprintf("encode result: %v", err)}
	}
	return JobReply{Result: b}
}
