package sweep

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"repro/internal/obs"
	"repro/internal/transport"
)

// Client submits jobs to a sweep server over one persistent connection.
// Do is serialized (one job in flight per client); open a second client
// for concurrent submissions.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	seq  int
}

// Dial connects to a sweep server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sweep: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// Do submits one job and blocks until its result. params is JSON-encoded
// into the request (use nil for parameterless jobs); onEvent, when
// non-nil, receives each streamed progress event as it arrives. The
// returned Stats are the job's cache statistics; server-side workload
// failures come back as errors alongside them.
func (c *Client) Do(kind string, params any, onEvent func(obs.Event)) (json.RawMessage, Stats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	req := JobRequest{Kind: kind}
	if params != nil {
		b, err := json.Marshal(params)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("sweep: encode params: %w", err)
		}
		req.Params = b
	}
	if err := writeFrame(c.conn, transport.KindJob, c.seq, req); err != nil {
		return nil, Stats{}, err
	}
	for {
		m, err := transport.ReadMessage(c.conn)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("sweep: connection lost mid-job: %w", err)
		}
		switch m.Kind {
		case transport.KindProgress:
			var ev obs.Event
			if err := decodeFrame(m, &ev); err != nil {
				return nil, Stats{}, err
			}
			if onEvent != nil {
				onEvent(ev)
			}
		case transport.KindResult:
			var reply JobReply
			if err := decodeFrame(m, &reply); err != nil {
				return nil, Stats{}, err
			}
			if reply.Error != "" {
				return nil, reply.Stats, fmt.Errorf("sweep: server: %s", reply.Error)
			}
			return reply.Result, reply.Stats, nil
		default:
			return nil, Stats{}, fmt.Errorf("sweep: unexpected frame kind %d", m.Kind)
		}
	}
}
