package sweep

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// CellResult is one cached cell: the key that addresses it, the
// JSON-encoded cell value, and the wall clock the original computation
// took (telemetry only — not part of the identity). Payload bytes are
// stored and served verbatim, which is what makes a cache hit
// byte-identical to the compute that produced it.
type CellResult struct {
	Key       CellKey         `json:"key"`
	Payload   json.RawMessage `json:"payload"`
	ElapsedNs int64           `json:"elapsed_ns,omitempty"`
}

// Store is a cell cache. Implementations must be safe for concurrent use;
// Get returns ok=false for absent keys without error.
type Store interface {
	Get(k CellKey) (CellResult, bool, error)
	Put(res CellResult) error
}

// MemStore is an in-memory LRU Store. capacity <= 0 means unbounded.
type MemStore struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *CellResult
	items    map[CellKey]*list.Element
}

// NewMemStore returns an LRU store holding at most capacity entries
// (unbounded when capacity <= 0).
func NewMemStore(capacity int) *MemStore {
	return &MemStore{capacity: capacity, order: list.New(), items: map[CellKey]*list.Element{}}
}

// Get returns the cached result and refreshes its recency.
func (s *MemStore) Get(k CellKey) (CellResult, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if !ok {
		return CellResult{}, false, nil
	}
	s.order.MoveToFront(el)
	return *el.Value.(*CellResult), true, nil
}

// Put inserts or refreshes an entry, evicting the least recently used
// entry when over capacity.
func (s *MemStore) Put(res CellResult) error {
	if !res.Key.Valid() {
		return fmt.Errorf("sweep: cannot store invalid key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[res.Key]; ok {
		el.Value = &res
		s.order.MoveToFront(el)
		return nil
	}
	s.items[res.Key] = s.order.PushFront(&res)
	if s.capacity > 0 && s.order.Len() > s.capacity {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*CellResult).Key)
	}
	return nil
}

// Len reports the number of cached entries.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// FileStore is a durable Store: one JSON document per cell under dir,
// written atomically (temp file + rename, the checkpoint.FileStore
// pattern) so a crash mid-write leaves either the old entry or none.
// Entries persist across daemon restarts; invalidation is structural —
// a new code revision derives new keys, it never rewrites old entries.
type FileStore struct {
	dir string
}

// NewFileStore roots a file store at dir, creating it if needed.
func NewFileStore(dir string) (*FileStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("sweep: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: create store dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *FileStore) Dir() string { return s.dir }

// Get loads the entry for k, verifying the stored key actually matches
// (file names for non-hex keys are digests, so distinct keys could share
// a name; a mismatch reads as a miss, never as wrong data).
func (s *FileStore) Get(k CellKey) (CellResult, bool, error) {
	b, err := os.ReadFile(filepath.Join(s.dir, k.fileName()))
	if os.IsNotExist(err) {
		return CellResult{}, false, nil
	}
	if err != nil {
		return CellResult{}, false, fmt.Errorf("sweep: read cell %s: %w", k, err)
	}
	var res CellResult
	if err := json.Unmarshal(b, &res); err != nil {
		return CellResult{}, false, fmt.Errorf("sweep: decode cell %s: %w", k, err)
	}
	if res.Key != k {
		return CellResult{}, false, nil
	}
	return res, true, nil
}

// Put writes the entry atomically.
func (s *FileStore) Put(res CellResult) error {
	if !res.Key.Valid() {
		return fmt.Errorf("sweep: cannot store invalid key")
	}
	b, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("sweep: encode cell %s: %w", res.Key, err)
	}
	tmp, err := os.CreateTemp(s.dir, "cell-*")
	if err != nil {
		return fmt.Errorf("sweep: write cell %s: %w", res.Key, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: write cell %s: %w", res.Key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sweep: write cell %s: %w", res.Key, err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, res.Key.fileName())); err != nil {
		return fmt.Errorf("sweep: write cell %s: %w", res.Key, err)
	}
	return nil
}

// Tiered layers a fast store over a durable one: Gets hit mem first and
// promote disk hits into mem; Puts write through to both. This is the
// daemon's default shape — an LRU absorbing the hot working set over a
// FileStore that survives restarts.
func Tiered(mem, disk Store) Store { return &tiered{mem: mem, disk: disk} }

type tiered struct {
	mem, disk Store
}

func (t *tiered) Get(k CellKey) (CellResult, bool, error) {
	if res, ok, err := t.mem.Get(k); err != nil || ok {
		return res, ok, err
	}
	res, ok, err := t.disk.Get(k)
	if err != nil || !ok {
		return CellResult{}, false, err
	}
	if err := t.mem.Put(res); err != nil {
		return CellResult{}, false, err
	}
	return res, true, nil
}

func (t *tiered) Put(res CellResult) error {
	if err := t.mem.Put(res); err != nil {
		return err
	}
	return t.disk.Put(res)
}
