package sweep

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func mustKey(seed uint64, extra string) CellKey {
	b := obs.NewManifest("testcell", "", seed).Scale(4, 8)
	if extra != "" {
		b.Set("extra", extra)
	}
	return KeyFromManifest(b.Build())
}

func TestKeyFromManifest(t *testing.T) {
	m := obs.NewManifest("testcell", "label ignored", 1).Scale(4, 8).Build()
	k := KeyFromManifest(m)
	if k.ConfigHash != m.ConfigHash {
		t.Fatalf("key hash %q, manifest hash %q", k.ConfigHash, m.ConfigHash)
	}
	if k.Revision != m.GitRevision {
		t.Fatalf("key revision %q, manifest revision %q", k.Revision, m.GitRevision)
	}
	if !k.Valid() {
		t.Fatal("manifest-derived key must be valid")
	}
	if (CellKey{}).Valid() {
		t.Fatal("zero key must be invalid")
	}
	if mustKey(1, "") == mustKey(2, "") {
		t.Fatal("different seeds must derive different keys")
	}
}

func TestKeyFileNameSafe(t *testing.T) {
	hostile := CellKey{ConfigHash: "../../etc/passwd", Revision: "abc+dirty"}
	name := hostile.fileName()
	if strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		t.Fatalf("hostile key mapped to unsafe file name %q", name)
	}
	honest := mustKey(1, "").fileName()
	if !strings.Contains(honest, mustKey(1, "").ConfigHash) {
		t.Fatalf("hex hash should embed verbatim, got %q", honest)
	}
	// Same hash, different revision -> different files (the invalidation
	// axis is structural, not destructive).
	a := CellKey{ConfigHash: "ab12", Revision: "rev-a"}
	b := CellKey{ConfigHash: "ab12", Revision: "rev-b"}
	if a.fileName() == b.fileName() {
		t.Fatal("revisions must not collide on disk")
	}
}

func storeContract(t *testing.T, s Store) {
	t.Helper()
	k := mustKey(7, "contract")
	if _, ok, err := s.Get(k); ok || err != nil {
		t.Fatalf("empty store Get = ok=%v err=%v", ok, err)
	}
	payload := json.RawMessage(`{"acc":0.75,"wasted":0.125}`)
	if err := s.Put(CellResult{Key: k, Payload: payload, ElapsedNs: 12345}); err != nil {
		t.Fatal(err)
	}
	res, ok, err := s.Get(k)
	if err != nil || !ok {
		t.Fatalf("Get after Put = ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(res.Payload, payload) || res.ElapsedNs != 12345 || res.Key != k {
		t.Fatalf("stored entry corrupted: %+v", res)
	}
	// A different revision of the same config is a distinct entry.
	other := k
	other.Revision = "f00d" + k.Revision
	if _, ok, _ := s.Get(other); ok {
		t.Fatal("revision change must miss")
	}
	if err := s.Put(CellResult{Payload: payload}); err == nil {
		t.Fatal("storing an invalid key must error")
	}
}

func TestMemStoreContract(t *testing.T)  { storeContract(t, NewMemStore(0)) }
func TestFileStoreContract(t *testing.T) { storeContract(t, newFileStore(t)) }
func TestTieredContract(t *testing.T)    { storeContract(t, Tiered(NewMemStore(4), newFileStore(t))) }

func newFileStore(t *testing.T) *FileStore {
	t.Helper()
	fs, err := NewFileStore(filepath.Join(t.TempDir(), "cells"))
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestMemStoreLRUEviction(t *testing.T) {
	s := NewMemStore(2)
	k1, k2, k3 := mustKey(1, "lru"), mustKey(2, "lru"), mustKey(3, "lru")
	for _, k := range []CellKey{k1, k2} {
		if err := s.Put(CellResult{Key: k, Payload: json.RawMessage(`1`)}); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k1 so k2 is the LRU victim.
	if _, ok, _ := s.Get(k1); !ok {
		t.Fatal("k1 missing")
	}
	if err := s.Put(CellResult{Key: k3, Payload: json.RawMessage(`3`)}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	if _, ok, _ := s.Get(k2); ok {
		t.Fatal("k2 should have been evicted")
	}
	for _, k := range []CellKey{k1, k3} {
		if _, ok, _ := s.Get(k); !ok {
			t.Fatalf("%s evicted wrongly", k)
		}
	}
}

func TestFileStoreAtomicAndRestartable(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cells")
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := mustKey(9, "durable")
	if err := fs.Put(CellResult{Key: k, Payload: json.RawMessage(`{"v":1}`)}); err != nil {
		t.Fatal(err)
	}
	// No temp files linger after a successful write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d files in store dir, want 1", len(entries))
	}
	// A fresh store over the same dir (daemon restart) still serves it.
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := fs2.Get(k); !ok || err != nil {
		t.Fatalf("restarted store Get = ok=%v err=%v", ok, err)
	}
	// Corrupt entries read as misses-with-error, never as wrong data.
	if err := os.WriteFile(filepath.Join(dir, k.fileName()), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := fs2.Get(k); ok || err == nil {
		t.Fatalf("corrupt entry Get = ok=%v err=%v", ok, err)
	}
}

func TestTieredPromotesDiskHits(t *testing.T) {
	mem := NewMemStore(8)
	disk := newFileStore(t)
	k := mustKey(4, "promote")
	if err := disk.Put(CellResult{Key: k, Payload: json.RawMessage(`{"v":4}`)}); err != nil {
		t.Fatal(err)
	}
	ts := Tiered(mem, disk)
	if _, ok, err := ts.Get(k); !ok || err != nil {
		t.Fatalf("tiered Get = ok=%v err=%v", ok, err)
	}
	if _, ok, _ := mem.Get(k); !ok {
		t.Fatal("disk hit was not promoted into mem")
	}
}
