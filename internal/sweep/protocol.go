package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/obs"
	"repro/internal/transport"
)

// The sweep service speaks the transport wire format: each frame is one
// transport.Message whose Vec carries a JSON document via
// transport.PackBytes. Round echoes the client's job sequence number.
//
//	client -> server   KindJob       JobRequest
//	server -> client   KindProgress  obs.Event   (zero or more per job)
//	server -> client   KindResult    JobReply    (exactly one per job)
//
// A connection carries one job at a time but stays open across jobs —
// clients amortize the dial and the server's cache stays warm across
// submissions.

// JobRequest names a registered workload and carries its parameters.
type JobRequest struct {
	Kind   string          `json:"kind"`
	Params json.RawMessage `json:"params,omitempty"`
}

// JobReply closes a job: the workload's JSON result, the job's cache
// statistics, and the error string when the workload failed (in which
// case Result is empty).
type JobReply struct {
	Result json.RawMessage `json:"result,omitempty"`
	Stats  Stats           `json:"stats"`
	Error  string          `json:"error,omitempty"`
}

// writeFrame JSON-encodes v and writes it as one framed message.
func writeFrame(w io.Writer, kind transport.Kind, seq int, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sweep: encode frame: %w", err)
	}
	vec, err := transport.PackBytes(b)
	if err != nil {
		return err
	}
	return transport.WriteMessage(w, transport.Message{Round: seq, Kind: kind, Vec: vec})
}

// decodeFrame unpacks a framed JSON document into v.
func decodeFrame(m transport.Message, v any) error {
	b, err := transport.UnpackBytes(m.Vec)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("sweep: decode %T frame: %w", v, err)
	}
	return nil
}

// progressSink forwards probe events to the client as KindProgress
// frames. Write errors are sticky: once the connection fails, remaining
// events are dropped and the job runs to completion (its cells still land
// in the cache for the client's retry).
type progressSink struct {
	w   io.Writer
	mu  *connWriteMu
	seq int
}

// connWriteMu serializes all writes on one connection: progress frames
// are emitted from pool workers while the result frame comes from the
// job goroutine.
type connWriteMu struct {
	mu     sync.Mutex
	broken bool
}

func (s *progressSink) Emit(ev obs.Event) {
	s.mu.mu.Lock()
	defer s.mu.mu.Unlock()
	if s.mu.broken {
		return
	}
	if err := writeFrame(s.w, transport.KindProgress, s.seq, ev); err != nil {
		s.mu.broken = true
	}
}

func (s *progressSink) Close() error { return nil }
