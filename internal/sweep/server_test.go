package sweep

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/par"
)

type squareParams struct {
	Values []int  `json:"values"`
	Rev    string `json:"rev,omitempty"`
}

var squareComputes int64

// registerSquare installs a toy grid workload: square each value, one
// cell per value, keyed by a per-value manifest.
func registerSquare(s *Server) {
	s.Handle("square", func(r *Runner, raw json.RawMessage) (any, error) {
		var p squareParams
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, err
		}
		return Grid(r, len(p.Values),
			func(i int) CellKey {
				m := obs.NewManifest("squarecell", "", uint64(p.Values[i])).Build()
				return CellKey{ConfigHash: m.ConfigHash, Revision: p.Rev}
			},
			func(i int) (int, error) {
				atomic.AddInt64(&squareComputes, 1)
				return p.Values[i] * p.Values[i], nil
			})
	})
	s.Handle("fail", func(r *Runner, raw json.RawMessage) (any, error) {
		return nil, fmt.Errorf("deliberate workload failure")
	})
	s.Handle("panic", func(r *Runner, raw json.RawMessage) (any, error) {
		panic("deliberate workload panic")
	})
}

func newTestServer(t *testing.T) *Server {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", NewMemStore(0), par.NewPool(2))
	if err != nil {
		t.Skipf("cannot open localhost sockets in this environment: %v", err)
	}
	registerSquare(srv)
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestServerCachesAcrossJobsAndClients(t *testing.T) {
	srv := newTestServer(t)
	atomic.StoreInt64(&squareComputes, 0)

	c1, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	var events []obs.Event
	raw, stats, err := c1.Do("square", squareParams{Values: []int{2, 3, 4}}, func(ev obs.Event) {
		events = append(events, ev)
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 4 || got[1] != 9 || got[2] != 16 {
		t.Fatalf("result %v", got)
	}
	if stats.Misses != 3 || stats.Hits != 0 {
		t.Fatalf("cold job stats %+v", stats)
	}
	if len(events) != 3 {
		t.Fatalf("%d progress events, want 3", len(events))
	}
	for _, ev := range events {
		if ev.Kind != obs.KindCell || !strings.HasPrefix(ev.Label, "miss ") {
			t.Fatalf("cold progress event %+v", ev)
		}
	}

	// A second client overlapping the same grid hits the shared cache.
	c2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	events = events[:0]
	_, stats, err = c2.Do("square", squareParams{Values: []int{2, 3, 4, 5}}, func(ev obs.Event) {
		events = append(events, ev)
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits != 3 || stats.Misses != 1 {
		t.Fatalf("overlap job stats %+v", stats)
	}
	if atomic.LoadInt64(&squareComputes) != 4 {
		t.Fatalf("%d computes across clients, want 4", squareComputes)
	}
	hits := 0
	for _, ev := range events {
		if strings.HasPrefix(ev.Label, "hit ") {
			hits++
		}
	}
	if hits != 3 {
		t.Fatalf("progress stream reported %d hits, want 3: %+v", hits, events)
	}

	// Same client again, fully warm: 100% hits, zero computes.
	_, stats, err = c1.Do("square", squareParams{Values: []int{2, 3, 4, 5}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AllHits() {
		t.Fatalf("warm job stats %+v", stats)
	}
	if atomic.LoadInt64(&squareComputes) != 4 {
		t.Fatalf("warm rerun recomputed: %d", squareComputes)
	}
}

func TestServerErrorPathsKeepConnectionAlive(t *testing.T) {
	srv := newTestServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, _, err := c.Do("no-such-job", nil, nil); err == nil || !strings.Contains(err.Error(), "unknown job kind") {
		t.Fatalf("unknown kind err = %v", err)
	}
	if _, _, err := c.Do("fail", nil, nil); err == nil || !strings.Contains(err.Error(), "deliberate workload failure") {
		t.Fatalf("failing job err = %v", err)
	}
	if _, _, err := c.Do("panic", nil, nil); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking job err = %v", err)
	}
	// The connection survived all three failures.
	raw, stats, err := c.Do("square", squareParams{Values: []int{6}, Rev: "errpath"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	if err := json.Unmarshal(raw, &got); err != nil || got[0] != 36 {
		t.Fatalf("post-error job: %v %v", got, err)
	}
	if stats.Cells != 1 {
		t.Fatalf("post-error stats %+v", stats)
	}
}

func TestServerCloseIdempotentAndUnblocksClients(t *testing.T) {
	srv := newTestServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
	if _, _, err := c.Do("square", squareParams{Values: []int{1}}, nil); err == nil {
		t.Fatal("Do against a closed server must error")
	}
}
