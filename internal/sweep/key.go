// Package sweep is the memoized sweep service: grid experiments submit
// cells content-addressed by their obs.RunManifest hash, cached results
// are served instantly, uncached cells fan out across a bounded
// internal/par pool, and per-cell progress streams through internal/obs
// sinks. A Server/Client pair exposes the scheduler over the
// internal/transport wire format so long-running sweepd daemons absorb
// repeated and overlapping sweeps from many clients — the "heavy traffic"
// path where the same (config, seed, revision) cell is computed once,
// ever.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/obs"
)

// CellKey is the cache identity of one sweep cell:
// RunManifest.ConfigHash × GitRevision. The config hash already folds in
// the engine name, seed, and every bits-affecting config field (and
// deliberately excludes GOMAXPROCS, labels, and telemetry state — see
// obs.RunManifest); the revision ties the entry to the code that computed
// it, so a rebuild from different sources never serves stale bits.
type CellKey struct {
	ConfigHash string `json:"config_hash"`
	// Revision is the VCS revision of the computing binary. Empty when the
	// build carries no VCS stamp (plain `go test` in a work tree) — such
	// keys still cache, but only against equally unstamped builds, which is
	// exactly the safe interpretation of "unknown code version".
	Revision string `json:"revision,omitempty"`
}

// KeyFromManifest derives the cache key of the run a manifest describes.
func KeyFromManifest(m obs.RunManifest) CellKey {
	return CellKey{ConfigHash: m.ConfigHash, Revision: m.GitRevision}
}

// Valid reports whether the key can address a cache entry. A zero key
// (no config hash) marks a cell as uncacheable; the scheduler computes it
// fresh every time.
func (k CellKey) Valid() bool { return k.ConfigHash != "" }

// String renders the key for logs and progress events.
func (k CellKey) String() string {
	if k.Revision == "" {
		return k.ConfigHash
	}
	rev := k.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return k.ConfigHash + "@" + rev
}

// fileName maps the key to a flat file name for the on-disk store. Config
// hashes are hex and embed verbatim; anything else (a hostile or corrupt
// key arriving over the wire) is digested first so a key can never escape
// the store directory. Revisions digest unconditionally — "abc123+dirty"
// is not a safe path component.
func (k CellKey) fileName() string {
	hash := k.ConfigHash
	if len(hash) > 64 || !isLowerHex(hash) {
		sum := sha256.Sum256([]byte(hash))
		hash = hex.EncodeToString(sum[:16])
	}
	rev := "norev"
	if k.Revision != "" {
		sum := sha256.Sum256([]byte(k.Revision))
		rev = hex.EncodeToString(sum[:6])
	}
	return fmt.Sprintf("cell-%s-%s.json", hash, rev)
}

func isLowerHex(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
