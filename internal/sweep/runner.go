package sweep

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/par"
)

// Stats counts cell outcomes for one scope (one Runner handle): Hits were
// served from the store, Misses were computed (and cached when keyed),
// Shared piggybacked on an identical in-flight computation. Cells counts
// successful cells only — a failed compute is reported as an error, never
// as a statistic.
type Stats struct {
	Cells  int `json:"cells"`
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
	Shared int `json:"shared"`
}

// AllHits reports whether every cell was served from the cache — the
// assertion CI's warm-rerun smoke makes.
func (s Stats) AllHits() bool { return s.Cells > 0 && s.Hits == s.Cells }

func (s Stats) String() string {
	return fmt.Sprintf("cells=%d hits=%d misses=%d shared=%d", s.Cells, s.Hits, s.Misses, s.Shared)
}

// flight is one in-progress computation other waiters can share.
type flight struct {
	done    chan struct{}
	payload []byte
	wallNs  int64
	err     error
}

// runnerCore is the shared scheduler state: the store, the worker bound,
// and the in-flight dedup table. Every Runner handle scoped off one core
// shares its cache and singleflight, so overlapping grids from different
// clients dedupe against each other.
type runnerCore struct {
	store Store
	pool  *par.Pool

	mu       sync.Mutex
	inflight map[CellKey]*flight
}

// Runner schedules memoized cells: Grid calls fan compute bodies across
// the pool, serve cached cells from the store, and collapse concurrent
// identical cells into one computation. A Runner handle carries its own
// Stats and progress probe; Scope derives additional handles over the
// same cache for per-job accounting.
//
// A nil *Runner is valid wherever a Runner is accepted and degrades to a
// plain uncached pool fan-out — experiments thread an optional Runner
// without nil checks.
type Runner struct {
	core  *runnerCore
	probe *obs.Probe

	mu    sync.Mutex
	stats Stats
}

// NewRunner builds a runner over a store (nil = no caching) and a pool
// (nil = GOMAXPROCS-wide default).
func NewRunner(store Store, pool *par.Pool) *Runner {
	return &Runner{core: &runnerCore{store: store, pool: pool, inflight: map[CellKey]*flight{}}}
}

// Scope returns a handle sharing this runner's cache, singleflight table,
// and pool, but with fresh Stats and the given progress probe. The server
// scopes one handle per job so each client sees its own hit/miss counts
// and progress stream.
func (r *Runner) Scope(probe *obs.Probe) *Runner {
	if r == nil {
		return &Runner{probe: probe}
	}
	return &Runner{core: r.core, probe: probe}
}

// Stats returns the counts accumulated by Grid calls on this handle.
func (r *Runner) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Pool returns the runner's worker pool (the default pool for nil
// runners), so callers can reuse the same concurrency bound for
// non-cell work.
func (r *Runner) Pool() *par.Pool {
	if r == nil || r.core == nil {
		return nil
	}
	return r.core.pool
}

func (r *Runner) record(verdict string, k CellKey, wallNs int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.stats.Cells++
	switch verdict {
	case "hit":
		r.stats.Hits++
	case "shared":
		r.stats.Shared++
	default:
		r.stats.Misses++
	}
	r.mu.Unlock()
	if r.probe.Enabled() && k.Valid() {
		r.probe.Emit(obs.Event{
			Kind: obs.KindCell, Round: -1, Node: -1,
			Label:  verdict + " " + k.String(),
			WallNs: wallNs,
		})
	}
}

// Grid runs n cells through the scheduler and returns their values in
// index order. key(i) derives cell i's cache identity (a zero key or nil
// key func marks it uncacheable); compute(i) produces the value on a
// miss.
//
// Cached and computed cells are interchangeable bit-for-bit: on a miss
// the value is JSON-encoded, stored, and decoded back from those same
// bytes, so out[i] is identical whether this call computed the cell or a
// previous run did. Errors are never cached; like par.ForErr, every cell
// runs to completion and the lowest-index error is returned.
func Grid[T any](r *Runner, n int, key func(i int) CellKey, compute func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	var core *runnerCore
	if r != nil {
		core = r.core
	}
	if core == nil {
		core = &runnerCore{inflight: map[CellKey]*flight{}}
	}
	err := core.pool.ForErr(n, 0, func(i int) error {
		var k CellKey
		if key != nil {
			k = key(i)
		}
		if !k.Valid() {
			start := time.Now()
			v, err := compute(i)
			if err != nil {
				return err
			}
			out[i] = v
			r.record("miss", k, time.Since(start).Nanoseconds())
			return nil
		}
		payload, verdict, wallNs, err := core.cell(k, func() ([]byte, error) {
			v, err := compute(i)
			if err != nil {
				return nil, err
			}
			b, err := json.Marshal(v)
			if err != nil {
				return nil, fmt.Errorf("sweep: encode cell %s: %w", k, err)
			}
			return b, nil
		})
		if err != nil {
			return err
		}
		if err := json.Unmarshal(payload, &out[i]); err != nil {
			return fmt.Errorf("sweep: decode cell %s: %w", k, err)
		}
		r.record(verdict, k, wallNs)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// cell resolves one keyed cell: store hit, shared in-flight computation,
// or a fresh compute that is stored before anyone else can observe it.
func (c *runnerCore) cell(k CellKey, computeRaw func() ([]byte, error)) (payload []byte, verdict string, wallNs int64, err error) {
	if c.store != nil {
		res, ok, err := c.store.Get(k)
		if err != nil {
			return nil, "", 0, err
		}
		if ok {
			return res.Payload, "hit", res.ElapsedNs, nil
		}
	}
	c.mu.Lock()
	if c.inflight == nil {
		c.inflight = map[CellKey]*flight{}
	}
	if f, ok := c.inflight[k]; ok {
		c.mu.Unlock()
		<-f.done
		return f.payload, "shared", f.wallNs, f.err
	}
	// Double-check the store under the lock: a flight for k may have
	// completed (Put + deregister) between our miss above and here, and
	// computing again would waste the work singleflight exists to save.
	if c.store != nil {
		res, ok, gerr := c.store.Get(k)
		if gerr != nil {
			c.mu.Unlock()
			return nil, "", 0, gerr
		}
		if ok {
			c.mu.Unlock()
			return res.Payload, "hit", res.ElapsedNs, nil
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[k] = f
	c.mu.Unlock()

	start := time.Now()
	f.payload, f.err = computeRaw()
	f.wallNs = time.Since(start).Nanoseconds()
	if f.err == nil && c.store != nil {
		if perr := c.store.Put(CellResult{Key: k, Payload: f.payload, ElapsedNs: f.wallNs}); perr != nil {
			f.err = perr
		}
	}
	c.mu.Lock()
	delete(c.inflight, k)
	c.mu.Unlock()
	close(f.done)
	return f.payload, "miss", f.wallNs, f.err
}
