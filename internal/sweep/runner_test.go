package sweep

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/par"
)

type cellValue struct {
	Index int     `json:"index"`
	Acc   float64 `json:"acc"`
}

func gridKeys(n int, rev string) func(int) CellKey {
	return func(i int) CellKey {
		k := mustKey(uint64(i), "grid")
		if rev != "" {
			k.Revision = rev
		}
		return k
	}
}

func computeCell(calls *int64) func(int) (cellValue, error) {
	return func(i int) (cellValue, error) {
		atomic.AddInt64(calls, 1)
		return cellValue{Index: i, Acc: float64(i) / 7}, nil
	}
}

func TestGridMissThenHit(t *testing.T) {
	store := NewMemStore(0)
	var calls int64

	cold := NewRunner(store, nil)
	got, err := Grid(cold, 8, gridKeys(8, ""), computeCell(&calls))
	if err != nil {
		t.Fatal(err)
	}
	if calls != 8 {
		t.Fatalf("cold run computed %d cells, want 8", calls)
	}
	st := cold.Stats()
	if st.Cells != 8 || st.Misses != 8 || st.Hits != 0 {
		t.Fatalf("cold stats %+v", st)
	}

	warm := NewRunner(store, nil)
	got2, err := Grid(warm, 8, gridKeys(8, ""), computeCell(&calls))
	if err != nil {
		t.Fatal(err)
	}
	if calls != 8 {
		t.Fatalf("warm run recomputed: %d total calls", calls)
	}
	st = warm.Stats()
	if !st.AllHits() || st.Hits != 8 {
		t.Fatalf("warm stats %+v", st)
	}
	for i := range got {
		if got[i] != got2[i] {
			t.Fatalf("cell %d: warm %+v != cold %+v", i, got2[i], got[i])
		}
	}
}

// A forced revision change must invalidate every cell: same configs, new
// code, fresh computes.
func TestGridRevisionChangeInvalidates(t *testing.T) {
	store := NewMemStore(0)
	var calls int64
	r1 := NewRunner(store, nil)
	if _, err := Grid(r1, 4, gridKeys(4, "rev-a"), computeCell(&calls)); err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(store, nil)
	if _, err := Grid(r2, 4, gridKeys(4, "rev-b"), computeCell(&calls)); err != nil {
		t.Fatal(err)
	}
	if calls != 8 {
		t.Fatalf("revision change served stale cells: %d computes, want 8", calls)
	}
	if st := r2.Stats(); st.Hits != 0 || st.Misses != 4 {
		t.Fatalf("stats after revision change %+v", st)
	}
	// And the old revision still hits — invalidation is structural.
	r3 := NewRunner(store, nil)
	if _, err := Grid(r3, 4, gridKeys(4, "rev-a"), computeCell(&calls)); err != nil {
		t.Fatal(err)
	}
	if st := r3.Stats(); !st.AllHits() {
		t.Fatalf("old revision stopped hitting: %+v", st)
	}
}

// Concurrent identical cells collapse into one computation (singleflight)
// even before anything lands in the store.
func TestGridSingleflightSharesInflightCells(t *testing.T) {
	store := NewMemStore(0)
	r := NewRunner(store, par.NewPool(8))
	var calls int64
	started := make(chan struct{})
	var once sync.Once
	sameKey := mustKey(42, "shared")
	got, err := Grid(r, 8,
		func(int) CellKey { return sameKey },
		func(i int) (cellValue, error) {
			atomic.AddInt64(&calls, 1)
			once.Do(func() { close(started) })
			<-started // hold all entrants at the same point
			return cellValue{Index: 999, Acc: 0.5}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("%d computes for one key, want 1 (singleflight)", calls)
	}
	for i, v := range got {
		if v.Index != 999 {
			t.Fatalf("cell %d got %+v", i, v)
		}
	}
	st := r.Stats()
	if st.Misses != 1 || st.Hits+st.Shared != 7 || st.Cells != 8 {
		t.Fatalf("singleflight stats %+v", st)
	}
}

// Errors surface like par.ForErr (lowest index wins, every cell runs) and
// are never cached.
func TestGridErrorsNotCachedLowestIndexWins(t *testing.T) {
	store := NewMemStore(0)
	var calls int64
	fail := func(i int) (cellValue, error) {
		atomic.AddInt64(&calls, 1)
		if i == 2 || i == 5 {
			return cellValue{}, fmt.Errorf("cell %d failed", i)
		}
		return cellValue{Index: i}, nil
	}
	r := NewRunner(store, nil)
	_, err := Grid(r, 8, gridKeys(8, ""), fail)
	if err == nil || err.Error() != "cell 2 failed" {
		t.Fatalf("err = %v, want lowest-index cell error", err)
	}
	if calls != 8 {
		t.Fatalf("%d calls, want 8 (no early cancellation)", calls)
	}
	// The failed cells retry next run; successes were cached.
	calls = 0
	r2 := NewRunner(store, nil)
	if _, err := Grid(r2, 8, gridKeys(8, ""), computeCell(&calls)); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("%d recomputes, want exactly the 2 failed cells", calls)
	}
}

// Nil runners and invalid keys degrade to a plain uncached fan-out.
func TestGridUncachedFallbacks(t *testing.T) {
	var calls int64
	got, err := Grid[cellValue](nil, 4, nil, computeCell(&calls))
	if err != nil || len(got) != 4 {
		t.Fatalf("nil runner: %v (%d cells)", err, len(got))
	}
	r := NewRunner(NewMemStore(0), nil)
	for range 2 {
		if _, err := Grid(r, 4, func(int) CellKey { return CellKey{} }, computeCell(&calls)); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 12 {
		t.Fatalf("%d computes, want 12 (invalid keys never cache)", calls)
	}
	if st := r.Stats(); st.Hits != 0 || st.Misses != 8 {
		t.Fatalf("uncached stats %+v", st)
	}
}

// Hit payload bytes are exactly the bytes the original compute produced:
// decode(payload) == the freshly computed value for JSON-clean types.
func TestGridHitBytesIdenticalToCompute(t *testing.T) {
	store := NewMemStore(0)
	var calls int64
	r := NewRunner(store, nil)
	if _, err := Grid(r, 3, gridKeys(3, ""), computeCell(&calls)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		k := gridKeys(3, "")(i)
		res, ok, err := store.Get(k)
		if !ok || err != nil {
			t.Fatalf("cell %d not stored", i)
		}
		fresh, _ := json.Marshal(cellValue{Index: i, Acc: float64(i) / 7})
		if string(res.Payload) != string(fresh) {
			t.Fatalf("cell %d payload %s != fresh encode %s", i, res.Payload, fresh)
		}
	}
}

// Scoped handles share the cache but account separately, and the probe
// sees one cell event per cell with the hit/miss verdict.
func TestScopedStatsAndProbeEvents(t *testing.T) {
	store := NewMemStore(0)
	base := NewRunner(store, nil)
	var calls int64

	sink := &obs.MemorySink{}
	scoped := base.Scope(obs.NewProbe(sink))
	if _, err := Grid(scoped, 4, gridKeys(4, ""), computeCell(&calls)); err != nil {
		t.Fatal(err)
	}
	scoped2 := base.Scope(nil)
	if _, err := Grid(scoped2, 4, gridKeys(4, ""), computeCell(&calls)); err != nil {
		t.Fatal(err)
	}
	if st := scoped.Stats(); st.Misses != 4 || st.Cells != 4 {
		t.Fatalf("first scope stats %+v", st)
	}
	if st := scoped2.Stats(); !st.AllHits() {
		t.Fatalf("second scope stats %+v", st)
	}
	if base.Stats().Cells != 0 {
		t.Fatalf("base handle must not absorb scoped stats: %+v", base.Stats())
	}
	evs := sink.Events()
	if len(evs) != 4 {
		t.Fatalf("%d probe events, want 4", len(evs))
	}
	for _, ev := range evs {
		if ev.Kind != obs.KindCell || !strings.HasPrefix(ev.Label, "miss ") {
			t.Fatalf("unexpected event %+v", ev)
		}
	}
}
