// Package core implements the paper's contribution: the SkipTrain family of
// energy-aware decentralized learning algorithms (Section 3).
//
// An algorithm is the product of two orthogonal decisions:
//
//   - a Schedule fixes the coordinated round pattern shared by all nodes —
//     D-PSGD trains every round, SkipTrain alternates Γtrain training
//     rounds with Γsync synchronization rounds (Section 3.1);
//   - a Policy lets each node decide, inside a coordinated training round,
//     whether to actually train — always (unconstrained), greedily until
//     the energy budget τ_i runs out, or probabilistically with
//     p_i = min(τ_i / T_train, 1) (SkipTrain-constrained, Section 3.2).
//
// A policy decides from the engine's per-node RoundContext — round index,
// horizon, coordinated schedule, live battery state (BatteryView), and an
// optional harvest forecast window — so charge- and forecast-aware
// policies (internal/harvest) plug into the same contract as the paper's
// static rules without smuggling engine state through their own fields.
//
// Every stochastic choice flows through a per-node RNG stream, so runs are
// reproducible bit-for-bit.
package core

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/rng"
)

// RoundKind is the coordinated type of a round.
type RoundKind int

const (
	// RoundTrain rounds perform train + share + aggregate (a full D-PSGD
	// round; Figure 2 "train").
	RoundTrain RoundKind = iota
	// RoundSync rounds perform share + aggregate only (Figure 2 "sync").
	RoundSync
)

// String returns the Figure 2 label of the round kind.
func (k RoundKind) String() string {
	if k == RoundTrain {
		return "train"
	}
	return "sync"
}

// Schedule fixes the coordinated round pattern. Rounds are 0-based.
type Schedule interface {
	// Kind returns the coordinated type of round t.
	Kind(t int) RoundKind
	// Name identifies the schedule in reports.
	Name() string
}

// AllTrain is the D-PSGD schedule: every round is a training round.
type AllTrain struct{}

// Kind always returns RoundTrain.
func (AllTrain) Kind(int) RoundKind { return RoundTrain }

// Name returns "all-train".
func (AllTrain) Name() string { return "all-train" }

// Gamma is the SkipTrain schedule: blocks of GammaTrain training rounds
// followed by GammaSync synchronization rounds (Algorithm 2, line 5:
// t mod (Γtrain+Γsync) < Γtrain selects training).
type Gamma struct {
	GammaTrain int
	GammaSync  int
}

// NewGamma validates and returns a Gamma schedule.
func NewGamma(gammaTrain, gammaSync int) (Gamma, error) {
	if gammaTrain < 1 || gammaSync < 0 {
		return Gamma{}, fmt.Errorf("core: invalid gamma schedule train=%d sync=%d", gammaTrain, gammaSync)
	}
	return Gamma{GammaTrain: gammaTrain, GammaSync: gammaSync}, nil
}

// ScheduleFromGammaFlags resolves the CLI convention shared by the cmd/
// binaries: -gt 0 -gs 0 selects the all-train (D-PSGD) schedule, and
// -gt > 0 selects SkipTrain(Γtrain, Γsync). Every other combination is a
// user error and is rejected — in particular a -gs given without -gt,
// which earlier versions silently ignored, and negative values, which
// earlier versions accepted.
func ScheduleFromGammaFlags(gammaTrain, gammaSync int) (Schedule, error) {
	switch {
	case gammaTrain < 0 || gammaSync < 0:
		return nil, fmt.Errorf("core: negative gamma flags train=%d sync=%d", gammaTrain, gammaSync)
	case gammaTrain == 0 && gammaSync == 0:
		return AllTrain{}, nil
	case gammaTrain == 0:
		return nil, fmt.Errorf("core: gamma sync=%d given without train (-gs needs -gt > 0)", gammaSync)
	}
	g, err := NewGamma(gammaTrain, gammaSync)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// Kind implements the Algorithm 2 round test.
func (g Gamma) Kind(t int) RoundKind {
	if t%(g.GammaTrain+g.GammaSync) < g.GammaTrain {
		return RoundTrain
	}
	return RoundSync
}

// Name returns e.g. "skiptrain(3,3)".
func (g Gamma) Name() string { return fmt.Sprintf("skiptrain(%d,%d)", g.GammaTrain, g.GammaSync) }

// CountTrainRounds returns the exact number of coordinated training rounds
// a schedule yields over horizon T. For Gamma schedules this is the exact
// version of Eq. (4)'s T_train = Γtrain/(Γtrain+Γsync) * T; the paper's
// energy numbers (e.g. Table 3's 1008.71 Wh = 668 training rounds) come
// from this count, not from the real-valued formula.
func CountTrainRounds(s Schedule, T int) int {
	n := 0
	for t := 0; t < T; t++ {
		if s.Kind(t) == RoundTrain {
			n++
		}
	}
	return n
}

// TTrain returns Eq. (4): the nominal maximum number of training rounds
// T_train = Γtrain/(Γtrain+Γsync) * T used to derive training
// probabilities.
func (g Gamma) TTrain(T int) float64 {
	return float64(g.GammaTrain) / float64(g.GammaTrain+g.GammaSync) * float64(T)
}

// TrainingProbability returns Eq. (5): p_i = min(τ_i / T_train, 1).
func TrainingProbability(tau int, tTrain float64) float64 {
	if tTrain <= 0 {
		return 1
	}
	p := float64(tau) / tTrain
	if p > 1 {
		return 1
	}
	return p
}

// BatteryView is the per-node battery state a charge-aware policy may
// consult — and drain — while deciding. harvest.Fleet implements it; the
// engine threads it through RoundContext so policies no longer hold fleet
// pointers of their own. All methods are safe for concurrent use across
// distinct nodes.
type BatteryView interface {
	// SoC returns node's state of charge in [0, 1].
	SoC(node int) float64
	// ChargeWh returns node's charge level in Wh.
	ChargeWh(node int) float64
	// CapacityWh returns node's battery capacity in Wh.
	CapacityWh(node int) float64
	// CutoffWh returns node's brown-out level in Wh: at or below it the
	// node cannot operate.
	CutoffWh(node int) float64
	// TrainCostWh returns the per-round training cost of node's device.
	TrainCostWh(node int) float64
	// OverheadWh returns the per-round non-training draw (idle +
	// communication) node pays regardless of participation.
	OverheadWh(node int) float64
	// TryTrain atomically spends node's training-round energy, reporting
	// whether the battery could afford it. It is the only training drain
	// path; policies call it after deciding to train.
	TryTrain(node int) bool
}

// RoundContext is everything the engine knows that a node may consult when
// deciding whether to train this round. It is built fresh per node per
// round from start-of-round state, so decisions are independent of phase
// interleaving and runs stay bit-reproducible at any GOMAXPROCS. Optional
// fields are nil when the run has no corresponding subsystem attached.
type RoundContext struct {
	// Round is t, 0-based.
	Round int
	// Horizon is the total round count T. Virtual-time engines pass the
	// node's step capacity within the simulated horizon (see
	// VirtualContext); 0 when genuinely open-ended.
	Horizon int
	// Kind is the coordinated kind of this round.
	Kind RoundKind
	// Schedule is the coordinated schedule, letting planning policies see
	// the kinds of future rounds. Nil means every round trains.
	Schedule Schedule
	// Battery is the live battery state of a harvest-coupled run; nil when
	// no fleet is attached.
	Battery BatteryView
	// Forecast holds the predicted energy (Wh) the node will harvest
	// during rounds Round, Round+1, ..., Round+len(Forecast)-1; nil when
	// no forecaster is attached. The slice is scratch owned by the engine,
	// valid only for the duration of the Participate call.
	Forecast []float64
}

// ContextAt returns the schedule-only context for round t of a horizon-T
// run: the minimal RoundContext built by engines and direct policy drivers
// that have no battery or forecast state to attach.
func ContextAt(s Schedule, t, horizon int) RoundContext {
	ctx := RoundContext{Round: t, Horizon: horizon, Schedule: s, Kind: RoundTrain}
	if s != nil {
		ctx.Kind = s.Kind(t)
	}
	return ctx
}

// VirtualContext builds the round context a virtual-time engine presents
// to a policy: the schedule slot is the node's local step counter (each
// node advances its own clock, so "round" is per-node), while the battery
// view and forecast window describe fleet state at the decision's virtual
// time. Battery-aware and forecast-aware policies thereby run unchanged in
// both the round-synchronous and the event-driven engine.
func VirtualContext(s Schedule, step, horizon int, b BatteryView, forecast []float64) RoundContext {
	ctx := ContextAt(s, step, horizon)
	ctx.Battery = b
	ctx.Forecast = forecast
	return ctx
}

// Policy decides whether a node participates in a coordinated training
// round, from whatever slice of the round context it cares about.
// Implementations must be safe for concurrent use by distinct nodes; the
// per-node RNG is owned by the calling node.
type Policy interface {
	// Participate reports whether node trains in round ctx.Round. It may
	// consume from the node's energy budget or battery.
	Participate(node int, ctx RoundContext, r *rng.RNG) bool
	// Name identifies the policy in reports.
	Name() string
}

// LegacyPolicy is the pre-RoundContext participation contract: policies
// that decide from the round index alone. Wrap one with AdaptLegacy to use
// it anywhere a Policy is expected.
type LegacyPolicy interface {
	Participate(node, t int, r *rng.RNG) bool
	Name() string
}

// AdaptLegacy lifts a LegacyPolicy into the context-passing contract by
// forwarding ctx.Round as the round index.
func AdaptLegacy(p LegacyPolicy) Policy { return legacyPolicy{p} }

type legacyPolicy struct{ p LegacyPolicy }

func (l legacyPolicy) Participate(node int, ctx RoundContext, r *rng.RNG) bool {
	return l.p.Participate(node, ctx.Round, r)
}

func (l legacyPolicy) Name() string { return l.p.Name() }

// ResettablePolicy is implemented by policies that carry run state — spent
// budgets, dormancy flags — which a second run would silently inherit.
// sim.Run rejects a consumed policy the same way it rejects a consumed
// harvest fleet; Reset rewinds the policy so the next run replays the
// first bit-for-bit.
type ResettablePolicy interface {
	Policy
	// Reset rewinds the policy to its construction state.
	Reset()
	// Consumed reports whether the policy carries state from a prior run.
	Consumed() bool
}

// BatteryDependent marks policies that can only decide from live battery
// state: sim.Run rejects them when no harvest fleet is attached, instead
// of letting them silently never train.
type BatteryDependent interface{ RequiresBattery() }

// ForecastDependent marks policies that can only decide from a harvest
// forecast window: sim.Run rejects them when no forecaster is attached.
type ForecastDependent interface{ RequiresForecast() }

// AlwaysTrain participates in every training round (unconstrained setting).
type AlwaysTrain struct{}

// Participate always returns true.
func (AlwaysTrain) Participate(int, RoundContext, *rng.RNG) bool { return true }

// Name returns "always".
func (AlwaysTrain) Name() string { return "always" }

// GreedyPolicy trains in every round while the budget lasts, then stops —
// the Greedy baseline of Section 3.2.
type GreedyPolicy struct {
	Budget *energy.Budget
}

// Participate consumes one budget unit when available.
func (p GreedyPolicy) Participate(node int, _ RoundContext, _ *rng.RNG) bool {
	return p.Budget.Consume(node)
}

// Name returns "greedy".
func (GreedyPolicy) Name() string { return "greedy" }

// Reset restores the backing budget (ResettablePolicy).
func (p GreedyPolicy) Reset() { p.Budget.Reset() }

// Consumed reports whether any budget was spent (ResettablePolicy).
func (p GreedyPolicy) Consumed() bool { return p.Budget.Used() > 0 }

// ProbabilisticPolicy is the SkipTrain-constrained participation rule
// (Algorithm 2, lines 5-7): in a coordinated training round a node with
// remaining budget τ_i^t > 0 trains with probability p_i, spreading its
// budget across the whole horizon.
type ProbabilisticPolicy struct {
	Budget *energy.Budget
	probs  []float64
}

// NewProbabilisticPolicy derives per-node training probabilities from the
// schedule, horizon, and budgets, per Eq. (4)-(5).
func NewProbabilisticPolicy(g Gamma, T int, budget *energy.Budget, nodes int) *ProbabilisticPolicy {
	tTrain := g.TTrain(T)
	probs := make([]float64, nodes)
	for i := range probs {
		probs[i] = TrainingProbability(budget.Initial(i), tTrain)
	}
	return &ProbabilisticPolicy{Budget: budget, probs: probs}
}

// Probability exposes p_i for inspection and tests.
func (p *ProbabilisticPolicy) Probability(node int) float64 { return p.probs[node] }

// Participate implements Algorithm 2 lines 5-11: check budget, flip the
// coin, and consume budget only when actually training.
func (p *ProbabilisticPolicy) Participate(node int, _ RoundContext, r *rng.RNG) bool {
	if p.Budget.Remaining(node) <= 0 {
		return false
	}
	if r.Float64() <= p.probs[node] {
		return p.Budget.Consume(node)
	}
	return false
}

// Name returns "probabilistic".
func (*ProbabilisticPolicy) Name() string { return "probabilistic" }

// Reset restores the backing budget (ResettablePolicy). The derived
// probabilities are construction-time configuration and never drift.
func (p *ProbabilisticPolicy) Reset() { p.Budget.Reset() }

// Consumed reports whether any budget was spent (ResettablePolicy).
func (p *ProbabilisticPolicy) Consumed() bool { return p.Budget.Used() > 0 }

// Aggregation selects how models are combined after sharing.
type Aggregation int

const (
	// AggNeighborhood is the D-PSGD weighted neighborhood average
	// (Algorithm 1 line 8) using the Metropolis-Hastings matrix W.
	AggNeighborhood Aggregation = iota
	// AggGlobal is the hypothetical all-reduce of Figure 1: every round all
	// models are averaged globally.
	AggGlobal
)

// Algorithm bundles schedule, policy and aggregation into one of the
// paper's five configurations.
type Algorithm struct {
	Label       string
	Schedule    Schedule
	Policy      Policy
	Aggregation Aggregation
}

// DPSGD returns the baseline D-PSGD algorithm (Algorithm 1).
func DPSGD() Algorithm {
	return Algorithm{Label: "D-PSGD", Schedule: AllTrain{}, Policy: AlwaysTrain{}}
}

// AllReduce returns D-PSGD with global averaging every round, the upper
// bound of Figure 1.
func AllReduce() Algorithm {
	return Algorithm{Label: "All-Reduce", Schedule: AllTrain{}, Policy: AlwaysTrain{}, Aggregation: AggGlobal}
}

// SkipTrain returns the unconstrained SkipTrain algorithm with the given
// coordinated schedule.
func SkipTrain(g Gamma) Algorithm {
	return Algorithm{Label: fmt.Sprintf("SkipTrain Γt=%d Γs=%d", g.GammaTrain, g.GammaSync),
		Schedule: g, Policy: AlwaysTrain{}}
}

// SkipTrainConstrained returns the energy-constrained SkipTrain variant
// (Algorithm 2) for the given horizon and budgets.
func SkipTrainConstrained(g Gamma, T int, budget *energy.Budget, nodes int) Algorithm {
	return Algorithm{Label: fmt.Sprintf("SkipTrain-constrained Γt=%d Γs=%d", g.GammaTrain, g.GammaSync),
		Schedule: g, Policy: NewProbabilisticPolicy(g, T, budget, nodes)}
}

// Greedy returns the Greedy baseline: train every round until the budget is
// exhausted, then only synchronize.
func Greedy(budget *energy.Budget) Algorithm {
	return Algorithm{Label: "Greedy", Schedule: AllTrain{}, Policy: GreedyPolicy{Budget: budget}}
}
