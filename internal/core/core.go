// Package core implements the paper's contribution: the SkipTrain family of
// energy-aware decentralized learning algorithms (Section 3).
//
// An algorithm is the product of two orthogonal decisions:
//
//   - a Schedule fixes the coordinated round pattern shared by all nodes —
//     D-PSGD trains every round, SkipTrain alternates Γtrain training
//     rounds with Γsync synchronization rounds (Section 3.1);
//   - a Policy lets each node decide, inside a coordinated training round,
//     whether to actually train — always (unconstrained), greedily until
//     the energy budget τ_i runs out, or probabilistically with
//     p_i = min(τ_i / T_train, 1) (SkipTrain-constrained, Section 3.2).
//
// Every stochastic choice flows through a per-node RNG stream, so runs are
// reproducible bit-for-bit.
package core

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/rng"
)

// RoundKind is the coordinated type of a round.
type RoundKind int

const (
	// RoundTrain rounds perform train + share + aggregate (a full D-PSGD
	// round; Figure 2 "train").
	RoundTrain RoundKind = iota
	// RoundSync rounds perform share + aggregate only (Figure 2 "sync").
	RoundSync
)

// String returns the Figure 2 label of the round kind.
func (k RoundKind) String() string {
	if k == RoundTrain {
		return "train"
	}
	return "sync"
}

// Schedule fixes the coordinated round pattern. Rounds are 0-based.
type Schedule interface {
	// Kind returns the coordinated type of round t.
	Kind(t int) RoundKind
	// Name identifies the schedule in reports.
	Name() string
}

// AllTrain is the D-PSGD schedule: every round is a training round.
type AllTrain struct{}

// Kind always returns RoundTrain.
func (AllTrain) Kind(int) RoundKind { return RoundTrain }

// Name returns "all-train".
func (AllTrain) Name() string { return "all-train" }

// Gamma is the SkipTrain schedule: blocks of GammaTrain training rounds
// followed by GammaSync synchronization rounds (Algorithm 2, line 5:
// t mod (Γtrain+Γsync) < Γtrain selects training).
type Gamma struct {
	GammaTrain int
	GammaSync  int
}

// NewGamma validates and returns a Gamma schedule.
func NewGamma(gammaTrain, gammaSync int) (Gamma, error) {
	if gammaTrain < 1 || gammaSync < 0 {
		return Gamma{}, fmt.Errorf("core: invalid gamma schedule train=%d sync=%d", gammaTrain, gammaSync)
	}
	return Gamma{GammaTrain: gammaTrain, GammaSync: gammaSync}, nil
}

// ScheduleFromGammaFlags resolves the CLI convention shared by the cmd/
// binaries: -gt 0 -gs 0 selects the all-train (D-PSGD) schedule, and
// -gt > 0 selects SkipTrain(Γtrain, Γsync). Every other combination is a
// user error and is rejected — in particular a -gs given without -gt,
// which earlier versions silently ignored, and negative values, which
// earlier versions accepted.
func ScheduleFromGammaFlags(gammaTrain, gammaSync int) (Schedule, error) {
	switch {
	case gammaTrain < 0 || gammaSync < 0:
		return nil, fmt.Errorf("core: negative gamma flags train=%d sync=%d", gammaTrain, gammaSync)
	case gammaTrain == 0 && gammaSync == 0:
		return AllTrain{}, nil
	case gammaTrain == 0:
		return nil, fmt.Errorf("core: gamma sync=%d given without train (-gs needs -gt > 0)", gammaSync)
	}
	g, err := NewGamma(gammaTrain, gammaSync)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// Kind implements the Algorithm 2 round test.
func (g Gamma) Kind(t int) RoundKind {
	if t%(g.GammaTrain+g.GammaSync) < g.GammaTrain {
		return RoundTrain
	}
	return RoundSync
}

// Name returns e.g. "skiptrain(3,3)".
func (g Gamma) Name() string { return fmt.Sprintf("skiptrain(%d,%d)", g.GammaTrain, g.GammaSync) }

// CountTrainRounds returns the exact number of coordinated training rounds
// a schedule yields over horizon T. For Gamma schedules this is the exact
// version of Eq. (4)'s T_train = Γtrain/(Γtrain+Γsync) * T; the paper's
// energy numbers (e.g. Table 3's 1008.71 Wh = 668 training rounds) come
// from this count, not from the real-valued formula.
func CountTrainRounds(s Schedule, T int) int {
	n := 0
	for t := 0; t < T; t++ {
		if s.Kind(t) == RoundTrain {
			n++
		}
	}
	return n
}

// TTrain returns Eq. (4): the nominal maximum number of training rounds
// T_train = Γtrain/(Γtrain+Γsync) * T used to derive training
// probabilities.
func (g Gamma) TTrain(T int) float64 {
	return float64(g.GammaTrain) / float64(g.GammaTrain+g.GammaSync) * float64(T)
}

// TrainingProbability returns Eq. (5): p_i = min(τ_i / T_train, 1).
func TrainingProbability(tau int, tTrain float64) float64 {
	if tTrain <= 0 {
		return 1
	}
	p := float64(tau) / tTrain
	if p > 1 {
		return 1
	}
	return p
}

// Policy decides whether a node participates in a coordinated training
// round. Implementations must be safe for concurrent use by distinct nodes;
// the per-node RNG is owned by the calling node.
type Policy interface {
	// Participate reports whether node trains in round t. It may consume
	// from the node's energy budget.
	Participate(node, t int, r *rng.RNG) bool
	// Name identifies the policy in reports.
	Name() string
}

// AlwaysTrain participates in every training round (unconstrained setting).
type AlwaysTrain struct{}

// Participate always returns true.
func (AlwaysTrain) Participate(int, int, *rng.RNG) bool { return true }

// Name returns "always".
func (AlwaysTrain) Name() string { return "always" }

// GreedyPolicy trains in every round while the budget lasts, then stops —
// the Greedy baseline of Section 3.2.
type GreedyPolicy struct {
	Budget *energy.Budget
}

// Participate consumes one budget unit when available.
func (p GreedyPolicy) Participate(node, _ int, _ *rng.RNG) bool {
	return p.Budget.Consume(node)
}

// Name returns "greedy".
func (GreedyPolicy) Name() string { return "greedy" }

// ProbabilisticPolicy is the SkipTrain-constrained participation rule
// (Algorithm 2, lines 5-7): in a coordinated training round a node with
// remaining budget τ_i^t > 0 trains with probability p_i, spreading its
// budget across the whole horizon.
type ProbabilisticPolicy struct {
	Budget *energy.Budget
	probs  []float64
}

// NewProbabilisticPolicy derives per-node training probabilities from the
// schedule, horizon, and budgets, per Eq. (4)-(5).
func NewProbabilisticPolicy(g Gamma, T int, budget *energy.Budget, nodes int) *ProbabilisticPolicy {
	tTrain := g.TTrain(T)
	probs := make([]float64, nodes)
	for i := range probs {
		probs[i] = TrainingProbability(budget.Initial(i), tTrain)
	}
	return &ProbabilisticPolicy{Budget: budget, probs: probs}
}

// Probability exposes p_i for inspection and tests.
func (p *ProbabilisticPolicy) Probability(node int) float64 { return p.probs[node] }

// Participate implements Algorithm 2 lines 5-11: check budget, flip the
// coin, and consume budget only when actually training.
func (p *ProbabilisticPolicy) Participate(node, _ int, r *rng.RNG) bool {
	if p.Budget.Remaining(node) <= 0 {
		return false
	}
	if r.Float64() <= p.probs[node] {
		return p.Budget.Consume(node)
	}
	return false
}

// Name returns "probabilistic".
func (*ProbabilisticPolicy) Name() string { return "probabilistic" }

// Aggregation selects how models are combined after sharing.
type Aggregation int

const (
	// AggNeighborhood is the D-PSGD weighted neighborhood average
	// (Algorithm 1 line 8) using the Metropolis-Hastings matrix W.
	AggNeighborhood Aggregation = iota
	// AggGlobal is the hypothetical all-reduce of Figure 1: every round all
	// models are averaged globally.
	AggGlobal
)

// Algorithm bundles schedule, policy and aggregation into one of the
// paper's five configurations.
type Algorithm struct {
	Label       string
	Schedule    Schedule
	Policy      Policy
	Aggregation Aggregation
}

// DPSGD returns the baseline D-PSGD algorithm (Algorithm 1).
func DPSGD() Algorithm {
	return Algorithm{Label: "D-PSGD", Schedule: AllTrain{}, Policy: AlwaysTrain{}}
}

// AllReduce returns D-PSGD with global averaging every round, the upper
// bound of Figure 1.
func AllReduce() Algorithm {
	return Algorithm{Label: "All-Reduce", Schedule: AllTrain{}, Policy: AlwaysTrain{}, Aggregation: AggGlobal}
}

// SkipTrain returns the unconstrained SkipTrain algorithm with the given
// coordinated schedule.
func SkipTrain(g Gamma) Algorithm {
	return Algorithm{Label: fmt.Sprintf("SkipTrain Γt=%d Γs=%d", g.GammaTrain, g.GammaSync),
		Schedule: g, Policy: AlwaysTrain{}}
}

// SkipTrainConstrained returns the energy-constrained SkipTrain variant
// (Algorithm 2) for the given horizon and budgets.
func SkipTrainConstrained(g Gamma, T int, budget *energy.Budget, nodes int) Algorithm {
	return Algorithm{Label: fmt.Sprintf("SkipTrain-constrained Γt=%d Γs=%d", g.GammaTrain, g.GammaSync),
		Schedule: g, Policy: NewProbabilisticPolicy(g, T, budget, nodes)}
}

// Greedy returns the Greedy baseline: train every round until the budget is
// exhausted, then only synchronize.
func Greedy(budget *energy.Budget) Algorithm {
	return Algorithm{Label: "Greedy", Schedule: AllTrain{}, Policy: GreedyPolicy{Budget: budget}}
}
