package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/energy"
	"repro/internal/rng"
)

func TestGammaPattern(t *testing.T) {
	g, err := NewGamma(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []RoundKind{RoundTrain, RoundTrain, RoundSync, RoundSync, RoundSync,
		RoundTrain, RoundTrain, RoundSync, RoundSync, RoundSync}
	for i, k := range want {
		if g.Kind(i) != k {
			t.Fatalf("round %d = %v, want %v", i, g.Kind(i), k)
		}
	}
}

func TestGammaValidation(t *testing.T) {
	if _, err := NewGamma(0, 1); err == nil {
		t.Fatal("gammaTrain=0 should error")
	}
	if _, err := NewGamma(1, -1); err == nil {
		t.Fatal("negative gammaSync should error")
	}
	if _, err := NewGamma(1, 0); err != nil {
		t.Fatal("gammaSync=0 (pure training) should be allowed")
	}
}

func TestAllTrain(t *testing.T) {
	s := AllTrain{}
	for i := 0; i < 10; i++ {
		if s.Kind(i) != RoundTrain {
			t.Fatal("AllTrain must always train")
		}
	}
	if CountTrainRounds(s, 1000) != 1000 {
		t.Fatal("AllTrain count wrong")
	}
}

// TestCountTrainRoundsPaperValues pins the exact round counts behind the
// paper's energy table: over T=1000 rounds the Γ configurations of Figure 3
// consume exactly the training-round counts that, multiplied by the
// 1.51004 Wh network round energy, give the published Wh values.
func TestCountTrainRoundsPaperValues(t *testing.T) {
	cases := []struct {
		gt, gs int
		want   int // training rounds in 1000
		wh     float64
	}{
		{4, 4, 500, 755.02},  // 6-regular optimum (Table 3: 755.02 Wh)
		{3, 3, 501, 756.53},  // 8-regular optimum (Table 3: 756.53 Wh)
		{4, 2, 668, 1008.71}, // 10-regular optimum (Table 3: 1008.71 Wh)
		{1, 4, 200, 302.0},   // cheapest Figure 3 cell (302 Wh)
	}
	const networkRoundWh = 1.5100416 // 64*(6.5+6.0+2.6+8.4944) mWh in Wh
	for _, c := range cases {
		g, _ := NewGamma(c.gt, c.gs)
		got := CountTrainRounds(g, 1000)
		if got != c.want {
			t.Fatalf("Γ=(%d,%d): %d training rounds, want %d", c.gt, c.gs, got, c.want)
		}
		wh := float64(got) * networkRoundWh
		if math.Abs(wh-c.wh) > 0.5 {
			t.Fatalf("Γ=(%d,%d): energy %.2f Wh, paper %.2f", c.gt, c.gs, wh, c.wh)
		}
	}
}

func TestTTrainEq4(t *testing.T) {
	g, _ := NewGamma(4, 2)
	// Eq. (4): 4/6 * 1000 = 666.67
	if got := g.TTrain(1000); math.Abs(got-666.666666) > 1e-3 {
		t.Fatalf("TTrain = %v", got)
	}
	g2, _ := NewGamma(4, 4)
	if got := g2.TTrain(1000); got != 500 {
		t.Fatalf("TTrain = %v, want 500", got)
	}
}

func TestCountVsTTrainClose(t *testing.T) {
	// Property: the exact count differs from Eq. (4) by less than one cycle.
	f := func(gtRaw, gsRaw uint8, tRaw uint16) bool {
		gt := 1 + int(gtRaw)%4
		gs := int(gsRaw) % 5
		T := 1 + int(tRaw)%2000
		g, err := NewGamma(gt, gs)
		if err != nil {
			return false
		}
		exact := float64(CountTrainRounds(g, T))
		nominal := g.TTrain(T)
		return math.Abs(exact-nominal) <= float64(gt+gs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainingProbabilityEq5(t *testing.T) {
	if p := TrainingProbability(250, 500); p != 0.5 {
		t.Fatalf("p = %v, want 0.5", p)
	}
	if p := TrainingProbability(600, 500); p != 1 {
		t.Fatalf("p = %v, want clamp to 1", p)
	}
	if p := TrainingProbability(0, 500); p != 0 {
		t.Fatalf("p = %v, want 0", p)
	}
	if p := TrainingProbability(10, 0); p != 1 {
		t.Fatalf("degenerate T_train should give p=1, got %v", p)
	}
}

func TestPaperTrainingProbabilities(t *testing.T) {
	// CIFAR-10, 6-regular: Γ=(4,4), T=1000 -> T_train=500. Device budgets
	// 272/324/681/272 -> p = 0.544, 0.648, 1 (clamped), 0.544.
	g, _ := NewGamma(4, 4)
	tTrain := g.TTrain(1000)
	want := []float64{0.544, 0.648, 1.0, 0.544}
	taus := []int{272, 324, 681, 272}
	for i, tau := range taus {
		if p := TrainingProbability(tau, tTrain); math.Abs(p-want[i]) > 1e-9 {
			t.Fatalf("tau=%d: p = %v, want %v", tau, p, want[i])
		}
	}
}

// at is the direct-drive context for round t: policies that only read the
// round index need nothing else.
func at(t int) RoundContext { return ContextAt(nil, t, 0) }

func TestAlwaysTrainPolicy(t *testing.T) {
	p := AlwaysTrain{}
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		if !p.Participate(0, at(i), r) {
			t.Fatal("AlwaysTrain refused")
		}
	}
}

func TestContextAt(t *testing.T) {
	g, _ := NewGamma(2, 1)
	ctx := ContextAt(g, 2, 30)
	if ctx.Round != 2 || ctx.Horizon != 30 || ctx.Kind != RoundSync || ctx.Schedule != Schedule(g) {
		t.Fatalf("ContextAt built %+v", ctx)
	}
	// A nil schedule means every round trains.
	if ctx := ContextAt(nil, 5, 0); ctx.Kind != RoundTrain || ctx.Schedule != nil {
		t.Fatalf("nil-schedule context %+v", ctx)
	}
}

func TestGreedyPolicyExhaustsBudget(t *testing.T) {
	b := energy.NewBudget([]int{3, 0})
	p := GreedyPolicy{Budget: b}
	r := rng.New(2)
	got := 0
	for i := 0; i < 10; i++ {
		if p.Participate(0, at(i), r) {
			got++
		}
	}
	if got != 3 {
		t.Fatalf("greedy trained %d rounds, want 3", got)
	}
	if p.Participate(1, at(0), r) {
		t.Fatal("greedy with zero budget trained")
	}
	// Greedy trains its first 3 opportunities consecutively.
	b2 := energy.NewBudget([]int{2})
	p2 := GreedyPolicy{Budget: b2}
	if !p2.Participate(0, at(0), r) || !p2.Participate(0, at(1), r) || p2.Participate(0, at(2), r) {
		t.Fatal("greedy must train consecutively from the start")
	}
}

// TestLegacyPolicyAdapter pins the migration path for old-contract
// policies: wrapped, they see ctx.Round as their round index and keep
// their name.
func TestLegacyPolicyAdapter(t *testing.T) {
	legacy := evenRounds{}
	p := AdaptLegacy(legacy)
	if p.Name() != "even-rounds" {
		t.Fatalf("adapter name %q", p.Name())
	}
	r := rng.New(3)
	for i := 0; i < 6; i++ {
		if got := p.Participate(0, at(i), r); got != (i%2 == 0) {
			t.Fatalf("round %d: adapter gave %v", i, got)
		}
	}
}

type evenRounds struct{}

func (evenRounds) Participate(_, t int, _ *rng.RNG) bool { return t%2 == 0 }
func (evenRounds) Name() string                          { return "even-rounds" }

// TestBudgetPoliciesResettable pins the ResettablePolicy contract on the
// budget-backed policies: consumed after any training, rewound by Reset,
// and replaying the first run exactly.
func TestBudgetPoliciesResettable(t *testing.T) {
	var _ ResettablePolicy = GreedyPolicy{}
	var _ ResettablePolicy = (*ProbabilisticPolicy)(nil)

	b := energy.NewBudget([]int{2, 5})
	p := GreedyPolicy{Budget: b}
	if p.Consumed() {
		t.Fatal("fresh policy reports consumed")
	}
	r := rng.New(4)
	p.Participate(0, at(0), r)
	if !p.Consumed() {
		t.Fatal("spent budget not reported as consumed")
	}
	p.Reset()
	if p.Consumed() || b.Remaining(0) != 2 || b.Remaining(1) != 5 {
		t.Fatalf("Reset did not restore budgets: %d/%d", b.Remaining(0), b.Remaining(1))
	}

	g, _ := NewGamma(1, 1)
	pb := NewProbabilisticPolicy(g, 100, energy.NewBudget([]int{20}), 1)
	run := func() []bool {
		out := make([]bool, 40)
		rr := rng.Derive(11, 0)
		for i := range out {
			out[i] = pb.Participate(0, at(i), rr)
		}
		return out
	}
	first := run()
	if !pb.Consumed() {
		t.Fatal("probabilistic policy spent budget but reports fresh")
	}
	pb.Reset()
	if pb.Consumed() {
		t.Fatal("Reset left the policy consumed")
	}
	replay := run()
	for i := range first {
		if first[i] != replay[i] {
			t.Fatalf("round %d: replay diverged after Reset", i)
		}
	}
}

func TestProbabilisticPolicyBudget(t *testing.T) {
	g, _ := NewGamma(1, 1)
	b := energy.NewBudget([]int{5, 1000})
	p := NewProbabilisticPolicy(g, 100, b, 2) // T_train = 50
	if math.Abs(p.Probability(0)-0.1) > 1e-12 {
		t.Fatalf("p_0 = %v, want 0.1", p.Probability(0))
	}
	if p.Probability(1) != 1 {
		t.Fatalf("p_1 = %v, want 1 (clamped)", p.Probability(1))
	}
	r := rng.New(3)
	trained := 0
	for i := 0; i < 1000; i++ {
		if p.Participate(0, at(i), r) {
			trained++
		}
	}
	if trained != 5 {
		t.Fatalf("node 0 trained %d rounds, budget is 5", trained)
	}
}

func TestProbabilisticPolicyRate(t *testing.T) {
	// With a huge budget and p=0.5, participation rate ~0.5.
	g, _ := NewGamma(1, 1)
	b := energy.NewBudget([]int{5000})
	p := NewProbabilisticPolicy(g, 20000, b, 1) // T_train = 10000, p = 0.5
	r := rng.New(4)
	trained := 0
	for i := 0; i < 2000; i++ {
		if p.Participate(0, at(i), r) {
			trained++
		}
	}
	rate := float64(trained) / 2000
	if math.Abs(rate-0.5) > 0.05 {
		t.Fatalf("participation rate = %v, want ~0.5", rate)
	}
}

func TestProbabilisticDeterministicPerSeed(t *testing.T) {
	g, _ := NewGamma(2, 2)
	run := func() []bool {
		b := energy.NewBudget([]int{50})
		p := NewProbabilisticPolicy(g, 100, b, 1)
		r := rng.Derive(9, 0)
		out := make([]bool, 100)
		for i := range out {
			out[i] = p.Participate(0, at(i), r)
		}
		return out
	}
	a, bb := run(), run()
	for i := range a {
		if a[i] != bb[i] {
			t.Fatal("probabilistic policy not deterministic")
		}
	}
}

func TestAlgorithmConstructors(t *testing.T) {
	if a := DPSGD(); a.Label != "D-PSGD" || a.Aggregation != AggNeighborhood {
		t.Fatalf("DPSGD: %+v", a)
	}
	if a := AllReduce(); a.Aggregation != AggGlobal {
		t.Fatalf("AllReduce: %+v", a)
	}
	g, _ := NewGamma(3, 3)
	if a := SkipTrain(g); a.Schedule.Name() != "skiptrain(3,3)" {
		t.Fatalf("SkipTrain: %+v", a)
	}
	b := energy.NewBudget([]int{10, 10})
	if a := SkipTrainConstrained(g, 100, b, 2); a.Policy.Name() != "probabilistic" {
		t.Fatalf("SkipTrainConstrained: %+v", a)
	}
	if a := Greedy(b); a.Policy.Name() != "greedy" {
		t.Fatalf("Greedy: %+v", a)
	}
}

func TestRoundKindString(t *testing.T) {
	if RoundTrain.String() != "train" || RoundSync.String() != "sync" {
		t.Fatal("RoundKind strings wrong")
	}
}

func TestScheduleFromGammaFlags(t *testing.T) {
	s, err := ScheduleFromGammaFlags(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(AllTrain); !ok {
		t.Fatalf("(0,0) gave %T, want AllTrain", s)
	}
	s, err = ScheduleFromGammaFlags(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g, ok := s.(Gamma); !ok || g.GammaTrain != 4 || g.GammaSync != 2 {
		t.Fatalf("(4,2) gave %#v", s)
	}
	// The bugs the validation exists for: -gs without -gt was silently
	// ignored, and negative values were accepted.
	if _, err := ScheduleFromGammaFlags(0, 3); err == nil {
		t.Fatal("sync without train must error")
	}
	if _, err := ScheduleFromGammaFlags(-1, 2); err == nil {
		t.Fatal("negative train must error")
	}
	if _, err := ScheduleFromGammaFlags(2, -1); err == nil {
		t.Fatal("negative sync must error")
	}
}
