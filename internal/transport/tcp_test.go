package transport

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/tensor"
)

func newTCPNet(t *testing.T, n int) *TCP {
	t.Helper()
	net, err := NewTCP(n, "127.0.0.1", 32)
	if err != nil {
		t.Skipf("cannot open localhost sockets in this environment: %v", err)
	}
	t.Cleanup(func() { net.Close() })
	return net
}

func TestTCPSendRecv(t *testing.T) {
	net := newTCPNet(t, 2)
	e0, err := net.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := net.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.Vector{3.14, -2.71, 0}
	if err := e0.Send(1, Message{Round: 9, Kind: KindModel, Vec: want}); err != nil {
		t.Fatal(err)
	}
	m, err := e1.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 0 || m.To != 1 || m.Round != 9 {
		t.Fatalf("header %+v", m)
	}
	for i := range want {
		if m.Vec[i] != want[i] {
			t.Fatalf("payload[%d] = %v", i, m.Vec[i])
		}
	}
}

func TestTCPBidirectional(t *testing.T) {
	net := newTCPNet(t, 2)
	e0, _ := net.Endpoint(0)
	e1, _ := net.Endpoint(1)
	if err := e0.Send(1, Message{Round: 1, Kind: KindModel, Vec: tensor.Vector{1}}); err != nil {
		t.Fatal(err)
	}
	if err := e1.Send(0, Message{Round: 1, Kind: KindModel, Vec: tensor.Vector{2}}); err != nil {
		t.Fatal(err)
	}
	m1, err := e1.Recv()
	if err != nil || m1.Vec[0] != 1 {
		t.Fatalf("e1 recv: %v %+v", err, m1)
	}
	m0, err := e0.Recv()
	if err != nil || m0.Vec[0] != 2 {
		t.Fatalf("e0 recv: %v %+v", err, m0)
	}
}

func TestTCPLargeModelMessage(t *testing.T) {
	// A paper-size CIFAR model vector (89,834 floats = ~719 KB on the wire)
	// must survive framing across real sockets.
	net := newTCPNet(t, 2)
	e0, _ := net.Endpoint(0)
	e1, _ := net.Endpoint(1)
	vec := tensor.NewVector(89834)
	for i := range vec {
		vec[i] = float64(i%997) * 0.001
	}
	if err := e0.Send(1, Message{Round: 1, Kind: KindModel, Vec: vec}); err != nil {
		t.Fatal(err)
	}
	m, err := e1.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Vec) != len(vec) {
		t.Fatalf("len %d", len(m.Vec))
	}
	for i := 0; i < len(vec); i += 1000 {
		if m.Vec[i] != vec[i] {
			t.Fatalf("payload[%d] = %v, want %v", i, m.Vec[i], vec[i])
		}
	}
}

func TestTCPRoundExchange(t *testing.T) {
	// A ring exchange over real sockets: node i sends to (i+1)%n and
	// receives from (i-1+n)%n, twice (two rounds).
	const n = 4
	net := newTCPNet(t, n)
	eps := make([]Endpoint, n)
	for i := range eps {
		var err error
		eps[i], err = net.Endpoint(i)
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for round := 1; round <= 2; round++ {
				err := eps[i].Send((i+1)%n, Message{Round: round, Kind: KindModel, Vec: tensor.Vector{float64(i*10 + round)}})
				if err != nil {
					errs <- err
					return
				}
				m, err := eps[i].Recv()
				if err != nil {
					errs <- err
					return
				}
				wantFrom := (i - 1 + n) % n
				if m.From != wantFrom || m.Round != round {
					errs <- errors.New("wrong sender or round in ring exchange")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPEndpointClaims(t *testing.T) {
	net := newTCPNet(t, 2)
	if _, err := net.Endpoint(0); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Endpoint(0); err == nil {
		t.Fatal("double claim should error")
	}
	if _, err := net.Endpoint(-1); err == nil {
		t.Fatal("negative node should error")
	}
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	net := newTCPNet(t, 2)
	e0, _ := net.Endpoint(0)
	done := make(chan error, 1)
	go func() {
		_, err := e0.Recv()
		done <- err
	}()
	net.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after close = %v, want ErrClosed", err)
	}
}

// The sweep server holds TCP transports open across many jobs, so the
// shutdown edges matter: Send after Close must fail with ErrClosed
// instead of writing to a dead socket.
func TestTCPSendAfterClose(t *testing.T) {
	net := newTCPNet(t, 2)
	e0, _ := net.Endpoint(0)
	if err := e0.Send(1, Message{Round: 1, Kind: KindModel, Vec: tensor.Vector{1}}); err != nil {
		t.Fatal(err)
	}
	if err := net.Close(); err != nil {
		t.Fatal(err)
	}
	err := e0.Send(1, Message{Round: 2, Kind: KindModel, Vec: tensor.Vector{2}})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
}

// Recv on a closed transport drains buffered messages first, then reports
// ErrClosed forever — it must never block or return a zero message.
func TestTCPRecvOnClosedDrainsThenErrs(t *testing.T) {
	net := newTCPNet(t, 2)
	e0, _ := net.Endpoint(0)
	e1, _ := net.Endpoint(1)
	if err := e0.Send(1, Message{Round: 3, Kind: KindControl}); err != nil {
		t.Fatal(err)
	}
	// Wait for delivery before closing, so the message is buffered in the
	// inbox rather than in flight on the socket.
	m, err := e1.Recv()
	if err != nil || m.Round != 3 {
		t.Fatalf("recv before close: %v %+v", err, m)
	}
	net.Close()
	for i := 0; i < 3; i++ {
		if _, err := e1.Recv(); !errors.Is(err, ErrClosed) {
			t.Fatalf("Recv %d on closed transport = %v, want ErrClosed", i, err)
		}
	}
}

// Close must be idempotent: the second call is a no-op that returns nil
// and must not double-close inboxes or connections.
func TestTCPDoubleClose(t *testing.T) {
	net := newTCPNet(t, 2)
	e0, _ := net.Endpoint(0)
	if err := e0.Send(1, Message{Round: 1, Kind: KindModel, Vec: tensor.Vector{1}}); err != nil {
		t.Fatal(err)
	}
	if err := net.Close(); err != nil {
		t.Fatal(err)
	}
	if err := net.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	// Endpoint claims after close fail loudly too.
	if _, err := net.Endpoint(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Endpoint after Close = %v, want ErrClosed", err)
	}
}

func TestTCPAddrExposed(t *testing.T) {
	net := newTCPNet(t, 2)
	if net.Addr(0) == "" || net.Addr(0) == net.Addr(1) {
		t.Fatalf("addresses: %q %q", net.Addr(0), net.Addr(1))
	}
}

func BenchmarkLocalRoundTrip(b *testing.B) {
	net, _ := NewLocal(2, 4)
	defer net.Close()
	e0, _ := net.Endpoint(0)
	e1, _ := net.Endpoint(1)
	vec := tensor.NewVector(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e0.Send(1, Message{Round: 1, Kind: KindModel, Vec: vec})
		e1.Recv()
	}
}

func BenchmarkTCPRoundTrip(b *testing.B) {
	net, err := NewTCP(2, "127.0.0.1", 4)
	if err != nil {
		b.Skip("no localhost sockets")
	}
	defer net.Close()
	e0, _ := net.Endpoint(0)
	e1, _ := net.Endpoint(1)
	vec := tensor.NewVector(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e0.Send(1, Message{Round: 1, Kind: KindModel, Vec: vec}); err != nil {
			b.Fatal(err)
		}
		if _, err := e1.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}
