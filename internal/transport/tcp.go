package transport

import (
	"fmt"
	"net"
	"sync"
)

// TCP is a Network whose nodes are real TCP peers. Every node owns a
// listener; connections are dialed lazily on first send and cached. The
// address registry is built up front, so the network must be constructed
// with the full node count — mirroring the static topology assumption of
// D-PSGD (Section 5.3 of the paper).
type TCP struct {
	n         int
	addrs     []string
	listeners []net.Listener
	inboxes   []chan Message
	claimed   []bool

	mu     sync.Mutex
	conns  map[[2]int]net.Conn // (from, to) -> outbound conn
	closed bool
	wg     sync.WaitGroup
}

// NewTCP starts n listeners on the given host (use "127.0.0.1" for local
// experiments) with OS-assigned ports and the given inbox capacity.
func NewTCP(n int, host string, capacity int) (*TCP, error) {
	if n < 1 || capacity < 1 {
		return nil, fmt.Errorf("transport: invalid tcp network n=%d capacity=%d", n, capacity)
	}
	t := &TCP{
		n:         n,
		addrs:     make([]string, n),
		listeners: make([]net.Listener, n),
		inboxes:   make([]chan Message, n),
		claimed:   make([]bool, n),
		conns:     map[[2]int]net.Conn{},
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: listen for node %d: %w", i, err)
		}
		t.listeners[i] = ln
		t.addrs[i] = ln.Addr().String()
		t.inboxes[i] = make(chan Message, capacity)
		t.wg.Add(1)
		go t.acceptLoop(i, ln)
	}
	return t, nil
}

// Addr returns the listen address of a node, for logging and examples.
func (t *TCP) Addr(node int) string { return t.addrs[node] }

func (t *TCP) acceptLoop(node int, ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readLoop(node, conn)
	}
}

func (t *TCP) readLoop(node int, conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	for {
		m, err := ReadMessage(conn)
		if err != nil {
			return // peer closed or stream corrupt
		}
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		select {
		case t.inboxes[node] <- m:
		default:
			// Inbox full: block rather than drop, but re-check closure so
			// shutdown cannot deadlock.
			t.inboxes[node] <- m
		}
	}
}

type tcpEndpoint struct {
	node int
	net  *TCP
}

// Endpoint returns the endpoint for node; each node may claim one endpoint.
func (t *TCP) Endpoint(node int) (Endpoint, error) {
	if node < 0 || node >= t.n {
		return nil, fmt.Errorf("transport: node %d out of range [0,%d)", node, t.n)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if t.claimed[node] {
		return nil, fmt.Errorf("transport: endpoint %d already claimed", node)
	}
	t.claimed[node] = true
	return &tcpEndpoint{node: node, net: t}, nil
}

// Close shuts down all listeners and cached connections.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, ln := range t.listeners {
		if ln != nil {
			ln.Close()
		}
	}
	for _, c := range t.conns {
		c.Close()
	}
	inboxes := t.inboxes
	t.mu.Unlock()
	t.wg.Wait()
	for _, ch := range inboxes {
		close(ch)
	}
	return nil
}

func (e *tcpEndpoint) conn(to int) (net.Conn, error) {
	key := [2]int{e.node, to}
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	if e.net.closed {
		return nil, ErrClosed
	}
	if c, ok := e.net.conns[key]; ok {
		return c, nil
	}
	c, err := net.Dial("tcp", e.net.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("transport: dial node %d: %w", to, err)
	}
	e.net.conns[key] = c
	return c, nil
}

func (e *tcpEndpoint) Send(to int, m Message) error {
	if to < 0 || to >= e.net.n {
		return fmt.Errorf("transport: destination %d out of range", to)
	}
	m.From = e.node
	m.To = to
	c, err := e.conn(to)
	if err != nil {
		return err
	}
	// Serialize writes on the shared connection: two concurrent Sends from
	// one node to one peer must not interleave frames.
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	if e.net.closed {
		return ErrClosed
	}
	return WriteMessage(c, m)
}

func (e *tcpEndpoint) Recv() (Message, error) {
	m, ok := <-e.net.inboxes[e.node]
	if !ok {
		return Message{}, ErrClosed
	}
	return m, nil
}

func (e *tcpEndpoint) Close() error { return nil }
