package transport

import (
	"fmt"
	"sync"
)

// Flaky wraps a Network and injects deterministic send failures, used to
// verify that the simulation engine surfaces transport errors instead of
// hanging or silently corrupting a round. Failures follow a fixed pattern:
// every FailEvery-th send across the whole network errors.
//
// Flaky also understands per-round liveness: after SetLive, messages on
// edges incident to dead nodes are silently dropped (and counted) before
// failure injection, the same radio-silence semantics as DeadNode. This
// lets one wrapper exercise both failure modes — noisy links between live
// nodes, and dead links to browned-out ones — in the same run.
type Flaky struct {
	Inner Network
	// FailEvery makes every n-th Send fail (0 disables injection).
	FailEvery int

	mu    sync.Mutex
	sends int
	gate  liveGate
}

// ErrInjected is returned by failed sends.
var ErrInjected = fmt.Errorf("transport: injected failure")

// Endpoint wraps the inner endpoint.
func (f *Flaky) Endpoint(node int) (Endpoint, error) {
	ep, err := f.Inner.Endpoint(node)
	if err != nil {
		return nil, err
	}
	return &flakyEndpoint{node: node, inner: ep, net: f}, nil
}

// Close closes the inner network.
func (f *Flaky) Close() error { return f.Inner.Close() }

// Sends returns the total sends attempted so far.
func (f *Flaky) Sends() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sends
}

// SetLive installs the live set for the current round (copied; nil marks
// every node live). Messages on edges incident to dead nodes are dropped
// without error and without consuming a failure-injection slot.
func (f *Flaky) SetLive(live []bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gate.set(live)
}

// Dropped returns how many messages have been lost on dead edges so far.
func (f *Flaky) Dropped() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gate.dropped
}

type flakyEndpoint struct {
	node  int
	inner Endpoint
	net   *Flaky
}

func (e *flakyEndpoint) Send(to int, m Message) error {
	e.net.mu.Lock()
	if e.net.gate.edgeDown(e.node, to) {
		e.net.mu.Unlock()
		return nil
	}
	e.net.sends++
	fail := e.net.FailEvery > 0 && e.net.sends%e.net.FailEvery == 0
	e.net.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return e.inner.Send(to, m)
}

func (e *flakyEndpoint) Recv() (Message, error) { return e.inner.Recv() }
func (e *flakyEndpoint) Close() error           { return e.inner.Close() }
