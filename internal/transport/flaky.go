package transport

import (
	"fmt"
	"sync"
)

// Flaky wraps a Network and injects deterministic send failures, used to
// verify that the simulation engine surfaces transport errors instead of
// hanging or silently corrupting a round. Failures follow a fixed pattern:
// every FailEvery-th send across the whole network errors.
type Flaky struct {
	Inner Network
	// FailEvery makes every n-th Send fail (0 disables injection).
	FailEvery int

	mu    sync.Mutex
	sends int
}

// ErrInjected is returned by failed sends.
var ErrInjected = fmt.Errorf("transport: injected failure")

// Endpoint wraps the inner endpoint.
func (f *Flaky) Endpoint(node int) (Endpoint, error) {
	ep, err := f.Inner.Endpoint(node)
	if err != nil {
		return nil, err
	}
	return &flakyEndpoint{inner: ep, net: f}, nil
}

// Close closes the inner network.
func (f *Flaky) Close() error { return f.Inner.Close() }

// Sends returns the total sends attempted so far.
func (f *Flaky) Sends() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sends
}

type flakyEndpoint struct {
	inner Endpoint
	net   *Flaky
}

func (e *flakyEndpoint) Send(to int, m Message) error {
	e.net.mu.Lock()
	e.net.sends++
	fail := e.net.FailEvery > 0 && e.net.sends%e.net.FailEvery == 0
	e.net.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return e.inner.Send(to, m)
}

func (e *flakyEndpoint) Recv() (Message, error) { return e.inner.Recv() }
func (e *flakyEndpoint) Close() error           { return e.inner.Close() }
