package transport

import (
	"bytes"
	"strings"
	"testing"
)

func TestPackBytesRoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("x"),
		[]byte("12345678"),  // exactly one chunk
		[]byte("123456789"), // one chunk + 1
		[]byte(`{"kind":"gamma-grid","params":{"nodes":12}}`),
		bytes.Repeat([]byte{0x00, 0xff, 0x7f, 0x80}, 1000),
	}
	for _, in := range cases {
		vec, err := PackBytes(in)
		if err != nil {
			t.Fatalf("pack %d bytes: %v", len(in), err)
		}
		out, err := UnpackBytes(vec)
		if err != nil {
			t.Fatalf("unpack %d bytes: %v", len(in), err)
		}
		if !bytes.Equal(out, in) {
			t.Fatalf("round trip of %d bytes lost data", len(in))
		}
	}
}

// Packed payloads must survive the full wire codec — including NaN-pattern
// float64 elements that arbitrary byte strings produce.
func TestPackedBytesSurviveWireCodec(t *testing.T) {
	payload := []byte(strings.Repeat("\xff\x00nan-pattern\x7f", 64))
	vec, err := PackBytes(payload)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Kind{KindJob, KindResult, KindProgress} {
		buf, err := Marshal(nil, Message{From: 1, To: 2, Round: 7, Kind: kind, Vec: vec})
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		m, n, err := Unmarshal(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("kind %d: unmarshal: %v (consumed %d of %d)", kind, err, n, len(buf))
		}
		if m.Kind != kind || m.Round != 7 {
			t.Fatalf("kind %d: header %+v", kind, m)
		}
		got, err := UnpackBytes(m.Vec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("kind %d: payload corrupted on the wire", kind)
		}
	}
}

func TestUnpackBytesRejectsMalformed(t *testing.T) {
	if _, err := UnpackBytes(nil); err == nil {
		t.Fatal("empty vector must error")
	}
	if _, err := UnpackBytes([]float64{-8, 0}); err == nil {
		t.Fatal("negative length must error")
	}
	if _, err := UnpackBytes([]float64{3.5, 0}); err == nil {
		t.Fatal("fractional length must error")
	}
	if _, err := UnpackBytes([]float64{16, 0}); err == nil {
		t.Fatal("length/element mismatch must error")
	}
	if _, err := UnpackBytes([]float64{float64(MaxPackedBytes) + 8, 0}); err == nil {
		t.Fatal("oversize length must error")
	}
}

func TestUnknownKindStillRejected(t *testing.T) {
	buf, err := Marshal(nil, Message{From: 0, To: 1, Round: 0, Kind: KindProgress})
	if err != nil {
		t.Fatal(err)
	}
	buf[4] = byte(KindProgress) + 1 // first undefined kind value
	if _, _, err := Unmarshal(buf); err == nil {
		t.Fatal("undefined kind must be rejected")
	}
	if !ValidKind(KindJob) || !ValidKind(KindResult) || ValidKind(0) || ValidKind(KindProgress+1) {
		t.Fatal("ValidKind bounds wrong")
	}
}
