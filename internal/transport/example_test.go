package transport_test

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// Move a model vector between two nodes over the in-process channel
// network — the same Endpoint contract the TCP transport implements.
func ExampleLocal() {
	net, err := transport.NewLocal(2, 4)
	if err != nil {
		panic(err)
	}
	defer net.Close()
	a, _ := net.Endpoint(0)
	b, _ := net.Endpoint(1)

	if err := a.Send(1, transport.Message{
		Round: 0,
		Kind:  transport.KindModel,
		Vec:   tensor.Vector{0.5, -1.25},
	}); err != nil {
		panic(err)
	}
	m, err := b.Recv()
	if err != nil {
		panic(err)
	}
	fmt.Printf("from %d to %d: %v\n", m.From, m.To, m.Vec)
	// Output:
	// from 0 to 1: [0.5 -1.25]
}

// Silence a browned-out node for a round: messages on its edges vanish
// without an error (the sender's radio cannot know the peer is dead), and
// the wrapper counts the losses.
func ExampleDeadNode() {
	inner, err := transport.NewLocal(2, 4)
	if err != nil {
		panic(err)
	}
	net := &transport.DeadNode{Inner: inner}
	defer net.Close()
	a, _ := net.Endpoint(0)
	b, _ := net.Endpoint(1)

	net.SetLive([]bool{true, false}) // node 1 browned out
	err = a.Send(1, transport.Message{Kind: transport.KindModel, Vec: tensor.Vector{1}})
	fmt.Printf("send error: %v, dropped: %d\n", err, net.Dropped())

	net.SetLive(nil) // node 1 recharged: edges restored
	a.Send(1, transport.Message{Kind: transport.KindModel, Vec: tensor.Vector{2}})
	m, _ := b.Recv()
	fmt.Printf("delivered after recharge: %v\n", m.Vec)
	// Output:
	// send error: <nil>, dropped: 1
	// delivered after recharge: [2]
}
