package transport

import (
	"testing"

	"repro/internal/tensor"
)

func TestDeadNodeDropsIncidentEdges(t *testing.T) {
	inner, err := NewLocal(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	dn := &DeadNode{Inner: inner}
	eps := make([]Endpoint, 3)
	for i := range eps {
		if eps[i], err = dn.Endpoint(i); err != nil {
			t.Fatal(err)
		}
	}
	dn.SetLive([]bool{true, false, true})

	// live -> dead: silently dropped, no error.
	if err := eps[0].Send(1, Message{Kind: KindModel, Vec: tensor.Vector{1}}); err != nil {
		t.Fatalf("send to dead node errored: %v", err)
	}
	// dead -> live: also dropped.
	if err := eps[1].Send(2, Message{Kind: KindModel}); err != nil {
		t.Fatalf("send from dead node errored: %v", err)
	}
	// live -> live: delivered.
	if err := eps[0].Send(2, Message{Kind: KindModel, Vec: tensor.Vector{7}}); err != nil {
		t.Fatal(err)
	}
	m, err := eps[2].Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 0 || m.Vec[0] != 7 {
		t.Fatalf("live edge corrupted: %+v", m)
	}
	if dn.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", dn.Dropped())
	}

	// Reviving the node restores its edges.
	dn.SetLive(nil)
	if err := eps[0].Send(1, Message{Kind: KindModel, Vec: tensor.Vector{3}}); err != nil {
		t.Fatal(err)
	}
	if m, err = eps[1].Recv(); err != nil || m.Vec[0] != 3 {
		t.Fatalf("revived edge broken: %+v, %v", m, err)
	}
	if dn.Dropped() != 2 {
		t.Fatalf("transparent sends counted as drops: %d", dn.Dropped())
	}
	if err := dn.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadNodeShortMaskIsLive(t *testing.T) {
	inner, _ := NewLocal(3, 4)
	dn := &DeadNode{Inner: inner}
	defer dn.Close()
	dn.SetLive([]bool{false}) // nodes 1, 2 beyond the mask: treated live
	e1, _ := dn.Endpoint(1)
	e2, _ := dn.Endpoint(2)
	if err := e1.Send(2, Message{Kind: KindControl}); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Recv(); err != nil {
		t.Fatal(err)
	}
	if dn.Dropped() != 0 {
		t.Fatalf("in-mask live edge dropped: %d", dn.Dropped())
	}
}

func TestFlakyRespectsLiveSet(t *testing.T) {
	inner, err := NewLocal(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	fl := &Flaky{Inner: inner, FailEvery: 1} // every counted send fails
	defer fl.Close()
	e0, err := fl.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	fl.SetLive([]bool{true, false})
	// Dead-incident sends are dropped before failure injection: no error,
	// no failure slot consumed.
	if err := e0.Send(1, Message{Kind: KindControl}); err != nil {
		t.Fatalf("dead edge consumed a failure slot: %v", err)
	}
	if fl.Dropped() != 1 || fl.Sends() != 0 {
		t.Fatalf("dropped=%d sends=%d, want 1/0", fl.Dropped(), fl.Sends())
	}
	// Live edges still see the injected failures.
	fl.SetLive(nil)
	if err := e0.Send(1, Message{Kind: KindControl}); err != ErrInjected {
		t.Fatalf("live edge skipped injection: %v", err)
	}
}
