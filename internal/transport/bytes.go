package transport

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// The sweep service reuses the model wire format for its control plane:
// job requests, replies, and streamed progress events are JSON documents
// packed into the float64 payload vector. Element 0 carries the byte
// length; each following element carries 8 payload bytes in its IEEE-754
// bit pattern (little-endian). Float64bits round-trips every bit pattern
// exactly, so arbitrary bytes survive the Marshal/Unmarshal path.

// MaxPackedBytes caps a packed byte payload; it mirrors MaxPayload on the
// element count ((MaxPayload-1) elements of 8 bytes each).
const MaxPackedBytes = (MaxPayload - 1) * 8

// PackBytes encodes raw bytes into a payload vector for KindJob,
// KindResult, and KindProgress frames.
func PackBytes(b []byte) (tensor.Vector, error) {
	if len(b) > MaxPackedBytes {
		return nil, fmt.Errorf("transport: packed payload %d exceeds max %d", len(b), MaxPackedBytes)
	}
	vec := tensor.NewVector(1 + (len(b)+7)/8)
	vec[0] = float64(len(b))
	var chunk [8]byte
	for i := 0; i < len(b); i += 8 {
		copy(chunk[:], b[i:min(i+8, len(b))])
		vec[1+i/8] = math.Float64frombits(binary.LittleEndian.Uint64(chunk[:]))
		chunk = [8]byte{}
	}
	return vec, nil
}

// UnpackBytes reverses PackBytes.
func UnpackBytes(vec tensor.Vector) ([]byte, error) {
	if len(vec) == 0 {
		return nil, fmt.Errorf("transport: packed payload missing length element")
	}
	n := int(vec[0])
	if float64(n) != vec[0] || n < 0 || n > MaxPackedBytes {
		return nil, fmt.Errorf("transport: bad packed length %v", vec[0])
	}
	if want := 1 + (n+7)/8; len(vec) != want {
		return nil, fmt.Errorf("transport: packed payload has %d elements, want %d for %d bytes", len(vec), want, n)
	}
	out := make([]byte, (n+7)/8*8)
	for i := 1; i < len(vec); i++ {
		binary.LittleEndian.PutUint64(out[(i-1)*8:], math.Float64bits(vec[i]))
	}
	return out[:n], nil
}
