package transport

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	m := Message{From: 3, To: 7, Round: 42, Kind: KindModel, Vec: tensor.Vector{1.5, -2.25, 0, 1e300}}
	buf, err := Marshal(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != EncodedSize(4) {
		t.Fatalf("encoded size %d, want %d", len(buf), EncodedSize(4))
	}
	got, n, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d", n, len(buf))
	}
	if got.From != 3 || got.To != 7 || got.Round != 42 || got.Kind != KindModel {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range m.Vec {
		if got.Vec[i] != m.Vec[i] {
			t.Fatalf("payload[%d] = %v, want %v", i, got.Vec[i], m.Vec[i])
		}
	}
}

func TestMarshalEmptyPayload(t *testing.T) {
	m := Message{From: 0, To: 1, Round: 0, Kind: KindControl}
	buf, err := Marshal(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Vec) != 0 || got.Kind != KindControl {
		t.Fatalf("control round trip: %+v", got)
	}
}

func TestMarshalValidation(t *testing.T) {
	if _, err := Marshal(nil, Message{From: 0, To: 1}); err == nil {
		t.Fatal("kind unset should error")
	}
	if _, err := Marshal(nil, Message{From: -1, To: 1, Kind: KindModel}); err == nil {
		t.Fatal("negative node should error")
	}
	if _, err := Marshal(nil, Message{From: 0, To: 1, Round: -5, Kind: KindModel}); err == nil {
		t.Fatal("negative round should error")
	}
}

func TestUnmarshalCorruption(t *testing.T) {
	m := Message{From: 1, To: 2, Round: 3, Kind: KindModel, Vec: tensor.Vector{1, 2}}
	buf, _ := Marshal(nil, m)
	if _, _, err := Unmarshal(buf[:10]); err == nil {
		t.Fatal("truncated header should error")
	}
	if _, _, err := Unmarshal(buf[:len(buf)-4]); err == nil {
		t.Fatal("truncated payload should error")
	}
	bad := append([]byte{}, buf...)
	bad[0] ^= 0xff
	if _, _, err := Unmarshal(bad); err == nil {
		t.Fatal("bad magic should error")
	}
	badKind := append([]byte{}, buf...)
	badKind[4] = 99
	if _, _, err := Unmarshal(badKind); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestUnmarshalHostileLength(t *testing.T) {
	m := Message{From: 1, To: 2, Round: 3, Kind: KindModel, Vec: tensor.Vector{1}}
	buf, _ := Marshal(nil, m)
	// Overwrite count with an absurd value.
	buf[17], buf[18], buf[19], buf[20] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := Unmarshal(buf); err == nil {
		t.Fatal("hostile length should error, not allocate 32 GiB")
	}
}

func TestCodecProperty(t *testing.T) {
	f := func(from, to, round uint16, raw []byte) bool {
		vec := make(tensor.Vector, len(raw)%64)
		for i := range vec {
			vec[i] = float64(int(raw[i%max(1, len(raw))])-128) / 7.0
		}
		m := Message{From: int(from), To: int(to), Round: int(round), Kind: KindModel, Vec: vec}
		buf, err := Marshal(nil, m)
		if err != nil {
			return false
		}
		got, n, err := Unmarshal(buf)
		if err != nil || n != len(buf) {
			return false
		}
		if got.From != m.From || got.To != m.To || got.Round != m.Round {
			return false
		}
		if len(got.Vec) != len(m.Vec) {
			return false
		}
		for i := range vec {
			if got.Vec[i] != vec[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamReadWrite(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		{From: 0, To: 1, Round: 1, Kind: KindModel, Vec: tensor.Vector{1, 2, 3}},
		{From: 1, To: 0, Round: 1, Kind: KindControl},
		{From: 2, To: 1, Round: 2, Kind: KindModel, Vec: tensor.Vector{-1}},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if got.From != want.From || got.Round != want.Round || len(got.Vec) != len(want.Vec) {
			t.Fatalf("msg %d mismatch: %+v", i, got)
		}
	}
}

func TestLocalSendRecv(t *testing.T) {
	net, err := NewLocal(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	e0, _ := net.Endpoint(0)
	e1, _ := net.Endpoint(1)
	if err := e0.Send(1, Message{Round: 5, Kind: KindModel, Vec: tensor.Vector{9}}); err != nil {
		t.Fatal(err)
	}
	m, err := e1.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 0 || m.To != 1 || m.Round != 5 || m.Vec[0] != 9 {
		t.Fatalf("got %+v", m)
	}
}

func TestLocalSendCopiesVector(t *testing.T) {
	net, _ := NewLocal(2, 4)
	defer net.Close()
	e0, _ := net.Endpoint(0)
	e1, _ := net.Endpoint(1)
	vec := tensor.Vector{1, 2}
	e0.Send(1, Message{Kind: KindModel, Vec: vec})
	vec[0] = 99 // sender mutates its buffer after sending
	m, _ := e1.Recv()
	if m.Vec[0] != 1 {
		t.Fatal("transport must copy payloads; sender mutation leaked")
	}
}

func TestLocalEndpointClaims(t *testing.T) {
	net, _ := NewLocal(2, 4)
	defer net.Close()
	if _, err := net.Endpoint(0); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Endpoint(0); err == nil {
		t.Fatal("double claim should error")
	}
	if _, err := net.Endpoint(5); err == nil {
		t.Fatal("out-of-range node should error")
	}
}

func TestLocalCloseUnblocksRecv(t *testing.T) {
	net, _ := NewLocal(2, 4)
	e0, _ := net.Endpoint(0)
	done := make(chan error, 1)
	go func() {
		_, err := e0.Recv()
		done <- err
	}()
	net.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after close = %v, want ErrClosed", err)
	}
}

func TestLocalConcurrentExchange(t *testing.T) {
	// All-pairs exchange among 8 nodes: every node sends to all others and
	// receives n-1 messages; nothing deadlocks or is lost.
	const n = 8
	net, _ := NewLocal(n, n)
	defer net.Close()
	eps := make([]Endpoint, n)
	for i := range eps {
		eps[i], _ = net.Endpoint(i)
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				if err := eps[i].Send(j, Message{Round: 1, Kind: KindModel, Vec: tensor.Vector{float64(i)}}); err != nil {
					errs <- err
					return
				}
			}
			seen := map[int]bool{}
			for k := 0; k < n-1; k++ {
				m, err := eps[i].Recv()
				if err != nil {
					errs <- err
					return
				}
				if seen[m.From] || int(m.Vec[0]) != m.From {
					errs <- errors.New("duplicate or corrupt message")
					return
				}
				seen[m.From] = true
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestFlakyInjectsFailures(t *testing.T) {
	inner, _ := NewLocal(2, 8)
	f := &Flaky{Inner: inner, FailEvery: 3}
	defer f.Close()
	e0, err := f.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	fails := 0
	for i := 0; i < 9; i++ {
		if err := e0.Send(1, Message{Kind: KindControl}); errors.Is(err, ErrInjected) {
			fails++
		}
	}
	if fails != 3 {
		t.Fatalf("expected 3 injected failures in 9 sends, got %d", fails)
	}
	if f.Sends() != 9 {
		t.Fatalf("Sends() = %d", f.Sends())
	}
}

func TestFlakyDisabled(t *testing.T) {
	inner, _ := NewLocal(2, 8)
	f := &Flaky{Inner: inner} // FailEvery 0: passthrough
	defer f.Close()
	e0, _ := f.Endpoint(0)
	e1, _ := f.Endpoint(1)
	if err := e0.Send(1, Message{Kind: KindModel, Vec: tensor.Vector{1}}); err != nil {
		t.Fatal(err)
	}
	if m, err := e1.Recv(); err != nil || m.Vec[0] != 1 {
		t.Fatalf("passthrough broken: %v %+v", err, m)
	}
}
