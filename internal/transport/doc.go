// Package transport moves model vectors between nodes. It is the
// counterpart of DecentralizePy's socket layer in the paper's stack.
//
// # Networks and endpoints
//
// A Network hands out one Endpoint per node; Send delivers a Message to a
// peer and Recv blocks for the next arrival. Two implementations share the
// interface: Local delivers through buffered channels inside a single
// process (the fast path used for 256-node simulations), and TCP frames
// the same messages over real sockets (examples/tcpcluster and the
// transport tests run nodes as genuine network peers on localhost). The
// simulator is agnostic to which one it is given — runs are bit-identical
// across transports.
//
// # Fault-injection wrappers
//
// Two wrappers compose over any Network to model imperfect links:
//
//   - Flaky injects deterministic send failures (every n-th send errors),
//     used to verify the engine surfaces transport errors instead of
//     hanging or corrupting a round.
//   - DeadNode models brown-outs at the radio level: a per-round live set
//     marks unpowered nodes, and messages on edges incident to a dead node
//     vanish silently — the sender still pays its transmit cost, exactly
//     as a real radio would against an unpowered peer. Flaky understands
//     the same live sets, so noisy links and dead links compose in one
//     run.
//
// The simulation engine installs DeadNode automatically when dead-node
// dropout is enabled (sim.Config.DropDeadNodes) and refreshes the live set
// from battery state every round.
package transport
