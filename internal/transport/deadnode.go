package transport

import "sync"

// liveGate is the radio-silence state shared by the DeadNode and Flaky
// wrappers: a per-round liveness mask plus a counter of messages lost on
// dead edges. Callers hold their own lock around every method.
type liveGate struct {
	live    []bool
	dropped int
}

// set installs the live set, copying the mask so the caller may reuse its
// slice. A nil mask marks every node live.
func (g *liveGate) set(live []bool) {
	if live == nil {
		g.live = nil
		return
	}
	g.live = append(g.live[:0:0], live...)
}

// edgeDown reports whether the (from, to) edge is incident to a dead node,
// counting the message as dropped when it is.
func (g *liveGate) edgeDown(from, to int) bool {
	if !alive(g.live, from) || !alive(g.live, to) {
		g.dropped++
		return true
	}
	return false
}

// alive treats nodes at or beyond the mask's length as live, so a short
// mask never panics.
func alive(live []bool, i int) bool {
	return live == nil || i >= len(live) || live[i]
}

// DeadNode wraps a Network and models brown-outs at the radio level: while
// a node is marked dead, every edge incident to it is down, and messages
// sent across those edges vanish silently — exactly what a transmitter sees
// when the peer's radio is unpowered. The simulation engine updates the
// live set once per round (from battery state) and routes around dead
// nodes; the wrapper enforces the physics for any traffic that is sent
// anyway, so a sender still pays its transmit cost while the packet is
// lost.
//
// Send never errors for a dropped message (the radio cannot know the peer
// is dead); Dropped counts the losses for diagnostics and metrics. With no
// live set installed (or a nil one) the wrapper is transparent.
type DeadNode struct {
	Inner Network

	mu   sync.Mutex
	gate liveGate
}

// SetLive installs the live set for the current round, copying the mask so
// the caller may reuse its slice. A nil mask marks every node live. Nodes
// at or beyond the mask's length are treated as live, so a short mask
// never panics.
func (d *DeadNode) SetLive(live []bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.gate.set(live)
}

// Dropped returns how many messages have been lost on dead edges so far.
func (d *DeadNode) Dropped() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.gate.dropped
}

// Endpoint wraps the inner endpoint of the node.
func (d *DeadNode) Endpoint(node int) (Endpoint, error) {
	ep, err := d.Inner.Endpoint(node)
	if err != nil {
		return nil, err
	}
	return &deadNodeEndpoint{node: node, inner: ep, net: d}, nil
}

// Close closes the inner network.
func (d *DeadNode) Close() error { return d.Inner.Close() }

type deadNodeEndpoint struct {
	node  int
	inner Endpoint
	net   *DeadNode
}

func (e *deadNodeEndpoint) Send(to int, m Message) error {
	e.net.mu.Lock()
	down := e.net.gate.edgeDown(e.node, to)
	e.net.mu.Unlock()
	if down {
		return nil
	}
	return e.inner.Send(to, m)
}

func (e *deadNodeEndpoint) Recv() (Message, error) { return e.inner.Recv() }
func (e *deadNodeEndpoint) Close() error           { return e.inner.Close() }
