package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/tensor"
)

// Wire format (little-endian):
//
//	magic   uint32  0x444c4d31 "DLM1"
//	kind    uint8
//	from    int32
//	to      int32
//	round   int32
//	count   uint32  number of float64 payload elements
//	payload count * 8 bytes, IEEE-754 bits
//
// The fixed header is 21 bytes. A CIFAR-10 model message is
// 21 + 89834*8 = 718,693 bytes, matching the paper's observation that
// model exchange dominates traffic volume but not energy.

const (
	magic      = 0x444c4d31
	headerSize = 4 + 1 + 4 + 4 + 4 + 4
	// MaxPayload caps decoded payload length to prevent a corrupt or
	// hostile length field from exhausting memory. The largest model in
	// the reproduction is the 1,690,046-parameter FEMNIST CNN.
	MaxPayload = 16 << 20 // 16M elements = 128 MiB
)

// EncodedSize returns the wire size of a message with n payload elements.
func EncodedSize(n int) int { return headerSize + 8*n }

// Marshal appends the wire encoding of m to dst and returns the result.
func Marshal(dst []byte, m Message) ([]byte, error) {
	if m.Kind == 0 {
		return nil, fmt.Errorf("transport: message kind unset")
	}
	if len(m.Vec) > MaxPayload {
		return nil, fmt.Errorf("transport: payload %d exceeds max %d", len(m.Vec), MaxPayload)
	}
	if m.From < 0 || m.To < 0 || m.From > math.MaxInt32 || m.To > math.MaxInt32 {
		return nil, fmt.Errorf("transport: node ids (%d,%d) out of int32 range", m.From, m.To)
	}
	if m.Round < 0 || m.Round > math.MaxInt32 {
		return nil, fmt.Errorf("transport: round %d out of int32 range", m.Round)
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	hdr[4] = byte(m.Kind)
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(m.From))
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(m.To))
	binary.LittleEndian.PutUint32(hdr[13:17], uint32(m.Round))
	binary.LittleEndian.PutUint32(hdr[17:21], uint32(len(m.Vec)))
	dst = append(dst, hdr[:]...)
	var buf [8]byte
	for _, v := range m.Vec {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		dst = append(dst, buf[:]...)
	}
	return dst, nil
}

// Unmarshal decodes one message from b, returning the message and the
// number of bytes consumed.
func Unmarshal(b []byte) (Message, int, error) {
	if len(b) < headerSize {
		return Message{}, 0, fmt.Errorf("transport: short header: %d bytes", len(b))
	}
	if binary.LittleEndian.Uint32(b[0:4]) != magic {
		return Message{}, 0, fmt.Errorf("transport: bad magic %#x", binary.LittleEndian.Uint32(b[0:4]))
	}
	count := binary.LittleEndian.Uint32(b[17:21])
	if count > MaxPayload {
		return Message{}, 0, fmt.Errorf("transport: payload length %d exceeds max", count)
	}
	need := headerSize + 8*int(count)
	if len(b) < need {
		return Message{}, 0, fmt.Errorf("transport: short payload: have %d, need %d", len(b), need)
	}
	m := Message{
		Kind:  Kind(b[4]),
		From:  int(binary.LittleEndian.Uint32(b[5:9])),
		To:    int(binary.LittleEndian.Uint32(b[9:13])),
		Round: int(binary.LittleEndian.Uint32(b[13:17])),
	}
	if !ValidKind(m.Kind) {
		return Message{}, 0, fmt.Errorf("transport: unknown kind %d", b[4])
	}
	if count > 0 {
		m.Vec = tensor.NewVector(int(count))
		for i := 0; i < int(count); i++ {
			off := headerSize + 8*i
			m.Vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off : off+8]))
		}
	}
	return m, need, nil
}

// WriteMessage writes the framed encoding of m to w.
func WriteMessage(w io.Writer, m Message) error {
	buf, err := Marshal(make([]byte, 0, EncodedSize(len(m.Vec))), m)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadMessage reads one framed message from r.
func ReadMessage(r io.Reader) (Message, error) {
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return Message{}, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != magic {
		return Message{}, fmt.Errorf("transport: bad magic on stream")
	}
	count := binary.LittleEndian.Uint32(hdr[17:21])
	if count > MaxPayload {
		return Message{}, fmt.Errorf("transport: payload length %d exceeds max", count)
	}
	full := make([]byte, headerSize+8*int(count))
	copy(full, hdr)
	if _, err := io.ReadFull(r, full[headerSize:]); err != nil {
		return Message{}, err
	}
	m, _, err := Unmarshal(full)
	return m, err
}
