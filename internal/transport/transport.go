package transport

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/tensor"
)

// Kind tags the payload semantics of a message.
type Kind uint8

const (
	// KindModel carries a flat model parameter vector x_i.
	KindModel Kind = iota + 1
	// KindControl carries scheduling/coordination signals.
	KindControl
	// KindJob carries a sweep-service job request (JSON packed into Vec
	// via PackBytes).
	KindJob
	// KindResult carries a sweep-service job reply (JSON via PackBytes).
	KindResult
	// KindProgress carries one streamed obs.Event for an in-flight job
	// (JSON via PackBytes).
	KindProgress
)

// ValidKind reports whether k is a defined message kind. The codec rejects
// frames with undefined kinds, so extend this when adding a Kind.
func ValidKind(k Kind) bool { return k >= KindModel && k <= KindProgress }

// Message is one transfer between nodes. Vec is the flat model vector; for
// KindControl messages it may be empty.
type Message struct {
	From  int
	To    int
	Round int
	Kind  Kind
	Vec   tensor.Vector
}

// Endpoint is one node's connection to the network. Send may be called
// concurrently; Recv must be called from a single goroutine (the owning
// node).
type Endpoint interface {
	// Send delivers m to node `to`. It blocks only when the destination
	// inbox (or socket buffer) is full.
	Send(to int, m Message) error
	// Recv blocks until a message arrives or the endpoint closes, in which
	// case it returns ErrClosed.
	Recv() (Message, error)
	// Close releases the endpoint. Pending messages are discarded.
	Close() error
}

// Network hands out endpoints for node IDs in [0, N).
type Network interface {
	// Endpoint returns the endpoint of the given node. Each node's endpoint
	// may be requested once.
	Endpoint(node int) (Endpoint, error)
	// Close shuts down the whole network.
	Close() error
}

// ErrClosed is returned by Recv after Close.
var ErrClosed = errors.New("transport: endpoint closed")

// Local is an in-process Network backed by buffered channels.
type Local struct {
	n       int
	inboxes []chan Message
	claimed []bool
	mu      sync.Mutex
	closed  bool
}

// NewLocal creates a channel network for n nodes with the given per-node
// inbox capacity. Capacity must exceed the maximum number of in-flight
// messages per node (for round-synchronous exchange: 2x the node degree is
// safe; the default engine uses 4x).
func NewLocal(n, capacity int) (*Local, error) {
	if n < 1 || capacity < 1 {
		return nil, fmt.Errorf("transport: invalid local network n=%d capacity=%d", n, capacity)
	}
	l := &Local{n: n, inboxes: make([]chan Message, n), claimed: make([]bool, n)}
	for i := range l.inboxes {
		l.inboxes[i] = make(chan Message, capacity)
	}
	return l, nil
}

type localEndpoint struct {
	node int
	net  *Local
}

// Endpoint returns the endpoint of node. It errors on repeated claims so a
// misconfigured simulation fails loudly instead of stealing messages.
func (l *Local) Endpoint(node int) (Endpoint, error) {
	if node < 0 || node >= l.n {
		return nil, fmt.Errorf("transport: node %d out of range [0,%d)", node, l.n)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if l.claimed[node] {
		return nil, fmt.Errorf("transport: endpoint %d already claimed", node)
	}
	l.claimed[node] = true
	return &localEndpoint{node: node, net: l}, nil
}

// Close shuts the network down; subsequent Recv calls drain remaining
// messages then return ErrClosed.
func (l *Local) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	for _, ch := range l.inboxes {
		close(ch)
	}
	return nil
}

func (e *localEndpoint) Send(to int, m Message) error {
	if to < 0 || to >= e.net.n {
		return fmt.Errorf("transport: destination %d out of range", to)
	}
	m.From = e.node
	m.To = to
	// Copy the vector: the sender reuses its buffer next round, and shared
	// memory must behave like the wire.
	if m.Vec != nil {
		m.Vec = m.Vec.Clone()
	}
	e.net.mu.Lock()
	closed := e.net.closed
	e.net.mu.Unlock()
	if closed {
		return ErrClosed
	}
	e.net.inboxes[to] <- m
	return nil
}

func (e *localEndpoint) Recv() (Message, error) {
	m, ok := <-e.net.inboxes[e.node]
	if !ok {
		return Message{}, ErrClosed
	}
	return m, nil
}

func (e *localEndpoint) Close() error { return nil }
