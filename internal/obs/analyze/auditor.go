// Package analyze is the consuming half of the observability layer: where
// internal/obs emits telemetry streams, this package certifies and
// summarizes them. It provides the streaming Auditor (an obs.Sink that
// checks a run's internal consistency — energy conservation, brownout
// alternation, counter monotonicity, phase-time accounting — live during
// a run or offline over a JSONL file), the Report builder (reconstructing
// outage episodes, SoC timelines, and phase breakdowns from an event
// stream), cross-run diffing by manifest, and the BENCH_*.json regression
// gate behind `obstool regress`.
//
// The auditor is what lets a manifest-keyed run be trusted as a cache
// entry (the ROADMAP's memoized-sweep service): a stream that passes is
// internally consistent with the physics the engines claim to implement.
package analyze

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"

	"repro/internal/obs"
)

// Violation classes, one per invariant family the Auditor checks.
const (
	// ClassStructure: stream shape — events before run_start, missing
	// run_end, run_start with a round still open.
	ClassStructure = "structure"
	// ClassRound: round bracketing and monotonicity — unpaired
	// round_start/round_end, non-increasing round numbers.
	ClassRound = "round"
	// ClassEnergy: per-round energy conservation — harvested − consumed −
	// wasted must equal the fleet's change in charge, within EnergyTol.
	ClassEnergy = "energy"
	// ClassAlternation: per-node brownout/revival alternation — a node
	// must brown out before it can revive, and cannot brown out twice.
	ClassAlternation = "alternation"
	// ClassCounter: counter sanity — negative or fleet-exceeding
	// participation counts, run_end totals disagreeing with the rounds.
	ClassCounter = "counter"
	// ClassPhaseTime: phase-time accounting — the sum of a round's phase
	// wall clocks cannot exceed the round's wall clock.
	ClassPhaseTime = "phase-time"
	// ClassVTime: virtual-time monotonicity — VTime-stamped events of one
	// run segment (the event-driven engine's streams) must not go
	// backwards.
	ClassVTime = "vtime"
)

// EnergyRelTol is the documented relative float tolerance of the energy
// conservation check. The per-round identity
//
//	harvested − consumed − wasted = ΔCharge
//
// is exact in the physics, but the stream carries consumed/wasted as
// deltas of cumulative ledgers and charge as a fresh sum over nodes, so
// the comparison accumulates cancellation error that scales with the
// cumulative magnitudes, not the per-round ones. The check therefore
// allows |residual| ≤ EnergyRelTol × (1 + ΣharvestWh + ΣconsumedWh +
// ΣwastedWh + |chargeWh|), with the sums running over the audited stream.
const EnergyRelTol = 1e-9

// EnergyTol returns the absolute tolerance for one round's conservation
// residual given the stream's running cumulative energy magnitudes.
func EnergyTol(cumHarvest, cumConsumed, cumWasted, chargeWh float64) float64 {
	return EnergyRelTol * (1 + cumHarvest + cumConsumed + cumWasted + math.Abs(chargeWh))
}

// Violation is one invariant breach: where in the stream (Seq is the
// 0-based event index), which round and node (−1 when not applicable),
// which invariant class, and a human-readable message.
type Violation struct {
	Seq   int    `json:"seq"`
	Round int    `json:"round"`
	Node  int    `json:"node"`
	Class string `json:"class"`
	Msg   string `json:"msg"`
}

func (v Violation) String() string {
	return fmt.Sprintf("event %d [%s] round %d node %d: %s", v.Seq, v.Class, v.Round, v.Node, v.Msg)
}

// maxViolations caps the retained violation list; a corrupt stream can
// breach an invariant every round and the auditor must stay bounded.
const maxViolations = 64

// Auditor is an obs.Sink that checks streaming invariants as events
// arrive — attach it live (harvestsim -audit) or replay a JSONL file
// through it offline (AuditReader, `obstool report`). It is tolerant of
// every emitting engine's stream shape: runs without rounds (async, the
// grid runner), multiple run_start/run_end segments in one stream (the
// grid runner emits one per regime), and rounds without energy fields
// (no fleet attached). Violations are collected, not fatal: the stream
// is always consumed to the end so one breach does not mask later ones.
type Auditor struct {
	mu   sync.Mutex
	seq  int // events seen
	runs int // run_start events seen
	ends int // run_end events seen

	openRound   int   // currently open round, -1 when none
	lastRound   int   // last round opened in this run segment
	roundEnds   int   // round_end count in this run segment
	trainedSum  int   // sum of round_end Trained in this run segment
	phaseNs     int64 // phase wall-clock accumulated in the open round
	fleetSize   int   // manifest Nodes, 0 when unknown
	down        map[int]bool
	prevCharge  float64 // fleet charge at the last energy-bearing event
	haveCharge  bool    // prevCharge is a valid baseline
	cumHarvest  float64
	cumConsumed float64
	cumWasted   float64
	vtime       bool    // this segment carries virtual-time stamps
	lastVTime   float64 // highest VTime seen in this segment

	violations []Violation
	overflow   int // violations dropped past maxViolations
}

// NewAuditor returns an empty auditor ready to receive a stream.
func NewAuditor() *Auditor {
	return &Auditor{openRound: -1, lastRound: -1, down: map[int]bool{}}
}

func (a *Auditor) violate(round, node int, class, format string, args ...any) {
	if len(a.violations) >= maxViolations {
		a.overflow++
		return
	}
	a.violations = append(a.violations, Violation{
		Seq: a.seq, Round: round, Node: node, Class: class,
		Msg: fmt.Sprintf(format, args...),
	})
}

// Emit checks one event against the stream state so far. Implements
// obs.Sink; safe for concurrent use.
func (a *Auditor) Emit(ev obs.Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.runs == 0 && ev.Kind != obs.KindRunStart {
		a.violate(ev.Round, ev.Node, ClassStructure, "%s before run_start", ev.Kind)
	}
	// Virtual-time monotonicity: the event-driven engine stamps its stream
	// with VTime, which must never regress within a run segment (events
	// without a stamp — zero VTime — are outside the virtual clock).
	if ev.VTime > 0 && ev.Kind != obs.KindRunStart {
		if a.vtime && ev.VTime < a.lastVTime {
			a.violate(ev.Round, ev.Node, ClassVTime, "vtime %g regresses behind %g", ev.VTime, a.lastVTime)
		}
		a.vtime, a.lastVTime = true, math.Max(a.lastVTime, ev.VTime)
	}
	switch ev.Kind {
	case obs.KindRunStart:
		if a.openRound >= 0 {
			a.violate(ev.Round, -1, ClassStructure, "run_start with round %d still open", a.openRound)
		}
		// A new run segment: reset per-run state but keep violations.
		a.runs++
		a.openRound, a.lastRound = -1, -1
		a.roundEnds, a.trainedSum, a.phaseNs = 0, 0, 0
		a.down = map[int]bool{}
		a.cumHarvest, a.cumConsumed, a.cumWasted = 0, 0, 0
		a.vtime, a.lastVTime = false, 0
		a.fleetSize = 0
		if ev.Manifest != nil {
			a.fleetSize = ev.Manifest.Nodes
		}
		// run_start of a harvest-coupled run stamps the initial fleet
		// charge — the conservation baseline. Without it (non-harvest runs,
		// or a fleet starting at exactly zero charge, which omitempty
		// drops) the baseline is taken at the first energy round_end.
		a.prevCharge, a.haveCharge = ev.ChargeWh, ev.ChargeWh != 0
	case obs.KindRunEnd:
		a.ends++
		if a.openRound >= 0 {
			a.violate(ev.Round, -1, ClassRound, "run_end with round %d still open", a.openRound)
			a.openRound = -1
		}
		// Run totals must agree with the rounds that were streamed — but
		// only for engines whose run is made of rounds. Async and the grid
		// runner close runs with engine-specific step counts instead; a
		// VTime-stamped segment's round_ends are eval-tick ledger
		// checkpoints, not steps, so the totals are unrelated by design.
		if a.roundEnds > 0 && !a.vtime {
			if ev.Steps != a.roundEnds {
				a.violate(-1, -1, ClassCounter, "run_end reports %d rounds, stream carried %d round_ends", ev.Steps, a.roundEnds)
			}
			if ev.Trained != a.trainedSum {
				a.violate(-1, -1, ClassCounter, "run_end reports %d trainings, round_ends sum to %d", ev.Trained, a.trainedSum)
			}
		}
	case obs.KindRoundStart:
		if a.openRound >= 0 {
			a.violate(ev.Round, -1, ClassRound, "round_start %d while round %d is open", ev.Round, a.openRound)
		}
		if ev.Round <= a.lastRound {
			a.violate(ev.Round, -1, ClassRound, "round_start %d is not after round %d", ev.Round, a.lastRound)
		}
		a.openRound, a.lastRound = ev.Round, ev.Round
		a.phaseNs = 0
	case obs.KindRoundEnd:
		if a.openRound != ev.Round {
			if a.openRound < 0 {
				a.violate(ev.Round, -1, ClassRound, "round_end %d without round_start", ev.Round)
			} else {
				a.violate(ev.Round, -1, ClassRound, "round_end %d closes open round %d", ev.Round, a.openRound)
			}
		}
		a.openRound = -1
		a.roundEnds++
		a.trainedSum += ev.Trained
		a.checkCounters(ev)
		if a.phaseNs > ev.WallNs {
			a.violate(ev.Round, -1, ClassPhaseTime, "phases sum to %d ns, round wall clock is %d ns", a.phaseNs, ev.WallNs)
		}
		a.phaseNs = 0
		a.checkEnergy(ev)
	case obs.KindPhase:
		if a.openRound < 0 {
			a.violate(ev.Round, -1, ClassRound, "phase %q outside any round", ev.Phase)
		} else if ev.Round == a.openRound {
			a.phaseNs += ev.WallNs
		}
		if ev.WallNs < 0 {
			a.violate(ev.Round, -1, ClassPhaseTime, "phase %q has negative wall clock %d", ev.Phase, ev.WallNs)
		}
	case obs.KindBrownout:
		if a.down[ev.Node] {
			a.violate(ev.Round, ev.Node, ClassAlternation, "brownout of already-dark node")
		}
		a.down[ev.Node] = true
	case obs.KindRevival:
		if !a.down[ev.Node] {
			a.violate(ev.Round, ev.Node, ClassAlternation, "revival of a node that never browned out")
		}
		a.down[ev.Node] = false
	case obs.KindDropped:
		if ev.Dropped <= 0 {
			a.violate(ev.Round, -1, ClassCounter, "dropped_sends with count %d", ev.Dropped)
		}
	}
	a.seq++
}

// checkCounters validates a round_end's participation counters. Callers
// hold a.mu.
func (a *Auditor) checkCounters(ev obs.Event) {
	if ev.Trained < 0 || ev.Live < 0 || ev.Depleted < 0 {
		a.violate(ev.Round, -1, ClassCounter, "negative counter (trained=%d live=%d depleted=%d)", ev.Trained, ev.Live, ev.Depleted)
	}
	if a.fleetSize > 0 {
		if ev.Trained > a.fleetSize || ev.Live > a.fleetSize || ev.Depleted > a.fleetSize {
			a.violate(ev.Round, -1, ClassCounter, "counter exceeds fleet size %d (trained=%d live=%d depleted=%d)", a.fleetSize, ev.Trained, ev.Live, ev.Depleted)
		}
	}
}

// checkEnergy validates one round's energy conservation. Callers hold a.mu.
func (a *Auditor) checkEnergy(ev obs.Event) {
	if !hasEnergy(ev) {
		return
	}
	if ev.HarvestWh < 0 || ev.ConsumedWh < 0 || ev.WastedWh < 0 || ev.ChargeWh < 0 {
		a.violate(ev.Round, -1, ClassEnergy, "negative energy total (harvest=%g consumed=%g wasted=%g charge=%g)",
			ev.HarvestWh, ev.ConsumedWh, ev.WastedWh, ev.ChargeWh)
	}
	a.cumHarvest += ev.HarvestWh
	a.cumConsumed += ev.ConsumedWh
	a.cumWasted += ev.WastedWh
	if a.haveCharge {
		residual := a.prevCharge + ev.HarvestWh - ev.ConsumedWh - ev.WastedWh - ev.ChargeWh
		if tol := EnergyTol(a.cumHarvest, a.cumConsumed, a.cumWasted, ev.ChargeWh); math.Abs(residual) > tol {
			a.violate(ev.Round, -1, ClassEnergy,
				"conservation residual %.3g Wh exceeds tolerance %.3g (prev charge %.6g + harvest %.6g - consumed %.6g - wasted %.6g != charge %.6g)",
				residual, tol, a.prevCharge, ev.HarvestWh, ev.ConsumedWh, ev.WastedWh, ev.ChargeWh)
		}
	}
	a.prevCharge, a.haveCharge = ev.ChargeWh, true
}

// Close runs the end-of-stream checks. It never returns an error — a
// violating stream is a result, not a failure; inspect Ok()/Violations().
func (a *Auditor) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.runs == 0 {
		a.violate(-1, -1, ClassStructure, "empty stream (no run_start)")
		return nil
	}
	if a.openRound >= 0 {
		a.violate(a.openRound, -1, ClassRound, "stream ended with round %d still open", a.openRound)
	}
	if a.ends < a.runs {
		a.violate(-1, -1, ClassStructure, "stream carries %d run_start but %d run_end", a.runs, a.ends)
	}
	return nil
}

// Ok reports whether the stream passed every invariant so far.
func (a *Auditor) Ok() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.violations) == 0
}

// Violations returns a copy of the collected violations (capped at
// maxViolations; Overflow counts the rest).
func (a *Auditor) Violations() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Violation, len(a.violations))
	copy(out, a.violations)
	return out
}

// Overflow returns how many violations were dropped past the cap.
func (a *Auditor) Overflow() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.overflow
}

// Summary renders the audit outcome as one short line plus one line per
// violation.
func (a *Auditor) Summary() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	var b strings.Builder
	if len(a.violations) == 0 {
		fmt.Fprintf(&b, "audit: clean (%d events, %d runs)\n", a.seq, a.runs)
		return b.String()
	}
	fmt.Fprintf(&b, "audit: %d violation(s) in %d events\n", len(a.violations)+a.overflow, a.seq)
	for _, v := range a.violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	if a.overflow > 0 {
		fmt.Fprintf(&b, "  ... and %d more\n", a.overflow)
	}
	return b.String()
}

// AuditReader replays a JSONL event stream through a fresh Auditor. The
// returned error covers stream-level problems only (unreadable input,
// lines that are not JSON events); invariant breaches are in the
// auditor's Violations.
func AuditReader(r io.Reader) (*Auditor, error) {
	a := NewAuditor()
	if err := feedEvents(r, a.Emit); err != nil {
		return a, err
	}
	a.Close()
	return a, nil
}

// ReadEvents decodes a whole JSONL stream into memory — for callers that
// need several passes (obstool report feeds both the auditor and the
// report builder).
func ReadEvents(r io.Reader) ([]obs.Event, error) {
	var out []obs.Event
	if err := feedEvents(r, func(ev obs.Event) { out = append(out, ev) }); err != nil {
		return nil, err
	}
	return out, nil
}

// feedEvents decodes a JSONL stream line by line into fn.
func feedEvents(r io.Reader, fn func(obs.Event)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return fmt.Errorf("analyze: line %d: not a JSON event: %w", line, err)
		}
		fn(ev)
	}
	return sc.Err()
}

// hasEnergy reports whether a round_end carries the per-round energy
// ledger. All four fields are omitempty, so a fleet with literally zero
// activity and zero charge is indistinguishable from "no fleet" — in
// that degenerate case the round is skipped, which is safe (nothing to
// conserve).
func hasEnergy(ev obs.Event) bool {
	return ev.HarvestWh != 0 || ev.ConsumedWh != 0 || ev.WastedWh != 0 || ev.ChargeWh != 0
}
