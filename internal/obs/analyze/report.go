package analyze

import (
	"io"
	"math/bits"
	"sort"

	"repro/internal/obs"
)

// EvalPoint is one evaluation from the stream.
type EvalPoint struct {
	Round   int     `json:"round"`
	MeanAcc float64 `json:"mean_acc"`
	StdAcc  float64 `json:"std_acc"`
}

// OutageEpisode is one contiguous dark span of a node: from the round it
// browned out through the round it revived. End is −1 (and Rounds counts
// through the last seen round) when the node never came back.
type OutageEpisode struct {
	Node   int `json:"node"`
	Start  int `json:"start"`
	End    int `json:"end"`
	Rounds int `json:"rounds"`
}

// Report is a run reconstructed from its event stream: throughput, phase
// breakdown, outage episodes, SoC percentile timelines, energy totals.
// Build one live from a MemorySink via FromEvents or offline from JSONL
// via ReadReport.
type Report struct {
	Manifest *obs.RunManifest `json:"manifest,omitempty"`
	Runs     int              `json:"runs"`
	Events   int              `json:"events"`
	Rounds   int              `json:"rounds"`

	WallNs       int64   `json:"wall_ns"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	TotalTrained int     `json:"total_trained"`
	DroppedSends int     `json:"dropped_sends"`

	Evals   []EvalPoint      `json:"evals,omitempty"`
	PhaseNs map[string]int64 `json:"phase_ns,omitempty"`

	Outages     []OutageEpisode `json:"outages,omitempty"`
	OpenOutages int             `json:"open_outages"`

	// Per-round series, in stream order (rounds with the field absent are
	// skipped; SoCRounds records which rounds the SoC samples cover).
	Trained   []float64 `json:"-"`
	Live      []float64 `json:"-"`
	SoCRounds []int     `json:"-"`
	MeanSoC   []float64 `json:"-"`
	SoCP50    []float64 `json:"-"`
	SoCP90    []float64 `json:"-"`
	SoCP99    []float64 `json:"-"`

	// Energy totals summed over the stream's round_end ledgers.
	HarvestWh     float64 `json:"harvest_wh"`
	ConsumedWh    float64 `json:"consumed_wh"`
	WastedWh      float64 `json:"wasted_wh"`
	FinalChargeWh float64 `json:"final_charge_wh"`
	HasEnergy     bool    `json:"has_energy"`
}

// FinalAcc returns the last evaluation's mean accuracy (0 when the run
// never evaluated).
func (r *Report) FinalAcc() float64 {
	if len(r.Evals) == 0 {
		return 0
	}
	return r.Evals[len(r.Evals)-1].MeanAcc
}

// OutageHistogram buckets episode durations by powers of two: bucket i
// counts episodes lasting [2^i, 2^(i+1)) rounds.
func (r *Report) OutageHistogram() []int {
	var hist []int
	for _, ep := range r.Outages {
		if ep.Rounds < 1 {
			continue
		}
		b := bits.Len(uint(ep.Rounds)) - 1
		for len(hist) <= b {
			hist = append(hist, 0)
		}
		hist[b]++
	}
	return hist
}

// FromEvents reconstructs a run from an in-order event slice.
func FromEvents(events []obs.Event) *Report {
	b := newReportBuilder()
	for _, ev := range events {
		b.add(ev)
	}
	return b.finish()
}

// ReadReport reconstructs a run from a JSONL stream.
func ReadReport(r io.Reader) (*Report, error) {
	b := newReportBuilder()
	if err := feedEvents(r, b.add); err != nil {
		return nil, err
	}
	return b.finish(), nil
}

type reportBuilder struct {
	rep       Report
	downSince map[int]int // node -> round it browned out
	lastRound int
}

func newReportBuilder() *reportBuilder {
	return &reportBuilder{rep: Report{PhaseNs: map[string]int64{}}, downSince: map[int]int{}, lastRound: -1}
}

func (b *reportBuilder) add(ev obs.Event) {
	b.rep.Events++
	switch ev.Kind {
	case obs.KindRunStart:
		b.rep.Runs++
		if b.rep.Manifest == nil && ev.Manifest != nil {
			b.rep.Manifest = ev.Manifest
		}
		b.downSince = map[int]int{}
	case obs.KindRunEnd:
		b.rep.WallNs += ev.WallNs
		if ev.Trained > b.rep.TotalTrained {
			b.rep.TotalTrained = ev.Trained
		}
	case obs.KindRoundEnd:
		b.rep.Rounds++
		b.lastRound = ev.Round
		b.rep.Trained = append(b.rep.Trained, float64(ev.Trained))
		b.rep.Live = append(b.rep.Live, float64(ev.Live))
		if ev.MeanSoC != 0 || ev.SoCP50 != 0 || ev.SoCP99 != 0 {
			b.rep.SoCRounds = append(b.rep.SoCRounds, ev.Round)
			b.rep.MeanSoC = append(b.rep.MeanSoC, ev.MeanSoC)
			b.rep.SoCP50 = append(b.rep.SoCP50, ev.SoCP50)
			b.rep.SoCP90 = append(b.rep.SoCP90, ev.SoCP90)
			b.rep.SoCP99 = append(b.rep.SoCP99, ev.SoCP99)
		}
		if hasEnergy(ev) {
			b.rep.HasEnergy = true
			b.rep.HarvestWh += ev.HarvestWh
			b.rep.ConsumedWh += ev.ConsumedWh
			b.rep.WastedWh += ev.WastedWh
			b.rep.FinalChargeWh = ev.ChargeWh
		}
	case obs.KindPhase:
		b.rep.PhaseNs[ev.Phase] += ev.WallNs
	case obs.KindBrownout:
		if _, dark := b.downSince[ev.Node]; !dark {
			b.downSince[ev.Node] = ev.Round
		}
	case obs.KindRevival:
		if start, dark := b.downSince[ev.Node]; dark {
			b.rep.Outages = append(b.rep.Outages, OutageEpisode{
				Node: ev.Node, Start: start, End: ev.Round, Rounds: ev.Round - start,
			})
			delete(b.downSince, ev.Node)
		}
	case obs.KindDropped:
		b.rep.DroppedSends += ev.Dropped
	case obs.KindEval:
		b.rep.Evals = append(b.rep.Evals, EvalPoint{Round: ev.Round, MeanAcc: ev.MeanAcc, StdAcc: ev.StdAcc})
	}
}

func (b *reportBuilder) finish() *Report {
	// Nodes still dark at end of stream become open episodes, counted
	// through the last seen round.
	for node, start := range b.downSince {
		rounds := b.lastRound - start + 1
		if rounds < 1 {
			rounds = 1
		}
		b.rep.Outages = append(b.rep.Outages, OutageEpisode{Node: node, Start: start, End: -1, Rounds: rounds})
		b.rep.OpenOutages++
	}
	sort.Slice(b.rep.Outages, func(i, j int) bool {
		a, c := b.rep.Outages[i], b.rep.Outages[j]
		if a.Start != c.Start {
			return a.Start < c.Start
		}
		return a.Node < c.Node
	})
	if b.rep.WallNs > 0 && b.rep.Rounds > 0 {
		b.rep.RoundsPerSec = float64(b.rep.Rounds) / (float64(b.rep.WallNs) / 1e9)
	}
	if len(b.rep.PhaseNs) == 0 {
		b.rep.PhaseNs = nil
	}
	return &b.rep
}
