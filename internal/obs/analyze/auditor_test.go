package analyze

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// streamBuilder assembles synthetic event streams for corruption tests.
type streamBuilder struct{ events []obs.Event }

func (b *streamBuilder) add(ev obs.Event) *streamBuilder {
	b.events = append(b.events, ev)
	return b
}

func testManifest(nodes int) *obs.RunManifest {
	m := obs.NewManifest("sim", "test", 1).Scale(nodes, 4).Build()
	return &m
}

// cleanStream is a well-formed two-round harvest run: conservation holds
// exactly, one node browns out and revives, counters agree.
func cleanStream() []obs.Event {
	b := &streamBuilder{}
	b.add(obs.Event{Kind: obs.KindRunStart, Round: -1, Node: -1, Manifest: testManifest(4), ChargeWh: 2.0})
	b.add(obs.Event{Kind: obs.KindRoundStart, Round: 0, Node: -1, Label: "train"})
	b.add(obs.Event{Kind: obs.KindBrownout, Round: 0, Node: 2})
	b.add(obs.Event{Kind: obs.KindPhase, Round: 0, Node: -1, Phase: "train", WallNs: 400})
	b.add(obs.Event{Kind: obs.KindPhase, Round: 0, Node: -1, Phase: "battery", WallNs: 100})
	// Dyadic energy values so conservation is float-exact:
	// 2.0 + 0.5 harvested - 0.25 consumed - 0.125 wasted = 2.125.
	b.add(obs.Event{Kind: obs.KindRoundEnd, Round: 0, Node: -1, WallNs: 1000,
		Trained: 3, Live: 3, Depleted: 1,
		HarvestWh: 0.5, ConsumedWh: 0.25, WastedWh: 0.125, ChargeWh: 2.125})
	b.add(obs.Event{Kind: obs.KindRoundStart, Round: 1, Node: -1, Label: "train"})
	b.add(obs.Event{Kind: obs.KindRevival, Round: 1, Node: 2, Staleness: 1})
	b.add(obs.Event{Kind: obs.KindDropped, Round: 1, Node: -1, Dropped: 4})
	b.add(obs.Event{Kind: obs.KindEval, Round: 1, Node: -1, MeanAcc: 0.5, StdAcc: 0.1})
	// 2.125 + 0.25 - 0.5 - 0.0 = 1.875.
	b.add(obs.Event{Kind: obs.KindRoundEnd, Round: 1, Node: -1, WallNs: 900,
		Trained: 4, Live: 4,
		HarvestWh: 0.25, ConsumedWh: 0.5, ChargeWh: 1.875})
	b.add(obs.Event{Kind: obs.KindRunEnd, Round: -1, Node: -1, WallNs: 2000, Steps: 2, Trained: 7})
	return b.events
}

func audit(events []obs.Event) *Auditor {
	a := NewAuditor()
	for _, ev := range events {
		a.Emit(ev)
	}
	a.Close()
	return a
}

func TestAuditorCleanStream(t *testing.T) {
	a := audit(cleanStream())
	if !a.Ok() {
		t.Fatalf("clean stream flagged: %v", a.Violations())
	}
	if !strings.Contains(a.Summary(), "audit: clean") {
		t.Fatalf("summary: %q", a.Summary())
	}
}

// Each corruption targets exactly one invariant class; the auditor must
// fire a violation of that class (proving the class is actually checked,
// not vacuously passing).
func TestAuditorDetectsEachInvariantClass(t *testing.T) {
	base := cleanStream
	cases := []struct {
		name    string
		class   string
		corrupt func() []obs.Event
	}{
		{"event-before-run-start", ClassStructure, func() []obs.Event {
			return append([]obs.Event{{Kind: obs.KindEval, Round: 0, Node: -1}}, base()...)
		}},
		{"missing-run-end", ClassStructure, func() []obs.Event {
			evs := base()
			return evs[:len(evs)-1]
		}},
		{"round-end-without-start", ClassRound, func() []obs.Event {
			evs := base()
			// Drop the first round_start (index 1).
			return append(evs[:1:1], evs[2:]...)
		}},
		{"round-numbers-regress", ClassRound, func() []obs.Event {
			evs := base()
			for i := range evs {
				if evs[i].Round == 1 {
					evs[i].Round = 0
				}
			}
			return evs
		}},
		{"round-left-open", ClassRound, func() []obs.Event {
			var out []obs.Event
			for _, ev := range base() {
				if ev.Kind == obs.KindRoundEnd && ev.Round == 1 {
					continue // round 1 never closes
				}
				out = append(out, ev)
			}
			return out
		}},
		{"energy-conservation-broken", ClassEnergy, func() []obs.Event {
			evs := base()
			for i := range evs {
				if evs[i].Kind == obs.KindRoundEnd && evs[i].Round == 1 {
					evs[i].ChargeWh += 0.05 // leaks 50 mWh from nowhere
				}
			}
			return evs
		}},
		{"energy-negative-total", ClassEnergy, func() []obs.Event {
			evs := base()
			// Negate round 0's drain but keep the conservation arithmetic
			// consistent through both rounds, so only the sign check fires.
			prev := 2.0
			for i := range evs {
				if evs[i].Kind == obs.KindRoundEnd {
					if evs[i].Round == 0 {
						evs[i].ConsumedWh = -evs[i].ConsumedWh
					}
					evs[i].ChargeWh = prev + evs[i].HarvestWh - evs[i].ConsumedWh - evs[i].WastedWh
					prev = evs[i].ChargeWh
				}
			}
			return evs
		}},
		{"revival-without-brownout", ClassAlternation, func() []obs.Event {
			var out []obs.Event
			for _, ev := range base() {
				if ev.Kind == obs.KindBrownout {
					continue
				}
				out = append(out, ev)
			}
			return out
		}},
		{"double-brownout", ClassAlternation, func() []obs.Event {
			var out []obs.Event
			for _, ev := range base() {
				out = append(out, ev)
				if ev.Kind == obs.KindBrownout {
					out = append(out, ev) // same node browns out twice
				}
			}
			return out
		}},
		{"run-end-round-count-wrong", ClassCounter, func() []obs.Event {
			evs := base()
			evs[len(evs)-1].Steps = 5
			return evs
		}},
		{"run-end-trained-total-wrong", ClassCounter, func() []obs.Event {
			evs := base()
			evs[len(evs)-1].Trained = 99
			return evs
		}},
		{"trained-exceeds-fleet", ClassCounter, func() []obs.Event {
			evs := base()
			for i := range evs {
				if evs[i].Kind == obs.KindRoundEnd && evs[i].Round == 0 {
					evs[i].Trained = 1000
				}
			}
			// Keep the run_end total consistent so only the fleet-size
			// check fires.
			evs[len(evs)-1].Trained = 1004
			return evs
		}},
		{"phase-time-exceeds-round", ClassPhaseTime, func() []obs.Event {
			evs := base()
			for i := range evs {
				if evs[i].Kind == obs.KindPhase && evs[i].Phase == "train" {
					evs[i].WallNs = 10_000 // > the round's 1000 ns
				}
			}
			return evs
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := audit(tc.corrupt())
			if a.Ok() {
				t.Fatalf("corruption not detected")
			}
			found := false
			for _, v := range a.Violations() {
				if v.Class == tc.class {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("no %s violation; got %v", tc.class, a.Violations())
			}
		})
	}
}

// asyncStream is a well-formed event-driven (roundless, VTime-stamped)
// harvest run: eval-tick ledger checkpoints, one brown-out/wake cycle,
// and a run_end whose Steps total is an event-loop count, not a tick
// count — legal only because the segment carries virtual time.
func asyncStream() []obs.Event {
	b := &streamBuilder{}
	b.add(obs.Event{Kind: obs.KindRunStart, Round: -1, Node: -1, Manifest: testManifest(4), ChargeWh: 2.0})
	b.add(obs.Event{Kind: obs.KindBrownout, Round: 0, Node: 1, VTime: 12.5})
	b.add(obs.Event{Kind: obs.KindEval, Round: 0, Node: -1, MeanAcc: 0.4, VTime: 50})
	b.add(obs.Event{Kind: obs.KindRoundStart, Round: 0, Node: -1, Label: "tick", VTime: 50})
	// Dyadic values, conservation float-exact: 2.0 + 0.5 - 0.25 - 0.125.
	b.add(obs.Event{Kind: obs.KindRoundEnd, Round: 0, Node: -1, Live: 3, Depleted: 1,
		HarvestWh: 0.5, ConsumedWh: 0.25, WastedWh: 0.125, ChargeWh: 2.125, VTime: 50})
	b.add(obs.Event{Kind: obs.KindRevival, Round: 1, Node: 1, Staleness: 2, VTime: 75})
	b.add(obs.Event{Kind: obs.KindEval, Round: 1, Node: -1, MeanAcc: 0.5, VTime: 100})
	b.add(obs.Event{Kind: obs.KindRoundStart, Round: 1, Node: -1, Label: "tick", VTime: 100})
	// 2.125 + 0.25 - 0.5 = 1.875.
	b.add(obs.Event{Kind: obs.KindRoundEnd, Round: 1, Node: -1, Live: 4,
		HarvestWh: 0.25, ConsumedWh: 0.5, ChargeWh: 1.875, VTime: 100})
	b.add(obs.Event{Kind: obs.KindRunEnd, Round: -1, Node: -1, Steps: 37, Trained: 21, VTime: 100})
	return b.events
}

// The event-driven stream must audit clean: two ledger ticks against 37
// loop steps is not a counter violation once the segment is VTime-stamped.
func TestAuditorAcceptsVTimeStreamWithTickLedgers(t *testing.T) {
	if a := audit(asyncStream()); !a.Ok() {
		t.Fatalf("async stream flagged: %v", a.Violations())
	}
	// The vtime gate is per segment: a round-based segment following the
	// async one still has its run_end totals checked.
	evs := asyncStream()
	tail := cleanStream()
	tail[len(tail)-1].Steps = 5 // wrong round count in the sync segment
	if a := audit(append(evs, tail...)); a.Ok() {
		t.Fatal("round-count corruption hidden behind a preceding vtime segment")
	}
}

// Corruptions specific to the event-driven stream: each targets one
// invariant class and must be caught.
func TestAuditorDetectsAsyncStreamCorruption(t *testing.T) {
	base := asyncStream
	cases := []struct {
		name    string
		class   string
		corrupt func() []obs.Event
	}{
		{"vtime-regresses-across-wake", ClassVTime, func() []obs.Event {
			evs := base()
			for i := range evs {
				if evs[i].Kind == obs.KindRevival {
					evs[i].VTime = 40 // behind the tick at vtime 50
				}
			}
			return evs
		}},
		{"brownout-without-revival-in-vtime-order", ClassAlternation, func() []obs.Event {
			// Node 1 browns out a second time at vtime 60 while still down:
			// no revival separates the two interrupts.
			evs := base()
			var out []obs.Event
			for _, ev := range evs {
				if ev.Kind == obs.KindRevival {
					out = append(out, obs.Event{Kind: obs.KindBrownout, Round: 1, Node: 1, VTime: 60})
					continue
				}
				out = append(out, ev)
			}
			return out
		}},
		{"revival-precedes-brownout-in-vtime", ClassAlternation, func() []obs.Event {
			// The wake is stamped before the interrupt on the virtual
			// clock — stream order and vtime order agree, alternation does
			// not: the node revives without ever having browned out.
			evs := base()
			var out []obs.Event
			for _, ev := range evs {
				if ev.Kind == obs.KindBrownout {
					out = append(out, obs.Event{Kind: obs.KindRevival, Round: 0, Node: 1, Staleness: 0, VTime: 10})
				}
				if ev.Kind == obs.KindRevival {
					ev = obs.Event{Kind: obs.KindBrownout, Round: 1, Node: 1, VTime: 75}
				}
				out = append(out, ev)
			}
			return out
		}},
		{"ledger-drifts-across-wake", ClassEnergy, func() []obs.Event {
			// The checkpoint after node 1's revival reports 50 mWh that no
			// arrival accounts for.
			evs := base()
			for i := range evs {
				if evs[i].Kind == obs.KindRoundEnd && evs[i].Round == 1 {
					evs[i].ChargeWh += 0.05
				}
			}
			return evs
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := audit(tc.corrupt())
			if a.Ok() {
				t.Fatal("corruption not detected")
			}
			found := false
			for _, v := range a.Violations() {
				if v.Class == tc.class {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("no %s violation; got %v", tc.class, a.Violations())
			}
		})
	}
}

// A harvest stream whose run_start lacks the charge baseline (fleet
// starting empty) must still audit conservation from the first round_end.
func TestAuditorBaselinesAtFirstRoundEndWithoutRunStartCharge(t *testing.T) {
	evs := cleanStream()
	evs[0].ChargeWh = 0 // omitempty-dropped baseline
	a := audit(evs)
	// Round 0 cannot be checked (no baseline), round 1 can — and is clean.
	if !a.Ok() {
		t.Fatalf("unexpected violations: %v", a.Violations())
	}
	// Now break round 1: with the baseline from round 0's ChargeWh the
	// auditor must still catch it.
	evs = cleanStream()
	evs[0].ChargeWh = 0
	for i := range evs {
		if evs[i].Kind == obs.KindRoundEnd && evs[i].Round == 1 {
			evs[i].ChargeWh += 0.2
		}
	}
	if a := audit(evs); a.Ok() {
		t.Fatal("conservation breach after late baseline not detected")
	}
}

// Streams without rounds (async engine, grid runner) and with several
// run segments must pass: no vacuous round/counter violations.
func TestAuditorToleratesRoundlessAndMultiRunStreams(t *testing.T) {
	b := &streamBuilder{}
	// Segment 1: async-style — evals only, run_end carries step totals.
	b.add(obs.Event{Kind: obs.KindRunStart, Round: -1, Node: -1, Manifest: testManifest(8)})
	b.add(obs.Event{Kind: obs.KindEval, Round: 0, Node: -1, MeanAcc: 0.3})
	b.add(obs.Event{Kind: obs.KindEval, Round: 1, Node: -1, MeanAcc: 0.4})
	b.add(obs.Event{Kind: obs.KindRunEnd, Round: -1, Node: -1, Steps: 4096, Trained: 77})
	// Segment 2: grid-style — cells outside rounds.
	b.add(obs.Event{Kind: obs.KindRunStart, Round: -1, Node: -1, Manifest: testManifest(12)})
	b.add(obs.Event{Kind: obs.KindCell, Round: -1, Node: -1, Label: "g1", Value: 0.5})
	b.add(obs.Event{Kind: obs.KindCell, Round: -1, Node: -1, Label: "g2", Value: 0.6})
	b.add(obs.Event{Kind: obs.KindRunEnd, Round: -1, Node: -1, Steps: 16})
	a := audit(b.events)
	if !a.Ok() {
		t.Fatalf("roundless/multi-run stream flagged: %v", a.Violations())
	}
}

// The violation list must stay bounded on a thoroughly corrupt stream.
func TestAuditorViolationCap(t *testing.T) {
	a := NewAuditor()
	a.Emit(obs.Event{Kind: obs.KindRunStart, Round: -1, Node: -1, Manifest: testManifest(4)})
	for i := 0; i < 500; i++ {
		// Every revival is alternation-invalid.
		a.Emit(obs.Event{Kind: obs.KindRevival, Round: -1, Node: 1})
	}
	a.Emit(obs.Event{Kind: obs.KindRunEnd, Round: -1, Node: -1})
	a.Close()
	if len(a.Violations()) != maxViolations {
		t.Fatalf("retained %d violations, want cap %d", len(a.Violations()), maxViolations)
	}
	if a.Overflow() != 500-maxViolations {
		t.Fatalf("overflow = %d, want %d", a.Overflow(), 500-maxViolations)
	}
}

// AuditReader must reject malformed JSONL but collect violations from
// well-formed corrupt streams.
func TestAuditReader(t *testing.T) {
	if _, err := AuditReader(strings.NewReader("{not json\n")); err == nil {
		t.Fatal("malformed JSONL accepted")
	}
	jsonl := `{"kind":"run_start","round":-1,"node":-1,"manifest":{"engine":"sim","seed":1,"config_hash":"abc","config":[],"go_version":"go","gomaxprocs":1}}
{"kind":"revival","round":0,"node":3}
{"kind":"run_end","round":-1,"node":-1}
`
	a, err := AuditReader(strings.NewReader(jsonl))
	if err != nil {
		t.Fatal(err)
	}
	if a.Ok() {
		t.Fatal("revival-without-brownout not flagged through AuditReader")
	}
}
