package analyze

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// DefaultRegressMetrics are the tracked per-unit-of-work metrics the
// regression gate compares by default. ns/node-round is the repo's
// headline hot-path number (per-node cost of one fleet round); raw ns/op
// is excluded because it scales with the benchmark's configured problem
// size and is too machine-noisy to gate on.
var DefaultRegressMetrics = []string{"ns/node-round"}

// BenchDelta is one benchmark metric compared across two snapshots. All
// tracked metrics are lower-is-better (nanosecond costs), so Regressed
// means New exceeded Old by more than the gate's tolerance.
type BenchDelta struct {
	Name      string  `json:"name"`
	Metric    string  `json:"metric"`
	Old       float64 `json:"old"`
	New       float64 `json:"new"`
	Ratio     float64 `json:"ratio"` // New/Old; > 1 is slower
	Regressed bool    `json:"regressed"`
}

// RegressResult is the outcome of comparing two BENCH_*.json snapshots.
type RegressResult struct {
	Deltas []BenchDelta `json:"deltas"`
	// MissingInNew lists old benchmarks with no counterpart in the new
	// snapshot (renamed or removed — a warning, not a regression).
	MissingInNew []string `json:"missing_in_new,omitempty"`
	// AddedInNew lists new benchmarks with no old counterpart.
	AddedInNew []string `json:"added_in_new,omitempty"`
	// Regressions counts deltas past tolerance; the gate fails when > 0.
	Regressions int `json:"regressions"`
}

// CompareBench compares two bench snapshots over the tracked metrics
// (nil means DefaultRegressMetrics): benchmarks are matched by name
// (GOMAXPROCS split off at parse time is ignored), and a match regresses
// when its new value exceeds old × (1 + tol). Benchmarks present on only
// one side are reported but never fail the gate — the suite is allowed
// to grow and shrink across PRs.
func CompareBench(old, new obs.BenchFile, metrics []string, tol float64) RegressResult {
	if metrics == nil {
		metrics = DefaultRegressMetrics
	}
	tracked := map[string]bool{}
	for _, m := range metrics {
		tracked[m] = true
	}
	newByName := map[string]obs.BenchResult{}
	for _, r := range new.Results {
		newByName[r.Name] = r
	}
	oldSeen := map[string]bool{}
	var res RegressResult
	for _, or := range old.Results {
		oldSeen[or.Name] = true
		nr, ok := newByName[or.Name]
		if !ok {
			res.MissingInNew = append(res.MissingInNew, or.Name)
			continue
		}
		for metric, ov := range or.Metrics {
			if !tracked[metric] || ov <= 0 {
				continue
			}
			nv, ok := nr.Metrics[metric]
			if !ok {
				continue
			}
			d := BenchDelta{
				Name: or.Name, Metric: metric, Old: ov, New: nv,
				Ratio: nv / ov,
			}
			d.Regressed = nv > ov*(1+tol)
			if d.Regressed {
				res.Regressions++
			}
			res.Deltas = append(res.Deltas, d)
		}
	}
	for _, nr := range new.Results {
		if !oldSeen[nr.Name] {
			res.AddedInNew = append(res.AddedInNew, nr.Name)
		}
	}
	sort.Slice(res.Deltas, func(i, j int) bool {
		if res.Deltas[i].Name != res.Deltas[j].Name {
			return res.Deltas[i].Name < res.Deltas[j].Name
		}
		return res.Deltas[i].Metric < res.Deltas[j].Metric
	})
	sort.Strings(res.MissingInNew)
	sort.Strings(res.AddedInNew)
	return res
}

// WriteText renders the comparison for `obstool regress`.
func (r *RegressResult) WriteText(w io.Writer, labelOld, labelNew string, tol float64) {
	fmt.Fprintf(w, "bench regression gate: %s -> %s (tolerance %.0f%%)\n", labelOld, labelNew, 100*tol)
	for _, d := range r.Deltas {
		mark := "ok"
		if d.Regressed {
			mark = "REGRESSED"
		} else if d.Ratio < 1 {
			mark = "improved"
		}
		fmt.Fprintf(w, "  %-28s %-14s %10.2f -> %10.2f  (x%.3f)  %s\n",
			d.Name, d.Metric, d.Old, d.New, d.Ratio, mark)
	}
	for _, name := range r.MissingInNew {
		fmt.Fprintf(w, "  %-28s missing in new snapshot (warning)\n", name)
	}
	for _, name := range r.AddedInNew {
		fmt.Fprintf(w, "  %-28s new benchmark\n", name)
	}
	if r.Regressions > 0 {
		fmt.Fprintf(w, "FAIL: %d metric(s) regressed past tolerance\n", r.Regressions)
	} else {
		fmt.Fprintf(w, "clean: no tracked metric regressed\n")
	}
}
