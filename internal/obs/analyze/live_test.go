package analyze_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/harvest"
	"repro/internal/harvest/difftest"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/rng"
	"repro/internal/sim"
)

// scenarioConfig binds one difftest scenario cell to a small training
// problem on the requested engine, so the auditor sees the same trace ×
// policy × liveness grid the engine differential suite pins.
func scenarioConfig(t *testing.T, s difftest.Scenario, kind string) sim.Config {
	t.Helper()
	g, err := graph.Regular(s.Nodes, 4, s.Seed)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := dataset.SyntheticConfig{Classes: 4, Dim: 6, Train: 4 * s.Nodes, Test: 80, Noise: 0.8, Seed: s.Seed}
	train, test, err := dataset.Generate(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	part, err := dataset.ShardPartition(train, s.Nodes, 2, s.Seed)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Build(kind)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{
		Graph:   g,
		Weights: graph.Metropolis(g),
		Algo:    core.Algorithm{Label: "harvest", Schedule: s.Schedule(), Policy: inst.Policy},
		Rounds:  10,
		ModelFactory: func(node int, r *rng.RNG) *nn.Network {
			return nn.LogisticRegression(6, 4, r)
		},
		LR:         0.05,
		BatchSize:  8,
		LocalSteps: 1,
		Partition:  part,
		Test:       test,
		EvalEvery:  5,
		Seed:       s.Seed,
		Devices:    s.Devices(),
		Workload:   s.Workload(),
		Harvest:    inst.Engine,
		TrackSoC:   true,
	}
	// Cutoff cells drive the dead-topology path, matching the liveness
	// coverage of the differential table.
	cfg.DropDeadNodes = s.Options.CutoffSoC > 0
	if s.Horizon > 0 {
		cfg.Forecast = inst.Forecaster
		cfg.ForecastHorizon = s.Horizon
	}
	return cfg
}

// The auditor, attached live as a sink, must pass every scenario of the
// engine differential table on BOTH fleet engines: conservation within
// EnergyTol each round, brown-out/revival alternation, counters, phase
// accounting. This is the end-to-end guarantee that the invariants the
// auditor enforces are invariants the simulator actually maintains.
func TestAuditorCleanOnLiveScenarioStreams(t *testing.T) {
	engines := []string{harvest.EnginePointer, harvest.EngineSoA}
	for k, s := range difftest.Scenarios() {
		if s.Nodes > 112 {
			continue // /large cells: same physics, only slower here
		}
		if testing.Short() && k%5 != 0 {
			continue
		}
		for _, kind := range engines {
			s, kind := s, kind
			t.Run(s.Name+"/"+kind, func(t *testing.T) {
				t.Parallel()
				cfg := scenarioConfig(t, s, kind)
				auditor := analyze.NewAuditor()
				mem := obs.NewMemory()
				cfg.Probe = obs.NewProbe(obs.Multi(auditor, mem))
				if _, err := sim.Run(cfg); err != nil {
					t.Fatal(err)
				}
				auditor.Close()
				if !auditor.Ok() {
					t.Fatalf("audit failed:\n%s", auditor.Summary())
				}
				if got := mem.Count(obs.KindRoundEnd); got != cfg.Rounds {
					t.Fatalf("round_end events = %d, want %d", got, cfg.Rounds)
				}
				// Every round_end must carry the energy ledger the
				// conservation check runs on.
				for _, ev := range mem.Events() {
					if ev.Kind != obs.KindRoundEnd {
						continue
					}
					if ev.ChargeWh == 0 && ev.HarvestWh == 0 && ev.ConsumedWh == 0 {
						t.Fatalf("round %d round_end has no energy fields: %+v", ev.Round, ev)
					}
				}
				// The reconstruction must agree with the live stream.
				rep := analyze.FromEvents(mem.Events())
				if rep.Rounds != cfg.Rounds || !rep.HasEnergy {
					t.Fatalf("report: rounds %d, energy %v", rep.Rounds, rep.HasEnergy)
				}
			})
		}
	}
}
