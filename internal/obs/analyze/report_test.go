package analyze

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestReportReconstructsRun(t *testing.T) {
	rep := FromEvents(cleanStream())
	if rep.Runs != 1 || rep.Rounds != 2 || rep.Events != len(cleanStream()) {
		t.Fatalf("shape: %+v", rep)
	}
	if rep.Manifest == nil || rep.Manifest.Engine != "sim" {
		t.Fatalf("manifest not captured: %+v", rep.Manifest)
	}
	if rep.TotalTrained != 7 {
		t.Fatalf("TotalTrained = %d", rep.TotalTrained)
	}
	if rep.WallNs != 2000 || rep.RoundsPerSec <= 0 {
		t.Fatalf("throughput: wall %d ns, %v rounds/s", rep.WallNs, rep.RoundsPerSec)
	}
	if !rep.HasEnergy {
		t.Fatal("energy ledger not detected")
	}
	if rep.HarvestWh != 0.75 || rep.ConsumedWh != 0.75 || rep.WastedWh != 0.125 {
		t.Fatalf("energy totals: %g %g %g", rep.HarvestWh, rep.ConsumedWh, rep.WastedWh)
	}
	if rep.FinalChargeWh != 1.875 {
		t.Fatalf("final charge: %g", rep.FinalChargeWh)
	}
	if rep.DroppedSends != 4 {
		t.Fatalf("dropped sends: %d", rep.DroppedSends)
	}
	if len(rep.Outages) != 1 || rep.OpenOutages != 0 {
		t.Fatalf("outages: %+v", rep.Outages)
	}
	ep := rep.Outages[0]
	if ep.Node != 2 || ep.Start != 0 || ep.End != 1 || ep.Rounds != 1 {
		t.Fatalf("episode: %+v", ep)
	}
	if hist := rep.OutageHistogram(); len(hist) != 1 || hist[0] != 1 {
		t.Fatalf("histogram: %v", hist)
	}
	if got := rep.PhaseNs["train"]; got != 400 {
		t.Fatalf("train phase ns: %d", got)
	}
	if len(rep.Evals) != 1 || rep.FinalAcc() != 0.5 {
		t.Fatalf("evals: %+v", rep.Evals)
	}
	if len(rep.Trained) != 2 || rep.Trained[0] != 3 || rep.Trained[1] != 4 {
		t.Fatalf("trained series: %v", rep.Trained)
	}
}

func TestReportOpenOutage(t *testing.T) {
	var evs []obs.Event
	for _, ev := range cleanStream() {
		if ev.Kind == obs.KindRevival {
			continue // node 2 never comes back
		}
		evs = append(evs, ev)
	}
	rep := FromEvents(evs)
	if rep.OpenOutages != 1 || len(rep.Outages) != 1 {
		t.Fatalf("open outage not recorded: %+v", rep.Outages)
	}
	if ep := rep.Outages[0]; ep.End != -1 || ep.Rounds != 2 {
		t.Fatalf("open episode: %+v", ep)
	}
}

func TestReportRendersTextAndMarkdown(t *testing.T) {
	rep := FromEvents(cleanStream())
	var txt, md bytes.Buffer
	rep.WriteText(&txt)
	rep.WriteMarkdown(&md)
	for _, want := range []string{"run report", "Energy", "harvested", "Outages", "Evaluations"} {
		if !strings.Contains(txt.String(), want) {
			t.Fatalf("text report missing %q:\n%s", want, txt.String())
		}
	}
	if !strings.Contains(md.String(), "## Energy") || !strings.Contains(md.String(), "# Run report") {
		t.Fatalf("markdown structure missing:\n%s", md.String())
	}
}

func TestReadReportRoundtripsJSONL(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewJSONL(&nopCloser{&buf})
	for _, ev := range cleanStream() {
		sink.Emit(ev)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != 2 || rep.FinalChargeWh != 1.875 || len(rep.Outages) != 1 {
		t.Fatalf("roundtripped report: %+v", rep)
	}
}

type nopCloser struct{ *bytes.Buffer }

func (n *nopCloser) Close() error { return nil }

func TestDiffReportsFlagsDrift(t *testing.T) {
	mkReport := func(seed uint64, extra string) *Report {
		b := obs.NewManifest("sim", "x", seed).Scale(8, 4).Set("lr", "0.05")
		if extra != "" {
			b.Set("cutoff", extra)
		}
		m := b.Build()
		evs := []obs.Event{
			{Kind: obs.KindRunStart, Round: -1, Node: -1, Manifest: &m},
			{Kind: obs.KindRunEnd, Round: -1, Node: -1, WallNs: 1000, Steps: 4, Trained: 10},
		}
		return FromEvents(evs)
	}
	same := DiffReports(mkReport(1, ""), mkReport(1, ""))
	if !same.SameConfig || same.SeedDrift || len(same.ConfigDrift) != 0 {
		t.Fatalf("identical runs flagged: %+v", same)
	}
	drift := DiffReports(mkReport(1, ""), mkReport(2, "0.3"))
	if drift.SameConfig || !drift.SeedDrift {
		t.Fatalf("drift not flagged: %+v", drift)
	}
	found := false
	for _, line := range drift.ConfigDrift {
		if line == "+cutoff=0.3" {
			found = true
		}
	}
	if !found {
		t.Fatalf("config drift lines: %v", drift.ConfigDrift)
	}
	var buf bytes.Buffer
	drift.WriteText(&buf, "a", "b")
	if !strings.Contains(buf.String(), "HASH DRIFT") {
		t.Fatalf("diff text: %s", buf.String())
	}
}
