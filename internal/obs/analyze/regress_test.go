package analyze

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

func benchFile(label string, results ...obs.BenchResult) obs.BenchFile {
	return obs.BenchFile{Label: label, Results: results}
}

func benchResult(name string, nsPerNodeRound float64) obs.BenchResult {
	return obs.BenchResult{
		Name:    name,
		Metrics: map[string]float64{"ns/node-round": nsPerNodeRound, "ns/op": nsPerNodeRound * 100},
	}
}

func TestCompareBenchFlagsRegression(t *testing.T) {
	old := benchFile("old", benchResult("FleetRound", 50), benchResult("Plan", 10))
	// FleetRound got 50% slower — well past a 20% tolerance; Plan improved.
	new := benchFile("new", benchResult("FleetRound", 75), benchResult("Plan", 8))
	res := CompareBench(old, new, nil, 0.2)
	if res.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1: %+v", res.Regressions, res.Deltas)
	}
	var flagged *BenchDelta
	for i := range res.Deltas {
		if res.Deltas[i].Regressed {
			flagged = &res.Deltas[i]
		}
	}
	if flagged == nil || flagged.Name != "FleetRound" || flagged.Metric != "ns/node-round" {
		t.Fatalf("wrong delta flagged: %+v", flagged)
	}
	if flagged.Ratio != 1.5 {
		t.Fatalf("ratio = %g, want 1.5", flagged.Ratio)
	}

	var buf bytes.Buffer
	res.WriteText(&buf, "old", "new", 0.2)
	out := buf.String()
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "FAIL") {
		t.Fatalf("render missing failure marks:\n%s", out)
	}
}

func TestCompareBenchToleranceBoundary(t *testing.T) {
	old := benchFile("old", benchResult("X", 100))
	// Exactly at the threshold: 100 * (1 + 0.2) = 120 is NOT a regression;
	// anything strictly above is.
	if res := CompareBench(old, benchFile("new", benchResult("X", 120)), nil, 0.2); res.Regressions != 0 {
		t.Fatalf("at-threshold flagged: %+v", res.Deltas)
	}
	if res := CompareBench(old, benchFile("new", benchResult("X", 121)), nil, 0.2); res.Regressions != 1 {
		t.Fatalf("past-threshold not flagged: %+v", res.Deltas)
	}
}

func TestCompareBenchMissingAndAddedAreWarnings(t *testing.T) {
	old := benchFile("old", benchResult("Kept", 10), benchResult("Removed", 5))
	new := benchFile("new", benchResult("Kept", 10), benchResult("Added", 7))
	res := CompareBench(old, new, nil, 0.2)
	if res.Regressions != 0 {
		t.Fatalf("coverage drift treated as regression: %+v", res.Deltas)
	}
	if len(res.MissingInNew) != 1 || res.MissingInNew[0] != "Removed" {
		t.Fatalf("missing: %v", res.MissingInNew)
	}
	if len(res.AddedInNew) != 1 || res.AddedInNew[0] != "Added" {
		t.Fatalf("added: %v", res.AddedInNew)
	}
	var buf bytes.Buffer
	res.WriteText(&buf, "old", "new", 0.2)
	if out := buf.String(); !strings.Contains(out, "clean") {
		t.Fatalf("clean run not reported clean:\n%s", out)
	}
}

func TestCompareBenchCustomMetrics(t *testing.T) {
	old := benchFile("old", benchResult("X", 10))
	new := benchFile("new", benchResult("X", 10))
	// ns/op regressed 2x (benchResult derives it as 100x ns/node-round)
	// but only when the metric is tracked does it count.
	new.Results[0].Metrics["ns/op"] = 5000
	if res := CompareBench(old, new, nil, 0.2); res.Regressions != 0 {
		t.Fatalf("untracked metric flagged: %+v", res.Deltas)
	}
	if res := CompareBench(old, new, []string{"ns/op"}, 0.2); res.Regressions != 1 {
		t.Fatalf("tracked metric not flagged: %+v", res.Deltas)
	}
}

func TestReadBenchJSONRejectsGarbage(t *testing.T) {
	if _, err := obs.ReadBenchJSON(strings.NewReader("{oops")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := obs.ReadBenchJSON(strings.NewReader(`{"label":"x","results":[]}`)); err == nil {
		t.Fatal("empty results accepted")
	}
}
