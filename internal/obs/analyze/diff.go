package analyze

import (
	"fmt"
	"io"
	"math"
)

// MetricDelta is one scalar compared across two runs.
type MetricDelta struct {
	Name string  `json:"name"`
	A    float64 `json:"a"`
	B    float64 `json:"b"`
}

// Delta returns B − A.
func (d MetricDelta) Delta() float64 { return d.B - d.A }

// RelDelta returns (B − A)/|A|, or 0 when A is 0.
func (d MetricDelta) RelDelta() float64 {
	if d.A == 0 {
		return 0
	}
	return (d.B - d.A) / math.Abs(d.A)
}

// Diff compares two runs by their reports: identity drift first (config
// hash, seed, code revision — the manifest fields that decide whether
// the runs are even comparable), then headline metric deltas.
type Diff struct {
	// SameConfig is true when both manifests carry the same config hash —
	// the runs computed the same experiment.
	SameConfig bool `json:"same_config"`
	// ConfigDrift lists "key=value" config lines present in exactly one
	// run (prefixed "-" for A-only, "+" for B-only).
	ConfigDrift []string `json:"config_drift,omitempty"`
	// SeedDrift and RevisionDrift flag the other identity components.
	SeedDrift     bool `json:"seed_drift"`
	RevisionDrift bool `json:"revision_drift"`

	Metrics []MetricDelta `json:"metrics"`
}

// DiffReports compares run A against run B.
func DiffReports(a, b *Report) *Diff {
	d := &Diff{}
	am, bm := a.Manifest, b.Manifest
	if am != nil && bm != nil {
		d.SameConfig = am.ConfigHash == bm.ConfigHash
		d.SeedDrift = am.Seed != bm.Seed
		d.RevisionDrift = am.GitRevision != bm.GitRevision
		if !d.SameConfig {
			inA := map[string]bool{}
			for _, kv := range am.Config {
				inA[kv] = true
			}
			inB := map[string]bool{}
			for _, kv := range bm.Config {
				inB[kv] = true
				if !inA[kv] {
					d.ConfigDrift = append(d.ConfigDrift, "+"+kv)
				}
			}
			for _, kv := range am.Config {
				if !inB[kv] {
					d.ConfigDrift = append(d.ConfigDrift, "-"+kv)
				}
			}
		}
	}
	add := func(name string, av, bv float64) {
		if av == 0 && bv == 0 {
			return
		}
		d.Metrics = append(d.Metrics, MetricDelta{Name: name, A: av, B: bv})
	}
	add("rounds", float64(a.Rounds), float64(b.Rounds))
	add("wall_s", float64(a.WallNs)/1e9, float64(b.WallNs)/1e9)
	add("rounds_per_sec", a.RoundsPerSec, b.RoundsPerSec)
	add("trainings", float64(a.TotalTrained), float64(b.TotalTrained))
	add("final_acc", a.FinalAcc(), b.FinalAcc())
	add("harvest_wh", a.HarvestWh, b.HarvestWh)
	add("consumed_wh", a.ConsumedWh, b.ConsumedWh)
	add("wasted_wh", a.WastedWh, b.WastedWh)
	add("final_charge_wh", a.FinalChargeWh, b.FinalChargeWh)
	add("outage_episodes", float64(len(a.Outages)), float64(len(b.Outages)))
	add("dropped_sends", float64(a.DroppedSends), float64(b.DroppedSends))
	return d
}

// WriteText renders the diff for `obstool diff`.
func (d *Diff) WriteText(w io.Writer, labelA, labelB string) {
	fmt.Fprintf(w, "run diff: %s vs %s\n", labelA, labelB)
	if d.SameConfig {
		fmt.Fprintf(w, "  config: identical hash (same experiment)\n")
	} else {
		fmt.Fprintf(w, "  config: HASH DRIFT — runs are different experiments\n")
		for _, line := range d.ConfigDrift {
			fmt.Fprintf(w, "    %s\n", line)
		}
	}
	if d.SeedDrift {
		fmt.Fprintf(w, "  seed: differs\n")
	}
	if d.RevisionDrift {
		fmt.Fprintf(w, "  revision: differs\n")
	}
	fmt.Fprintf(w, "  %-18s %14s %14s %12s\n", "metric", labelA, labelB, "delta")
	for _, m := range d.Metrics {
		fmt.Fprintf(w, "  %-18s %14.4g %14.4g %+11.2f%%\n", m.Name, m.A, m.B, 100*m.RelDelta())
	}
}
