package analyze

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/report"
)

// WriteText renders the report as plain text with sparkline timelines —
// the default `obstool report` output.
func (r *Report) WriteText(w io.Writer) {
	r.write(w, false)
}

// WriteMarkdown renders the report as a markdown document
// (`obstool report -md`).
func (r *Report) WriteMarkdown(w io.Writer) {
	r.write(w, true)
}

func (r *Report) write(w io.Writer, md bool) {
	h := func(title string) {
		if md {
			fmt.Fprintf(w, "\n## %s\n\n", title)
		} else {
			fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("-", len(title)))
		}
	}
	kv := func(key, format string, args ...any) {
		val := fmt.Sprintf(format, args...)
		if md {
			fmt.Fprintf(w, "- **%s**: %s\n", key, val)
		} else {
			fmt.Fprintf(w, "  %-18s %s\n", key, val)
		}
	}

	if md {
		fmt.Fprintf(w, "# Run report\n")
	} else {
		fmt.Fprintf(w, "run report\n==========\n")
	}
	if m := r.Manifest; m != nil {
		kv("engine", "%s", m.Engine)
		if m.Label != "" {
			kv("label", "%s", m.Label)
		}
		kv("seed", "%d", m.Seed)
		kv("config", "%s", m.ConfigHash)
		if m.Nodes > 0 {
			kv("nodes", "%d", m.Nodes)
		}
		if m.GitRevision != "" {
			kv("revision", "%s", m.GitRevision)
		}
	}
	kv("events", "%d", r.Events)
	kv("rounds", "%d", r.Rounds)
	if r.WallNs > 0 {
		kv("wall time", "%.3fs", float64(r.WallNs)/1e9)
	}
	if r.RoundsPerSec > 0 {
		kv("throughput", "%.1f rounds/s", r.RoundsPerSec)
		if r.Manifest != nil && r.Manifest.Nodes > 0 {
			kv("node throughput", "%.2fM node-rounds/s", r.RoundsPerSec*float64(r.Manifest.Nodes)/1e6)
		}
	}
	if r.TotalTrained > 0 {
		kv("trainings", "%d", r.TotalTrained)
	}
	if r.DroppedSends > 0 {
		kv("dropped sends", "%d", r.DroppedSends)
	}

	if len(r.Trained) > 1 {
		h("Participation")
		kv("trained/round", "%s", report.Sparkline(r.Trained))
		kv("live/round", "%s", report.Sparkline(r.Live))
	}

	if len(r.SoCRounds) > 1 {
		h("State of charge")
		kv("mean", "%s  (final %.3f)", report.Sparkline(r.MeanSoC), last(r.MeanSoC))
		kv("p50", "%s  (final %.3f)", report.Sparkline(r.SoCP50), last(r.SoCP50))
		kv("p90", "%s  (final %.3f)", report.Sparkline(r.SoCP90), last(r.SoCP90))
		kv("p99", "%s  (final %.3f)", report.Sparkline(r.SoCP99), last(r.SoCP99))
	}

	if r.HasEnergy {
		h("Energy")
		kv("harvested", "%.2f Wh", r.HarvestWh)
		kv("consumed", "%.2f Wh", r.ConsumedWh)
		kv("wasted", "%.2f Wh", r.WastedWh)
		kv("final charge", "%.2f Wh", r.FinalChargeWh)
	}

	if len(r.PhaseNs) > 0 {
		h("Phase breakdown")
		type pt struct {
			name string
			ns   int64
		}
		var phases []pt
		var total int64
		for name, ns := range r.PhaseNs {
			phases = append(phases, pt{name, ns})
			total += ns
		}
		sort.Slice(phases, func(i, j int) bool { return phases[i].ns > phases[j].ns })
		for _, p := range phases {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(p.ns) / float64(total)
			}
			kv(p.name, "%8.3f ms  %5.1f%%", float64(p.ns)/1e6, pct)
		}
	}

	if len(r.Outages) > 0 {
		h("Outages")
		kv("episodes", "%d (%d still dark at end)", len(r.Outages), r.OpenOutages)
		hist := r.OutageHistogram()
		for b, n := range hist {
			if n == 0 {
				continue
			}
			lo := 1 << b
			hi := 1<<(b+1) - 1
			label := fmt.Sprintf("%d-%d rounds", lo, hi)
			if lo == hi {
				label = fmt.Sprintf("%d round", lo)
			}
			kv(label, "%d", n)
		}
	}

	if len(r.Evals) > 0 {
		h("Evaluations")
		for _, e := range r.Evals {
			kv(fmt.Sprintf("round %d", e.Round+1), "%.2f%% ± %.2f", 100*e.MeanAcc, 100*e.StdAcc)
		}
	}
}

func last(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}
