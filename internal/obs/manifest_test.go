package obs

import (
	"runtime"
	"testing"
)

func buildTestManifest(seed uint64) RunManifest {
	return NewManifest("sim", "test", seed).
		Scale(48, 64).
		Set("lr", "0.2").
		Set("policy", "threshold").
		Build()
}

func TestManifestHashStable(t *testing.T) {
	a, b := buildTestManifest(42), buildTestManifest(42)
	if a.ConfigHash != b.ConfigHash {
		t.Fatalf("same config hashed differently: %s vs %s", a.ConfigHash, b.ConfigHash)
	}
	if a.ConfigHash == "" {
		t.Fatal("empty config hash")
	}
}

func TestManifestHashOrderInsensitive(t *testing.T) {
	a := NewManifest("sim", "", 1).Set("x", "1").Set("y", "2").Build()
	b := NewManifest("sim", "", 1).Set("y", "2").Set("x", "1").Build()
	if a.ConfigHash != b.ConfigHash {
		t.Fatalf("field order changed the hash: %s vs %s", a.ConfigHash, b.ConfigHash)
	}
}

func TestManifestHashSensitivity(t *testing.T) {
	base := buildTestManifest(42)
	if m := buildTestManifest(43); m.ConfigHash == base.ConfigHash {
		t.Fatal("seed change did not change the hash")
	}
	changed := NewManifest("sim", "test", 42).
		Scale(48, 64).
		Set("lr", "0.3").
		Set("policy", "threshold").
		Build()
	if changed.ConfigHash == base.ConfigHash {
		t.Fatal("field change did not change the hash")
	}
	engine := NewManifest("async", "test", 42).
		Scale(48, 64).
		Set("lr", "0.2").
		Set("policy", "threshold").
		Build()
	if engine.ConfigHash == base.ConfigHash {
		t.Fatal("engine change did not change the hash")
	}
	// Label is presentation, not configuration.
	labeled := NewManifest("sim", "other-label", 42).
		Scale(48, 64).
		Set("lr", "0.2").
		Set("policy", "threshold").
		Build()
	if labeled.ConfigHash != base.ConfigHash {
		t.Fatal("label change altered the hash")
	}
}

// GOMAXPROCS is recorded but must never be hashed: results are
// bit-identical at any width, so equal configs must share a cache key.
func TestManifestHashIgnoresGOMAXPROCS(t *testing.T) {
	a := buildTestManifest(42)
	old := runtime.GOMAXPROCS(3)
	defer runtime.GOMAXPROCS(old)
	b := buildTestManifest(42)
	if a.ConfigHash != b.ConfigHash {
		t.Fatal("GOMAXPROCS leaked into the config hash")
	}
	if b.GOMAXPROCS != 3 {
		t.Fatalf("GOMAXPROCS not recorded: %d", b.GOMAXPROCS)
	}
}
