package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// This file is the perf-trajectory harness: it turns `go test -bench`
// output into the committed BENCH_*.json files the ROADMAP asks for, and
// validates JSONL event streams in CI. cmd/obstool is a thin wrapper.

// BenchResult is one parsed benchmark line: the name (GOMAXPROCS suffix
// split off), iteration count, and every reported metric — the standard
// ns/op, B/op, allocs/op plus any custom b.ReportMetric units.
type BenchResult struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// BenchFile is the persisted perf-trajectory snapshot (BENCH_<pr>.json):
// the parsed results plus the code identity they were measured on.
type BenchFile struct {
	// Label identifies the snapshot in the trajectory (e.g. "PR 6").
	Label       string        `json:"label,omitempty"`
	GoVersion   string        `json:"go_version"`
	GitRevision string        `json:"git_revision,omitempty"`
	Results     []BenchResult `json:"results"`
}

// ParseBench parses `go test -bench` text output: every line of the form
//
//	BenchmarkName-8   	      21	  52031854 ns/op	 49.96 ns/node-round	 0 B/op	 3 allocs/op
//
// becomes one BenchResult; everything else (test chatter, PASS, ok) is
// skipped. An input with no benchmark lines is an error — it usually means
// the -bench pattern matched nothing.
func ParseBench(r io.Reader) ([]BenchResult, error) {
	var out []BenchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is name, iterations, then (value, unit) pairs; a
		// bare "BenchmarkFoo" line (verbose mode header) has no fields to
		// parse.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := BenchResult{Iterations: iters, Metrics: map[string]float64{}}
		res.Name, res.Procs = splitProcs(fields[0])
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			res.Metrics[fields[i+1]] = v
		}
		if ok {
			out = append(out, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("obs: no benchmark result lines found (did the -bench pattern match anything?)")
	}
	return out, nil
}

// splitProcs splits the trailing -N GOMAXPROCS suffix off a benchmark
// name; names without one (GOMAXPROCS=1 runs omit it) return procs 1.
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 1
	}
	procs, err := strconv.Atoi(name[i+1:])
	if err != nil || procs < 1 {
		return name, 1
	}
	return name[:i], procs
}

// WriteBenchJSON wraps results in a BenchFile stamped with the current
// build identity and writes it as indented JSON — the committed
// BENCH_*.json format. Results are sorted by name so the file is
// diff-stable across runs.
func WriteBenchJSON(w io.Writer, label string, results []BenchResult) error {
	sorted := make([]BenchResult, len(results))
	copy(sorted, results)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	f := BenchFile{
		Label:       label,
		GoVersion:   runtime.Version(),
		GitRevision: gitRevision(),
		Results:     sorted,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadBenchJSON decodes one committed BENCH_*.json snapshot — the inverse
// of WriteBenchJSON, used by `obstool regress` and the perf-trajectory
// regression tests.
func ReadBenchJSON(r io.Reader) (BenchFile, error) {
	var f BenchFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return f, fmt.Errorf("obs: decoding bench snapshot: %w", err)
	}
	if len(f.Results) == 0 {
		return f, fmt.Errorf("obs: bench snapshot has no results")
	}
	return f, nil
}

// EventStats summarizes a validated event stream.
type EventStats struct {
	Events int
	Rounds int // distinct round_end events
	Kinds  map[string]int
}

// ValidateEvents reads a JSONL event stream and checks its structure: every
// line one JSON-decodable Event with a known kind, the first event a
// run_start carrying a manifest with a config hash, at least one run_end,
// and well-formed round bracketing — every round_start closed by a
// round_end for the same round before the next opens, round numbers
// strictly increasing within a run, and no round left open at a run_end
// or at end of stream. Streams without round events (the async engine,
// the grid runner) pass trivially, and a stream may carry several
// run_start/run_end pairs (the grid runner emits one per regime). This is
// the CI smoke contract for `harvestsim -events`; deeper semantic checks
// (energy conservation, brownout alternation) live in obs/analyze.
func ValidateEvents(r io.Reader) (EventStats, error) {
	stats := EventStats{Kinds: map[string]int{}}
	known := map[string]bool{
		KindRunStart: true, KindRunEnd: true, KindRoundStart: true,
		KindRoundEnd: true, KindPhase: true, KindBrownout: true,
		KindRevival: true, KindDropped: true, KindEval: true, KindCell: true,
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	openRound := -1 // round number of the currently open round, -1 when none
	lastRound := -1 // last round opened in this run
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return stats, fmt.Errorf("obs: line %d: not a JSON event: %w", line, err)
		}
		if !known[ev.Kind] {
			return stats, fmt.Errorf("obs: line %d: unknown event kind %q", line, ev.Kind)
		}
		if stats.Events == 0 {
			if ev.Kind != KindRunStart {
				return stats, fmt.Errorf("obs: line %d: stream must open with %s, got %s", line, KindRunStart, ev.Kind)
			}
			if ev.Manifest == nil || ev.Manifest.ConfigHash == "" {
				return stats, fmt.Errorf("obs: line %d: run_start carries no manifest config hash", line)
			}
		}
		switch ev.Kind {
		case KindRunStart:
			if openRound >= 0 {
				return stats, fmt.Errorf("obs: line %d: run_start with round %d still open", line, openRound)
			}
			lastRound = -1
		case KindRunEnd:
			if openRound >= 0 {
				return stats, fmt.Errorf("obs: line %d: run_end with round %d still open", line, openRound)
			}
		case KindRoundStart:
			if openRound >= 0 {
				return stats, fmt.Errorf("obs: line %d: round_start %d while round %d is still open", line, ev.Round, openRound)
			}
			if ev.Round <= lastRound {
				return stats, fmt.Errorf("obs: line %d: round_start %d is not after round %d (rounds must strictly increase)", line, ev.Round, lastRound)
			}
			openRound, lastRound = ev.Round, ev.Round
		case KindRoundEnd:
			if openRound != ev.Round {
				if openRound < 0 {
					return stats, fmt.Errorf("obs: line %d: round_end %d without a matching round_start", line, ev.Round)
				}
				return stats, fmt.Errorf("obs: line %d: round_end %d closes open round %d", line, ev.Round, openRound)
			}
			openRound = -1
		}
		stats.Events++
		stats.Kinds[ev.Kind]++
		if ev.Kind == KindRoundEnd {
			stats.Rounds++
		}
	}
	if err := sc.Err(); err != nil {
		return stats, err
	}
	if stats.Events == 0 {
		return stats, fmt.Errorf("obs: empty event stream")
	}
	if openRound >= 0 {
		return stats, fmt.Errorf("obs: event stream ends with round %d still open", openRound)
	}
	if stats.Kinds[KindRunEnd] == 0 {
		return stats, fmt.Errorf("obs: event stream has no %s (run did not close)", KindRunEnd)
	}
	return stats, nil
}
