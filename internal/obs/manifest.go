package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
)

// RunManifest is a run's content-addressable identity: everything needed
// to decide whether two runs computed the same thing. ConfigHash is a
// stable digest of the configuration fields plus the seed — independent of
// GOMAXPROCS, wall clock, and host — so (ConfigHash, GitRevision) is the
// cache key of the memoized sweep service: same config, same seed, same
// code ⇒ same bits, because every engine is pinned bit-reproducible.
//
// Engines stamp a manifest into every Result whether or not telemetry is
// on; probes additionally emit it on the run_start event.
type RunManifest struct {
	// Engine names the producing engine: "sim", "async", "gammagrid".
	Engine string `json:"engine"`
	// Label is the run's human label (the algorithm or regime name).
	Label string `json:"label,omitempty"`
	// Seed is the experiment seed (hashed into ConfigHash).
	Seed uint64 `json:"seed"`
	// Nodes and Rounds echo the run scale for quick inspection; both are
	// also config fields and hashed.
	Nodes  int `json:"nodes,omitempty"`
	Rounds int `json:"rounds,omitempty"`
	// ConfigHash is the hex digest over Engine, Seed, and the sorted
	// Config fields.
	ConfigHash string `json:"config_hash"`
	// Config lists the hashed fields as sorted "key=value" strings, so a
	// hash mismatch is diffable by eye.
	Config []string `json:"config"`
	// GoVersion and GitRevision identify the code: the third component of
	// the cache key. GitRevision is empty when the binary was built
	// without VCS stamping (plain `go test` in a work tree).
	GoVersion   string `json:"go_version"`
	GitRevision string `json:"git_revision,omitempty"`
	// GOMAXPROCS records the worker width of this run. It is NOT hashed:
	// results are bit-identical at any width, so it must not split the
	// cache.
	GOMAXPROCS int `json:"gomaxprocs"`
}

// ManifestBuilder accumulates config fields and derives the stable hash.
type ManifestBuilder struct {
	engine, label string
	seed          uint64
	nodes, rounds int
	fields        map[string]string
}

// NewManifest starts a manifest for one run of the named engine.
func NewManifest(engine, label string, seed uint64) *ManifestBuilder {
	return &ManifestBuilder{engine: engine, label: label, seed: seed, fields: map[string]string{}}
}

// Scale records the run's node count and horizon (also hashed as config
// fields).
func (b *ManifestBuilder) Scale(nodes, rounds int) *ManifestBuilder {
	b.nodes, b.rounds = nodes, rounds
	b.Set("nodes", fmt.Sprint(nodes))
	b.Set("rounds", fmt.Sprint(rounds))
	return b
}

// Set records one config field. Last write per key wins; keys are sorted
// before hashing, so call order never matters.
func (b *ManifestBuilder) Set(key, value string) *ManifestBuilder {
	b.fields[key] = value
	return b
}

// Setf records one config field with fmt formatting.
func (b *ManifestBuilder) Setf(key, format string, args ...any) *ManifestBuilder {
	return b.Set(key, fmt.Sprintf(format, args...))
}

// Build finalizes the manifest: sorts the fields, hashes them with the
// engine name and seed, and stamps the build identity.
func (b *ManifestBuilder) Build() RunManifest {
	keys := make([]string, 0, len(b.fields))
	for k := range b.fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	cfg := make([]string, len(keys))
	h := sha256.New()
	fmt.Fprintf(h, "engine=%s\nseed=%d\n", b.engine, b.seed)
	for i, k := range keys {
		cfg[i] = k + "=" + b.fields[k]
		fmt.Fprintf(h, "%s\n", cfg[i])
	}
	sum := h.Sum(nil)
	return RunManifest{
		Engine:      b.engine,
		Label:       b.label,
		Seed:        b.seed,
		Nodes:       b.nodes,
		Rounds:      b.rounds,
		ConfigHash:  hex.EncodeToString(sum[:16]),
		Config:      cfg,
		GoVersion:   runtime.Version(),
		GitRevision: gitRevision(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
}

// gitRevision reads the VCS revision the binary was built from, when the
// toolchain stamped one.
func gitRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	rev, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" && dirty {
		rev += "+dirty"
	}
	return rev
}
