package obs

import (
	"fmt"
	"math"
)

// Sketch is a fixed-bin streaming histogram over a closed value range: the
// quantile structure behind the engine's per-round SoC percentiles. Observe
// is O(1) and allocation-free, Quantile is O(bins), and the whole structure
// is a few kilobytes regardless of population size — the replacement for
// materializing a per-node slice every round just to know P50/P99.
//
// Quantile error is bounded by one bin width: the reported value is the
// midpoint of the bin containing the exact rank-q element, so it is within
// BinWidth of the true quantile (within BinWidth/2 for in-range values).
// Observations outside [lo, hi] clamp into the edge bins.
//
// Sketches of identical shape merge exactly (Merge), so per-shard sketches
// can be combined into fleet-wide percentiles without re-observation — the
// property the sharded fleet close-out and the sweep service rely on.
//
// A Sketch is not safe for concurrent use; the engines observe from the
// coordinator goroutine only.
type Sketch struct {
	lo, hi float64
	width  float64
	counts []uint64
	n      uint64
}

// SoCBins is the default resolution of NewSoCSketch: SoC percentiles are
// exact to better than half a percentage point of charge.
const SoCBins = 256

// NewSketch returns a sketch over [lo, hi] with the given bin count.
func NewSketch(lo, hi float64, bins int) (*Sketch, error) {
	if bins < 1 {
		return nil, fmt.Errorf("obs: sketch needs >= 1 bin, got %d", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("obs: sketch range [%g, %g] is empty", lo, hi)
	}
	return &Sketch{lo: lo, hi: hi, width: (hi - lo) / float64(bins), counts: make([]uint64, bins)}, nil
}

// NewSoCSketch returns the standard state-of-charge sketch: SoCBins bins
// over [0, 1].
func NewSoCSketch() *Sketch {
	s, err := NewSketch(0, 1, SoCBins)
	if err != nil {
		panic(err) // constants above are valid by construction
	}
	return s
}

// Observe records one value, clamping out-of-range values into the edge
// bins.
func (s *Sketch) Observe(x float64) {
	idx := int((x - s.lo) / s.width)
	if idx < 0 {
		idx = 0
	} else if idx >= len(s.counts) {
		idx = len(s.counts) - 1
	}
	s.counts[idx]++
	s.n++
}

// Count returns how many observations the sketch holds.
func (s *Sketch) Count() uint64 { return s.n }

// BinWidth returns the value width of one bin — the quantile error bound.
func (s *Sketch) BinWidth() float64 { return s.width }

// Bins returns the bin count.
func (s *Sketch) Bins() int { return len(s.counts) }

// Quantile returns the q-quantile (q clamped to [0, 1]) as the midpoint of
// the bin holding the exact rank-ceil(q*n) observation. An empty sketch
// returns NaN.
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.counts {
		cum += c
		if cum >= rank {
			return s.lo + (float64(i)+0.5)*s.width
		}
	}
	return s.hi - s.width/2
}

// Reset empties the sketch, keeping its shape. The backing array is
// reused, so a per-round Reset+Observe cycle allocates nothing.
func (s *Sketch) Reset() {
	clear(s.counts)
	s.n = 0
}

// Merge adds every observation of o into s. The sketches must have the
// same range and bin count.
func (s *Sketch) Merge(o *Sketch) error {
	if s.lo != o.lo || s.hi != o.hi || len(s.counts) != len(o.counts) {
		return fmt.Errorf("obs: merging sketches of different shape: [%g,%g]/%d vs [%g,%g]/%d",
			s.lo, s.hi, len(s.counts), o.lo, o.hi, len(o.counts))
	}
	for i, c := range o.counts {
		s.counts[i] += c
	}
	s.n += o.n
	return nil
}
