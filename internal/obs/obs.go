// Package obs is the streaming observability layer of the simulator: a
// zero-overhead-when-disabled probe that the engines (internal/sim,
// internal/async, the experiments grid runner) thread through their hot
// paths, emitting structured events — round boundaries, per-phase
// wall-clock and allocation counters, brown-outs, revivals, dropped sends,
// evaluations — into pluggable sinks (JSONL files, a live progress line,
// an in-memory buffer for tests, or nothing at all).
//
// Three invariants shape the design:
//
//   - Disabled means free. A nil *Probe is the off state; every method is
//     safe and a no-op on a nil receiver, so instrumented code pays one
//     nil check per emission and allocates nothing.
//   - Telemetry is read-only. Probes observe engine state, never mutate
//     it, and never touch an RNG stream: a telemetry-on run is
//     bit-identical in model state to the same run with telemetry off
//     (pinned by tests in internal/sim).
//   - Events are flat. One Event struct covers every kind, JSON-encodes to
//     a single line, and carries no nested maps, so a JSONL stream is
//     greppable and trivially parseable by downstream tooling.
//
// The package also provides the streaming quantile Sketch (SoC percentiles
// without materializing per-node slices), the RunManifest (a
// content-addressable run identity: config hash, seed, Go version, git
// revision — the future cache key of the memoized sweep service), and the
// benchmark-output → JSON harness behind cmd/obstool and the persisted
// BENCH_*.json perf trajectory.
package obs

import (
	"runtime/metrics"
	"time"
)

// Phase identifies one barriered section of an engine round. The sim
// engine's phases map one-to-one; other engines use the subset that
// applies (async: train and gossip).
type Phase uint8

const (
	// PhaseLiveSet is the start-of-round liveness snapshot and mixing
	// re-normalization.
	PhaseLiveSet Phase = iota
	// PhaseRejoin is the checkpoint/rejoin pass on live-set transitions.
	PhaseRejoin
	// PhaseTrain is the local-training fan-out.
	PhaseTrain
	// PhaseShare is the model-sharing (send) fan-out.
	PhaseShare
	// PhaseAggregate is the receive-and-average fan-out.
	PhaseAggregate
	// PhaseBattery is the fleet battery close-out (drain + harvest).
	PhaseBattery
	// PhaseEval is the evaluation pass.
	PhaseEval
	// PhaseGossip is the async engine's gossip/merge work.
	PhaseGossip

	numPhases
)

var phaseNames = [numPhases]string{
	"liveset", "rejoin", "train", "share", "aggregate", "battery", "eval", "gossip",
}

// String returns the phase's event label.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Event kinds. Every event in a stream carries exactly one of these.
const (
	// KindRunStart opens a run; it carries the RunManifest.
	KindRunStart = "run_start"
	// KindRunEnd closes a run with total wall time and counters.
	KindRunEnd = "run_end"
	// KindRoundStart marks the beginning of round Round (Label = round kind).
	KindRoundStart = "round_start"
	// KindRoundEnd summarizes round Round: wall time, participation,
	// liveness, and streamed SoC percentiles.
	KindRoundEnd = "round_end"
	// KindPhase reports one phase's wall clock (and, with
	// Probe.TrackAllocs, allocation deltas) within round Round.
	KindPhase = "phase"
	// KindBrownout marks node Node dropping below its cutoff at round Round.
	KindBrownout = "brownout"
	// KindRevival marks node Node recharging past its cutoff at round
	// Round, with the rounds it missed in Staleness when known.
	KindRevival = "revival"
	// KindDropped reports messages lost on dead edges this round.
	KindDropped = "dropped_sends"
	// KindEval reports an evaluation's mean/std accuracy.
	KindEval = "eval"
	// KindCell reports one completed grid-search cell (Label identifies
	// it, Value is its headline metric, WallNs its wall clock).
	KindCell = "cell"
)

// Event is one structured telemetry record. The struct is deliberately
// flat — every kind uses a subset of the fields and leaves the rest at
// their zero values, so a JSONL stream stays one self-describing object
// per line. Round is -1 on events outside any round, Node is -1 on events
// not tied to a node.
type Event struct {
	Kind  string `json:"kind"`
	Round int    `json:"round"`
	Node  int    `json:"node"`

	// Phase label (phase events) and free-form label (round kind on
	// round_start, cell identity on cell events).
	Phase string `json:"phase,omitempty"`
	Label string `json:"label,omitempty"`

	// Wall clock and allocation counters.
	WallNs     int64 `json:"wall_ns,omitempty"`
	Allocs     int64 `json:"allocs,omitempty"`
	AllocBytes int64 `json:"alloc_bytes,omitempty"`

	// Round and run counters.
	Trained   int `json:"trained,omitempty"`
	Live      int `json:"live,omitempty"`
	Depleted  int `json:"depleted,omitempty"`
	Dropped   int `json:"dropped,omitempty"`
	Staleness int `json:"staleness,omitempty"`
	Steps     int `json:"steps,omitempty"`
	Gossips   int `json:"gossips,omitempty"`

	// Streamed fleet state of charge (round_end of harvest-coupled runs).
	MeanSoC float64 `json:"mean_soc,omitempty"`
	SoCP50  float64 `json:"soc_p50,omitempty"`
	SoCP90  float64 `json:"soc_p90,omitempty"`
	SoCP99  float64 `json:"soc_p99,omitempty"`

	// Per-round fleet energy totals in watt-hours (round_end of
	// harvest-coupled runs; charge also rides on run_start as the audit
	// baseline). HarvestWh is the energy that arrived this round — the sum
	// of what was stored and what overflowed full batteries (WastedWh), so
	// HarvestWh − ConsumedWh − WastedWh = ΔChargeWh, the conservation
	// identity the analyze.Auditor checks.
	HarvestWh  float64 `json:"harvest_wh,omitempty"`
	ConsumedWh float64 `json:"consumed_wh,omitempty"`
	WastedWh   float64 `json:"wasted_wh,omitempty"`
	ChargeWh   float64 `json:"charge_wh,omitempty"`

	// Evaluation results (eval events).
	MeanAcc float64 `json:"mean_acc,omitempty"`
	StdAcc  float64 `json:"std_acc,omitempty"`

	// VTime is the async engine's virtual time in seconds.
	VTime float64 `json:"vtime,omitempty"`
	// Value is a kind-specific headline metric (cell accuracy, ...).
	Value float64 `json:"value,omitempty"`

	// Manifest rides on run_start only.
	Manifest *RunManifest `json:"manifest,omitempty"`
}

// RoundStats is the per-round summary a probe turns into a round_end
// event. HasSoC distinguishes "no fleet attached" from all-zero charge;
// HasEnergy likewise gates the per-round energy ledger fields.
type RoundStats struct {
	Trained  int
	Live     int
	Depleted int
	HasSoC   bool
	MeanSoC  float64
	SoCP50   float64
	SoCP90   float64
	SoCP99   float64

	// Per-round fleet energy ledger (Wh): what arrived, what training and
	// idling drained, what overflowed full batteries, and the fleet's total
	// charge after the round closed.
	HasEnergy  bool
	HarvestWh  float64
	ConsumedWh float64
	WastedWh   float64
	ChargeWh   float64
}

// Probe is the handle engines emit telemetry through. A nil *Probe is the
// disabled state: every method no-ops, so hot paths carry instrumentation
// unconditionally and pay only a nil check when telemetry is off.
//
// Emit (and the event helpers built on it) is safe for concurrent use
// whenever the sink is — the provided sinks all are. The phase and round
// timers (RoundStart/RoundEnd, PhaseStart/PhaseEnd) keep per-probe state
// and must be driven by one goroutine, the engine's coordinator; the
// engines' worker fan-outs never touch them.
type Probe struct {
	sink Sink

	// TrackAllocs additionally samples the runtime's cumulative heap
	// allocation counters at phase boundaries, attaching per-phase
	// alloc/byte deltas to phase events. Set before the run starts; the
	// counters are process-wide, so concurrent allocating work outside the
	// phase inflates them.
	TrackAllocs bool

	runStart    time.Time
	roundStart  time.Time
	phaseStart  [numPhases]time.Time
	phaseAllocs [numPhases]uint64
	phaseBytes  [numPhases]uint64
	samples     []metrics.Sample
}

// NewProbe returns a probe emitting into sink. A nil sink yields a
// disabled (nil) probe, so callers can thread the result unconditionally.
func NewProbe(sink Sink) *Probe {
	if sink == nil {
		return nil
	}
	return &Probe{sink: sink}
}

// Enabled reports whether the probe is live. Engines use it to gate work
// that only exists to feed telemetry (e.g. live-set diffing for brown-out
// events).
func (p *Probe) Enabled() bool { return p != nil }

// Emit sends one event to the sink. Safe on a nil probe.
func (p *Probe) Emit(ev Event) {
	if p == nil {
		return
	}
	p.sink.Emit(ev)
}

// RunStart opens the run: stamps the wall clock and emits run_start
// carrying the manifest.
func (p *Probe) RunStart(m *RunManifest) {
	if p == nil {
		return
	}
	p.runStart = time.Now()
	p.sink.Emit(Event{Kind: KindRunStart, Round: -1, Node: -1, Manifest: m})
}

// RunStartCharge is RunStart for harvest-coupled runs: the run_start
// event additionally carries the fleet's initial total charge (Wh), the
// baseline the energy-conservation audit integrates from. A fleet that
// genuinely starts empty stamps nothing (the field is omitempty, zero Wh
// drops out of the JSON) and the auditor baselines at the first
// round_end instead.
func (p *Probe) RunStartCharge(m *RunManifest, chargeWh float64) {
	if p == nil {
		return
	}
	p.runStart = time.Now()
	p.sink.Emit(Event{Kind: KindRunStart, Round: -1, Node: -1, Manifest: m, ChargeWh: chargeWh})
}

// RunEnd closes the run with its total wall clock and counters.
func (p *Probe) RunEnd(rounds, trained int) {
	if p == nil {
		return
	}
	p.sink.Emit(Event{
		Kind: KindRunEnd, Round: -1, Node: -1,
		WallNs: time.Since(p.runStart).Nanoseconds(),
		Steps:  rounds, Trained: trained,
	})
}

// RoundStart marks the beginning of round t (kind is the coordinated
// round kind's label).
func (p *Probe) RoundStart(t int, kind string) {
	if p == nil {
		return
	}
	p.roundStart = time.Now()
	p.sink.Emit(Event{Kind: KindRoundStart, Round: t, Node: -1, Label: kind})
}

// RoundEnd summarizes round t.
func (p *Probe) RoundEnd(t int, s RoundStats) {
	if p == nil {
		return
	}
	ev := Event{
		Kind: KindRoundEnd, Round: t, Node: -1,
		WallNs:  time.Since(p.roundStart).Nanoseconds(),
		Trained: s.Trained, Live: s.Live, Depleted: s.Depleted,
	}
	if s.HasSoC {
		ev.MeanSoC, ev.SoCP50, ev.SoCP90, ev.SoCP99 = s.MeanSoC, s.SoCP50, s.SoCP90, s.SoCP99
	}
	if s.HasEnergy {
		ev.HarvestWh, ev.ConsumedWh, ev.WastedWh, ev.ChargeWh = s.HarvestWh, s.ConsumedWh, s.WastedWh, s.ChargeWh
	}
	p.sink.Emit(ev)
}

// PhaseStart opens phase ph's timer (and allocation snapshot when
// TrackAllocs is set).
func (p *Probe) PhaseStart(ph Phase) {
	if p == nil {
		return
	}
	if p.TrackAllocs {
		allocs, bytes := p.readAllocs()
		p.phaseAllocs[ph], p.phaseBytes[ph] = allocs, bytes
	}
	p.phaseStart[ph] = time.Now()
}

// PhaseEnd closes phase ph within round t and emits its phase event.
func (p *Probe) PhaseEnd(t int, ph Phase) {
	if p == nil {
		return
	}
	ev := Event{
		Kind: KindPhase, Round: t, Node: -1, Phase: ph.String(),
		WallNs: time.Since(p.phaseStart[ph]).Nanoseconds(),
	}
	if p.TrackAllocs {
		allocs, bytes := p.readAllocs()
		ev.Allocs = int64(allocs - p.phaseAllocs[ph])
		ev.AllocBytes = int64(bytes - p.phaseBytes[ph])
	}
	p.sink.Emit(ev)
}

// Brownout marks node dropping below its cutoff at round t.
func (p *Probe) Brownout(t, node int) {
	if p == nil {
		return
	}
	p.sink.Emit(Event{Kind: KindBrownout, Round: t, Node: node})
}

// Revival marks node recharging past its cutoff at round t; staleness is
// the rounds it missed (0 when unknown).
func (p *Probe) Revival(t, node, staleness int) {
	if p == nil {
		return
	}
	p.sink.Emit(Event{Kind: KindRevival, Round: t, Node: node, Staleness: staleness})
}

// DroppedSends reports n messages lost on dead edges in round t; a zero
// count emits nothing.
func (p *Probe) DroppedSends(t, n int) {
	if p == nil || n == 0 {
		return
	}
	p.sink.Emit(Event{Kind: KindDropped, Round: t, Node: -1, Dropped: n})
}

// Eval reports an evaluation at round t.
func (p *Probe) Eval(t int, meanAcc, stdAcc float64) {
	if p == nil {
		return
	}
	p.sink.Emit(Event{Kind: KindEval, Round: t, Node: -1, MeanAcc: meanAcc, StdAcc: stdAcc})
}

// readAllocs samples the runtime's cumulative heap allocation counters
// (objects, bytes) via runtime/metrics — no stop-the-world, unlike
// runtime.ReadMemStats.
func (p *Probe) readAllocs() (allocs, bytes uint64) {
	if p.samples == nil {
		p.samples = []metrics.Sample{
			{Name: "/gc/heap/allocs:objects"},
			{Name: "/gc/heap/allocs:bytes"},
		}
	}
	metrics.Read(p.samples)
	return p.samples[0].Value.Uint64(), p.samples[1].Value.Uint64()
}
