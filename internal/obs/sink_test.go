package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// failWriter fails every write after the first n bytes-worth of calls.
type failWriter struct {
	calls int
	limit int
	err   error
}

func (w *failWriter) Write(p []byte) (int, error) {
	w.calls++
	if w.calls > w.limit {
		return 0, w.err
	}
	return len(p), nil
}

type failCloser struct {
	bytes.Buffer
	err error
}

func (c *failCloser) Close() error { return c.err }

func TestJSONLWriteFailureIsStickyAndSurfacesOnClose(t *testing.T) {
	wantErr := errors.New("disk full")
	w := &failWriter{limit: 0, err: wantErr}
	s := NewJSONL(w)
	// Force the tiny bufio buffer to flush mid-stream so the write error
	// lands during Emit, not only at Close.
	big := Event{Kind: KindCell, Label: strings.Repeat("x", 8192)}
	s.Emit(big)
	s.Emit(big)
	if err := s.Close(); !errors.Is(err, wantErr) {
		t.Fatalf("Close() = %v, want %v", err, wantErr)
	}
	// Errors are sticky: closing again reports the same failure.
	if err := s.Close(); !errors.Is(err, wantErr) {
		t.Fatalf("second Close() = %v, want sticky %v", err, wantErr)
	}
}

func TestJSONLCloserFailureSurfaces(t *testing.T) {
	wantErr := errors.New("close failed")
	c := &failCloser{err: wantErr}
	s := NewJSONL(c)
	s.Emit(Event{Kind: KindRunEnd, Round: -1, Node: -1})
	if err := s.Close(); !errors.Is(err, wantErr) {
		t.Fatalf("Close() = %v, want %v", err, wantErr)
	}
}

func TestJSONLEmitAfterCloseIsDiscarded(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	s.Emit(Event{Kind: KindRunEnd, Round: -1, Node: -1})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	before := buf.Len()
	s.Emit(Event{Kind: KindEval, Round: 0, Node: -1})
	if buf.Len() != before {
		t.Fatal("Emit after Close wrote to the stream")
	}
}

func TestMultiCloseReturnsFirstErrorButClosesAll(t *testing.T) {
	wantErr := errors.New("child failed")
	bad := NewJSONL(&failCloser{err: wantErr})
	mem := NewMemory()
	progress := NewProgress(&bytes.Buffer{})
	m := Multi(bad, mem, progress)
	m.Emit(Event{Kind: KindRoundEnd, Round: 0, Node: -1, Trained: 3})
	if mem.Count(KindRoundEnd) != 1 {
		t.Fatal("fan-out skipped a child")
	}
	if err := m.Close(); !errors.Is(err, wantErr) {
		t.Fatalf("Multi.Close() = %v, want first child error %v", err, wantErr)
	}
}

func TestMemorySinkLimitCountsDropped(t *testing.T) {
	s := NewMemory()
	s.Limit = 3
	for i := 0; i < 10; i++ {
		s.Emit(Event{Kind: KindRoundEnd, Round: i, Node: -1})
	}
	if got := len(s.Events()); got != 3 {
		t.Fatalf("buffered %d events, want limit 3", got)
	}
	if s.Dropped() != 7 {
		t.Fatalf("Dropped() = %d, want 7", s.Dropped())
	}
	// The retained events are the earliest ones, in order.
	for i, ev := range s.Events() {
		if ev.Round != i {
			t.Fatalf("event %d has round %d", i, ev.Round)
		}
	}
}

func TestProgressSinkShowsNodeThroughput(t *testing.T) {
	var buf bytes.Buffer
	s := NewProgress(&buf)
	m := NewManifest("sim", "x", 1).Scale(2_000_000, 4).Build()
	s.Emit(Event{Kind: KindRunStart, Round: -1, Node: -1, Manifest: &m})
	s.Emit(Event{Kind: KindRoundEnd, Round: 0, Node: -1, Trained: 5, Live: 8, WallNs: 1_000_000})
	s.Close()
	if out := buf.String(); !strings.Contains(out, "2000.0M nr/s") {
		t.Fatalf("no node throughput in progress line:\n%q", out)
	}
}
