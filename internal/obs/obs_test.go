package obs

import (
	"bytes"
	"strings"
	"testing"
)

// A nil probe is the disabled state: every method must be a safe no-op.
func TestNilProbeIsSafe(t *testing.T) {
	var p *Probe
	if p.Enabled() {
		t.Fatal("nil probe reports enabled")
	}
	m := NewManifest("sim", "", 1).Build()
	p.RunStart(&m)
	p.RoundStart(0, "train")
	p.PhaseStart(PhaseTrain)
	p.PhaseEnd(0, PhaseTrain)
	p.Brownout(0, 1)
	p.Revival(0, 1, 3)
	p.DroppedSends(0, 5)
	p.Eval(0, 0.5, 0.1)
	p.RoundEnd(0, RoundStats{})
	p.RunEnd(1, 1)
	p.Emit(Event{Kind: KindRunStart})
	if NewProbe(nil) != nil {
		t.Fatal("NewProbe(nil) should return the disabled (nil) probe")
	}
}

// The probe's event stream, run through the JSONL sink, must round-trip
// through ValidateEvents — the contract of the CI telemetry smoke step.
func TestJSONLStreamValidates(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	p := NewProbe(sink)
	m := NewManifest("sim", "run", 42).Scale(4, 2).Build()
	p.RunStart(&m)
	for round := 0; round < 2; round++ {
		p.RoundStart(round, "train")
		p.PhaseStart(PhaseTrain)
		p.PhaseEnd(round, PhaseTrain)
		p.Brownout(round, 3)
		p.Revival(round, 2, 1)
		p.DroppedSends(round, 4)
		p.Eval(round, 0.7, 0.05)
		p.RoundEnd(round, RoundStats{Trained: 3, Live: 4, HasSoC: true, MeanSoC: 0.5, SoCP50: 0.5, SoCP90: 0.8, SoCP99: 0.9})
	}
	p.RunEnd(2, 6)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	stats, err := ValidateEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("stream does not validate: %v\n%s", err, buf.String())
	}
	if stats.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", stats.Rounds)
	}
	for kind, want := range map[string]int{
		KindRunStart: 1, KindRunEnd: 1, KindRoundStart: 2, KindRoundEnd: 2,
		KindPhase: 2, KindBrownout: 2, KindRevival: 2, KindDropped: 2, KindEval: 2,
	} {
		if stats.Kinds[kind] != want {
			t.Fatalf("%s count = %d, want %d", kind, stats.Kinds[kind], want)
		}
	}
}

func TestDroppedSendsSkipsZero(t *testing.T) {
	mem := NewMemory()
	p := NewProbe(mem)
	p.DroppedSends(0, 0)
	p.DroppedSends(0, 2)
	if n := mem.Count(KindDropped); n != 1 {
		t.Fatalf("dropped events = %d, want 1 (zero counts skipped)", n)
	}
}

func TestValidateEventsRejectsBadStreams(t *testing.T) {
	const runStart = `{"kind":"run_start","round":-1,"node":-1,"manifest":{"engine":"sim","seed":1,"config_hash":"ab","config":[],"go_version":"x","gomaxprocs":1}}` + "\n"
	const runEnd = `{"kind":"run_end","round":-1,"node":-1}` + "\n"
	cases := map[string]string{
		"empty":          "",
		"not json":       "hello\n",
		"unknown kind":   `{"kind":"nonsense","round":0,"node":0}` + "\n",
		"no run_start":   `{"kind":"round_start","round":0,"node":-1}` + "\n",
		"no manifest":    `{"kind":"run_start","round":-1,"node":-1}` + "\n",
		"missing runend": runStart,
		"unpaired round_end": runStart +
			`{"kind":"round_end","round":0,"node":-1}` + "\n" + runEnd,
		"double round_start": runStart +
			`{"kind":"round_start","round":0,"node":-1}` + "\n" +
			`{"kind":"round_start","round":1,"node":-1}` + "\n" + runEnd,
		"round_end number mismatch": runStart +
			`{"kind":"round_start","round":0,"node":-1}` + "\n" +
			`{"kind":"round_end","round":3,"node":-1}` + "\n" + runEnd,
		"rounds not monotone": runStart +
			`{"kind":"round_start","round":1,"node":-1}` + "\n" +
			`{"kind":"round_end","round":1,"node":-1}` + "\n" +
			`{"kind":"round_start","round":0,"node":-1}` + "\n" +
			`{"kind":"round_end","round":0,"node":-1}` + "\n" + runEnd,
		"round open at run_end": runStart +
			`{"kind":"round_start","round":0,"node":-1}` + "\n" + runEnd,
		"round open at stream end": runStart +
			`{"kind":"round_start","round":0,"node":-1}` + "\n",
	}
	for name, stream := range cases {
		if _, err := ValidateEvents(strings.NewReader(stream)); err == nil {
			t.Errorf("%s: stream validated, want error", name)
		}
	}
	// A well-paired multi-run stream must still validate.
	good := runStart +
		`{"kind":"round_start","round":0,"node":-1}` + "\n" +
		`{"kind":"round_end","round":0,"node":-1}` + "\n" + runEnd +
		runStart + // second segment: round numbering restarts
		`{"kind":"round_start","round":0,"node":-1}` + "\n" +
		`{"kind":"round_end","round":0,"node":-1}` + "\n" + runEnd
	if stats, err := ValidateEvents(strings.NewReader(good)); err != nil || stats.Events != 8 {
		t.Fatalf("multi-run stream rejected: stats=%+v err=%v", stats, err)
	}
}

func TestParseBench(t *testing.T) {
	const out = `goos: linux
goarch: amd64
BenchmarkHarvestFleetRound-8   	      21	  52031854 ns/op	 49.96 ns/node-round	       0 B/op	       3 allocs/op
BenchmarkHorizonPlan   	    1000	      1000 ns/op
PASS
ok  	repro	1.0s
`
	results, err := ParseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkHarvestFleetRound" || r.Procs != 8 || r.Iterations != 21 {
		t.Fatalf("bad first result: %+v", r)
	}
	if r.Metrics["ns/op"] != 52031854 || r.Metrics["ns/node-round"] != 49.96 || r.Metrics["allocs/op"] != 3 {
		t.Fatalf("bad metrics: %+v", r.Metrics)
	}
	if results[1].Procs != 1 {
		t.Fatalf("suffix-less benchmark should report procs 1, got %d", results[1].Procs)
	}
	if _, err := ParseBench(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("benchless input should error")
	}

	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, "test", results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"label": "test"`) || !strings.Contains(buf.String(), "BenchmarkHorizonPlan") {
		t.Fatalf("bench JSON missing fields:\n%s", buf.String())
	}
}
