package obs

import (
	"math"
	"testing"
)

// FuzzSketchQuantiles feeds the SoC sketch arbitrary observations —
// including NaN, infinities, and far-out-of-range values, which clamp into
// the edge bins — and checks the quantile invariants the fleet close-out
// relies on: every reported quantile lies inside the sketch's value range,
// and quantiles are monotone non-decreasing in q.
func FuzzSketchQuantiles(f *testing.F) {
	f.Add(0.5, 0.25, 0.9, uint16(100))
	f.Add(-1.5, 2.5, 0.0, uint16(3))
	f.Add(math.Inf(1), math.Inf(-1), math.NaN(), uint16(7))
	f.Add(0.0, 1.0, 1e-300, uint16(1))
	f.Fuzz(func(t *testing.T, a, b, c float64, n uint16) {
		s := NewSoCSketch()
		s.Observe(a)
		s.Observe(b)
		s.Observe(c)
		// A deterministic pseudo-population derived from the seeds, so the
		// fuzzer also explores rank arithmetic on larger counts.
		x := a
		for i := 0; i < int(n); i++ {
			x = math.Abs(x*0.7+b*0.1) + c*1e-6
			s.Observe(x)
		}
		if want := uint64(3 + int(n)); s.Count() != want {
			t.Fatalf("Count %d after %d observations", s.Count(), want)
		}
		qs := []float64{-0.5, 0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1, 1.5}
		prev := math.Inf(-1)
		for _, q := range qs {
			v := s.Quantile(q)
			if math.IsNaN(v) {
				t.Fatalf("Quantile(%g) is NaN on a non-empty sketch", q)
			}
			if v < 0 || v > 1 {
				t.Fatalf("Quantile(%g) = %v outside the sketch range [0, 1]", q, v)
			}
			if v < prev {
				t.Fatalf("Quantile(%g) = %v < previous quantile %v: not monotone", q, v, prev)
			}
			prev = v
		}
		// Merging a sketch into a fresh one of the same shape preserves
		// every quantile exactly: same counts, same ranks.
		m := NewSoCSketch()
		if err := m.Merge(s); err != nil {
			t.Fatalf("merging same-shape sketches: %v", err)
		}
		for _, q := range qs {
			if m.Quantile(q) != s.Quantile(q) {
				t.Fatalf("Quantile(%g) changed across Merge: %v vs %v", q, m.Quantile(q), s.Quantile(q))
			}
		}
	})
}
