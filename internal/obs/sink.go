package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Sink consumes the event stream a Probe emits. Implementations must be
// safe for concurrent Emit calls: the grid runner fans cells out across
// workers and they share one sink.
type Sink interface {
	Emit(Event)
	// Close flushes buffered state. The probe's owner closes the sink once
	// after the run; events emitted after Close are discarded.
	Close() error
}

// Null returns the no-op sink: every event is discarded. It exists so
// callers can construct an always-valid sink chain; for a fully disabled
// probe prefer a nil *Probe, which skips event construction entirely.
func Null() Sink { return nullSink{} }

type nullSink struct{}

func (nullSink) Emit(Event)   {}
func (nullSink) Close() error { return nil }

// JSONLSink writes one JSON object per event per line. Emit is safe for
// concurrent use; encoding errors are sticky and reported by Close.
type JSONLSink struct {
	mu     sync.Mutex
	w      *bufio.Writer
	c      io.Closer // closes the underlying writer when it is a Closer
	enc    *json.Encoder
	err    error
	closed bool
}

// NewJSONL returns a JSONL sink over w. If w is an io.Closer (a file),
// Close closes it after flushing.
func NewJSONL(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	s := &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit encodes ev as one line.
func (s *JSONLSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.err != nil {
		return
	}
	s.err = s.enc.Encode(ev)
}

// Close flushes the buffer (and closes the underlying file, when there is
// one), returning the first error seen on the stream.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	if err := s.w.Flush(); s.err == nil {
		s.err = err
	}
	if s.c != nil {
		if err := s.c.Close(); s.err == nil {
			s.err = err
		}
	}
	return s.err
}

// ProgressSink renders a human-readable live progress line: round_end
// events overwrite one status line (carriage return, no scroll) and
// evaluations, cells, and the run close print durable lines. It is meant
// for an interactive stderr; pipe JSONL elsewhere for machine use.
type ProgressSink struct {
	mu     sync.Mutex
	w      io.Writer
	rounds int  // total rounds from the manifest, 0 when unknown
	nodes  int  // fleet size from the manifest, 0 when unknown
	dirty  bool // a \r status line is pending and needs a newline
}

// NewProgress returns a progress sink writing to w.
func NewProgress(w io.Writer) *ProgressSink { return &ProgressSink{w: w} }

func (s *ProgressSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch ev.Kind {
	case KindRunStart:
		if ev.Manifest != nil {
			s.rounds = ev.Manifest.Rounds
			s.nodes = ev.Manifest.Nodes
			fmt.Fprintf(s.w, "run %s seed=%d config=%s\n",
				ev.Manifest.Engine, ev.Manifest.Seed, ev.Manifest.ConfigHash)
		}
	case KindRoundEnd:
		total := "?"
		if s.rounds > 0 {
			total = fmt.Sprint(s.rounds)
		}
		line := fmt.Sprintf("\rround %d/%s  trained=%d live=%d", ev.Round+1, total, ev.Trained, ev.Live)
		if ev.SoCP50 != 0 || ev.SoCP99 != 0 || ev.MeanSoC != 0 {
			line += fmt.Sprintf("  soc p50=%.3f p90=%.3f p99=%.3f", ev.SoCP50, ev.SoCP90, ev.SoCP99)
		}
		if s.nodes > 0 && ev.WallNs > 0 {
			line += fmt.Sprintf("  %.1fM nr/s", float64(s.nodes)/float64(ev.WallNs)*1e3)
		}
		fmt.Fprintf(s.w, "%-78s", line)
		s.dirty = true
	case KindEval:
		s.newline()
		fmt.Fprintf(s.w, "eval round %d: %.2f%% ± %.2f\n", ev.Round+1, 100*ev.MeanAcc, 100*ev.StdAcc)
	case KindCell:
		s.newline()
		fmt.Fprintf(s.w, "cell %s: %.2f (%.1f ms)\n", ev.Label, ev.Value, float64(ev.WallNs)/1e6)
	case KindRunEnd:
		s.newline()
		fmt.Fprintf(s.w, "run done: %d rounds in %.2fs\n", ev.Steps, float64(ev.WallNs)/1e9)
	}
}

// newline terminates a pending \r status line. Callers hold s.mu.
func (s *ProgressSink) newline() {
	if s.dirty {
		fmt.Fprintln(s.w)
		s.dirty = false
	}
}

// Close terminates any pending status line.
func (s *ProgressSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.newline()
	return nil
}

// Multi fans every event out to all sinks; Close closes each and returns
// the first error.
func Multi(sinks ...Sink) Sink { return multiSink(sinks) }

type multiSink []Sink

func (m multiSink) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}

func (m multiSink) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// MemorySink buffers events in order of arrival — the test double, and
// the buffer behind post-run analysis (analyze.FromEvents). Limit, when
// positive, caps the buffer: events past the cap are counted in
// Dropped() and discarded, keeping long runs bounded.
type MemorySink struct {
	mu      sync.Mutex
	events  []Event
	dropped int

	// Limit caps the buffer when positive (0 means unbounded). Set before
	// the first Emit.
	Limit int
}

// NewMemory returns an empty, unbounded in-memory sink.
func NewMemory() *MemorySink { return &MemorySink{} }

func (s *MemorySink) Emit(ev Event) {
	s.mu.Lock()
	if s.Limit > 0 && len(s.events) >= s.Limit {
		s.dropped++
	} else {
		s.events = append(s.events, ev)
	}
	s.mu.Unlock()
}

// Close is a no-op.
func (s *MemorySink) Close() error { return nil }

// Events returns a copy of everything emitted so far.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Dropped returns how many events were discarded because the buffer was
// at Limit.
func (s *MemorySink) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Count returns how many events of the given kind were emitted ("" counts
// all).
func (s *MemorySink) Count(kind string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if kind == "" {
		return len(s.events)
	}
	n := 0
	for _, ev := range s.events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}
