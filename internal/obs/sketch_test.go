package obs

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

// exactQuantile is the reference the sketch is compared against: the value
// of rank ceil(q*n) in the sorted sample.
func exactQuantile(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// The sketch's contract: every quantile is within one bin width of the
// exact sample quantile. Exercised over 1000 random fleets with varied
// sizes and SoC distributions.
func TestSketchQuantileWithinOneBin(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 1000; trial++ {
		n := 1 + r.Intn(400)
		socs := make([]float64, n)
		// Mix distribution shapes: uniform, clustered-low, clustered-high.
		shape := trial % 3
		for i := range socs {
			u := r.Float64()
			switch shape {
			case 1:
				u = u * u // mass near 0, like a starving fleet
			case 2:
				u = 1 - u*u // mass near 1, like a saturated fleet
			}
			socs[i] = u
		}
		sk := NewSoCSketch()
		for _, s := range socs {
			sk.Observe(s)
		}
		sorted := append([]float64(nil), socs...)
		sort.Float64s(sorted)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			got := sk.Quantile(q)
			want := exactQuantile(sorted, q)
			if math.Abs(got-want) > sk.BinWidth() {
				t.Fatalf("trial %d (n=%d shape=%d): q%.2f = %.5f, exact %.5f, off by more than one bin (%.5f)",
					trial, n, shape, q, got, want, sk.BinWidth())
			}
		}
	}
}

func TestSketchEmptyIsNaN(t *testing.T) {
	sk := NewSoCSketch()
	if !math.IsNaN(sk.Quantile(0.5)) {
		t.Fatalf("empty sketch quantile = %v, want NaN", sk.Quantile(0.5))
	}
}

func TestSketchClampsOutOfRange(t *testing.T) {
	sk := NewSoCSketch()
	sk.Observe(-0.5)
	sk.Observe(1.5)
	if n := sk.Count(); n != 2 {
		t.Fatalf("count = %d, want 2", n)
	}
	if q := sk.Quantile(0.01); q > sk.BinWidth() {
		t.Fatalf("low outlier landed at %v, want first bin", q)
	}
	if q := sk.Quantile(0.99); q < 1-sk.BinWidth() {
		t.Fatalf("high outlier landed at %v, want last bin", q)
	}
}

func TestSketchResetClears(t *testing.T) {
	sk := NewSoCSketch()
	for i := 0; i < 100; i++ {
		sk.Observe(0.25)
	}
	sk.Reset()
	if sk.Count() != 0 {
		t.Fatalf("count after reset = %d", sk.Count())
	}
	sk.Observe(0.75)
	if q := sk.Quantile(0.5); math.Abs(q-0.75) > sk.BinWidth() {
		t.Fatalf("post-reset quantile %v remembers pre-reset data", q)
	}
}

func TestSketchMerge(t *testing.T) {
	a, b, both := NewSoCSketch(), NewSoCSketch(), NewSoCSketch()
	r := rng.New(11)
	for i := 0; i < 500; i++ {
		v := r.Float64()
		both.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Fatalf("merged q%.1f = %v, single-sketch %v", q, a.Quantile(q), both.Quantile(q))
		}
	}
	other, err := NewSketch(0, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(other); err == nil {
		t.Fatal("merging sketches of different shape should fail")
	}
}
