// Package compress implements the model-compression techniques the paper's
// related work builds on (Section 6: sparsification per Alistarh et al.
// and Sparse-Push, quantized gossip per Hashemi et al.): top-k
// sparsification with error feedback, and linear 8-bit quantization.
//
// SkipTrain reduces energy by skipping training; these operators reduce the
// *communication* side instead, and compose with any schedule. They are
// exercised by the communication-ablation benchmarks.
package compress

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// Sparse is a sparsified vector: values at the given indices, zeros
// elsewhere. Indices are strictly increasing.
type Sparse struct {
	Dim     int
	Indices []int
	Values  []float64
}

// TopK keeps the k entries of v with the largest magnitude (ties broken by
// lower index) and returns them as a Sparse vector. k is clamped to
// [0, len(v)].
func TopK(v tensor.Vector, k int) Sparse {
	if k < 0 {
		k = 0
	}
	if k > len(v) {
		k = len(v)
	}
	s := Sparse{Dim: len(v)}
	if k == 0 {
		return s
	}
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection: sort by magnitude descending, index ascending.
	sort.SliceStable(idx, func(a, b int) bool {
		return math.Abs(v[idx[a]]) > math.Abs(v[idx[b]])
	})
	chosen := idx[:k]
	sort.Ints(chosen)
	s.Indices = make([]int, k)
	s.Values = make([]float64, k)
	for i, j := range chosen {
		s.Indices[i] = j
		s.Values[i] = v[j]
	}
	return s
}

// Dense reconstructs the dense vector.
func (s Sparse) Dense() tensor.Vector {
	out := tensor.NewVector(s.Dim)
	for i, j := range s.Indices {
		out[j] = s.Values[i]
	}
	return out
}

// AddTo accumulates the sparse values into dst (dst += s).
func (s Sparse) AddTo(dst tensor.Vector) {
	if len(dst) != s.Dim {
		panic(fmt.Sprintf("compress: sparse dim %d vs dense %d", s.Dim, len(dst)))
	}
	for i, j := range s.Indices {
		dst[j] += s.Values[i]
	}
}

// Density returns the kept fraction of entries.
func (s Sparse) Density() float64 {
	if s.Dim == 0 {
		return 0
	}
	return float64(len(s.Indices)) / float64(s.Dim)
}

// ErrorFeedback implements the memory/error-feedback mechanism that makes
// biased compressors (like top-k) converge: the residual of each
// compression is added back before the next one.
type ErrorFeedback struct {
	residual tensor.Vector
	scratch  tensor.Vector
}

// NewErrorFeedback creates an accumulator for vectors of length dim.
func NewErrorFeedback(dim int) *ErrorFeedback {
	return &ErrorFeedback{residual: tensor.NewVector(dim), scratch: tensor.NewVector(dim)}
}

// Compress adds the stored residual to v, applies top-k, and retains the
// part that was not transmitted as the new residual. v is not modified.
func (ef *ErrorFeedback) Compress(v tensor.Vector, k int) Sparse {
	tensor.AddTo(ef.scratch, v, ef.residual)
	s := TopK(ef.scratch, k)
	// residual = corrected - transmitted
	copy(ef.residual, ef.scratch)
	for i, j := range s.Indices {
		ef.residual[j] -= s.Values[i]
	}
	return s
}

// Residual exposes the current residual (view, not copy).
func (ef *ErrorFeedback) Residual() tensor.Vector { return ef.residual }

// Quantized is a linearly quantized vector: value[i] = Min + Step*code[i].
type Quantized struct {
	Min   float64
	Step  float64
	Codes []uint8
}

// Quantize8 maps v onto 256 evenly spaced levels spanning [min, max].
func Quantize8(v tensor.Vector) Quantized {
	if len(v) == 0 {
		return Quantized{}
	}
	lo, hi := v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	q := Quantized{Min: lo, Codes: make([]uint8, len(v))}
	if hi == lo {
		return q // all codes zero, Step zero
	}
	q.Step = (hi - lo) / 255
	for i, x := range v {
		code := math.Round((x - lo) / q.Step)
		if code < 0 {
			code = 0
		}
		if code > 255 {
			code = 255
		}
		q.Codes[i] = uint8(code)
	}
	return q
}

// Dense reconstructs the dequantized vector.
func (q Quantized) Dense() tensor.Vector {
	out := tensor.NewVector(len(q.Codes))
	for i, c := range q.Codes {
		out[i] = q.Min + q.Step*float64(c)
	}
	return out
}

// MaxError returns the worst-case reconstruction error (half a step).
func (q Quantized) MaxError() float64 { return q.Step / 2 }

// CompressionRatio returns the byte savings of 8-bit codes over float64
// payloads, ignoring the constant-size header.
func (q Quantized) CompressionRatio() float64 { return 8.0 }
