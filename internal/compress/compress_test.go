package compress

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestTopKBasic(t *testing.T) {
	v := tensor.Vector{0.1, -5, 3, 0, 2}
	s := TopK(v, 2)
	if len(s.Indices) != 2 {
		t.Fatalf("kept %d", len(s.Indices))
	}
	// Largest magnitudes: -5 (idx 1) and 3 (idx 2); indices sorted.
	if s.Indices[0] != 1 || s.Indices[1] != 2 || s.Values[0] != -5 || s.Values[1] != 3 {
		t.Fatalf("TopK = %+v", s)
	}
}

func TestTopKClamps(t *testing.T) {
	v := tensor.Vector{1, 2}
	if s := TopK(v, 10); len(s.Indices) != 2 {
		t.Fatal("k > len should clamp")
	}
	if s := TopK(v, -1); len(s.Indices) != 0 {
		t.Fatal("k < 0 should clamp to 0")
	}
	if s := TopK(nil, 3); s.Dim != 0 || len(s.Indices) != 0 {
		t.Fatal("empty vector")
	}
}

func TestTopKDenseRoundTrip(t *testing.T) {
	v := tensor.Vector{1, -2, 0.5, 4}
	d := TopK(v, 4).Dense()
	for i := range v {
		if d[i] != v[i] {
			t.Fatal("k = dim must reconstruct exactly")
		}
	}
}

func TestTopKProperty(t *testing.T) {
	// Property: the kept entries always have magnitude >= any dropped one.
	f := func(raw []float64, kRaw uint8) bool {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				raw[i] = 0
			}
		}
		v := tensor.Vector(raw)
		k := int(kRaw) % (len(v) + 1)
		s := TopK(v, k)
		if len(s.Indices) != k {
			return false
		}
		kept := map[int]bool{}
		minKept := math.Inf(1)
		for _, j := range s.Indices {
			kept[j] = true
			if m := math.Abs(v[j]); m < minKept {
				minKept = m
			}
		}
		for i := range v {
			if !kept[i] && k > 0 && math.Abs(v[i]) > minKept+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseAddTo(t *testing.T) {
	s := TopK(tensor.Vector{0, 5, 0, -3}, 2)
	dst := tensor.Vector{1, 1, 1, 1}
	s.AddTo(dst)
	want := tensor.Vector{1, 6, 1, -2}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("AddTo = %v", dst)
		}
	}
}

func TestSparseAddToPanics(t *testing.T) {
	s := TopK(tensor.Vector{1, 2}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("dim mismatch should panic")
		}
	}()
	s.AddTo(tensor.NewVector(5))
}

func TestDensity(t *testing.T) {
	s := TopK(tensor.NewVector(100), 10)
	if s.Density() != 0.1 {
		t.Fatalf("density = %v", s.Density())
	}
	var empty Sparse
	if empty.Density() != 0 {
		t.Fatal("empty density should be 0")
	}
}

func TestErrorFeedbackConservation(t *testing.T) {
	// Invariant: transmitted + residual == input + previous residual.
	r := rng.New(1)
	ef := NewErrorFeedback(16)
	for step := 0; step < 10; step++ {
		v := tensor.NewVector(16)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		prev := ef.Residual().Clone()
		s := ef.Compress(v, 4)
		sum := s.Dense()
		tensor.AXPY(sum, 1, ef.Residual())
		want := tensor.NewVector(16)
		tensor.AddTo(want, v, prev)
		for i := range want {
			if math.Abs(sum[i]-want[i]) > 1e-12 {
				t.Fatalf("step %d: conservation violated at %d", step, i)
			}
		}
	}
}

func TestErrorFeedbackEventuallyTransmitsEverything(t *testing.T) {
	// A constant gradient direction suppressed by top-k must eventually be
	// sent: with error feedback the residual grows until it wins the top-k.
	ef := NewErrorFeedback(4)
	v := tensor.Vector{10, 0.1, 0.1, 0.1}
	sentSmall := false
	for step := 0; step < 200 && !sentSmall; step++ {
		s := ef.Compress(v, 1)
		for _, j := range s.Indices {
			if j != 0 {
				sentSmall = true
			}
		}
	}
	if !sentSmall {
		t.Fatal("error feedback never flushed the small coordinates")
	}
}

func TestQuantize8RoundTrip(t *testing.T) {
	r := rng.New(2)
	v := tensor.NewVector(256)
	for i := range v {
		v[i] = r.NormFloat64() * 3
	}
	q := Quantize8(v)
	d := q.Dense()
	for i := range v {
		if math.Abs(d[i]-v[i]) > q.MaxError()+1e-12 {
			t.Fatalf("entry %d error %v exceeds bound %v", i, math.Abs(d[i]-v[i]), q.MaxError())
		}
	}
}

func TestQuantize8Extremes(t *testing.T) {
	v := tensor.Vector{-1, 0, 1}
	q := Quantize8(v)
	d := q.Dense()
	if d[0] != -1 || d[2] != 1 {
		t.Fatalf("extremes must be exact: %v", d)
	}
}

func TestQuantize8Constant(t *testing.T) {
	v := tensor.Vector{2.5, 2.5, 2.5}
	q := Quantize8(v)
	d := q.Dense()
	for _, x := range d {
		if x != 2.5 {
			t.Fatalf("constant vector round trip: %v", d)
		}
	}
}

func TestQuantize8Empty(t *testing.T) {
	q := Quantize8(nil)
	if len(q.Dense()) != 0 {
		t.Fatal("empty quantization")
	}
}

func TestQuantizeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) > 128 {
			raw = raw[:128]
		}
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				raw[i] = 0
			}
		}
		v := tensor.Vector(raw)
		q := Quantize8(v)
		d := q.Dense()
		for i := range v {
			if math.Abs(d[i]-v[i]) > q.Step/2+1e-9*(1+math.Abs(v[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedMixingPreservesLearning(t *testing.T) {
	// End-to-end sanity: averaging two model vectors through top-k(50%)
	// with error feedback still moves both toward their midpoint.
	a := tensor.Vector{4, 0, 2, -2}
	b := tensor.Vector{0, 4, -2, 2}
	efA := NewErrorFeedback(4)
	mid := tensor.NewVector(4)
	tensor.AddTo(mid, a, b)
	tensor.ScaleTo(mid, 0.5, mid)
	cur := a.Clone()
	for i := 0; i < 50; i++ {
		// a sends a compressed delta toward the midpoint.
		delta := tensor.NewVector(4)
		tensor.SubTo(delta, mid, cur)
		s := efA.Compress(delta, 2)
		s.AddTo(cur)
	}
	if tensor.Dist2(cur, mid) > 0.05 {
		t.Fatalf("compressed mixing did not converge to midpoint: %v vs %v", cur, mid)
	}
}
