package metrics

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 || std != 2 {
		t.Fatalf("MeanStd = %v, %v", mean, std)
	}
	mean, std = MeanStd(nil)
	if mean != 0 || std != 0 {
		t.Fatal("empty MeanStd should be zero")
	}
}

func TestConsensusDistanceZeroAtConsensus(t *testing.T) {
	models := []tensor.Vector{{1, 2}, {1, 2}, {1, 2}}
	if d := ConsensusDistance(models); d != 0 {
		t.Fatalf("consensus distance = %v at consensus", d)
	}
}

func TestConsensusDistanceSymmetricPair(t *testing.T) {
	models := []tensor.Vector{{0, 0}, {2, 0}}
	// Mean is (1,0); each model is distance 1 away.
	if d := ConsensusDistance(models); math.Abs(d-1) > 1e-12 {
		t.Fatalf("consensus distance = %v, want 1", d)
	}
}

func TestConsensusDistanceShrinksUnderAveraging(t *testing.T) {
	a := tensor.Vector{0, 0}
	b := tensor.Vector{4, 0}
	before := ConsensusDistance([]tensor.Vector{a, b})
	// One mixing step with weights 0.75/0.25 (row-stochastic).
	a2 := tensor.Vector{0.75*a[0] + 0.25*b[0], 0}
	b2 := tensor.Vector{0.25*a[0] + 0.75*b[0], 0}
	after := ConsensusDistance([]tensor.Vector{a2, b2})
	if after >= before {
		t.Fatalf("mixing did not shrink consensus distance: %v -> %v", before, after)
	}
}

func TestConsensusDistanceEmpty(t *testing.T) {
	if ConsensusDistance(nil) != 0 {
		t.Fatal("empty consensus distance should be 0")
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float64{1, 3, 2}) != 1 {
		t.Fatal("Argmax wrong")
	}
	if Argmax([]float64{3, 3}) != 0 {
		t.Fatal("Argmax tie should pick lowest")
	}
	if Argmax(nil) != -1 {
		t.Fatal("Argmax of empty should be -1")
	}
}

func TestLast(t *testing.T) {
	if Last([]float64{1, 2, 3}) != 3 || Last(nil) != 0 {
		t.Fatal("Last wrong")
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{0, 10, 0, 10, 0}
	sm := MovingAverage(xs, 3)
	if len(sm) != 5 {
		t.Fatal("length changed")
	}
	// Middle points average their neighbors.
	if math.Abs(sm[2]-20.0/3) > 1e-12 {
		t.Fatalf("sm[2] = %v", sm[2])
	}
	// Window 1 is identity.
	id := MovingAverage(xs, 1)
	for i := range xs {
		if id[i] != xs[i] {
			t.Fatal("window-1 moving average must be identity")
		}
	}
	// Degenerate window clamps to 1.
	id0 := MovingAverage(xs, 0)
	for i := range xs {
		if id0[i] != xs[i] {
			t.Fatal("window-0 must clamp to identity")
		}
	}
}

func TestRoundsToTarget(t *testing.T) {
	xs := []float64{10, 20, 30}
	ys := []float64{0.4, 0.6, 0.8}
	if got := RoundsToTarget(xs, ys, 0.6); got != 20 {
		t.Fatalf("RoundsToTarget = %v", got)
	}
	if got := RoundsToTarget(xs, ys, 0.9); got != -1 {
		t.Fatalf("unreachable target = %v", got)
	}
	if got := RoundsToTarget(xs, ys, 0.1); got != 10 {
		t.Fatalf("already-met target = %v", got)
	}
	if got := RoundsToTarget(nil, nil, 0.5); got != -1 {
		t.Fatal("empty series should be -1")
	}
}
