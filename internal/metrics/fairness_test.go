package metrics

import (
	"math"
	"testing"
)

func TestGroupMeans(t *testing.T) {
	means, err := GroupMeans([]float64{1, 2, 3, 4}, []string{"a", "a", "b", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if means["a"] != 1.5 || means["b"] != 3.5 {
		t.Fatalf("means = %v", means)
	}
	if _, err := GroupMeans([]float64{1}, []string{"a", "b"}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	r, err := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", r)
	}
	r, _ = Pearson([]float64{1, 2, 3}, []float64{6, 4, 2})
	if math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", r)
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{2, 4, 6})
	if err != nil || r != 0 {
		t.Fatalf("constant series should give 0, got %v (%v)", r, err)
	}
}

func TestPearsonValidation(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point should error")
	}
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestPearsonIndependent(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ys := []float64{5, -5, 5, -5, 5, -5, 5, -5}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.35 {
		t.Fatalf("alternating series should be weakly correlated, got %v", r)
	}
}

func TestGiniEquality(t *testing.T) {
	g, err := Gini([]float64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g) > 1e-12 {
		t.Fatalf("equal distribution gini = %v", g)
	}
}

func TestGiniConcentration(t *testing.T) {
	g, err := Gini([]float64{0, 0, 0, 100})
	if err != nil {
		t.Fatal(err)
	}
	// For n=4 with all mass on one member: G = (n-1)/n = 0.75.
	if math.Abs(g-0.75) > 1e-12 {
		t.Fatalf("concentrated gini = %v, want 0.75", g)
	}
}

func TestGiniOrderInvariant(t *testing.T) {
	a, _ := Gini([]float64{1, 2, 3, 4})
	b, _ := Gini([]float64{4, 2, 1, 3})
	if a != b {
		t.Fatal("gini must not depend on input order")
	}
}

func TestGiniValidation(t *testing.T) {
	if _, err := Gini(nil); err == nil {
		t.Fatal("empty gini should error")
	}
	if _, err := Gini([]float64{1, -1}); err == nil {
		t.Fatal("negative values should error")
	}
	if g, err := Gini([]float64{0, 0}); err != nil || g != 0 {
		t.Fatalf("all-zero gini should be 0, got %v (%v)", g, err)
	}
}

func TestFairnessReport(t *testing.T) {
	accs := []float64{0.50, 0.60, 0.70, 0.80}
	trained := []int{10, 20, 30, 40}
	budgets := []float64{10, 20, 30, 40}
	groups := []string{"low", "low", "high", "high"}
	rep, err := NewFairnessReport(accs, trained, budgets, groups)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.AccByGroup["low"]-0.55) > 1e-12 || math.Abs(rep.AccByGroup["high"]-0.75) > 1e-12 {
		t.Fatalf("group accuracies: %v", rep.AccByGroup)
	}
	if math.Abs(rep.BudgetAccCorr-1) > 1e-12 {
		t.Fatalf("budget-accuracy correlation = %v, want 1", rep.BudgetAccCorr)
	}
	if math.Abs(rep.Spread-0.2) > 1e-12 {
		t.Fatalf("spread = %v", rep.Spread)
	}
	if rep.ParticipationGini <= 0 {
		t.Fatal("unequal participation should have positive gini")
	}
}

func TestFairnessReportValidation(t *testing.T) {
	if _, err := NewFairnessReport([]float64{1}, []int{1, 2}, []float64{1}, []string{"a"}); err == nil {
		t.Fatal("mismatched inputs should error")
	}
}

// The degenerate inputs below are exactly what TableHarvest feeds the
// fairness metrics in its constant-trace regimes: a dark fleet harvests
// nothing (all-zero series) and a trickle charger feeds every node the
// same amount (constant series). Both must yield 0 — never NaN — so the
// fairness columns render as numbers.

func TestPearsonAllZeroSeries(t *testing.T) {
	r, err := Pearson([]float64{0, 0, 0, 0}, []float64{0.4, 0.5, 0.6, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 || math.IsNaN(r) {
		t.Fatalf("all-zero harvest series correlation = %v, want 0", r)
	}
	// Both sides degenerate at once.
	r, err = Pearson([]float64{0, 0, 0}, []float64{0, 0, 0})
	if err != nil || r != 0 {
		t.Fatalf("doubly constant correlation = %v (%v), want 0", r, err)
	}
}

func TestGiniDegenerateSeries(t *testing.T) {
	// All-zero trained counts (a fleet that never trained): equal shares.
	g, err := Gini([]float64{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if g != 0 || math.IsNaN(g) {
		t.Fatalf("all-zero Gini = %v, want 0", g)
	}
	// Identical positive counts: perfectly equal.
	g, err = Gini([]float64{7, 7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g) > 1e-15 {
		t.Fatalf("constant-series Gini = %v, want 0", g)
	}
	// A single node is trivially equal.
	g, err = Gini([]float64{3})
	if err != nil || g != 0 {
		t.Fatalf("singleton Gini = %v (%v), want 0", g, err)
	}
}
