package metrics

import (
	"fmt"
	"math"
	"sort"
)

// This file quantifies the fairness concern of the paper's Section 5.1:
// energy-aware skipping makes low-battery devices train less, potentially
// biasing the consensus model toward high-energy devices. The paper leaves
// measuring this to future work; these metrics make it measurable.

// GroupMeans returns the mean value per group label (e.g. accuracy per
// device model). The result maps each distinct label to the mean of its
// members' values.
func GroupMeans(values []float64, groups []string) (map[string]float64, error) {
	if len(values) != len(groups) {
		return nil, fmt.Errorf("metrics: %d values for %d groups", len(values), len(groups))
	}
	sums := map[string]float64{}
	counts := map[string]int{}
	for i, v := range values {
		sums[groups[i]] += v
		counts[groups[i]]++
	}
	out := make(map[string]float64, len(sums))
	for g, s := range sums {
		out[g] = s / float64(counts[g])
	}
	return out, nil
}

// Pearson returns the Pearson correlation coefficient of xs and ys, or 0
// when either series is constant.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("metrics: pearson over %d vs %d points", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("metrics: pearson needs >= 2 points")
	}
	mx, _ := MeanStd(xs)
	my, _ := MeanStd(ys)
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0, nil
	}
	return cov / math.Sqrt(vx*vy), nil
}

// Gini returns the Gini coefficient of the given non-negative quantities
// (0 = perfectly equal, 1 = maximally concentrated). Used on per-node
// training-round counts to quantify participation inequality.
func Gini(values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, fmt.Errorf("metrics: gini of empty series")
	}
	sorted := append([]float64(nil), values...)
	for _, v := range sorted {
		if v < 0 {
			return 0, fmt.Errorf("metrics: gini needs non-negative values, got %v", v)
		}
	}
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var cum, total float64
	for i, v := range sorted {
		cum += float64(i+1) * v
		total += v
	}
	if total == 0 {
		return 0, nil
	}
	return (2*cum)/(n*total) - (n+1)/n, nil
}

// FairnessReport summarizes participation bias for one constrained run.
type FairnessReport struct {
	// AccByGroup is mean accuracy per device group.
	AccByGroup map[string]float64
	// ParticipationGini measures inequality of training-round counts.
	ParticipationGini float64
	// BudgetAccCorr is the correlation between a node's energy budget and
	// its accuracy: positive values mean the model favors high-energy
	// devices — the bias of Section 5.1.
	BudgetAccCorr float64
	// Spread is max - min of group mean accuracies.
	Spread float64
}

// NewFairnessReport computes the report from per-node accuracy, training
// counts, budgets, and device group labels.
func NewFairnessReport(accs []float64, trained []int, budgets []float64, groups []string) (*FairnessReport, error) {
	if len(accs) != len(trained) || len(accs) != len(budgets) || len(accs) != len(groups) {
		return nil, fmt.Errorf("metrics: fairness inputs disagree on node count")
	}
	byGroup, err := GroupMeans(accs, groups)
	if err != nil {
		return nil, err
	}
	tr := make([]float64, len(trained))
	for i, t := range trained {
		tr[i] = float64(t)
	}
	gini, err := Gini(tr)
	if err != nil {
		return nil, err
	}
	corr, err := Pearson(budgets, accs)
	if err != nil {
		return nil, err
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range byGroup {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return &FairnessReport{
		AccByGroup:        byGroup,
		ParticipationGini: gini,
		BudgetAccCorr:     corr,
		Spread:            hi - lo,
	}, nil
}
