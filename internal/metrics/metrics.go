// Package metrics computes the evaluation quantities the paper reports:
// Top-1 accuracy statistics across nodes and model-consensus diagnostics.
package metrics

import (
	"math"

	"repro/internal/tensor"
)

// MeanStd returns the mean and population standard deviation of xs.
// The std is the curve shadow of the paper's Figure 4.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}

// ConsensusDistance returns the average L2 distance of the given model
// vectors from their mean — the "variance between nodes" whose reduction
// through synchronization rounds is SkipTrain's mechanism (Section 3.1).
func ConsensusDistance(models []tensor.Vector) float64 {
	if len(models) == 0 {
		return 0
	}
	mean := tensor.NewVector(len(models[0]))
	tensor.MeanVectorTo(mean, models)
	total := 0.0
	for _, m := range models {
		total += tensor.Dist2(m, mean)
	}
	return total / float64(len(models))
}

// Argmax returns the index of the maximum value (lowest index on ties).
func Argmax(xs []float64) int {
	best, bi := math.Inf(-1), -1
	for i, x := range xs {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

// Last returns the final element of xs, or 0 when empty.
func Last(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}

// MovingAverage smooths xs with a centered window of the given width
// (clipped at the edges), used to read convergence trends off noisy
// accuracy curves.
func MovingAverage(xs []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	out := make([]float64, len(xs))
	half := window / 2
	for i := range xs {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		s := 0.0
		for j := lo; j <= hi; j++ {
			s += xs[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out
}

// RoundsToTarget returns the first x-value at which ys reaches target
// (series sorted by xs ascending), or -1 if it never does. Used for the
// time-to-accuracy readings behind the paper's "boosted convergence speed"
// claim: e.g. the round or Wh at which a curve first crosses 60%.
func RoundsToTarget(xs, ys []float64, target float64) float64 {
	for i := range ys {
		if ys[i] >= target {
			return xs[i]
		}
	}
	return -1
}
