// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used by every stochastic component of the simulator.
//
// Determinism across goroutine interleavings is a hard requirement for the
// reproduction: every node derives an independent stream from the experiment
// seed and its node ID, so results are bit-identical no matter how the
// scheduler interleaves node goroutines. The generator is xoshiro256**
// seeded through splitmix64, following the reference constructions of
// Blackman and Vigna.
package rng

import "math"

// RNG is a xoshiro256** generator. The zero value is not usable; construct
// with New or Derive.
type RNG struct {
	s0, s1, s2, s3 uint64
	// cached second normal variate from the Box-Muller transform.
	haveGauss bool
	gauss     float64
}

// splitmix64 advances a splitmix64 state and returns the next output.
// It is used for seeding so that closely related seeds (0, 1, 2, ...)
// yield uncorrelated xoshiro states.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
	return r
}

// Derive returns a new independent generator whose stream is a pure function
// of the given seed and the parts. It is the mechanism behind per-node,
// per-purpose streams: Derive(seed, nodeID, streamTag).
func Derive(seed uint64, parts ...uint64) *RNG {
	sm := seed
	acc := splitmix64(&sm)
	for _, p := range parts {
		sm ^= p * 0x9e3779b97f4a7c15
		acc ^= splitmix64(&sm)
	}
	return New(acc)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation with rejection to
	// remove modulo bias.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	tLo, tHi := t&mask, t>>32
	t = aLo*bHi + tLo
	lo |= t << 32
	hi = aHi*bHi + tHi + t>>32
	return hi, lo
}

// NormFloat64 returns a standard normal variate using the Box-Muller
// transform. Variates are produced in pairs; the second is cached.
func (r *RNG) NormFloat64() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 0 {
			break
		}
	}
	v = r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.gauss = mag * math.Sin(2*math.Pi*v)
	r.haveGauss = true
	return mag * math.Cos(2*math.Pi*v)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Clone returns an independent copy of the generator at its current state:
// the clone produces the exact variate stream the original would, without
// advancing it. It is the fork primitive behind oracle forecasting — a
// stochastic process can be replayed into the future while the live stream
// stays untouched.
func (r *RNG) Clone() *RNG {
	cp := *r
	return &cp
}
