package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical outputs", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	a := Derive(7, 0)
	b := Derive(7, 1)
	c := Derive(7, 0) // same parts -> same stream
	if a.Uint64() == b.Uint64() {
		t.Fatal("derived streams for different nodes collide on first draw")
	}
	a2 := Derive(7, 0)
	for i := 0; i < 100; i++ {
		if a2.Uint64() != c.Uint64() {
			t.Fatal("Derive is not a pure function of its arguments")
		}
	}
}

func TestDeriveMultipleParts(t *testing.T) {
	a := Derive(1, 2, 3)
	b := Derive(1, 3, 2)
	if a.Uint64() == b.Uint64() {
		t.Fatal("part order should matter")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(8)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(10)
	for i := 0; i < 1000; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestMul64Property(t *testing.T) {
	// Against big-integer-free reference: check (a*b) mod 2^64 == lo.
	f := func(a, b uint64) bool {
		_, lo := mul64(a, b)
		return lo == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleProperty(t *testing.T) {
	// Shuffling preserves the multiset of elements.
	f := func(seed uint64, raw []byte) bool {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		vals := make([]int, len(raw))
		counts := map[int]int{}
		for i, b := range raw {
			vals[i] = int(b)
			counts[int(b)]++
		}
		New(seed).Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		for _, v := range vals {
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
