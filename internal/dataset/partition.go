package dataset

import (
	"fmt"

	"repro/internal/rng"
)

// Partition assigns every training sample to exactly one of n nodes.
// Partition[i] is node i's local dataset D_i.
type Partition []*Dataset

// ShardPartition implements the paper's CIFAR-10 distribution (Section 4.2,
// following McMahan et al.): samples are sorted by label, cut into
// shardsPerNode*n contiguous shards, and each node receives shardsPerNode
// shards chosen at random. With shardsPerNode=2 most nodes see only 2 of
// the 10 labels — the "highly heterogeneous" regime of the paper.
func ShardPartition(d *Dataset, n, shardsPerNode int, seed uint64) (Partition, error) {
	if n < 1 || shardsPerNode < 1 {
		return nil, fmt.Errorf("dataset: bad shard partition n=%d shards=%d", n, shardsPerNode)
	}
	totalShards := n * shardsPerNode
	if d.Len() < totalShards {
		return nil, fmt.Errorf("dataset: %d samples cannot fill %d shards", d.Len(), totalShards)
	}
	byLabel := sortByLabel(d)
	// Cut into contiguous shards of (nearly) equal size.
	shardSize := d.Len() / totalShards
	shards := make([][]int, totalShards)
	for s := 0; s < totalShards; s++ {
		lo := s * shardSize
		hi := lo + shardSize
		if s == totalShards-1 {
			hi = d.Len() // last shard absorbs the remainder
		}
		shards[s] = byLabel[lo:hi]
	}
	// Deal shards out at random, shardsPerNode each.
	r := rng.Derive(seed, 0x54a2d)
	order := r.Perm(totalShards)
	p := make(Partition, n)
	for i := 0; i < n; i++ {
		var idx []int
		for k := 0; k < shardsPerNode; k++ {
			idx = append(idx, shards[order[i*shardsPerNode+k]]...)
		}
		p[i] = d.Subset(idx)
	}
	return p, nil
}

// IIDPartition deals samples round-robin after a shuffle, giving every node
// an (approximately) IID slice of the global distribution.
func IIDPartition(d *Dataset, n int, seed uint64) (Partition, error) {
	if n < 1 {
		return nil, fmt.Errorf("dataset: bad IID partition n=%d", n)
	}
	if d.Len() < n {
		return nil, fmt.Errorf("dataset: %d samples for %d nodes", d.Len(), n)
	}
	r := rng.Derive(seed, 0x11d)
	order := r.Perm(d.Len())
	p := make(Partition, n)
	for i := 0; i < n; i++ {
		var idx []int
		for j := i; j < len(order); j += n {
			idx = append(idx, order[j])
		}
		p[i] = d.Subset(idx)
	}
	return p, nil
}

// DirichletPartition assigns samples with per-class node proportions drawn
// from a symmetric Dirichlet(alpha). Small alpha concentrates each class on
// few nodes. This is the standard alternative non-IID scheme and is used in
// ablation benches.
func DirichletPartition(d *Dataset, n int, alpha float64, seed uint64) (Partition, error) {
	if n < 1 || alpha <= 0 {
		return nil, fmt.Errorf("dataset: bad dirichlet partition n=%d alpha=%v", n, alpha)
	}
	r := rng.Derive(seed, 0xd121)
	// Group sample indices per class.
	perClass := make([][]int, d.NumClasses)
	for i, s := range d.Samples {
		perClass[s.Y] = append(perClass[s.Y], i)
	}
	idxPerNode := make([][]int, n)
	for _, members := range perClass {
		if len(members) == 0 {
			continue
		}
		r.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
		// Dirichlet proportions via the power-of-uniform approximation used
		// elsewhere in the package (adequate for partition skew control).
		w := make([]float64, n)
		sum := 0.0
		for i := range w {
			u := r.Float64()
			if u == 0 {
				u = 1e-12
			}
			w[i] = pow(u, 1/alpha)
			sum += w[i]
		}
		pos := 0
		for i := 0; i < n; i++ {
			take := int(float64(len(members)) * w[i] / sum)
			if i == n-1 {
				take = len(members) - pos
			}
			if pos+take > len(members) {
				take = len(members) - pos
			}
			idxPerNode[i] = append(idxPerNode[i], members[pos:pos+take]...)
			pos += take
		}
	}
	p := make(Partition, n)
	for i := range p {
		p[i] = d.Subset(idxPerNode[i])
	}
	return p, nil
}

// WriterPartition maps the top-n writers (by sample count) to nodes,
// reproducing the paper's FEMNIST setup: "we pick the top-256 clients with
// the highest number of samples, and map each to a node".
func WriterPartition(writers []WriterData, n int) (Partition, error) {
	if len(writers) < n {
		return nil, fmt.Errorf("dataset: only %d writers for %d nodes", len(writers), n)
	}
	p := make(Partition, n)
	for i := 0; i < n; i++ {
		p[i] = writers[i].Samples
	}
	return p, nil
}

// MinLen returns the smallest local dataset size across nodes.
func (p Partition) MinLen() int {
	if len(p) == 0 {
		return 0
	}
	m := p[0].Len()
	for _, d := range p[1:] {
		if d.Len() < m {
			m = d.Len()
		}
	}
	return m
}

// TotalLen returns the sum of local dataset sizes.
func (p Partition) TotalLen() int {
	t := 0
	for _, d := range p {
		t += d.Len()
	}
	return t
}

// DistinctLabels returns, for each node, how many distinct labels appear in
// its local data — the quantity Fig. 7 of the paper visualizes.
func (p Partition) DistinctLabels() []int {
	out := make([]int, len(p))
	for i, d := range p {
		seen := map[int]bool{}
		for _, s := range d.Samples {
			seen[s.Y] = true
		}
		out[i] = len(seen)
	}
	return out
}
