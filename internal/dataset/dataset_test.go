package dataset

import (
	"testing"

	"repro/internal/rng"
)

func mustGenerate(t *testing.T, cfg SyntheticConfig) (*Dataset, *Dataset) {
	t.Helper()
	train, test, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func TestGenerateSizesAndLabels(t *testing.T) {
	cfg := SyntheticConfig{Classes: 10, Dim: 8, Train: 1000, Test: 200, Noise: 1, Seed: 1}
	train, test := mustGenerate(t, cfg)
	if train.Len() != 1000 || test.Len() != 200 {
		t.Fatalf("sizes: %d/%d", train.Len(), test.Len())
	}
	for _, s := range train.Samples {
		if s.Y < 0 || s.Y >= 10 {
			t.Fatalf("label out of range: %d", s.Y)
		}
		if len(s.X) != 8 {
			t.Fatalf("dim = %d", len(s.X))
		}
	}
}

func TestGenerateBalanced(t *testing.T) {
	cfg := SyntheticConfig{Classes: 4, Dim: 4, Train: 400, Test: 100, Noise: 1, Seed: 2}
	train, test := mustGenerate(t, cfg)
	for _, h := range [][]int{train.ClassHistogram(), test.ClassHistogram()} {
		for c, cnt := range h {
			if cnt != h[0] {
				t.Fatalf("class %d count %d != %d (unbalanced)", c, cnt, h[0])
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := CIFARLike(7)
	cfg.Train, cfg.Test = 100, 40
	a1, b1 := mustGenerate(t, cfg)
	a2, b2 := mustGenerate(t, cfg)
	for i := range a1.Samples {
		if a1.Samples[i].Y != a2.Samples[i].Y || a1.Samples[i].X[0] != a2.Samples[i].X[0] {
			t.Fatal("train generation not deterministic")
		}
	}
	for i := range b1.Samples {
		if b1.Samples[i].Y != b2.Samples[i].Y {
			t.Fatal("test generation not deterministic")
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cfg := CIFARLike(1)
	cfg.Train, cfg.Test = 50, 20
	a, _ := mustGenerate(t, cfg)
	cfg.Seed = 2
	b, _ := mustGenerate(t, cfg)
	same := true
	for i := range a.Samples {
		if a.Samples[i].X[0] != b.Samples[i].X[0] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []SyntheticConfig{
		{Classes: 1, Dim: 4, Train: 10, Test: 10, Noise: 1},
		{Classes: 3, Dim: 0, Train: 10, Test: 10, Noise: 1},
		{Classes: 3, Dim: 4, Train: 0, Test: 10, Noise: 1},
		{Classes: 3, Dim: 4, Train: 10, Test: 10, Noise: -1},
	}
	for i, cfg := range bad {
		if _, _, err := Generate(cfg); err == nil {
			t.Fatalf("case %d: want error", i)
		}
	}
}

func TestSplit(t *testing.T) {
	cfg := SyntheticConfig{Classes: 2, Dim: 2, Train: 10, Test: 10, Noise: 1, Seed: 3}
	_, test := mustGenerate(t, cfg)
	val, tst := test.Split(5)
	if val.Len() != 5 || tst.Len() != 5 {
		t.Fatalf("split sizes %d/%d", val.Len(), tst.Len())
	}
	// Disjointness: paper requires validation and test sets disjoint.
	seen := map[*float64]bool{}
	for _, s := range val.Samples {
		seen[&s.X[0]] = true
	}
	for _, s := range tst.Samples {
		if seen[&s.X[0]] {
			t.Fatal("validation and test overlap")
		}
	}
}

func TestSplitPanics(t *testing.T) {
	d := &Dataset{NumClasses: 2, Dim: 1, Samples: make([]Sample, 3)}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range split should panic")
		}
	}()
	d.Split(4)
}

func TestBatcherCoversEpoch(t *testing.T) {
	cfg := SyntheticConfig{Classes: 2, Dim: 2, Train: 20, Test: 4, Noise: 1, Seed: 4}
	train, _ := mustGenerate(t, cfg)
	b := NewBatcher(train, rng.New(1))
	seen := map[*float64]int{}
	for i := 0; i < 4; i++ {
		xs, _ := b.Next(5)
		if len(xs) != 5 {
			t.Fatalf("batch size %d", len(xs))
		}
		for _, x := range xs {
			seen[&x[0]]++
		}
	}
	// One full epoch: every sample exactly once.
	if len(seen) != 20 {
		t.Fatalf("epoch covered %d distinct samples, want 20", len(seen))
	}
	for _, c := range seen {
		if c != 1 {
			t.Fatal("sample repeated within epoch")
		}
	}
}

func TestBatcherWrapsAround(t *testing.T) {
	cfg := SyntheticConfig{Classes: 2, Dim: 2, Train: 6, Test: 4, Noise: 1, Seed: 5}
	train, _ := mustGenerate(t, cfg)
	b := NewBatcher(train, rng.New(2))
	for i := 0; i < 10; i++ {
		xs, ys := b.Next(4)
		if len(xs) != 4 || len(ys) != 4 {
			t.Fatal("wrap-around batch wrong size")
		}
	}
}

func TestBatcherClampsOversizedBatch(t *testing.T) {
	cfg := SyntheticConfig{Classes: 2, Dim: 2, Train: 3, Test: 4, Noise: 1, Seed: 6}
	train, _ := mustGenerate(t, cfg)
	b := NewBatcher(train, rng.New(3))
	xs, _ := b.Next(10)
	if len(xs) != 3 {
		t.Fatalf("oversized batch returned %d, want clamp to 3", len(xs))
	}
}

func TestClassHistogramAndSubset(t *testing.T) {
	d := &Dataset{NumClasses: 3, Dim: 1, Samples: []Sample{
		{X: []float64{0}, Y: 0}, {X: []float64{1}, Y: 1},
		{X: []float64{2}, Y: 1}, {X: []float64{3}, Y: 2},
	}}
	h := d.ClassHistogram()
	if h[0] != 1 || h[1] != 2 || h[2] != 1 {
		t.Fatalf("histogram %v", h)
	}
	sub := d.Subset([]int{1, 2})
	if sub.Len() != 2 || sub.Samples[0].Y != 1 {
		t.Fatal("subset wrong")
	}
}

func TestGenerateWritersTopSorted(t *testing.T) {
	cfg := FEMNISTWriters(8)
	cfg.Writers = 20
	cfg.Test = 124
	writers, test, err := GenerateWriters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(writers) != 20 {
		t.Fatalf("writer count %d", len(writers))
	}
	for i := 1; i < len(writers); i++ {
		if writers[i].Samples.Len() > writers[i-1].Samples.Len() {
			t.Fatal("writers not sorted by descending sample count")
		}
	}
	if test.Len() != 124 {
		t.Fatalf("test size %d", test.Len())
	}
	for _, w := range writers {
		if w.Samples.Len() < cfg.MinPerWriter || w.Samples.Len() > cfg.MaxPerWriter {
			t.Fatalf("writer size %d outside [%d,%d]", w.Samples.Len(), cfg.MinPerWriter, cfg.MaxPerWriter)
		}
	}
}

func TestGenerateWritersSkew(t *testing.T) {
	cfg := FEMNISTWriters(9)
	cfg.Writers = 10
	writers, _, err := GenerateWriters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Writer distributions should be skewed: a writer's most common class
	// should hold well above the uniform share of samples.
	skewed := 0
	for _, w := range writers {
		h := w.Samples.ClassHistogram()
		max := 0
		for _, c := range h {
			if c > max {
				max = c
			}
		}
		uniform := float64(w.Samples.Len()) / float64(cfg.Classes)
		if float64(max) > 3*uniform {
			skewed++
		}
	}
	if skewed < len(writers)/2 {
		t.Fatalf("only %d/%d writers skewed; writer model too uniform", skewed, len(writers))
	}
}

func TestGenerateWritersValidation(t *testing.T) {
	cfg := FEMNISTWriters(1)
	cfg.Writers = 0
	if _, _, err := GenerateWriters(cfg); err == nil {
		t.Fatal("want error for zero writers")
	}
	cfg = FEMNISTWriters(1)
	cfg.MinPerWriter, cfg.MaxPerWriter = 10, 5
	if _, _, err := GenerateWriters(cfg); err == nil {
		t.Fatal("want error for inverted per-writer range")
	}
}
