package dataset

import (
	"testing"
	"testing/quick"
)

func genFor(t *testing.T, classes, train int, seed uint64) *Dataset {
	t.Helper()
	cfg := SyntheticConfig{Classes: classes, Dim: 4, Train: train, Test: 10, Noise: 1, Seed: seed}
	d, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestShardPartitionCoversAllSamples(t *testing.T) {
	d := genFor(t, 10, 1000, 1)
	p, err := ShardPartition(d, 16, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 16 {
		t.Fatalf("partition size %d", len(p))
	}
	if p.TotalLen() != d.Len() {
		t.Fatalf("partition covers %d of %d samples", p.TotalLen(), d.Len())
	}
	// No sample assigned twice.
	seen := map[*float64]bool{}
	for _, local := range p {
		for _, s := range local.Samples {
			if seen[&s.X[0]] {
				t.Fatal("sample assigned to two nodes")
			}
			seen[&s.X[0]] = true
		}
	}
}

func TestShardPartitionLimitsLabels(t *testing.T) {
	// The defining property of the paper's 2-shard split: each node sees at
	// most 2 (occasionally 3, when a shard straddles a label boundary)
	// distinct labels out of 10.
	d := genFor(t, 10, 2000, 2)
	p, err := ShardPartition(d, 20, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	atMost2 := 0
	for _, n := range p.DistinctLabels() {
		if n > 4 {
			t.Fatalf("node with %d distinct labels; shard partition broken", n)
		}
		if n <= 2 {
			atMost2++
		}
	}
	if atMost2 < len(p)/2 {
		t.Fatalf("only %d/%d nodes have <=2 labels", atMost2, len(p))
	}
}

func TestShardPartitionDeterministic(t *testing.T) {
	d := genFor(t, 10, 500, 4)
	p1, _ := ShardPartition(d, 10, 2, 9)
	p2, _ := ShardPartition(d, 10, 2, 9)
	for i := range p1 {
		if p1[i].Len() != p2[i].Len() {
			t.Fatal("shard partition not deterministic")
		}
		for j := range p1[i].Samples {
			if p1[i].Samples[j].Y != p2[i].Samples[j].Y {
				t.Fatal("shard partition not deterministic")
			}
		}
	}
}

func TestShardPartitionErrors(t *testing.T) {
	d := genFor(t, 4, 40, 5)
	if _, err := ShardPartition(d, 0, 2, 1); err == nil {
		t.Fatal("want error for n=0")
	}
	if _, err := ShardPartition(d, 100, 2, 1); err == nil {
		t.Fatal("want error for too many shards")
	}
}

func TestIIDPartitionBalanced(t *testing.T) {
	d := genFor(t, 10, 1000, 6)
	p, err := IIDPartition(d, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalLen() != 1000 {
		t.Fatalf("IID covers %d", p.TotalLen())
	}
	for i, local := range p {
		if local.Len() != 100 {
			t.Fatalf("node %d has %d samples", i, local.Len())
		}
		// IID nodes should see most labels.
		if n := p.DistinctLabels()[i]; n < 8 {
			t.Fatalf("IID node %d sees only %d labels", i, n)
		}
	}
}

func TestIIDPartitionErrors(t *testing.T) {
	d := genFor(t, 2, 4, 7)
	if _, err := IIDPartition(d, 0, 1); err == nil {
		t.Fatal("want error for n=0")
	}
	if _, err := IIDPartition(d, 10, 1); err == nil {
		t.Fatal("want error for more nodes than samples")
	}
}

func TestDirichletPartitionSkew(t *testing.T) {
	d := genFor(t, 10, 2000, 8)
	skewed, err := DirichletPartition(d, 10, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := DirichletPartition(d, 10, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(p Partition) float64 {
		s := 0.0
		for _, n := range p.DistinctLabels() {
			s += float64(n)
		}
		return s / float64(len(p))
	}
	if mean(skewed) >= mean(uniform) {
		t.Fatalf("alpha=0.1 gives %.1f mean labels, alpha=100 gives %.1f; skew inverted",
			mean(skewed), mean(uniform))
	}
}

func TestDirichletPartitionCovers(t *testing.T) {
	d := genFor(t, 5, 500, 9)
	p, err := DirichletPartition(d, 7, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalLen() != 500 {
		t.Fatalf("dirichlet covers %d of 500", p.TotalLen())
	}
}

func TestDirichletPartitionErrors(t *testing.T) {
	d := genFor(t, 2, 10, 10)
	if _, err := DirichletPartition(d, 2, 0, 1); err == nil {
		t.Fatal("want error for alpha=0")
	}
	if _, err := DirichletPartition(d, 0, 1, 1); err == nil {
		t.Fatal("want error for n=0")
	}
}

func TestWriterPartition(t *testing.T) {
	cfg := FEMNISTWriters(11)
	cfg.Writers = 12
	writers, _, err := GenerateWriters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := WriterPartition(writers, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 8 {
		t.Fatalf("writer partition size %d", len(p))
	}
	// Top-8: node i's dataset must be at least as large as node i+1's.
	for i := 1; i < len(p); i++ {
		if p[i].Len() > p[i-1].Len() {
			t.Fatal("writer partition not using top writers")
		}
	}
	if _, err := WriterPartition(writers, 20); err == nil {
		t.Fatal("want error when writers < nodes")
	}
}

func TestShardPartitionProperty(t *testing.T) {
	// Property: for any valid (n, shards) the partition is a true partition
	// (disjoint cover) of the dataset.
	d := genFor(t, 6, 600, 12)
	f := func(seed uint64, nRaw, sRaw uint8) bool {
		n := 1 + int(nRaw)%20
		s := 1 + int(sRaw)%3
		if d.Len() < n*s {
			return true
		}
		p, err := ShardPartition(d, n, s, seed)
		if err != nil {
			return false
		}
		return p.TotalLen() == d.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMinLen(t *testing.T) {
	var p Partition
	if p.MinLen() != 0 {
		t.Fatal("empty partition MinLen should be 0")
	}
	d := genFor(t, 4, 100, 13)
	p, _ = IIDPartition(d, 4, 1)
	if p.MinLen() != 25 {
		t.Fatalf("MinLen = %d", p.MinLen())
	}
}
