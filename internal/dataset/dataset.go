// Package dataset provides the data substrate of the reproduction:
// synthetic classification datasets with the label structure of CIFAR-10
// and FEMNIST, plus the paper's non-IID partitioning schemes.
//
// Real CIFAR-10/FEMNIST images cannot be used here (the build is offline
// and CPU-bound). Instead, each class c draws a random
// prototype vector mu_c and samples are mu_c + noise. That preserves what
// the paper's experiments actually rely on: samples of the same class
// cluster, classes are separable but overlapping, and a node that trains on
// 2 of 10 labels drifts toward a biased model that mixing must correct.
package dataset

import (
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Sample is one labeled example.
type Sample struct {
	X tensor.Vector
	Y int
}

// Dataset is an in-memory set of samples with shared metadata.
type Dataset struct {
	Samples    []Sample
	NumClasses int
	Dim        int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// Inputs returns the sample inputs as a slice of vectors (views, not copies).
func (d *Dataset) Inputs() []tensor.Vector {
	xs := make([]tensor.Vector, len(d.Samples))
	for i := range d.Samples {
		xs[i] = d.Samples[i].X
	}
	return xs
}

// Labels returns the sample labels.
func (d *Dataset) Labels() []int {
	ys := make([]int, len(d.Samples))
	for i := range d.Samples {
		ys[i] = d.Samples[i].Y
	}
	return ys
}

// ClassHistogram returns the per-class sample counts.
func (d *Dataset) ClassHistogram() []int {
	h := make([]int, d.NumClasses)
	for _, s := range d.Samples {
		h[s.Y]++
	}
	return h
}

// Subset returns a dataset sharing sample storage with d, restricted to the
// given indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{NumClasses: d.NumClasses, Dim: d.Dim, Samples: make([]Sample, len(idx))}
	for i, j := range idx {
		out.Samples[i] = d.Samples[j]
	}
	return out
}

// Split partitions d into two datasets of sizes n and Len()-n, in order.
// It panics if n is out of range. The paper builds its validation set this
// way: "extracting 50% of the samples from the test set" (Section 4.2).
func (d *Dataset) Split(n int) (*Dataset, *Dataset) {
	if n < 0 || n > d.Len() {
		panic(fmt.Sprintf("dataset: split point %d out of range [0,%d]", n, d.Len()))
	}
	a := &Dataset{NumClasses: d.NumClasses, Dim: d.Dim, Samples: d.Samples[:n]}
	b := &Dataset{NumClasses: d.NumClasses, Dim: d.Dim, Samples: d.Samples[n:]}
	return a, b
}

// Shuffled returns a copy of d with samples in random order.
func (d *Dataset) Shuffled(r *rng.RNG) *Dataset {
	out := &Dataset{NumClasses: d.NumClasses, Dim: d.Dim, Samples: make([]Sample, d.Len())}
	copy(out.Samples, d.Samples)
	r.Shuffle(len(out.Samples), func(i, j int) {
		out.Samples[i], out.Samples[j] = out.Samples[j], out.Samples[i]
	})
	return out
}

// Batcher yields minibatches by sampling without replacement per epoch,
// reshuffling when exhausted — the standard SGD data order.
type Batcher struct {
	ds    *Dataset
	r     *rng.RNG
	order []int
	pos   int
	xs    []tensor.Vector
	ys    []int
}

// NewBatcher creates a batcher over ds with its own RNG stream.
func NewBatcher(ds *Dataset, r *rng.RNG) *Batcher {
	if ds.Len() == 0 {
		panic("dataset: batcher over empty dataset")
	}
	b := &Batcher{ds: ds, r: r, order: r.Perm(ds.Len())}
	return b
}

// Next returns the next minibatch of up to size samples. The returned
// slices are reused across calls.
func (b *Batcher) Next(size int) ([]tensor.Vector, []int) {
	if size <= 0 {
		panic("dataset: non-positive batch size")
	}
	if size > b.ds.Len() {
		size = b.ds.Len()
	}
	b.xs = b.xs[:0]
	b.ys = b.ys[:0]
	for len(b.xs) < size {
		if b.pos == len(b.order) {
			b.r.Shuffle(len(b.order), func(i, j int) { b.order[i], b.order[j] = b.order[j], b.order[i] })
			b.pos = 0
		}
		s := b.ds.Samples[b.order[b.pos]]
		b.pos++
		b.xs = append(b.xs, s.X)
		b.ys = append(b.ys, s.Y)
	}
	return b.xs, b.ys
}

// sortByLabel returns sample indices ordered by (label, original index) —
// the deterministic "sort by label" step of the 2-shard partitioner.
func sortByLabel(d *Dataset) []int {
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return d.Samples[idx[a]].Y < d.Samples[idx[b]].Y })
	return idx
}
