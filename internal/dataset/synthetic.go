package dataset

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// SyntheticConfig describes a Gaussian-prototype classification task.
type SyntheticConfig struct {
	Classes int     // number of labels
	Dim     int     // input dimensionality
	Train   int     // training samples
	Test    int     // test samples (split later into validation/test)
	Noise   float64 // within-class standard deviation
	Seed    uint64
}

// Validate reports whether the configuration is usable.
func (c SyntheticConfig) Validate() error {
	switch {
	case c.Classes < 2:
		return fmt.Errorf("dataset: need >= 2 classes, got %d", c.Classes)
	case c.Dim < 1:
		return fmt.Errorf("dataset: need >= 1 dim, got %d", c.Dim)
	case c.Train < 1 || c.Test < 1:
		return fmt.Errorf("dataset: need positive train/test sizes, got %d/%d", c.Train, c.Test)
	case c.Noise < 0:
		return fmt.Errorf("dataset: negative noise %v", c.Noise)
	}
	return nil
}

// CIFARLike returns the default 10-class configuration standing in for
// CIFAR-10 at simulation scale.
func CIFARLike(seed uint64) SyntheticConfig {
	return SyntheticConfig{Classes: 10, Dim: 32, Train: 12800, Test: 2560, Noise: 1.0, Seed: seed}
}

// FEMNISTLike returns the default 62-class configuration standing in for
// FEMNIST at simulation scale. Samples are generated per writer via
// GenerateWriters; this config sets the shared geometry.
func FEMNISTLike(seed uint64) SyntheticConfig {
	return SyntheticConfig{Classes: 62, Dim: 32, Train: 25600, Test: 5120, Noise: 1.0, Seed: seed}
}

// prototypes draws one unit-ish prototype vector per class. Prototype
// entries are N(0,1), giving expected pairwise distance sqrt(2*Dim) —
// classes overlap through the Noise but remain learnable.
func prototypes(cfg SyntheticConfig, r *rng.RNG) []tensor.Vector {
	protos := make([]tensor.Vector, cfg.Classes)
	for c := range protos {
		p := tensor.NewVector(cfg.Dim)
		for i := range p {
			p[i] = r.NormFloat64()
		}
		protos[c] = p
	}
	return protos
}

func drawSample(proto tensor.Vector, noise float64, r *rng.RNG, extra tensor.Vector) Sample {
	x := tensor.NewVector(len(proto))
	for i := range x {
		x[i] = proto[i] + noise*r.NormFloat64()
		if extra != nil {
			x[i] += extra[i]
		}
	}
	return Sample{X: x}
}

// Generate builds balanced train and test datasets from the configuration.
// Labels cycle 0,1,...,Classes-1 so both splits are class-balanced; the
// test split is IID by construction, matching the paper's IID test set
// (Section 4.4: "the test set follows an IID distribution").
func Generate(cfg SyntheticConfig) (train, test *Dataset, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	r := rng.Derive(cfg.Seed, 0xda7a)
	protos := prototypes(cfg, r)
	make1 := func(n int, stream *rng.RNG) *Dataset {
		d := &Dataset{NumClasses: cfg.Classes, Dim: cfg.Dim, Samples: make([]Sample, n)}
		for i := 0; i < n; i++ {
			y := i % cfg.Classes
			s := drawSample(protos[y], cfg.Noise, stream, nil)
			s.Y = y
			d.Samples[i] = s
		}
		return d
	}
	train = make1(cfg.Train, rng.Derive(cfg.Seed, 0xda7a, 1)).Shuffled(rng.Derive(cfg.Seed, 0xda7a, 2))
	test = make1(cfg.Test, rng.Derive(cfg.Seed, 0xda7a, 3)).Shuffled(rng.Derive(cfg.Seed, 0xda7a, 4))
	return train, test, nil
}

// WriterData is the per-writer portion of a FEMNIST-like corpus: all
// samples produced by one "person", sharing a style offset, with a skewed
// label histogram — mirroring LEAF's natural per-user clustering.
type WriterData struct {
	Writer  int
	Samples *Dataset
}

// WritersConfig extends SyntheticConfig with the writer model.
type WritersConfig struct {
	SyntheticConfig
	Writers        int     // number of distinct writers
	MinPerWriter   int     // smallest per-writer sample count
	MaxPerWriter   int     // largest per-writer sample count
	StyleStd       float64 // magnitude of the per-writer style offset
	LabelSkewAlpha float64 // Dirichlet-like concentration; smaller = more skew
}

// FEMNISTWriters returns the default writer-model configuration.
func FEMNISTWriters(seed uint64) WritersConfig {
	return WritersConfig{
		SyntheticConfig: FEMNISTLike(seed),
		Writers:         300,
		MinPerWriter:    60,
		MaxPerWriter:    200,
		StyleStd:        0.35,
		LabelSkewAlpha:  0.5,
	}
}

// GenerateWriters builds a per-writer corpus plus an IID test set drawn from
// the same prototypes (no style offsets on the test side: the paper
// evaluates on the global test distribution). Writers are returned sorted by
// descending sample count so callers can take the paper's "top-256 clients
// with the highest number of samples".
func GenerateWriters(cfg WritersConfig) (writers []WriterData, test *Dataset, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if cfg.Writers < 1 {
		return nil, nil, fmt.Errorf("dataset: need >= 1 writer, got %d", cfg.Writers)
	}
	if cfg.MinPerWriter < 1 || cfg.MaxPerWriter < cfg.MinPerWriter {
		return nil, nil, fmt.Errorf("dataset: bad per-writer range [%d,%d]", cfg.MinPerWriter, cfg.MaxPerWriter)
	}
	r := rng.Derive(cfg.Seed, 0x3717e5)
	protos := prototypes(cfg.SyntheticConfig, r)

	writers = make([]WriterData, cfg.Writers)
	for w := 0; w < cfg.Writers; w++ {
		wr := rng.Derive(cfg.Seed, 0x3717e5, uint64(w)+1)
		style := tensor.NewVector(cfg.Dim)
		for i := range style {
			style[i] = cfg.StyleStd * wr.NormFloat64()
		}
		// Skewed label weights: symmetric Dirichlet via normalized Gamma
		// draws, approximated with sums of exponentials for alpha<1 using
		// the Ahrens-Dieter-free trick: weight = u^(1/alpha) works well
		// enough for skew purposes and keeps the generator tiny.
		weights := make([]float64, cfg.Classes)
		sum := 0.0
		for c := range weights {
			u := wr.Float64()
			if u == 0 {
				u = 1e-12
			}
			weights[c] = pow(u, 1/cfg.LabelSkewAlpha)
			sum += weights[c]
		}
		n := cfg.MinPerWriter + wr.Intn(cfg.MaxPerWriter-cfg.MinPerWriter+1)
		d := &Dataset{NumClasses: cfg.Classes, Dim: cfg.Dim, Samples: make([]Sample, n)}
		for i := 0; i < n; i++ {
			// Sample class from the skewed distribution.
			target := wr.Float64() * sum
			y, acc := 0, 0.0
			for c, wgt := range weights {
				acc += wgt
				if target <= acc {
					y = c
					break
				}
			}
			s := drawSample(protos[y], cfg.Noise, wr, style)
			s.Y = y
			d.Samples[i] = s
		}
		writers[w] = WriterData{Writer: w, Samples: d}
	}
	// Sort by descending sample count (stable on writer id for determinism).
	sortWriters(writers)

	tr := rng.Derive(cfg.Seed, 0x3717e5, 0xffff)
	test = &Dataset{NumClasses: cfg.Classes, Dim: cfg.Dim, Samples: make([]Sample, cfg.Test)}
	for i := 0; i < cfg.Test; i++ {
		y := i % cfg.Classes
		s := drawSample(protos[y], cfg.Noise, tr, nil)
		s.Y = y
		test.Samples[i] = s
	}
	test = test.Shuffled(rng.Derive(cfg.Seed, 0x3717e5, 0xfffe))
	return writers, test, nil
}

func sortWriters(ws []WriterData) {
	sort.SliceStable(ws, func(i, j int) bool {
		if ws[i].Samples.Len() != ws[j].Samples.Len() {
			return ws[i].Samples.Len() > ws[j].Samples.Len()
		}
		return ws[i].Writer < ws[j].Writer
	})
}

func pow(x, y float64) float64 { return math.Pow(x, y) }
