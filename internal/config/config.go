// Package config holds experiment configurations with the paper's Table 1
// defaults and JSON round-tripping for reproducible experiment manifests.
package config

import (
	"encoding/json"
	"fmt"
	"os"
)

// Experiment captures every knob of a paper experiment. The zero value is
// not valid; start from CIFAR10Defaults or FEMNISTDefaults.
type Experiment struct {
	Name string `json:"name"`

	// Topology.
	Nodes  int `json:"nodes"`
	Degree int `json:"degree"`

	// Table 1 hyperparameters.
	LearningRate float64 `json:"learning_rate"` // η
	BatchSize    int     `json:"batch_size"`    // |ξ|
	LocalSteps   int     `json:"local_steps"`   // E
	ModelSize    int     `json:"model_size"`    // |x|, drives the energy model
	Rounds       int     `json:"rounds"`        // T

	// SkipTrain schedule (ignored by D-PSGD).
	GammaTrain int `json:"gamma_train"`
	GammaSync  int `json:"gamma_sync"`

	// Energy-constrained setting.
	BatteryFraction float64 `json:"battery_fraction"` // share of battery usable

	// Simulation-scale knobs (learning runs on synthetic
	// data with compact models; energy runs on the paper's model sizes).
	DataClasses   int     `json:"data_classes"`
	DataDim       int     `json:"data_dim"`
	TrainSamples  int     `json:"train_samples"`
	TestSamples   int     `json:"test_samples"`
	Noise         float64 `json:"noise"`
	ShardsPerNode int     `json:"shards_per_node"` // 0 = writer/natural partition
	EvalEvery     int     `json:"eval_every"`
	EvalSubsample int     `json:"eval_subsample"`

	Seed uint64 `json:"seed"`
}

// CIFAR10Defaults returns the paper's CIFAR-10 configuration (Table 1):
// η=0.1, batch 32, 20 local steps, |x|=89834, T=1000, 2-shard partition,
// 10% battery budgets.
func CIFAR10Defaults() Experiment {
	return Experiment{
		Name:            "cifar10",
		Nodes:           256,
		Degree:          6,
		LearningRate:    0.1,
		BatchSize:       32,
		LocalSteps:      20,
		ModelSize:       89834,
		Rounds:          1000,
		GammaTrain:      4,
		GammaSync:       4,
		BatteryFraction: 0.10,
		DataClasses:     10,
		DataDim:         32,
		TrainSamples:    25600,
		TestSamples:     5120, // split 50/50 into validation and test, as in the paper
		Noise:           1.0,
		ShardsPerNode:   2,
		EvalEvery:       8,
		EvalSubsample:   512,
		Seed:            42,
	}
}

// FEMNISTDefaults returns the paper's FEMNIST configuration (Table 1):
// η=0.1, batch 16, 7 local steps, |x|=1690046, T=3000, natural writer
// partition, 50% battery budgets.
func FEMNISTDefaults() Experiment {
	e := CIFAR10Defaults()
	e.Name = "femnist"
	e.BatchSize = 16
	e.LocalSteps = 7
	e.ModelSize = 1690046
	e.Rounds = 3000
	e.GammaTrain = 4
	e.GammaSync = 4
	e.BatteryFraction = 0.50
	e.DataClasses = 62
	e.DataDim = 32
	e.ShardsPerNode = 0 // natural writer partition
	return e
}

// Validate checks internal consistency.
func (e Experiment) Validate() error {
	switch {
	case e.Nodes < 2:
		return fmt.Errorf("config: need >= 2 nodes, got %d", e.Nodes)
	case e.Degree < 2 || e.Degree >= e.Nodes:
		return fmt.Errorf("config: degree %d invalid for %d nodes", e.Degree, e.Nodes)
	case e.Nodes*e.Degree%2 != 0:
		return fmt.Errorf("config: nodes*degree must be even")
	case e.LearningRate <= 0:
		return fmt.Errorf("config: learning rate %v", e.LearningRate)
	case e.BatchSize < 1 || e.LocalSteps < 1 || e.Rounds < 1:
		return fmt.Errorf("config: batch/steps/rounds must be positive")
	case e.GammaTrain < 1 || e.GammaSync < 0:
		return fmt.Errorf("config: gamma (%d,%d) invalid", e.GammaTrain, e.GammaSync)
	case e.BatteryFraction <= 0 || e.BatteryFraction > 1:
		return fmt.Errorf("config: battery fraction %v outside (0,1]", e.BatteryFraction)
	case e.DataClasses < 2 || e.DataDim < 1:
		return fmt.Errorf("config: data geometry %d classes x %d dims", e.DataClasses, e.DataDim)
	case e.TrainSamples < e.Nodes:
		return fmt.Errorf("config: %d train samples for %d nodes", e.TrainSamples, e.Nodes)
	case e.TestSamples < 2:
		return fmt.Errorf("config: %d test samples", e.TestSamples)
	case e.ModelSize < 1:
		return fmt.Errorf("config: model size %d", e.ModelSize)
	}
	return nil
}

// Scale shrinks an experiment by the given node and round factors for
// laptop-scale runs, keeping ratios (samples per node, schedule) intact.
func (e Experiment) Scale(nodes, rounds int) Experiment {
	out := e
	if nodes > 0 && nodes < e.Nodes {
		out.TrainSamples = e.TrainSamples * nodes / e.Nodes
		if out.TrainSamples < nodes*e.ShardsPerNode {
			out.TrainSamples = nodes * max(1, e.ShardsPerNode) * 8
		}
		out.Nodes = nodes
		if out.Degree >= nodes {
			out.Degree = 2 + (nodes%2+nodes)%2 // fall back to something small and even-product
			if out.Degree >= nodes {
				out.Degree = 2
			}
		}
		if out.Nodes*out.Degree%2 != 0 {
			out.Degree++
		}
	}
	if rounds > 0 && rounds < e.Rounds {
		out.Rounds = rounds
	}
	return out
}

// Save writes the experiment as JSON to path.
func (e Experiment) Save(path string) error {
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads an experiment from a JSON file and validates it.
func Load(path string) (Experiment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Experiment{}, err
	}
	var e Experiment
	if err := json.Unmarshal(data, &e); err != nil {
		return Experiment{}, fmt.Errorf("config: parse %s: %w", path, err)
	}
	if err := e.Validate(); err != nil {
		return Experiment{}, err
	}
	return e, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
