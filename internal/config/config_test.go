package config

import (
	"os"
	"path/filepath"
	"testing"
)

func TestTable1Defaults(t *testing.T) {
	c := CIFAR10Defaults()
	// Table 1 of the paper, CIFAR-10 column.
	if c.LearningRate != 0.1 || c.BatchSize != 32 || c.LocalSteps != 20 ||
		c.ModelSize != 89834 || c.Rounds != 1000 {
		t.Fatalf("CIFAR-10 defaults do not match Table 1: %+v", c)
	}
	f := FEMNISTDefaults()
	if f.LearningRate != 0.1 || f.BatchSize != 16 || f.LocalSteps != 7 ||
		f.ModelSize != 1690046 || f.Rounds != 3000 {
		t.Fatalf("FEMNIST defaults do not match Table 1: %+v", f)
	}
	if f.BatteryFraction != 0.50 || c.BatteryFraction != 0.10 {
		t.Fatal("battery fractions do not match Section 4.2")
	}
	if c.Nodes != 256 || f.Nodes != 256 {
		t.Fatal("paper runs 256 nodes")
	}
}

func TestValidateDefaults(t *testing.T) {
	if err := CIFAR10Defaults().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := FEMNISTDefaults().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := map[string]func(*Experiment){
		"nodes":   func(e *Experiment) { e.Nodes = 1 },
		"degree":  func(e *Experiment) { e.Degree = 1 },
		"odd nd":  func(e *Experiment) { e.Nodes = 255; e.Degree = 7 },
		"lr":      func(e *Experiment) { e.LearningRate = 0 },
		"batch":   func(e *Experiment) { e.BatchSize = 0 },
		"gamma":   func(e *Experiment) { e.GammaTrain = 0 },
		"battery": func(e *Experiment) { e.BatteryFraction = 0 },
		"classes": func(e *Experiment) { e.DataClasses = 1 },
		"samples": func(e *Experiment) { e.TrainSamples = 10 },
		"model":   func(e *Experiment) { e.ModelSize = 0 },
	}
	for name, mutate := range mutations {
		e := CIFAR10Defaults()
		mutate(&e)
		if err := e.Validate(); err == nil {
			t.Fatalf("%s: want validation error", name)
		}
	}
}

func TestScale(t *testing.T) {
	e := CIFAR10Defaults()
	s := e.Scale(32, 100)
	if s.Nodes != 32 || s.Rounds != 100 {
		t.Fatalf("scaled to %d nodes %d rounds", s.Nodes, s.Rounds)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("scaled config invalid: %v", err)
	}
	// Scaling up is a no-op.
	s2 := e.Scale(10000, 10000)
	if s2.Nodes != 256 || s2.Rounds != 1000 {
		t.Fatal("scale must not grow the experiment")
	}
}

func TestScaleKeepsEvenDegreeProduct(t *testing.T) {
	e := CIFAR10Defaults()
	for _, n := range []int{9, 16, 33, 64} {
		s := e.Scale(n, 0)
		if s.Nodes*s.Degree%2 != 0 {
			t.Fatalf("scale(%d) gives odd n*d: %d*%d", n, s.Nodes, s.Degree)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("scale(%d): %v", n, err)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	e := FEMNISTDefaults()
	path := filepath.Join(t.TempDir(), "exp.json")
	if err := e.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", e, got)
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"nodes": 2, "degree": 5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("invalid config should fail Load")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file should fail Load")
	}
	malformed := filepath.Join(t.TempDir(), "malformed.json")
	if err := os.WriteFile(malformed, []byte(`{not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(malformed); err == nil {
		t.Fatal("malformed JSON should fail Load")
	}
}
