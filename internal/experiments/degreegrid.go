package experiments

import (
	"fmt"
	"io"

	"repro/internal/report"
)

// The degree-coupled harvest grid crosses the topology axis (graph degree)
// with the harvest axis (arrival regime): for every (degree, regime) pair
// it reruns the full 4x4 Γ-schedule search and records the selected best
// schedule. The question it answers is which coupling dominates schedule
// choice — if the best Γ moves when the degree changes but the regime is
// held fixed, topology dominates; if it moves with the regime at fixed
// degree, the arrival process does. Each (degree, regime, Γt, Γs) cell is
// a full simulation, so this workload is the sweep service's reason to
// exist: 3 degrees x 5 regimes x 16 cells = 240 simulations cold, and
// every one of them content-addressed and reusable.

// DefaultDegreeGrid is the standard topology axis: sparser and denser
// neighborhoods around the paper's 6-regular graph.
func DefaultDegreeGrid() []int { return []int{4, 6, 8} }

// DegreeGammaResult is the full degree x regime search. Best is indexed
// [degree][regime], parallel to Degrees and Regimes.
type DegreeGammaResult struct {
	Degrees []int
	Regimes []string
	Traces  []string             // per-regime trace names (degree-independent)
	Best    [][]GammaHarvestCell // Best[di][ri]: winning cell of that 4x4 grid

	// TopologyDistinct is the mean number of distinct best (Γt, Γs)
	// schedules observed across degrees with the regime held fixed;
	// ArrivalDistinct holds the regime axis fixed-degree counterpart. 1.0
	// means the axis never changes the selected schedule.
	TopologyDistinct float64
	ArrivalDistinct  float64
	// Dominant names the axis with the larger mean distinct count:
	// "arrival", "topology", or "neither" on an exact tie.
	Dominant string
}

// TableDegreeGamma runs the Γ-schedule search for every (degree, regime)
// pair and reports which axis — topology or arrival process — dominates
// the choice of best schedule. A nil degrees slice uses DefaultDegreeGrid.
// With o.Sweep attached, all 4x4 grids run through the memoized scheduler,
// so the degree-6 column is shared bit-for-bit with TableGammaHarvest and
// warm reruns recompute nothing.
func TableDegreeGamma(o Options, degrees []int) (*DegreeGammaResult, error) {
	o = o.Defaults()
	if len(degrees) == 0 {
		degrees = DefaultDegreeGrid()
	}
	regimes := GammaGridRegimes(o)
	res := &DegreeGammaResult{
		Degrees: degrees,
		Regimes: make([]string, len(regimes)),
		Traces:  make([]string, len(regimes)),
		Best:    make([][]GammaHarvestCell, len(degrees)),
	}
	for ri, regime := range regimes {
		res.Regimes[ri] = regime.Name
	}
	for di, degree := range degrees {
		w, err := newGammaWorldDegree(o, degree)
		if err != nil {
			return nil, fmt.Errorf("experiments: degree grid d=%d: %w", degree, err)
		}
		res.Best[di] = make([]GammaHarvestCell, len(regimes))
		for ri, regime := range regimes {
			gr, err := w.runRegime(regime)
			if err != nil {
				return nil, fmt.Errorf("experiments: degree grid d=%d: %w", degree, err)
			}
			res.Best[di][ri] = gr.Best
			res.Traces[ri] = gr.Trace
		}
	}
	res.TopologyDistinct, res.ArrivalDistinct, res.Dominant = degreeGammaDominance(res.Best)
	res.Render(o.Out)
	return res, nil
}

// degreeGammaDominance scores both axes by how often moving along them
// changes the selected (Γt, Γs): the per-regime mean of distinct schedules
// across degrees (topology axis) against the per-degree mean of distinct
// schedules across regimes (arrival axis).
func degreeGammaDominance(best [][]GammaHarvestCell) (topo, arrival float64, dominant string) {
	if len(best) == 0 || len(best[0]) == 0 {
		return 0, 0, "neither"
	}
	distinct := func(cells []GammaHarvestCell) int {
		seen := map[[2]int]bool{}
		for _, c := range cells {
			seen[[2]int{c.GammaTrain, c.GammaSync}] = true
		}
		return len(seen)
	}
	nDeg, nReg := len(best), len(best[0])
	for ri := 0; ri < nReg; ri++ {
		col := make([]GammaHarvestCell, nDeg)
		for di := range best {
			col[di] = best[di][ri]
		}
		topo += float64(distinct(col))
	}
	topo /= float64(nReg)
	for di := range best {
		arrival += float64(distinct(best[di]))
	}
	arrival /= float64(nDeg)
	switch {
	case arrival > topo:
		dominant = "arrival"
	case topo > arrival:
		dominant = "topology"
	default:
		dominant = "neither"
	}
	return topo, arrival, dominant
}

// Render writes the best-schedule matrix (one row per degree, one column
// per regime) and the dominance verdict.
func (r *DegreeGammaResult) Render(out io.Writer) {
	header := append([]string{"Degree"}, r.Regimes...)
	tb := report.NewTable("Degree-coupled harvest grid: best (Γt,Γs) per degree x regime", header...)
	for di, d := range r.Degrees {
		row := fmt.Sprintf("%d", d)
		for _, c := range r.Best[di] {
			row += fmt.Sprintf("|Γ%d/%d %.1f%%", c.GammaTrain, c.GammaSync, c.FinalAcc)
		}
		tb.AddRowf("%s", row)
	}
	tb.Render(out)
	fmt.Fprintf(out, "distinct best-Γ per axis: topology %.2f, arrival %.2f — %s dominates schedule choice\n\n",
		r.TopologyDistinct, r.ArrivalDistinct, r.Dominant)
}
