package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/harvest"
	"repro/internal/report"
	"repro/internal/sim"
)

// The forecast table answers the ROADMAP's charge-forecasting question: on
// identical fleets, seeds, and harvest regimes, does a policy that plans
// against a forecast of its own trace beat the reactive SoC rules, and how
// much of that gain survives when the forecast is merely learned
// (persistence: tomorrow ≈ today) rather than perfect (oracle)? The
// offline-optimal row — the oracle planning over the entire remaining
// horizon — bounds what any forecast length can buy. All runs use the
// physical brown-out model (drop-and-renormalize), so conserving charge
// through a forecast trough keeps a node's radio on while the reactive
// rules brown out.

// ForecastRow summarizes one (regime, policy) forecast run.
type ForecastRow struct {
	Regime        string  // harvest regime: "diurnal" or "markov"
	Policy        string  // row label (policy family)
	Forecaster    string  // forecaster identity, "-" for forecast-free rows
	Horizon       int     // forecast window in rounds (0 = none)
	FinalAcc      float64 // mean final test accuracy, %
	Participation float64 // trained rounds / coordinated training slots, %
	DeadShare     float64 // mean share of the fleet below cutoff, %
	WastedWh      float64 // harvest that arrived on full batteries (sim scale)
}

// forecastReserveSoC is the HorizonPlan safety margin shared by every MPC
// row: the planned trajectory keeps this much capacity above the cutoff.
const forecastReserveSoC = 0.05

// forecastFleetOptions mirrors the brown-out world — supercap capacity, a
// real cutoff, always-on idle draw — so surviving the forecast trough is
// what the planner's lookahead is for.
func forecastFleetOptions(meanTrainWh float64) harvest.Options {
	return harvest.Options{
		CapacityRounds: 10,
		InitialSoC:     0.6,
		CutoffSoC:      0.25,
		IdleWh:         0.2 * meanTrainWh,
	}
}

// forecastArm is one policy family of the comparison. Arms without a
// forecaster run the reactive baselines; MPC arms share one HorizonPlan
// configuration and differ only in what feeds their forecast window.
type forecastArm struct {
	name       string
	horizon    func(o Options) int // forecast window; 0 = no forecaster
	forecaster func(o Options, trace harvest.Trace, horizon int) (harvest.Forecaster, error)
	policy     func() (core.Policy, error)
}

// forecastArms returns the comparison, ordered from reactive to
// fully-informed: the SoC baselines, then persistence-MPC (a forecast any
// deployment can compute), oracle-MPC (perfect one-day lookahead), and
// offline-optimal (perfect whole-horizon lookahead).
func forecastArms() []forecastArm {
	day := func(o Options) int { return diurnalPeriod(o.Rounds) }
	full := func(o Options) int { return o.Rounds }
	mpc := func() (core.Policy, error) { return harvest.NewHorizonPlan(forecastReserveSoC) }
	oracle := func(_ Options, trace harvest.Trace, _ int) (harvest.Forecaster, error) {
		return harvest.NewOracle(trace)
	}
	persistence := func(o Options, _ harvest.Trace, _ int) (harvest.Forecaster, error) {
		return harvest.NewPersistence(o.Nodes, diurnalPeriod(o.Rounds))
	}
	return []forecastArm{
		{name: "soc-threshold", policy: func() (core.Policy, error) { return harvest.NewSoCThreshold(0.35) }},
		{name: "soc-proportional", policy: func() (core.Policy, error) { return harvest.NewSoCProportional(1) }},
		{name: "persistence-mpc", horizon: day, forecaster: persistence, policy: mpc},
		{name: "oracle-mpc", horizon: day, forecaster: oracle, policy: mpc},
		{name: "offline-optimal", horizon: full, forecaster: oracle, policy: mpc},
	}
}

// TableForecast runs the forecast-aware participation comparison — every
// arm against every shared brown-out regime — and renders the table. Every
// cell is a fresh-fleet, fresh-forecaster run; rows are bit-identical at
// any GOMAXPROCS.
func TableForecast(o Options) ([]ForecastRow, error) {
	o = o.Defaults()
	g, weights, err := topologyFor(o.Nodes, 6, o.Seed)
	if err != nil {
		return nil, err
	}
	part, _, test, err := cifarLikeData(o)
	if err != nil {
		return nil, err
	}
	devices := energy.AssignDevices(o.Nodes, energy.Devices())
	workload := energy.CIFAR10Workload()
	meanTrainWh := energy.NetworkRoundWh(o.Nodes, energy.Devices(), workload) / float64(o.Nodes)

	schedule := core.AllTrain{}
	trainSlots := core.CountTrainRounds(schedule, o.Rounds)
	var rows []ForecastRow
	for _, regime := range brownoutRegimes(o, meanTrainWh) {
		for _, arm := range forecastArms() {
			fail := func(err error) ([]ForecastRow, error) {
				return nil, fmt.Errorf("experiments: forecast %s/%s: %w", regime.name, arm.name, err)
			}
			trace, err := regime.trace()
			if err != nil {
				return fail(err)
			}
			fleet, err := harvest.NewFleet(devices, workload, trace, forecastFleetOptions(meanTrainWh))
			if err != nil {
				return fail(err)
			}
			policy, err := arm.policy()
			if err != nil {
				return fail(err)
			}
			horizon := 0
			var forecaster harvest.Forecaster
			if arm.forecaster != nil {
				horizon = arm.horizon(o)
				if forecaster, err = arm.forecaster(o, trace, horizon); err != nil {
					return fail(err)
				}
			}
			res, err := sim.Run(sim.Config{
				Graph: g, Weights: weights,
				Algo:         core.Algorithm{Label: regime.name + "/" + arm.name, Schedule: schedule, Policy: policy},
				Rounds:       o.Rounds,
				ModelFactory: modelFactory(32, 10),
				LR:           o.LR, BatchSize: o.BatchSize, LocalSteps: o.LocalSteps,
				Partition: part, Test: test,
				EvalEvery: o.EvalEvery, EvalSubsample: o.EvalSubsample,
				Devices: devices, Workload: workload,
				Harvest:         fleet,
				Forecast:        forecaster,
				ForecastHorizon: horizon,
				DropDeadNodes:   true,
				Seed:            o.Seed,
			})
			if err != nil {
				return fail(err)
			}
			trained := 0
			for _, tr := range res.TrainedRounds {
				trained += tr
			}
			var deadSum float64
			for _, m := range res.History {
				deadSum += float64(m.Depleted)
			}
			fname := "-"
			if forecaster != nil {
				fname = forecaster.Name()
			}
			rows = append(rows, ForecastRow{
				Regime:        regime.name,
				Policy:        arm.name,
				Forecaster:    fname,
				Horizon:       horizon,
				FinalAcc:      res.FinalMeanAcc * 100,
				Participation: 100 * float64(trained) / float64(o.Nodes*trainSlots),
				DeadShare:     100 * deadSum / (float64(len(res.History)) * float64(o.Nodes)),
				WastedWh:      res.TotalWastedWh,
			})
		}
	}

	tb := report.NewTable("Forecast-aware participation: MPC planning vs reactive SoC rules (drop-and-renormalize, sim scale)",
		"Regime", "Policy", "Forecaster", "Window", "Acc %", "Particip %", "Dead %", "Wasted Wh")
	for _, r := range rows {
		window := "-"
		if r.Horizon > 0 {
			window = fmt.Sprintf("%d", r.Horizon)
		}
		tb.AddRowf("%s|%s|%s|%s|%.2f|%.1f|%.1f|%.4f",
			r.Regime, r.Policy, r.Forecaster, window, r.FinalAcc,
			r.Participation, r.DeadShare, r.WastedWh)
	}
	tb.Render(o.Out)
	return rows, nil
}

// ForecastRowFor returns the row of a (regime, policy) pair, and whether it
// exists — the lookup the acceptance pins use.
func ForecastRowFor(rows []ForecastRow, regime, policy string) (ForecastRow, bool) {
	for _, r := range rows {
		if r.Regime == regime && r.Policy == policy {
			return r, true
		}
	}
	return ForecastRow{}, false
}
