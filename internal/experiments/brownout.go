package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/harvest"
	"repro/internal/report"
	"repro/internal/sim"
)

// The brown-out scenario table isolates one modeling decision: what the
// simulator does with a node whose battery fell below the cutoff. The
// optimistic baseline keeps routing sync traffic through it
// (route-through-dead, the pre-dropout engine behavior); the physical model
// silences its radio, drops every incident edge for the round, and
// re-normalizes the mixing matrix over the live subgraph
// (drop-and-renormalize, sim.Config.DropDeadNodes). Both modes run on
// identical fleets, seeds, and policies across two harvest regimes —
// diurnal/solar and bursty Markov — so any accuracy gap is attributable to
// the communication model alone.

// BrownoutRow summarizes one (regime, mode) brown-out run.
type BrownoutRow struct {
	Regime        string  // harvest regime: "diurnal" or "markov"
	Mode          string  // "route-through-dead" or "drop-and-renormalize"
	FinalAcc      float64 // mean final test accuracy, %
	Participation float64 // trained rounds / coordinated training slots, %
	MeanLivePct   float64 // mean live-node share across rounds, %
	MinLive       int     // smallest live set seen in any round
	MeanLiveDeg   float64 // mean effective degree across rounds
	MeanComps     float64 // mean live-component count across rounds
	DroppedSends  int     // messages lost on dead edges (0 when routing through)
	DepletedEnd   int     // nodes below cutoff after the last round
}

// brownoutFleetOptions puts the fleet in a regime where brown-outs really
// happen: supercap capacity, a hard cutoff, and an always-on idle draw that
// can push a node below the cutoff during dark or off spells.
func brownoutFleetOptions(meanTrainWh float64) harvest.Options {
	return harvest.Options{
		CapacityRounds: 10,
		InitialSoC:     0.6,
		CutoffSoC:      0.25,
		IdleWh:         0.2 * meanTrainWh,
	}
}

// brownoutRegime is one harvest regime of the brown-out experiment family:
// a named trace constructor shared by TableBrownout and TableRejoin so both
// compare over identical fleets.
type brownoutRegime struct {
	name  string
	trace func() (harvest.Trace, error)
}

// brownoutRegimes returns the two standard regimes: diurnal/solar (regular,
// predictable outages sweeping the fleet) and bursty Markov (irregular
// outages of random length).
func brownoutRegimes(o Options, meanTrainWh float64) []brownoutRegime {
	return []brownoutRegime{
		{"diurnal", func() (harvest.Trace, error) {
			return harvest.NewDiurnal(1.2*meanTrainWh, diurnalPeriod(o.Rounds), harvest.LongitudePhase(o.Nodes))
		}},
		{"markov", func() (harvest.Trace, error) {
			return harvest.NewMarkovOnOff(o.Nodes, 1.4*meanTrainWh, 0.25, 0.35, o.Seed)
		}},
	}
}

// TableBrownout runs the 2x2 brown-out comparison (harvest regime x
// dead-node communication model) and renders the table. Every cell is
// bit-reproducible: all stochastic state is per-node and the live set is
// snapshotted once per round, so rows are identical at any GOMAXPROCS.
func TableBrownout(o Options) ([]BrownoutRow, error) {
	o = o.Defaults()
	g, weights, err := topologyFor(o.Nodes, 6, o.Seed)
	if err != nil {
		return nil, err
	}
	part, _, test, err := cifarLikeData(o)
	if err != nil {
		return nil, err
	}
	devices := energy.AssignDevices(o.Nodes, energy.Devices())
	workload := energy.CIFAR10Workload()
	meanTrainWh := energy.NetworkRoundWh(o.Nodes, energy.Devices(), workload) / float64(o.Nodes)

	regimes := brownoutRegimes(o, meanTrainWh)

	schedule := core.AllTrain{}
	trainSlots := core.CountTrainRounds(schedule, o.Rounds)
	var rows []BrownoutRow
	for _, regime := range regimes {
		for _, drop := range []bool{false, true} {
			mode := "route-through-dead"
			if drop {
				mode = "drop-and-renormalize"
			}
			trace, err := regime.trace()
			if err != nil {
				return nil, fmt.Errorf("experiments: brownout %s: %w", regime.name, err)
			}
			fleet, err := harvest.NewFleet(devices, workload, trace, brownoutFleetOptions(meanTrainWh))
			if err != nil {
				return nil, fmt.Errorf("experiments: brownout %s: %w", regime.name, err)
			}
			policy, err := harvest.NewSoCThreshold(0.35)
			if err != nil {
				return nil, fmt.Errorf("experiments: brownout %s: %w", regime.name, err)
			}
			res, err := sim.Run(sim.Config{
				Graph: g, Weights: weights,
				Algo:         core.Algorithm{Label: regime.name + "/" + mode, Schedule: schedule, Policy: policy},
				Rounds:       o.Rounds,
				ModelFactory: modelFactory(32, 10),
				LR:           o.LR, BatchSize: o.BatchSize, LocalSteps: o.LocalSteps,
				Partition: part, Test: test,
				EvalEvery: o.EvalEvery, EvalSubsample: o.EvalSubsample,
				Devices: devices, Workload: workload,
				Harvest:       fleet,
				DropDeadNodes: drop,
				Seed:          o.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: brownout %s/%s: %w", regime.name, mode, err)
			}
			trained := 0
			for _, tr := range res.TrainedRounds {
				trained += tr
			}
			var liveSum, degSum, compSum float64
			minLive := o.Nodes
			for _, m := range res.History {
				liveSum += float64(m.LiveCount)
				degSum += m.MeanLiveDegree
				compSum += float64(m.LiveComponents)
				if m.LiveCount < minLive {
					minLive = m.LiveCount
				}
			}
			nRounds := float64(len(res.History))
			rows = append(rows, BrownoutRow{
				Regime:        regime.name,
				Mode:          mode,
				FinalAcc:      res.FinalMeanAcc * 100,
				Participation: 100 * float64(trained) / float64(o.Nodes*trainSlots),
				MeanLivePct:   100 * liveSum / (nRounds * float64(o.Nodes)),
				MinLive:       minLive,
				MeanLiveDeg:   degSum / nRounds,
				MeanComps:     compSum / nRounds,
				DroppedSends:  res.TotalDroppedSends,
				DepletedEnd:   res.History[len(res.History)-1].Depleted,
			})
		}
	}

	tb := report.NewTable("Brown-out communication model: routing through dead nodes vs dropping their edges (sim scale)",
		"Regime", "Mode", "Acc %", "Particip %", "Live %", "Min live", "Eff deg", "Components", "Dropped msgs", "Depleted")
	for _, r := range rows {
		tb.AddRowf("%s|%s|%.2f|%.1f|%.1f|%d|%.2f|%.2f|%d|%d",
			r.Regime, r.Mode, r.FinalAcc, r.Participation, r.MeanLivePct,
			r.MinLive, r.MeanLiveDeg, r.MeanComps, r.DroppedSends, r.DepletedEnd)
	}
	tb.Render(o.Out)
	return rows, nil
}
