package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/report"
)

// Table1 prints the simulation hyperparameters (paper Table 1).
func Table1(o Options) {
	o = o.Defaults()
	c := config.CIFAR10Defaults()
	f := config.FEMNISTDefaults()
	tb := report.NewTable("Table 1: Simulation hyperparameters", "Hyperparameter", "Description", "CIFAR-10", "FEMNIST")
	tb.AddRow("η", "Learning rate", fmt.Sprintf("%.1f", c.LearningRate), fmt.Sprintf("%.1f", f.LearningRate))
	tb.AddRow("|ξ|", "Batch size", fmt.Sprintf("%d", c.BatchSize), fmt.Sprintf("%d", f.BatchSize))
	tb.AddRow("E", "Local steps", fmt.Sprintf("%d", c.LocalSteps), fmt.Sprintf("%d", f.LocalSteps))
	tb.AddRow("|x|", "Model size", fmt.Sprintf("%d", c.ModelSize), fmt.Sprintf("%d", f.ModelSize))
	tb.AddRow("T", "Total rounds", fmt.Sprintf("%d", c.Rounds), fmt.Sprintf("%d", f.Rounds))
	tb.Render(o.Out)
}

// Table2Row is one device of the energy-trace table.
type Table2Row struct {
	Device        string
	CIFARmWh      float64
	FEMNISTmWh    float64
	CIFARRounds   int // at 10% battery
	FEMNISTRounds int // at 50% battery
}

// Table2 regenerates the energy traces (paper Table 2): per-device,
// per-round training energy for both workloads and the battery-bounded
// round budgets.
func Table2(o Options) []Table2Row {
	o = o.Defaults()
	var rows []Table2Row
	tb := report.NewTable("Table 2: Energy traces",
		"Device", "CIFAR-10 mWh", "FEMNIST mWh", "CIFAR-10 rounds (10%)", "FEMNIST rounds (50%)")
	for _, d := range energy.Devices() {
		row := Table2Row{
			Device:        d.Name,
			CIFARmWh:      d.TrainRoundWh(energy.CIFAR10Workload()) * 1000,
			FEMNISTmWh:    d.TrainRoundWh(energy.FEMNISTWorkload()) * 1000,
			CIFARRounds:   d.RoundBudget(energy.CIFAR10Workload(), 0.10),
			FEMNISTRounds: d.RoundBudget(energy.FEMNISTWorkload(), 0.50),
		}
		rows = append(rows, row)
		tb.AddRowf("%s|%.1f|%.1f|%d|%d", row.Device, row.CIFARmWh, row.FEMNISTmWh, row.CIFARRounds, row.FEMNISTRounds)
	}
	tb.Render(o.Out)
	return rows
}

// Table3Row is one (algorithm, dataset) row of the unconstrained summary.
type Table3Row struct {
	Algo     string
	Dataset  string
	EnergyWh map[int]float64 // by degree, exact at paper scale
	Acc      map[int]float64 // by degree, measured at sim scale
}

// Table3 reproduces the unconstrained summary (paper Table 3): training
// energy and average test accuracy for SkipTrain and D-PSGD over three
// topologies and two datasets. Energies are computed analytically at paper
// scale (they depend only on the schedule and the traces) and match the
// published numbers; accuracies come from the scaled simulation of
// Figure 5 when provided.
func Table3(o Options, fig5 *Figure5Result) []Table3Row {
	o = o.Defaults()
	degrees := []int{6, 8, 10}
	rows := []Table3Row{}
	for _, ds := range []string{"cifar", "femnist"} {
		workload := energy.CIFAR10Workload()
		paperRounds := PaperRoundsCIFAR
		if ds == "femnist" {
			workload = energy.FEMNISTWorkload()
			paperRounds = PaperRoundsFEMNIST
		}
		for _, algo := range []string{"SkipTrain", "D-PSGD"} {
			row := Table3Row{Algo: algo, Dataset: ds, EnergyWh: map[int]float64{}, Acc: map[int]float64{}}
			for _, deg := range degrees {
				var trainRounds int
				if algo == "D-PSGD" {
					trainRounds = paperRounds
				} else {
					trainRounds = core.CountTrainRounds(gammaForDegree(deg), paperRounds)
				}
				row.EnergyWh[deg] = paperEnergyWh(trainRounds, workload)
				if fig5 != nil {
					if arm := fig5.Arm(algo, ds, deg); arm != nil {
						row.Acc[deg] = arm.FinalAcc
					}
				}
			}
			rows = append(rows, row)
		}
	}
	tb := report.NewTable("Table 3: Training energy and average test accuracy (energy exact at paper scale)",
		"Algorithm", "Dataset", "E Wh (6)", "E Wh (8)", "E Wh (10)", "Acc% (6)", "Acc% (8)", "Acc% (10)")
	for _, r := range rows {
		tb.AddRowf("%s|%s|%.2f|%.2f|%.2f|%.2f|%.2f|%.2f",
			r.Algo, r.Dataset, r.EnergyWh[6], r.EnergyWh[8], r.EnergyWh[10],
			r.Acc[6], r.Acc[8], r.Acc[10])
	}
	tb.Render(o.Out)
	return rows
}

// Table4Row is one (algorithm, dataset) row of the constrained summary.
type Table4Row struct {
	Algo     string
	Dataset  string
	EnergyWh map[int]float64
	Acc      map[int]float64
}

// Table4 reproduces the energy-constrained summary (paper Table 4) from the
// Figure 6 runs: consumed training energy (scaled to paper units) and final
// accuracy for SkipTrain-constrained, Greedy and D-PSGD.
//
// Note on D-PSGD: the paper does not battery-limit D-PSGD; its Table 4
// energy column reports the equal-energy comparison point rather than the
// full 1510 Wh horizon. We report D-PSGD's accuracy at the largest
// cumulative energy not exceeding the constrained algorithms' budget,
// matching the spirit of "up to 12% higher accuracy at the same energy".
func Table4(o Options, fig6 *Figure6Result) []Table4Row {
	o = o.Defaults()
	degrees := []int{6, 8, 10}
	rows := []Table4Row{}
	if fig6 == nil {
		return rows
	}
	for _, ds := range []string{"cifar", "femnist"} {
		for _, algo := range []string{"SkipTrain-constrained", "Greedy", "D-PSGD"} {
			row := Table4Row{Algo: algo, Dataset: ds, EnergyWh: map[int]float64{}, Acc: map[int]float64{}}
			for _, deg := range degrees {
				arm := fig6.Arm(algo, ds, deg)
				if arm == nil {
					continue
				}
				if algo == "D-PSGD" {
					// Equal-energy comparison: find the constrained budget
					// for this (dataset, degree) and truncate D-PSGD there.
					budget := 0.0
					if c := fig6.Arm("SkipTrain-constrained", ds, deg); c != nil {
						budget = c.ConsumedWh
					}
					acc, e := accuracyAtEnergy(arm.AccVsEnergy, budget)
					row.EnergyWh[deg] = e
					row.Acc[deg] = acc
				} else {
					row.EnergyWh[deg] = arm.ConsumedWh
					row.Acc[deg] = arm.FinalAcc
				}
			}
			rows = append(rows, row)
		}
	}
	tb := report.NewTable("Table 4: Energy-constrained summary (paper-scale Wh)",
		"Algorithm", "Dataset", "E Wh (6)", "E Wh (8)", "E Wh (10)", "Acc% (6)", "Acc% (8)", "Acc% (10)")
	for _, r := range rows {
		tb.AddRowf("%s|%s|%.1f|%.1f|%.1f|%.2f|%.2f|%.2f",
			r.Algo, r.Dataset, r.EnergyWh[6], r.EnergyWh[8], r.EnergyWh[10],
			r.Acc[6], r.Acc[8], r.Acc[10])
	}
	tb.Render(o.Out)
	return rows
}

// accuracyAtEnergy returns the accuracy of the last curve point whose
// energy does not exceed budget (or the first point when none qualifies).
func accuracyAtEnergy(s Series, budget float64) (acc, energyAt float64) {
	if len(s.X) == 0 {
		return 0, 0
	}
	acc, energyAt = s.Y[0], s.X[0]
	for i := range s.X {
		if s.X[i] <= budget {
			acc, energyAt = s.Y[i], s.X[i]
		}
	}
	return acc, energyAt
}

// SummaryHeadline prints the paper's abstract-level claims against the
// measured results: "50% energy reduction, up to 7pp (unconstrained) and
// 12pp (constrained) accuracy gain over D-PSGD".
func SummaryHeadline(o Options, t3 []Table3Row, t4 []Table4Row) {
	o = o.Defaults()
	var bestGainU, bestGainC float64
	var energyRatio float64
	for _, deg := range []int{6, 8, 10} {
		var st, dp Table3Row
		for _, r := range t3 {
			if r.Dataset != "cifar" {
				continue
			}
			if r.Algo == "SkipTrain" {
				st = r
			} else if r.Algo == "D-PSGD" {
				dp = r
			}
		}
		if dp.EnergyWh != nil && st.EnergyWh != nil && dp.EnergyWh[deg] > 0 {
			if g := st.Acc[deg] - dp.Acc[deg]; g > bestGainU {
				bestGainU = g
			}
			if r := st.EnergyWh[deg] / dp.EnergyWh[deg]; energyRatio == 0 || r < energyRatio {
				energyRatio = r
			}
		}
	}
	for _, deg := range []int{6, 8, 10} {
		var sc, dp Table4Row
		for _, r := range t4 {
			if r.Dataset != "cifar" {
				continue
			}
			if r.Algo == "SkipTrain-constrained" {
				sc = r
			} else if r.Algo == "D-PSGD" {
				dp = r
			}
		}
		if sc.Acc != nil && dp.Acc != nil {
			if g := sc.Acc[deg] - dp.Acc[deg]; g > bestGainC {
				bestGainC = g
			}
		}
	}
	fmt.Fprintf(o.Out, "headline: SkipTrain energy ratio vs D-PSGD: %.2f (paper: ~0.5)\n", energyRatio)
	fmt.Fprintf(o.Out, "headline: best unconstrained accuracy gain: %+.1f pp (paper: up to +7)\n", bestGainU)
	fmt.Fprintf(o.Out, "headline: best constrained accuracy gain:   %+.1f pp (paper: up to +12)\n", bestGainC)
}
