package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/harvest"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// The harvest-aware Γ-schedule search reruns the paper's Figure 3 grid
// search — best (Γtrain, Γsync) over a 4x4 grid — against live harvesting
// fleets instead of a fixed energy budget. The right duty cycle depends on
// the arrival process: under a fixed budget every unscheduled train round
// saves energy for later, while under ambient harvest a too-timid schedule
// lets energy arrive on full batteries and be wasted. Each regime therefore
// selects its own schedule; the fixed-budget baseline recovers the paper's
// setting as the zero-harvest special case.
//
// Both searches — Figure3's and TableGammaHarvest's — run on the shared
// grid runner below: cells are independent simulations fanned out across
// workers (internal/par) with each result written into its preallocated
// slot, so tables are bit-identical to the serial path at any GOMAXPROCS.

// gammaGridMax is the per-axis extent of the search: Γtrain and Γsync each
// range over 1..gammaGridMax, matching Figure 3.
const gammaGridMax = 4

// forEachGammaCell evaluates all gammaGridMax² schedule cells with the
// given per-cell body, fanning cells out across workers. Each cell writes
// only its own preallocated slot and errors land in per-cell slots, so
// the returned grid — layout grid[gs-1][gt-1], like Figure3Result — is
// identical at any worker count, and the reported error is always the
// lowest-indexed cell's. This is the uncached entry point; keyed grids go
// through gammaCells with a sweep.Runner.
func forEachGammaCell[C any](run func(gt, gs int) (C, error)) ([][]C, error) {
	return gammaCells(nil, nil, run)
}

// gammaCells executes the Γ grid through the sweep scheduler: cells with
// a key are served from the runner's cache when present and computed
// (then cached) otherwise; a nil runner or nil key degrades to the plain
// pool fan-out. Cached and computed cells are interchangeable
// bit-for-bit (see sweep.Grid), so a grid's values are independent of
// which cells hit.
func gammaCells[C any](r *sweep.Runner, key func(gt, gs int) sweep.CellKey, run func(gt, gs int) (C, error)) ([][]C, error) {
	at := func(k int) (gt, gs int) { return k%gammaGridMax + 1, k/gammaGridMax + 1 }
	var keyAt func(int) sweep.CellKey
	if key != nil {
		keyAt = func(k int) sweep.CellKey {
			gt, gs := at(k)
			return key(gt, gs)
		}
	}
	cells, err := sweep.Grid(r, gammaGridMax*gammaGridMax, keyAt, func(k int) (C, error) {
		gt, gs := at(k)
		return run(gt, gs)
	})
	if err != nil {
		return nil, err
	}
	grid := make([][]C, gammaGridMax)
	for gs := range grid {
		grid[gs] = cells[gs*gammaGridMax : (gs+1)*gammaGridMax]
	}
	return grid, nil
}

// bestGammaCell selects the accuracy-maximal cell, breaking ties toward
// lower energy (the paper's rule). The running best is seeded from the
// first real cell, never from C's zero value: seeding from the zero value
// made an all-zero-accuracy grid (tiny horizons) report the impossible
// schedule Γtrain=0, Γsync=0 at 0 Wh as "best".
func bestGammaCell[C any](grid [][]C, acc, energyWh func(C) float64) C {
	best := grid[0][0]
	for gs := range grid {
		for gt := range grid[gs] {
			if gs == 0 && gt == 0 {
				continue
			}
			c := grid[gs][gt]
			if acc(c) > acc(best) || (acc(c) == acc(best) && energyWh(c) < energyWh(best)) {
				best = c
			}
		}
	}
	return best
}

// GammaRegime is one harvest regime of the Γ-schedule search: a named
// fresh-trace constructor. The constructor is called once per grid cell —
// stateful traces (Markov chains) must be built fresh (or Reset) per cell
// so no chain state leaks between cells; sim.Run additionally rejects any
// fleet consumed by a prior run.
type GammaRegime struct {
	Name string
	// Trace builds a fresh trace for one cell. meanTrainWh is the fleet's
	// mean per-round training cost, the natural unit for trace magnitudes.
	Trace func(o Options, meanTrainWh float64) (harvest.Trace, error)
}

// GammaGridRegimes returns the standard regimes of the harvest-aware
// search: the fixed-budget baseline (zero harvest — the paper's Figure 3
// setting expressed as a dark fleet), the diurnal/solar regime at two
// amplitudes, and the bursty Markov regime at two duty cycles. Sweeping
// amplitude and duty cycle is the point: the selected Γ should move with
// the arrival process, not just with its presence.
func GammaGridRegimes(o Options) []GammaRegime {
	diurnal := func(amp float64) func(Options, float64) (harvest.Trace, error) {
		return func(o Options, mean float64) (harvest.Trace, error) {
			return harvest.NewDiurnal(amp*mean, diurnalPeriod(o.Rounds), harvest.LongitudePhase(o.Nodes))
		}
	}
	markov := func(pOnOff, pOffOn float64) func(Options, float64) (harvest.Trace, error) {
		return func(o Options, mean float64) (harvest.Trace, error) {
			return harvest.NewMarkovOnOff(o.Nodes, 1.2*mean, pOnOff, pOffOn, o.Seed)
		}
	}
	return []GammaRegime{
		{"fixed-budget", func(Options, float64) (harvest.Trace, error) {
			return harvest.Constant{Wh: 0}, nil
		}},
		{"diurnal-lo", diurnal(0.7)},      // dim sun: harvest binds hard
		{"diurnal-hi", diurnal(1.6)},      // bright sun: waste, not supply, binds
		{"markov-lo", markov(0.45, 0.15)}, // duty cycle 0.25: long off spells
		{"markov-hi", markov(0.15, 0.45)}, // duty cycle 0.75: mostly on
	}
}

// gammaGridFleetOptions puts every regime's fleet on the same supercap
// scale: capacity 12 training rounds, three quarters charged at launch.
// Under the fixed-budget regime that initial charge is the entire budget.
func gammaGridFleetOptions() harvest.Options {
	return harvest.Options{CapacityRounds: 12, InitialSoC: 0.75}
}

// gammaGridMinSoC is the shared charge-aware policy threshold. One policy
// across all regimes keeps the comparison clean: any difference in the
// selected schedule is attributable to the arrival process.
const gammaGridMinSoC = 0.2

// GammaHarvestCell is one evaluated (Γtrain, Γsync) point of the
// harvest-coupled search. All fields are comparable, so whole rows can be
// compared with == in reproducibility tests.
type GammaHarvestCell struct {
	GammaTrain, GammaSync int
	FinalAcc              float64 // mean final validation accuracy, %
	Participation         float64 // trained rounds / scheduled train slots, %
	HarvestedWh           float64 // stored ambient energy (sim scale)
	ConsumedWh            float64 // battery drain: train + comm + idle (sim scale)
	WastedWh              float64 // harvest that arrived on full batteries
	// WastedFrac is WastedWh over all arrived energy (stored + wasted); 0
	// when nothing arrived (the fixed-budget regime), never NaN.
	WastedFrac float64
}

// GammaGridResult is the full 4x4 search under one harvest regime.
type GammaGridResult struct {
	Regime string
	Trace  string
	Grid   [][]GammaHarvestCell // Grid[gs-1][gt-1]
	Best   GammaHarvestCell
}

// GammaHarvestRow is one regime's summary line of TableGammaHarvest.
type GammaHarvestRow struct {
	Regime string
	Trace  string
	Best   GammaHarvestCell
}

// gammaWorld bundles the per-table immutable inputs shared by all cells:
// topology, data, and the device fleet shape. Everything here is read-only
// during the grid fan-out.
type gammaWorld struct {
	o           Options
	graph       *graph.Graph
	weights     *graph.Weights
	part        dataset.Partition
	val         *dataset.Dataset
	devices     []energy.Device
	workload    energy.Workload
	meanTrainWh float64
}

// RunGammaGrid evaluates the 4x4 Γ grid under one harvest regime: every
// cell is a full harvest-coupled simulation on a fresh fleet, tuned on the
// validation split like Figure 3. Cells fan out across workers; the result
// is bit-identical at any GOMAXPROCS.
func RunGammaGrid(o Options, regime GammaRegime) (*GammaGridResult, error) {
	o = o.Defaults()
	w, err := newGammaWorld(o)
	if err != nil {
		return nil, err
	}
	return w.runRegime(regime)
}

func newGammaWorld(o Options) (*gammaWorld, error) {
	return newGammaWorldDegree(o, 6)
}

// newGammaWorldDegree builds the shared world on a d-regular topology —
// the degree axis of the degree-coupled grid (TableDegreeGamma). The
// graph fingerprint in each cell manifest covers the degree, so cells
// from different degrees never collide in the cache while identical
// (degree, regime, Γ) cells from overlapping sweeps dedupe.
func newGammaWorldDegree(o Options, degree int) (*gammaWorld, error) {
	g, weights, err := topologyFor(o.Nodes, degree, o.Seed)
	if err != nil {
		return nil, err
	}
	part, val, _, err := cifarLikeData(o)
	if err != nil {
		return nil, err
	}
	workload := energy.CIFAR10Workload()
	return &gammaWorld{
		o:           o,
		graph:       g,
		weights:     weights,
		part:        part,
		val:         val,
		devices:     energy.AssignDevices(o.Nodes, energy.Devices()),
		workload:    workload,
		meanTrainWh: energy.NetworkRoundWh(o.Nodes, energy.Devices(), workload) / float64(o.Nodes),
	}, nil
}

// cellManifest is the content-addressable identity of one (regime, Γt,
// Γs) cell: every Options and regime field that changes the computed bits
// is hashed, so sweep.KeyFromManifest(cellManifest(...)) is a safe cache
// key. Deliberately excluded, because they cannot change the bits:
// FleetEngine (pointer and SoA are pinned bit-identical by
// internal/harvest/difftest — a cell computed on either engine serves
// both), Probe/Out (telemetry is read-only), EvalEvery (cells always run
// with EvalEvery 0), and worker count (GOMAXPROCS is unhashed by design).
func (w *gammaWorld) cellManifest(regime GammaRegime, traceName string, gt, gs int) obs.RunManifest {
	o := w.o
	fo := gammaGridFleetOptions()
	return obs.NewManifest("gammacell", regime.Name, o.Seed).
		Scale(o.Nodes, o.Rounds).
		Set("regime", regime.Name).
		Set("trace", traceName).
		Setf("graph", "%016x", w.graph.Fingerprint()).
		Setf("gamma_train", "%d", gt).
		Setf("gamma_sync", "%d", gs).
		Setf("lr", "%g", o.LR).
		Setf("batch", "%d", o.BatchSize).
		Setf("local_steps", "%d", o.LocalSteps).
		Setf("train_per_node", "%d", o.TrainPerNode).
		Setf("test_samples", "%d", o.TestSamples).
		Setf("noise", "%g", o.Noise).
		Setf("eval_subsample", "%d", o.EvalSubsample).
		Set("policy", "soc-threshold").
		Setf("min_soc", "%g", gammaGridMinSoC).
		Setf("fleet_capacity_rounds", "%g", fo.CapacityRounds).
		Setf("fleet_initial_soc", "%g", fo.InitialSoC).
		Build()
}

func (w *gammaWorld) runRegime(regime GammaRegime) (*GammaGridResult, error) {
	// Sample the trace once for its report name; the sample is discarded and
	// every cell builds its own.
	sample, err := regime.Trace(w.o, w.meanTrainWh)
	if err != nil {
		return nil, fmt.Errorf("experiments: gamma grid %s: %w", regime.Name, err)
	}
	// One run_start/run_end pair per regime; each completed cell emits one
	// cell event. Cells fan out across workers, so cell events arrive in
	// wall-clock order — the probe's sinks are concurrency-safe, and the
	// grid itself stays bit-identical (preallocated slots, no probe inside
	// the per-cell sims).
	p := w.o.Probe
	if p.Enabled() {
		manifest := obs.NewManifest("gammagrid", regime.Name, w.o.Seed).
			Scale(w.o.Nodes, w.o.Rounds).
			Set("trace", sample.Name()).
			Setf("grid", "%dx%d", gammaGridMax, gammaGridMax).
			Setf("graph", "%016x", w.graph.Fingerprint()).
			Setf("lr", "%g", w.o.LR).
			Setf("batch", "%d", w.o.BatchSize).
			Setf("local_steps", "%d", w.o.LocalSteps).
			Build()
		p.RunStart(&manifest)
	}
	// Keys only exist when a sweep runner is attached: keyed cells cache
	// under their content hash, unkeyed grids behave exactly as before.
	var key func(gt, gs int) sweep.CellKey
	if w.o.Sweep != nil {
		traceName := sample.Name()
		key = func(gt, gs int) sweep.CellKey {
			return sweep.KeyFromManifest(w.cellManifest(regime, traceName, gt, gs))
		}
	}
	grid, err := gammaCells(w.o.Sweep, key, func(gt, gs int) (GammaHarvestCell, error) {
		start := time.Now()
		cell, err := w.runCell(regime, gt, gs)
		if err == nil && p.Enabled() {
			p.Emit(obs.Event{
				Kind: obs.KindCell, Round: -1, Node: -1,
				Label:  fmt.Sprintf("%s Γt=%d Γs=%d", regime.Name, gt, gs),
				WallNs: time.Since(start).Nanoseconds(),
				Value:  cell.FinalAcc,
			})
		}
		return cell, err
	})
	if err != nil {
		return nil, err
	}
	p.RunEnd(gammaGridMax*gammaGridMax, 0)
	return &GammaGridResult{
		Regime: regime.Name,
		Trace:  sample.Name(),
		Grid:   grid,
		Best: bestGammaCell(grid,
			func(c GammaHarvestCell) float64 { return c.FinalAcc },
			func(c GammaHarvestCell) float64 { return c.ConsumedWh }),
	}, nil
}

func (w *gammaWorld) runCell(regime GammaRegime, gt, gs int) (GammaHarvestCell, error) {
	o := w.o
	fail := func(err error) (GammaHarvestCell, error) {
		return GammaHarvestCell{}, fmt.Errorf("experiments: gamma grid %s Γt=%d Γs=%d: %w", regime.Name, gt, gs, err)
	}
	gamma, err := core.NewGamma(gt, gs)
	if err != nil {
		return fail(err)
	}
	trace, err := regime.Trace(o, w.meanTrainWh)
	if err != nil {
		return fail(err)
	}
	fleet, err := harvest.NewEngine(o.FleetEngine, w.devices, w.workload, trace, gammaGridFleetOptions())
	if err != nil {
		return fail(err)
	}
	policy, err := harvest.NewSoCThreshold(gammaGridMinSoC)
	if err != nil {
		return fail(err)
	}
	res, err := sim.Run(sim.Config{
		Graph: w.graph, Weights: w.weights,
		Algo:         core.Algorithm{Label: regime.Name + "/" + gamma.Name(), Schedule: gamma, Policy: policy},
		Rounds:       o.Rounds,
		ModelFactory: modelFactory(32, 10),
		LR:           o.LR, BatchSize: o.BatchSize, LocalSteps: o.LocalSteps,
		Partition: w.part, Test: w.val, // tuned on the validation split
		EvalEvery: 0, EvalSubsample: o.EvalSubsample,
		Devices: w.devices, Workload: w.workload,
		Harvest: fleet,
		Seed:    o.Seed,
	})
	if err != nil {
		return fail(err)
	}
	trained := 0
	for _, tr := range res.TrainedRounds {
		trained += tr
	}
	slots := core.CountTrainRounds(gamma, o.Rounds)
	arrived := res.TotalHarvestWh + res.TotalWastedWh
	wastedFrac := 0.0
	if arrived > 0 {
		wastedFrac = res.TotalWastedWh / arrived
	}
	return GammaHarvestCell{
		GammaTrain: gt, GammaSync: gs,
		FinalAcc:      res.FinalMeanAcc * 100,
		Participation: 100 * float64(trained) / float64(o.Nodes*slots),
		HarvestedWh:   res.TotalHarvestWh,
		ConsumedWh:    fleet.ConsumedWh(),
		WastedWh:      res.TotalWastedWh,
		WastedFrac:    wastedFrac,
	}, nil
}

// TableGammaHarvest runs the harvest-aware Γ-schedule search over all
// standard regimes and renders one validation-accuracy heatmap per regime
// (best cell starred) plus the per-regime summary table. Rows are
// bit-identical at any GOMAXPROCS: cells write preallocated slots and all
// stochastic state is per-node.
func TableGammaHarvest(o Options) ([]GammaHarvestRow, error) {
	o = o.Defaults()
	w, err := newGammaWorld(o)
	if err != nil {
		return nil, err
	}
	var rows []GammaHarvestRow
	for _, regime := range GammaGridRegimes(o) {
		res, err := w.runRegime(regime)
		if err != nil {
			return nil, err
		}
		res.Render(o.Out)
		rows = append(rows, GammaHarvestRow{Regime: res.Regime, Trace: res.Trace, Best: res.Best})
	}
	RenderGammaHarvestRows(o.Out, rows)
	return rows, nil
}

// RenderGammaHarvestRows writes the per-regime summary table. It is
// shared by TableGammaHarvest and the gridsearch client, which receives
// rows from a sweep server and renders them locally.
func RenderGammaHarvestRows(out io.Writer, rows []GammaHarvestRow) {
	tb := report.NewTable("Harvest-aware Γ-schedule search: best (Γtrain, Γsync) per regime (sim scale)",
		"Regime", "Trace", "Γt", "Γs", "Acc %", "Particip %", "Harvested Wh", "Consumed Wh", "Wasted %")
	for _, r := range rows {
		tb.AddRowf("%s|%s|%d|%d|%.2f|%.1f|%.4f|%.4f|%.1f",
			r.Regime, r.Trace, r.Best.GammaTrain, r.Best.GammaSync, r.Best.FinalAcc,
			r.Best.Participation, r.Best.HarvestedWh, r.Best.ConsumedWh, 100*r.Best.WastedFrac)
	}
	tb.Render(out)
}

// Render writes the regime's validation-accuracy heatmap (best cell
// starred) and the best-cell summary line.
func (r *GammaGridResult) Render(out io.Writer) {
	rowNames := []string{"1", "2", "3", "4"}
	h := &report.Heatmap{
		Title:    fmt.Sprintf("Γ grid under %s (%s): validation accuracy [%%]", r.Regime, r.Trace),
		RowLabel: "Γs", ColLabel: "Γt",
		RowNames: rowNames, ColNames: rowNames,
		Cells:          make([][]float64, gammaGridMax),
		HigherIsBetter: true,
	}
	for gs := 0; gs < gammaGridMax; gs++ {
		h.Cells[gs] = make([]float64, gammaGridMax)
		for gt := 0; gt < gammaGridMax; gt++ {
			h.Cells[gs][gt] = r.Grid[gs][gt].FinalAcc
		}
	}
	h.SetMark(r.Best.GammaSync-1, r.Best.GammaTrain-1)
	h.Render(out)
	fmt.Fprintf(out, "best: Γtrain=%d Γsync=%d (%.1f%%, harvested %.4f Wh, consumed %.4f Wh, wasted %.1f%%)\n\n",
		r.Best.GammaTrain, r.Best.GammaSync, r.Best.FinalAcc,
		r.Best.HarvestedWh, r.Best.ConsumedWh, 100*r.Best.WastedFrac)
}
