package experiments

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"

	"repro/internal/harvest"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// TestSweepCacheCrossEngineBitIdentical is the cache-correctness
// differential: a grid computed cold on the pointer fleet, the same grid
// served entirely from cache to the SoA fleet, and the same grid computed
// fresh on the SoA fleet must agree bit-for-bit, cell by cell and as JSON
// bytes. This is what licenses excluding FleetEngine from the cell key —
// the engines are pinned bit-identical by internal/harvest/difftest, so a
// cached cell serves both. (Forced-revision invalidation is pinned at the
// sweep layer: see sweep.TestGridRevisionChangeInvalidates.)
func TestSweepCacheCrossEngineBitIdentical(t *testing.T) {
	o := tiny()
	o.Rounds = 8
	regime := GammaGridRegimes(o)[3] // markov-lo: stateful trace, hardest case

	store := sweep.NewMemStore(0)
	runGrid := func(engine string, st sweep.Store) (*GammaGridResult, sweep.Stats) {
		oo := o
		oo.FleetEngine = engine
		r := sweep.NewRunner(st, nil)
		oo.Sweep = r
		res, err := RunGammaGrid(oo, regime)
		if err != nil {
			t.Fatal(err)
		}
		return res, r.Stats()
	}

	cold, st := runGrid(harvest.EnginePointer, store)
	if st.Misses != 16 || st.Hits != 0 {
		t.Fatalf("cold pointer run stats %+v", st)
	}
	cached, st := runGrid(harvest.EngineSoA, store)
	if !st.AllHits() || st.Cells != 16 {
		t.Fatalf("soa run against warm cache stats %+v", st)
	}
	fresh, st := runGrid(harvest.EngineSoA, sweep.NewMemStore(0))
	if st.Misses != 16 {
		t.Fatalf("fresh soa run stats %+v", st)
	}

	for gs := range cold.Grid {
		for gt := range cold.Grid[gs] {
			if cold.Grid[gs][gt] != cached.Grid[gs][gt] || cold.Grid[gs][gt] != fresh.Grid[gs][gt] {
				t.Fatalf("cell Γt=%d Γs=%d diverges:\npointer-cold %+v\nsoa-cached  %+v\nsoa-fresh   %+v",
					gt+1, gs+1, cold.Grid[gs][gt], cached.Grid[gs][gt], fresh.Grid[gs][gt])
			}
		}
	}
	enc := func(r *GammaGridResult) string {
		b, err := json.Marshal(r.Grid)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if enc(cold) != enc(cached) || enc(cold) != enc(fresh) {
		t.Fatal("grid JSON bytes differ between cached and computed paths")
	}
}

// A warm rerun of the full TableGammaHarvest recomputes nothing: every one
// of the 80 cells is served from the cache and the rows are identical.
func TestSweepWarmTableGammaHarvestAllHits(t *testing.T) {
	o := tiny()
	o.Rounds = 8
	store := sweep.NewMemStore(0)

	o.Sweep = sweep.NewRunner(store, nil)
	cold, err := TableGammaHarvest(o)
	if err != nil {
		t.Fatal(err)
	}
	if st := o.Sweep.Stats(); st.Misses != 80 || st.Hits != 0 {
		t.Fatalf("cold table stats %+v", st)
	}

	o.Sweep = sweep.NewRunner(store, nil)
	warm, err := TableGammaHarvest(o)
	if err != nil {
		t.Fatal(err)
	}
	if st := o.Sweep.Stats(); !st.AllHits() || st.Cells != 80 {
		t.Fatalf("warm table stats %+v", st)
	}
	for i := range cold {
		if cold[i] != warm[i] {
			t.Fatalf("row %d differs warm vs cold:\n%+v\n%+v", i, warm[i], cold[i])
		}
	}

	// And without a runner the table still matches: the sweep path is an
	// overlay, not a fork.
	o.Sweep = nil
	plain, err := TableGammaHarvest(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold {
		if cold[i] != plain[i] {
			t.Fatalf("row %d differs with sweep detached:\n%+v\n%+v", i, plain[i], cold[i])
		}
	}
}

// The sweep probe narrates cell outcomes: a cold grid streams 16 "miss"
// cell events, a warm rerun 16 "hit" events — without perturbing values.
func TestSweepProbeStreamsCellVerdicts(t *testing.T) {
	o := tiny()
	o.Rounds = 8
	regime := GammaGridRegimes(o)[0]
	store := sweep.NewMemStore(0)

	count := func(mem *obs.MemorySink, prefix string) int {
		n := 0
		for _, ev := range mem.Events() {
			if ev.Kind == obs.KindCell && strings.HasPrefix(ev.Label, prefix) {
				n++
			}
		}
		return n
	}
	run := func() *obs.MemorySink {
		mem := obs.NewMemory()
		o.Sweep = sweep.NewRunner(store, nil).Scope(obs.NewProbe(mem))
		if _, err := RunGammaGrid(o, regime); err != nil {
			t.Fatal(err)
		}
		return mem
	}
	if mem := run(); count(mem, "miss ") != 16 {
		t.Fatalf("cold run streamed %d miss events, want 16", count(mem, "miss "))
	}
	if mem := run(); count(mem, "hit ") != 16 {
		t.Fatalf("warm run streamed %d hit events, want 16", count(mem, "hit "))
	}
}

func TestTableDegreeGammaStructure(t *testing.T) {
	o := tiny()
	o.Rounds = 8
	var sb strings.Builder
	o.Out = &sb
	o.Sweep = sweep.NewRunner(sweep.NewMemStore(0), nil)
	res, err := TableDegreeGamma(o, []int{4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Degrees) != 2 || len(res.Regimes) != len(GammaGridRegimes(o)) {
		t.Fatalf("axes %v x %v", res.Degrees, res.Regimes)
	}
	if st := o.Sweep.Stats(); st.Misses != 2*len(res.Regimes)*16 {
		t.Fatalf("degree grid stats %+v, want one miss per simulation", st)
	}
	for di := range res.Best {
		if len(res.Best[di]) != len(res.Regimes) {
			t.Fatalf("row %d has %d cells", di, len(res.Best[di]))
		}
		for ri, c := range res.Best[di] {
			if c.GammaTrain < 1 || c.GammaTrain > 4 || c.GammaSync < 1 || c.GammaSync > 4 {
				t.Fatalf("best cell [%d][%d] outside grid: %+v", di, ri, c)
			}
		}
	}
	if res.TopologyDistinct < 1 || res.ArrivalDistinct < 1 {
		t.Fatalf("distinct counts below 1: %+v", res)
	}
	switch res.Dominant {
	case "arrival", "topology", "neither":
	default:
		t.Fatalf("dominant verdict %q", res.Dominant)
	}
	out := sb.String()
	if !strings.Contains(out, "Degree-coupled harvest grid") || !strings.Contains(out, "dominates schedule choice") {
		t.Fatalf("table or verdict not rendered:\n%s", out)
	}
}

// The degree-6 column of the degree grid shares cells bit-for-bit with the
// plain Γ search: running TableDegreeGamma after TableGammaHarvest on one
// store serves the whole degree-6 column from cache.
func TestTableDegreeGammaSharesDegreeSixCells(t *testing.T) {
	o := tiny()
	o.Rounds = 8
	store := sweep.NewMemStore(0)

	o.Sweep = sweep.NewRunner(store, nil)
	rows, err := TableGammaHarvest(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Sweep = sweep.NewRunner(store, nil)
	res, err := TableDegreeGamma(o, []int{4, 6})
	if err != nil {
		t.Fatal(err)
	}
	st := o.Sweep.Stats()
	nReg := len(res.Regimes)
	if st.Hits != nReg*16 || st.Misses != nReg*16 {
		t.Fatalf("degree grid after Γ search: stats %+v, want the degree-6 half served from cache", st)
	}
	// The shared column selects the same winners.
	for ri := range res.Regimes {
		if res.Best[1][ri] != rows[ri].Best {
			t.Fatalf("degree-6 best for %s differs from TableGammaHarvest: %+v vs %+v",
				res.Regimes[ri], res.Best[1][ri], rows[ri].Best)
		}
	}
}

// TestSweepServiceDegreeGridEndToEnd drives the degree grid through the
// real service: a client submits JobDegreeGrid over TCP, progress events
// stream back per cell, the reply decodes into a DegreeGammaResult that
// renders locally, and a warm resubmission is served entirely from cache.
func TestSweepServiceDegreeGridEndToEnd(t *testing.T) {
	srv, err := sweep.NewServer("127.0.0.1:0", sweep.NewMemStore(0), nil)
	if err != nil {
		t.Skipf("cannot open localhost sockets in this environment: %v", err)
	}
	RegisterSweepHandlers(srv)
	go srv.Serve()
	defer srv.Close()

	c, err := sweep.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	o := tiny()
	params := SweepJobParams{Nodes: o.Nodes, Rounds: 8, Seed: o.Seed, Degrees: []int{4, 6}}
	var progress int
	raw, stats, err := c.Do(JobDegreeGrid, params, func(ev obs.Event) {
		if ev.Kind == obs.KindCell {
			progress++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * len(GammaGridRegimes(Options{})) * 16
	if stats.Misses != want || progress != want {
		t.Fatalf("cold job: stats %+v, %d progress events, want %d cells", stats, progress, want)
	}
	var res DegreeGammaResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Best) != 2 || res.Dominant == "" {
		t.Fatalf("decoded result %+v", res)
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "Degree-coupled harvest grid") {
		t.Fatalf("client-side render failed:\n%s", sb.String())
	}

	// Identical params reconstruct identical Options on the server, so a
	// resubmission is served entirely from the shared cache.
	_, stats, err = c.Do(JobDegreeGrid, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AllHits() {
		t.Fatalf("warm resubmission stats %+v", stats)
	}
}

// TestTableDegreeGammaReproducibleAcrossGOMAXPROCS extends the grid
// bit-identity pin to the degree axis.
func TestTableDegreeGammaReproducibleAcrossGOMAXPROCS(t *testing.T) {
	run := func(procs int) *DegreeGammaResult {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		o := tiny()
		o.Rounds = 8
		res, err := TableDegreeGamma(o, []int{4, 6})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	for di := range a.Best {
		for ri := range a.Best[di] {
			if a.Best[di][ri] != b.Best[di][ri] {
				t.Fatalf("best[%d][%d] differs across GOMAXPROCS:\n%+v\n%+v",
					di, ri, a.Best[di][ri], b.Best[di][ri])
			}
		}
	}
	if a.Dominant != b.Dominant {
		t.Fatalf("verdict differs: %q vs %q", a.Dominant, b.Dominant)
	}
}
