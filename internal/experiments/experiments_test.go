package experiments

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
)

// tiny returns fast options for unit tests; benches use bigger scales.
func tiny() Options {
	return Options{
		Nodes: 16, Rounds: 20, Seed: 7,
		LocalSteps: 3, BatchSize: 8, TrainPerNode: 24,
		TestSamples: 240, EvalEvery: 5, EvalSubsample: 120,
	}
}

func TestFigure1Shape(t *testing.T) {
	res, err := Figure1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DPSGD.Y) == 0 || len(res.AllReduce.Y) == 0 {
		t.Fatal("empty series")
	}
	// Both must learn beyond chance (10 classes).
	if last(res.DPSGD.Y) < 15 || last(res.AllReduce.Y) < 15 {
		t.Fatalf("no learning: dpsgd %.1f, allreduce %.1f", last(res.DPSGD.Y), last(res.AllReduce.Y))
	}
	// The paper's core observation: the all-reduced model is at least as
	// good as the D-PSGD node average (allow small tolerance at tiny scale).
	if res.FinalGap < -3 {
		t.Fatalf("all-reduce gap %.2f pp; should not be clearly negative", res.FinalGap)
	}
}

func TestFigure2Renders(t *testing.T) {
	var sb strings.Builder
	o := tiny()
	o.Out = &sb
	if err := Figure2(o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 2a", "Figure 2b", "Figure 2c", "train", "sync"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure 2 output missing %q:\n%s", want, out)
		}
	}
	// 2c must show at least one skipped (sync) slot inside a coordinated
	// train round for the low-budget node.
	lines := strings.Split(out, "\n")
	var c0 string
	for i, l := range lines {
		if strings.Contains(l, "Figure 2c") && i+1 < len(lines) {
			c0 = lines[i+1]
		}
	}
	if !strings.Contains(c0, "sync") {
		t.Fatalf("constrained node 0 (budget 2) never skipped:\n%s", c0)
	}
}

func TestFigure3GridAndEnergy(t *testing.T) {
	o := tiny()
	o.Rounds = 12
	res, err := Figure3(o, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Grid) != 1 || len(res.Grid[0]) != 4 || len(res.Grid[0][0]) != 4 {
		t.Fatal("grid shape wrong")
	}
	// The energy heatmap is exact at paper scale: check the published
	// Figure 3 values (Wh over 1000 rounds, 256 nodes).
	cases := map[[2]int]float64{
		{1, 1}: 755, {1, 2}: 504, {1, 3}: 378, {1, 4}: 302,
		{2, 1}: 1007, {2, 2}: 755, {3, 2}: 906, {4, 4}: 755,
		{4, 2}: 1009, {4, 1}: 1208, {3, 3}: 757, {4, 3}: 864,
	}
	for k, wantWh := range cases {
		got := res.EnergyCell(k[0], k[1])
		if math.Abs(got-wantWh) > 1.5 {
			t.Fatalf("energy cell Γt=%d Γs=%d: %.1f Wh, paper shows %.0f", k[0], k[1], got, wantWh)
		}
	}
	// Best cell must be a real cell.
	if res.Best[0].GammaTrain < 1 || res.Best[0].GammaTrain > 4 {
		t.Fatalf("best cell invalid: %+v", res.Best[0])
	}
}

func TestFigure3EnergyMonotoneInGammaTrain(t *testing.T) {
	o := tiny()
	o.Rounds = 8
	res, err := Figure3(o, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	// Fixing Γsync, energy grows with Γtrain (paper Section 4.3).
	for gs := 1; gs <= 4; gs++ {
		for gt := 2; gt <= 4; gt++ {
			if res.EnergyCell(gt, gs) <= res.EnergyCell(gt-1, gs) {
				t.Fatalf("energy not increasing in Γtrain at Γs=%d", gs)
			}
		}
	}
}

func TestFigure4Sawtooth(t *testing.T) {
	o := tiny()
	o.Rounds = 48
	res, err := Figure4(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 8 {
		t.Fatalf("too few points: %d", len(res.Points))
	}
	var haveTrain, haveSync bool
	for _, p := range res.Points {
		if p.Kind == core.RoundTrain {
			haveTrain = true
		} else {
			haveSync = true
		}
	}
	if !haveTrain || !haveSync {
		t.Fatal("figure 4 window must contain both round kinds")
	}
	// The paper's sawtooth: accuracy rises entering sync rounds relative to
	// train rounds.
	if res.MeanDeltaIntoSync <= res.MeanDeltaIntoTrain {
		t.Fatalf("sawtooth inverted: Δsync=%.3f <= Δtrain=%.3f",
			res.MeanDeltaIntoSync, res.MeanDeltaIntoTrain)
	}
}

func TestFigure5EnergyRatioAndOrdering(t *testing.T) {
	o := tiny()
	o.Rounds = 32
	res, err := Figure5(o, []int{6}, []string{"cifar"})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Arm("D-PSGD", "cifar", 6)
	s := res.Arm("SkipTrain", "cifar", 6)
	if d == nil || s == nil {
		t.Fatal("missing arms")
	}
	// Γ=(4,4) for 6-regular: SkipTrain uses exactly half the energy.
	if math.Abs(s.PaperEnergyWh-d.PaperEnergyWh/2) > 1 {
		t.Fatalf("energy: SkipTrain %.1f vs D-PSGD %.1f (want half)", s.PaperEnergyWh, d.PaperEnergyWh)
	}
	if math.Abs(d.PaperEnergyWh-1510.04) > 0.1 {
		t.Fatalf("D-PSGD paper energy %.2f, want 1510.04", d.PaperEnergyWh)
	}
	// SkipTrain should not lose accuracy (paper: it gains ~6pp on CIFAR).
	if s.FinalAcc < d.FinalAcc-2 {
		t.Fatalf("SkipTrain %.2f%% clearly below D-PSGD %.2f%%", s.FinalAcc, d.FinalAcc)
	}
}

func TestFigure5FEMNISTArm(t *testing.T) {
	o := tiny()
	o.Rounds = 16
	res, err := Figure5(o, []int{6}, []string{"femnist"})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Arm("SkipTrain", "femnist", 6)
	if s == nil {
		t.Fatal("missing femnist arm")
	}
	if math.Abs(s.PaperEnergyWh-7457.2) > 1 {
		t.Fatalf("femnist SkipTrain energy %.1f, paper 7457.19", s.PaperEnergyWh)
	}
}

func TestFigure5RejectsUnknownDataset(t *testing.T) {
	if _, err := Figure5(tiny(), []int{4}, []string{"imagenet"}); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestFigure6ConstrainedOrdering(t *testing.T) {
	o := tiny()
	o.Rounds = 32
	res, err := Figure6(o, []int{6}, []string{"cifar"})
	if err != nil {
		t.Fatal(err)
	}
	sc := res.Arm("SkipTrain-constrained", "cifar", 6)
	gr := res.Arm("Greedy", "cifar", 6)
	dp := res.Arm("D-PSGD", "cifar", 6)
	if sc == nil || gr == nil || dp == nil {
		t.Fatal("missing constrained arms")
	}
	// Budgeted algorithms consume less than unconstrained D-PSGD.
	if sc.ConsumedWh >= dp.ConsumedWh || gr.ConsumedWh >= dp.ConsumedWh {
		t.Fatalf("budgets not binding: sc=%.1f gr=%.1f dp=%.1f",
			sc.ConsumedWh, gr.ConsumedWh, dp.ConsumedWh)
	}
	// The headline result's direction: the constrained variant is at least
	// competitive with Greedy (paper: beats it by up to 9pp).
	if sc.FinalAcc < gr.FinalAcc-3 {
		t.Fatalf("SkipTrain-constrained %.2f%% well below Greedy %.2f%%", sc.FinalAcc, gr.FinalAcc)
	}
}

func TestFigure6BudgetsRespectedPerNode(t *testing.T) {
	o := tiny()
	o.Rounds = 24
	res, err := Figure6(o, []int{4}, []string{"cifar"})
	if err != nil {
		t.Fatal(err)
	}
	gr := res.Arm("Greedy", "cifar", 4)
	budget := scaledBudgets(o.Nodes, o.Rounds, PaperRoundsCIFAR, energy.CIFAR10Workload(), 0.10)
	for i, tr := range gr.TrainedRounds {
		if tr > budget.Initial(i) {
			t.Fatalf("greedy node %d trained %d rounds with budget %d", i, tr, budget.Initial(i))
		}
	}
}

func TestFigure7Renders(t *testing.T) {
	var sb strings.Builder
	o := tiny()
	o.Out = &sb
	if err := Figure7(o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "CIFAR-like") || !strings.Contains(out, "FEMNIST-like") {
		t.Fatalf("figure 7 output incomplete:\n%s", out)
	}
}

func TestTable1Renders(t *testing.T) {
	var sb strings.Builder
	o := tiny()
	o.Out = &sb
	Table1(o)
	for _, want := range []string{"89834", "1690046", "0.1", "1000", "3000"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("table 1 missing %q:\n%s", want, sb.String())
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows := Table2(tiny())
	if len(rows) != 4 {
		t.Fatalf("%d devices", len(rows))
	}
	wantBudget := map[string][2]int{
		"Xiaomi 12 Pro":            {272, 413},
		"Samsung Galaxy S22 Ultra": {324, 492},
		"OnePlus Nord 2 5G":        {681, 1034},
		"Xiaomi Poco X3":           {272, 413},
	}
	for _, r := range rows {
		w := wantBudget[r.Device]
		if r.CIFARRounds != w[0] || r.FEMNISTRounds != w[1] {
			t.Fatalf("%s budgets (%d,%d), paper (%d,%d)", r.Device, r.CIFARRounds, r.FEMNISTRounds, w[0], w[1])
		}
	}
}

func TestTable3EnergiesExact(t *testing.T) {
	rows := Table3(tiny(), nil)
	find := func(algo, ds string) Table3Row {
		for _, r := range rows {
			if r.Algo == algo && r.Dataset == ds {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", algo, ds)
		return Table3Row{}
	}
	type check struct {
		algo, ds string
		deg      int
		wh       float64
	}
	// The exact published Table 3 energy values.
	for _, c := range []check{
		{"SkipTrain", "cifar", 6, 755.02},
		{"SkipTrain", "cifar", 8, 756.53},
		{"SkipTrain", "cifar", 10, 1008.71},
		{"D-PSGD", "cifar", 6, 1510.04},
		{"D-PSGD", "cifar", 8, 1510.04},
		{"D-PSGD", "cifar", 10, 1510.04},
		{"SkipTrain", "femnist", 6, 7457.19},
		{"SkipTrain", "femnist", 8, 7457.19},
		{"SkipTrain", "femnist", 10, 9942.92},
		{"D-PSGD", "femnist", 6, 14914.38},
	} {
		got := find(c.algo, c.ds).EnergyWh[c.deg]
		if math.Abs(got-c.wh) > 0.15 {
			t.Fatalf("%s/%s d=%d: %.2f Wh, paper %.2f", c.algo, c.ds, c.deg, got, c.wh)
		}
	}
}

func TestTable4FromFigure6(t *testing.T) {
	o := tiny()
	o.Rounds = 24
	fig6, err := Figure6(o, []int{6}, []string{"cifar"})
	if err != nil {
		t.Fatal(err)
	}
	rows := Table4(o, fig6)
	var sc, dp Table4Row
	for _, r := range rows {
		if r.Dataset != "cifar" {
			continue
		}
		switch r.Algo {
		case "SkipTrain-constrained":
			sc = r
		case "D-PSGD":
			dp = r
		}
	}
	if sc.EnergyWh == nil || dp.EnergyWh == nil {
		t.Fatal("table 4 rows missing")
	}
	// D-PSGD is reported at the equal-energy point: not above the
	// constrained budget (plus one evaluation interval of slack).
	if dp.EnergyWh[6] > sc.EnergyWh[6]*1.5 && dp.EnergyWh[6] > 1 {
		t.Fatalf("D-PSGD equal-energy point %.1f far above budget %.1f",
			dp.EnergyWh[6], sc.EnergyWh[6])
	}
}

func TestAccuracyAtEnergy(t *testing.T) {
	s := Series{X: []float64{10, 20, 30}, Y: []float64{1, 2, 3}}
	acc, e := accuracyAtEnergy(s, 25)
	if acc != 2 || e != 20 {
		t.Fatalf("accuracyAtEnergy = %v @ %v", acc, e)
	}
	acc, e = accuracyAtEnergy(s, 5)
	if acc != 1 || e != 10 {
		t.Fatalf("below-first point = %v @ %v", acc, e)
	}
	if a, _ := accuracyAtEnergy(Series{}, 5); a != 0 {
		t.Fatal("empty series should give 0")
	}
}

func TestSummaryHeadlineRenders(t *testing.T) {
	var sb strings.Builder
	o := tiny()
	o.Out = &sb
	t3 := Table3(o, nil)
	SummaryHeadline(o, t3, nil)
	if !strings.Contains(sb.String(), "energy ratio") {
		t.Fatalf("headline missing:\n%s", sb.String())
	}
}

func TestGammaForDegreeMatchesSection43(t *testing.T) {
	if g := gammaForDegree(6); g.GammaTrain != 4 || g.GammaSync != 4 {
		t.Fatal("6-regular should be (4,4)")
	}
	if g := gammaForDegree(8); g.GammaTrain != 3 || g.GammaSync != 3 {
		t.Fatal("8-regular should be (3,3)")
	}
	if g := gammaForDegree(10); g.GammaTrain != 4 || g.GammaSync != 2 {
		t.Fatal("10-regular should be (4,2)")
	}
}

func TestScaledBudgetsProfile(t *testing.T) {
	b := scaledBudgets(8, 100, 1000, energy.CIFAR10Workload(), 0.10)
	// tau values 272,324,681,272 scaled by 100/1000 -> 27,32,68,27.
	want := []int{27, 32, 68, 27, 27, 32, 68, 27}
	for i, w := range want {
		if b.Initial(i) != w {
			t.Fatalf("node %d budget %d, want %d", i, b.Initial(i), w)
		}
	}
}

func last(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}

func TestTimeToAccuracy(t *testing.T) {
	o := tiny()
	o.Rounds = 32
	res, err := Figure5(o, []int{6}, []string{"cifar"})
	if err != nil {
		t.Fatal(err)
	}
	tta := res.TimeTo(15) // well below final accuracy: must be reached
	if len(tta) != 2 {
		t.Fatalf("arms = %d", len(tta))
	}
	for _, x := range tta {
		if x.Round <= 0 {
			t.Fatalf("%s: round-to-15%% = %v", x.Algo, x.Round)
		}
		if x.Wh < 0 {
			t.Fatalf("%s: energy-to-15%% = %v", x.Algo, x.Wh)
		}
	}
	// Unreachable target: all -1.
	for _, x := range res.TimeTo(101) {
		if x.Round != -1 || x.Wh != -1 {
			t.Fatal("unreachable target must report -1")
		}
	}
}

func TestTableHarvestScenarios(t *testing.T) {
	var sb strings.Builder
	o := tiny()
	o.Rounds = 24
	o.Out = &sb
	rows, err := TableHarvest(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d scenarios, want 4", len(rows))
	}
	byName := map[string]HarvestRow{}
	for _, r := range rows {
		byName[r.Scenario] = r
		if r.Participation < 0 || r.Participation > 100 {
			t.Fatalf("%s participation %.1f%% out of range", r.Scenario, r.Participation)
		}
		if r.MeanFinalSoC < 0 || r.MeanFinalSoC > 1 {
			t.Fatalf("%s mean SoC %v out of range", r.Scenario, r.MeanFinalSoC)
		}
	}
	dark := byName["dark (no recharge)"]
	if dark.HarvestedWh != 0 {
		t.Fatalf("dark scenario harvested %v Wh", dark.HarvestedWh)
	}
	// Recharging scenarios must sustain more participation than the dark
	// baseline, which burns its half-full battery and stops.
	for _, name := range []string{"trickle charger", "solar diurnal", "bursty markov"} {
		r := byName[name]
		if r.HarvestedWh <= 0 {
			t.Fatalf("%s harvested nothing", name)
		}
		if r.Participation <= dark.Participation {
			t.Fatalf("%s participation %.1f%% not above dark baseline %.1f%%",
				name, r.Participation, dark.Participation)
		}
	}
	if !strings.Contains(sb.String(), "Harvesting scenarios") {
		t.Fatalf("table not rendered:\n%s", sb.String())
	}
}

func TestTableHarvestDeterministic(t *testing.T) {
	o := tiny()
	o.Rounds = 16
	a, err := TableHarvest(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TableHarvest(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scenario %d differs across identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestTableBrownoutScenarios(t *testing.T) {
	var sb strings.Builder
	o := tiny()
	o.Rounds = 24
	o.Out = &sb
	rows, err := TableBrownout(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4 (2 regimes x 2 modes)", len(rows))
	}
	byKey := map[string]BrownoutRow{}
	for _, r := range rows {
		byKey[r.Regime+"/"+r.Mode] = r
		if r.MeanLivePct <= 0 || r.MeanLivePct > 100 {
			t.Fatalf("%s/%s live share %.1f%% out of range", r.Regime, r.Mode, r.MeanLivePct)
		}
	}
	for _, regime := range []string{"diurnal", "markov"} {
		route := byKey[regime+"/route-through-dead"]
		drop := byKey[regime+"/drop-and-renormalize"]
		if route.DroppedSends != 0 {
			t.Fatalf("%s route mode dropped %d sends", regime, route.DroppedSends)
		}
		// The comparison is only meaningful if brown-outs happen and the
		// drop mode actually loses messages over those dead edges.
		if drop.MinLive >= o.Nodes {
			t.Fatalf("%s never browned a node out", regime)
		}
		if drop.DroppedSends <= 0 {
			t.Fatalf("%s drop mode lost no messages despite brown-outs", regime)
		}
		// Effective degree under dropout cannot exceed the topology degree.
		if drop.MeanLiveDeg > 6 {
			t.Fatalf("%s effective degree %.2f exceeds d=6", regime, drop.MeanLiveDeg)
		}
	}
	if !strings.Contains(sb.String(), "Brown-out communication model") {
		t.Fatalf("table not rendered:\n%s", sb.String())
	}
}

func TestTableHarvestFairnessColumns(t *testing.T) {
	var sb strings.Builder
	o := tiny()
	o.Rounds = 24
	o.Out = &sb
	rows, err := TableHarvest(o)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]HarvestRow{}
	for _, r := range rows {
		byName[r.Scenario] = r
		if r.TrainGini < 0 || r.TrainGini > 1 {
			t.Fatalf("%s Gini %v out of range", r.Scenario, r.TrainGini)
		}
		if r.HarvestAccCorr < -1 || r.HarvestAccCorr > 1 {
			t.Fatalf("%s harvest-accuracy correlation %v out of range", r.Scenario, r.HarvestAccCorr)
		}
	}
	// Dark fleet: every node affords exactly the same number of rounds from
	// its identical (in rounds) initial charge — perfectly equal
	// participation, and no harvest to correlate with.
	dark := byName["dark (no recharge)"]
	if dark.TrainGini != 0 {
		t.Fatalf("dark scenario Gini %v, want 0 (identical budgets)", dark.TrainGini)
	}
	if dark.HarvestAccCorr != 0 {
		t.Fatalf("dark scenario correlation %v, want 0 (constant harvest)", dark.HarvestAccCorr)
	}
	for _, col := range []string{"Train Gini", "Harvest-acc corr"} {
		if !strings.Contains(sb.String(), col) {
			t.Fatalf("fairness column %q not rendered:\n%s", col, sb.String())
		}
	}
}

// TestTableHarvestConstantTraceFairnessDegeneracy pins the table-level
// behavior of the fairness metrics on degenerate inputs: the constant-trace
// regimes (dark fleet: all-zero harvest; trickle charger: identical harvest
// on every node) must report 0 — not NaN — in both fairness columns, and
// the rendered table must contain no NaN cell anywhere.
func TestTableHarvestConstantTraceFairnessDegeneracy(t *testing.T) {
	var sb strings.Builder
	o := tiny()
	o.Rounds = 24
	o.Out = &sb
	rows, err := TableHarvest(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if math.IsNaN(r.TrainGini) || math.IsNaN(r.HarvestAccCorr) {
			t.Fatalf("%s fairness columns NaN: %+v", r.Scenario, r)
		}
	}
	byName := map[string]HarvestRow{}
	for _, r := range rows {
		byName[r.Scenario] = r
	}
	// The dark fleet is the fully degenerate case: the all-zero stored-
	// harvest series and the identical per-node budgets must both collapse
	// to exactly 0 (variance-zero Pearson, zero-total Gini), not NaN. The
	// trickle charger's *stored* harvest can legitimately vary per node
	// (full batteries waste different amounts), so it is only pinned
	// finite above.
	dark := byName["dark (no recharge)"]
	if dark.HarvestAccCorr != 0 || dark.TrainGini != 0 {
		t.Fatalf("dark regime fairness columns not exactly 0: %+v", dark)
	}
	if strings.Contains(sb.String(), "NaN") {
		t.Fatalf("rendered table leaks NaN:\n%s", sb.String())
	}
}

func TestTableRejoinStructure(t *testing.T) {
	var sb strings.Builder
	o := tiny()
	o.Rounds = 24
	o.Out = &sb
	rows, err := TableRejoin(o)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 2 * (2 + len(CatchUpHalfLives))
	if len(rows) != wantRows {
		t.Fatalf("%d rows, want %d (2 regimes x (2 + %d swept half-lives))",
			len(rows), wantRows, len(CatchUpHalfLives))
	}
	byKey := map[string]RejoinRow{}
	for _, r := range rows {
		byKey[r.Regime+"/"+r.Rule] = r
		if r.Revivals == 0 {
			t.Fatalf("%s/%s saw no revivals; the rejoin path never ran", r.Regime, r.Rule)
		}
		if r.MeanStaleness < 1 || r.MaxStaleness < 1 {
			t.Fatalf("%s/%s staleness not recorded: %+v", r.Regime, r.Rule, r)
		}
		if float64(r.MaxStaleness) < r.MeanStaleness {
			t.Fatalf("%s/%s max staleness below mean: %+v", r.Regime, r.Rule, r)
		}
	}
	for _, regime := range []string{"diurnal", "markov"} {
		stale := byKey[regime+"/resume-stale"]
		restoring := []RejoinRow{byKey[regime+"/restore-checkpoint"]}
		for _, h := range CatchUpHalfLives {
			restoring = append(restoring, byKey[fmt.Sprintf("%s/catch-up(h=%g)", regime, h)])
		}
		// The baseline never replaces state; the restoring rules do.
		if stale.Restores != 0 {
			t.Fatalf("%s resume-stale restored %d times", regime, stale.Restores)
		}
		// Rejoin rules only touch parameters, never batteries: the energy
		// trajectory — participation, revivals, staleness — is identical
		// across rules within a regime.
		for _, r := range restoring {
			if r.Restores == 0 {
				t.Fatalf("%s restoring rule %s never restored: %+v", regime, r.Rule, r)
			}
			if r.Participation != stale.Participation || r.Revivals != stale.Revivals ||
				r.MeanStaleness != stale.MeanStaleness || r.DeadShare != stale.DeadShare {
				t.Fatalf("%s: energy trajectory differs across rejoin rules:\n%+v\n%+v", regime, stale, r)
			}
		}
	}
	if !strings.Contains(sb.String(), "Rejoin after brown-out") {
		t.Fatalf("table not rendered:\n%s", sb.String())
	}
}

// TestTableRejoinOrderingAtScale is the acceptance pin for the rejoin
// table: at the table's default scale, restoring rules beat resume-stale
// final accuracy in both regimes — in particular the bursty Markov regime,
// where outage lengths are irregular and staleness is the error source the
// rules exist to remove.
func TestTableRejoinOrderingAtScale(t *testing.T) {
	rows, err := TableRejoin(Options{})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]RejoinRow{}
	for _, r := range rows {
		byKey[r.Regime+"/"+r.Rule] = r
	}
	for _, regime := range []string{"diurnal", "markov"} {
		stale := byKey[regime+"/resume-stale"]
		for _, rule := range []string{"restore-checkpoint", "catch-up(h=2)"} {
			r := byKey[regime+"/"+rule]
			if r.FinalAcc <= stale.FinalAcc {
				t.Fatalf("%s: %s %.2f%% does not beat resume-stale %.2f%%",
					regime, rule, r.FinalAcc, stale.FinalAcc)
			}
		}
	}
}

// TestTableRejoinReproducibleAcrossGOMAXPROCS pins the second half of the
// acceptance criterion: every row is bit-identical at GOMAXPROCS 1 and 8.
func TestTableRejoinReproducibleAcrossGOMAXPROCS(t *testing.T) {
	run := func(procs int) []RejoinRow {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		rows, err := TableRejoin(Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	serial := run(1)
	wide := run(8)
	for i := range serial {
		if serial[i] != wide[i] {
			t.Fatalf("row %d differs across GOMAXPROCS:\n%+v\n%+v", i, serial[i], wide[i])
		}
	}
}

func TestTableForecastStructure(t *testing.T) {
	var sb strings.Builder
	o := tiny()
	o.Rounds = 24
	o.Out = &sb
	rows, err := TableForecast(o)
	if err != nil {
		t.Fatal(err)
	}
	arms := forecastArms()
	if len(rows) != 2*len(arms) {
		t.Fatalf("%d rows, want %d (2 regimes x %d arms)", len(rows), 2*len(arms), len(arms))
	}
	for _, regime := range []string{"diurnal", "markov"} {
		for _, arm := range arms {
			r, ok := ForecastRowFor(rows, regime, arm.name)
			if !ok {
				t.Fatalf("row %s/%s missing", regime, arm.name)
			}
			if r.Participation < 0 || r.Participation > 100 {
				t.Fatalf("%s/%s participation %.1f%% out of range", regime, arm.name, r.Participation)
			}
			if arm.forecaster == nil {
				if r.Forecaster != "-" || r.Horizon != 0 {
					t.Fatalf("reactive arm carries forecast fields: %+v", r)
				}
			} else if r.Forecaster == "-" || r.Horizon < 1 {
				t.Fatalf("MPC arm missing forecast fields: %+v", r)
			}
		}
		// The offline-optimal window is the whole horizon; the day-window
		// arms see one simulated day.
		full, _ := ForecastRowFor(rows, regime, "offline-optimal")
		day, _ := ForecastRowFor(rows, regime, "oracle-mpc")
		if full.Horizon != o.Rounds || day.Horizon != diurnalPeriod(o.Rounds) {
			t.Fatalf("%s windows: offline %d (want %d), oracle %d (want %d)",
				regime, full.Horizon, o.Rounds, day.Horizon, diurnalPeriod(o.Rounds))
		}
	}
	if !strings.Contains(sb.String(), "Forecast-aware participation") {
		t.Fatalf("table not rendered:\n%s", sb.String())
	}
}

// TestTableForecastOrderingAtScale is the acceptance pin for the forecast
// table: at default scale in the diurnal regime, more forecast knowledge
// is never worse — the oracle-fed planner at least matches the learned
// persistence forecast, which at least matches the best reactive SoC rule
// it generalizes (soc-proportional).
func TestTableForecastOrderingAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale forecast table (10 simulations) skipped in -short mode")
	}
	rows, err := TableForecast(Options{})
	if err != nil {
		t.Fatal(err)
	}
	oracle, ok1 := ForecastRowFor(rows, "diurnal", "oracle-mpc")
	persist, ok2 := ForecastRowFor(rows, "diurnal", "persistence-mpc")
	prop, ok3 := ForecastRowFor(rows, "diurnal", "soc-proportional")
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("diurnal rows missing: %+v", rows)
	}
	if oracle.FinalAcc < persist.FinalAcc {
		t.Fatalf("oracle-MPC %.2f%% below persistence-MPC %.2f%%", oracle.FinalAcc, persist.FinalAcc)
	}
	if persist.FinalAcc < prop.FinalAcc {
		t.Fatalf("persistence-MPC %.2f%% below soc-proportional %.2f%%", persist.FinalAcc, prop.FinalAcc)
	}
}

// TestTableForecastReproducibleAcrossGOMAXPROCS pins bit-identity for the
// forecast table — including the persistence arms, whose Observe feedback
// runs serially after each round's battery update.
func TestTableForecastReproducibleAcrossGOMAXPROCS(t *testing.T) {
	run := func(procs int) []ForecastRow {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		o := tiny()
		o.Rounds = 16
		rows, err := TableForecast(o)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	serial := run(1)
	wide := run(8)
	for i := range serial {
		if serial[i] != wide[i] {
			t.Fatalf("row %d differs across GOMAXPROCS:\n%+v\n%+v", i, serial[i], wide[i])
		}
	}
}

// TestTableRejoinCatchUpHalfLifeMovesWithRegime is the half-life sweep's
// acceptance pin: at default scale the accuracy-best CatchUp half-life
// differs between the diurnal and Markov regimes — outage-length
// distributions, not a global constant, set how fast a revived node should
// abandon its own snapshot.
func TestTableRejoinCatchUpHalfLifeMovesWithRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale rejoin sweep (10 simulations) skipped in -short mode")
	}
	rows, err := TableRejoin(Options{})
	if err != nil {
		t.Fatal(err)
	}
	diurnal := BestCatchUpHalfLife(rows, "diurnal")
	markov := BestCatchUpHalfLife(rows, "markov")
	if diurnal == 0 || markov == 0 {
		t.Fatalf("sweep missing catch-up rows: best h diurnal=%g markov=%g", diurnal, markov)
	}
	if diurnal == markov {
		t.Fatalf("best half-life identical (%g) across regimes; rows: %+v", diurnal, rows)
	}
}

// TestTableBrownoutReproducibleAcrossGOMAXPROCS is the acceptance pin for
// the brown-out table: every row — both modes, both regimes — must be
// bit-identical no matter how many workers the engine uses.
func TestTableBrownoutReproducibleAcrossGOMAXPROCS(t *testing.T) {
	run := func(procs int) []BrownoutRow {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		o := tiny()
		o.Rounds = 16
		rows, err := TableBrownout(o)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	serial := run(1)
	wide := run(8)
	for i := range serial {
		if serial[i] != wide[i] {
			t.Fatalf("row %d differs across GOMAXPROCS:\n%+v\n%+v", i, serial[i], wide[i])
		}
	}
}

func TestTableAsyncHarvest(t *testing.T) {
	var sb strings.Builder
	o := tiny()
	o.Rounds = 24
	o.Out = &sb
	rows, err := TableAsyncHarvest(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4 (2 regimes x 2 engines)", len(rows))
	}
	byKey := map[string]AsyncHarvestRow{}
	for _, r := range rows {
		byKey[r.Regime+"/"+r.Engine] = r
		if r.Trained <= 0 {
			t.Fatalf("%s/%s never trained", r.Regime, r.Engine)
		}
		if r.HarvestedWh <= 0 || r.ConsumedWh <= 0 {
			t.Fatalf("%s/%s energy ledgers empty: %+v", r.Regime, r.Engine, r)
		}
		if r.BrownoutShare < 0 || r.BrownoutShare >= 100 {
			t.Fatalf("%s/%s brown-out share %.1f%% out of range", r.Regime, r.Engine, r.BrownoutShare)
		}
	}
	for _, regime := range []string{"diurnal", "markov"} {
		a := byKey[regime+"/async-event"]
		// The event engine must exercise intermittency, not bypass it.
		if a.BrownoutShare <= 0 {
			t.Fatalf("%s async leg saw no outage time", regime)
		}
		if a.Steps < a.Trained {
			t.Fatalf("%s async leg trained %d of only %d steps", regime, a.Trained, a.Steps)
		}
	}
	if !strings.Contains(sb.String(), "Intermittency engines") {
		t.Fatalf("table not rendered:\n%s", sb.String())
	}
}

func TestTableAsyncHarvestReproducibleAcrossGOMAXPROCS(t *testing.T) {
	run := func(procs int) []AsyncHarvestRow {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		o := tiny()
		o.Rounds = 16
		rows, err := TableAsyncHarvest(o)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	serial := run(1)
	wide := run(8)
	for i := range serial {
		if serial[i] != wide[i] {
			t.Fatalf("row %d differs across GOMAXPROCS:\n%+v\n%+v", i, serial[i], wide[i])
		}
	}
}
