package experiments

import (
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestTableGammaHarvestStructure(t *testing.T) {
	var sb strings.Builder
	o := tiny()
	o.Rounds = 16
	o.Out = &sb
	rows, err := TableGammaHarvest(o)
	if err != nil {
		t.Fatal(err)
	}
	regimes := GammaGridRegimes(o)
	if len(rows) != len(regimes) {
		t.Fatalf("%d rows, want %d regimes", len(rows), len(regimes))
	}
	for i, r := range rows {
		if r.Regime != regimes[i].Name {
			t.Fatalf("row %d regime %q, want %q", i, r.Regime, regimes[i].Name)
		}
		b := r.Best
		if b.GammaTrain < 1 || b.GammaTrain > 4 || b.GammaSync < 1 || b.GammaSync > 4 {
			t.Fatalf("%s best cell outside the grid: %+v", r.Regime, b)
		}
		if b.Participation < 0 || b.Participation > 100 {
			t.Fatalf("%s participation %.1f%% out of range", r.Regime, b.Participation)
		}
		if b.WastedFrac < 0 || b.WastedFrac > 1 || math.IsNaN(b.WastedFrac) {
			t.Fatalf("%s wasted fraction %v out of range", r.Regime, b.WastedFrac)
		}
		if b.ConsumedWh <= 0 {
			t.Fatalf("%s consumed nothing", r.Regime)
		}
	}
	// The fixed-budget baseline is the zero-harvest special case: nothing
	// arrives, so nothing is stored or wasted — and the wasted fraction is
	// 0, not NaN (the 0/0 degeneracy the renderer must not leak).
	fixed := rows[0]
	if fixed.Regime != "fixed-budget" {
		t.Fatalf("first regime %q, want fixed-budget", fixed.Regime)
	}
	if fixed.Best.HarvestedWh != 0 || fixed.Best.WastedWh != 0 || fixed.Best.WastedFrac != 0 {
		t.Fatalf("fixed-budget regime harvested/wasted energy: %+v", fixed.Best)
	}
	out := sb.String()
	if !strings.Contains(out, "Harvest-aware Γ-schedule search") {
		t.Fatalf("summary table not rendered:\n%s", out)
	}
	if strings.Contains(out, "NaN") {
		t.Fatalf("rendered output leaks NaN:\n%s", out)
	}
	// One starred heatmap per regime.
	if n := strings.Count(out, "(* marks the selected cell)"); n != len(regimes) {
		t.Fatalf("%d marked heatmaps rendered, want %d:\n%s", n, len(regimes), out)
	}
}

func TestRunGammaGridSingleRegime(t *testing.T) {
	o := tiny()
	o.Rounds = 12
	res, err := RunGammaGrid(o, GammaRegime{
		Name:  "custom",
		Trace: GammaGridRegimes(o)[2].Trace,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Grid) != 4 || len(res.Grid[0]) != 4 {
		t.Fatal("grid shape wrong")
	}
	for gs := 0; gs < 4; gs++ {
		for gt := 0; gt < 4; gt++ {
			c := res.Grid[gs][gt]
			if c.GammaTrain != gt+1 || c.GammaSync != gs+1 {
				t.Fatalf("cell (%d,%d) carries Γ=(%d,%d); slot mixed up",
					gt+1, gs+1, c.GammaTrain, c.GammaSync)
			}
			if c.HarvestedWh <= 0 {
				t.Fatalf("diurnal cell Γt=%d Γs=%d harvested nothing", gt+1, gs+1)
			}
		}
	}
	if res.Trace == "" || !strings.Contains(res.Trace, "diurnal") {
		t.Fatalf("trace name %q", res.Trace)
	}
}

// TestBestGammaCellSeedsFromFirstCell is the regression test for the
// Figure3 best-cell bug: on an all-zero-accuracy grid (tiny horizons) the
// old code kept the zero-value seed and reported Γtrain=0, Γsync=0 at
// 0 Wh as "best". Seeded from the first cell, the tie-break toward lower
// energy must pick the cheapest real cell.
func TestBestGammaCellSeedsFromFirstCell(t *testing.T) {
	grid, err := forEachGammaCell(func(gt, gs int) (Figure3Cell, error) {
		return Figure3Cell{
			GammaTrain: gt, GammaSync: gs,
			ValAcc:        0, // every cell ties at zero accuracy
			PaperEnergyWh: float64(100*gt + gs),
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	best := bestGammaCell(grid,
		func(c Figure3Cell) float64 { return c.ValAcc },
		func(c Figure3Cell) float64 { return c.PaperEnergyWh })
	if best.GammaTrain == 0 || best.GammaSync == 0 {
		t.Fatalf("best is the impossible zero-value cell: %+v", best)
	}
	// Lowest energy among the ties is Γt=1, Γs=1 (energy 101).
	if best.GammaTrain != 1 || best.GammaSync != 1 {
		t.Fatalf("tie-break picked %+v, want the cheapest cell (1,1)", best)
	}
	// With distinct accuracies the maximum wins regardless of energy.
	grid2, err := forEachGammaCell(func(gt, gs int) (Figure3Cell, error) {
		return Figure3Cell{GammaTrain: gt, GammaSync: gs,
			ValAcc: float64(10*gt + gs), PaperEnergyWh: 1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	best2 := bestGammaCell(grid2,
		func(c Figure3Cell) float64 { return c.ValAcc },
		func(c Figure3Cell) float64 { return c.PaperEnergyWh })
	if best2.GammaTrain != 4 || best2.GammaSync != 4 {
		t.Fatalf("max accuracy not selected: %+v", best2)
	}
}

func TestForEachGammaCellSurfacesLowestCellError(t *testing.T) {
	_, err := forEachGammaCell(func(gt, gs int) (Figure3Cell, error) {
		if gs >= 3 {
			return Figure3Cell{}, &cellErr{gt, gs}
		}
		return Figure3Cell{GammaTrain: gt, GammaSync: gs}, nil
	})
	if err == nil {
		t.Fatal("cell error not surfaced")
	}
	if err.Error() != "cell error Γt=1 Γs=3" {
		t.Fatalf("got %v, want the lowest-indexed cell's error", err)
	}
}

type cellErr struct{ gt, gs int }

func (e *cellErr) Error() string { return "cell error Γt=" + itoa(e.gt) + " Γs=" + itoa(e.gs) }

func itoa(n int) string { return string(rune('0' + n)) }

// TestTableGammaHarvestReproducibleAcrossGOMAXPROCS pins the acceptance
// criterion: rows — and the full grids behind them — are bit-identical
// between GOMAXPROCS=1 (the serial path) and GOMAXPROCS=8.
func TestTableGammaHarvestReproducibleAcrossGOMAXPROCS(t *testing.T) {
	run := func(procs int) []GammaHarvestRow {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		o := tiny()
		o.Rounds = 16
		rows, err := TableGammaHarvest(o)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	serial := run(1)
	wide := run(8)
	for i := range serial {
		if serial[i] != wide[i] {
			t.Fatalf("row %d differs across GOMAXPROCS:\n%+v\n%+v", i, serial[i], wide[i])
		}
	}
	// And a full single-regime grid, cell by cell.
	o := tiny()
	o.Rounds = 16
	gridAt := func(procs int) *GammaGridResult {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		res, err := RunGammaGrid(o, GammaGridRegimes(o)[3])
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := gridAt(1), gridAt(8)
	for gs := range a.Grid {
		for gt := range a.Grid[gs] {
			if a.Grid[gs][gt] != b.Grid[gs][gt] {
				t.Fatalf("cell Γt=%d Γs=%d differs across GOMAXPROCS:\n%+v\n%+v",
					gt+1, gs+1, a.Grid[gs][gt], b.Grid[gs][gt])
			}
		}
	}
}

// TestTableGammaHarvestScheduleMovesWithRegime is the headline acceptance
// pin: at default scale the selected (Γtrain, Γsync) differs across at
// least two harvest regimes — the schedule is a function of the arrival
// process, which is the reason the harvest-aware search exists.
func TestTableGammaHarvestScheduleMovesWithRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale grid search (80 simulations) skipped in -short mode")
	}
	rows, err := TableGammaHarvest(Options{})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[[2]int]bool{}
	for _, r := range rows {
		distinct[[2]int{r.Best.GammaTrain, r.Best.GammaSync}] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("every regime selected the same schedule %v; rows: %+v", distinct, rows)
	}
}

// With a probe attached, the grid runner emits one run_start/run_end pair
// and exactly one cell event per grid cell — and the probe must not change
// the computed grid.
func TestGammaGridCellEvents(t *testing.T) {
	o := tiny()
	o.Rounds = 8
	regime := GammaRegime{Name: "probed", Trace: GammaGridRegimes(o)[1].Trace}
	plain, err := RunGammaGrid(o, regime)
	if err != nil {
		t.Fatal(err)
	}
	mem := obs.NewMemory()
	o.Probe = obs.NewProbe(mem)
	probed, err := RunGammaGrid(o, regime)
	if err != nil {
		t.Fatal(err)
	}
	for gs := 0; gs < gammaGridMax; gs++ {
		for gt := 0; gt < gammaGridMax; gt++ {
			if plain.Grid[gs][gt] != probed.Grid[gs][gt] {
				t.Fatalf("cell (%d,%d) differs with probe attached", gt+1, gs+1)
			}
		}
	}
	if n := mem.Count(obs.KindCell); n != gammaGridMax*gammaGridMax {
		t.Fatalf("cell events = %d, want %d", n, gammaGridMax*gammaGridMax)
	}
	if mem.Count(obs.KindRunStart) != 1 || mem.Count(obs.KindRunEnd) != 1 {
		t.Fatalf("run events: %d start, %d end", mem.Count(obs.KindRunStart), mem.Count(obs.KindRunEnd))
	}
	first := mem.Events()[0]
	if first.Kind != obs.KindRunStart || first.Manifest == nil || first.Manifest.Engine != "gammagrid" {
		t.Fatalf("stream must open with the gammagrid manifest, got %+v", first)
	}
	for _, ev := range mem.Events() {
		if ev.Kind == obs.KindCell && (ev.Label == "" || ev.WallNs <= 0) {
			t.Fatalf("cell event missing label or wall clock: %+v", ev)
		}
	}
}
