// Package experiments reproduces every table and figure of the paper's
// evaluation section (Section 4). Each experiment is a function that runs
// the necessary simulations and returns a renderable result; the cmd/
// binaries and the top-level benchmarks are thin wrappers around this
// package.
//
// Scale: the paper runs 256 nodes for 1000 (CIFAR-10) or 3000 (FEMNIST)
// rounds on an 8-machine cluster. Options.Nodes/Rounds default to a
// laptop-scale version that preserves the paper's qualitative results;
// energy numbers are always additionally computed analytically at paper
// scale (256 nodes, full round counts), where they match the published
// values (see README.md "Reproduction status").
package experiments

import (
	"io"

	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sweep"
)

// PaperNodes is the node count of every experiment in the paper.
const PaperNodes = 256

// PaperRoundsCIFAR and PaperRoundsFEMNIST are the paper's horizons.
const (
	PaperRoundsCIFAR   = 1000
	PaperRoundsFEMNIST = 3000
)

// Options controls experiment scale. The zero value is completed by
// Defaults.
type Options struct {
	Nodes  int // simulated nodes (paper: 256)
	Rounds int // simulated rounds (paper: 1000/3000)
	Seed   uint64
	Out    io.Writer // rendering destination (nil = discard)

	// Learning hyperparameters for the scaled simulation.
	LR         float64
	BatchSize  int
	LocalSteps int

	// Data scale.
	TrainPerNode  int // training samples per node
	TestSamples   int
	Noise         float64 // within-class noise (higher = harder task)
	EvalEvery     int
	EvalSubsample int

	// FleetEngine selects the harvest fleet implementation for grid
	// runners: harvest.EnginePointer (default when empty) or
	// harvest.EngineSoA. The engines are bit-identical (pinned by
	// internal/harvest/difftest), so this only trades memory layout for
	// speed at large fleet sizes.
	FleetEngine string

	// Probe optionally attaches the observability layer (internal/obs):
	// grid runners emit run boundaries and one cell event per completed
	// grid cell (label, wall clock, headline accuracy). The probe is NOT
	// passed into per-cell simulations — a 16-cell grid streaming
	// per-round events would drown the signal. Nil is the off state.
	Probe *obs.Probe

	// Sweep optionally routes grid cells through the memoized sweep
	// scheduler (internal/sweep): cells are content-addressed by their
	// manifest hash, cached results are served instead of recomputed, and
	// overlapping grids dedupe. Nil runs every cell fresh (the historical
	// behavior). Sweep never affects computed values — cached cells are
	// bit-identical to fresh ones — so, like Probe, it is not part of any
	// cell's cache key.
	Sweep *sweep.Runner
}

// Defaults fills unset fields with laptop-scale values.
func (o Options) Defaults() Options {
	if o.Nodes == 0 {
		o.Nodes = 48
	}
	if o.Rounds == 0 {
		o.Rounds = 64
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	if o.LR == 0 {
		o.LR = 0.2
	}
	if o.BatchSize == 0 {
		o.BatchSize = 16
	}
	if o.LocalSteps == 0 {
		o.LocalSteps = 8
	}
	if o.TrainPerNode == 0 {
		o.TrainPerNode = 40
	}
	if o.TestSamples == 0 {
		o.TestSamples = 640
	}
	if o.Noise == 0 {
		o.Noise = 2.5
	}
	if o.EvalEvery == 0 {
		o.EvalEvery = 8
	}
	if o.EvalSubsample == 0 {
		o.EvalSubsample = 320
	}
	return o
}

// cifarLikeData builds the scaled CIFAR-10 stand-in: 10 classes, 2-shard
// non-IID partition, IID validation/test halves.
func cifarLikeData(o Options) (part dataset.Partition, val, test *dataset.Dataset, err error) {
	cfg := dataset.SyntheticConfig{
		Classes: 10,
		Dim:     32,
		Train:   o.Nodes * o.TrainPerNode,
		Test:    o.TestSamples,
		Noise:   o.Noise,
		Seed:    o.Seed,
	}
	train, testAll, err := dataset.Generate(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	part, err = dataset.ShardPartition(train, o.Nodes, 2, o.Seed)
	if err != nil {
		return nil, nil, nil, err
	}
	val, test = testAll.Split(testAll.Len() / 2)
	return part, val, test, nil
}

// femnistLikeData builds the scaled FEMNIST stand-in: 62 classes, natural
// writer partition over the top-N writers.
func femnistLikeData(o Options) (part dataset.Partition, val, test *dataset.Dataset, err error) {
	cfg := dataset.FEMNISTWriters(o.Seed)
	cfg.Writers = o.Nodes + o.Nodes/4
	cfg.MinPerWriter = o.TrainPerNode / 2
	cfg.MaxPerWriter = o.TrainPerNode * 2
	cfg.Test = o.TestSamples
	cfg.Noise = o.Noise
	writers, testAll, err := dataset.GenerateWriters(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	part, err = dataset.WriterPartition(writers, o.Nodes)
	if err != nil {
		return nil, nil, nil, err
	}
	val, test = testAll.Split(testAll.Len() / 2)
	return part, val, test, nil
}

// modelFactory returns the scaled model builder for a dataset geometry.
func modelFactory(dim, classes int) func(int, *rng.RNG) *nn.Network {
	return func(node int, r *rng.RNG) *nn.Network {
		return nn.LogisticRegression(dim, classes, r)
	}
}

// topologyFor builds the d-regular graph and Metropolis weights.
func topologyFor(nodes, degree int, seed uint64) (*graph.Graph, *graph.Weights, error) {
	g, err := graph.Regular(nodes, degree, seed)
	if err != nil {
		return nil, nil, err
	}
	return g, graph.Metropolis(g), nil
}

// paperEnergyWh returns the exact network training energy at paper scale
// for a given number of training rounds: trainRounds * sum of per-device
// round energies over 256 nodes.
func paperEnergyWh(trainRounds int, w energy.Workload) float64 {
	return float64(trainRounds) * energy.NetworkRoundWh(PaperNodes, energy.Devices(), w)
}

// scaledBudgets shrinks the paper's device round budgets to a scaled
// horizon: tau_scaled = max(1, tau * rounds / paperRounds), preserving the
// heterogeneity profile of Table 2.
func scaledBudgets(nodes, rounds, paperRounds int, w energy.Workload, fraction float64) *energy.Budget {
	assigned := energy.AssignDevices(nodes, energy.Devices())
	taus := make([]int, nodes)
	for i, d := range assigned {
		tau := d.RoundBudget(w, fraction)
		scaled := tau * rounds / paperRounds
		if scaled < 1 {
			scaled = 1
		}
		taus[i] = scaled
	}
	return energy.NewBudget(taus)
}
