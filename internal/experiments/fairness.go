package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/sim"
)

// Section51Result quantifies the fairness discussion of the paper's
// Section 5.1: energy-aware skipping trains low-battery devices less, which
// can bias the converged model toward high-energy devices. The paper leaves
// measuring this to future work; this experiment measures it.
type Section51Result struct {
	Constrained *metrics.FairnessReport
	Baseline    *metrics.FairnessReport // D-PSGD, energy-oblivious
}

// Section51Fairness runs SkipTrain-constrained and D-PSGD on the CIFAR-like
// setting and compares per-device-group accuracy, participation inequality
// (Gini), and the correlation between a node's energy budget and its final
// accuracy.
func Section51Fairness(o Options) (*Section51Result, error) {
	o = o.Defaults()
	g, w, err := topologyFor(o.Nodes, 6, o.Seed)
	if err != nil {
		return nil, err
	}
	part, _, test, err := cifarLikeData(o)
	if err != nil {
		return nil, err
	}
	devices := energy.AssignDevices(o.Nodes, energy.Devices())
	groups := make([]string, o.Nodes)
	budgets := make([]float64, o.Nodes)
	workload := energy.CIFAR10Workload()
	for i, d := range devices {
		groups[i] = d.Name
		budgets[i] = float64(d.RoundBudget(workload, 0.10))
	}

	runOne := func(algo core.Algorithm) (*metrics.FairnessReport, error) {
		res, err := sim.Run(sim.Config{
			Graph: g, Weights: w,
			Algo:         algo,
			Rounds:       o.Rounds,
			ModelFactory: modelFactory(32, 10),
			LR:           o.LR, BatchSize: o.BatchSize, LocalSteps: o.LocalSteps,
			Partition: part, Test: test,
			EvalEvery: 0, EvalSubsample: o.EvalSubsample,
			Devices: devices, Workload: workload,
			Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		return metrics.NewFairnessReport(res.FinalNodeAccs, res.TrainedRounds, budgets, groups)
	}

	gamma := gammaForDegree(6)
	constrained, err := runOne(core.SkipTrainConstrained(gamma, o.Rounds,
		scaledBudgets(o.Nodes, o.Rounds, PaperRoundsCIFAR, workload, 0.10), o.Nodes))
	if err != nil {
		return nil, err
	}
	baseline, err := runOne(core.DPSGD())
	if err != nil {
		return nil, err
	}
	out := &Section51Result{Constrained: constrained, Baseline: baseline}
	out.render(o)
	return out, nil
}

func (r *Section51Result) render(o Options) {
	tb := report.NewTable("Section 5.1: fairness under energy-aware skipping",
		"metric", "SkipTrain-constrained", "D-PSGD")
	tb.AddRowf("participation Gini|%.3f|%.3f",
		r.Constrained.ParticipationGini, r.Baseline.ParticipationGini)
	tb.AddRowf("budget-accuracy corr|%.3f|%.3f",
		r.Constrained.BudgetAccCorr, r.Baseline.BudgetAccCorr)
	tb.AddRowf("group accuracy spread pp|%.2f|%.2f",
		r.Constrained.Spread*100, r.Baseline.Spread*100)
	tb.Render(o.Out)
	// Per-group accuracies, stable order.
	var names []string
	for n := range r.Constrained.AccByGroup {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(o.Out, "  %-26s constrained %.2f%%  baseline %.2f%%\n",
			n, r.Constrained.AccByGroup[n]*100, r.Baseline.AccByGroup[n]*100)
	}
}
