package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/harvest"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
)

// The harvesting scenario table extends the paper's evaluation beyond its
// static energy budgets: each scenario swaps the fixed τ_i of Section 2.3
// for a live battery fed by an ambient source (internal/harvest), and pairs
// it with a charge-aware participation policy. The "dark" scenario (no
// recharge) is the paper's constrained setting recovered as a special case.

// HarvestRow summarizes one harvesting scenario run.
type HarvestRow struct {
	Scenario      string
	Trace         string
	Policy        string
	FinalAcc      float64 // mean final test accuracy, %
	Participation float64 // trained rounds / coordinated training slots, %
	MeanFinalSoC  float64 // fleet-average SoC after the last round
	Depleted      int     // nodes below cutoff at the end
	HarvestedWh   float64 // stored ambient energy (sim scale)
	ConsumedWh    float64 // battery drain: train + comm + idle (sim scale)

	// Fairness view (internal/metrics): ambient sources are spatially
	// biased — a solar fleet trains day-side nodes far more often — so each
	// scenario reports how unequal participation was and whether the model
	// favors the energy-rich.
	TrainGini      float64 // Gini of per-node trained-round counts (0 = equal)
	HarvestAccCorr float64 // Pearson corr. of a node's stored harvest vs its final accuracy
}

// harvestScenario bundles one (trace, policy) configuration. Policies are
// fleet-free — they read battery state through the round context — so the
// constructor needs only the fleet size.
type harvestScenario struct {
	name   string
	trace  func(o Options, meanTrainWh float64) (harvest.Trace, error)
	policy func(nodes int) (core.Policy, error)
}

// harvestFleetCapacityRounds puts batteries on a supercap scale where state
// of charge moves visibly within a laptop-scale horizon.
const harvestFleetCapacityRounds = 12

// TableHarvest runs the harvesting scenario family on CIFAR-like data and
// renders the comparison: a solar fleet spread over longitudes, a bursty
// Markov source, a constant trickle charger, and the no-recharge baseline.
func TableHarvest(o Options) ([]HarvestRow, error) {
	o = o.Defaults()
	g, weights, err := topologyFor(o.Nodes, 6, o.Seed)
	if err != nil {
		return nil, err
	}
	part, _, test, err := cifarLikeData(o)
	if err != nil {
		return nil, err
	}
	devices := energy.AssignDevices(o.Nodes, energy.Devices())
	workload := energy.CIFAR10Workload()
	meanTrainWh := energy.NetworkRoundWh(o.Nodes, energy.Devices(), workload) / float64(o.Nodes)

	scenarios := []harvestScenario{
		{
			name: "dark (no recharge)",
			trace: func(Options, float64) (harvest.Trace, error) {
				return harvest.Constant{Wh: 0}, nil
			},
			policy: func(int) (core.Policy, error) {
				return harvest.NewSoCThreshold(0)
			},
		},
		{
			name: "trickle charger",
			trace: func(_ Options, mean float64) (harvest.Trace, error) {
				// 60% of a round's cost arrives per round: steady-state
				// participation settles near the replenishment rate.
				return harvest.Constant{Wh: 0.6 * mean}, nil
			},
			policy: func(int) (core.Policy, error) {
				return harvest.NewSoCThreshold(0.2)
			},
		},
		{
			name: "solar diurnal",
			trace: func(o Options, mean float64) (harvest.Trace, error) {
				return harvest.NewDiurnal(1.5*mean, diurnalPeriod(o.Rounds), harvest.LongitudePhase(o.Nodes))
			},
			policy: func(int) (core.Policy, error) {
				return harvest.NewSoCProportional(1)
			},
		},
		{
			name: "bursty markov",
			trace: func(o Options, mean float64) (harvest.Trace, error) {
				return harvest.NewMarkovOnOff(o.Nodes, 1.2*mean, 0.25, 0.35, o.Seed)
			},
			policy: func(nodes int) (core.Policy, error) {
				return harvest.NewSoCHysteresis(nodes, 0.15, 0.4)
			},
		},
	}

	schedule := core.AllTrain{}
	trainSlots := core.CountTrainRounds(schedule, o.Rounds)
	var rows []HarvestRow
	for _, sc := range scenarios {
		trace, err := sc.trace(o, meanTrainWh)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %q: %w", sc.name, err)
		}
		fleet, err := harvest.NewFleet(devices, workload, trace, harvest.Options{
			CapacityRounds: harvestFleetCapacityRounds,
			InitialSoC:     0.5,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %q: %w", sc.name, err)
		}
		policy, err := sc.policy(o.Nodes)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %q: %w", sc.name, err)
		}
		res, err := sim.Run(sim.Config{
			Graph: g, Weights: weights,
			Algo:   core.Algorithm{Label: sc.name, Schedule: schedule, Policy: policy},
			Rounds: o.Rounds,
			ModelFactory: func(node int, r *rng.RNG) *nn.Network {
				return nn.LogisticRegression(32, 10, r)
			},
			LR: o.LR, BatchSize: o.BatchSize, LocalSteps: o.LocalSteps,
			Partition: part, Test: test,
			EvalEvery: o.EvalEvery, EvalSubsample: o.EvalSubsample,
			Devices: devices, Workload: workload,
			Harvest: fleet,
			Seed:    o.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %q: %w", sc.name, err)
		}
		trained := 0
		trainedPerNode := make([]float64, o.Nodes)
		harvestPerNode := make([]float64, o.Nodes)
		for i, tr := range res.TrainedRounds {
			trained += tr
			trainedPerNode[i] = float64(tr)
			harvestPerNode[i] = fleet.NodeHarvestedWh(i)
		}
		gini, err := metrics.Gini(trainedPerNode)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %q: %w", sc.name, err)
		}
		corr, err := metrics.Pearson(harvestPerNode, res.FinalNodeAccs)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %q: %w", sc.name, err)
		}
		meanSoC := 0.0
		for _, s := range res.FinalSoC {
			meanSoC += s
		}
		meanSoC /= float64(len(res.FinalSoC))
		rows = append(rows, HarvestRow{
			Scenario:       sc.name,
			Trace:          fleet.TraceName(),
			Policy:         policy.Name(),
			FinalAcc:       res.FinalMeanAcc * 100,
			Participation:  100 * float64(trained) / float64(o.Nodes*trainSlots),
			MeanFinalSoC:   meanSoC,
			Depleted:       res.History[len(res.History)-1].Depleted,
			HarvestedWh:    res.TotalHarvestWh,
			ConsumedWh:     fleet.ConsumedWh(),
			TrainGini:      gini,
			HarvestAccCorr: corr,
		})
	}

	tb := report.NewTable("Harvesting scenarios: charge-aware policies under ambient energy (sim scale)",
		"Scenario", "Trace", "Policy", "Acc %", "Participation %", "Mean final SoC", "Depleted", "Harvested Wh", "Consumed Wh", "Train Gini", "Harvest-acc corr")
	for _, r := range rows {
		tb.AddRowf("%s|%s|%s|%.2f|%.1f|%.3f|%d|%.4f|%.4f|%.3f|%+.3f",
			r.Scenario, r.Trace, r.Policy, r.FinalAcc, r.Participation,
			r.MeanFinalSoC, r.Depleted, r.HarvestedWh, r.ConsumedWh,
			r.TrainGini, r.HarvestAccCorr)
	}
	tb.Render(o.Out)
	return rows, nil
}

// diurnalPeriod picks a day length that gives a horizon at least two full
// day/night cycles, so waves are visible at any experiment scale.
func diurnalPeriod(rounds int) int {
	period := rounds / 2
	if period > 24 {
		period = 24
	}
	if period < 2 {
		period = 2
	}
	return period
}
