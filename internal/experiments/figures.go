package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Series is one labeled curve: x (rounds or Wh) against y (accuracy).
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure1Result holds the D-PSGD vs all-reduce comparison.
type Figure1Result struct {
	DPSGD     Series // mean accuracy across nodes
	AllReduce Series // accuracy of the global average model
	FinalGap  float64
}

// Figure1 reproduces Figure 1: standard D-PSGD against hypothetical
// all-reduce-every-round on a 6-regular topology, CIFAR-like 2-shard data.
// The paper reports an ~10% accuracy boost for all-reduce.
func Figure1(o Options) (*Figure1Result, error) {
	o = o.Defaults()
	g, w, err := topologyFor(o.Nodes, 6, o.Seed)
	if err != nil {
		return nil, err
	}
	part, _, test, err := cifarLikeData(o)
	if err != nil {
		return nil, err
	}
	base := sim.Config{
		Graph: g, Weights: w,
		Rounds:       o.Rounds,
		ModelFactory: modelFactory(32, 10),
		LR:           o.LR, BatchSize: o.BatchSize, LocalSteps: o.LocalSteps,
		Partition: part, Test: test,
		EvalEvery: o.EvalEvery, EvalSubsample: o.EvalSubsample,
		Seed: o.Seed,
	}
	dCfg := base
	dCfg.Algo = core.DPSGD()
	dRes, err := sim.Run(dCfg)
	if err != nil {
		return nil, err
	}
	aCfg := base
	aCfg.Algo = core.AllReduce()
	aCfg.EvalGlobalModel = true
	aRes, err := sim.Run(aCfg)
	if err != nil {
		return nil, err
	}
	out := &Figure1Result{
		DPSGD:     Series{Label: "D-PSGD"},
		AllReduce: Series{Label: "All reduce"},
	}
	for _, m := range dRes.Evaluations() {
		out.DPSGD.X = append(out.DPSGD.X, float64(m.Round+1))
		out.DPSGD.Y = append(out.DPSGD.Y, m.MeanAcc*100)
	}
	for _, m := range aRes.Evaluations() {
		out.AllReduce.X = append(out.AllReduce.X, float64(m.Round+1))
		out.AllReduce.Y = append(out.AllReduce.Y, m.GlobalAcc*100)
	}
	out.FinalGap = aRes.FinalGlobalAcc*100 - dRes.FinalMeanAcc*100

	tb := report.NewTable("Figure 1: D-PSGD vs all-reduce (test accuracy %, 6-regular)",
		"round", "D-PSGD", "All reduce")
	for i := range out.DPSGD.X {
		tb.AddRowf("%.0f|%.2f|%.2f", out.DPSGD.X[i], out.DPSGD.Y[i], out.AllReduce.Y[i])
	}
	tb.Render(o.Out)
	fmt.Fprintf(o.Out, "final gap: %+.2f pp (paper: ~ +10 pp)\n", out.FinalGap)
	fmt.Fprintf(o.Out, "D-PSGD    %s\nAllReduce %s\n",
		report.Sparkline(out.DPSGD.Y), report.Sparkline(out.AllReduce.Y))
	return out, nil
}

// Figure2 renders the round-pattern illustration of Figure 2: which rounds
// are train vs sync for D-PSGD, SkipTrain and SkipTrain-constrained.
func Figure2(o Options) error {
	o = o.Defaults()
	gamma, err := core.NewGamma(2, 2)
	if err != nil {
		return err
	}
	horizon := 12
	render := func(title string, pattern func(node, t int) string, nodes int) {
		fmt.Fprintf(o.Out, "%s\n", title)
		for nd := 0; nd < nodes; nd++ {
			fmt.Fprintf(o.Out, "  node %d: ", nd)
			for t := 0; t < horizon; t++ {
				fmt.Fprintf(o.Out, "%-6s", pattern(nd, t))
			}
			fmt.Fprintln(o.Out)
		}
	}
	render("Figure 2a: D-PSGD", func(_, _ int) string { return "train" }, 4)
	render("Figure 2b: SkipTrain (Γt=2, Γs=2)", func(_, t int) string {
		return gamma.Kind(t).String()
	}, 4)
	// Constrained: probabilistic skips inside coordinated train rounds.
	budget := energy.NewBudget([]int{2, 3, 4, 6})
	policy := core.NewProbabilisticPolicy(gamma, horizon, budget, 4)
	rngs := make([]*rng.RNG, 4)
	for i := range rngs {
		rngs[i] = rng.Derive(o.Seed, uint64(i), 0xf16)
	}
	render("Figure 2c: SkipTrain-constrained (budgets 2,3,4,6)", func(nd, t int) string {
		if gamma.Kind(t) == core.RoundSync {
			return "sync"
		}
		if policy.Participate(nd, core.ContextAt(gamma, t, horizon), rngs[nd]) {
			return "train"
		}
		return "sync"
	}, 4)
	return nil
}

// Figure3Cell is one grid-search point.
type Figure3Cell struct {
	GammaTrain, GammaSync int
	ValAcc                float64 // validation accuracy [%] at sim scale
	PaperEnergyWh         float64 // exact energy at paper scale (256 nodes, T=1000)
}

// Figure3Result holds the grid search of Section 4.3.
type Figure3Result struct {
	Degrees []int
	// Grid[d][gs-1][gt-1] for degree index d.
	Grid [][][]Figure3Cell
	// Best Γ per degree, ties broken toward lower energy (paper's rule).
	Best []Figure3Cell
}

// Figure3 reproduces the Γtrain x Γsync grid search over CIFAR-like data
// for the given topology degrees (paper: 6, 8, 10; values 1..4 each axis).
// Validation accuracy comes from scaled simulation; the energy heatmap is
// exact at paper scale (it depends only on the schedule).
func Figure3(o Options, degrees []int) (*Figure3Result, error) {
	o = o.Defaults()
	if len(degrees) == 0 {
		degrees = []int{6, 8, 10}
	}
	part, val, _, err := cifarLikeData(o)
	if err != nil {
		return nil, err
	}
	res := &Figure3Result{Degrees: degrees}
	for _, deg := range degrees {
		g, w, err := topologyFor(o.Nodes, deg, o.Seed)
		if err != nil {
			return nil, err
		}
		// Cells run on the shared grid runner (gammagrid.go): fanned out
		// across workers into preallocated slots, bit-identical to the
		// serial loop, with the best cell seeded from a real cell.
		grid, err := forEachGammaCell(func(gt, gs int) (Figure3Cell, error) {
			gamma, err := core.NewGamma(gt, gs)
			if err != nil {
				return Figure3Cell{}, err
			}
			cfg := sim.Config{
				Graph: g, Weights: w,
				Algo:         core.SkipTrain(gamma),
				Rounds:       o.Rounds,
				ModelFactory: modelFactory(32, 10),
				LR:           o.LR, BatchSize: o.BatchSize, LocalSteps: o.LocalSteps,
				Partition: part, Test: val, // tuned on the validation split
				EvalEvery: 0, EvalSubsample: o.EvalSubsample,
				Seed: o.Seed,
			}
			r, err := sim.Run(cfg)
			if err != nil {
				return Figure3Cell{}, err
			}
			return Figure3Cell{
				GammaTrain: gt, GammaSync: gs,
				ValAcc:        r.FinalMeanAcc * 100,
				PaperEnergyWh: paperEnergyWh(core.CountTrainRounds(gamma, PaperRoundsCIFAR), energy.CIFAR10Workload()),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		res.Grid = append(res.Grid, grid)
		res.Best = append(res.Best, bestGammaCell(grid,
			func(c Figure3Cell) float64 { return c.ValAcc },
			func(c Figure3Cell) float64 { return c.PaperEnergyWh }))
	}
	res.render(o)
	return res, nil
}

func (r *Figure3Result) render(o Options) {
	rowNames := []string{"1", "2", "3", "4"}
	for di, deg := range r.Degrees {
		h := &report.Heatmap{
			Title:    fmt.Sprintf("Figure 3: %d-regular. Validation accuracy [%%]", deg),
			RowLabel: "Γs", ColLabel: "Γt",
			RowNames: rowNames, ColNames: rowNames,
			Cells:          make([][]float64, 4),
			HigherIsBetter: true,
		}
		for gs := 0; gs < 4; gs++ {
			h.Cells[gs] = make([]float64, 4)
			for gt := 0; gt < 4; gt++ {
				h.Cells[gs][gt] = r.Grid[di][gs][gt].ValAcc
			}
		}
		h.SetMark(r.Best[di].GammaSync-1, r.Best[di].GammaTrain-1)
		h.Render(o.Out)
		fmt.Fprintf(o.Out, "best: Γtrain=%d Γsync=%d (%.1f%%, %.0f Wh at paper scale)\n\n",
			r.Best[di].GammaTrain, r.Best[di].GammaSync, r.Best[di].ValAcc, r.Best[di].PaperEnergyWh)
	}
	// Energy heatmap (schedule-only, identical for every topology).
	eh := &report.Heatmap{
		Title:    "Figure 3 (right): Energy [Wh] at paper scale",
		RowLabel: "Γs", ColLabel: "Γt",
		RowNames: rowNames, ColNames: rowNames,
		Cells:  make([][]float64, 4),
		Format: "%.0f",
	}
	for gs := 0; gs < 4; gs++ {
		eh.Cells[gs] = make([]float64, 4)
		for gt := 0; gt < 4; gt++ {
			eh.Cells[gs][gt] = r.Grid[0][gs][gt].PaperEnergyWh
		}
	}
	eh.Render(o.Out)
}

// EnergyCell returns the paper-scale energy of a (Γt, Γs) cell.
func (r *Figure3Result) EnergyCell(gt, gs int) float64 {
	return r.Grid[0][gs-1][gt-1].PaperEnergyWh
}

// Figure4Point is one evaluated round near convergence.
type Figure4Point struct {
	Round   int
	Kind    core.RoundKind
	MeanAcc float64
	StdAcc  float64
}

// Figure4Result holds the train/sync sawtooth trace.
type Figure4Result struct {
	Points []Figure4Point
	// Sawtooth diagnostics: average accuracy change entering sync rounds vs
	// entering train rounds (paper: accuracy rises in sync, drops in train).
	MeanDeltaIntoSync  float64
	MeanDeltaIntoTrain float64
}

// Figure4 reproduces the train/sync trade-off: SkipTrain evaluated every
// round over the final stretch, showing accuracy rising during sync rounds
// and dropping during train rounds, with the std doing the opposite.
func Figure4(o Options) (*Figure4Result, error) {
	o = o.Defaults()
	gamma, err := core.NewGamma(4, 4)
	if err != nil {
		return nil, err
	}
	g, w, err := topologyFor(o.Nodes, 6, o.Seed)
	if err != nil {
		return nil, err
	}
	part, _, test, err := cifarLikeData(o)
	if err != nil {
		return nil, err
	}
	cfg := sim.Config{
		Graph: g, Weights: w,
		Algo:         core.SkipTrain(gamma),
		Rounds:       o.Rounds,
		ModelFactory: modelFactory(32, 10),
		LR:           o.LR, BatchSize: o.BatchSize, LocalSteps: o.LocalSteps,
		Partition: part, Test: test,
		EvalEvery: 1, EvalSubsample: o.EvalSubsample,
		Seed: o.Seed,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	out := &Figure4Result{}
	evals := res.Evaluations()
	// Keep the final stretch (paper: rounds 970-1000 of 1000).
	tail := len(evals) / 3
	if tail < 8 {
		tail = len(evals)
	}
	evals = evals[len(evals)-tail:]
	var dSync, dTrain float64
	var nSync, nTrain int
	for i, m := range evals {
		out.Points = append(out.Points, Figure4Point{Round: m.Round, Kind: m.Kind, MeanAcc: m.MeanAcc * 100, StdAcc: m.StdAcc * 100})
		if i > 0 {
			delta := (m.MeanAcc - evals[i-1].MeanAcc) * 100
			if m.Kind == core.RoundSync {
				dSync += delta
				nSync++
			} else {
				dTrain += delta
				nTrain++
			}
		}
	}
	if nSync > 0 {
		out.MeanDeltaIntoSync = dSync / float64(nSync)
	}
	if nTrain > 0 {
		out.MeanDeltaIntoTrain = dTrain / float64(nTrain)
	}
	tb := report.NewTable("Figure 4: SkipTrain test accuracy per round (final stretch)",
		"round", "kind", "mean acc %", "std %")
	for _, p := range out.Points {
		tb.AddRowf("%d|%s|%.2f|%.2f", p.Round, p.Kind, p.MeanAcc, p.StdAcc)
	}
	tb.Render(o.Out)
	fmt.Fprintf(o.Out, "mean Δacc entering sync rounds: %+.3f pp; entering train rounds: %+.3f pp\n",
		out.MeanDeltaIntoSync, out.MeanDeltaIntoTrain)
	return out, nil
}

// Figure5Arm is one algorithm x dataset x topology run.
type Figure5Arm struct {
	Algo        string
	Dataset     string
	Degree      int
	AccVsRound  Series
	AccVsEnergy Series // x = cumulative paper-scale Wh
	FinalAcc    float64
	// PaperEnergyWh is the total training energy at paper scale.
	PaperEnergyWh float64
}

// Figure5Result aggregates all arms.
type Figure5Result struct {
	Arms []Figure5Arm
}

// Arm retrieves an arm by keys; nil if absent.
func (r *Figure5Result) Arm(algo, ds string, degree int) *Figure5Arm {
	for i := range r.Arms {
		a := &r.Arms[i]
		if a.Algo == algo && a.Dataset == ds && a.Degree == degree {
			return a
		}
	}
	return nil
}

// gammaForDegree returns the tuned (Γtrain, Γsync) of Section 4.3 for each
// topology degree: (4,4) for 6-regular, (3,3) for 8-regular, (4,2) for
// 10-regular; defaults to (4,4) otherwise.
func gammaForDegree(deg int) core.Gamma {
	switch deg {
	case 8:
		return core.Gamma{GammaTrain: 3, GammaSync: 3}
	case 10:
		return core.Gamma{GammaTrain: 4, GammaSync: 2}
	default:
		return core.Gamma{GammaTrain: 4, GammaSync: 4}
	}
}

// Figure5 reproduces the SkipTrain vs D-PSGD comparison over both datasets
// and the given degrees, producing accuracy-vs-round and accuracy-vs-energy
// curves (energy at paper scale).
func Figure5(o Options, degrees []int, datasets []string) (*Figure5Result, error) {
	o = o.Defaults()
	if len(degrees) == 0 {
		degrees = []int{6, 8, 10}
	}
	if len(datasets) == 0 {
		datasets = []string{"cifar", "femnist"}
	}
	res := &Figure5Result{}
	for _, ds := range datasets {
		var part dataset.Partition
		var test *dataset.Dataset
		var classes int
		var workload energy.Workload
		var paperRounds int
		var err error
		switch ds {
		case "cifar":
			part, _, test, err = cifarLikeData(o)
			classes, workload, paperRounds = 10, energy.CIFAR10Workload(), PaperRoundsCIFAR
		case "femnist":
			part, _, test, err = femnistLikeData(o)
			classes, workload, paperRounds = 62, energy.FEMNISTWorkload(), PaperRoundsFEMNIST
		default:
			return nil, fmt.Errorf("experiments: unknown dataset %q", ds)
		}
		if err != nil {
			return nil, err
		}
		for _, deg := range degrees {
			g, w, err := topologyFor(o.Nodes, deg, o.Seed)
			if err != nil {
				return nil, err
			}
			gamma := gammaForDegree(deg)
			for _, algo := range []core.Algorithm{core.DPSGD(), core.SkipTrain(gamma)} {
				cfg := sim.Config{
					Graph: g, Weights: w,
					Algo:         algo,
					Rounds:       o.Rounds,
					ModelFactory: modelFactory(32, classes),
					LR:           o.LR, BatchSize: o.BatchSize, LocalSteps: o.LocalSteps,
					Partition: part, Test: test,
					EvalEvery: o.EvalEvery, EvalSubsample: o.EvalSubsample,
					Seed: o.Seed,
				}
				r, err := sim.Run(cfg)
				if err != nil {
					return nil, err
				}
				arm := Figure5Arm{Algo: algoKey(algo), Dataset: ds, Degree: deg, FinalAcc: r.FinalMeanAcc * 100}
				// Energy per scheduled train round at paper scale.
				perRound := energy.NetworkRoundWh(PaperNodes, energy.Devices(), workload)
				trainedSoFar := 0
				for _, m := range r.History {
					if m.Kind == core.RoundTrain {
						trainedSoFar++
					}
					if !m.Evaluated {
						continue
					}
					arm.AccVsRound.X = append(arm.AccVsRound.X, float64(m.Round+1))
					arm.AccVsRound.Y = append(arm.AccVsRound.Y, m.MeanAcc*100)
					// Scale the round axis to the paper horizon for the
					// energy axis: fraction of schedule elapsed times the
					// paper's total schedule energy.
					paperTrainRounds := core.CountTrainRounds(algo.Schedule, paperRounds)
					frac := float64(trainedSoFar) / float64(maxInt(1, core.CountTrainRounds(algo.Schedule, o.Rounds)))
					arm.AccVsEnergy.X = append(arm.AccVsEnergy.X, frac*float64(paperTrainRounds)*perRound)
					arm.AccVsEnergy.Y = append(arm.AccVsEnergy.Y, m.MeanAcc*100)
				}
				arm.PaperEnergyWh = float64(core.CountTrainRounds(algo.Schedule, paperRounds)) * perRound
				arm.AccVsRound.Label = arm.Algo
				arm.AccVsEnergy.Label = arm.Algo
				res.Arms = append(res.Arms, arm)
			}
		}
	}
	res.render(o)
	return res, nil
}

func algoKey(a core.Algorithm) string {
	switch a.Schedule.(type) {
	case core.AllTrain:
		if a.Policy.Name() == "greedy" {
			return "Greedy"
		}
		if a.Aggregation == core.AggGlobal {
			return "All-Reduce"
		}
		return "D-PSGD"
	default:
		if a.Policy.Name() == "probabilistic" {
			return "SkipTrain-constrained"
		}
		return "SkipTrain"
	}
}

func (r *Figure5Result) render(o Options) {
	tb := report.NewTable("Figure 5: SkipTrain vs D-PSGD (final test accuracy %, paper-scale energy)",
		"dataset", "degree", "algorithm", "acc %", "energy Wh")
	for _, a := range r.Arms {
		tb.AddRowf("%s|%d|%s|%.2f|%.2f", a.Dataset, a.Degree, a.Algo, a.FinalAcc, a.PaperEnergyWh)
	}
	tb.Render(o.Out)
	for _, a := range r.Arms {
		fmt.Fprintf(o.Out, "%-8s d=%-2d %-22s %s\n", a.Dataset, a.Degree, a.Algo, report.Sparkline(a.AccVsRound.Y))
	}
}

// Figure6Arm is one constrained-setting run.
type Figure6Arm struct {
	Algo          string
	Dataset       string
	Degree        int
	AccVsEnergy   Series
	FinalAcc      float64
	ConsumedWh    float64 // actual training energy consumed at paper scale
	TrainedRounds []int
}

// Figure6Result aggregates the constrained comparison.
type Figure6Result struct {
	Arms []Figure6Arm
}

// Arm retrieves an arm by keys; nil if absent.
func (r *Figure6Result) Arm(algo, ds string, degree int) *Figure6Arm {
	for i := range r.Arms {
		a := &r.Arms[i]
		if a.Algo == algo && a.Dataset == ds && a.Degree == degree {
			return a
		}
	}
	return nil
}

// Figure6 reproduces the energy-constrained comparison: D-PSGD (energy
// oblivious), Greedy (train until battery dies), and SkipTrain-constrained
// (probabilistic spreading), with per-node budgets from the device traces.
func Figure6(o Options, degrees []int, datasets []string) (*Figure6Result, error) {
	o = o.Defaults()
	if len(degrees) == 0 {
		degrees = []int{6, 8, 10}
	}
	if len(datasets) == 0 {
		datasets = []string{"cifar", "femnist"}
	}
	res := &Figure6Result{}
	for _, ds := range datasets {
		var part dataset.Partition
		var test *dataset.Dataset
		var classes, paperRounds int
		var workload energy.Workload
		var fraction float64
		var err error
		switch ds {
		case "cifar":
			part, _, test, err = cifarLikeData(o)
			classes, workload, paperRounds, fraction = 10, energy.CIFAR10Workload(), PaperRoundsCIFAR, 0.10
		case "femnist":
			part, _, test, err = femnistLikeData(o)
			classes, workload, paperRounds, fraction = 62, energy.FEMNISTWorkload(), PaperRoundsFEMNIST, 0.50
		default:
			return nil, fmt.Errorf("experiments: unknown dataset %q", ds)
		}
		if err != nil {
			return nil, err
		}
		for _, deg := range degrees {
			g, w, err := topologyFor(o.Nodes, deg, o.Seed)
			if err != nil {
				return nil, err
			}
			gamma := gammaForDegree(deg)
			algos := []func() core.Algorithm{
				func() core.Algorithm { return core.DPSGD() },
				func() core.Algorithm {
					return core.Greedy(scaledBudgets(o.Nodes, o.Rounds, paperRounds, workload, fraction))
				},
				func() core.Algorithm {
					return core.SkipTrainConstrained(gamma, o.Rounds,
						scaledBudgets(o.Nodes, o.Rounds, paperRounds, workload, fraction), o.Nodes)
				},
			}
			for _, mk := range algos {
				algo := mk()
				cfg := sim.Config{
					Graph: g, Weights: w,
					Algo:         algo,
					Rounds:       o.Rounds,
					ModelFactory: modelFactory(32, classes),
					LR:           o.LR, BatchSize: o.BatchSize, LocalSteps: o.LocalSteps,
					Partition: part, Test: test,
					EvalEvery: o.EvalEvery, EvalSubsample: o.EvalSubsample,
					Devices:  energy.AssignDevices(o.Nodes, energy.Devices()),
					Workload: workload,
					Seed:     o.Seed,
				}
				r, err := sim.Run(cfg)
				if err != nil {
					return nil, err
				}
				arm := Figure6Arm{
					Algo: algoKey(algo), Dataset: ds, Degree: deg,
					FinalAcc:      r.FinalMeanAcc * 100,
					TrainedRounds: r.TrainedRounds,
				}
				// Scale consumed energy to paper scale: each scaled train
				// round represents paperRounds/o.Rounds paper rounds.
				perPaperRound := energy.NetworkRoundWh(PaperNodes, energy.Devices(), workload)
				scale := float64(paperRounds) / float64(o.Rounds) * float64(PaperNodes) / float64(o.Nodes)
				arm.ConsumedWh = r.TotalTrainWh * scale
				for _, m := range r.History {
					if !m.Evaluated {
						continue
					}
					arm.AccVsEnergy.X = append(arm.AccVsEnergy.X, m.CumTrainWh*scale)
					arm.AccVsEnergy.Y = append(arm.AccVsEnergy.Y, m.MeanAcc*100)
				}
				arm.AccVsEnergy.Label = arm.Algo
				_ = perPaperRound
				res.Arms = append(res.Arms, arm)
			}
		}
	}
	res.render(o)
	return res, nil
}

func (r *Figure6Result) render(o Options) {
	tb := report.NewTable("Figure 6: energy-constrained comparison (final test accuracy %, paper-scale consumed Wh)",
		"dataset", "degree", "algorithm", "acc %", "consumed Wh")
	for _, a := range r.Arms {
		tb.AddRowf("%s|%d|%s|%.2f|%.2f", a.Dataset, a.Degree, a.Algo, a.FinalAcc, a.ConsumedWh)
	}
	tb.Render(o.Out)
}

// Figure7 renders the class distributions of the first ten nodes under the
// CIFAR-like 2-shard partition and the FEMNIST-like writer partition.
func Figure7(o Options) error {
	o = o.Defaults()
	cifarPart, _, _, err := cifarLikeData(o)
	if err != nil {
		return err
	}
	femnistPart, _, _, err := femnistLikeData(o)
	if err != nil {
		return err
	}
	counts := func(p dataset.Partition, nodes int) [][]int {
		out := make([][]int, nodes)
		for i := 0; i < nodes; i++ {
			out[i] = p[i].ClassHistogram()
		}
		return out
	}
	report.DotPlot(o.Out, "Figure 7 (left): CIFAR-like 2-shard class distribution, first 10 nodes",
		counts(cifarPart, 10))
	// FEMNIST has 62 classes; show the first 16 rows for readability.
	fem := counts(femnistPart, 10)
	for i := range fem {
		fem[i] = fem[i][:16]
	}
	report.DotPlot(o.Out, "Figure 7 (right): FEMNIST-like writer class distribution (classes 0-15), first 10 nodes",
		fem)
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TimeToAccuracy extracts, for every Figure 5 arm, the first round and the
// first paper-scale energy at which the arm reaches the target accuracy
// (percent). Entries are -1 when the arm never reaches it. This quantifies
// the paper's claim that synchronization rounds accelerate convergence.
type TimeToAccuracy struct {
	Algo    string
	Dataset string
	Degree  int
	Round   float64
	Wh      float64
}

// TimeTo computes time-to-accuracy for all arms.
func (r *Figure5Result) TimeTo(targetPct float64) []TimeToAccuracy {
	var out []TimeToAccuracy
	for _, a := range r.Arms {
		out = append(out, TimeToAccuracy{
			Algo: a.Algo, Dataset: a.Dataset, Degree: a.Degree,
			Round: metrics.RoundsToTarget(a.AccVsRound.X, a.AccVsRound.Y, targetPct),
			Wh:    metrics.RoundsToTarget(a.AccVsEnergy.X, a.AccVsEnergy.Y, targetPct),
		})
	}
	return out
}
