package experiments

import (
	"encoding/json"

	"repro/internal/sweep"
)

// Job kinds served by a sweep server with RegisterSweepHandlers installed.
const (
	// JobGammaGrid runs TableGammaHarvest (the 5-regime 4x4 Γ search) and
	// replies with its []GammaHarvestRow.
	JobGammaGrid = "gamma-grid"
	// JobDegreeGrid runs TableDegreeGamma (degree x regime x Γ) and
	// replies with its DegreeGammaResult.
	JobDegreeGrid = "degree-grid"
)

// SweepJobParams is the wire parameter block for both grid jobs. Zero
// fields take Options.Defaults (48 nodes, 64 rounds, seed 42); Degrees is
// only read by JobDegreeGrid and defaults to DefaultDegreeGrid.
type SweepJobParams struct {
	Nodes   int    `json:"nodes,omitempty"`
	Rounds  int    `json:"rounds,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	Degrees []int  `json:"degrees,omitempty"`
}

// options maps wire params onto experiment Options bound to the job's
// scoped runner, so every grid cell flows through the server's shared
// cache and the client's progress stream.
func (p SweepJobParams) options(r *sweep.Runner) Options {
	return Options{Nodes: p.Nodes, Rounds: p.Rounds, Seed: p.Seed, Sweep: r}.Defaults()
}

// RegisterSweepHandlers installs the experiment grid workloads on a sweep
// server. Handlers receive the per-job scoped runner, so hit/miss stats
// and per-cell progress events are reported per client while all jobs
// share one content-addressed cell store.
func RegisterSweepHandlers(s *sweep.Server) {
	decode := func(raw json.RawMessage) (SweepJobParams, error) {
		var p SweepJobParams
		if len(raw) > 0 {
			if err := json.Unmarshal(raw, &p); err != nil {
				return p, err
			}
		}
		return p, nil
	}
	s.Handle(JobGammaGrid, func(r *sweep.Runner, raw json.RawMessage) (any, error) {
		p, err := decode(raw)
		if err != nil {
			return nil, err
		}
		return TableGammaHarvest(p.options(r))
	})
	s.Handle(JobDegreeGrid, func(r *sweep.Runner, raw json.RawMessage) (any, error) {
		p, err := decode(raw)
		if err != nil {
			return nil, err
		}
		return TableDegreeGamma(p.options(r), p.Degrees)
	})
}
