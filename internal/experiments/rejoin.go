package experiments

import (
	"fmt"
	"math"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/harvest"
	"repro/internal/report"
	"repro/internal/sim"
)

// The rejoin scenario table isolates the next modeling decision after
// TableBrownout: what a revived node resumes with. All runs use the
// physical communication model (drop-and-renormalize) on identical fleets,
// seeds, and policies; the only difference between rows of a regime is the
// checkpoint subsystem's RejoinRule, so any accuracy gap is attributable to
// rejoin handling alone:
//
//	resume-stale        frozen-at-death parameters (the baseline)
//	restore-checkpoint  freshest aggregated snapshot in the live
//	                    neighborhood (own snapshot when isolated)
//	catch-up            staleness-discounted blend of the two
//
// Intermittent outages make staleness the dominant error source; the table
// shows how much of it rejoin aggregation buys back per harvest regime.

// RejoinRow summarizes one (regime, rule) rejoin run.
type RejoinRow struct {
	Regime        string  // harvest regime: "diurnal" or "markov"
	Rule          string  // rejoin rule name
	FinalAcc      float64 // mean final test accuracy, %
	Participation float64 // trained rounds / coordinated training slots, %
	Revivals      int     // rejoin events over the run
	Restores      int     // revivals that replaced stale in-RAM state
	MeanStaleness float64 // mean rounds-missed per revival
	MaxStaleness  int     // worst staleness seen in any revival
	DeadShare     float64 // mean share of the fleet below cutoff, %
}

// rejoinFleetOptions is brownoutFleetOptions pushed into the regime where
// rejoin handling actually binds: a higher cutoff and heavier idle draw
// lengthen the outages, so a revived node's parameters are several rounds
// stale. Short outages (the TableBrownout setting) leave so little
// staleness that all rejoin rules coincide.
func rejoinFleetOptions(meanTrainWh float64) harvest.Options {
	o := brownoutFleetOptions(meanTrainWh)
	o.CutoffSoC = 0.35
	o.IdleWh = 0.3 * meanTrainWh
	return o
}

// CatchUpHalfLives is the swept half-life grid of the rejoin table: how
// many rounds of staleness it takes for CatchUp to trust its own snapshot
// and its neighborhood equally. The grid brackets the former fixed default
// (h = 2) so the sweep shows which way each regime's outage-length
// distribution pulls the blend.
var CatchUpHalfLives = []float64{1, 2, 4}

// rejoinRules returns the strategies under comparison — the stale baseline,
// the neighborhood restore, and CatchUp at every swept half-life — rebuilt
// per run so no state leaks between cells.
func rejoinRules() ([]checkpoint.RejoinRule, error) {
	rules := []checkpoint.RejoinRule{
		checkpoint.ResumeStale{},
		checkpoint.RestoreCheckpoint{},
	}
	for _, h := range CatchUpHalfLives {
		catchUp, err := checkpoint.NewCatchUp(h)
		if err != nil {
			return nil, err
		}
		rules = append(rules, catchUp)
	}
	return rules, nil
}

// BestCatchUpHalfLife returns the accuracy-maximal CatchUp half-life among
// a regime's rows (ties keep the smaller h), or 0 when the regime has no
// catch-up rows — the per-regime tuning answer the sweep exists to give.
func BestCatchUpHalfLife(rows []RejoinRow, regime string) float64 {
	best, bestAcc := 0.0, math.Inf(-1)
	for _, h := range CatchUpHalfLives {
		name := fmt.Sprintf("catch-up(h=%g)", h)
		for _, r := range rows {
			if r.Regime == regime && r.Rule == name && r.FinalAcc > bestAcc {
				best, bestAcc = h, r.FinalAcc
			}
		}
	}
	return best
}

// TableRejoin runs the rejoin comparison (harvest regime x rejoin rule,
// with CatchUp swept over CatchUpHalfLives) and renders the table. Every
// cell is bit-reproducible at any GOMAXPROCS: rejoins are computed from
// the frozen start-of-round state in node order.
func TableRejoin(o Options) ([]RejoinRow, error) {
	o = o.Defaults()
	g, weights, err := topologyFor(o.Nodes, 6, o.Seed)
	if err != nil {
		return nil, err
	}
	part, _, test, err := cifarLikeData(o)
	if err != nil {
		return nil, err
	}
	devices := energy.AssignDevices(o.Nodes, energy.Devices())
	workload := energy.CIFAR10Workload()
	meanTrainWh := energy.NetworkRoundWh(o.Nodes, energy.Devices(), workload) / float64(o.Nodes)

	schedule := core.AllTrain{}
	trainSlots := core.CountTrainRounds(schedule, o.Rounds)
	var rows []RejoinRow
	for _, regime := range brownoutRegimes(o, meanTrainWh) {
		rules, err := rejoinRules()
		if err != nil {
			return nil, err
		}
		for _, rule := range rules {
			trace, err := regime.trace()
			if err != nil {
				return nil, fmt.Errorf("experiments: rejoin %s: %w", regime.name, err)
			}
			fleet, err := harvest.NewFleet(devices, workload, trace, rejoinFleetOptions(meanTrainWh))
			if err != nil {
				return nil, fmt.Errorf("experiments: rejoin %s: %w", regime.name, err)
			}
			policy, err := harvest.NewSoCThreshold(0.45)
			if err != nil {
				return nil, fmt.Errorf("experiments: rejoin %s: %w", regime.name, err)
			}
			mgr, err := checkpoint.NewManager(o.Nodes, nil, rule)
			if err != nil {
				return nil, fmt.Errorf("experiments: rejoin %s: %w", regime.name, err)
			}
			res, err := sim.Run(sim.Config{
				Graph: g, Weights: weights,
				Algo:         core.Algorithm{Label: regime.name + "/" + rule.Name(), Schedule: schedule, Policy: policy},
				Rounds:       o.Rounds,
				ModelFactory: modelFactory(32, 10),
				LR:           o.LR, BatchSize: o.BatchSize, LocalSteps: o.LocalSteps,
				Partition: part, Test: test,
				EvalEvery: o.EvalEvery, EvalSubsample: o.EvalSubsample,
				Devices: devices, Workload: workload,
				Harvest:       fleet,
				DropDeadNodes: true,
				Checkpoint:    mgr,
				Seed:          o.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: rejoin %s/%s: %w", regime.name, rule.Name(), err)
			}
			trained := 0
			for _, tr := range res.TrainedRounds {
				trained += tr
			}
			var deadSum float64
			maxStale := 0
			for _, m := range res.History {
				deadSum += float64(m.Depleted)
				if m.MaxStaleness > maxStale {
					maxStale = m.MaxStaleness
				}
			}
			rows = append(rows, RejoinRow{
				Regime:        regime.name,
				Rule:          rule.Name(),
				FinalAcc:      res.FinalMeanAcc * 100,
				Participation: 100 * float64(trained) / float64(o.Nodes*trainSlots),
				Revivals:      res.TotalRevivals,
				Restores:      res.TotalRestores,
				MeanStaleness: res.MeanRejoinStaleness(),
				MaxStaleness:  maxStale,
				DeadShare:     100 * deadSum / (float64(len(res.History)) * float64(o.Nodes)),
			})
		}
	}

	tb := report.NewTable("Rejoin after brown-out: what a revived node resumes with (drop-and-renormalize, sim scale)",
		"Regime", "Rejoin rule", "Acc %", "Particip %", "Revivals", "Restores", "Mean stale", "Max stale", "Dead %")
	for _, r := range rows {
		tb.AddRowf("%s|%s|%.2f|%.1f|%d|%d|%.2f|%d|%.1f",
			r.Regime, r.Rule, r.FinalAcc, r.Participation, r.Revivals,
			r.Restores, r.MeanStaleness, r.MaxStaleness, r.DeadShare)
	}
	tb.Render(o.Out)
	return rows, nil
}
