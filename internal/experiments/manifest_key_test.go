package experiments

import (
	"runtime"
	"testing"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// cellHash builds the cache key hash a grid cell would get under the
// given options, degree, regime index, and schedule.
func cellHash(t *testing.T, o Options, degree, regimeIdx, gt, gs int) string {
	t.Helper()
	o = o.Defaults()
	w, err := newGammaWorldDegree(o, degree)
	if err != nil {
		t.Fatal(err)
	}
	regime := GammaGridRegimes(o)[regimeIdx]
	sample, err := regime.Trace(o, w.meanTrainWh)
	if err != nil {
		t.Fatal(err)
	}
	return sweep.KeyFromManifest(w.cellManifest(regime, sample.Name(), gt, gs)).ConfigHash
}

// TestCellManifestKeyStability is the key-stability table: every knob that
// changes a cell's computed bits must move its ConfigHash, and every knob
// that cannot — telemetry, the memo runner itself, the fleet engine
// (pointer and SoA are pinned bit-identical), worker count — must leave it
// untouched. A key that under-hashes serves stale bits; one that
// over-hashes silently destroys the cache's hit rate.
func TestCellManifestKeyStability(t *testing.T) {
	base := cellHash(t, tiny(), 6, 1, 2, 3)

	t.Run("distinct", func(t *testing.T) {
		seed := tiny()
		seed.Seed++
		nodes := tiny()
		nodes.Nodes = 32
		rounds := tiny()
		rounds.Rounds++
		lr := tiny()
		lr.LR = 0.1
		noise := tiny()
		noise.Noise = 3.0
		cases := map[string]string{
			"seed":    cellHash(t, seed, 6, 1, 2, 3),
			"nodes":   cellHash(t, nodes, 6, 1, 2, 3),
			"rounds":  cellHash(t, rounds, 6, 1, 2, 3),
			"lr":      cellHash(t, lr, 6, 1, 2, 3),
			"noise":   cellHash(t, noise, 6, 1, 2, 3),
			"degree":  cellHash(t, tiny(), 8, 1, 2, 3),
			"regime":  cellHash(t, tiny(), 6, 3, 2, 3),
			"gamma-t": cellHash(t, tiny(), 6, 1, 3, 3),
			"gamma-s": cellHash(t, tiny(), 6, 1, 2, 4),
		}
		seen := map[string]string{base: "base"}
		for name, h := range cases {
			if prev, dup := seen[h]; dup {
				t.Errorf("%s collides with %s: %s", name, prev, h)
			}
			seen[h] = name
		}
	})

	t.Run("identical", func(t *testing.T) {
		soa := tiny()
		soa.FleetEngine = "soa"
		probed := tiny()
		probed.Probe = obs.NewProbe(obs.NewMemory())
		swept := tiny()
		swept.Sweep = sweep.NewRunner(sweep.NewMemStore(0), nil)
		evalEvery := tiny()
		evalEvery.EvalEvery = 1 // cells always run EvalEvery 0
		cases := map[string]string{
			"fleet-engine-soa": cellHash(t, soa, 6, 1, 2, 3),
			"probe-attached":   cellHash(t, probed, 6, 1, 2, 3),
			"sweep-attached":   cellHash(t, swept, 6, 1, 2, 3),
			"eval-every":       cellHash(t, evalEvery, 6, 1, 2, 3),
		}
		old := runtime.GOMAXPROCS(1)
		cases["gomaxprocs"] = cellHash(t, tiny(), 6, 1, 2, 3)
		runtime.GOMAXPROCS(old)
		for name, h := range cases {
			if h != base {
				t.Errorf("%s moved the hash: %s != %s", name, h, base)
			}
		}
	})
}

// TestManifestEngineAndBatteryShapeHashed pins the remaining key axes at
// the manifest level: the engine string (the sim and async engines must
// never share cells even for otherwise-identical configs) and the fleet
// battery shape fields cellManifest hashes.
func TestManifestEngineAndBatteryShapeHashed(t *testing.T) {
	build := func(engine string, capacity, initial float64) string {
		return obs.NewManifest(engine, "", 7).
			Scale(16, 20).
			Setf("fleet_capacity_rounds", "%g", capacity).
			Setf("fleet_initial_soc", "%g", initial).
			Build().ConfigHash
	}
	base := build("sim", 12, 0.75)
	if h := build("async", 12, 0.75); h == base {
		t.Error("sim and async engines share a config hash")
	}
	if h := build("sim", 24, 0.75); h == base {
		t.Error("battery capacity not hashed")
	}
	if h := build("sim", 12, 0.5); h == base {
		t.Error("initial SoC not hashed")
	}
	if h := build("sim", 12, 0.75); h != base {
		t.Error("identical configs hash differently")
	}
}
