package experiments

import (
	"fmt"

	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/harvest"
	"repro/internal/report"
	"repro/internal/sim"
)

// The async-harvest table compares the two intermittency engines on
// identical physics: the round-synchronous engine (sim.Run, batteries
// settled once per global round) and the event-driven engine (async.Run,
// batteries on the continuous virtual clock with solved wake and brown-out
// crossings). Both legs of each regime share trace parameters, seeds,
// fleet shaping, and participation policy, so differences in accuracy,
// energy, and outage share are attributable to the time model alone.

// AsyncHarvestRow summarizes one (regime, engine) run.
type AsyncHarvestRow struct {
	Regime        string  // harvest regime: "diurnal" or "markov"
	Engine        string  // "sync-round" or "async-event"
	FinalAcc      float64 // mean final test accuracy, %
	Steps         int     // local step slots processed (sync: nodes x rounds)
	Trained       int     // steps that included local SGD
	BrownoutShare float64 // share of node-time below cutoff, %
	HarvestedWh   float64 // stored ambient energy (sim scale)
	ConsumedWh    float64 // battery drain: train + comm + idle (sim scale)
}

// TableAsyncHarvest runs the 2x2 comparison (harvest regime x intermittency
// engine) and renders the table. The async horizon covers exactly
// o.Rounds trace rounds at the fleet-mean step duration, so both engines
// see the same stretch of the ambient process.
func TableAsyncHarvest(o Options) ([]AsyncHarvestRow, error) {
	o = o.Defaults()
	g, weights, err := topologyFor(o.Nodes, 6, o.Seed)
	if err != nil {
		return nil, err
	}
	part, _, test, err := cifarLikeData(o)
	if err != nil {
		return nil, err
	}
	devices := energy.AssignDevices(o.Nodes, energy.Devices())
	workload := energy.CIFAR10Workload()
	meanTrainWh := energy.NetworkRoundWh(o.Nodes, energy.Devices(), workload) / float64(o.Nodes)
	meanStepSec := 0.0
	for _, d := range devices {
		meanStepSec += d.TrainRoundSeconds(workload)
	}
	meanStepSec /= float64(len(devices))

	schedule := core.AllTrain{}
	var rows []AsyncHarvestRow
	for _, regime := range brownoutRegimes(o, meanTrainWh) {
		// Sync leg: the round engine with the physical dead-node model
		// (dropped edges), the closest analogue of the event engine's
		// dropped gossips.
		trace, err := regime.trace()
		if err != nil {
			return nil, fmt.Errorf("experiments: async-harvest %s: %w", regime.name, err)
		}
		fleet, err := harvest.NewFleet(devices, workload, trace, brownoutFleetOptions(meanTrainWh))
		if err != nil {
			return nil, fmt.Errorf("experiments: async-harvest %s: %w", regime.name, err)
		}
		policy, err := harvest.NewSoCThreshold(0.35)
		if err != nil {
			return nil, fmt.Errorf("experiments: async-harvest %s: %w", regime.name, err)
		}
		res, err := sim.Run(sim.Config{
			Graph: g, Weights: weights,
			Algo:         core.Algorithm{Label: "sync/" + regime.name, Schedule: schedule, Policy: policy},
			Rounds:       o.Rounds,
			ModelFactory: modelFactory(32, 10),
			LR:           o.LR, BatchSize: o.BatchSize, LocalSteps: o.LocalSteps,
			Partition: part, Test: test,
			EvalEvery: o.EvalEvery, EvalSubsample: o.EvalSubsample,
			Devices: devices, Workload: workload,
			Harvest:       fleet,
			DropDeadNodes: true,
			Seed:          o.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: async-harvest sync/%s: %w", regime.name, err)
		}
		trained, depletedSum := 0, 0.0
		for _, tr := range res.TrainedRounds {
			trained += tr
		}
		for _, m := range res.History {
			depletedSum += float64(m.Depleted)
		}
		rows = append(rows, AsyncHarvestRow{
			Regime:        regime.name,
			Engine:        "sync-round",
			FinalAcc:      res.FinalMeanAcc * 100,
			Steps:         o.Nodes * o.Rounds,
			Trained:       trained,
			BrownoutShare: 100 * depletedSum / (float64(len(res.History)) * float64(o.Nodes)),
			HarvestedWh:   res.TotalHarvestWh,
			ConsumedWh:    fleet.ConsumedWh(),
		})

		// Async leg: same trace parameters and seed on a fresh instance,
		// same fleet shaping and policy, horizon spanning the same
		// o.Rounds trace rounds.
		atrace, err := regime.trace()
		if err != nil {
			return nil, fmt.Errorf("experiments: async-harvest %s: %w", regime.name, err)
		}
		apolicy, err := harvest.NewSoCThreshold(0.35)
		if err != nil {
			return nil, fmt.Errorf("experiments: async-harvest %s: %w", regime.name, err)
		}
		ares, err := async.Run(async.Config{
			Graph:        g,
			Algo:         core.Algorithm{Label: "async/" + regime.name, Schedule: schedule, Policy: apolicy},
			Horizon:      float64(o.Rounds) * meanStepSec,
			ModelFactory: modelFactory(32, 10),
			LR:           o.LR, BatchSize: o.BatchSize, LocalSteps: o.LocalSteps,
			Partition: part, Test: test,
			Devices: devices, Workload: workload,
			Trace:            atrace,
			FleetOptions:     brownoutFleetOptions(meanTrainWh),
			RoundSeconds:     meanStepSec,
			EvalEverySeconds: float64(o.EvalEvery) * meanStepSec,
			EvalSubsample:    o.EvalSubsample,
			Seed:             o.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: async-harvest async/%s: %w", regime.name, err)
		}
		asteps, atrained := 0, 0
		for i := range ares.StepsPerNode {
			asteps += ares.StepsPerNode[i]
			atrained += ares.TrainedSteps[i]
		}
		rows = append(rows, AsyncHarvestRow{
			Regime:        regime.name,
			Engine:        "async-event",
			FinalAcc:      ares.FinalMeanAcc * 100,
			Steps:         asteps,
			Trained:       atrained,
			BrownoutShare: 100 * ares.BrownoutShare,
			HarvestedWh:   ares.HarvestedWh,
			ConsumedWh:    ares.ConsumedWh,
		})
	}

	tb := report.NewTable("Intermittency engines: round-synchronous vs event-driven under identical harvest traces (sim scale)",
		"Regime", "Engine", "Acc %", "Steps", "Trained", "Brown-out %", "Harvested Wh", "Consumed Wh")
	for _, r := range rows {
		tb.AddRowf("%s|%s|%.2f|%d|%d|%.1f|%.4f|%.4f",
			r.Regime, r.Engine, r.FinalAcc, r.Steps, r.Trained,
			r.BrownoutShare, r.HarvestedWh, r.ConsumedWh)
	}
	tb.Render(o.Out)
	return rows, nil
}
