package sim

import (
	"math"
	"runtime"
	"sort"
	"testing"

	"repro/internal/harvest"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// Telemetry must be invisible to the simulation: the same run with a probe
// attached produces bit-identical model state to the run without one.
func TestTelemetryBitIdentical(t *testing.T) {
	run := func(attach bool) (*Result, *obs.MemorySink) {
		cfg := harvestConfig(t, 6)
		cfg.Rounds = 16
		cfg.EvalGlobalModel = true
		var mem *obs.MemorySink
		if attach {
			mem = obs.NewMemory()
			cfg.Probe = obs.NewProbe(mem)
			cfg.Probe.TrackAllocs = true
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, mem
	}
	plain, _ := run(false)
	probed, mem := run(true)

	if len(plain.FinalGlobalParams) == 0 {
		t.Fatal("no global params to compare")
	}
	for i := range plain.FinalGlobalParams {
		if plain.FinalGlobalParams[i] != probed.FinalGlobalParams[i] {
			t.Fatalf("param %d differs with telemetry on: %v vs %v",
				i, plain.FinalGlobalParams[i], probed.FinalGlobalParams[i])
		}
	}
	if plain.FinalMeanAcc != probed.FinalMeanAcc {
		t.Fatalf("accuracy differs with telemetry on: %v vs %v", plain.FinalMeanAcc, probed.FinalMeanAcc)
	}
	if mem.Count(obs.KindRunStart) != 1 || mem.Count(obs.KindRunEnd) != 1 {
		t.Fatalf("run events: %d start, %d end", mem.Count(obs.KindRunStart), mem.Count(obs.KindRunEnd))
	}
	if got := mem.Count(obs.KindRoundEnd); got != 16 {
		t.Fatalf("round_end events = %d, want 16", got)
	}
	if mem.Count(obs.KindPhase) == 0 {
		t.Fatal("no phase events emitted")
	}
	first := mem.Events()[0]
	if first.Kind != obs.KindRunStart || first.Manifest == nil || first.Manifest.ConfigHash == "" {
		t.Fatalf("stream must open with a manifest-carrying run_start, got %+v", first)
	}
}

// Telemetry on, worker width varied: the pinned bit-reproducibility
// guarantee must survive the probe.
func TestTelemetryDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func(procs int) *Result {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		cfg := harvestConfig(t, 9)
		cfg.Rounds = 12
		cfg.EvalGlobalModel = true
		cfg.Probe = obs.NewProbe(obs.NewMemory())
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, wide := run(1), run(8)
	for i := range serial.FinalGlobalParams {
		if serial.FinalGlobalParams[i] != wide.FinalGlobalParams[i] {
			t.Fatalf("param %d differs across GOMAXPROCS with telemetry on", i)
		}
	}
}

// The streamed SoC percentiles must stay within one sketch bin of the
// exact percentiles computed from the full TrackSoC snapshot.
func TestSoCQuantilesMatchExact(t *testing.T) {
	cfg := harvestConfig(t, 11)
	cfg.Rounds = 20
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	binWidth := 1.0 / obs.SoCBins
	for _, m := range res.History {
		if len(m.SoCs) != cfg.Graph.N {
			t.Fatalf("round %d: TrackSoC snapshot has %d nodes", m.Round, len(m.SoCs))
		}
		sorted := append([]float64(nil), m.SoCs...)
		sort.Float64s(sorted)
		exact := func(q float64) float64 {
			rank := int(math.Ceil(q * float64(len(sorted))))
			if rank < 1 {
				rank = 1
			}
			return sorted[rank-1]
		}
		for _, c := range []struct {
			q    float64
			got  float64
			name string
		}{
			{0.50, m.SoCP50, "P50"},
			{0.90, m.SoCP90, "P90"},
			{0.99, m.SoCP99, "P99"},
		} {
			if math.Abs(c.got-exact(c.q)) > binWidth {
				t.Fatalf("round %d: streamed %s = %v, exact %v, off by more than one bin",
					m.Round, c.name, c.got, exact(c.q))
			}
		}
	}
}

// Without TrackSoC the per-round snapshot is not materialized, but the
// streamed percentiles are still filled — the allocation fix's contract.
func TestTrackSoCOffStreamsPercentilesOnly(t *testing.T) {
	cfg := harvestConfig(t, 13)
	cfg.Rounds = 8
	cfg.TrackSoC = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.History {
		if m.SoCs != nil {
			t.Fatalf("round %d: SoCs materialized without TrackSoC", m.Round)
		}
		if math.IsNaN(m.SoCP50) || m.SoCP50 <= 0 {
			t.Fatalf("round %d: streamed P50 = %v, want a real percentile", m.Round, m.SoCP50)
		}
		if m.SoCP50 > m.SoCP90+1.0/obs.SoCBins || m.SoCP90 > m.SoCP99+1.0/obs.SoCBins {
			t.Fatalf("round %d: percentiles not monotone: %v %v %v", m.Round, m.SoCP50, m.SoCP90, m.SoCP99)
		}
	}
	if len(res.FinalSoC) != cfg.Graph.N {
		t.Fatal("FinalSoC should be recorded regardless of TrackSoC")
	}
}

// Every result carries a manifest whose hash is stable across identical
// runs and sensitive to the seed.
func TestResultManifestStamped(t *testing.T) {
	run := func(seed uint64) *Result {
		cfg := harvestConfig(t, seed)
		cfg.Rounds = 4
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, c := run(6), run(6), run(7)
	if a.Manifest.Engine != "sim" || a.Manifest.ConfigHash == "" {
		t.Fatalf("bad manifest: %+v", a.Manifest)
	}
	if a.Manifest.ConfigHash != b.Manifest.ConfigHash {
		t.Fatal("identical runs produced different config hashes")
	}
	if a.Manifest.ConfigHash == c.Manifest.ConfigHash {
		t.Fatal("different seeds share a config hash")
	}
	if a.Manifest.Nodes != 8 || a.Manifest.Rounds != 4 {
		t.Fatalf("manifest scale: %d nodes, %d rounds", a.Manifest.Nodes, a.Manifest.Rounds)
	}
}

// Every round_end on a harvest run must carry the per-round energy ledger,
// and the ledger must conserve: prevCharge + harvested - consumed - wasted
// equals the new fleet charge within analyze.EnergyTol, on both engines.
func TestRoundEndEnergyLedgerConserves(t *testing.T) {
	for _, engine := range []string{harvest.EnginePointer, harvest.EngineSoA} {
		t.Run(engine, func(t *testing.T) {
			cfg := harvestEngineConfig(t, 17, engine)
			cfg.Rounds = 16
			mem := obs.NewMemory()
			cfg.Probe = obs.NewProbe(mem)
			if _, err := Run(cfg); err != nil {
				t.Fatal(err)
			}

			first := mem.Events()[0]
			if first.Kind != obs.KindRunStart || first.ChargeWh <= 0 {
				t.Fatalf("run_start must carry the initial fleet charge, got %+v", first)
			}
			prev := first.ChargeWh
			var cumHarvest, cumConsumed, cumWasted float64
			rounds := 0
			for _, ev := range mem.Events() {
				if ev.Kind != obs.KindRoundEnd {
					continue
				}
				rounds++
				if ev.HarvestWh < 0 || ev.ConsumedWh < 0 || ev.WastedWh < 0 {
					t.Fatalf("round %d: negative energy total: %+v", ev.Round, ev)
				}
				cumHarvest += ev.HarvestWh
				cumConsumed += ev.ConsumedWh
				cumWasted += ev.WastedWh
				residual := prev + ev.HarvestWh - ev.ConsumedWh - ev.WastedWh - ev.ChargeWh
				if tol := analyze.EnergyTol(cumHarvest, cumConsumed, cumWasted, ev.ChargeWh); math.Abs(residual) > tol {
					t.Fatalf("round %d: conservation residual %g exceeds tolerance %g", ev.Round, residual, tol)
				}
				prev = ev.ChargeWh
			}
			if rounds != cfg.Rounds {
				t.Fatalf("saw %d energy-bearing round_ends, want %d", rounds, cfg.Rounds)
			}
			if cumHarvest <= 0 || cumConsumed <= 0 {
				t.Fatalf("diurnal fleet ledger empty: harvest %g, consumed %g", cumHarvest, cumConsumed)
			}
		})
	}
}
