package sim

import (
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/harvest"
	"repro/internal/harvest/difftest"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/transport"
)

// testConfig builds a small but non-trivial experiment: 8 nodes on a
// 4-regular graph, logistic regression on a 6-class synthetic task with a
// 2-shard non-IID partition.
func testConfig(t *testing.T, seed uint64) Config {
	t.Helper()
	g, err := graph.Regular(8, 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dataset.SyntheticConfig{Classes: 6, Dim: 8, Train: 480, Test: 120, Noise: 0.8, Seed: seed}
	train, test, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	part, err := dataset.ShardPartition(train, 8, 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Graph:   g,
		Weights: graph.Metropolis(g),
		Algo:    core.DPSGD(),
		Rounds:  12,
		ModelFactory: func(node int, r *rng.RNG) *nn.Network {
			return nn.LogisticRegression(8, 6, r)
		},
		LR:         0.05,
		BatchSize:  16,
		LocalSteps: 3,
		Partition:  part,
		Test:       test,
		EvalEvery:  4,
		Seed:       seed,
	}
}

func TestRunDPSGDImprovesAccuracy(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.Rounds = 30
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalMeanAcc < 0.4 {
		t.Fatalf("final accuracy %.3f; model did not learn (chance = 0.167)", res.FinalMeanAcc)
	}
	if len(res.History) != 30 {
		t.Fatalf("history has %d rounds", len(res.History))
	}
	// Every node trained every round under D-PSGD.
	for i, tr := range res.TrainedRounds {
		if tr != 30 {
			t.Fatalf("node %d trained %d/30 rounds under D-PSGD", i, tr)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	r1, err := Run(testConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(testConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.History {
		a, b := r1.History[i], r2.History[i]
		if a.MeanAcc != b.MeanAcc || a.StdAcc != b.StdAcc || a.TrainedCount != b.TrainedCount {
			t.Fatalf("round %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	r1, _ := Run(testConfig(t, 3))
	r2, _ := Run(testConfig(t, 4))
	if r1.FinalMeanAcc == r2.FinalMeanAcc && r1.History[0].MeanAcc == r2.History[0].MeanAcc {
		t.Fatal("different seeds gave identical trajectories")
	}
}

func TestRunTCPMatchesLocal(t *testing.T) {
	// The same experiment over real TCP sockets must produce bit-identical
	// results to the channel transport: the engine is transport-agnostic
	// and fully deterministic.
	cfgLocal := testConfig(t, 5)
	cfgLocal.Rounds = 6
	resLocal, err := Run(cfgLocal)
	if err != nil {
		t.Fatal(err)
	}
	cfgTCP := testConfig(t, 5)
	cfgTCP.Rounds = 6
	tcpNet, err := transport.NewTCP(cfgTCP.Graph.N, "127.0.0.1", 64)
	if err != nil {
		t.Skipf("no localhost sockets: %v", err)
	}
	defer tcpNet.Close()
	cfgTCP.Network = tcpNet
	resTCP, err := Run(cfgTCP)
	if err != nil {
		t.Fatal(err)
	}
	for i := range resLocal.History {
		if resLocal.History[i].MeanAcc != resTCP.History[i].MeanAcc {
			t.Fatalf("round %d: local %.6f != tcp %.6f", i,
				resLocal.History[i].MeanAcc, resTCP.History[i].MeanAcc)
		}
	}
}

func TestSkipTrainSchedulingAndEnergy(t *testing.T) {
	gamma, _ := core.NewGamma(1, 1)
	cfg := testConfig(t, 6)
	cfg.Rounds = 10
	cfg.Algo = core.SkipTrain(gamma)
	cfg.Devices = energy.AssignDevices(8, energy.Devices())
	cfg.Workload = energy.CIFAR10Workload()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 5 of 10 rounds train -> each node trained 5 rounds.
	for i, tr := range res.TrainedRounds {
		if tr != 5 {
			t.Fatalf("node %d trained %d rounds, want 5", i, tr)
		}
	}
	// Energy must be exactly half of the D-PSGD run.
	cfgD := testConfig(t, 6)
	cfgD.Rounds = 10
	cfgD.Devices = energy.AssignDevices(8, energy.Devices())
	cfgD.Workload = energy.CIFAR10Workload()
	resD, err := Run(cfgD)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TotalTrainWh-resD.TotalTrainWh/2) > 1e-9 {
		t.Fatalf("SkipTrain(1,1) energy %.6f, want half of D-PSGD's %.6f",
			res.TotalTrainWh, resD.TotalTrainWh)
	}
	// Communication happens every round for both.
	if math.Abs(res.TotalCommWh-resD.TotalCommWh) > 1e-9 {
		t.Fatalf("comm energy should match: %.6f vs %.6f", res.TotalCommWh, resD.TotalCommWh)
	}
}

func TestRoundKindsRecorded(t *testing.T) {
	gamma, _ := core.NewGamma(2, 1)
	cfg := testConfig(t, 7)
	cfg.Rounds = 6
	cfg.Algo = core.SkipTrain(gamma)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []core.RoundKind{core.RoundTrain, core.RoundTrain, core.RoundSync,
		core.RoundTrain, core.RoundTrain, core.RoundSync}
	for i, k := range want {
		if res.History[i].Kind != k {
			t.Fatalf("round %d kind = %v, want %v", i, res.History[i].Kind, k)
		}
		wantCount := 8
		if k == core.RoundSync {
			wantCount = 0
		}
		if res.History[i].TrainedCount != wantCount {
			t.Fatalf("round %d trained %d nodes, want %d", i, res.History[i].TrainedCount, wantCount)
		}
	}
}

func TestGreedyBudgetExhaustion(t *testing.T) {
	cfg := testConfig(t, 8)
	cfg.Rounds = 10
	budget := energy.NewBudget([]int{3, 3, 3, 3, 0, 5, 100, 3})
	cfg.Algo = core.Greedy(budget)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 3, 3, 3, 0, 5, 10, 3} // clamped at rounds
	for i, w := range want {
		if res.TrainedRounds[i] != w {
			t.Fatalf("node %d trained %d rounds, want %d", i, res.TrainedRounds[i], w)
		}
	}
}

func TestConstrainedRespectsBudgets(t *testing.T) {
	gamma, _ := core.NewGamma(1, 1)
	cfg := testConfig(t, 9)
	cfg.Rounds = 20 // T_train = 10
	budgets := []int{2, 4, 6, 8, 10, 12, 1, 0}
	budget := energy.NewBudget(budgets)
	cfg.Algo = core.SkipTrainConstrained(gamma, cfg.Rounds, budget, 8)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range budgets {
		if res.TrainedRounds[i] > b {
			t.Fatalf("node %d trained %d rounds, budget %d", i, res.TrainedRounds[i], b)
		}
	}
	// Node with budget >= T_train has p=1: trains all 10 coordinated rounds.
	if res.TrainedRounds[4] != 10 || res.TrainedRounds[5] != 10 {
		t.Fatalf("unconstrained-equivalent nodes trained %d/%d, want 10/10",
			res.TrainedRounds[4], res.TrainedRounds[5])
	}
	// Node with zero budget never trains.
	if res.TrainedRounds[7] != 0 {
		t.Fatalf("zero-budget node trained %d rounds", res.TrainedRounds[7])
	}
}

func TestSyncOnlyPreservesMeanAndContracts(t *testing.T) {
	// With zero budgets nobody ever trains, so every round is effectively a
	// synchronization round: the mean model must stay constant (W is doubly
	// stochastic) and the consensus distance must shrink monotonically.
	cfg := testConfig(t, 10)
	cfg.Rounds = 15
	cfg.Algo = core.Greedy(energy.NewBudget(make([]int, 8)))
	cfg.EvalEvery = 1
	cfg.EvalGlobalModel = true
	cfg.TrackConsensus = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	evals := res.Evaluations()
	if len(evals) != 15 {
		t.Fatalf("want 15 evaluations, got %d", len(evals))
	}
	for i := 1; i < len(evals); i++ {
		if evals[i].Consensus > evals[i-1].Consensus+1e-12 {
			t.Fatalf("consensus distance grew at round %d: %v -> %v",
				i, evals[i-1].Consensus, evals[i].Consensus)
		}
	}
	// By the end all models agree: node-accuracy spread collapses.
	last := evals[len(evals)-1]
	if last.Consensus > evals[0].Consensus*0.5 {
		t.Fatalf("consensus distance barely shrank: %v -> %v", evals[0].Consensus, last.Consensus)
	}
	// Global model accuracy equals mean node accuracy as models converge.
	if math.Abs(last.GlobalAcc-last.MeanAcc) > 0.08 {
		t.Fatalf("global %.3f vs mean %.3f at consensus", last.GlobalAcc, last.MeanAcc)
	}
}

func TestAllReduceCollapsesVariance(t *testing.T) {
	cfg := testConfig(t, 11)
	cfg.Rounds = 8
	cfg.Algo = core.AllReduce()
	cfg.EvalEvery = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// After global averaging all nodes hold the same model: std accuracy 0
	// (up to float rounding in the mean).
	for _, m := range res.Evaluations() {
		if m.StdAcc > 1e-9 {
			t.Fatalf("round %d: all-reduce left accuracy std %v", m.Round, m.StdAcc)
		}
	}
}

func TestAllReduceBeatsDPSGDUnderNonIID(t *testing.T) {
	// Figure 1's claim, at test scale: evaluating the all-reduced model
	// gives higher accuracy than the average node accuracy of D-PSGD.
	base := testConfig(t, 12)
	base.Rounds = 25
	dpsgd, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	ar := testConfig(t, 12)
	ar.Rounds = 25
	ar.Algo = core.AllReduce()
	allreduce, err := Run(ar)
	if err != nil {
		t.Fatal(err)
	}
	if allreduce.FinalMeanAcc < dpsgd.FinalMeanAcc-0.02 {
		t.Fatalf("all-reduce %.3f should not lag D-PSGD %.3f under non-IID",
			allreduce.FinalMeanAcc, dpsgd.FinalMeanAcc)
	}
}

func TestEvalEverySemantics(t *testing.T) {
	cfg := testConfig(t, 13)
	cfg.Rounds = 10
	cfg.EvalEvery = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rounds []int
	for _, m := range res.Evaluations() {
		rounds = append(rounds, m.Round)
	}
	want := []int{2, 5, 8, 9} // after rounds 3,6,9 (0-based 2,5,8) and final
	if len(rounds) != len(want) {
		t.Fatalf("evaluated rounds %v, want %v", rounds, want)
	}
	for i := range want {
		if rounds[i] != want[i] {
			t.Fatalf("evaluated rounds %v, want %v", rounds, want)
		}
	}
	// EvalEvery=0: final only.
	cfg2 := testConfig(t, 13)
	cfg2.EvalEvery = 0
	res2, _ := Run(cfg2)
	if len(res2.Evaluations()) != 1 || res2.Evaluations()[0].Round != cfg2.Rounds-1 {
		t.Fatal("EvalEvery=0 should evaluate only the final round")
	}
}

func TestEvalSubsample(t *testing.T) {
	cfg := testConfig(t, 14)
	cfg.EvalSubsample = 10
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := map[string]func(*Config){
		"nil graph":    func(c *Config) { c.Graph = nil },
		"nil weights":  func(c *Config) { c.Weights = nil },
		"zero rounds":  func(c *Config) { c.Rounds = 0 },
		"nil factory":  func(c *Config) { c.ModelFactory = nil },
		"zero lr":      func(c *Config) { c.LR = 0 },
		"bad batch":    func(c *Config) { c.BatchSize = 0 },
		"bad steps":    func(c *Config) { c.LocalSteps = 0 },
		"nil test":     func(c *Config) { c.Test = nil },
		"short part":   func(c *Config) { c.Partition = c.Partition[:4] },
		"bad devices":  func(c *Config) { c.Devices = energy.Devices() },
		"nil schedule": func(c *Config) { c.Algo.Schedule = nil },
	}
	for name, mutate := range mutations {
		cfg := testConfig(t, 15)
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Fatalf("%s: want validation error", name)
		}
	}
}

func TestCumulativeEnergyMonotone(t *testing.T) {
	cfg := testConfig(t, 16)
	cfg.Devices = energy.AssignDevices(8, energy.Devices())
	cfg.Workload = energy.CIFAR10Workload()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i].CumTrainWh < res.History[i-1].CumTrainWh {
			t.Fatal("cumulative training energy decreased")
		}
		if res.History[i].CumCommWh < res.History[i-1].CumCommWh {
			t.Fatal("cumulative comm energy decreased")
		}
	}
	if res.TotalCommWh <= 0 || res.TotalTrainWh <= 0 {
		t.Fatal("energy totals missing")
	}
	// Training dominates communication by design (paper: >200x per round,
	// here 12 rounds so ratio is 216).
	if res.TotalTrainWh/res.TotalCommWh < 100 {
		t.Fatalf("train/comm ratio %.1f too small", res.TotalTrainWh/res.TotalCommWh)
	}
}

func TestMixedModelArchitecturesRejected(t *testing.T) {
	cfg := testConfig(t, 17)
	cfg.ModelFactory = func(node int, r *rng.RNG) *nn.Network {
		if node == 3 {
			return nn.LogisticRegression(8, 5, r) // wrong class count
		}
		return nn.LogisticRegression(8, 6, r)
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("heterogeneous parameter counts must be rejected")
	}
}

func TestParallelFor(t *testing.T) {
	out := make([]int, 100)
	parallelFor(100, func(i int) { out[i] = i * i })
	for i := range out {
		if out[i] != i*i {
			t.Fatalf("parallelFor missed index %d", i)
		}
	}
	parallelFor(0, func(int) { t.Fatal("must not call fn for n=0") })
}

func TestMeanModelPreservationProperty(t *testing.T) {
	// Engine-level invariant: on sync-only rounds the average of all model
	// vectors is invariant (doubly stochastic W). Verified through the
	// consensus machinery: run 1 sync round, global model accuracy must be
	// identical to a 5-sync-round run's (same mean model).
	run := func(rounds int) float64 {
		cfg := testConfig(t, 18)
		cfg.Rounds = rounds
		cfg.Algo = core.Greedy(energy.NewBudget(make([]int, 8)))
		cfg.EvalGlobalModel = true
		cfg.EvalEvery = 0
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalGlobalAcc
	}
	if a, b := run(1), run(5); a != b {
		t.Fatalf("mean model changed across sync rounds: %.6f vs %.6f", a, b)
	}
}

func TestHalfStepVectorIsolation(t *testing.T) {
	// Mutating a received vector must not corrupt the sender (transport
	// copies). Detected indirectly: two identical runs where one evaluates
	// every round (extra reads) must match exactly.
	cfg1 := testConfig(t, 19)
	cfg1.EvalEvery = 1
	r1, err := Run(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := testConfig(t, 19)
	cfg2.EvalEvery = 0
	r2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.FinalMeanAcc != r2.FinalMeanAcc {
		t.Fatalf("evaluation cadence changed training: %.6f vs %.6f",
			r1.FinalMeanAcc, r2.FinalMeanAcc)
	}
}

func TestFinalNodeAccsExposed(t *testing.T) {
	cfg := testConfig(t, 20)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalNodeAccs) != 8 {
		t.Fatalf("FinalNodeAccs has %d entries", len(res.FinalNodeAccs))
	}
	mean := 0.0
	for _, a := range res.FinalNodeAccs {
		if a < 0 || a > 1 {
			t.Fatalf("accuracy out of range: %v", a)
		}
		mean += a
	}
	mean /= 8
	if math.Abs(mean-res.FinalMeanAcc) > 1e-12 {
		t.Fatalf("per-node accuracies mean %v != reported %v", mean, res.FinalMeanAcc)
	}
}

func TestTransportFailureSurfaces(t *testing.T) {
	// A failing transport must abort the run with an error — never hang or
	// deliver partial rounds.
	cfg := testConfig(t, 21)
	inner, err := transport.NewLocal(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Network = &transport.Flaky{Inner: inner, FailEvery: 50}
	_, err = Run(cfg)
	if err == nil {
		t.Fatal("injected transport failure did not surface")
	}
}

// harvestScenario is the shared scenario cell behind the sim harvest
// tests: the difftest table generator builds the trace, fleet, and policy,
// so these tests exercise the same construction path the engine
// differential suite pins.
func harvestScenario(seed uint64, nodes int) difftest.Scenario {
	return difftest.Scenario{
		Name:    "sim-harvest",
		Nodes:   nodes,
		Seed:    seed,
		Trace:   difftest.TraceDiurnal,
		Policy:  difftest.PolicyProportional,
		Options: harvest.Options{CapacityRounds: 8, InitialSoC: 0.5},
	}
}

// harvestEngineConfig attaches a diurnal harvest fleet — built by the
// difftest scenario generator on the requested engine — and a
// charge-proportional policy to the standard test config.
func harvestEngineConfig(t *testing.T, seed uint64, engine string) Config {
	t.Helper()
	cfg := testConfig(t, seed)
	s := harvestScenario(seed, cfg.Graph.N)
	inst, err := s.Build(engine)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Algo = core.Algorithm{Label: "harvest", Schedule: s.Schedule(), Policy: inst.Policy}
	cfg.Devices = s.Devices()
	cfg.Workload = s.Workload()
	cfg.Harvest = inst.Engine
	cfg.TrackSoC = true
	return cfg
}

func harvestConfig(t *testing.T, seed uint64) Config {
	t.Helper()
	return harvestEngineConfig(t, seed, harvest.EnginePointer)
}

func TestHarvestFleetWiring(t *testing.T) {
	cfg := harvestConfig(t, 6)
	cfg.Rounds = 24
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalHarvestWh <= 0 {
		t.Fatal("diurnal fleet harvested nothing")
	}
	if len(res.FinalSoC) != cfg.Graph.N {
		t.Fatalf("FinalSoC has %d nodes", len(res.FinalSoC))
	}
	trainedTotal := 0
	for _, tr := range res.TrainedRounds {
		trainedTotal += tr
	}
	if trainedTotal == 0 {
		t.Fatal("no node ever trained")
	}
	for _, m := range res.History {
		if m.MeanSoC < 0 || m.MeanSoC > 1 || m.MinSoC > m.MeanSoC {
			t.Fatalf("round %d SoC stats inconsistent: %+v", m.Round, m)
		}
		if len(m.SoCs) != cfg.Graph.N {
			t.Fatalf("round %d SoC snapshot has %d nodes", m.Round, len(m.SoCs))
		}
	}
	// Cumulative harvest is monotone.
	for i := 1; i < len(res.History); i++ {
		if res.History[i].CumHarvestWh < res.History[i-1].CumHarvestWh {
			t.Fatalf("cumulative harvest decreased at round %d", i)
		}
	}
}

// TestHarvestSimEngineParity runs the full simulation — training, gossip,
// and the harvest loop — once on the pointer fleet and once on the
// struct-of-arrays fleet and requires bit-identical results. This extends
// the engine-level differential suite (internal/harvest/difftest) through
// sim.Run: the engines must be interchangeable behind Config.Harvest, not
// just in isolation.
func TestHarvestSimEngineParity(t *testing.T) {
	run := func(engine string) *Result {
		cfg := harvestEngineConfig(t, 6, engine)
		cfg.Rounds = 24
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	pointer := run(harvest.EnginePointer)
	soa := run(harvest.EngineSoA)
	if pointer.FinalMeanAcc != soa.FinalMeanAcc ||
		pointer.TotalHarvestWh != soa.TotalHarvestWh ||
		pointer.TotalWastedWh != soa.TotalWastedWh {
		t.Fatalf("engines diverge: pointer (acc %v, harvest %v, wasted %v), soa (acc %v, harvest %v, wasted %v)",
			pointer.FinalMeanAcc, pointer.TotalHarvestWh, pointer.TotalWastedWh,
			soa.FinalMeanAcc, soa.TotalHarvestWh, soa.TotalWastedWh)
	}
	for i := range pointer.FinalSoC {
		if pointer.FinalSoC[i] != soa.FinalSoC[i] {
			t.Fatalf("node %d final SoC: pointer %v, soa %v", i, pointer.FinalSoC[i], soa.FinalSoC[i])
		}
	}
	for r := range pointer.TrainedRounds {
		if pointer.TrainedRounds[r] != soa.TrainedRounds[r] {
			t.Fatalf("node %d trained-rounds: pointer %d, soa %d", r, pointer.TrainedRounds[r], soa.TrainedRounds[r])
		}
	}
}

// TestHarvestDeterministicAcrossGOMAXPROCS pins the tentpole guarantee:
// same seed and config produce bit-identical SoC trajectories no matter how
// many workers the engine fans phases out to.
func TestHarvestDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func(procs int) *Result {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		cfg := harvestConfig(t, 7)
		cfg.Rounds = 20
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	wide := run(8)
	for r := range serial.History {
		a, b := serial.History[r], wide.History[r]
		if a.MeanSoC != b.MeanSoC || a.MinSoC != b.MinSoC || a.TrainedCount != b.TrainedCount {
			t.Fatalf("round %d differs across GOMAXPROCS: %+v vs %+v", r, a, b)
		}
		for i := range a.SoCs {
			if a.SoCs[i] != b.SoCs[i] {
				t.Fatalf("round %d node %d SoC %v vs %v", r, i, a.SoCs[i], b.SoCs[i])
			}
		}
	}
	for i := range serial.FinalSoC {
		if serial.FinalSoC[i] != wide.FinalSoC[i] {
			t.Fatalf("final SoC differs at node %d", i)
		}
	}
}

func TestHarvestConfigValidation(t *testing.T) {
	cfg := harvestConfig(t, 8)
	small := energy.AssignDevices(cfg.Graph.N-1, energy.Devices())
	fleet, err := harvest.NewFleet(small, energy.CIFAR10Workload(), harvest.Constant{Wh: 0}, harvest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Harvest = fleet
	if _, err := Run(cfg); err == nil {
		t.Fatal("fleet/graph size mismatch should error")
	}
	cfg2 := testConfig(t, 8)
	cfg2.TrackSoC = true
	if _, err := Run(cfg2); err == nil {
		t.Fatal("TrackSoC without fleet should error")
	}
}

// TestHarvestFleetReuseRejected pins the fleet-reuse guard: a second Run on
// the same fleet must fail loudly instead of silently inheriting drained
// batteries and ledger state, and Fleet.Reset reopens the fleet for a run
// that reproduces the first bit-for-bit.
func TestHarvestFleetReuseRejected(t *testing.T) {
	cfg := harvestConfig(t, 11)
	cfg.Rounds = 12
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run accepted a fleet consumed by a prior run")
	} else if !strings.Contains(err.Error(), "consumed") {
		t.Fatalf("unhelpful reuse error: %v", err)
	}
	if err := cfg.Harvest.Reset(); err != nil {
		t.Fatal(err)
	}
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.FinalMeanAcc != first.FinalMeanAcc || again.TotalHarvestWh != first.TotalHarvestWh {
		t.Fatalf("post-Reset run differs: acc %v vs %v, harvest %v vs %v",
			again.FinalMeanAcc, first.FinalMeanAcc, again.TotalHarvestWh, first.TotalHarvestWh)
	}
	for i := range first.FinalSoC {
		if first.FinalSoC[i] != again.FinalSoC[i] {
			t.Fatalf("post-Reset SoC differs at node %d: %v vs %v", i, first.FinalSoC[i], again.FinalSoC[i])
		}
	}
}

// TestHarvestWastedPlumbing checks the wasted-harvest ledger surfaces in
// the round metrics and result totals: an oversized trickle onto nearly
// full supercaps must waste energy, monotonically, and match the fleet's
// own ledger.
func TestHarvestWastedPlumbing(t *testing.T) {
	cfg := harvestConfig(t, 12)
	cfg.Rounds = 10
	devices := energy.AssignDevices(cfg.Graph.N, energy.Devices())
	w := energy.CIFAR10Workload()
	meanTrainWh := energy.NetworkRoundWh(cfg.Graph.N, energy.Devices(), w) / float64(cfg.Graph.N)
	fleet, err := harvest.NewFleet(devices, w, harvest.Constant{Wh: 3 * meanTrainWh},
		harvest.Options{CapacityRounds: 2, InitialSoC: 1})
	if err != nil {
		t.Fatal(err)
	}
	policy, err := harvest.NewSoCThreshold(0.9)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Harvest = fleet
	cfg.Algo = core.Algorithm{Label: "waste", Schedule: core.AllTrain{}, Policy: policy}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWastedWh <= 0 {
		t.Fatal("oversized trickle onto full batteries wasted nothing")
	}
	if res.TotalWastedWh != fleet.WastedWh() {
		t.Fatalf("result wasted %v, fleet ledger %v", res.TotalWastedWh, fleet.WastedWh())
	}
	last := 0.0
	for _, m := range res.History {
		if m.CumWastedWh < last {
			t.Fatalf("cumulative waste decreased at round %d", m.Round)
		}
		last = m.CumWastedWh
	}
	if last != res.TotalWastedWh {
		t.Fatalf("final CumWastedWh %v != TotalWastedWh %v", last, res.TotalWastedWh)
	}
}

// TestHarvestBatteriesBindParticipation: with zero recharge the fleet is a
// strict budget — nodes can never train more rounds than their initial
// charge affords, reproducing the paper's static-τ setting as a special
// case of the harvesting model.
func TestHarvestBatteriesBindParticipation(t *testing.T) {
	cfg := harvestConfig(t, 9)
	devices := energy.AssignDevices(cfg.Graph.N, energy.Devices())
	const initialRounds = 4
	fleet, err := harvest.NewFleet(devices, energy.CIFAR10Workload(), harvest.Constant{Wh: 0},
		harvest.Options{InitialRounds: initialRounds, CommFrac: -1})
	if err != nil {
		t.Fatal(err)
	}
	policy, err := harvest.NewSoCThreshold(0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Algo = core.Algorithm{Label: "dark", Schedule: core.AllTrain{}, Policy: policy}
	cfg.Harvest = fleet
	cfg.Rounds = 16
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range res.TrainedRounds {
		if tr != initialRounds {
			t.Fatalf("node %d trained %d rounds on a %d-round battery with no recharge", i, tr, initialRounds)
		}
	}
	if res.TotalHarvestWh != 0 {
		t.Fatalf("dark scenario harvested %v Wh", res.TotalHarvestWh)
	}
}

// brownoutConfig builds a harvest run where brown-outs actually happen: a
// supercap-scale fleet with a real cutoff and idle draw, so night-side
// nodes deplete below the cutoff and leave the live set.
func brownoutConfig(t *testing.T, seed uint64) Config {
	t.Helper()
	cfg := testConfig(t, seed)
	devices := energy.AssignDevices(cfg.Graph.N, energy.Devices())
	w := energy.CIFAR10Workload()
	meanTrainWh := energy.NetworkRoundWh(cfg.Graph.N, energy.Devices(), w) / float64(cfg.Graph.N)
	trace, err := harvest.NewDiurnal(1.0*meanTrainWh, 8, harvest.LongitudePhase(cfg.Graph.N))
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := harvest.NewFleet(devices, w, trace, harvest.Options{
		CapacityRounds: 6,
		InitialSoC:     0.6,
		CutoffSoC:      0.3,
		IdleWh:         0.25 * meanTrainWh,
	})
	if err != nil {
		t.Fatal(err)
	}
	policy, err := harvest.NewSoCThreshold(0.35)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Algo = core.Algorithm{Label: "brownout", Schedule: core.AllTrain{}, Policy: policy}
	cfg.Devices = devices
	cfg.Workload = w
	cfg.Harvest = fleet
	cfg.DropDeadNodes = true
	cfg.Rounds = 24
	return cfg
}

func TestDropDeadNodesValidation(t *testing.T) {
	cfg := testConfig(t, 30)
	cfg.DropDeadNodes = true
	if _, err := Run(cfg); err == nil {
		t.Fatal("DropDeadNodes without a fleet or hook should error")
	}
	cfg2 := brownoutConfig(t, 30)
	cfg2.Algo.Aggregation = core.AggGlobal
	if _, err := Run(cfg2); err == nil {
		t.Fatal("DropDeadNodes with AggGlobal should error")
	}
	cfg3 := testConfig(t, 30)
	cfg3.DropDeadNodes = true
	cfg3.Liveness = func(int) []bool { return []bool{true} } // wrong length
	if _, err := Run(cfg3); err == nil {
		t.Fatal("wrong-length live set should error")
	}
}

func TestDropDeadNodesFreezesDeadNode(t *testing.T) {
	// A Liveness hook (no fleet needed) that keeps node 0 browned out for
	// the whole run: it must never train, its neighbors' broadcasts to it
	// must be dropped, and the live metrics must see 7 of 8 nodes.
	cfg := testConfig(t, 31)
	cfg.DropDeadNodes = true
	dead := make([]bool, 8)
	for i := range dead {
		dead[i] = i != 0
	}
	cfg.Liveness = func(int) []bool { return dead }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainedRounds[0] != 0 {
		t.Fatalf("dead node trained %d rounds", res.TrainedRounds[0])
	}
	for i := 1; i < 8; i++ {
		if res.TrainedRounds[i] != cfg.Rounds {
			t.Fatalf("live node %d trained %d/%d rounds", i, res.TrainedRounds[i], cfg.Rounds)
		}
	}
	// Node 0 has degree 4: its 4 live neighbors each lose one send per
	// round (node 0 itself never transmits).
	deg := cfg.Graph.Degree(0)
	if res.TotalDroppedSends != deg*cfg.Rounds {
		t.Fatalf("dropped %d sends, want %d", res.TotalDroppedSends, deg*cfg.Rounds)
	}
	for _, m := range res.History {
		if m.LiveCount != 7 {
			t.Fatalf("round %d LiveCount = %d, want 7", m.Round, m.LiveCount)
		}
		if m.DroppedSends != deg {
			t.Fatalf("round %d dropped %d, want %d", m.Round, m.DroppedSends, deg)
		}
		if m.LiveComponents < 1 {
			t.Fatalf("round %d has %d live components", m.Round, m.LiveComponents)
		}
	}
}

func TestDropDeadPreservesMeanModel(t *testing.T) {
	// The renormalized W is doubly stochastic with identity rows for dead
	// nodes, so on sync-only rounds the global mean model is invariant even
	// while the live set churns: a 1-round and a 6-round run must evaluate
	// the identical mean model.
	run := func(rounds int) float64 {
		cfg := testConfig(t, 32)
		cfg.Rounds = rounds
		cfg.Algo = core.Greedy(energy.NewBudget(make([]int, 8)))
		cfg.EvalGlobalModel = true
		cfg.EvalEvery = 0
		cfg.DropDeadNodes = true
		cfg.Liveness = func(t int) []bool {
			live := make([]bool, 8)
			for i := range live {
				live[i] = (i+t)%3 != 0 // churning dead set
			}
			return live
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalGlobalAcc
	}
	if a, b := run(1), run(6); a != b {
		t.Fatalf("mean model drifted under dropout: %.6f vs %.6f", a, b)
	}
}

func TestBrownoutDropoutEndToEnd(t *testing.T) {
	res, err := Run(brownoutConfig(t, 33))
	if err != nil {
		t.Fatal(err)
	}
	var sawDead, sawDrop bool
	for _, m := range res.History {
		if m.LiveCount < 8 {
			sawDead = true
		}
		if m.DroppedSends > 0 {
			sawDrop = true
		}
		if m.LiveCount > 0 && m.MeanLiveDegree > 4 {
			t.Fatalf("round %d mean live degree %v exceeds topology degree", m.Round, m.MeanLiveDegree)
		}
	}
	if !sawDead {
		t.Fatal("no round ever browned a node out; scenario too easy")
	}
	if !sawDrop {
		t.Fatal("brown-outs occurred but no sends were dropped")
	}
	if res.TotalDroppedSends == 0 {
		t.Fatal("TotalDroppedSends not accumulated")
	}
}

// TestBrownoutRouteVsDropDiffer pins that the mode switch matters: routing
// through dead nodes and dropping their edges must produce different
// trajectories once brown-outs occur (the route-through baseline keeps
// using dead relays).
func TestBrownoutRouteVsDropDiffer(t *testing.T) {
	drop, err := Run(brownoutConfig(t, 34))
	if err != nil {
		t.Fatal(err)
	}
	routeCfg := brownoutConfig(t, 34)
	routeCfg.DropDeadNodes = false
	route, err := Run(routeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if route.TotalDroppedSends != 0 {
		t.Fatalf("route-through mode dropped %d sends", route.TotalDroppedSends)
	}
	// Live metrics are recorded in both modes for comparability.
	if route.History[0].LiveCount != drop.History[0].LiveCount {
		t.Fatal("round 0 live counts should match across modes")
	}
	same := true
	for i := range drop.History {
		if drop.History[i].MeanAcc != route.History[i].MeanAcc ||
			drop.History[i].MeanSoC != route.History[i].MeanSoC {
			same = false
			break
		}
	}
	if same {
		t.Fatal("dropout mode produced a bit-identical run to route-through")
	}
}

func TestBrownoutDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func(procs int) *Result {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		res, err := Run(brownoutConfig(t, 35))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	wide := run(8)
	for r := range serial.History {
		a, b := serial.History[r], wide.History[r]
		if a.MeanAcc != b.MeanAcc || a.MeanSoC != b.MeanSoC || a.TrainedCount != b.TrainedCount ||
			a.LiveCount != b.LiveCount || a.DroppedSends != b.DroppedSends ||
			a.LiveComponents != b.LiveComponents || a.MeanLiveDegree != b.MeanLiveDegree {
			t.Fatalf("round %d differs across GOMAXPROCS: %+v vs %+v", r, a, b)
		}
	}
	if serial.TotalDroppedSends != wide.TotalDroppedSends {
		t.Fatalf("dropped sends differ: %d vs %d", serial.TotalDroppedSends, wide.TotalDroppedSends)
	}
}

func TestCheckpointValidation(t *testing.T) {
	mgr := func(n int) *checkpoint.Manager {
		m, err := checkpoint.NewManager(n, nil, checkpoint.ResumeStale{})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	cfg := testConfig(t, 40)
	cfg.Checkpoint = mgr(8)
	if _, err := Run(cfg); err == nil {
		t.Fatal("Checkpoint without DropDeadNodes should error")
	}
	cfg2 := brownoutConfig(t, 40)
	cfg2.Checkpoint = mgr(5)
	if _, err := Run(cfg2); err == nil {
		t.Fatal("checkpoint/graph size mismatch should error")
	}
	// A manager is single-run state: its tracker's staleness bookkeeping
	// would go negative if rounds restarted at 0.
	cfg3 := brownoutConfig(t, 40)
	cfg3.Checkpoint = mgr(8)
	if _, err := Run(cfg3); err != nil {
		t.Fatal(err)
	}
	cfg4 := brownoutConfig(t, 40)
	cfg4.Checkpoint = cfg3.Checkpoint
	if _, err := Run(cfg4); err == nil {
		t.Fatal("reusing a checkpoint manager across runs should error")
	}
}

// TestCheckpointResumeStaleIsBaseline pins that ResumeStale is exactly the
// pre-checkpoint engine behavior: attaching the manager with the baseline
// rule changes nothing about the learning trajectory — it only surfaces
// revival accounting.
func TestCheckpointResumeStaleIsBaseline(t *testing.T) {
	plain, err := Run(brownoutConfig(t, 41))
	if err != nil {
		t.Fatal(err)
	}
	cfg := brownoutConfig(t, 41)
	var merr error
	cfg.Checkpoint, merr = checkpoint.NewManager(cfg.Graph.N, nil, checkpoint.ResumeStale{})
	if merr != nil {
		t.Fatal(merr)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.History {
		if plain.History[i].MeanAcc != res.History[i].MeanAcc ||
			plain.History[i].MeanSoC != res.History[i].MeanSoC {
			t.Fatalf("round %d: resume-stale diverged from plain run", i)
		}
	}
	if res.TotalRevivals == 0 {
		t.Fatal("scenario produced no revivals; checkpoint path untested")
	}
	if res.TotalRestores != 0 {
		t.Fatalf("resume-stale restored %d times", res.TotalRestores)
	}
	var sawStaleness bool
	for _, m := range res.History {
		if m.Revivals > 0 {
			if m.MeanStaleness < 1 || m.MaxStaleness < 1 {
				t.Fatalf("round %d: revivals without staleness: %+v", m.Round, m)
			}
			if float64(m.MaxStaleness) < m.MeanStaleness {
				t.Fatalf("round %d: max staleness below mean", m.Round)
			}
			sawStaleness = true
		} else if m.MeanStaleness != 0 || m.MaxStaleness != 0 {
			t.Fatalf("round %d: staleness without revivals: %+v", m.Round, m)
		}
	}
	if !sawStaleness {
		t.Fatal("no round recorded staleness")
	}
}

// TestCheckpointRestoreChangesTrajectory: a restoring rule must actually
// alter the run once revivals happen, and count its restores.
func TestCheckpointRestoreChangesTrajectory(t *testing.T) {
	run := func(rule checkpoint.RejoinRule) *Result {
		cfg := brownoutConfig(t, 42)
		var err error
		cfg.Checkpoint, err = checkpoint.NewManager(cfg.Graph.N, nil, rule)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	stale := run(checkpoint.ResumeStale{})
	restore := run(checkpoint.RestoreCheckpoint{})
	if stale.TotalRevivals == 0 || restore.TotalRevivals != stale.TotalRevivals {
		t.Fatalf("revivals: stale %d, restore %d (want equal and > 0)",
			stale.TotalRevivals, restore.TotalRevivals)
	}
	if restore.TotalRestores == 0 {
		t.Fatal("restore-checkpoint never restored")
	}
	same := true
	for i := range stale.History {
		if stale.History[i].MeanAcc != restore.History[i].MeanAcc {
			same = false
			break
		}
	}
	if same {
		t.Fatal("restore rule produced a bit-identical run to resume-stale")
	}
}

// TestCheckpointScriptedLifecycle drives a known death/revival pattern
// through a Liveness hook and checks snapshots and staleness exactly:
// node 0 dies at round 3 (snapshot stamped round 2), stays dead through
// round 5, revives at round 6 with staleness 3.
func TestCheckpointScriptedLifecycle(t *testing.T) {
	cfg := testConfig(t, 43)
	cfg.Rounds = 10
	cfg.DropDeadNodes = true
	cfg.Liveness = func(round int) []bool {
		live := make([]bool, 8)
		for i := range live {
			live[i] = true
		}
		live[0] = round < 3 || round >= 6
		return live
	}
	store, err := checkpoint.NewMemStore(8)
	if err != nil {
		t.Fatal(err)
	}
	rule, err := checkpoint.NewCatchUp(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint, err = checkpoint.NewManager(8, store, rule)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap, ok, err := store.Load(0)
	if err != nil || !ok {
		t.Fatalf("node 0 never snapshotted: ok=%v err=%v", ok, err)
	}
	if snap.Round != 2 {
		t.Fatalf("snapshot stamped round %d, want 2", snap.Round)
	}
	if res.TotalRevivals != 1 || res.TotalRestores != 1 {
		t.Fatalf("revivals/restores = %d/%d, want 1/1", res.TotalRevivals, res.TotalRestores)
	}
	m := res.History[6]
	if m.Revivals != 1 || m.MeanStaleness != 3 || m.MaxStaleness != 3 {
		t.Fatalf("revival round metrics %+v, want staleness 3", m)
	}
	for i, mm := range res.History {
		if i != 6 && mm.Revivals != 0 {
			t.Fatalf("round %d recorded %d revivals", i, mm.Revivals)
		}
	}
	// The revived node trains again after rejoin (it is live rounds 6-9).
	if res.TrainedRounds[0] != 3+4 {
		t.Fatalf("node 0 trained %d rounds, want 7", res.TrainedRounds[0])
	}
}

func TestCheckpointDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func(procs int) *Result {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		cfg := brownoutConfig(t, 44)
		rule, err := checkpoint.NewCatchUp(2)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Checkpoint, err = checkpoint.NewManager(cfg.Graph.N, nil, rule)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	wide := run(8)
	if serial.TotalRevivals == 0 {
		t.Fatal("scenario produced no revivals")
	}
	for r := range serial.History {
		a, b := serial.History[r], wide.History[r]
		if a.MeanAcc != b.MeanAcc || a.Revivals != b.Revivals || a.Restores != b.Restores ||
			a.MeanStaleness != b.MeanStaleness || a.MaxStaleness != b.MaxStaleness {
			t.Fatalf("round %d differs across GOMAXPROCS: %+v vs %+v", r, a, b)
		}
	}
	if serial.TotalRestores != wide.TotalRestores {
		t.Fatalf("restores differ: %d vs %d", serial.TotalRestores, wide.TotalRestores)
	}
}

// mpcConfig is the brown-out world driven by the forecast-aware MPC
// policy: an oracle forecaster over the run's own diurnal trace, one
// 8-round day of lookahead.
func mpcConfig(t *testing.T, seed uint64) Config {
	t.Helper()
	cfg := brownoutConfig(t, seed)
	policy, err := harvest.NewHorizonPlan(0.05)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Algo = core.Algorithm{Label: "mpc", Schedule: core.AllTrain{}, Policy: policy}
	oracle, err := harvest.NewOracle(traceOf(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Forecast = oracle
	cfg.ForecastHorizon = 8
	return cfg
}

// traceOf rebuilds the diurnal trace brownoutConfig attached to its fleet,
// phase-for-phase, so the oracle forecasts the same sun.
func traceOf(t *testing.T, cfg Config) harvest.Trace {
	t.Helper()
	n := cfg.Graph.N
	w := energy.CIFAR10Workload()
	meanTrainWh := energy.NetworkRoundWh(n, energy.Devices(), w) / float64(n)
	trace, err := harvest.NewDiurnal(1.0*meanTrainWh, 8, harvest.LongitudePhase(n))
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

func TestForecastConfigValidation(t *testing.T) {
	oracle := func() harvest.Forecaster {
		o, err := harvest.NewOracle(harvest.Constant{Wh: 0})
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	// A forecaster needs a fleet and a positive window; a window needs a
	// forecaster.
	cfg := testConfig(t, 50)
	cfg.Forecast = oracle()
	cfg.ForecastHorizon = 4
	if _, err := Run(cfg); err == nil {
		t.Fatal("Forecast without a fleet should error")
	}
	cfg2 := harvestConfig(t, 50)
	cfg2.Forecast = oracle()
	if _, err := Run(cfg2); err == nil {
		t.Fatal("Forecast without ForecastHorizon should error")
	}
	cfg3 := harvestConfig(t, 50)
	cfg3.ForecastHorizon = 4
	if _, err := Run(cfg3); err == nil {
		t.Fatal("ForecastHorizon without Forecast should error")
	}
	// Declared policy needs are checked up front.
	cfg4 := testConfig(t, 50)
	threshold, err := harvest.NewSoCThreshold(0.2)
	if err != nil {
		t.Fatal(err)
	}
	cfg4.Algo = core.Algorithm{Label: "no-fleet", Schedule: core.AllTrain{}, Policy: threshold}
	if _, err := Run(cfg4); err == nil {
		t.Fatal("battery-dependent policy without a fleet should error")
	}
	cfg5 := harvestConfig(t, 50)
	mpc, err := harvest.NewHorizonPlan(0.05)
	if err != nil {
		t.Fatal(err)
	}
	cfg5.Algo = core.Algorithm{Label: "no-forecast", Schedule: core.AllTrain{}, Policy: mpc}
	if _, err := Run(cfg5); err == nil {
		t.Fatal("forecast-dependent policy without a forecaster should error")
	}
}

// TestConsumedPolicyRejected pins the policy half of the state-leak guard:
// a policy carrying a prior run's state is rejected exactly like a
// consumed fleet, and Reset reopens it for a bit-identical replay.
func TestConsumedPolicyRejected(t *testing.T) {
	cfg := testConfig(t, 51)
	cfg.Rounds = 6
	budget := energy.NewBudget([]int{3, 3, 3, 3, 3, 3, 3, 3})
	cfg.Algo = core.Greedy(budget)
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := testConfig(t, 51)
	cfg2.Rounds = 6
	cfg2.Algo = core.Greedy(budget) // same spent budget
	if _, err := Run(cfg2); err == nil {
		t.Fatal("Run accepted a policy consumed by a prior run")
	} else if !strings.Contains(err.Error(), "consumed") {
		t.Fatalf("unhelpful reuse error: %v", err)
	}
	budget.Reset()
	again, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if first.FinalMeanAcc != again.FinalMeanAcc {
		t.Fatalf("post-Reset run differs: %v vs %v", first.FinalMeanAcc, again.FinalMeanAcc)
	}
}

// TestConsumedForecasterRejected closes the third leg of the state-leak
// guard: a persistence forecaster carrying a prior run's observations is
// rejected like a consumed fleet, and Reset reopens it for a replay that
// matches the first run bit-for-bit.
func TestConsumedForecasterRejected(t *testing.T) {
	mkCfg := func(persist *harvest.Persistence) Config {
		cfg := brownoutConfig(t, 54)
		policy, err := harvest.NewHorizonPlan(0.05)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Algo = core.Algorithm{Label: "mpc-persist", Schedule: core.AllTrain{}, Policy: policy}
		cfg.Forecast = persist
		cfg.ForecastHorizon = 8
		return cfg
	}
	persist, err := harvest.NewPersistence(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(mkCfg(persist))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(mkCfg(persist)); err == nil {
		t.Fatal("Run accepted a forecaster consumed by a prior run")
	} else if !strings.Contains(err.Error(), "consumed") {
		t.Fatalf("unhelpful reuse error: %v", err)
	}
	persist.Reset()
	again, err := Run(mkCfg(persist))
	if err != nil {
		t.Fatal(err)
	}
	if first.FinalMeanAcc != again.FinalMeanAcc {
		t.Fatalf("post-Reset run differs: %v vs %v", first.FinalMeanAcc, again.FinalMeanAcc)
	}
}

func TestHorizonPlanEndToEnd(t *testing.T) {
	res, err := Run(mpcConfig(t, 52))
	if err != nil {
		t.Fatal(err)
	}
	trained := 0
	for _, tr := range res.TrainedRounds {
		trained += tr
	}
	if trained == 0 {
		t.Fatal("MPC fleet never trained")
	}
	if res.TotalHarvestWh <= 0 {
		t.Fatal("diurnal fleet harvested nothing")
	}
}

// TestForecastDeterministicAcrossGOMAXPROCS extends the bit-identity pin
// to the forecast path, with the learning forecaster (persistence) so the
// Observe feedback loop is exercised too.
func TestForecastDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func(procs int) *Result {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		cfg := brownoutConfig(t, 53)
		policy, err := harvest.NewHorizonPlan(0.05)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Algo = core.Algorithm{Label: "mpc-persist", Schedule: core.AllTrain{}, Policy: policy}
		persist, err := harvest.NewPersistence(cfg.Graph.N, 8)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Forecast = persist
		cfg.ForecastHorizon = 8
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	wide := run(8)
	for r := range serial.History {
		a, b := serial.History[r], wide.History[r]
		if a.MeanAcc != b.MeanAcc || a.MeanSoC != b.MeanSoC || a.TrainedCount != b.TrainedCount ||
			a.LiveCount != b.LiveCount {
			t.Fatalf("round %d differs across GOMAXPROCS: %+v vs %+v", r, a, b)
		}
	}
}

func TestNilLivenessRecordsAllLiveMetrics(t *testing.T) {
	// A Liveness hook returning nil means "all live": the live metrics must
	// say so rather than report zeros, and the run must match a plain one.
	cfg := testConfig(t, 36)
	cfg.DropDeadNodes = true
	cfg.Liveness = func(int) []bool { return nil }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.History {
		if m.LiveCount != 8 {
			t.Fatalf("round %d LiveCount = %d, want 8", m.Round, m.LiveCount)
		}
		if m.LiveComponents != 1 || m.MeanLiveDegree != 4 {
			t.Fatalf("round %d live topology %d comps / %.2f deg, want 1 / 4", m.Round, m.LiveComponents, m.MeanLiveDegree)
		}
	}
	if res.TotalDroppedSends != 0 {
		t.Fatalf("all-live run dropped %d sends", res.TotalDroppedSends)
	}
	plain, err := Run(testConfig(t, 36))
	if err != nil {
		t.Fatal(err)
	}
	if plain.FinalMeanAcc != res.FinalMeanAcc {
		t.Fatalf("all-live dropout run diverged from plain run: %.6f vs %.6f",
			res.FinalMeanAcc, plain.FinalMeanAcc)
	}
}
