// Package sim is the round-synchronous decentralized-learning engine: the
// Go counterpart of the DecentralizePy deployment the paper runs on.
//
// Every node is simulated with its own model, its own data partition, its
// own RNG streams, and a real transport endpoint. A round executes in
// barriered phases that mirror Algorithm 1/2:
//
//  1. local phase — nodes that participate train E local SGD steps;
//  2. share phase — every node sends its half-step model x^{t-1/2} to all
//     neighbors through the transport;
//  3. aggregate phase — every node receives one model per neighbor and
//     applies the W-weighted average;
//  4. (optionally) evaluation on the shared test set.
//
// When a harvest fleet is attached (Config.Harvest), every round also closes
// with a battery update — idle and communication draw, then ambient energy
// harvest — and the round metrics carry the fleet's state of charge.
//
// With Config.DropDeadNodes, brown-outs also silence the topology: every
// round starts by snapshotting the live set, edges incident to dead nodes
// go down for the round (transport.DeadNode), and the mixing matrix is
// re-normalized over the live subgraph (graph.RenormalizeLive) so
// aggregation stays doubly stochastic on the live component. With
// Config.Checkpoint, live-set transitions additionally drive the
// brown-out checkpoint/restore subsystem (internal/checkpoint): dying
// nodes get their last aggregated model snapshotted, reviving nodes get
// a staleness-aware rejoin rule applied. See docs/ARCHITECTURE.md for
// the full round walkthrough.
//
// Phases are fanned out across GOMAXPROCS workers, but all stochastic
// state is per-node, so results are bit-identical regardless of
// parallelism or transport.
package sim

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/harvest"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// Config describes one experiment run.
type Config struct {
	Graph   *graph.Graph
	Weights *graph.Weights
	Algo    core.Algorithm
	Rounds  int

	// Model and training hyperparameters (Table 1).
	ModelFactory func(node int, r *rng.RNG) *nn.Network
	LR           float64
	BatchSize    int
	LocalSteps   int

	// Data.
	Partition dataset.Partition
	Test      *dataset.Dataset

	// Evaluation cadence: evaluate after every EvalEvery rounds (and always
	// after the final round). 0 means final-round only. EvalSubsample
	// bounds the number of test samples per evaluation (0 = all).
	EvalEvery     int
	EvalSubsample int
	// EvalGlobalModel also evaluates the average of all node models (the
	// all-reduce consensus model of Figure 1).
	EvalGlobalModel bool
	// TrackConsensus records the consensus distance every evaluation.
	TrackConsensus bool

	// Energy model: per-node devices (use energy.AssignDevices) and the
	// per-round workload. Both optional; when absent energy is not tracked.
	Devices  []energy.Device
	Workload energy.Workload

	// Harvest optionally attaches a battery/harvesting fleet engine
	// (internal/harvest) covering Graph.N nodes — the pointer-based
	// harvest.Fleet or the struct-of-arrays harvest.SoAFleet, which are
	// bit-identical. Training drains batteries only through the harvest
	// policies' TryTrain — pair the fleet with a charge-aware Algo.Policy —
	// while the engine closes every round with EndRound: idle and
	// communication draw, then ambient harvest. State-of-charge statistics
	// land in RoundMetrics; set TrackSoC to also record the full per-node
	// SoC snapshot each round.
	Harvest  harvest.Engine
	TrackSoC bool

	// Forecast attaches a harvest forecaster (internal/harvest): on every
	// coordinated training round the engine fills the deciding node's
	// RoundContext.Forecast with ForecastHorizon predicted per-round
	// arrivals (rounds t..t+H-1), which planning policies such as
	// harvest.HorizonPlan consume. After every battery update the engine
	// feeds realized arrivals back to forecasters that learn from them
	// (harvest.ForecastObserver). Requires a Harvest fleet and a positive
	// ForecastHorizon.
	Forecast        harvest.Forecaster
	ForecastHorizon int

	// DropDeadNodes makes node liveness a first-class, per-round property
	// of the topology: at the start of every round the engine snapshots the
	// live set (nodes above their brown-out cutoff), silences every edge
	// incident to a dead node for the round (transport.DeadNode), and
	// re-normalizes the mixing matrix over the induced live subgraph
	// (graph.RenormalizeLive), so aggregation stays symmetric and
	// doubly stochastic on the live component. Dead nodes freeze: no
	// training, no sends, no receives, model held until they recharge, and
	// they pay idle draw only (harvest.Fleet.EndRoundLive). Without this
	// flag the engine routes sync traffic through depleted nodes unchanged
	// — the optimistic baseline the brown-out experiments compare against.
	// Requires a Harvest fleet or a Liveness hook, and neighborhood
	// aggregation (AggGlobal has no topology to drop edges from). The
	// configured Weights are used verbatim on all-live rounds, so they
	// should be graph.Metropolis for consistency with renormalized rounds.
	DropDeadNodes bool
	// Liveness overrides the fleet-derived live set: it is called once at
	// the start of round t and returns the mask of powered nodes (nil means
	// all live). The returned slice is only read before the next call.
	// When nil and a Harvest fleet is attached, liveness is the fleet's
	// per-node Usable state.
	Liveness func(t int) []bool

	// Checkpoint attaches the brown-out checkpoint/restore subsystem
	// (internal/checkpoint): at every death transition the dying node's
	// post-aggregation model is snapshotted with its round stamp, and at
	// every revival the manager's RejoinRule decides what the node resumes
	// with — its frozen state (ResumeStale), the freshest aggregated state
	// in its live neighborhood (RestoreCheckpoint), or a staleness-
	// discounted blend of the two (CatchUp). Rejoins happen before the
	// round's training phase and are applied in node order from the frozen
	// start-of-round models, so runs stay bit-reproducible at any
	// GOMAXPROCS. Requires DropDeadNodes (without it dead nodes never
	// freeze, so there is nothing to restore from).
	Checkpoint *checkpoint.Manager

	// Network is the transport to use; nil selects an in-process channel
	// network sized for the topology.
	Network transport.Network

	// Probe optionally attaches the observability layer (internal/obs):
	// the engine emits round boundaries, per-phase wall-clock timings,
	// brown-out/revival events, dropped-send counts, evaluations, and
	// streamed SoC percentiles into the probe's sink. A nil probe is the
	// off state and costs one nil check per emission site. Telemetry is
	// read-only and RNG-silent: a telemetry-on run produces bit-identical
	// model state to the same run with telemetry off (pinned by test).
	Probe *obs.Probe

	Seed uint64
}

func (c *Config) validate() error {
	switch {
	case c.Graph == nil:
		return fmt.Errorf("sim: nil graph")
	case c.Weights == nil:
		return fmt.Errorf("sim: nil weights")
	case c.Rounds < 1:
		return fmt.Errorf("sim: need >= 1 round, got %d", c.Rounds)
	case c.ModelFactory == nil:
		return fmt.Errorf("sim: nil model factory")
	case c.LR <= 0:
		return fmt.Errorf("sim: non-positive learning rate %v", c.LR)
	case c.BatchSize < 1 || c.LocalSteps < 1:
		return fmt.Errorf("sim: bad batch/steps %d/%d", c.BatchSize, c.LocalSteps)
	case len(c.Partition) != c.Graph.N:
		return fmt.Errorf("sim: partition for %d nodes, graph has %d", len(c.Partition), c.Graph.N)
	case c.Test == nil || c.Test.Len() == 0:
		return fmt.Errorf("sim: empty test set")
	case c.Algo.Schedule == nil || c.Algo.Policy == nil:
		return fmt.Errorf("sim: incomplete algorithm")
	}
	for i, p := range c.Partition {
		if p.Len() == 0 {
			return fmt.Errorf("sim: node %d has empty partition", i)
		}
	}
	if c.Devices != nil {
		if len(c.Devices) != c.Graph.N {
			return fmt.Errorf("sim: %d devices for %d nodes (use energy.AssignDevices)", len(c.Devices), c.Graph.N)
		}
		if err := c.Workload.Validate(); err != nil {
			return err
		}
	}
	if c.Harvest != nil {
		if c.Harvest.Nodes() != c.Graph.N {
			return fmt.Errorf("sim: harvest fleet covers %d nodes, graph has %d", c.Harvest.Nodes(), c.Graph.N)
		}
		// A fleet that already closed rounds carries drained batteries,
		// harvest/consumption ledgers, and possibly advanced Markov chain
		// state; running on it would silently splice that history into this
		// run (the multi-cell grid-search footgun).
		if c.Harvest.Consumed() {
			return fmt.Errorf("sim: harvest fleet already consumed by a prior run; call Fleet.Reset or build a fresh fleet")
		}
	}
	if c.TrackSoC && c.Harvest == nil {
		return fmt.Errorf("sim: TrackSoC requires a harvest fleet")
	}
	// The policy's declared needs must be wired, and a policy carrying a
	// prior run's state is rejected exactly like a consumed fleet — state
	// can never leak silently between runs.
	if _, ok := c.Algo.Policy.(core.BatteryDependent); ok && c.Harvest == nil {
		return fmt.Errorf("sim: policy %s decides from battery state and needs a harvest fleet", c.Algo.Policy.Name())
	}
	if _, ok := c.Algo.Policy.(core.ForecastDependent); ok && c.Forecast == nil {
		return fmt.Errorf("sim: policy %s plans over a forecast window and needs Config.Forecast", c.Algo.Policy.Name())
	}
	if rp, ok := c.Algo.Policy.(core.ResettablePolicy); ok && rp.Consumed() {
		return fmt.Errorf("sim: policy %s already consumed by a prior run; call Reset or build a fresh policy", c.Algo.Policy.Name())
	}
	if c.Forecast != nil {
		if c.Harvest == nil {
			return fmt.Errorf("sim: Forecast requires a harvest fleet to forecast")
		}
		if c.ForecastHorizon < 1 {
			return fmt.Errorf("sim: Forecast needs ForecastHorizon >= 1, got %d", c.ForecastHorizon)
		}
		// Learning forecasters (Persistence) carry observation history; a
		// second run on one would silently forecast from the first run's
		// day — the same leak the fleet and policy guards close.
		if fc, ok := c.Forecast.(interface{ Consumed() bool }); ok && fc.Consumed() {
			return fmt.Errorf("sim: forecaster %s already consumed by a prior run; call Reset or build a fresh forecaster", c.Forecast.Name())
		}
	} else if c.ForecastHorizon != 0 {
		return fmt.Errorf("sim: ForecastHorizon %d given without a Forecast", c.ForecastHorizon)
	}
	if c.DropDeadNodes {
		if c.Harvest == nil && c.Liveness == nil {
			return fmt.Errorf("sim: DropDeadNodes needs a harvest fleet or a Liveness hook")
		}
		if c.Algo.Aggregation == core.AggGlobal {
			return fmt.Errorf("sim: DropDeadNodes requires neighborhood aggregation")
		}
	}
	if c.Checkpoint != nil {
		if !c.DropDeadNodes {
			return fmt.Errorf("sim: Checkpoint requires DropDeadNodes (dead nodes must freeze to have state worth restoring)")
		}
		if c.Checkpoint.Nodes() != c.Graph.N {
			return fmt.Errorf("sim: checkpoint manager covers %d nodes, graph has %d", c.Checkpoint.Nodes(), c.Graph.N)
		}
		if c.Checkpoint.Tracker().LastObserved() >= 0 {
			return fmt.Errorf("sim: checkpoint manager already observed round %d; build a fresh manager per run",
				c.Checkpoint.Tracker().LastObserved())
		}
	}
	return nil
}

// RoundMetrics records one round of the run. Accuracy fields are only
// meaningful when Evaluated is true.
type RoundMetrics struct {
	Round        int
	Kind         core.RoundKind
	TrainedCount int
	Evaluated    bool
	MeanAcc      float64 // mean Top-1 accuracy across nodes
	StdAcc       float64 // std of Top-1 accuracy across nodes (Fig. 4 shadow)
	GlobalAcc    float64 // accuracy of the averaged model (Fig. 1)
	Consensus    float64 // mean L2 distance to the mean model
	CumTrainWh   float64 // cumulative network training energy (Eq. 3)
	CumCommWh    float64 // cumulative sharing/aggregation energy

	// Battery state (only meaningful when Config.Harvest is set).
	MeanSoC      float64 // fleet-average state of charge after the round
	MinSoC       float64 // lowest state of charge in the fleet
	Depleted     int     // nodes at or below their brown-out cutoff
	CumHarvestWh float64 // cumulative stored ambient energy
	CumWastedWh  float64 // cumulative harvest that arrived on full batteries
	// SoCP50/P90/P99 are the fleet's state-of-charge percentiles after the
	// round, streamed through a fixed-bin quantile sketch (internal/obs):
	// exact to within one sketch bin (1/256) without materializing a
	// per-node slice. Always filled on harvest runs.
	SoCP50, SoCP90, SoCP99 float64
	// SoCs is the full per-node SoC snapshot. It allocates O(nodes) per
	// round and exists for consumers that need the exact distribution;
	// set Config.TrackSoC to keep it. The streamed percentiles above are
	// the allocation-free default.
	SoCs []float64 // per-node SoC snapshot (Config.TrackSoC only)

	// Live-topology state, recorded whenever a live-set source exists (a
	// harvest fleet or a Liveness hook), in both route-through-dead and
	// drop-and-renormalize runs, so the two modes are directly comparable.
	LiveCount      int     // nodes powered at the start of the round
	MeanLiveDegree float64 // mean induced degree over live nodes
	LiveComponents int     // connected components of the live subgraph
	// DroppedSends counts messages lost on dead edges this round
	// (Config.DropDeadNodes runs only; always 0 when routing through).
	DroppedSends int

	// Checkpoint/rejoin state (Config.Checkpoint runs only).
	Revivals      int     // nodes back from a brown-out this round
	Restores      int     // revivals whose rejoin rule replaced the stale in-RAM model
	MeanStaleness float64 // mean rounds-missed across this round's revivals (0 when none)
	MaxStaleness  int     // largest rounds-missed across this round's revivals
}

// Result is the outcome of a run.
type Result struct {
	// Manifest is the run's content-addressable identity: a stable hash of
	// the configuration and seed plus the code version (internal/obs). Two
	// results with equal ConfigHash and GitRevision are interchangeable —
	// the cache key of the memoized sweep service.
	Manifest obs.RunManifest

	History []RoundMetrics
	// Final values (from the last evaluation).
	FinalMeanAcc, FinalStdAcc, FinalGlobalAcc float64
	// FinalNodeAccs holds each node's accuracy at the last evaluation,
	// enabling the fairness analyses of the paper's Section 5.1.
	FinalNodeAccs []float64
	// FinalGlobalParams is the average of all node models after the last
	// round when EvalGlobalModel or TrackConsensus is set (nil otherwise).
	// It is the deployable consensus model; save it with nn.SaveParams.
	FinalGlobalParams tensor.Vector
	// Energy totals.
	TotalTrainWh, TotalCommWh float64
	// Harvest totals and final per-node state of charge (Config.Harvest
	// runs only; FinalSoC is nil otherwise). TotalWastedWh is ambient
	// energy that arrived while batteries were full — the quantity a
	// harvest-aware Γ schedule exists to shrink.
	TotalHarvestWh float64
	TotalWastedWh  float64
	FinalSoC       []float64
	// TrainedRounds counts how many rounds each node actually trained.
	TrainedRounds []int
	// TotalDroppedSends is the number of messages lost on dead edges over
	// the whole run (Config.DropDeadNodes runs only).
	TotalDroppedSends int
	// TotalRevivals and TotalRestores count brown-out rejoins over the
	// whole run and how many of them replaced stale state
	// (Config.Checkpoint runs only).
	TotalRevivals, TotalRestores int
}

// MeanRejoinStaleness returns the revival-weighted mean staleness over the
// whole run: how many rounds the average rejoining node had missed. 0 when
// the run saw no revivals.
func (r *Result) MeanRejoinStaleness() float64 {
	if r.TotalRevivals == 0 {
		return 0
	}
	sum := 0.0
	for _, m := range r.History {
		sum += m.MeanStaleness * float64(m.Revivals)
	}
	return sum / float64(r.TotalRevivals)
}

// Evaluations returns only the evaluated rounds of the history.
func (r *Result) Evaluations() []RoundMetrics {
	var out []RoundMetrics
	for _, m := range r.History {
		if m.Evaluated {
			out = append(out, m)
		}
	}
	return out
}

type nodeState struct {
	id      int
	net     *nn.Network
	batcher *dataset.Batcher
	policy  *rng.RNG
	half    tensor.Vector // x^{t-1/2}, the shared model
	agg     tensor.Vector // aggregation buffer
	ep      transport.Endpoint
	inbox   map[int]tensor.Vector // neighbor -> model, refilled per round
	trained int
	err     error
}

// Run executes the experiment.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Graph.N

	net := cfg.Network
	if net == nil {
		maxDeg := 0
		for i := 0; i < n; i++ {
			if d := cfg.Graph.Degree(i); d > maxDeg {
				maxDeg = d
			}
		}
		var err error
		net, err = transport.NewLocal(n, 2*maxDeg+4)
		if err != nil {
			return nil, err
		}
		defer net.Close()
	}
	// In dropout mode every endpoint goes through the dead-node wrapper, so
	// radio silence is enforced at the transport no matter which network
	// backs the run (channels or TCP).
	var deadNet *transport.DeadNode
	if cfg.DropDeadNodes {
		deadNet = &transport.DeadNode{Inner: net}
		net = deadNet
	}

	nodes := make([]*nodeState, n)
	var paramCount int
	for i := 0; i < n; i++ {
		model := cfg.ModelFactory(i, rng.Derive(cfg.Seed, uint64(i), 0x1417))
		if i == 0 {
			paramCount = model.ParamCount()
		} else if model.ParamCount() != paramCount {
			return nil, fmt.Errorf("sim: node %d model has %d params, node 0 has %d", i, model.ParamCount(), paramCount)
		}
		ep, err := net.Endpoint(i)
		if err != nil {
			return nil, err
		}
		nodes[i] = &nodeState{
			id:      i,
			net:     model,
			batcher: dataset.NewBatcher(cfg.Partition[i], rng.Derive(cfg.Seed, uint64(i), 0xba7c4)),
			policy:  rng.Derive(cfg.Seed, uint64(i), 0x90a1c),
			half:    tensor.NewVector(model.ParamCount()),
			agg:     tensor.NewVector(model.ParamCount()),
			ep:      ep,
			inbox:   make(map[int]tensor.Vector, cfg.Graph.Degree(i)),
		}
	}

	acct := energy.NewAccountant(n)
	evaluator := newEvaluator(&cfg, paramCount)
	result := &Result{TrainedRounds: make([]int, n)}
	cumHarvestWh := 0.0

	// Every run carries its content-addressable identity; the probe (when
	// attached) additionally streams it on run_start. Telemetry below is
	// strictly read-only and RNG-silent: probe calls observe engine state
	// and wall clocks, never stochastic or model state.
	result.Manifest = buildManifest(&cfg, paramCount)
	probe := cfg.Probe
	if probe.Enabled() && cfg.Harvest != nil {
		// Harvest-coupled runs stamp the fleet's initial total charge on
		// run_start — the baseline the energy-conservation audit
		// (obs/analyze) integrates per-round deltas from.
		probe.RunStartCharge(&result.Manifest, fleetChargeWh(cfg.Harvest))
	} else {
		probe.RunStart(&result.Manifest)
	}
	// Snapshots of the fleet's cumulative drain/overflow ledgers at the
	// previous round close, so round_end can carry this round's deltas.
	// Maintained only while telemetry is on; reads only, so a probed run
	// stays bit-identical to an unprobed one.
	var prevConsumedWh, prevWastedWh float64

	// The SoC quantile sketch streams per-round charge percentiles without
	// materializing a per-node slice; allocated once, reset per round.
	var socSketch *obs.Sketch
	if cfg.Harvest != nil {
		socSketch = obs.NewSoCSketch()
	}
	// prevLive remembers the previous round's live mask (nil = all live)
	// so the probe can emit brown-out/revival transitions; maintained only
	// while telemetry is on.
	var prevLive []bool

	// Per-node forecast scratch: one window per node, reused every round,
	// so the training fan-out allocates nothing. Each slice is written and
	// read only by its own node's goroutine within a phase.
	var forecastScratch [][]float64
	if cfg.Forecast != nil {
		forecastScratch = make([][]float64, n)
		for i := range forecastScratch {
			forecastScratch[i] = make([]float64, cfg.ForecastHorizon)
		}
	}

	// Scratch for the checkpoint/rejoin phase: one snapshot buffer and the
	// this-round revival mask. Per-revival vectors are allocated on demand —
	// revivals are rare events.
	var ckParams tensor.Vector
	var revivedMask []bool
	if cfg.Checkpoint != nil {
		ckParams = tensor.NewVector(paramCount)
		revivedMask = make([]bool, n)
	}

	for t := 0; t < cfg.Rounds; t++ {
		kind := cfg.Algo.Schedule.Kind(t)
		m := RoundMetrics{Round: t, Kind: kind}
		probe.RoundStart(t, kind.String())

		// Phase 0: snapshot the live set from battery state (or the hook)
		// before any phase runs, so liveness is a whole-round property and
		// independent of phase interleaving.
		probe.PhaseStart(obs.PhaseLiveSet)
		var live []bool
		haveLiveSource := cfg.Liveness != nil || cfg.Harvest != nil
		if cfg.Liveness != nil {
			live = cfg.Liveness(t)
			if live != nil && len(live) != n {
				return nil, fmt.Errorf("sim: Liveness(%d) returned %d nodes, graph has %d", t, len(live), n)
			}
		} else if cfg.Harvest != nil {
			live = cfg.Harvest.Live()
		}
		if haveLiveSource {
			// A nil mask means "all live" (the graph helpers share that
			// convention), so the metrics stay truthful on all-live rounds.
			m.LiveCount = n
			if live != nil {
				m.LiveCount = countTrue(live)
			}
			m.MeanLiveDegree = cfg.Graph.MeanLiveDegree(live)
			m.LiveComponents = cfg.Graph.LiveComponents(live)
		}
		// dropRound marks rounds where the topology actually loses edges:
		// the transport silences them and the mixing matrix is rebuilt over
		// the live subgraph. All-live rounds keep the configured Weights.
		dropRound := false
		roundWeights := cfg.Weights
		if cfg.DropDeadNodes {
			deadNet.SetLive(live)
			if live != nil && countTrue(live) < n {
				dropRound = true
				roundWeights = graph.RenormalizeLive(cfg.Graph, live)
			}
		}
		probe.PhaseEnd(t, obs.PhaseLiveSet)

		// Brown-out/revival transitions, derived by diffing live masks round
		// over round. Checkpoint runs emit revivals from the rejoin phase
		// instead, where the staleness is known.
		if probe.Enabled() && haveLiveSource {
			for i := 0; i < n; i++ {
				was := prevLive == nil || prevLive[i]
				is := live == nil || live[i]
				if was && !is {
					probe.Brownout(t, i)
				} else if !was && is && cfg.Checkpoint == nil {
					probe.Revival(t, i, 0)
				}
			}
			// Copy: the Liveness hook may reuse its slice next round.
			if live == nil {
				prevLive = nil
			} else {
				if prevLive == nil {
					prevLive = make([]bool, n)
				}
				copy(prevLive, live)
			}
		}

		// Phase 0b: checkpoint/rejoin on live-set transitions. Dying nodes
		// get their post-aggregation model snapshotted (stamped with the
		// round that produced it); reviving nodes get the rejoin rule
		// applied before any training. Rejoins are computed first — from
		// the frozen start-of-round models — and applied second, in node
		// order, so adjacent simultaneous revivals see identical inputs and
		// results are bit-identical at any GOMAXPROCS.
		if ck := cfg.Checkpoint; ck != nil {
			probe.PhaseStart(obs.PhaseRejoin)
			died, revived := ck.BeginRound(t, live)
			for _, i := range died {
				nodes[i].net.CopyParamsTo(ckParams)
				if err := ck.Snapshot(i, t-1, ckParams); err != nil {
					return nil, fmt.Errorf("sim: snapshot dying node %d: %w", i, err)
				}
			}
			if len(revived) > 0 {
				for i := range revivedMask {
					revivedMask[i] = false
				}
				for _, rv := range revived {
					revivedMask[rv.Node] = true
				}
				resumed := make([]tensor.Vector, len(revived))
				for k, rv := range revived {
					i := rv.Node
					rj := checkpoint.Rejoin{
						Node: i, Round: t, Staleness: rv.Staleness,
						// nd.agg holds the frozen post-aggregation model:
						// dead rounds copy the held half-step into it.
						Current: nodes[i].agg,
					}
					if snap, ok, err := ck.Load(i); err != nil {
						return nil, fmt.Errorf("sim: load snapshot for node %d: %w", i, err)
					} else if ok {
						rj.Snapshot, rj.SnapshotRound = snap.Params, snap.Round
					}
					// Mean over continuously-live neighbors: live this round
					// and not themselves reviving, so their models are fresh
					// post-aggregation state from round t-1.
					var mean tensor.Vector
					cnt := 0
					for _, j := range cfg.Graph.Adj[i] {
						if (live == nil || live[j]) && !revivedMask[j] {
							if mean == nil {
								mean = tensor.NewVector(paramCount)
							}
							tensor.AXPY(mean, 1, nodes[j].agg)
							cnt++
						}
					}
					if cnt > 0 {
						tensor.ScaleTo(mean, 1/float64(cnt), mean)
						rj.NeighborMean = mean
					}
					resumed[k] = tensor.NewVector(paramCount)
					if ck.Rule().Apply(resumed[k], rj) {
						m.Restores++
					}
					m.Revivals++
					m.MeanStaleness += float64(rv.Staleness)
					if rv.Staleness > m.MaxStaleness {
						m.MaxStaleness = rv.Staleness
					}
					probe.Revival(t, i, rv.Staleness)
				}
				for k, rv := range revived {
					nodes[rv.Node].net.SetParams(resumed[k])
				}
				m.MeanStaleness /= float64(len(revived))
				result.TotalRevivals += m.Revivals
				result.TotalRestores += m.Restores
			}
			probe.PhaseEnd(t, obs.PhaseRejoin)
		}

		// Phase 1: local training. Every participating node decides from
		// its own RoundContext: the shared start-of-round view (round,
		// horizon, schedule, battery) plus its private forecast window, so
		// decisions are independent of worker interleaving.
		probe.PhaseStart(obs.PhaseTrain)
		roundCtx := core.RoundContext{Round: t, Horizon: cfg.Rounds, Kind: kind, Schedule: cfg.Algo.Schedule}
		if cfg.Harvest != nil {
			roundCtx.Battery = cfg.Harvest
		}
		parallelFor(n, func(i int) {
			nd := nodes[i]
			if dropRound && !live[i] {
				// Browned out: the CPU is unpowered, so the node neither
				// trains nor refreshes its shared model; it holds state
				// until it recharges past the cutoff.
				nd.net.CopyParamsTo(nd.half)
				return
			}
			if kind == core.RoundTrain {
				ctx := roundCtx
				if forecastScratch != nil {
					cfg.Forecast.Forecast(i, t, forecastScratch[i])
					ctx.Forecast = forecastScratch[i]
				}
				if cfg.Algo.Policy.Participate(i, ctx, nd.policy) {
					for e := 0; e < cfg.LocalSteps; e++ {
						xs, ys := nd.batcher.Next(cfg.BatchSize)
						nd.net.TrainBatch(xs, ys, cfg.LR)
					}
					nd.trained++
					if cfg.Devices != nil {
						acct.AddTraining(i, t, cfg.Devices[i].TrainRoundWh(cfg.Workload))
					}
				}
			}
			nd.net.CopyParamsTo(nd.half)
		})
		for i := range nodes {
			m.TrainedCount += boolToInt(nodes[i].trained > result.TrainedRounds[i])
			result.TrainedRounds[i] = nodes[i].trained
		}
		probe.PhaseEnd(t, obs.PhaseTrain)

		// Phases 2-3: share and aggregate.
		switch cfg.Algo.Aggregation {
		case core.AggGlobal:
			// Hypothetical all-reduce (Figure 1): global average of all
			// half-step models, applied everywhere.
			probe.PhaseStart(obs.PhaseAggregate)
			mean := tensor.NewVector(paramCount)
			halves := make([]tensor.Vector, n)
			for i, nd := range nodes {
				halves[i] = nd.half
			}
			tensor.MeanVectorTo(mean, halves)
			parallelFor(n, func(i int) {
				copy(nodes[i].agg, mean)
				nodes[i].net.SetParams(nodes[i].agg)
			})
			probe.PhaseEnd(t, obs.PhaseAggregate)
		default:
			probe.PhaseStart(obs.PhaseShare)
			// Phase 2: all sends complete before any receive (inboxes are
			// buffered beyond the per-round in-flight maximum, so sends
			// never block and the receive phase cannot deadlock). On drop
			// rounds a dead node sends nothing, and live nodes still
			// transmit to every neighbor — the radio cannot know a peer is
			// down — with the dead-node wrapper losing those messages.
			parallelFor(n, func(i int) {
				nd := nodes[i]
				if dropRound && !live[i] {
					return
				}
				for _, j := range cfg.Graph.Adj[i] {
					if err := nd.ep.Send(j, transport.Message{Round: t, Kind: transport.KindModel, Vec: nd.half}); err != nil {
						nd.err = err
						return
					}
				}
			})
			if err := firstError(nodes); err != nil {
				return nil, err
			}
			probe.PhaseEnd(t, obs.PhaseShare)
			probe.PhaseStart(obs.PhaseAggregate)
			// Phase 3: receive exactly one model per live neighbor, then
			// apply the W-row average (Algorithm 1, line 8) — the
			// renormalized row on drop rounds. Dead nodes receive nothing
			// and hold their model (their row of W is the identity).
			var liveMask []bool
			if dropRound {
				liveMask = live
			}
			parallelFor(n, func(i int) {
				nd := nodes[i]
				if dropRound && !live[i] {
					copy(nd.agg, nd.half)
					return
				}
				deg := cfg.Graph.LiveDegree(liveMask, i)
				for k := 0; k < deg; k++ {
					msg, err := nd.ep.Recv()
					if err != nil {
						nd.err = err
						return
					}
					if msg.Round != t {
						nd.err = fmt.Errorf("sim: node %d got round %d message in round %d", i, msg.Round, t)
						return
					}
					if _, dup := nd.inbox[msg.From]; dup {
						nd.err = fmt.Errorf("sim: node %d got duplicate message from %d", i, msg.From)
						return
					}
					nd.inbox[msg.From] = msg.Vec
				}
				tensor.ScaleTo(nd.agg, roundWeights.Self[i], nd.half)
				for k, j := range cfg.Graph.Adj[i] {
					if dropRound && !live[j] {
						continue // edge down this round: weight 0, no message
					}
					vec, ok := nd.inbox[j]
					if !ok {
						nd.err = fmt.Errorf("sim: node %d missing model from neighbor %d", i, j)
						return
					}
					tensor.AXPY(nd.agg, roundWeights.Nbr[i][k], vec)
					delete(nd.inbox, j)
				}
				nd.net.SetParams(nd.agg)
			})
			if err := firstError(nodes); err != nil {
				return nil, err
			}
			probe.PhaseEnd(t, obs.PhaseAggregate)
		}
		if cfg.Devices != nil {
			for i := 0; i < n; i++ {
				if dropRound && !live[i] {
					continue // radio off: no sharing, no comm energy
				}
				acct.AddCommunication(i, cfg.Devices[i].TrainRoundWh(cfg.Workload)*energy.CommShareOfTraining)
			}
		}
		if deadNet != nil {
			total := deadNet.Dropped()
			m.DroppedSends = total - result.TotalDroppedSends
			result.TotalDroppedSends = total
			probe.DroppedSends(t, m.DroppedSends)
		}
		if cfg.Harvest != nil {
			probe.PhaseStart(obs.PhaseBattery)
			// Close the battery round: idle+comm draw, then ambient harvest.
			// The fleet's per-node ledger is authoritative; the accountant
			// mirrors it so energy reports pair harvested with consumed.
			// On drop rounds dead nodes owe idle draw only — their radio
			// never powered up.
			var roundHarvest []float64
			if dropRound {
				roundHarvest = cfg.Harvest.EndRoundLive(t, live)
			} else {
				roundHarvest = cfg.Harvest.EndRound(t)
			}
			for i, wh := range roundHarvest {
				acct.AddHarvest(i, wh)
				cumHarvestWh += wh
			}
			// Learning forecasters observe what the source delivered this
			// round (stored + wasted), serially, after the battery update.
			if fob, ok := cfg.Forecast.(harvest.ForecastObserver); ok {
				fob.Observe(t, cfg.Harvest.RoundArrivedWh())
			}
			// One pass over the batteries yields mean/min/depleted and feeds
			// the quantile sketch; the full per-node snapshot (an O(nodes)
			// allocation every round) is opt-in via TrackSoC.
			socSketch.Reset()
			m.MeanSoC, m.MinSoC, m.Depleted = cfg.Harvest.SoCStats(socSketch.Observe)
			m.SoCP50 = socSketch.Quantile(0.50)
			m.SoCP90 = socSketch.Quantile(0.90)
			m.SoCP99 = socSketch.Quantile(0.99)
			m.CumHarvestWh = cumHarvestWh
			m.CumWastedWh = cfg.Harvest.WastedWh()
			if cfg.TrackSoC {
				m.SoCs = cfg.Harvest.SoCs()
			}
			probe.PhaseEnd(t, obs.PhaseBattery)
		}

		// Phase 4: evaluation.
		if shouldEval(t, cfg.Rounds, cfg.EvalEvery) {
			probe.PhaseStart(obs.PhaseEval)
			nodeAccs := evaluator.evaluate(nodes, t, &m)
			m.Evaluated = true
			result.FinalMeanAcc, result.FinalStdAcc, result.FinalGlobalAcc = m.MeanAcc, m.StdAcc, m.GlobalAcc
			result.FinalNodeAccs = nodeAccs
			probe.PhaseEnd(t, obs.PhaseEval)
			probe.Eval(t, m.MeanAcc, m.StdAcc)
		}
		m.CumTrainWh = acct.TotalTrainingWh()
		m.CumCommWh = acct.TotalCommunicationWh()
		result.History = append(result.History, m)
		if probe.Enabled() {
			stats := obs.RoundStats{Trained: m.TrainedCount, Live: m.LiveCount, Depleted: m.Depleted}
			if cfg.Harvest != nil {
				stats.HasSoC = true
				stats.MeanSoC, stats.SoCP50, stats.SoCP90, stats.SoCP99 = m.MeanSoC, m.SoCP50, m.SoCP90, m.SoCP99
				// This round's energy ledger: arrived harvest (pre-clamp, so
				// stored + wasted), drain and overflow as deltas of the
				// cumulative ledgers, and the closing total charge. Together
				// they satisfy harvest − consumed − wasted = ΔCharge, the
				// invariant obs/analyze audits.
				consumed, wasted := cfg.Harvest.ConsumedWh(), cfg.Harvest.WastedWh()
				stats.HasEnergy = true
				for _, wh := range cfg.Harvest.RoundArrivedWh() {
					stats.HarvestWh += wh
				}
				stats.ConsumedWh = consumed - prevConsumedWh
				stats.WastedWh = wasted - prevWastedWh
				stats.ChargeWh = fleetChargeWh(cfg.Harvest)
				prevConsumedWh, prevWastedWh = consumed, wasted
			}
			probe.RoundEnd(t, stats)
		}
	}
	result.TotalTrainWh = acct.TotalTrainingWh()
	result.TotalCommWh = acct.TotalCommunicationWh()
	if cfg.Harvest != nil {
		result.TotalHarvestWh = cumHarvestWh
		result.TotalWastedWh = cfg.Harvest.WastedWh()
		result.FinalSoC = cfg.Harvest.SoCs()
	}
	if evaluator.globalVec != nil {
		models := make([]tensor.Vector, n)
		for i, nd := range nodes {
			models[i] = nd.agg
		}
		result.FinalGlobalParams = tensor.NewVector(paramCount)
		tensor.MeanVectorTo(result.FinalGlobalParams, models)
	}
	if probe.Enabled() {
		trained := 0
		for _, c := range result.TrainedRounds {
			trained += c
		}
		probe.RunEnd(cfg.Rounds, trained)
	}
	return result, nil
}

// fleetChargeWh sums the fleet's per-node battery charge — the total the
// probe stamps on run_start and every harvest round_end so the energy
// audit can track ΔCharge round to round.
func fleetChargeWh(e harvest.Engine) float64 {
	total := 0.0
	for i := 0; i < e.Nodes(); i++ {
		total += e.ChargeWh(i)
	}
	return total
}

// buildManifest derives the run's content-addressable identity from every
// experiment-defining config field. Anything that changes the computed bits
// must be hashed here; anything that cannot (GOMAXPROCS, transport backend,
// telemetry) must not be, or equivalent runs stop sharing a cache key.
func buildManifest(cfg *Config, paramCount int) obs.RunManifest {
	b := obs.NewManifest("sim", cfg.Algo.Label, cfg.Seed).
		Scale(cfg.Graph.N, cfg.Rounds).
		Set("schedule", cfg.Algo.Schedule.Name()).
		Set("policy", cfg.Algo.Policy.Name()).
		Setf("aggregation", "%d", cfg.Algo.Aggregation).
		Setf("lr", "%g", cfg.LR).
		Setf("batch", "%d", cfg.BatchSize).
		Setf("local_steps", "%d", cfg.LocalSteps).
		Setf("params", "%d", paramCount).
		Setf("graph", "%016x", cfg.Graph.Fingerprint()).
		Setf("eval_every", "%d", cfg.EvalEvery).
		Setf("eval_subsample", "%d", cfg.EvalSubsample).
		Setf("eval_global", "%t", cfg.EvalGlobalModel).
		Setf("drop_dead", "%t", cfg.DropDeadNodes)
	if cfg.Harvest != nil {
		b.Set("trace", cfg.Harvest.TraceName())
		// The battery spec is experiment identity too: capacity, cutoff,
		// idle draw, and starting charge decide who trains and who browns
		// out. Fleet-level sums are a compact fingerprint — per-node values
		// follow deterministically from the device mix and options — and
		// without them runs differing only in (say) -cutoff would collide
		// on one cache key.
		var capWh, cutWh, ovWh float64
		for i := 0; i < cfg.Harvest.Nodes(); i++ {
			capWh += cfg.Harvest.CapacityWh(i)
			cutWh += cfg.Harvest.CutoffWh(i)
			ovWh += cfg.Harvest.OverheadWh(i)
		}
		b.Setf("fleet_capacity_wh", "%g", capWh).
			Setf("fleet_cutoff_wh", "%g", cutWh).
			Setf("fleet_overhead_wh", "%g", ovWh).
			Setf("fleet_initial_wh", "%g", fleetChargeWh(cfg.Harvest))
	}
	if cfg.Forecast != nil {
		b.Set("forecast", cfg.Forecast.Name()).
			Setf("forecast_horizon", "%d", cfg.ForecastHorizon)
	}
	if cfg.Checkpoint != nil {
		b.Set("rejoin", cfg.Checkpoint.Rule().Name())
	}
	if cfg.Devices != nil {
		b.Setf("devices", "%d", len(cfg.Devices))
	}
	return b.Build()
}

func shouldEval(t, rounds, every int) bool {
	if t == rounds-1 {
		return true
	}
	if every <= 0 {
		return false
	}
	return (t+1)%every == 0
}

func firstError(nodes []*nodeState) error {
	for _, nd := range nodes {
		if nd.err != nil {
			return nd.err
		}
	}
	return nil
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// parallelFor runs fn(0..n-1) across GOMAXPROCS workers and waits
// (internal/par); every phase body writes node-i state only.
func parallelFor(n int, fn func(i int)) {
	par.For(n, 0, fn)
}

// evaluator owns the shared test subset and the scratch network used to
// score the global average model.
type evaluator struct {
	cfg       *Config
	globalNet *nn.Network
	globalVec tensor.Vector
	evalRNG   *rng.RNG
}

func newEvaluator(cfg *Config, paramCount int) *evaluator {
	ev := &evaluator{cfg: cfg, evalRNG: rng.Derive(cfg.Seed, 0xe7a1)}
	if cfg.EvalGlobalModel || cfg.TrackConsensus {
		ev.globalVec = tensor.NewVector(paramCount)
	}
	if cfg.EvalGlobalModel {
		ev.globalNet = cfg.ModelFactory(-1, rng.Derive(cfg.Seed, 0xe7a1, 1))
	}
	return ev
}

// subset picks the evaluation samples for this round: the full test set, or
// a deterministic subsample shared by all nodes.
func (ev *evaluator) subset() ([]tensor.Vector, []int) {
	test := ev.cfg.Test
	if ev.cfg.EvalSubsample <= 0 || ev.cfg.EvalSubsample >= test.Len() {
		return test.Inputs(), test.Labels()
	}
	idx := ev.evalRNG.Perm(test.Len())[:ev.cfg.EvalSubsample]
	xs := make([]tensor.Vector, len(idx))
	ys := make([]int, len(idx))
	for i, j := range idx {
		xs[i] = test.Samples[j].X
		ys[i] = test.Samples[j].Y
	}
	return xs, ys
}

func (ev *evaluator) evaluate(nodes []*nodeState, round int, m *RoundMetrics) []float64 {
	xs, ys := ev.subset()
	accs := make([]float64, len(nodes))
	parallelFor(len(nodes), func(i int) {
		accs[i] = nodes[i].net.Accuracy(xs, ys)
	})
	m.MeanAcc, m.StdAcc = metrics.MeanStd(accs)
	if ev.globalVec != nil {
		models := make([]tensor.Vector, len(nodes))
		for i, nd := range nodes {
			// nd.agg holds the post-aggregation model of this round.
			models[i] = nd.agg
		}
		tensor.MeanVectorTo(ev.globalVec, models)
		if ev.cfg.TrackConsensus {
			m.Consensus = metrics.ConsensusDistance(models)
		}
		if ev.globalNet != nil {
			ev.globalNet.SetParams(ev.globalVec)
			m.GlobalAcc = ev.globalNet.Accuracy(xs, ys)
		}
	}
	return accs
}
