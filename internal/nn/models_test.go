package nn

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// TestPaperModelSizes pins the parameter counts to the exact |x| values of
// Table 1 in the paper: 89,834 for CIFAR-10 and 1,690,046 for FEMNIST.
// These counts feed the energy model, so they must be exact.
func TestPaperModelSizes(t *testing.T) {
	if n := CIFARGNLeNet(rng.New(1)).ParamCount(); n != 89834 {
		t.Fatalf("CIFAR GN-LeNet has %d params, paper reports 89834", n)
	}
	if n := FEMNISTCNN(rng.New(1)).ParamCount(); n != 1690046 {
		t.Fatalf("FEMNIST CNN has %d params, paper reports 1690046", n)
	}
}

func TestPaperModelShapes(t *testing.T) {
	cifar := CIFARGNLeNet(rng.New(2))
	if cifar.InSize() != 3*32*32 || cifar.OutSize() != 10 {
		t.Fatalf("CIFAR model shape %d->%d", cifar.InSize(), cifar.OutSize())
	}
	femnist := FEMNISTCNN(rng.New(2))
	if femnist.InSize() != 28*28 || femnist.OutSize() != 62 {
		t.Fatalf("FEMNIST model shape %d->%d", femnist.InSize(), femnist.OutSize())
	}
}

func TestPaperModelsForwardBackward(t *testing.T) {
	// One full train step on each paper model: shapes chain, loss is finite.
	if testing.Short() {
		t.Skip("paper-size models are slow in -short mode")
	}
	for name, build := range map[string]func() *Network{
		"cifar":   func() *Network { return CIFARGNLeNet(rng.New(3)) },
		"femnist": func() *Network { return FEMNISTCNN(rng.New(3)) },
	} {
		net := build()
		r := rng.New(4)
		x := tensor.NewVector(net.InSize())
		for i := range x {
			x[i] = r.NormFloat64()
		}
		loss := net.TrainBatch([]tensor.Vector{x}, []int{1}, 0.01)
		if loss <= 0 || loss != loss {
			t.Fatalf("%s: implausible loss %v", name, loss)
		}
	}
}

func TestLogisticRegressionSize(t *testing.T) {
	net := LogisticRegression(10, 4, rng.New(5))
	if n := net.ParamCount(); n != 10*4+4 {
		t.Fatalf("logreg params = %d", n)
	}
}

func TestMLPSize(t *testing.T) {
	net := MLP(8, []int{16, 12}, 5, rng.New(6))
	want := (8*16 + 16) + (16*12 + 12) + (12*5 + 5)
	if n := net.ParamCount(); n != want {
		t.Fatalf("mlp params = %d, want %d", n, want)
	}
}

func TestMLPNoHidden(t *testing.T) {
	net := MLP(6, nil, 3, rng.New(7))
	if n := net.ParamCount(); n != 6*3+3 {
		t.Fatalf("degenerate MLP params = %d", n)
	}
}

func TestSmallCNNTrains(t *testing.T) {
	r := rng.New(8)
	net := SmallCNN(1, 8, 8, 2, r)
	var xs []tensor.Vector
	var ys []int
	// Class 0: bright top half. Class 1: bright bottom half.
	for i := 0; i < 40; i++ {
		x := tensor.NewVector(64)
		y := i % 2
		for row := 0; row < 8; row++ {
			for col := 0; col < 8; col++ {
				v := 0.1 * r.NormFloat64()
				if (y == 0 && row < 4) || (y == 1 && row >= 4) {
					v += 1
				}
				x[row*8+col] = v
			}
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	for epoch := 0; epoch < 40; epoch++ {
		net.TrainBatch(xs, ys, 0.1)
	}
	if acc := net.Accuracy(xs, ys); acc < 0.9 {
		t.Fatalf("SmallCNN accuracy = %v on trivial task", acc)
	}
}

func TestGroupNormValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("groups not dividing channels should panic")
		}
	}()
	NewGroupNorm(5, 2, 2, 2)
}

func TestConvOutputShapeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive conv output should panic")
		}
	}()
	NewConv2D(1, 2, 2, 1, 5, 5, 0, rng.New(9))
}

func TestPoolValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized pool window should panic")
		}
	}()
	NewMaxPool2D(1, 2, 2, 4)
}

func TestPaperPoolShapesDivideEvenly(t *testing.T) {
	// DESIGN note: partial pooling windows never occur in the paper models.
	shapes := []struct{ h, win int }{{32, 2}, {16, 2}, {8, 2}, {28, 2}, {14, 2}}
	for _, s := range shapes {
		if s.h%s.win != 0 {
			t.Fatalf("pool input %d not divisible by window %d", s.h, s.win)
		}
	}
}

func BenchmarkTrainStepLogReg(b *testing.B) {
	r := rng.New(1)
	net := LogisticRegression(32, 10, r)
	xs := make([]tensor.Vector, 32)
	ys := make([]int, 32)
	for i := range xs {
		xs[i] = tensor.NewVector(32)
		for j := range xs[i] {
			xs[i][j] = r.NormFloat64()
		}
		ys[i] = r.Intn(10)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.TrainBatch(xs, ys, 0.1)
	}
}

func BenchmarkForwardCIFARGNLeNet(b *testing.B) {
	net := CIFARGNLeNet(rng.New(1))
	x := tensor.NewVector(net.InSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}
