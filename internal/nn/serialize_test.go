package nn

import (
	"bytes"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	src := MLP(6, []int{10}, 4, rng.New(1))
	var buf bytes.Buffer
	if err := src.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	dst := MLP(6, []int{10}, 4, rng.New(99)) // different init
	if err := dst.LoadParams(&buf); err != nil {
		t.Fatal(err)
	}
	ps := tensor.NewVector(src.ParamCount())
	pd := tensor.NewVector(dst.ParamCount())
	src.CopyParamsTo(ps)
	dst.CopyParamsTo(pd)
	for i := range ps {
		if ps[i] != pd[i] {
			t.Fatalf("param %d differs after load", i)
		}
	}
	// And forward passes agree.
	x := tensor.Vector{1, -1, 2, -2, 0.5, 0}
	a, b := src.Forward(x), dst.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("loaded network computes differently")
		}
	}
}

func TestCheckpointWrongArchitecture(t *testing.T) {
	src := LogisticRegression(4, 3, rng.New(2))
	var buf bytes.Buffer
	if err := src.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	dst := LogisticRegression(5, 3, rng.New(3))
	if err := dst.LoadParams(&buf); err == nil {
		t.Fatal("mismatched parameter count must be rejected")
	}
}

func TestCheckpointCorruption(t *testing.T) {
	src := LogisticRegression(4, 3, rng.New(4))
	var buf bytes.Buffer
	if err := src.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[20] ^= 0xff // flip a param byte
	if err := src.LoadParams(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupted checkpoint must fail the crc")
	}
}

// TestCheckpointImplausibleCount: the count field sits outside the CRC, so
// a corrupted count must surface as an error before any allocation — never
// as a giant make() panic or OOM.
func TestCheckpointImplausibleCount(t *testing.T) {
	net := LogisticRegression(2, 2, rng.New(6))
	var buf bytes.Buffer
	if err := net.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for i := 8; i < 16; i++ {
		data[i] = 0xff // count = 2^64 - 1
	}
	if _, err := ReadVector(bytes.NewReader(data)); err == nil {
		t.Fatal("implausible parameter count must be rejected")
	}
}

func TestCheckpointBadMagicAndTruncation(t *testing.T) {
	net := LogisticRegression(2, 2, rng.New(5))
	if err := net.LoadParams(bytes.NewReader([]byte("notacheckpoint!!"))); err == nil {
		t.Fatal("bad magic must fail")
	}
	var buf bytes.Buffer
	if err := net.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	if err := net.LoadParams(bytes.NewReader(buf.Bytes()[:10])); err == nil {
		t.Fatal("truncated header must fail")
	}
	if err := net.LoadParams(bytes.NewReader(buf.Bytes()[:buf.Len()-6])); err == nil {
		t.Fatal("truncated body must fail")
	}
}
