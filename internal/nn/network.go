package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

func sqrt(x float64) float64 { return math.Sqrt(x) }
func exp(x float64) float64  { return math.Exp(x) }
func abs(x float64) float64  { return math.Abs(x) }

// Network is an ordered stack of layers trained with softmax cross-entropy,
// exactly the loss/optimizer combination of the paper (SGD + Cross-Entropy,
// Section 4.2). The zero value is not usable; build with New.
type Network struct {
	layers  []Layer
	nParams int
	probs   tensor.Vector // softmax scratch, len = class count
}

// New builds a network, validating that consecutive layer sizes chain.
func New(layers ...Layer) *Network {
	if len(layers) == 0 {
		panic("nn: empty network")
	}
	for i := 1; i < len(layers); i++ {
		if layers[i-1].OutSize() != layers[i].InSize() {
			panic(fmt.Sprintf("nn: layer %d outputs %d but layer %d expects %d",
				i-1, layers[i-1].OutSize(), i, layers[i].InSize()))
		}
	}
	n := &Network{layers: layers, probs: tensor.NewVector(layers[len(layers)-1].OutSize())}
	for _, l := range layers {
		for _, p := range l.Params() {
			n.nParams += len(p)
		}
	}
	return n
}

// InSize returns the flat input length the network expects.
func (n *Network) InSize() int { return n.layers[0].InSize() }

// OutSize returns the number of output logits (classes).
func (n *Network) OutSize() int { return n.layers[len(n.layers)-1].OutSize() }

// ParamCount returns the total number of trainable parameters, the |x| of
// Table 1 in the paper.
func (n *Network) ParamCount() int { return n.nParams }

// Forward runs the network and returns the logits (an internal buffer).
func (n *Network) Forward(x tensor.Vector) tensor.Vector {
	out := x
	for _, l := range n.layers {
		out = l.Forward(out)
	}
	return out
}

// CopyParamsTo serializes all parameters into dst, which must have length
// ParamCount. This is the model vector x_i that nodes exchange.
func (n *Network) CopyParamsTo(dst tensor.Vector) {
	checkSize("Network params", len(dst), n.nParams)
	off := 0
	for _, l := range n.layers {
		for _, p := range l.Params() {
			copy(dst[off:off+len(p)], p)
			off += len(p)
		}
	}
}

// SetParams loads all parameters from src (length ParamCount), the inverse
// of CopyParamsTo. Aggregated neighbor averages re-enter the model here.
func (n *Network) SetParams(src tensor.Vector) {
	checkSize("Network params", len(src), n.nParams)
	off := 0
	for _, l := range n.layers {
		for _, p := range l.Params() {
			copy(p, src[off:off+len(p)])
			off += len(p)
		}
	}
}

// ZeroGrads clears every accumulated gradient.
func (n *Network) ZeroGrads() {
	for _, l := range n.layers {
		for _, g := range l.Grads() {
			g.Zero()
		}
	}
}

// SoftmaxCrossEntropy computes the loss for one sample and writes
// dLoss/dLogits into dLogits (probs - onehot). logits and dLogits may alias.
func SoftmaxCrossEntropy(logits tensor.Vector, label int, dLogits tensor.Vector) float64 {
	if label < 0 || label >= len(logits) {
		panic(fmt.Sprintf("nn: label %d out of range for %d classes", label, len(logits)))
	}
	// Numerically stable softmax.
	maxL := logits[0]
	for _, v := range logits[1:] {
		if v > maxL {
			maxL = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		e := exp(v - maxL)
		dLogits[i] = e
		sum += e
	}
	loss := 0.0
	for i := range dLogits {
		p := dLogits[i] / sum
		if i == label {
			// Clamp to avoid -Inf on (impossible in exact arithmetic) p == 0.
			if p < 1e-300 {
				p = 1e-300
			}
			loss = -math.Log(p)
			dLogits[i] = dLogits[i]/sum - 1
		} else {
			dLogits[i] = p
		}
	}
	return loss
}

// TrainBatch performs one SGD step on a mini-batch: it accumulates gradients
// of the mean cross-entropy over the batch and applies params -= lr * grad.
// It returns the mean loss. This is one inner iteration of Algorithm 1,
// lines 5-6.
func (n *Network) TrainBatch(xs []tensor.Vector, ys []int, lr float64) float64 {
	if len(xs) == 0 || len(xs) != len(ys) {
		panic(fmt.Sprintf("nn: bad batch: %d inputs, %d labels", len(xs), len(ys)))
	}
	n.ZeroGrads()
	total := 0.0
	for i, x := range xs {
		logits := n.Forward(x)
		copy(n.probs, logits)
		total += SoftmaxCrossEntropy(n.probs, ys[i], n.probs)
		d := n.probs
		for j := len(n.layers) - 1; j >= 0; j-- {
			d = n.layers[j].Backward(d)
		}
	}
	scale := -lr / float64(len(xs))
	for _, l := range n.layers {
		params, grads := l.Params(), l.Grads()
		for k := range params {
			tensor.AXPY(params[k], scale, grads[k])
		}
	}
	return total / float64(len(xs))
}

// Loss returns the mean cross-entropy of the network on the given samples
// without updating parameters.
func (n *Network) Loss(xs []tensor.Vector, ys []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0.0
	for i, x := range xs {
		logits := n.Forward(x)
		copy(n.probs, logits)
		total += SoftmaxCrossEntropy(n.probs, ys[i], n.probs)
	}
	return total / float64(len(xs))
}

// Predict returns the argmax class for one sample.
func (n *Network) Predict(x tensor.Vector) int {
	return tensor.ArgMax(n.Forward(x))
}

// Accuracy returns the Top-1 accuracy over the given samples in [0, 1].
func (n *Network) Accuracy(xs []tensor.Vector, ys []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for i, x := range xs {
		if n.Predict(x) == ys[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}
