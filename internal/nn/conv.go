package nn

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Conv2D is a 2D convolution over CHW-ordered flat inputs with stride 1 and
// symmetric zero padding. Kernels are stored as a flat block in
// [outC][inC][kh][kw] order followed by one bias per output channel, which
// matches the PyTorch parameter counting the paper's model sizes come from.
type Conv2D struct {
	inC, inH, inW int
	outC, kH, kW  int
	pad           int
	outH, outW    int
	K             tensor.Vector // kernels, len outC*inC*kH*kW
	B             tensor.Vector // len outC
	gK, gB        tensor.Vector
	lastIn        tensor.Vector
	outBuf        tensor.Vector
	dIn           tensor.Vector
}

// NewConv2D constructs the layer. Output spatial size is
// H+2*pad-kH+1 (stride fixed at 1); it panics if that is not positive.
func NewConv2D(inC, inH, inW, outC, kH, kW, pad int, r *rng.RNG) *Conv2D {
	outH := inH + 2*pad - kH + 1
	outW := inW + 2*pad - kW + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("nn: Conv2D output %dx%d not positive", outH, outW))
	}
	l := &Conv2D{
		inC: inC, inH: inH, inW: inW,
		outC: outC, kH: kH, kW: kW, pad: pad,
		outH: outH, outW: outW,
		K:      tensor.NewVector(outC * inC * kH * kW),
		B:      tensor.NewVector(outC),
		gK:     tensor.NewVector(outC * inC * kH * kW),
		gB:     tensor.NewVector(outC),
		lastIn: tensor.NewVector(inC * inH * inW),
		outBuf: tensor.NewVector(outC * outH * outW),
		dIn:    tensor.NewVector(inC * inH * inW),
	}
	heInit(l.K, inC*kH*kW, r)
	return l
}

func (l *Conv2D) InSize() int  { return l.inC * l.inH * l.inW }
func (l *Conv2D) OutSize() int { return l.outC * l.outH * l.outW }

// OutShape returns the output (channels, height, width).
func (l *Conv2D) OutShape() (c, h, w int) { return l.outC, l.outH, l.outW }

func (l *Conv2D) Forward(in tensor.Vector) tensor.Vector {
	checkSize("Conv2D", len(in), l.InSize())
	copy(l.lastIn, in)
	for oc := 0; oc < l.outC; oc++ {
		bias := l.B[oc]
		outPlane := l.outBuf[oc*l.outH*l.outW : (oc+1)*l.outH*l.outW]
		for oy := 0; oy < l.outH; oy++ {
			for ox := 0; ox < l.outW; ox++ {
				s := bias
				for ic := 0; ic < l.inC; ic++ {
					inPlane := in[ic*l.inH*l.inW : (ic+1)*l.inH*l.inW]
					kBase := ((oc*l.inC + ic) * l.kH) * l.kW
					for ky := 0; ky < l.kH; ky++ {
						iy := oy + ky - l.pad
						if iy < 0 || iy >= l.inH {
							continue
						}
						rowIn := inPlane[iy*l.inW : (iy+1)*l.inW]
						rowK := l.K[kBase+ky*l.kW : kBase+(ky+1)*l.kW]
						for kx := 0; kx < l.kW; kx++ {
							ix := ox + kx - l.pad
							if ix < 0 || ix >= l.inW {
								continue
							}
							s += rowK[kx] * rowIn[ix]
						}
					}
				}
				outPlane[oy*l.outW+ox] = s
			}
		}
	}
	return l.outBuf
}

func (l *Conv2D) Backward(dOut tensor.Vector) tensor.Vector {
	checkSize("Conv2D", len(dOut), l.OutSize())
	l.dIn.Zero()
	for oc := 0; oc < l.outC; oc++ {
		dPlane := dOut[oc*l.outH*l.outW : (oc+1)*l.outH*l.outW]
		for oy := 0; oy < l.outH; oy++ {
			for ox := 0; ox < l.outW; ox++ {
				g := dPlane[oy*l.outW+ox]
				if g == 0 {
					continue
				}
				l.gB[oc] += g
				for ic := 0; ic < l.inC; ic++ {
					inPlane := l.lastIn[ic*l.inH*l.inW : (ic+1)*l.inH*l.inW]
					dInPlane := l.dIn[ic*l.inH*l.inW : (ic+1)*l.inH*l.inW]
					kBase := ((oc*l.inC + ic) * l.kH) * l.kW
					for ky := 0; ky < l.kH; ky++ {
						iy := oy + ky - l.pad
						if iy < 0 || iy >= l.inH {
							continue
						}
						for kx := 0; kx < l.kW; kx++ {
							ix := ox + kx - l.pad
							if ix < 0 || ix >= l.inW {
								continue
							}
							idx := iy*l.inW + ix
							kIdx := kBase + ky*l.kW + kx
							l.gK[kIdx] += g * inPlane[idx]
							dInPlane[idx] += g * l.K[kIdx]
						}
					}
				}
			}
		}
	}
	return l.dIn
}

func (l *Conv2D) Params() []tensor.Vector { return []tensor.Vector{l.K, l.B} }
func (l *Conv2D) Grads() []tensor.Vector  { return []tensor.Vector{l.gK, l.gB} }

// MaxPool2D is a max-pooling layer with square window and equal stride
// (window == stride, the common non-overlapping form).
type MaxPool2D struct {
	c, inH, inW int
	win         int
	outH, outW  int
	outBuf      tensor.Vector
	dIn         tensor.Vector
	argmax      []int
}

// NewMaxPool2D pools each win x win block to its maximum. Input spatial
// dimensions need not be divisible by win; the trailing partial window is
// pooled over the available elements (PyTorch floor mode discards them, but
// every shape used here divides evenly — a test asserts that).
func NewMaxPool2D(c, inH, inW, win int) *MaxPool2D {
	outH := inH / win
	outW := inW / win
	if outH == 0 || outW == 0 {
		panic("nn: MaxPool2D window larger than input")
	}
	return &MaxPool2D{
		c: c, inH: inH, inW: inW, win: win,
		outH: outH, outW: outW,
		outBuf: tensor.NewVector(c * outH * outW),
		dIn:    tensor.NewVector(c * inH * inW),
		argmax: make([]int, c*outH*outW),
	}
}

func (l *MaxPool2D) InSize() int  { return l.c * l.inH * l.inW }
func (l *MaxPool2D) OutSize() int { return l.c * l.outH * l.outW }

// OutShape returns the output (channels, height, width).
func (l *MaxPool2D) OutShape() (c, h, w int) { return l.c, l.outH, l.outW }

func (l *MaxPool2D) Forward(in tensor.Vector) tensor.Vector {
	checkSize("MaxPool2D", len(in), l.InSize())
	for c := 0; c < l.c; c++ {
		inPlane := in[c*l.inH*l.inW : (c+1)*l.inH*l.inW]
		for oy := 0; oy < l.outH; oy++ {
			for ox := 0; ox < l.outW; ox++ {
				best := -1
				bestV := 0.0
				for wy := 0; wy < l.win; wy++ {
					iy := oy*l.win + wy
					for wx := 0; wx < l.win; wx++ {
						ix := ox*l.win + wx
						idx := iy*l.inW + ix
						if best == -1 || inPlane[idx] > bestV {
							best, bestV = idx, inPlane[idx]
						}
					}
				}
				oIdx := (c*l.outH+oy)*l.outW + ox
				l.outBuf[oIdx] = bestV
				l.argmax[oIdx] = c*l.inH*l.inW + best
			}
		}
	}
	return l.outBuf
}

func (l *MaxPool2D) Backward(dOut tensor.Vector) tensor.Vector {
	checkSize("MaxPool2D", len(dOut), l.OutSize())
	l.dIn.Zero()
	for i, d := range dOut {
		l.dIn[l.argmax[i]] += d
	}
	return l.dIn
}

func (l *MaxPool2D) Params() []tensor.Vector { return nil }
func (l *MaxPool2D) Grads() []tensor.Vector  { return nil }
