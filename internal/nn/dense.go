package nn

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Dense is a fully connected layer: out = W*in + b. The bias is optional
// so that parameter counts can be matched exactly against reference
// architectures that omit it.
type Dense struct {
	in, out int
	W       *tensor.Matrix // out x in
	B       tensor.Vector  // nil when bias is disabled
	gW      *tensor.Matrix
	gB      tensor.Vector

	lastIn tensor.Vector
	outBuf tensor.Vector
	dIn    tensor.Vector
}

// NewDense returns a Dense layer with He-normal initialized weights, the
// right default for ReLU networks. Pass withBias=false to omit the bias.
func NewDense(in, out int, withBias bool, r *rng.RNG) *Dense {
	l := &Dense{
		in:     in,
		out:    out,
		W:      tensor.NewMatrix(out, in),
		gW:     tensor.NewMatrix(out, in),
		lastIn: tensor.NewVector(in),
		outBuf: tensor.NewVector(out),
		dIn:    tensor.NewVector(in),
	}
	heInit(l.W.Data, in, r)
	if withBias {
		l.B = tensor.NewVector(out)
		l.gB = tensor.NewVector(out)
	}
	return l
}

func (l *Dense) InSize() int  { return l.in }
func (l *Dense) OutSize() int { return l.out }

func (l *Dense) Forward(in tensor.Vector) tensor.Vector {
	checkSize("Dense", len(in), l.in)
	copy(l.lastIn, in)
	tensor.MatVecTo(l.outBuf, l.W, in)
	if l.B != nil {
		for i := range l.outBuf {
			l.outBuf[i] += l.B[i]
		}
	}
	return l.outBuf
}

func (l *Dense) Backward(dOut tensor.Vector) tensor.Vector {
	checkSize("Dense", len(dOut), l.out)
	tensor.OuterAcc(l.gW, dOut, l.lastIn)
	if l.gB != nil {
		tensor.AXPY(l.gB, 1, dOut)
	}
	tensor.MatTVecTo(l.dIn, l.W, dOut)
	return l.dIn
}

func (l *Dense) Params() []tensor.Vector {
	if l.B == nil {
		return []tensor.Vector{l.W.Data}
	}
	return []tensor.Vector{l.W.Data, l.B}
}

func (l *Dense) Grads() []tensor.Vector {
	if l.gB == nil {
		return []tensor.Vector{l.gW.Data}
	}
	return []tensor.Vector{l.gW.Data, l.gB}
}

// heInit fills w with He-normal weights: N(0, 2/fanIn).
func heInit(w []float64, fanIn int, r *rng.RNG) {
	std := sqrt(2.0 / float64(fanIn))
	for i := range w {
		w[i] = r.NormFloat64() * std
	}
}

// xavierInit fills w with Glorot-normal weights: N(0, 2/(fanIn+fanOut)).
func xavierInit(w []float64, fanIn, fanOut int, r *rng.RNG) {
	std := sqrt(2.0 / float64(fanIn+fanOut))
	for i := range w {
		w[i] = r.NormFloat64() * std
	}
}
