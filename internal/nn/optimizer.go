package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Optimizer applies accumulated gradients to a network's parameters.
// Optimizers are stateful (momentum buffers) and bound to one network.
type Optimizer interface {
	// Step consumes the gradients currently accumulated in the network
	// (divided by batchSize) and updates the parameters.
	Step(net *Network, batchSize int)
}

// SGD is stochastic gradient descent with optional momentum, Nesterov
// acceleration, and decoupled weight decay. With Momentum == 0 and
// WeightDecay == 0 it reproduces Network.TrainBatch's plain update, which
// is what the paper uses (Section 4.2: "trained with SGD").
type SGD struct {
	LR          float64
	Momentum    float64
	Nesterov    bool
	WeightDecay float64

	velocity []tensor.Vector // one buffer per parameter block, lazily sized
}

// NewSGD returns a plain SGD optimizer.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// NewMomentumSGD returns SGD with momentum (and optionally Nesterov).
func NewMomentumSGD(lr, momentum float64, nesterov bool) *SGD {
	return &SGD{LR: lr, Momentum: momentum, Nesterov: nesterov}
}

// Step implements Optimizer.
func (o *SGD) Step(net *Network, batchSize int) {
	if batchSize < 1 {
		panic(fmt.Sprintf("nn: SGD step with batch size %d", batchSize))
	}
	scale := 1.0 / float64(batchSize)
	blockIdx := 0
	for _, l := range net.layers {
		params, grads := l.Params(), l.Grads()
		for k := range params {
			p, g := params[k], grads[k]
			if o.Momentum == 0 {
				for i := range p {
					step := g[i]*scale + o.WeightDecay*p[i]
					p[i] -= o.LR * step
				}
				blockIdx++
				continue
			}
			if blockIdx >= len(o.velocity) {
				o.velocity = append(o.velocity, tensor.NewVector(len(p)))
			}
			v := o.velocity[blockIdx]
			if len(v) != len(p) {
				panic("nn: SGD bound to a different network")
			}
			for i := range p {
				grad := g[i]*scale + o.WeightDecay*p[i]
				v[i] = o.Momentum*v[i] + grad
				if o.Nesterov {
					p[i] -= o.LR * (grad + o.Momentum*v[i])
				} else {
					p[i] -= o.LR * v[i]
				}
			}
			blockIdx++
		}
	}
}

// Reset clears momentum state (used when the model is overwritten by an
// aggregation step and stale velocity would point in an outdated
// direction).
func (o *SGD) Reset() {
	for _, v := range o.velocity {
		v.Zero()
	}
}

// TrainBatchWith runs one forward/backward pass over the batch and lets the
// optimizer apply the update. It returns the mean loss.
func (n *Network) TrainBatchWith(opt Optimizer, xs []tensor.Vector, ys []int) float64 {
	loss := n.AccumulateGradients(xs, ys)
	opt.Step(n, len(xs))
	return loss
}

// AccumulateGradients zeroes the gradient buffers, then accumulates
// dLoss/dTheta summed over the batch (not averaged), returning the mean
// loss. Callers apply the update themselves (see Optimizer).
func (n *Network) AccumulateGradients(xs []tensor.Vector, ys []int) float64 {
	if len(xs) == 0 || len(xs) != len(ys) {
		panic(fmt.Sprintf("nn: bad batch: %d inputs, %d labels", len(xs), len(ys)))
	}
	n.ZeroGrads()
	total := 0.0
	for i, x := range xs {
		logits := n.Forward(x)
		copy(n.probs, logits)
		total += SoftmaxCrossEntropy(n.probs, ys[i], n.probs)
		d := n.probs
		for j := len(n.layers) - 1; j >= 0; j-- {
			d = n.layers[j].Backward(d)
		}
	}
	return total / float64(len(xs))
}

// LRSchedule maps a round number to a learning rate.
type LRSchedule interface {
	// At returns the learning rate for round t (0-based).
	At(t int) float64
}

// ConstantLR always returns the same rate.
type ConstantLR float64

// At implements LRSchedule.
func (c ConstantLR) At(int) float64 { return float64(c) }

// StepDecayLR multiplies the base rate by Factor every Every rounds.
type StepDecayLR struct {
	Base   float64
	Factor float64
	Every  int
}

// At implements LRSchedule.
func (s StepDecayLR) At(t int) float64 {
	if s.Every <= 0 {
		return s.Base
	}
	lr := s.Base
	for k := 0; k < t/s.Every; k++ {
		lr *= s.Factor
	}
	return lr
}
