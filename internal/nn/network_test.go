package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestParamRoundTrip(t *testing.T) {
	net := MLP(5, []int{7}, 3, rng.New(1))
	p1 := tensor.NewVector(net.ParamCount())
	net.CopyParamsTo(p1)
	// Mutate, restore, compare.
	mutated := p1.Clone()
	for i := range mutated {
		mutated[i] += 1.5
	}
	net.SetParams(mutated)
	p2 := tensor.NewVector(net.ParamCount())
	net.CopyParamsTo(p2)
	for i := range p2 {
		if p2[i] != mutated[i] {
			t.Fatalf("round trip failed at %d", i)
		}
	}
	net.SetParams(p1)
	net.CopyParamsTo(p2)
	for i := range p2 {
		if p2[i] != p1[i] {
			t.Fatalf("restore failed at %d", i)
		}
	}
}

func TestSetParamsChangesForward(t *testing.T) {
	net := LogisticRegression(4, 3, rng.New(2))
	x := tensor.Vector{1, 2, 3, 4}
	before := net.Forward(x).Clone()
	p := tensor.NewVector(net.ParamCount())
	net.CopyParamsTo(p)
	for i := range p {
		p[i] = 0
	}
	net.SetParams(p)
	after := net.Forward(x)
	allZero := true
	for _, v := range after {
		if v != 0 {
			allZero = false
		}
	}
	if !allZero {
		t.Fatalf("zero params should give zero logits, got %v", after)
	}
	if before[0] == 0 && before[1] == 0 && before[2] == 0 {
		t.Fatal("initialized network produced zero logits (init failed?)")
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits := tensor.Vector{0, 0, 0}
	d := tensor.NewVector(3)
	loss := SoftmaxCrossEntropy(logits, 1, d)
	if math.Abs(loss-math.Log(3)) > 1e-12 {
		t.Fatalf("uniform loss = %v, want ln 3", loss)
	}
	want := []float64{1.0 / 3, 1.0/3 - 1, 1.0 / 3}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-12 {
			t.Fatalf("dLogits[%d] = %v, want %v", i, d[i], want[i])
		}
	}
	// Gradient sums to zero (softmax simplex property).
	if s := tensor.Sum(d); math.Abs(s) > 1e-12 {
		t.Fatalf("gradient sum = %v, want 0", s)
	}
}

func TestSoftmaxCrossEntropyStability(t *testing.T) {
	logits := tensor.Vector{1e4, -1e4, 0}
	d := tensor.NewVector(3)
	loss := SoftmaxCrossEntropy(logits, 0, d)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("unstable loss: %v", loss)
	}
	loss = SoftmaxCrossEntropy(logits, 1, d)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("unstable loss for tiny prob: %v", loss)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	r := rng.New(3)
	net := MLP(4, []int{16}, 2, r)
	// Linearly separable toy task.
	var xs []tensor.Vector
	var ys []int
	for i := 0; i < 64; i++ {
		x := tensor.NewVector(4)
		for j := range x {
			x[j] = r.NormFloat64()
		}
		y := 0
		if x[0]+x[1] > 0 {
			y = 1
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	before := net.Loss(xs, ys)
	for epoch := 0; epoch < 60; epoch++ {
		net.TrainBatch(xs, ys, 0.5)
	}
	after := net.Loss(xs, ys)
	if after >= before {
		t.Fatalf("loss did not decrease: %v -> %v", before, after)
	}
	if acc := net.Accuracy(xs, ys); acc < 0.95 {
		t.Fatalf("separable task accuracy = %v, want >= 0.95", acc)
	}
}

func TestTrainBatchReturnsMeanLoss(t *testing.T) {
	net := LogisticRegression(3, 2, rng.New(4))
	xs := []tensor.Vector{{1, 0, 0}, {0, 1, 0}}
	ys := []int{0, 1}
	lossBefore := net.Loss(xs, ys)
	got := net.TrainBatch(xs, ys, 0) // lr 0: loss reported must equal pre-update loss
	if math.Abs(got-lossBefore) > 1e-12 {
		t.Fatalf("TrainBatch loss %v != Loss %v", got, lossBefore)
	}
}

func TestDeterministicTraining(t *testing.T) {
	build := func() (*Network, []tensor.Vector, []int) {
		r := rng.New(5)
		net := MLP(4, []int{8}, 3, r)
		var xs []tensor.Vector
		var ys []int
		for i := 0; i < 10; i++ {
			x := tensor.NewVector(4)
			for j := range x {
				x[j] = r.NormFloat64()
			}
			xs = append(xs, x)
			ys = append(ys, r.Intn(3))
		}
		return net, xs, ys
	}
	n1, xs1, ys1 := build()
	n2, xs2, ys2 := build()
	for i := 0; i < 5; i++ {
		l1 := n1.TrainBatch(xs1, ys1, 0.1)
		l2 := n2.TrainBatch(xs2, ys2, 0.1)
		if l1 != l2 {
			t.Fatalf("training not deterministic at step %d: %v vs %v", i, l1, l2)
		}
	}
}

func TestAccuracyEmpty(t *testing.T) {
	net := LogisticRegression(2, 2, rng.New(6))
	if net.Accuracy(nil, nil) != 0 {
		t.Fatal("accuracy of empty set should be 0")
	}
	if net.Loss(nil, nil) != 0 {
		t.Fatal("loss of empty set should be 0")
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched layer chain should panic")
		}
	}()
	r := rng.New(7)
	New(NewDense(3, 4, true, r), NewDense(5, 2, true, r))
}

func TestLabelOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range label should panic")
		}
	}()
	SoftmaxCrossEntropy(tensor.Vector{0, 0}, 5, tensor.NewVector(2))
}

func TestBatchValidation(t *testing.T) {
	net := LogisticRegression(2, 2, rng.New(8))
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched batch should panic")
		}
	}()
	net.TrainBatch([]tensor.Vector{{1, 2}}, []int{0, 1}, 0.1)
}

func TestTanhValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0}, {100, 1}, {-100, -1}, {1, math.Tanh(1)}, {-0.5, math.Tanh(-0.5)},
	}
	for _, c := range cases {
		if got := tanh(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("tanh(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestMixingTwoModelsAverages(t *testing.T) {
	// The core DL operation: average two models' parameter vectors and load
	// the result back. Forward of the average on a linear model must equal
	// the average of forwards (linearity in parameters for logits).
	r := rng.New(9)
	a := LogisticRegression(3, 2, r)
	b := LogisticRegression(3, 2, r)
	x := tensor.Vector{0.5, -1, 2}
	la := a.Forward(x).Clone()
	lb := b.Forward(x).Clone()
	pa := tensor.NewVector(a.ParamCount())
	pb := tensor.NewVector(b.ParamCount())
	a.CopyParamsTo(pa)
	b.CopyParamsTo(pb)
	avg := tensor.NewVector(len(pa))
	tensor.WeightedSumTo(avg, []float64{0.5, 0.5}, []tensor.Vector{pa, pb})
	a.SetParams(avg)
	lavg := a.Forward(x)
	for i := range lavg {
		want := (la[i] + lb[i]) / 2
		if math.Abs(lavg[i]-want) > 1e-12 {
			t.Fatalf("averaged logits[%d] = %v, want %v", i, lavg[i], want)
		}
	}
}
