package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// groupNormEps matches PyTorch's default epsilon for GroupNorm.
const groupNormEps = 1e-5

// GroupNorm normalizes a CHW-ordered activation over groups of channels and
// applies a per-channel affine transform (gamma, beta). The paper's CIFAR-10
// model is DecentralizePy's GN-LeNet, whose 89,834-parameter count includes
// the 2-per-channel GroupNorm affines; implementing it is what lets this
// repo reproduce the model size exactly.
type GroupNorm struct {
	c, h, w int
	groups  int
	gamma   tensor.Vector // len c
	beta    tensor.Vector
	gGamma  tensor.Vector
	gBeta   tensor.Vector

	lastIn tensor.Vector
	xhat   tensor.Vector
	invStd tensor.Vector // per group
	outBuf tensor.Vector
	dIn    tensor.Vector
}

// NewGroupNorm constructs a GroupNorm over (c, h, w) activations with the
// given group count. groups must divide c. Gamma initializes to 1, beta to 0.
func NewGroupNorm(c, h, w, groups int) *GroupNorm {
	if groups <= 0 || c%groups != 0 {
		panic(fmt.Sprintf("nn: GroupNorm groups=%d does not divide channels=%d", groups, c))
	}
	l := &GroupNorm{
		c: c, h: h, w: w, groups: groups,
		gamma:  tensor.NewVector(c),
		beta:   tensor.NewVector(c),
		gGamma: tensor.NewVector(c),
		gBeta:  tensor.NewVector(c),
		lastIn: tensor.NewVector(c * h * w),
		xhat:   tensor.NewVector(c * h * w),
		invStd: tensor.NewVector(groups),
		outBuf: tensor.NewVector(c * h * w),
		dIn:    tensor.NewVector(c * h * w),
	}
	l.gamma.Fill(1)
	return l
}

func (l *GroupNorm) InSize() int  { return l.c * l.h * l.w }
func (l *GroupNorm) OutSize() int { return l.c * l.h * l.w }

func (l *GroupNorm) Forward(in tensor.Vector) tensor.Vector {
	checkSize("GroupNorm", len(in), l.InSize())
	copy(l.lastIn, in)
	spatial := l.h * l.w
	chPerGroup := l.c / l.groups
	m := chPerGroup * spatial
	for g := 0; g < l.groups; g++ {
		lo := g * m
		hi := lo + m
		seg := in[lo:hi]
		mean := tensor.Mean(seg)
		varSum := 0.0
		for _, x := range seg {
			d := x - mean
			varSum += d * d
		}
		variance := varSum / float64(m)
		invStd := 1 / sqrt(variance+groupNormEps)
		l.invStd[g] = invStd
		for i := lo; i < hi; i++ {
			l.xhat[i] = (in[i] - mean) * invStd
		}
	}
	for c := 0; c < l.c; c++ {
		ga, be := l.gamma[c], l.beta[c]
		for s := 0; s < spatial; s++ {
			idx := c*spatial + s
			l.outBuf[idx] = ga*l.xhat[idx] + be
		}
	}
	return l.outBuf
}

func (l *GroupNorm) Backward(dOut tensor.Vector) tensor.Vector {
	checkSize("GroupNorm", len(dOut), l.OutSize())
	spatial := l.h * l.w
	chPerGroup := l.c / l.groups
	m := chPerGroup * spatial
	// Per-channel affine gradients.
	for c := 0; c < l.c; c++ {
		for s := 0; s < spatial; s++ {
			idx := c*spatial + s
			l.gGamma[c] += dOut[idx] * l.xhat[idx]
			l.gBeta[c] += dOut[idx]
		}
	}
	// Input gradient, layer-norm style within each group:
	// dx = invStd/m * (m*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat))
	for g := 0; g < l.groups; g++ {
		lo := g * m
		hi := lo + m
		var sumDx, sumDxX float64
		for i := lo; i < hi; i++ {
			c := i / spatial
			dxhat := dOut[i] * l.gamma[c]
			sumDx += dxhat
			sumDxX += dxhat * l.xhat[i]
		}
		invStd := l.invStd[g]
		fm := float64(m)
		for i := lo; i < hi; i++ {
			c := i / spatial
			dxhat := dOut[i] * l.gamma[c]
			l.dIn[i] = invStd / fm * (fm*dxhat - sumDx - l.xhat[i]*sumDxX)
		}
	}
	return l.dIn
}

func (l *GroupNorm) Params() []tensor.Vector { return []tensor.Vector{l.gamma, l.beta} }
func (l *GroupNorm) Grads() []tensor.Vector  { return []tensor.Vector{l.gGamma, l.gBeta} }
