// Package nn is a from-scratch neural-network library sufficient to train
// the models of the SkipTrain paper: multinomial logistic regression, MLPs,
// and the paper's two CNNs (the 89,834-parameter GN-LeNet for CIFAR-10 and
// the 1,690,046-parameter LEAF CNN for FEMNIST).
//
// The library works one sample at a time with manual backpropagation; a
// batch is a loop that accumulates gradients. This keeps layers simple and
// allocation-free after construction, which matters when 256 simulated
// nodes each own a model. Networks are NOT safe for concurrent use; in the
// simulator every node goroutine owns its own Network.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Layer is one differentiable stage of a network. Forward retains whatever
// state Backward needs, so calls must alternate Forward then Backward for
// the same sample. Params and Grads return matching views of the layer's
// parameter and gradient blocks; stateless layers return nil.
type Layer interface {
	// InSize and OutSize are the flat input/output lengths.
	InSize() int
	OutSize() int
	// Forward consumes a flat input and returns a flat output. The returned
	// slice is an internal buffer valid until the next Forward.
	Forward(in tensor.Vector) tensor.Vector
	// Backward consumes dLoss/dOut and returns dLoss/dIn, accumulating
	// parameter gradients. The returned slice is an internal buffer.
	Backward(dOut tensor.Vector) tensor.Vector
	// Params returns views of the layer's parameter blocks.
	Params() []tensor.Vector
	// Grads returns views of the gradient blocks, aligned with Params.
	Grads() []tensor.Vector
}

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	n    int
	out  tensor.Vector
	dIn  tensor.Vector
	mask []bool
}

// NewReLU returns a ReLU over vectors of length n.
func NewReLU(n int) *ReLU {
	return &ReLU{n: n, out: tensor.NewVector(n), dIn: tensor.NewVector(n), mask: make([]bool, n)}
}

func (l *ReLU) InSize() int  { return l.n }
func (l *ReLU) OutSize() int { return l.n }

func (l *ReLU) Forward(in tensor.Vector) tensor.Vector {
	checkSize("ReLU", len(in), l.n)
	for i, x := range in {
		if x > 0 {
			l.out[i] = x
			l.mask[i] = true
		} else {
			l.out[i] = 0
			l.mask[i] = false
		}
	}
	return l.out
}

func (l *ReLU) Backward(dOut tensor.Vector) tensor.Vector {
	checkSize("ReLU", len(dOut), l.n)
	for i, d := range dOut {
		if l.mask[i] {
			l.dIn[i] = d
		} else {
			l.dIn[i] = 0
		}
	}
	return l.dIn
}

func (l *ReLU) Params() []tensor.Vector { return nil }
func (l *ReLU) Grads() []tensor.Vector  { return nil }

// Tanh applies the hyperbolic tangent element-wise.
type Tanh struct {
	n   int
	out tensor.Vector
	dIn tensor.Vector
}

// NewTanh returns a Tanh over vectors of length n.
func NewTanh(n int) *Tanh {
	return &Tanh{n: n, out: tensor.NewVector(n), dIn: tensor.NewVector(n)}
}

func (l *Tanh) InSize() int  { return l.n }
func (l *Tanh) OutSize() int { return l.n }

func (l *Tanh) Forward(in tensor.Vector) tensor.Vector {
	checkSize("Tanh", len(in), l.n)
	for i, x := range in {
		l.out[i] = tanh(x)
	}
	return l.out
}

func (l *Tanh) Backward(dOut tensor.Vector) tensor.Vector {
	checkSize("Tanh", len(dOut), l.n)
	for i, d := range dOut {
		y := l.out[i]
		l.dIn[i] = d * (1 - y*y)
	}
	return l.dIn
}

func (l *Tanh) Params() []tensor.Vector { return nil }
func (l *Tanh) Grads() []tensor.Vector  { return nil }

func tanh(x float64) float64 {
	// Stable formulation: tanh(x) = sign(x) * (1 - e) / (1 + e), e = exp(-2|x|).
	if x > 20 {
		return 1
	}
	if x < -20 {
		return -1
	}
	e := exp(-2 * abs(x))
	t := (1 - e) / (1 + e)
	if x < 0 {
		return -t
	}
	return t
}

func checkSize(layer string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("nn: %s size mismatch: got %d, want %d", layer, got, want))
	}
}
