package nn

import "repro/internal/rng"

// This file is the model zoo. Two families:
//
//  1. Paper-exact architectures whose parameter counts match Table 1 of the
//     paper bit-for-bit: CIFARGNLeNet (89,834) and FEMNISTCNN (1,690,046).
//     These drive the energy model and can be trained (slowly) end to end.
//  2. Scaled-down models (logistic regression, MLP, SmallCNN) used by the
//     simulator so that 256-node experiments run on CPU-only machines while
//     preserving the paper's learning dynamics (see README.md).

// CIFARGNLeNet builds DecentralizePy's GN-LeNet for 3x32x32 inputs and 10
// classes: three 5x5 convolutions (32, 32, 64 channels, padding 2), each
// followed by GroupNorm(2 groups) + ReLU + 2x2 max-pooling, then a linear
// classifier over the 64*4*4 feature map. Parameter count: 89,834 — exactly
// the |x| the paper reports for CIFAR-10.
func CIFARGNLeNet(r *rng.RNG) *Network {
	conv1 := NewConv2D(3, 32, 32, 32, 5, 5, 2, r) // -> 32x32x32
	gn1 := NewGroupNorm(32, 32, 32, 2)
	relu1 := NewReLU(32 * 32 * 32)
	pool1 := NewMaxPool2D(32, 32, 32, 2) // -> 32x16x16
	conv2 := NewConv2D(32, 16, 16, 32, 5, 5, 2, r)
	gn2 := NewGroupNorm(32, 16, 16, 2)
	relu2 := NewReLU(32 * 16 * 16)
	pool2 := NewMaxPool2D(32, 16, 16, 2) // -> 32x8x8
	conv3 := NewConv2D(32, 8, 8, 64, 5, 5, 2, r)
	gn3 := NewGroupNorm(64, 8, 8, 2)
	relu3 := NewReLU(64 * 8 * 8)
	pool3 := NewMaxPool2D(64, 8, 8, 2) // -> 64x4x4
	fc := NewDense(64*4*4, 10, true, r)
	return New(conv1, gn1, relu1, pool1, conv2, gn2, relu2, pool2, conv3, gn3, relu3, pool3, fc)
}

// FEMNISTCNN builds the LEAF benchmark CNN for 1x28x28 inputs and 62
// classes: two 5x5 same-padded convolutions (32 and 64 channels) each with
// ReLU + 2x2 pooling, a 3136->512 linear layer with ReLU, and a 512->62
// classifier. Parameter count: 1,690,046 — exactly the |x| the paper
// reports for FEMNIST.
func FEMNISTCNN(r *rng.RNG) *Network {
	conv1 := NewConv2D(1, 28, 28, 32, 5, 5, 2, r) // -> 32x28x28
	relu1 := NewReLU(32 * 28 * 28)
	pool1 := NewMaxPool2D(32, 28, 28, 2) // -> 32x14x14
	conv2 := NewConv2D(32, 14, 14, 64, 5, 5, 2, r)
	relu2 := NewReLU(64 * 14 * 14)
	pool2 := NewMaxPool2D(64, 14, 14, 2) // -> 64x7x7
	fc1 := NewDense(64*7*7, 512, true, r)
	relu3 := NewReLU(512)
	fc2 := NewDense(512, 62, true, r)
	return New(conv1, relu1, pool1, conv2, relu2, pool2, fc1, relu3, fc2)
}

// LogisticRegression builds a single linear layer (multinomial logistic
// regression). It is the cheapest model that still exhibits the non-IID
// bias/mixing dynamics the paper studies.
func LogisticRegression(dim, classes int, r *rng.RNG) *Network {
	l := NewDense(dim, classes, true, r)
	xavierInit(l.W.Data, dim, classes, r)
	return New(l)
}

// MLP builds dim -> hidden... -> classes with ReLU between linear layers.
func MLP(dim int, hidden []int, classes int, r *rng.RNG) *Network {
	var layers []Layer
	in := dim
	for _, h := range hidden {
		layers = append(layers, NewDense(in, h, true, r), NewReLU(h))
		in = h
	}
	out := NewDense(in, classes, true, r)
	xavierInit(out.W.Data, in, classes, r)
	layers = append(layers, out)
	return New(layers...)
}

// SmallCNN builds a compact convolutional model for c x h x w inputs:
// conv(8 channels, 3x3, pad 1) + ReLU + 2x2 pool + linear classifier.
// It exercises the full conv/pool/backprop path at simulation-friendly cost.
func SmallCNN(c, h, w, classes int, r *rng.RNG) *Network {
	conv := NewConv2D(c, h, w, 8, 3, 3, 1, r)
	relu := NewReLU(8 * h * w)
	pool := NewMaxPool2D(8, h, w, 2)
	pc, ph, pw := pool.OutShape()
	fc := NewDense(pc*ph*pw, classes, true, r)
	return New(conv, relu, pool, fc)
}
