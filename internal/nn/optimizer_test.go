package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func toyBatch(r *rng.RNG, dim, classes, n int) ([]tensor.Vector, []int) {
	xs := make([]tensor.Vector, n)
	ys := make([]int, n)
	for i := range xs {
		xs[i] = tensor.NewVector(dim)
		for j := range xs[i] {
			xs[i][j] = r.NormFloat64()
		}
		if xs[i][0] > 0 {
			ys[i] = 1
		}
	}
	return xs, ys
}

func TestPlainSGDMatchesTrainBatch(t *testing.T) {
	// SGD{LR} via TrainBatchWith must produce exactly the same update as
	// the built-in TrainBatch.
	r := rng.New(1)
	a := MLP(4, []int{6}, 2, rng.New(2))
	b := MLP(4, []int{6}, 2, rng.New(2))
	xs, ys := toyBatch(r, 4, 2, 8)
	opt := NewSGD(0.1)
	for step := 0; step < 5; step++ {
		la := a.TrainBatch(xs, ys, 0.1)
		lb := b.TrainBatchWith(opt, xs, ys)
		if la != lb {
			t.Fatalf("step %d: losses differ %v vs %v", step, la, lb)
		}
	}
	pa := tensor.NewVector(a.ParamCount())
	pb := tensor.NewVector(b.ParamCount())
	a.CopyParamsTo(pa)
	b.CopyParamsTo(pb)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("params diverged at %d", i)
		}
	}
}

func TestMomentumAcceleratesOnQuadratic(t *testing.T) {
	// On a noiseless, well-conditioned task momentum should reach lower
	// loss than plain SGD in the same number of steps.
	r := rng.New(3)
	xs, ys := toyBatch(r, 6, 2, 64)
	run := func(opt Optimizer) float64 {
		net := LogisticRegression(6, 2, rng.New(4))
		for i := 0; i < 30; i++ {
			net.TrainBatchWith(opt, xs, ys)
		}
		return net.Loss(xs, ys)
	}
	plain := run(NewSGD(0.05))
	mom := run(NewMomentumSGD(0.05, 0.9, false))
	if mom >= plain {
		t.Fatalf("momentum loss %v not better than plain %v", mom, plain)
	}
}

func TestNesterovRuns(t *testing.T) {
	r := rng.New(5)
	xs, ys := toyBatch(r, 4, 2, 16)
	net := LogisticRegression(4, 2, rng.New(6))
	opt := NewMomentumSGD(0.05, 0.9, true)
	before := net.Loss(xs, ys)
	for i := 0; i < 20; i++ {
		net.TrainBatchWith(opt, xs, ys)
	}
	if after := net.Loss(xs, ys); after >= before {
		t.Fatalf("nesterov did not reduce loss: %v -> %v", before, after)
	}
}

func TestWeightDecayShrinksNorm(t *testing.T) {
	// With pure decay (no data gradient: lr*wd applied every step) the
	// parameter norm must shrink. Feed a gradient-free "batch" by using
	// labels the model predicts with certainty... simpler: compare norms
	// after training with and without decay.
	r := rng.New(7)
	xs, ys := toyBatch(r, 4, 2, 16)
	run := func(wd float64) float64 {
		net := LogisticRegression(4, 2, rng.New(8))
		opt := &SGD{LR: 0.05, WeightDecay: wd}
		for i := 0; i < 50; i++ {
			net.TrainBatchWith(opt, xs, ys)
		}
		p := tensor.NewVector(net.ParamCount())
		net.CopyParamsTo(p)
		return tensor.Norm2(p)
	}
	if nd, d := run(0), run(0.1); d >= nd {
		t.Fatalf("weight decay did not shrink norm: %v vs %v", d, nd)
	}
}

func TestSGDReset(t *testing.T) {
	r := rng.New(9)
	xs, ys := toyBatch(r, 4, 2, 8)
	net := LogisticRegression(4, 2, rng.New(10))
	opt := NewMomentumSGD(0.1, 0.9, false)
	net.TrainBatchWith(opt, xs, ys)
	opt.Reset()
	for _, v := range opt.velocity {
		for _, x := range v {
			if x != 0 {
				t.Fatal("Reset left velocity non-zero")
			}
		}
	}
}

func TestSGDStepPanicsOnBadBatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for batch size 0")
		}
	}()
	NewSGD(0.1).Step(LogisticRegression(2, 2, rng.New(11)), 0)
}

func TestLRSchedules(t *testing.T) {
	c := ConstantLR(0.1)
	if c.At(0) != 0.1 || c.At(1000) != 0.1 {
		t.Fatal("constant LR wrong")
	}
	s := StepDecayLR{Base: 1.0, Factor: 0.5, Every: 10}
	if s.At(0) != 1.0 || s.At(9) != 1.0 {
		t.Fatal("step decay before first boundary wrong")
	}
	if s.At(10) != 0.5 || s.At(25) != 0.25 {
		t.Fatalf("step decay wrong: At(10)=%v At(25)=%v", s.At(10), s.At(25))
	}
	degenerate := StepDecayLR{Base: 0.3}
	if degenerate.At(100) != 0.3 {
		t.Fatal("Every=0 should be constant")
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	d := NewDropout(8, 0.5, rng.New(12))
	d.SetTraining(false)
	in := tensor.Vector{1, 2, 3, 4, 5, 6, 7, 8}
	out := d.Forward(in)
	for i := range in {
		if out[i] != in[i] {
			t.Fatal("eval-mode dropout must be identity")
		}
	}
	dIn := d.Backward(in)
	for i := range in {
		if dIn[i] != in[i] {
			t.Fatal("eval-mode dropout backward must be identity")
		}
	}
}

func TestDropoutTrainingStatistics(t *testing.T) {
	const n = 10000
	d := NewDropout(n, 0.3, rng.New(13))
	in := tensor.NewVector(n)
	in.Fill(1)
	out := d.Forward(in)
	zeros, sum := 0, 0.0
	for _, v := range out {
		if v == 0 {
			zeros++
		}
		sum += v
	}
	if rate := float64(zeros) / n; math.Abs(rate-0.3) > 0.03 {
		t.Fatalf("drop rate %v, want ~0.3", rate)
	}
	// Inverted dropout preserves the expectation.
	if mean := sum / n; math.Abs(mean-1) > 0.05 {
		t.Fatalf("mean %v, want ~1", mean)
	}
}

func TestDropoutBackwardMasksGradient(t *testing.T) {
	d := NewDropout(4, 0.5, rng.New(14))
	in := tensor.Vector{1, 1, 1, 1}
	out := d.Forward(in)
	g := d.Backward(tensor.Vector{1, 1, 1, 1})
	for i := range out {
		if (out[i] == 0) != (g[i] == 0) {
			t.Fatal("gradient mask does not match forward mask")
		}
	}
}

func TestDropoutInNetworkModes(t *testing.T) {
	r := rng.New(15)
	net := New(
		NewDense(4, 8, true, r),
		NewDropout(8, 0.5, rng.New(16)),
		NewDense(8, 2, true, r),
	)
	x := tensor.Vector{1, 2, 3, 4}
	net.SetTraining(false)
	a := net.Forward(x).Clone()
	b := net.Forward(x).Clone()
	if a[0] != b[0] || a[1] != b[1] {
		t.Fatal("inference must be deterministic with dropout disabled")
	}
	net.SetTraining(true)
	seen := false
	for i := 0; i < 10 && !seen; i++ {
		c := net.Forward(x)
		if c[0] != a[0] {
			seen = true
		}
	}
	if !seen {
		t.Fatal("training-mode dropout never changed the output")
	}
}

func TestDropoutValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rate 1 should panic")
		}
	}()
	NewDropout(4, 1.0, rng.New(17))
}

func TestGradCheckAvgPool(t *testing.T) {
	r := rng.New(18)
	conv := NewConv2D(1, 6, 6, 2, 3, 3, 1, r)
	pool := NewAvgPool2D(2, 6, 6, 2)
	pc, ph, pw := pool.OutShape()
	net := New(conv, pool, NewDense(pc*ph*pw, 3, true, r))
	checkGradients(t, "avgpool", net, 3, 22)
}

func TestAvgPoolForward(t *testing.T) {
	pool := NewAvgPool2D(1, 2, 2, 2)
	out := pool.Forward(tensor.Vector{1, 2, 3, 4})
	if len(out) != 1 || out[0] != 2.5 {
		t.Fatalf("avg pool = %v", out)
	}
}

func TestAvgPoolValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized window should panic")
		}
	}()
	NewAvgPool2D(1, 2, 2, 3)
}
