package nn

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// TrainModeSetter is implemented by layers that behave differently during
// training and inference (Dropout). Network.SetTraining fans out to them.
type TrainModeSetter interface {
	SetTraining(training bool)
}

// SetTraining switches every mode-aware layer between training and
// inference behavior. Networks start in training mode.
func (n *Network) SetTraining(training bool) {
	for _, l := range n.layers {
		if m, ok := l.(TrainModeSetter); ok {
			m.SetTraining(training)
		}
	}
}

// Dropout zeroes activations with probability Rate during training and
// scales survivors by 1/(1-Rate) (inverted dropout), acting as identity at
// inference time.
type Dropout struct {
	n        int
	rate     float64
	r        *rng.RNG
	training bool
	mask     []bool
	out      tensor.Vector
	dIn      tensor.Vector
}

// NewDropout builds a dropout layer over vectors of length n. rate must be
// in [0, 1).
func NewDropout(n int, rate float64, r *rng.RNG) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %v outside [0,1)", rate))
	}
	return &Dropout{
		n: n, rate: rate, r: r, training: true,
		mask: make([]bool, n),
		out:  tensor.NewVector(n),
		dIn:  tensor.NewVector(n),
	}
}

func (l *Dropout) InSize() int  { return l.n }
func (l *Dropout) OutSize() int { return l.n }

// SetTraining implements TrainModeSetter.
func (l *Dropout) SetTraining(training bool) { l.training = training }

func (l *Dropout) Forward(in tensor.Vector) tensor.Vector {
	checkSize("Dropout", len(in), l.n)
	if !l.training || l.rate == 0 {
		copy(l.out, in)
		return l.out
	}
	keep := 1 - l.rate
	inv := 1 / keep
	for i, x := range in {
		if l.r.Float64() < keep {
			l.mask[i] = true
			l.out[i] = x * inv
		} else {
			l.mask[i] = false
			l.out[i] = 0
		}
	}
	return l.out
}

func (l *Dropout) Backward(dOut tensor.Vector) tensor.Vector {
	checkSize("Dropout", len(dOut), l.n)
	if !l.training || l.rate == 0 {
		copy(l.dIn, dOut)
		return l.dIn
	}
	inv := 1 / (1 - l.rate)
	for i, d := range dOut {
		if l.mask[i] {
			l.dIn[i] = d * inv
		} else {
			l.dIn[i] = 0
		}
	}
	return l.dIn
}

func (l *Dropout) Params() []tensor.Vector { return nil }
func (l *Dropout) Grads() []tensor.Vector  { return nil }

// AvgPool2D averages each win x win block (window == stride).
type AvgPool2D struct {
	c, inH, inW int
	win         int
	outH, outW  int
	outBuf      tensor.Vector
	dIn         tensor.Vector
}

// NewAvgPool2D pools each win x win block to its mean.
func NewAvgPool2D(c, inH, inW, win int) *AvgPool2D {
	outH := inH / win
	outW := inW / win
	if outH == 0 || outW == 0 {
		panic("nn: AvgPool2D window larger than input")
	}
	return &AvgPool2D{
		c: c, inH: inH, inW: inW, win: win,
		outH: outH, outW: outW,
		outBuf: tensor.NewVector(c * outH * outW),
		dIn:    tensor.NewVector(c * inH * inW),
	}
}

func (l *AvgPool2D) InSize() int  { return l.c * l.inH * l.inW }
func (l *AvgPool2D) OutSize() int { return l.c * l.outH * l.outW }

// OutShape returns the output (channels, height, width).
func (l *AvgPool2D) OutShape() (c, h, w int) { return l.c, l.outH, l.outW }

func (l *AvgPool2D) Forward(in tensor.Vector) tensor.Vector {
	checkSize("AvgPool2D", len(in), l.InSize())
	inv := 1.0 / float64(l.win*l.win)
	for c := 0; c < l.c; c++ {
		inPlane := in[c*l.inH*l.inW : (c+1)*l.inH*l.inW]
		for oy := 0; oy < l.outH; oy++ {
			for ox := 0; ox < l.outW; ox++ {
				s := 0.0
				for wy := 0; wy < l.win; wy++ {
					row := (oy*l.win + wy) * l.inW
					for wx := 0; wx < l.win; wx++ {
						s += inPlane[row+ox*l.win+wx]
					}
				}
				l.outBuf[(c*l.outH+oy)*l.outW+ox] = s * inv
			}
		}
	}
	return l.outBuf
}

func (l *AvgPool2D) Backward(dOut tensor.Vector) tensor.Vector {
	checkSize("AvgPool2D", len(dOut), l.OutSize())
	l.dIn.Zero()
	inv := 1.0 / float64(l.win*l.win)
	for c := 0; c < l.c; c++ {
		dPlane := l.dIn[c*l.inH*l.inW : (c+1)*l.inH*l.inW]
		for oy := 0; oy < l.outH; oy++ {
			for ox := 0; ox < l.outW; ox++ {
				g := dOut[(c*l.outH+oy)*l.outW+ox] * inv
				for wy := 0; wy < l.win; wy++ {
					row := (oy*l.win + wy) * l.inW
					for wx := 0; wx < l.win; wx++ {
						dPlane[row+ox*l.win+wx] += g
					}
				}
			}
		}
	}
	return l.dIn
}

func (l *AvgPool2D) Params() []tensor.Vector { return nil }
func (l *AvgPool2D) Grads() []tensor.Vector  { return nil }
