package nn

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/tensor"
)

// Checkpoint format (little-endian):
//
//	magic    uint32  0x534b5054 "SKPT"
//	version  uint32  1
//	count    uint64  number of float64 parameters
//	params   count * 8 bytes
//	crc32    uint32  IEEE checksum of the params bytes
//
// Only parameters are stored — architecture is code, so loading validates
// the parameter count against the receiving network. The vector-level codec
// (WriteVector/ReadVector) is shared with internal/checkpoint, whose stores
// persist brown-out snapshots in the same format.

const (
	checkpointMagic   = 0x534b5054
	checkpointVersion = 1

	// maxCheckpointParams bounds the header's count field before any
	// allocation: the count is outside the CRC, so a corrupted file must
	// surface as an error, not a huge make() panic. 2^27 float64s (1 GiB)
	// is orders of magnitude above any model this engine trains.
	maxCheckpointParams = 1 << 27
)

// WriteVector writes a parameter vector as a checkpoint to w. Encoding is
// bit-exact: every float64 round-trips through ReadVector unchanged.
func WriteVector(w io.Writer, params tensor.Vector) error {
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], checkpointMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], checkpointVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(params)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("nn: write checkpoint header: %w", err)
	}
	buf := make([]byte, 8*len(params))
	for i, v := range params {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("nn: write checkpoint params: %w", err)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf))
	if _, err := w.Write(crc[:]); err != nil {
		return fmt.Errorf("nn: write checkpoint crc: %w", err)
	}
	return nil
}

// ReadVector reads a checkpoint from r and returns the parameter vector.
// The checksum must verify; the caller validates the length against its
// receiving model.
func ReadVector(r io.Reader) (tensor.Vector, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("nn: read checkpoint header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != checkpointMagic {
		return nil, fmt.Errorf("nn: not a checkpoint (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != checkpointVersion {
		return nil, fmt.Errorf("nn: unsupported checkpoint version %d", v)
	}
	count := binary.LittleEndian.Uint64(hdr[8:16])
	if count > maxCheckpointParams {
		return nil, fmt.Errorf("nn: checkpoint corrupted (implausible parameter count %d)", count)
	}
	buf := make([]byte, 8*count)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("nn: read checkpoint params: %w", err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("nn: read checkpoint crc: %w", err)
	}
	if crc32.ChecksumIEEE(buf) != binary.LittleEndian.Uint32(crcBuf[:]) {
		return nil, fmt.Errorf("nn: checkpoint corrupted (crc mismatch)")
	}
	params := tensor.NewVector(int(count))
	for i := range params {
		params[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return params, nil
}

// SaveParams writes the network's parameters as a checkpoint to w.
func (n *Network) SaveParams(w io.Writer) error {
	params := tensor.NewVector(n.ParamCount())
	n.CopyParamsTo(params)
	return WriteVector(w, params)
}

// LoadParams reads a checkpoint from r into the network. The parameter
// count must match the network exactly and the checksum must verify.
func (n *Network) LoadParams(r io.Reader) error {
	params, err := ReadVector(r)
	if err != nil {
		return err
	}
	if len(params) != n.ParamCount() {
		return fmt.Errorf("nn: checkpoint has %d params, network has %d", len(params), n.ParamCount())
	}
	n.SetParams(params)
	return nil
}
