package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// numericalGrad estimates dLoss/dTheta for every parameter of net by central
// differences, where loss is mean softmax-CE over the batch.
func numericalGrad(net *Network, xs []tensor.Vector, ys []int) tensor.Vector {
	const h = 1e-5
	n := net.ParamCount()
	params := tensor.NewVector(n)
	net.CopyParamsTo(params)
	grad := tensor.NewVector(n)
	for i := 0; i < n; i++ {
		orig := params[i]
		params[i] = orig + h
		net.SetParams(params)
		lossPlus := net.Loss(xs, ys)
		params[i] = orig - h
		net.SetParams(params)
		lossMinus := net.Loss(xs, ys)
		params[i] = orig
		grad[i] = (lossPlus - lossMinus) / (2 * h)
	}
	net.SetParams(params)
	return grad
}

// analyticGrad runs forward+backward over the batch and extracts the
// accumulated mean gradient (without applying an update).
func analyticGrad(net *Network, xs []tensor.Vector, ys []int) tensor.Vector {
	net.ZeroGrads()
	probs := tensor.NewVector(net.OutSize())
	for i, x := range xs {
		logits := net.Forward(x)
		copy(probs, logits)
		SoftmaxCrossEntropy(probs, ys[i], probs)
		d := tensor.Vector(probs)
		for j := len(net.layers) - 1; j >= 0; j-- {
			d = net.layers[j].Backward(d)
		}
	}
	grad := tensor.NewVector(net.ParamCount())
	off := 0
	for _, l := range net.layers {
		for _, g := range l.Grads() {
			copy(grad[off:off+len(g)], g)
			off += len(g)
		}
	}
	tensor.ScaleTo(grad, 1/float64(len(xs)), grad)
	return grad
}

func checkGradients(t *testing.T, name string, net *Network, batch int, seed uint64) {
	t.Helper()
	r := rng.New(seed)
	xs := make([]tensor.Vector, batch)
	ys := make([]int, batch)
	for i := range xs {
		xs[i] = tensor.NewVector(net.InSize())
		for j := range xs[i] {
			xs[i][j] = r.NormFloat64()
		}
		ys[i] = r.Intn(net.OutSize())
	}
	num := numericalGrad(net, xs, ys)
	ana := analyticGrad(net, xs, ys)
	worst := 0.0
	worstIdx := -1
	for i := range num {
		denom := math.Abs(num[i]) + math.Abs(ana[i]) + 1e-8
		rel := math.Abs(num[i]-ana[i]) / denom
		if rel > worst {
			worst, worstIdx = rel, i
		}
	}
	if worst > 2e-4 {
		t.Fatalf("%s: gradient mismatch at param %d: numerical=%v analytic=%v (rel %v)",
			name, worstIdx, num[worstIdx], ana[worstIdx], worst)
	}
}

func TestGradCheckLogisticRegression(t *testing.T) {
	checkGradients(t, "logreg", LogisticRegression(7, 4, rng.New(1)), 5, 11)
}

func TestGradCheckDenseNoBias(t *testing.T) {
	net := New(NewDense(6, 5, false, rng.New(2)), NewReLU(5), NewDense(5, 3, true, rng.New(3)))
	checkGradients(t, "dense-nobias", net, 4, 12)
}

func TestGradCheckMLP(t *testing.T) {
	checkGradients(t, "mlp", MLP(6, []int{9, 7}, 3, rng.New(4)), 4, 13)
}

func TestGradCheckTanh(t *testing.T) {
	net := New(NewDense(5, 6, true, rng.New(5)), NewTanh(6), NewDense(6, 3, true, rng.New(6)))
	checkGradients(t, "tanh", net, 4, 14)
}

func TestGradCheckConv(t *testing.T) {
	r := rng.New(7)
	conv := NewConv2D(2, 6, 6, 3, 3, 3, 1, r)
	c, h, w := conv.OutShape()
	net := New(conv, NewReLU(c*h*w), NewDense(c*h*w, 4, true, r))
	checkGradients(t, "conv", net, 3, 15)
}

func TestGradCheckConvNoPad(t *testing.T) {
	r := rng.New(8)
	conv := NewConv2D(1, 5, 5, 2, 3, 3, 0, r)
	c, h, w := conv.OutShape()
	net := New(conv, NewDense(c*h*w, 3, true, r))
	checkGradients(t, "conv-nopad", net, 3, 16)
}

func TestGradCheckMaxPool(t *testing.T) {
	r := rng.New(9)
	conv := NewConv2D(1, 6, 6, 2, 3, 3, 1, r)
	pool := NewMaxPool2D(2, 6, 6, 2)
	pc, ph, pw := pool.OutShape()
	net := New(conv, pool, NewDense(pc*ph*pw, 3, true, r))
	checkGradients(t, "maxpool", net, 3, 17)
}

func TestGradCheckGroupNorm(t *testing.T) {
	r := rng.New(10)
	conv := NewConv2D(1, 4, 4, 4, 3, 3, 1, r)
	gn := NewGroupNorm(4, 4, 4, 2)
	net := New(conv, gn, NewReLU(4*4*4), NewDense(4*4*4, 3, true, r))
	checkGradients(t, "groupnorm", net, 3, 18)
}

func TestGradCheckGroupNormSingleGroup(t *testing.T) {
	r := rng.New(11)
	gn := NewGroupNorm(2, 3, 3, 1)
	net := New(NewDense(4, 2*3*3, true, r), gn, NewDense(2*3*3, 3, true, r))
	checkGradients(t, "groupnorm-1g", net, 3, 19)
}

func TestGradCheckSmallCNN(t *testing.T) {
	checkGradients(t, "smallcnn", SmallCNN(1, 6, 6, 3, rng.New(12)), 2, 20)
}

func TestGradCheckMiniGNLeNet(t *testing.T) {
	// A shrunken version of the CIFAR GN-LeNet exercising the exact layer
	// sequence (conv -> GN -> ReLU -> pool, x2, then FC) at checkable cost.
	r := rng.New(13)
	conv1 := NewConv2D(2, 8, 8, 4, 5, 5, 2, r)
	gn1 := NewGroupNorm(4, 8, 8, 2)
	relu1 := NewReLU(4 * 8 * 8)
	pool1 := NewMaxPool2D(4, 8, 8, 2)
	conv2 := NewConv2D(4, 4, 4, 4, 3, 3, 1, r)
	gn2 := NewGroupNorm(4, 4, 4, 2)
	relu2 := NewReLU(4 * 4 * 4)
	pool2 := NewMaxPool2D(4, 4, 4, 2)
	fc := NewDense(4*2*2, 4, true, r)
	net := New(conv1, gn1, relu1, pool1, conv2, gn2, relu2, pool2, fc)
	checkGradients(t, "mini-gnlenet", net, 2, 21)
}
