package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Results", "Algo", "Acc")
	tb.AddRow("D-PSGD", "57.55")
	tb.AddRow("SkipTrain", "65.09")
	out := tb.String()
	if !strings.Contains(out, "Results") || !strings.Contains(out, "SkipTrain") {
		t.Fatalf("table output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRowf("%.2f|%d", 1.234, 7)
	out := tb.String()
	if !strings.Contains(out, "1.23") || !strings.Contains(out, "7") {
		t.Fatalf("AddRowf output:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "excess-dropped")
	out := tb.String()
	if strings.Contains(out, "excess") {
		t.Fatal("excess cell should be dropped")
	}
}

func TestHeatmapRender(t *testing.T) {
	h := &Heatmap{
		Title:    "Validation accuracy [%]",
		RowLabel: "Γs", ColLabel: "Γt",
		RowNames:       []string{"1", "2"},
		ColNames:       []string{"1", "2"},
		Cells:          [][]float64{{59.7, 61.4}, {60.6, 64.1}},
		HigherIsBetter: true,
	}
	out := h.String()
	if !strings.Contains(out, "59.7") || !strings.Contains(out, "64.1") {
		t.Fatalf("heatmap missing cells:\n%s", out)
	}
	// Best cell gets the darkest shade.
	if !strings.Contains(out, "64.1█") {
		t.Fatalf("best cell not darkest:\n%s", out)
	}
}

func TestHeatmapLowerIsBetter(t *testing.T) {
	h := &Heatmap{
		RowNames: []string{"1"}, ColNames: []string{"1", "2"},
		Cells:  [][]float64{{100, 900}},
		Format: "%.0f",
	}
	out := h.String()
	if !strings.Contains(out, "100█") {
		t.Fatalf("lowest energy should be darkest:\n%s", out)
	}
}

func TestHeatmapMarksSelectedCell(t *testing.T) {
	h := &Heatmap{
		RowNames: []string{"1", "2"}, ColNames: []string{"1", "2"},
		Cells:          [][]float64{{59.7, 61.4}, {60.6, 64.1}},
		HigherIsBetter: true,
	}
	h.SetMark(1, 0)
	out := h.String()
	if !strings.Contains(out, "60.6*") {
		t.Fatalf("marked cell not starred:\n%s", out)
	}
	if !strings.Contains(out, "selected cell") {
		t.Fatalf("mark legend missing:\n%s", out)
	}
	// The other cells keep their shades.
	if !strings.Contains(out, "64.1█") {
		t.Fatalf("unmarked best cell lost its shade:\n%s", out)
	}
	// No mark, no legend.
	h.Mark = nil
	if strings.Contains(h.String(), "selected cell") {
		t.Fatal("legend rendered without a mark")
	}
}

func TestHeatmapUniform(t *testing.T) {
	h := &Heatmap{RowNames: []string{"1"}, ColNames: []string{"1"}, Cells: [][]float64{{5}}}
	if out := h.String(); !strings.Contains(out, "5.0") {
		t.Fatalf("uniform heatmap:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	var sb strings.Builder
	err := CSV(&sb, []string{"round", "acc"}, []float64{1, 2}, []float64{0.5, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	want := "round,acc\n1,0.5\n2,0.6\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestCSVValidation(t *testing.T) {
	var sb strings.Builder
	if err := CSV(&sb, []string{"a"}, []float64{1}, []float64{2}); err == nil {
		t.Fatal("mismatched header count should error")
	}
	if err := CSV(&sb, []string{"a", "b"}, []float64{1}, []float64{2, 3}); err == nil {
		t.Fatal("ragged columns should error")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline length %d", len([]rune(s)))
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline should be empty")
	}
	flat := Sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Fatal("flat sparkline wrong length")
	}
}

func TestDotPlot(t *testing.T) {
	var sb strings.Builder
	DotPlot(&sb, "CIFAR-10", [][]int{{10, 0}, {0, 10}, {5, 5}})
	out := sb.String()
	if !strings.Contains(out, "CIFAR-10") || !strings.Contains(out, "⬤") {
		t.Fatalf("dot plot:\n%s", out)
	}
	// Zero counts must render blank, not a dot.
	lines := strings.Split(out, "\n")
	if len(lines) < 3 {
		t.Fatal("dot plot too short")
	}
	var empty strings.Builder
	DotPlot(&empty, "x", nil)
	if empty.String() != "" {
		t.Fatal("empty dot plot should render nothing")
	}
}
