// Package report renders experiment results as aligned text tables, ASCII
// heatmaps and CSV series — the counterpart of the paper's tables and
// figures for a terminal.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, cells ...interface{}) {
	parts := strings.Split(fmt.Sprintf(format, cells...), "|")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	t.AddRow(parts...)
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s", widths[i]+2, c)
		}
		fmt.Fprintln(w)
	}
	line(t.Headers)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// Heatmap renders a small numeric grid the way Figure 3 presents the
// Γtrain x Γsync search: row/column labels plus shading by value.
type Heatmap struct {
	Title          string
	RowLabel       string
	ColLabel       string
	RowNames       []string
	ColNames       []string
	Cells          [][]float64 // [row][col]
	Format         string      // cell format, default "%.1f"
	HigherIsBetter bool
	// Mark optionally stars one cell — the selected optimum of a grid
	// search. nil means no mark; otherwise Mark is {row, col} into Cells
	// and the starred cell shows "*" in place of its shade glyph.
	Mark *[2]int
}

// SetMark stars the given cell (chainable-free convenience over Mark).
func (h *Heatmap) SetMark(row, col int) { h.Mark = &[2]int{row, col} }

// shades from lightest to darkest.
var shades = []string{" ", "░", "▒", "▓", "█"}

// Render writes the heatmap to w.
func (h *Heatmap) Render(w io.Writer) {
	format := h.Format
	if format == "" {
		format = "%.1f"
	}
	if h.Title != "" {
		fmt.Fprintf(w, "%s\n", h.Title)
	}
	lo, hi := h.bounds()
	cellW := len(fmt.Sprintf(format, hi)) + 2
	for _, row := range h.Cells {
		for _, v := range row {
			if n := len(fmt.Sprintf(format, v)); n+2 > cellW {
				cellW = n + 2
			}
		}
	}
	rowW := len(h.RowLabel)
	for _, rn := range h.RowNames {
		if len(rn) > rowW {
			rowW = len(rn)
		}
	}
	fmt.Fprintf(w, "%-*s", rowW+2, h.RowLabel+"\\"+h.ColLabel)
	for _, cn := range h.ColNames {
		fmt.Fprintf(w, "%*s", cellW, cn)
	}
	fmt.Fprintln(w)
	for r, row := range h.Cells {
		name := ""
		if r < len(h.RowNames) {
			name = h.RowNames[r]
		}
		fmt.Fprintf(w, "%-*s", rowW+2, name)
		for c, v := range row {
			suffix := h.shade(v, lo, hi)
			if h.Mark != nil && h.Mark[0] == r && h.Mark[1] == c {
				suffix = "*"
			}
			fmt.Fprintf(w, "%*s", cellW, fmt.Sprintf(format, v)+suffix)
		}
		fmt.Fprintln(w)
	}
	if h.Mark != nil {
		fmt.Fprintln(w, "(* marks the selected cell)")
	}
}

func (h *Heatmap) bounds() (lo, hi float64) {
	first := true
	for _, row := range h.Cells {
		for _, v := range row {
			if first {
				lo, hi = v, v
				first = false
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo, hi
}

func (h *Heatmap) shade(v, lo, hi float64) string {
	if hi == lo {
		return shades[len(shades)-1]
	}
	frac := (v - lo) / (hi - lo)
	if !h.HigherIsBetter {
		frac = 1 - frac
	}
	idx := int(frac * float64(len(shades)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(shades) {
		idx = len(shades) - 1
	}
	return shades[idx]
}

// String renders the heatmap to a string.
func (h *Heatmap) String() string {
	var sb strings.Builder
	h.Render(&sb)
	return sb.String()
}

// CSV writes series as comma-separated columns with a header row. All
// columns must have equal length.
func CSV(w io.Writer, headers []string, cols ...[]float64) error {
	if len(headers) != len(cols) {
		return fmt.Errorf("report: %d headers for %d columns", len(headers), len(cols))
	}
	n := 0
	for i, c := range cols {
		if i == 0 {
			n = len(c)
		} else if len(c) != n {
			return fmt.Errorf("report: column %d has %d rows, want %d", i, len(c), n)
		}
	}
	fmt.Fprintln(w, strings.Join(headers, ","))
	for r := 0; r < n; r++ {
		parts := make([]string, len(cols))
		for i, c := range cols {
			parts[i] = fmt.Sprintf("%g", c[r])
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
	return nil
}

// Sparkline renders a one-line trend for a series, handy for accuracy
// curves in terminal output.
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	var sb strings.Builder
	for _, x := range xs {
		idx := 0
		if hi > lo {
			idx = int((x - lo) / (hi - lo) * float64(len(ticks)-1))
		}
		if idx >= len(ticks) {
			idx = len(ticks) - 1
		}
		sb.WriteRune(ticks[idx])
	}
	return sb.String()
}

// DotPlot renders the Figure 7 class-distribution plot: one row per class,
// one column per node, dot size by sample count.
func DotPlot(w io.Writer, title string, counts [][]int) {
	// counts[node][class]
	if len(counts) == 0 {
		return
	}
	fmt.Fprintln(w, title)
	classes := len(counts[0])
	maxC := 1
	for _, row := range counts {
		for _, c := range row {
			if c > maxC {
				maxC = c
			}
		}
	}
	glyphs := []string{" ", "·", "•", "⬤"}
	fmt.Fprint(w, "class\\node ")
	for n := range counts {
		fmt.Fprintf(w, "%2d ", n)
	}
	fmt.Fprintln(w)
	for c := 0; c < classes; c++ {
		fmt.Fprintf(w, "%10d ", c)
		for n := range counts {
			v := counts[n][c]
			idx := 0
			if v > 0 {
				idx = 1 + int(float64(v)/float64(maxC)*2.99)
				if idx > 3 {
					idx = 3
				}
			}
			fmt.Fprintf(w, "%2s ", glyphs[idx])
		}
		fmt.Fprintln(w)
	}
}
