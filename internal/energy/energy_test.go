package energy

import (
	"math"
	"sync"
	"testing"
)

func TestTable2CIFAREnergies(t *testing.T) {
	// Per-round CIFAR-10 training energies must reproduce Table 2.
	want := []float64{6.5, 6.0, 2.6, 8.5} // mWh, as displayed in the paper
	w := CIFAR10Workload()
	for i, d := range Devices() {
		got := d.TrainRoundWh(w) * 1000
		if math.Abs(got-want[i]) > 0.05 {
			t.Fatalf("%s: CIFAR round = %.4f mWh, want ~%.1f", d.Name, got, want[i])
		}
	}
}

func TestTable2FEMNISTEnergiesShape(t *testing.T) {
	// FEMNIST per-round energy is the CIFAR energy scaled by the workload
	// ratio (params * batch * steps): (1690046*16*7)/(89834*32*20) ≈ 3.29.
	// The paper's displayed FEMNIST column {22, 20, 8.4, 28} is this value
	// rounded; we assert the ratio, which is the methodology.
	wc, wf := CIFAR10Workload(), FEMNISTWorkload()
	wantRatio := float64(wf.Params*wf.BatchSize*wf.LocalSteps) /
		float64(wc.Params*wc.BatchSize*wc.LocalSteps)
	for _, d := range Devices() {
		ratio := d.TrainRoundWh(wf) / d.TrainRoundWh(wc)
		if math.Abs(ratio-wantRatio) > 1e-9 {
			t.Fatalf("%s: FEMNIST/CIFAR ratio = %v, want %v", d.Name, ratio, wantRatio)
		}
	}
	// And the displayed values are within the paper's rounding of ours.
	wantDisplay := []float64{22, 20, 8.4, 28}
	for i, d := range Devices() {
		got := d.TrainRoundWh(wf) * 1000
		if math.Abs(got-wantDisplay[i]) > 0.7 {
			t.Fatalf("%s: FEMNIST round = %.3f mWh, paper shows %.1f", d.Name, got, wantDisplay[i])
		}
	}
}

func TestTable2RoundBudgets(t *testing.T) {
	// Table 2 "Training rounds" columns: CIFAR-10 at 10% battery,
	// FEMNIST at 50% battery.
	wantCIFAR := []int{272, 324, 681, 272}
	wantFEMNIST := []int{413, 492, 1034, 413}
	for i, d := range Devices() {
		if got := d.RoundBudget(CIFAR10Workload(), 0.10); got != wantCIFAR[i] {
			t.Fatalf("%s: CIFAR budget = %d, want %d", d.Name, got, wantCIFAR[i])
		}
		if got := d.RoundBudget(FEMNISTWorkload(), 0.50); got != wantFEMNIST[i] {
			t.Fatalf("%s: FEMNIST budget = %d, want %d", d.Name, got, wantFEMNIST[i])
		}
	}
}

func TestDPSGDNetworkEnergyMatchesTable3(t *testing.T) {
	// Table 3: D-PSGD on CIFAR-10 trains every one of 1000 rounds on all
	// 256 nodes for a total of 1510.04 Wh.
	devices := Devices()
	perRound := NetworkRoundWh(256, devices, CIFAR10Workload())
	total := perRound * 1000
	if math.Abs(total-1510.04) > 0.05 {
		t.Fatalf("D-PSGD CIFAR total = %.3f Wh, paper reports 1510.04", total)
	}
	// FEMNIST: 3000 rounds -> 14914.38 Wh (paper). Methodology ratio gives
	// the same value within 0.05%.
	totalF := NetworkRoundWh(256, devices, FEMNISTWorkload()) * 3000
	if math.Abs(totalF-14914.38)/14914.38 > 5e-4 {
		t.Fatalf("D-PSGD FEMNIST total = %.2f Wh, paper reports 14914.38", totalF)
	}
}

func TestTrainRoundSecondsScaling(t *testing.T) {
	d := Devices()[0]
	w := CIFAR10Workload()
	base := d.TrainRoundSeconds(w)
	w2 := w
	w2.BatchSize *= 2
	if math.Abs(d.TrainRoundSeconds(w2)-2*base) > 1e-9 {
		t.Fatal("duration must scale linearly with batch size")
	}
	w3 := w
	w3.Params *= 3
	if math.Abs(d.TrainRoundSeconds(w3)-3*base) > 1e-9 {
		t.Fatal("duration must scale linearly with parameter count")
	}
	w4 := w
	w4.LocalSteps *= 5
	if math.Abs(d.TrainRoundSeconds(w4)-5*base) > 1e-9 {
		t.Fatal("duration must scale linearly with local steps")
	}
}

func TestInferenceTimesPlausible(t *testing.T) {
	// Calibrated MobileNet-v2 inference times should be tens of ms, the
	// range the AI Benchmark reports for these SoCs.
	for _, d := range Devices() {
		ms := d.InferenceSeconds * 1000
		if ms < 5 || ms > 500 {
			t.Fatalf("%s: implausible inference time %.1f ms", d.Name, ms)
		}
	}
}

func TestWorkloadValidate(t *testing.T) {
	if err := CIFAR10Workload().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Workload{Params: 0, BatchSize: 1, LocalSteps: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("want error for zero params")
	}
}

func TestAssignDevicesRoundRobin(t *testing.T) {
	devices := Devices()
	assigned := AssignDevices(10, devices)
	for i, d := range assigned {
		if d.Name != devices[i%4].Name {
			t.Fatalf("node %d assigned %s", i, d.Name)
		}
	}
	// The paper's even split: 256 nodes -> 64 of each device.
	counts := map[string]int{}
	for _, d := range AssignDevices(256, devices) {
		counts[d.Name]++
	}
	for name, c := range counts {
		if c != 64 {
			t.Fatalf("%s assigned %d nodes, want 64", name, c)
		}
	}
}

func TestAccountantTotals(t *testing.T) {
	a := NewAccountant(3)
	a.AddTraining(0, 0, 1.5)
	a.AddTraining(1, 0, 2.5)
	a.AddTraining(0, 1, 1.0)
	if got := a.TotalTrainingWh(); math.Abs(got-5.0) > 1e-12 {
		t.Fatalf("total = %v", got)
	}
	if got := a.NodeTrainingWh(0); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("node 0 = %v", got)
	}
	cum := a.CumulativeByRound()
	if len(cum) != 2 || math.Abs(cum[0]-4.0) > 1e-12 || math.Abs(cum[1]-5.0) > 1e-12 {
		t.Fatalf("cumulative = %v", cum)
	}
}

func TestAccountantCommunication(t *testing.T) {
	a := NewAccountant(2)
	a.AddCommunication(0, 0.1)
	a.AddCommunication(1, 0.2)
	if got := a.TotalCommunicationWh(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("comm total = %v", got)
	}
}

func TestAccountantConcurrent(t *testing.T) {
	a := NewAccountant(8)
	var wg sync.WaitGroup
	for n := 0; n < 8; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for r := 0; r < 100; r++ {
				a.AddTraining(n, r, 0.01)
				a.AddCommunication(n, 0.001)
			}
		}(n)
	}
	wg.Wait()
	if got := a.TotalTrainingWh(); math.Abs(got-8.0) > 1e-9 {
		t.Fatalf("concurrent total = %v, want 8.0", got)
	}
}

func TestCommEnergyRatioMatchesPaper(t *testing.T) {
	// The paper: training 1.51 kWh vs communication 7 Wh, "more than 200x".
	ratio := 1 / CommShareOfTraining
	if ratio < 200 || ratio > 230 {
		t.Fatalf("comm ratio = %v, want ~216", ratio)
	}
}

func TestBudgetConsume(t *testing.T) {
	b := NewBudget([]int{2, 0})
	if !b.Consume(0) || !b.Consume(0) {
		t.Fatal("should consume 2 rounds")
	}
	if b.Consume(0) {
		t.Fatal("budget overdrawn")
	}
	if b.Consume(1) {
		t.Fatal("zero budget consumed")
	}
	if b.Remaining(0) != 0 || b.Initial(0) != 2 {
		t.Fatal("remaining/initial wrong")
	}
}

func TestBudgetFromDevices(t *testing.T) {
	assigned := AssignDevices(8, Devices())
	b := BudgetFromDevices(assigned, CIFAR10Workload(), 0.10)
	want := []int{272, 324, 681, 272, 272, 324, 681, 272}
	for i, w := range want {
		if b.Initial(i) != w {
			t.Fatalf("node %d budget = %d, want %d", i, b.Initial(i), w)
		}
	}
	if b.TotalInitial() != 2*(272+324+681+272) {
		t.Fatalf("total = %d", b.TotalInitial())
	}
}

func TestBudgetConcurrentConsume(t *testing.T) {
	b := NewBudget([]int{1000})
	var wg sync.WaitGroup
	consumed := make(chan bool, 2000)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				consumed <- b.Consume(0)
			}
		}()
	}
	wg.Wait()
	close(consumed)
	ok := 0
	for c := range consumed {
		if c {
			ok++
		}
	}
	if ok != 1000 {
		t.Fatalf("consumed %d, want exactly 1000", ok)
	}
}

func TestBudgetString(t *testing.T) {
	b := NewBudget([]int{3})
	b.Consume(0)
	if got := b.String(); got != "budget{used 1/3 rounds}" {
		t.Fatalf("String = %q", got)
	}
}

func TestAssignDevicesPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for empty device list")
		}
	}()
	AssignDevices(4, nil)
}

func TestWorkloadFor(t *testing.T) {
	w := WorkloadFor(89834, 32, 20)
	if w != CIFAR10Workload() {
		t.Fatalf("WorkloadFor mismatch: %+v", w)
	}
	if err := WorkloadFor(0, 1, 1).Validate(); err == nil {
		t.Fatal("invalid workload should fail validation")
	}
}

func TestAccountantHarvestLedger(t *testing.T) {
	a := NewAccountant(3)
	a.AddTraining(0, 0, 10)
	a.AddCommunication(1, 2)
	a.AddHarvest(0, 4)
	a.AddHarvest(2, 2)
	if got := a.TotalHarvestedWh(); got != 6 {
		t.Fatalf("total harvested %v, want 6", got)
	}
	if got := a.NodeHarvestedWh(2); got != 2 {
		t.Fatalf("node 2 harvested %v, want 2", got)
	}
	if got := a.TotalConsumedWh(); got != 12 {
		t.Fatalf("total consumed %v, want 12", got)
	}
}
