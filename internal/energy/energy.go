// Package energy implements the paper's energy model (Section 2.3) and the
// smartphone energy traces of Section 4.2 / Table 2.
//
// The model is Eq. (2): the energy of one training round on node i is the
// hardware power draw times the task duration, E_i^t = P_hw,i * Δ_i^t, and
// the total is Eq. (3): the sum over rounds and nodes. Communication and
// aggregation energy is negligible by the paper's measurement (7 Wh vs
// 1.51 kWh for training on CIFAR-10) and is tracked separately so the ratio
// can be reported.
//
// Traces are built with the paper's methodology: per-device power from the
// Burnout benchmark, MobileNet-v2 single-sample inference time from the AI
// Benchmark, inference time scaled linearly by parameter count, batch size
// and local steps, and training time taken as 3x inference time following
// FedScale.
package energy

import (
	"fmt"
	"math"
)

// mobileNetV2Params is the parameter count of MobileNet-v2, the reference
// model whose measured inference time anchors the linear scaling.
const mobileNetV2Params = 3_400_000

// trainToInferRatio is FedScale's training-time multiplier: training one
// sample costs about 3x a forward pass (forward + backward + update).
const trainToInferRatio = 3.0

// Device describes one smartphone hardware profile.
type Device struct {
	Name string
	// PowerWatts is the sustained power draw under full ML load, from the
	// Burnout benchmark.
	PowerWatts float64
	// InferenceSeconds is the single-sample MobileNet-v2 inference time
	// from the AI Benchmark.
	InferenceSeconds float64
	// BatteryWh is the battery capacity in watt-hours.
	BatteryWh float64
}

// Workload describes the per-round training task whose duration the trace
// builder scales from the reference inference time: E local steps over
// mini-batches of size B with a model of P parameters (Table 1).
type Workload struct {
	Params     int // model size |x|
	BatchSize  int // |ξ|
	LocalSteps int // E
}

// Validate reports whether the workload is usable.
func (w Workload) Validate() error {
	if w.Params < 1 || w.BatchSize < 1 || w.LocalSteps < 1 {
		return fmt.Errorf("energy: invalid workload %+v", w)
	}
	return nil
}

// CIFAR10Workload is the paper's CIFAR-10 configuration (Table 1):
// the 89,834-parameter GN-LeNet, batch 32, 20 local steps.
func CIFAR10Workload() Workload { return Workload{Params: 89834, BatchSize: 32, LocalSteps: 20} }

// FEMNISTWorkload is the paper's FEMNIST configuration (Table 1):
// the 1,690,046-parameter CNN, batch 16, 7 local steps.
func FEMNISTWorkload() Workload { return Workload{Params: 1690046, BatchSize: 16, LocalSteps: 7} }

// TrainRoundSeconds returns the duration Δ of one training round on the
// device: inference time scaled by parameter ratio, number of samples
// (batch * steps), and the FedScale 3x train multiplier.
func (d Device) TrainRoundSeconds(w Workload) float64 {
	paramRatio := float64(w.Params) / mobileNetV2Params
	samples := float64(w.BatchSize * w.LocalSteps)
	return trainToInferRatio * d.InferenceSeconds * paramRatio * samples
}

// TrainRoundWh returns the energy E = P * Δ of one training round in Wh
// (Eq. 2).
func (d Device) TrainRoundWh(w Workload) float64 {
	return d.PowerWatts * d.TrainRoundSeconds(w) / 3600
}

// budgetEps absorbs float rounding when a budget division lands exactly on
// an integer (e.g. 1768 mWh / 6.5 mWh = 272).
const budgetEps = 1e-9

// RoundBudget returns τ_i: the number of training rounds the device can run
// before exhausting the given fraction of its battery (Section 2.3,
// energy-constrained setting).
func (d Device) RoundBudget(w Workload, batteryFraction float64) int {
	e := d.TrainRoundWh(w)
	if e <= 0 {
		return 0
	}
	return int(math.Floor(d.BatteryWh*batteryFraction/e + budgetEps))
}

// Devices returns the four smartphone profiles of Table 2. Power values
// come from the Burnout benchmark tier of each SoC; inference times are
// calibrated so that one CIFAR-10 training round costs the Table 2 energy
// (the paper's own trace data); battery capacities are chosen so the
// 10%-battery CIFAR-10 round budgets reproduce Table 2 exactly.
func Devices() []Device {
	// Per-round CIFAR-10 energies (mWh) from Table 2; the trailing digits on
	// the Poco X3 reconcile the trace with the paper's aggregate 1510.04 Wh
	// for 1000 rounds of D-PSGD on 256 nodes (64 devices of each type):
	// 64 * (6.5 + 6.0 + 2.6 + 8.4944) * 1000 = 1,510,041.6 mWh.
	specs := []struct {
		name      string
		powerW    float64
		cifarMWh  float64
		batteryWh float64
	}{
		{"Xiaomi 12 Pro", 6.5, 6.5, 17.68},
		{"Samsung Galaxy S22 Ultra", 6.0, 6.0, 19.44},
		{"OnePlus Nord 2 5G", 4.0, 2.6, 17.706},
		{"Xiaomi Poco X3", 5.0, 8.4944, 23.13},
	}
	w := CIFAR10Workload()
	paramRatio := float64(w.Params) / mobileNetV2Params
	samples := float64(w.BatchSize * w.LocalSteps)
	devices := make([]Device, len(specs))
	for i, s := range specs {
		// Invert TrainRoundWh to find the inference time that makes one
		// CIFAR-10 round cost exactly s.cifarMWh.
		roundSec := s.cifarMWh / 1000 * 3600 / s.powerW
		inferSec := roundSec / (trainToInferRatio * paramRatio * samples)
		devices[i] = Device{
			Name:             s.name,
			PowerWatts:       s.powerW,
			InferenceSeconds: inferSec,
			BatteryWh:        s.batteryWh,
		}
	}
	return devices
}

// AssignDevices distributes n nodes evenly across the given devices in
// round-robin order, the paper's "distribute the 256 nodes evenly among the
// four types of devices".
func AssignDevices(n int, devices []Device) []Device {
	if len(devices) == 0 {
		panic("energy: no devices to assign")
	}
	out := make([]Device, n)
	for i := 0; i < n; i++ {
		out[i] = devices[i%len(devices)]
	}
	return out
}

// NetworkRoundWh returns the total energy all n nodes spend in one training
// round under workload w with nodes assigned round-robin to devices.
func NetworkRoundWh(n int, devices []Device, w Workload) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		total += devices[i%len(devices)].TrainRoundWh(w)
	}
	return total
}

// WorkloadFor builds a Workload from a model's parameter count and the
// training hyperparameters, the glue between the nn package and the energy
// model: energy.WorkloadFor(net.ParamCount(), batch, localSteps).
func WorkloadFor(params, batchSize, localSteps int) Workload {
	return Workload{Params: params, BatchSize: batchSize, LocalSteps: localSteps}
}
