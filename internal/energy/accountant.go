package energy

import (
	"fmt"
	"sync"
)

// CommShareOfTraining approximates the paper's measured communication and
// aggregation cost: 7 Wh against 1.51 kWh of training over a full CIFAR-10
// run — training is "more than 200x costlier". We charge communication per
// sharing round at trainingRound/216 per node (1510/7 ≈ 216) so the
// reported ratio reproduces the paper's.
const CommShareOfTraining = 1.0 / 216.0

// Accountant accumulates per-node training and communication energy over a
// run (Eq. 3), and — for harvesting scenarios (internal/harvest) — the
// ambient energy each node stored, so runs can report harvested against
// consumed. It is safe for concurrent use by node goroutines.
type Accountant struct {
	mu        sync.Mutex
	trainWh   []float64
	commWh    []float64
	harvestWh []float64
	perRound  []float64 // network-wide training energy indexed by round
}

// NewAccountant creates an accountant for n nodes.
func NewAccountant(n int) *Accountant {
	return &Accountant{trainWh: make([]float64, n), commWh: make([]float64, n),
		harvestWh: make([]float64, n)}
}

// AddTraining charges node i with wh watt-hours of training energy in the
// given round.
func (a *Accountant) AddTraining(node, round int, wh float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.trainWh[node] += wh
	for len(a.perRound) <= round {
		a.perRound = append(a.perRound, 0)
	}
	a.perRound[round] += wh
}

// AddCommunication charges node i with wh watt-hours of sharing/aggregation
// energy.
func (a *Accountant) AddCommunication(node int, wh float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.commWh[node] += wh
}

// TotalTrainingWh returns the network-wide training energy so far.
func (a *Accountant) TotalTrainingWh() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := 0.0
	for _, v := range a.trainWh {
		t += v
	}
	return t
}

// TotalCommunicationWh returns the network-wide sharing/aggregation energy.
func (a *Accountant) TotalCommunicationWh() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := 0.0
	for _, v := range a.commWh {
		t += v
	}
	return t
}

// AddHarvest credits node i with wh watt-hours of stored ambient energy.
func (a *Accountant) AddHarvest(node int, wh float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.harvestWh[node] += wh
}

// TotalHarvestedWh returns the network-wide stored harvest so far.
func (a *Accountant) TotalHarvestedWh() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := 0.0
	for _, v := range a.harvestWh {
		t += v
	}
	return t
}

// NodeHarvestedWh returns node i's stored harvest so far.
func (a *Accountant) NodeHarvestedWh(i int) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.harvestWh[i]
}

// TotalConsumedWh returns training plus communication energy, the quantity
// harvested energy offsets in the net-energy ledger.
func (a *Accountant) TotalConsumedWh() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := 0.0
	for i := range a.trainWh {
		t += a.trainWh[i] + a.commWh[i]
	}
	return t
}

// NodeTrainingWh returns node i's training energy so far.
func (a *Accountant) NodeTrainingWh(i int) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.trainWh[i]
}

// CumulativeByRound returns the cumulative network training energy after
// each round, the x-axis of the paper's accuracy-vs-energy plots (Fig. 5-6).
func (a *Accountant) CumulativeByRound() []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]float64, len(a.perRound))
	acc := 0.0
	for i, v := range a.perRound {
		acc += v
		out[i] = acc
	}
	return out
}

// Budget tracks the remaining training rounds τ_i of every node in the
// energy-constrained setting. It is safe for concurrent use.
type Budget struct {
	mu        sync.Mutex
	remaining []int
	initial   []int
}

// NewBudget creates a tracker with the given per-node round budgets.
func NewBudget(rounds []int) *Budget {
	init := make([]int, len(rounds))
	copy(init, rounds)
	rem := make([]int, len(rounds))
	copy(rem, rounds)
	return &Budget{remaining: rem, initial: init}
}

// BudgetFromDevices computes τ_i for every node from its assigned device,
// workload, and battery fraction (Table 2's "Training rounds" columns).
func BudgetFromDevices(assigned []Device, w Workload, batteryFraction float64) *Budget {
	rounds := make([]int, len(assigned))
	for i, d := range assigned {
		rounds[i] = d.RoundBudget(w, batteryFraction)
	}
	return NewBudget(rounds)
}

// Remaining returns node i's remaining training rounds.
func (b *Budget) Remaining(i int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.remaining[i]
}

// Initial returns node i's initial budget τ_i.
func (b *Budget) Initial(i int) int { return b.initial[i] }

// Consume decrements node i's budget, reporting false when it was already
// exhausted (the node must then skip training, Algorithm 2 line 5).
func (b *Budget) Consume(i int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.remaining[i] <= 0 {
		return false
	}
	b.remaining[i]--
	return true
}

// TotalInitial returns the sum of all initial budgets.
func (b *Budget) TotalInitial() int {
	t := 0
	for _, v := range b.initial {
		t += v
	}
	return t
}

// Used returns the total training rounds consumed so far across all nodes —
// the budget-side counterpart of harvest.Fleet.Consumed, letting the
// budget-backed policies report whether they carry run state.
func (b *Budget) Used() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	used := 0
	for i := range b.remaining {
		used += b.initial[i] - b.remaining[i]
	}
	return used
}

// Reset restores every node's remaining budget to its initial τ_i, so the
// next run draws down the same budgets the first one did.
func (b *Budget) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	copy(b.remaining, b.initial)
}

// String summarizes the budget state.
func (b *Budget) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	used, total := 0, 0
	for i := range b.remaining {
		used += b.initial[i] - b.remaining[i]
		total += b.initial[i]
	}
	return fmt.Sprintf("budget{used %d/%d rounds}", used, total)
}
