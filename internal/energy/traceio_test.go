package energy

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraces(&buf, Devices()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := Devices()
	if len(got) != len(want) {
		t.Fatalf("got %d devices", len(got))
	}
	for i := range want {
		if got[i].Name != want[i].Name {
			t.Fatalf("device %d name %q != %q", i, got[i].Name, want[i].Name)
		}
		if math.Abs(got[i].PowerWatts-want[i].PowerWatts) > 1e-12 ||
			math.Abs(got[i].InferenceSeconds-want[i].InferenceSeconds) > 1e-12 ||
			math.Abs(got[i].BatteryWh-want[i].BatteryWh) > 1e-12 {
			t.Fatalf("device %d fields changed in round trip", i)
		}
	}
	// The reloaded trace reproduces Table 2 energies.
	for i, d := range got {
		if math.Abs(d.TrainRoundWh(CIFAR10Workload())-want[i].TrainRoundWh(CIFAR10Workload())) > 1e-12 {
			t.Fatal("reloaded trace gives different energy")
		}
	}
}

func TestReadTracesValidation(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "device,watts\nX,1",
		"bad fields":   "name,power_watts,inference_seconds,battery_wh\nX,1,2",
		"bad power":    "name,power_watts,inference_seconds,battery_wh\nX,abc,2,3",
		"bad infer":    "name,power_watts,inference_seconds,battery_wh\nX,1,abc,3",
		"bad battery":  "name,power_watts,inference_seconds,battery_wh\nX,1,2,abc",
		"neg power":    "name,power_watts,inference_seconds,battery_wh\nX,-1,2,3",
		"zero battery": "name,power_watts,inference_seconds,battery_wh\nX,1,2,0",
		"empty name":   "name,power_watts,inference_seconds,battery_wh\n,1,2,3",
		"no devices":   "name,power_watts,inference_seconds,battery_wh\n",
	}
	for name, data := range cases {
		if _, err := ReadTraces(strings.NewReader(data)); err == nil {
			t.Fatalf("%s: want error", name)
		}
	}
}

func TestReadTracesSkipsBlankLines(t *testing.T) {
	data := "name,power_watts,inference_seconds,battery_wh\nA,1,2,3\n\nB,4,5,6\n"
	devices, err := ReadTraces(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(devices) != 2 || devices[1].Name != "B" {
		t.Fatalf("devices = %+v", devices)
	}
}

func TestWriteTracesRejectsDelimiterInName(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTraces(&buf, []Device{{Name: "a,b", PowerWatts: 1, InferenceSeconds: 1, BatteryWh: 1}})
	if err == nil {
		t.Fatal("comma in name must be rejected")
	}
}
