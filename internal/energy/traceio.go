package energy

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace I/O: the paper's artifact includes the compiled energy traces; this
// file provides the equivalent CSV interchange so traces can be shipped,
// inspected, and reloaded independently of the built-in profiles.
//
// Format (header required):
//
//	name,power_watts,inference_seconds,battery_wh
//	Xiaomi 12 Pro,6.5,0.070955,17.68

// WriteTraces writes device profiles as CSV.
func WriteTraces(w io.Writer, devices []Device) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "name,power_watts,inference_seconds,battery_wh"); err != nil {
		return err
	}
	for _, d := range devices {
		if strings.Contains(d.Name, ",") || strings.Contains(d.Name, "\n") {
			return fmt.Errorf("energy: device name %q contains a delimiter", d.Name)
		}
		if _, err := fmt.Fprintf(bw, "%s,%g,%g,%g\n",
			d.Name, d.PowerWatts, d.InferenceSeconds, d.BatteryWh); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTraces parses device profiles from CSV, validating every field.
func ReadTraces(r io.Reader) ([]Device, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("energy: empty trace file")
	}
	header := strings.TrimSpace(sc.Text())
	if header != "name,power_watts,inference_seconds,battery_wh" {
		return nil, fmt.Errorf("energy: unexpected trace header %q", header)
	}
	var devices []Device
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("energy: line %d: want 4 fields, got %d", line, len(parts))
		}
		power, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("energy: line %d: bad power: %w", line, err)
		}
		infer, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("energy: line %d: bad inference time: %w", line, err)
		}
		battery, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return nil, fmt.Errorf("energy: line %d: bad battery: %w", line, err)
		}
		d := Device{Name: strings.TrimSpace(parts[0]), PowerWatts: power, InferenceSeconds: infer, BatteryWh: battery}
		if err := validateDevice(d); err != nil {
			return nil, fmt.Errorf("energy: line %d: %w", line, err)
		}
		devices = append(devices, d)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(devices) == 0 {
		return nil, fmt.Errorf("energy: trace file has no devices")
	}
	return devices, nil
}

func validateDevice(d Device) error {
	switch {
	case d.Name == "":
		return fmt.Errorf("empty device name")
	case d.PowerWatts <= 0:
		return fmt.Errorf("non-positive power %v", d.PowerWatts)
	case d.InferenceSeconds <= 0:
		return fmt.Errorf("non-positive inference time %v", d.InferenceSeconds)
	case d.BatteryWh <= 0:
		return fmt.Errorf("non-positive battery %v", d.BatteryWh)
	}
	return nil
}
