// Package async implements the asynchronous extension of SkipTrain that
// the paper leaves as future work (Section 5.3: "asynchronous algorithms
// offer a more practical approach by relaxing the need for strict
// synchronization. We leave the exploration and development of an
// asynchronous extension of SkipTrain for future research").
//
// The design follows AD-PSGD (Lian et al., 2018), the asynchronous
// counterpart the paper cites: nodes run free of barriers; when a node
// finishes a local step it pushes its model to one random neighbor and
// averages pairwise with whatever models have arrived meanwhile. SkipTrain
// transfers directly: a node's local step counter decides — via the same
// Γtrain/Γsync pattern and training probabilities — whether the step
// includes local SGD or is gossip-only.
//
// The engine is a deterministic discrete-event simulation in virtual time.
// Each node's step duration comes from its device trace (training a round
// on a Xiaomi Poco X3 takes 6.1 virtual seconds, on a OnePlus Nord 2 only
// 2.3 — Table 2), so heterogeneous pacing emerges naturally: fast devices
// gossip more often, exactly the system-heterogeneity regime asynchronous
// DL targets. Virtual time also keeps every run bit-reproducible.
package async

import (
	"container/heap"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Config describes an asynchronous run.
type Config struct {
	Graph *graph.Graph
	// Algo supplies the schedule and participation policy. Aggregation is
	// always pairwise gossip averaging (AD-PSGD style); the Weights matrix
	// of the synchronous engine is not used.
	Algo core.Algorithm
	// Horizon is the virtual time to simulate, in seconds.
	Horizon float64
	// StepsPerNode optionally bounds the number of local steps any node
	// may take (0 = unbounded within the horizon).
	StepsPerNode int

	ModelFactory func(node int, r *rng.RNG) *nn.Network
	LR           float64
	BatchSize    int
	LocalSteps   int

	Partition dataset.Partition
	Test      *dataset.Dataset

	// Devices set per-node step durations and energy; required.
	Devices  []energy.Device
	Workload energy.Workload
	// SyncSpeedup is how much faster a gossip-only step is than a training
	// step (communication is cheap); default 10.
	SyncSpeedup float64

	// EvalEverySeconds evaluates all nodes at this virtual period
	// (0 = final only). EvalSubsample bounds test samples per evaluation.
	EvalEverySeconds float64
	EvalSubsample    int

	// Probe optionally attaches the observability layer (internal/obs):
	// the engine emits the run manifest, per-evaluation accuracy events
	// stamped with virtual time, and a run_end with total step/gossip
	// counts. Nil is the off state. Telemetry is read-only and RNG-silent.
	Probe *obs.Probe

	Seed uint64
}

func (c *Config) validate() error {
	switch {
	case c.Graph == nil:
		return fmt.Errorf("async: nil graph")
	case c.Horizon <= 0:
		return fmt.Errorf("async: non-positive horizon %v", c.Horizon)
	case c.ModelFactory == nil:
		return fmt.Errorf("async: nil model factory")
	case c.LR <= 0 || c.BatchSize < 1 || c.LocalSteps < 1:
		return fmt.Errorf("async: bad hyperparameters")
	case len(c.Partition) != c.Graph.N:
		return fmt.Errorf("async: partition for %d nodes, graph has %d", len(c.Partition), c.Graph.N)
	case c.Test == nil || c.Test.Len() == 0:
		return fmt.Errorf("async: empty test set")
	case len(c.Devices) != c.Graph.N:
		return fmt.Errorf("async: %d devices for %d nodes", len(c.Devices), c.Graph.N)
	case c.Algo.Schedule == nil || c.Algo.Policy == nil:
		return fmt.Errorf("async: incomplete algorithm")
	}
	// The async engine carries no battery or forecast state, so a policy
	// that decides from either would silently never train: reject it up
	// front, mirroring sim.Run's checks.
	if _, ok := c.Algo.Policy.(core.BatteryDependent); ok {
		return fmt.Errorf("async: policy %s decides from battery state, which the async engine does not model", c.Algo.Policy.Name())
	}
	if _, ok := c.Algo.Policy.(core.ForecastDependent); ok {
		return fmt.Errorf("async: policy %s plans over a forecast window, which the async engine does not model", c.Algo.Policy.Name())
	}
	return c.Workload.Validate()
}

// Snapshot is one evaluation point in virtual time.
type Snapshot struct {
	Time       float64
	MeanAcc    float64
	StdAcc     float64
	Consensus  float64
	StepsTotal int
	TrainWh    float64
}

// Result is the outcome of an asynchronous run.
type Result struct {
	// Manifest is the run's content-addressable identity (internal/obs).
	Manifest     obs.RunManifest
	History      []Snapshot
	FinalMeanAcc float64
	FinalStdAcc  float64
	TotalTrainWh float64
	StepsPerNode []int // local steps completed per node
	TrainedSteps []int // steps that included training
	GossipsSent  int
}

// event is a scheduled node wake-up in virtual time.
type event struct {
	time float64
	node int
	seq  int // tiebreaker for determinism
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

type asyncNode struct {
	id       int
	net      *nn.Network
	batcher  *dataset.Batcher
	policy   *rng.RNG
	gossip   *rng.RNG
	params   tensor.Vector
	incoming []tensor.Vector // models pushed by peers since last step
	steps    int
	trained  int
}

// Run executes the asynchronous simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.SyncSpeedup <= 0 {
		cfg.SyncSpeedup = 10
	}
	n := cfg.Graph.N
	nodes := make([]*asyncNode, n)
	var paramCount int
	for i := 0; i < n; i++ {
		model := cfg.ModelFactory(i, rng.Derive(cfg.Seed, uint64(i), 0xa51c))
		if i == 0 {
			paramCount = model.ParamCount()
		} else if model.ParamCount() != paramCount {
			return nil, fmt.Errorf("async: heterogeneous model sizes")
		}
		nodes[i] = &asyncNode{
			id:      i,
			net:     model,
			batcher: dataset.NewBatcher(cfg.Partition[i], rng.Derive(cfg.Seed, uint64(i), 0xba7c4)),
			policy:  rng.Derive(cfg.Seed, uint64(i), 0x90a1c),
			gossip:  rng.Derive(cfg.Seed, uint64(i), 0x905517),
			params:  tensor.NewVector(paramCount),
		}
		nodes[i].net.CopyParamsTo(nodes[i].params)
	}

	res := &Result{StepsPerNode: make([]int, n), TrainedSteps: make([]int, n)}
	res.Manifest = buildManifest(&cfg, paramCount)
	probe := cfg.Probe
	probe.RunStart(&res.Manifest)
	queue := &eventQueue{}
	heap.Init(queue)
	seq := 0
	for i := 0; i < n; i++ {
		// Stagger starts by a fraction of the node's own step time so the
		// fleet does not begin in lockstep.
		start := cfg.Devices[i].TrainRoundSeconds(cfg.Workload) * nodes[i].gossip.Float64()
		heap.Push(queue, event{time: start, node: i, seq: seq})
		seq++
	}

	trainWh := 0.0
	nextEval := cfg.EvalEverySeconds
	evalRNG := rng.Derive(cfg.Seed, 0xe7a1)
	evaluate := func(t float64) {
		xs, ys := evalSubset(cfg, evalRNG)
		accs := make([]float64, n)
		models := make([]tensor.Vector, n)
		for i, nd := range nodes {
			accs[i] = nd.net.Accuracy(xs, ys)
			models[i] = nd.params
		}
		mean, std := metrics.MeanStd(accs)
		steps := 0
		for _, nd := range nodes {
			steps += nd.steps
		}
		res.History = append(res.History, Snapshot{
			Time: t, MeanAcc: mean, StdAcc: std,
			Consensus:  metrics.ConsensusDistance(models),
			StepsTotal: steps, TrainWh: trainWh,
		})
		res.FinalMeanAcc, res.FinalStdAcc = mean, std
		probe.Emit(obs.Event{
			Kind: obs.KindEval, Round: len(res.History) - 1, Node: -1,
			VTime: t, MeanAcc: mean, StdAcc: std, Steps: steps,
		})
	}

	for queue.Len() > 0 {
		ev := heap.Pop(queue).(event)
		if ev.time > cfg.Horizon {
			break
		}
		if cfg.EvalEverySeconds > 0 && ev.time >= nextEval {
			evaluate(nextEval)
			nextEval += cfg.EvalEverySeconds
		}
		nd := nodes[ev.node]
		if cfg.StepsPerNode > 0 && nd.steps >= cfg.StepsPerNode {
			continue
		}

		// 1. Merge everything that arrived while we were busy (AD-PSGD
		//    pairwise averaging, generalized to k pending models).
		if len(nd.incoming) > 0 {
			vecs := make([]tensor.Vector, 0, len(nd.incoming)+1)
			vecs = append(vecs, nd.params)
			vecs = append(vecs, nd.incoming...)
			tensor.MeanVectorTo(nd.params, vecs)
			nd.incoming = nd.incoming[:0]
			nd.net.SetParams(nd.params)
		}

		// 2. Decide the step kind from the node's own step counter: the
		//    same Γ pattern and budget policy as the synchronous variant.
		// The async engine is open-ended (no fixed horizon) and carries no
		// battery or forecast state, so the context is schedule-only.
		trainingStep := cfg.Algo.Schedule.Kind(nd.steps) == core.RoundTrain &&
			cfg.Algo.Policy.Participate(nd.id, core.ContextAt(cfg.Algo.Schedule, nd.steps, 0), nd.policy)
		dur := cfg.Devices[nd.id].TrainRoundSeconds(cfg.Workload)
		if trainingStep {
			for e := 0; e < cfg.LocalSteps; e++ {
				xs, ys := nd.batcher.Next(cfg.BatchSize)
				nd.net.TrainBatch(xs, ys, cfg.LR)
			}
			nd.net.CopyParamsTo(nd.params)
			trainWh += cfg.Devices[nd.id].TrainRoundWh(cfg.Workload)
			nd.trained++
			res.TrainedSteps[nd.id]++
		} else {
			dur /= cfg.SyncSpeedup
		}

		// 3. Symmetric gossip with one random neighbor: push our model to
		//    the peer and pull the peer's current model into our own merge
		//    queue — the event-driven equivalent of AD-PSGD's atomic
		//    pairwise averaging (push-only gossip mixes half as fast and
		//    does not preserve the network average).
		nbrs := cfg.Graph.Adj[nd.id]
		peer := nbrs[nd.gossip.Intn(len(nbrs))]
		nodes[peer].incoming = append(nodes[peer].incoming, nd.params.Clone())
		nd.incoming = append(nd.incoming, nodes[peer].params.Clone())
		res.GossipsSent++

		nd.steps++
		res.StepsPerNode[nd.id]++
		heap.Push(queue, event{time: ev.time + dur, node: nd.id, seq: seq})
		seq++
	}
	evaluate(cfg.Horizon)
	res.TotalTrainWh = trainWh
	if probe.Enabled() {
		steps, trained := 0, 0
		for i := range res.StepsPerNode {
			steps += res.StepsPerNode[i]
			trained += res.TrainedSteps[i]
		}
		probe.Emit(obs.Event{
			Kind: obs.KindRunEnd, Round: -1, Node: -1,
			VTime: cfg.Horizon, Steps: steps, Trained: trained,
			Gossips: res.GossipsSent,
		})
	}
	return res, nil
}

// buildManifest derives the async run's content-addressable identity from
// the experiment-defining config fields (GOMAXPROCS and telemetry excluded:
// the event loop is serial and bit-reproducible regardless).
func buildManifest(cfg *Config, paramCount int) obs.RunManifest {
	b := obs.NewManifest("async", cfg.Algo.Label, cfg.Seed).
		Scale(cfg.Graph.N, 0).
		Set("schedule", cfg.Algo.Schedule.Name()).
		Set("policy", cfg.Algo.Policy.Name()).
		Setf("graph", "%016x", cfg.Graph.Fingerprint()).
		Setf("horizon_s", "%g", cfg.Horizon).
		Setf("steps_per_node", "%d", cfg.StepsPerNode).
		Setf("lr", "%g", cfg.LR).
		Setf("batch", "%d", cfg.BatchSize).
		Setf("local_steps", "%d", cfg.LocalSteps).
		Setf("params", "%d", paramCount).
		Setf("sync_speedup", "%g", cfg.SyncSpeedup).
		Setf("eval_every_s", "%g", cfg.EvalEverySeconds).
		Setf("eval_subsample", "%d", cfg.EvalSubsample).
		Setf("devices", "%d", len(cfg.Devices))
	return b.Build()
}

func evalSubset(cfg Config, r *rng.RNG) ([]tensor.Vector, []int) {
	test := cfg.Test
	if cfg.EvalSubsample <= 0 || cfg.EvalSubsample >= test.Len() {
		return test.Inputs(), test.Labels()
	}
	idx := r.Perm(test.Len())[:cfg.EvalSubsample]
	xs := make([]tensor.Vector, len(idx))
	ys := make([]int, len(idx))
	for i, j := range idx {
		xs[i] = test.Samples[j].X
		ys[i] = test.Samples[j].Y
	}
	return xs, ys
}
