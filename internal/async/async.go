// Package async implements the asynchronous extension of SkipTrain that
// the paper leaves as future work (Section 5.3: "asynchronous algorithms
// offer a more practical approach by relaxing the need for strict
// synchronization. We leave the exploration and development of an
// asynchronous extension of SkipTrain for future research").
//
// The design follows AD-PSGD (Lian et al., 2018), the asynchronous
// counterpart the paper cites: nodes run free of barriers; when a node
// finishes a local step it pushes its model to one random neighbor and
// averages pairwise with whatever models have arrived meanwhile. SkipTrain
// transfers directly: a node's local step counter decides — via the same
// Γtrain/Γsync pattern and training probabilities — whether the step
// includes local SGD or is gossip-only.
//
// The engine is a deterministic discrete-event simulation in virtual time.
// Each node's step duration comes from its device trace (training a round
// on a Xiaomi Poco X3 takes 6.1 virtual seconds, on a OnePlus Nord 2 only
// 2.3 — Table 2), so heterogeneous pacing emerges naturally: fast devices
// gossip more often, exactly the system-heterogeneity regime asynchronous
// DL targets. Virtual time also keeps every run bit-reproducible.
//
// Attaching a harvest trace (Config.Trace) makes intermittency
// event-driven, the setting of Decentralized Federated Learning With
// Energy Harvesting Devices (Zhang, Cao, Letaief): batteries evolve on
// the continuous clock (harvest.VFleet), charge arrivals wake sleeping
// nodes at exactly solved crossing times, and a brown-out interrupts an
// in-flight training step — the computation is discarded but its partial
// energy stays spent, per Intermittent Learning (Lee et al.). Every
// battery/forecast participation policy of the synchronous engine runs
// unchanged through the same core.RoundContext contract.
package async

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/harvest"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Config describes an asynchronous run.
type Config struct {
	Graph *graph.Graph
	// Algo supplies the schedule and participation policy. Aggregation is
	// always pairwise gossip averaging (AD-PSGD style); the Weights matrix
	// of the synchronous engine is not used.
	Algo core.Algorithm
	// Horizon is the virtual time to simulate, in seconds.
	Horizon float64
	// StepsPerNode optionally bounds the number of local steps any node
	// may take (0 = unbounded within the horizon).
	StepsPerNode int

	ModelFactory func(node int, r *rng.RNG) *nn.Network
	LR           float64
	BatchSize    int
	LocalSteps   int

	Partition dataset.Partition
	Test      *dataset.Dataset

	// Devices set per-node step durations and energy; required.
	Devices  []energy.Device
	Workload energy.Workload
	// SyncSpeedup is how much faster a gossip-only step is than a training
	// step (communication is cheap); default 10.
	SyncSpeedup float64

	// Trace attaches an energy-harvesting trace: nodes then run on real
	// battery state (harvest.VFleet) instead of the pure step clock —
	// training steps drain the battery continuously, unaffordable steps
	// put the node to sleep until the solved charge-arrival crossing, and
	// brown-outs interrupt in-flight work. Nil keeps the energy-oblivious
	// engine.
	Trace harvest.Trace
	// FleetOptions shape the batteries when Trace is set (same knobs as
	// the synchronous engines).
	FleetOptions harvest.Options
	// RoundSeconds maps virtual seconds onto trace rounds: trace round k
	// spans [k·RoundSeconds, (k+1)·RoundSeconds). 0 defaults to the fleet
	// mean training-step duration, so one trace round ≈ one synchronous
	// round of the average device.
	RoundSeconds float64
	// Forecast supplies per-round harvest predictions to forecast-aware
	// policies (HorizonPlan); requires Trace and ForecastHorizon ≥ 1.
	// Learning forecasters (harvest.ForecastObserver) are rejected: the
	// async engine has no serial round close to observe arrivals on.
	Forecast        harvest.Forecaster
	ForecastHorizon int

	// EvalEverySeconds evaluates all nodes at this virtual period
	// (0 = final only). EvalSubsample bounds test samples per evaluation.
	EvalEverySeconds float64
	EvalSubsample    int

	// Probe optionally attaches the observability layer (internal/obs):
	// the engine emits the run manifest, per-evaluation accuracy events
	// stamped with virtual time, and a run_end with total step/gossip
	// counts. Harvest runs additionally stream VTime-stamped brownout and
	// revival events plus the fleet energy ledger at every eval tick, so
	// analyze.Auditor's conservation invariants extend to the roundless
	// stream. Nil is the off state. Telemetry is read-only and RNG-silent.
	Probe *obs.Probe

	Seed uint64
}

func (c *Config) validate() error {
	switch {
	case c.Graph == nil:
		return fmt.Errorf("async: nil graph")
	case c.Horizon <= 0:
		return fmt.Errorf("async: non-positive horizon %v", c.Horizon)
	case c.ModelFactory == nil:
		return fmt.Errorf("async: nil model factory")
	case c.LR <= 0 || c.BatchSize < 1 || c.LocalSteps < 1:
		return fmt.Errorf("async: bad hyperparameters")
	case len(c.Partition) != c.Graph.N:
		return fmt.Errorf("async: partition for %d nodes, graph has %d", len(c.Partition), c.Graph.N)
	case c.Test == nil || c.Test.Len() == 0:
		return fmt.Errorf("async: empty test set")
	case len(c.Devices) != c.Graph.N:
		return fmt.Errorf("async: %d devices for %d nodes", len(c.Devices), c.Graph.N)
	case c.Algo.Schedule == nil || c.Algo.Policy == nil:
		return fmt.Errorf("async: incomplete algorithm")
	case c.RoundSeconds < 0:
		return fmt.Errorf("async: negative round duration %v", c.RoundSeconds)
	}
	// Battery- and forecast-aware policies need the state they decide
	// from; with a trace attached they run natively on the virtual-time
	// fleet (this mirrors sim.Run's configuration-consistency checks, not
	// an engine limitation).
	if c.Trace == nil {
		if _, ok := c.Algo.Policy.(core.BatteryDependent); ok {
			return fmt.Errorf("async: policy %s decides from battery state and needs Config.Trace", c.Algo.Policy.Name())
		}
	}
	if _, ok := c.Algo.Policy.(core.ForecastDependent); ok && c.Forecast == nil {
		return fmt.Errorf("async: policy %s plans over a forecast window and needs Config.Forecast", c.Algo.Policy.Name())
	}
	if c.Forecast != nil {
		if c.Trace == nil {
			return fmt.Errorf("async: Forecast requires a harvest trace to forecast")
		}
		if c.ForecastHorizon < 1 {
			return fmt.Errorf("async: Forecast needs ForecastHorizon >= 1, got %d", c.ForecastHorizon)
		}
		if _, ok := c.Forecast.(harvest.ForecastObserver); ok {
			return fmt.Errorf("async: forecaster %s learns from per-round observations, which the event-driven engine does not produce", c.Forecast.Name())
		}
	} else if c.ForecastHorizon != 0 {
		return fmt.Errorf("async: ForecastHorizon %d given without a Forecast", c.ForecastHorizon)
	}
	return c.Workload.Validate()
}

// Snapshot is one evaluation point in virtual time.
type Snapshot struct {
	Time       float64
	MeanAcc    float64
	StdAcc     float64
	Consensus  float64
	StepsTotal int
	TrainWh    float64
}

// Result is the outcome of an asynchronous run.
type Result struct {
	// Manifest is the run's content-addressable identity (internal/obs).
	Manifest     obs.RunManifest
	History      []Snapshot
	FinalMeanAcc float64
	FinalStdAcc  float64
	TotalTrainWh float64
	StepsPerNode []int // local steps completed per node
	TrainedSteps []int // steps that included training
	GossipsSent  int

	// Harvest-run outcomes (zero without a trace):
	// Brownouts counts brown-out interrupts — in-flight work hitting the
	// cutoff plus sleeping nodes drained across it.
	Brownouts int
	// BrownoutShare is the fraction of total node-time spent browned out.
	BrownoutShare float64
	// DroppedGossips counts exchanges skipped because the chosen peer was
	// browned out.
	DroppedGossips int
	// HarvestedWh/ConsumedWh/WastedWh are the fleet ledger totals.
	HarvestedWh float64
	ConsumedWh  float64
	WastedWh    float64
}

// eventKind types the entries of the virtual-time heap.
type eventKind uint8

const (
	// evStep: the node is free at ev.time and processes its next local
	// step (merge, decide, train or gossip).
	evStep eventKind = iota
	// evWake: a sleeping node's charge-arrival crossing — re-check
	// affordability and resume stepping.
	evWake
	// evBrownout: the node's battery hit its cutoff at ev.time (mid-step
	// or while sleeping); marks it down until the next wake.
	evBrownout
	// evEval: fleet-wide evaluation tick (node −1); reschedules itself
	// every EvalEverySeconds.
	evEval
)

// event is one scheduled occurrence in virtual time.
type event struct {
	time float64
	kind eventKind
	node int
	seq  int // tiebreaker for determinism
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

type asyncNode struct {
	id       int
	net      *nn.Network
	batcher  *dataset.Batcher
	policy   *rng.RNG
	gossip   *rng.RNG
	params   tensor.Vector
	incoming []tensor.Vector // models pushed by peers since last step
	steps    int
	trained  int

	// Harvest-run state.
	down        bool    // browned out (a brownout event was emitted)
	downSince   float64 // virtual time the current outage began
	downTotal   float64 // accumulated outage seconds
	wakePending bool    // an evWake is already on the heap
}

// Run executes the asynchronous simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.SyncSpeedup <= 0 {
		cfg.SyncSpeedup = 10
	}
	n := cfg.Graph.N
	nodes := make([]*asyncNode, n)
	var paramCount int
	for i := 0; i < n; i++ {
		model := cfg.ModelFactory(i, rng.Derive(cfg.Seed, uint64(i), 0xa51c))
		if i == 0 {
			paramCount = model.ParamCount()
		} else if model.ParamCount() != paramCount {
			return nil, fmt.Errorf("async: heterogeneous model sizes")
		}
		nodes[i] = &asyncNode{
			id:      i,
			net:     model,
			batcher: dataset.NewBatcher(cfg.Partition[i], rng.Derive(cfg.Seed, uint64(i), 0xba7c4)),
			policy:  rng.Derive(cfg.Seed, uint64(i), 0x90a1c),
			gossip:  rng.Derive(cfg.Seed, uint64(i), 0x905517),
			params:  tensor.NewVector(paramCount),
		}
		nodes[i].net.CopyParamsTo(nodes[i].params)
	}

	// Per-node step durations and the step-count horizon threaded into
	// every round context: how many training-step durations fit in the
	// virtual horizon (or the explicit cap, whichever binds), so
	// horizon-aware schedules see a real T instead of 0.
	stepSec := make([]float64, n)
	hsteps := make([]int, n)
	for i := range stepSec {
		stepSec[i] = cfg.Devices[i].TrainRoundSeconds(cfg.Workload)
		hsteps[i] = int(math.Ceil(cfg.Horizon / stepSec[i]))
		if cfg.StepsPerNode > 0 && cfg.StepsPerNode < hsteps[i] {
			hsteps[i] = cfg.StepsPerNode
		}
	}

	// The harvest fleet, when a trace is attached.
	var vf *harvest.VFleet
	roundSec := cfg.RoundSeconds
	if cfg.Trace != nil {
		if roundSec == 0 {
			for _, s := range stepSec {
				roundSec += s
			}
			roundSec /= float64(n)
		}
		var err error
		vf, err = harvest.NewVFleet(cfg.Devices, cfg.Workload, cfg.Trace, cfg.FleetOptions, roundSec)
		if err != nil {
			return nil, err
		}
	}
	var forecastScratch [][]float64
	if cfg.Forecast != nil {
		forecastScratch = make([][]float64, n)
		for i := range forecastScratch {
			forecastScratch[i] = make([]float64, cfg.ForecastHorizon)
		}
	}

	res := &Result{StepsPerNode: make([]int, n), TrainedSteps: make([]int, n)}
	res.Manifest = buildManifest(&cfg, paramCount, roundSec)
	probe := cfg.Probe
	if vf != nil {
		probe.RunStartCharge(&res.Manifest, vf.TotalChargeWh())
	} else {
		probe.RunStart(&res.Manifest)
	}
	queue := &eventQueue{}
	heap.Init(queue)
	seq := 0
	push := func(t float64, kind eventKind, node int) {
		heap.Push(queue, event{time: t, kind: kind, node: node, seq: seq})
		seq++
	}
	for i := 0; i < n; i++ {
		// Stagger starts by a fraction of the node's own step time so the
		// fleet does not begin in lockstep.
		push(stepSec[i]*nodes[i].gossip.Float64(), evStep, i)
	}
	if cfg.EvalEverySeconds > 0 && cfg.EvalEverySeconds < cfg.Horizon {
		push(cfg.EvalEverySeconds, evEval, -1)
	}
	// Nodes whose batteries start at or below the cutoff are browned out
	// from the first instant: emit the transition at VTime 0 so the
	// alternation invariant sees their eventual revival.
	if vf != nil {
		for i := 0; i < n; i++ {
			if !vf.Usable(i) {
				nodes[i].down = true
				res.Brownouts++
				probe.Emit(obs.Event{Kind: obs.KindBrownout, Round: 0, Node: i})
			}
		}
	}

	trainWh := 0.0
	evalRNG := rng.Derive(cfg.Seed, 0xe7a1)
	evaluate := func(t float64) {
		xs, ys := evalSubset(cfg, evalRNG)
		accs := make([]float64, n)
		models := make([]tensor.Vector, n)
		for i, nd := range nodes {
			accs[i] = nd.net.Accuracy(xs, ys)
			models[i] = nd.params
		}
		mean, std := metrics.MeanStd(accs)
		steps := 0
		for _, nd := range nodes {
			steps += nd.steps
		}
		res.History = append(res.History, Snapshot{
			Time: t, MeanAcc: mean, StdAcc: std,
			Consensus:  metrics.ConsensusDistance(models),
			StepsTotal: steps, TrainWh: trainWh,
		})
		res.FinalMeanAcc, res.FinalStdAcc = mean, std
		probe.Emit(obs.Event{
			Kind: obs.KindEval, Round: len(res.History) - 1, Node: -1,
			VTime: t, MeanAcc: mean, StdAcc: std, Steps: steps,
		})
	}

	// ledgerTick emits the fleet energy ledger as a VTime-stamped
	// round_start/round_end pair — the roundless stream's conservation
	// checkpoints. Deltas of the cumulative ledgers, like the synchronous
	// engines; HarvestWh carries arrivals (stored + wasted).
	ticks := 0
	lastArrived, lastConsumed, lastWasted := 0.0, 0.0, 0.0
	ledgerTick := func(t float64) {
		if vf == nil {
			return
		}
		arrived := vf.HarvestedWh() + vf.WastedWh()
		consumed := vf.ConsumedWh()
		wasted := vf.WastedWh()
		live := vf.LiveCount()
		probe.Emit(obs.Event{Kind: obs.KindRoundStart, Round: ticks, Node: -1, Label: "tick", VTime: t})
		probe.Emit(obs.Event{
			Kind: obs.KindRoundEnd, Round: ticks, Node: -1, VTime: t,
			Live: live, Depleted: vf.Nodes() - live,
			HarvestWh: arrived - lastArrived, ConsumedWh: consumed - lastConsumed,
			WastedWh: wasted - lastWasted, ChargeWh: vf.TotalChargeWh(),
			MeanSoC: vf.MeanSoC(),
		})
		lastArrived, lastConsumed, lastWasted = arrived, consumed, wasted
		ticks++
	}

	// markDown transitions node i into an outage at virtual time t.
	markDown := func(nd *asyncNode, t float64) {
		nd.down = true
		nd.downSince = t
		res.Brownouts++
		probe.Emit(obs.Event{
			Kind: obs.KindBrownout, Round: vf.TraceRound(t), Node: nd.id, VTime: t,
		})
	}

	// sleep schedules node i's future after it cannot afford costWh at
	// time t: a wake event at the solved charge-arrival crossing and, if
	// the trajectory dips first, a brown-out event at that crossing. A
	// node whose trajectory can never afford the cost within the horizon
	// gets no wake — it parks (its outage accounting closes at run end).
	sleep := func(nd *asyncNode, t, costWh float64) {
		wake, brown := vf.ScanAfford(nd.id, costWh, cfg.Horizon)
		if !nd.down && brown < wake && !math.IsInf(brown, 1) {
			push(brown, evBrownout, nd.id)
		}
		if !math.IsInf(wake, 1) {
			// Progress guard: the scan mirrors the realized float ops, but
			// association differs, so a realized wake can land a few ulps
			// short and re-solve to "now". Nudge to the next trace-round
			// boundary so virtual time always advances.
			if wake <= t {
				wake = (math.Floor(t/vf.RoundSeconds()) + 1) * vf.RoundSeconds()
			}
			push(wake, evWake, nd.id)
			nd.wakePending = true
		}
	}

	// nextCostWh is the energy the node's next step slot needs — what a
	// sleeping node must be able to afford before waking.
	nextCostWh := func(nd *asyncNode) float64 {
		if cfg.Algo.Schedule.Kind(nd.steps) == core.RoundTrain {
			return vf.TrainCostWh(nd.id)
		}
		return vf.CommCostWh(nd.id)
	}

	for queue.Len() > 0 {
		ev := heap.Pop(queue).(event)
		if ev.time > cfg.Horizon {
			break
		}
		if ev.kind == evEval {
			if vf != nil {
				vf.AdvanceAll(ev.time)
			}
			evaluate(ev.time)
			ledgerTick(ev.time)
			if next := ev.time + cfg.EvalEverySeconds; next < cfg.Horizon {
				push(next, evEval, -1)
			}
			continue
		}

		nd := nodes[ev.node]
		now := ev.time

		if ev.kind == evBrownout {
			if vf == nil || nd.down {
				continue
			}
			vf.AdvanceNode(nd.id, now)
			markDown(nd, now)
			if !nd.wakePending {
				sleep(nd, now, nextCostWh(nd))
			}
			continue
		}

		if ev.kind == evWake {
			nd.wakePending = false
			vf.AdvanceNode(nd.id, now)
			if nd.down {
				nd.down = false
				nd.downTotal += now - nd.downSince
				probe.Emit(obs.Event{
					Kind: obs.KindRevival, Round: vf.TraceRound(now), Node: nd.id, VTime: now,
					Staleness: int((now - nd.downSince) / vf.RoundSeconds()),
				})
			}
			// Fall through into the step logic below.
		}

		if cfg.StepsPerNode > 0 && nd.steps >= cfg.StepsPerNode {
			continue
		}
		if vf != nil {
			vf.AdvanceNode(nd.id, now)
		}

		// 1. Merge everything that arrived while we were busy (AD-PSGD
		//    pairwise averaging, generalized to k pending models).
		if len(nd.incoming) > 0 {
			vecs := make([]tensor.Vector, 0, len(nd.incoming)+1)
			vecs = append(vecs, nd.params)
			vecs = append(vecs, nd.incoming...)
			tensor.MeanVectorTo(nd.params, vecs)
			nd.incoming = nd.incoming[:0]
			nd.net.SetParams(nd.params)
		}

		// 2. Decide the step kind from the node's own step counter — the
		//    same Γ pattern and policy contract as the synchronous engine,
		//    with the virtual-time battery and forecast state threaded
		//    through the context when a fleet is attached.
		ctx := core.VirtualContext(cfg.Algo.Schedule, nd.steps, hsteps[nd.id], nil, nil)
		if vf != nil {
			ctx.Battery = vf
			if forecastScratch != nil {
				cfg.Forecast.Forecast(nd.id, vf.TraceRound(now), forecastScratch[nd.id])
				ctx.Forecast = forecastScratch[nd.id]
			}
		}
		trainingStep := ctx.Kind == core.RoundTrain &&
			cfg.Algo.Policy.Participate(nd.id, ctx, nd.policy)
		dur := stepSec[nd.id]

		if trainingStep && vf != nil {
			// Battery policies admit via TryTrain themselves; admit on
			// their behalf for energy-oblivious policies. An unaffordable
			// step puts the node to sleep until the charge arrives.
			if !vf.TryTrain(nd.id) {
				sleep(nd, now, vf.TrainCostWh(nd.id))
				continue
			}
			stop, browned := vf.TrainStep(nd.id, now+dur)
			if browned {
				// The in-flight step hit the cutoff: computation discarded,
				// partial energy spent, the slot retried after revival.
				push(stop, evBrownout, nd.id)
				sleep(nd, stop, vf.TrainCostWh(nd.id))
				continue
			}
		}
		if trainingStep {
			for e := 0; e < cfg.LocalSteps; e++ {
				xs, ys := nd.batcher.Next(cfg.BatchSize)
				nd.net.TrainBatch(xs, ys, cfg.LR)
			}
			nd.net.CopyParamsTo(nd.params)
			trainWh += cfg.Devices[nd.id].TrainRoundWh(cfg.Workload)
			nd.trained++
			res.TrainedSteps[nd.id]++
		} else {
			dur /= cfg.SyncSpeedup
			if vf != nil {
				vf.ClearPending(nd.id)
				if !vf.TrySync(nd.id) {
					sleep(nd, now, vf.CommCostWh(nd.id))
					continue
				}
			}
		}

		// 3. Symmetric gossip with one random neighbor: push our model to
		//    the peer and pull the peer's current model into our own merge
		//    queue — the event-driven equivalent of AD-PSGD's atomic
		//    pairwise averaging (push-only gossip mixes half as fast and
		//    does not preserve the network average). A browned-out peer is
		//    off the air: the exchange is dropped.
		nbrs := cfg.Graph.Adj[nd.id]
		peer := nbrs[nd.gossip.Intn(len(nbrs))]
		if vf != nil && nodes[peer].down {
			res.DroppedGossips++
			probe.DroppedSends(vf.TraceRound(now), 1)
		} else {
			nodes[peer].incoming = append(nodes[peer].incoming, nd.params.Clone())
			nd.incoming = append(nd.incoming, nodes[peer].params.Clone())
			res.GossipsSent++
		}

		nd.steps++
		res.StepsPerNode[nd.id]++
		if !trainingStep && vf != nil {
			// The comm lump is already paid; idle draw can still brown the
			// node during the (short) exchange. The gossip stands either
			// way — the model left the radio before the lights went out.
			if stop, browned := vf.AdvanceDetect(nd.id, now+dur); browned {
				push(stop, evBrownout, nd.id)
				continue
			}
		}
		push(now+dur, evStep, nd.id)
	}

	if vf != nil {
		vf.AdvanceAll(cfg.Horizon)
	}
	evaluate(cfg.Horizon)
	ledgerTick(cfg.Horizon)
	res.TotalTrainWh = trainWh
	if vf != nil {
		down := 0.0
		for _, nd := range nodes {
			nd.wakePending = false
			if nd.down {
				nd.downTotal += cfg.Horizon - nd.downSince
				nd.down = false
			}
			down += nd.downTotal
		}
		res.BrownoutShare = down / (float64(n) * cfg.Horizon)
		res.HarvestedWh = vf.HarvestedWh()
		res.ConsumedWh = vf.ConsumedWh()
		res.WastedWh = vf.WastedWh()
	}
	if probe.Enabled() {
		steps, trained := 0, 0
		for i := range res.StepsPerNode {
			steps += res.StepsPerNode[i]
			trained += res.TrainedSteps[i]
		}
		probe.Emit(obs.Event{
			Kind: obs.KindRunEnd, Round: -1, Node: -1,
			VTime: cfg.Horizon, Steps: steps, Trained: trained,
			Gossips: res.GossipsSent,
		})
	}
	return res, nil
}

// buildManifest derives the async run's content-addressable identity from
// the experiment-defining config fields (GOMAXPROCS and telemetry excluded:
// the event loop is serial and bit-reproducible regardless).
func buildManifest(cfg *Config, paramCount int, roundSec float64) obs.RunManifest {
	b := obs.NewManifest("async", cfg.Algo.Label, cfg.Seed).
		Scale(cfg.Graph.N, 0).
		Set("schedule", cfg.Algo.Schedule.Name()).
		Set("policy", cfg.Algo.Policy.Name()).
		Setf("graph", "%016x", cfg.Graph.Fingerprint()).
		Setf("horizon_s", "%g", cfg.Horizon).
		Setf("steps_per_node", "%d", cfg.StepsPerNode).
		Setf("lr", "%g", cfg.LR).
		Setf("batch", "%d", cfg.BatchSize).
		Setf("local_steps", "%d", cfg.LocalSteps).
		Setf("params", "%d", paramCount).
		Setf("sync_speedup", "%g", cfg.SyncSpeedup).
		Setf("eval_every_s", "%g", cfg.EvalEverySeconds).
		Setf("eval_subsample", "%d", cfg.EvalSubsample).
		Setf("devices", "%d", len(cfg.Devices))
	if cfg.Trace != nil {
		b = b.Set("trace", cfg.Trace.Name()).
			Setf("round_seconds", "%g", roundSec)
		if cfg.Forecast != nil {
			b = b.Set("forecaster", cfg.Forecast.Name()).
				Setf("fhorizon", "%d", cfg.ForecastHorizon)
		}
	}
	return b.Build()
}

func evalSubset(cfg Config, r *rng.RNG) ([]tensor.Vector, []int) {
	test := cfg.Test
	if cfg.EvalSubsample <= 0 || cfg.EvalSubsample >= test.Len() {
		return test.Inputs(), test.Labels()
	}
	idx := r.Perm(test.Len())[:cfg.EvalSubsample]
	xs := make([]tensor.Vector, len(idx))
	ys := make([]int, len(idx))
	for i, j := range idx {
		xs[i] = test.Samples[j].X
		ys[i] = test.Samples[j].Y
	}
	return xs, ys
}
