package async

import (
	"math"
	"testing"

	"repro/internal/harvest"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// harvestConfig is testConfig plus a trace sized so batteries genuinely
// bind: per-round arrivals comparable to a training step's cost.
func harvestConfig(t *testing.T, seed uint64, trace harvest.Trace) Config {
	t.Helper()
	cfg := testConfig(t, seed)
	cfg.Trace = trace
	cfg.FleetOptions = harvest.Options{
		CapacityRounds: 8, InitialSoC: 0.4, CutoffSoC: 0.1,
	}
	return cfg
}

// meanStepWh returns the fleet-average training-step energy — the scale
// harvest traces are sized against.
func meanStepWh(cfg Config) float64 {
	total := 0.0
	for _, d := range cfg.Devices {
		total += d.TrainRoundWh(cfg.Workload)
	}
	return total / float64(len(cfg.Devices))
}

func scarceDiurnal(t *testing.T, cfg Config) *harvest.Diurnal {
	t.Helper()
	d, err := harvest.NewDiurnal(1.2*meanStepWh(cfg), 12, harvest.LongitudePhase(cfg.Graph.N))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func scarceMarkov(t *testing.T, cfg Config, seed uint64) *harvest.MarkovOnOff {
	t.Helper()
	m, err := harvest.NewMarkovOnOff(cfg.Graph.N, 1.5*meanStepWh(cfg), 0.3, 0.3, seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Every battery/forecast policy of the synchronous engine must run in the
// event-driven engine — the marker-interface rejection is gone.
func TestAsyncHarvestPoliciesRun(t *testing.T) {
	base := testConfig(t, 21)
	policies := map[string]func(c *Config){
		"threshold": func(c *Config) {
			p, err := harvest.NewSoCThreshold(0.2)
			if err != nil {
				t.Fatal(err)
			}
			c.Algo.Policy = p
		},
		"hysteresis": func(c *Config) {
			p, err := harvest.NewSoCHysteresis(c.Graph.N, 0.15, 0.4)
			if err != nil {
				t.Fatal(err)
			}
			c.Algo.Policy = p
		},
		"proportional": func(c *Config) {
			p, err := harvest.NewSoCProportional(1)
			if err != nil {
				t.Fatal(err)
			}
			c.Algo.Policy = p
		},
		"mpc": func(c *Config) {
			p, err := harvest.NewHorizonPlan(0.05)
			if err != nil {
				t.Fatal(err)
			}
			c.Algo.Policy = p
			o, err := harvest.NewOracle(c.Trace)
			if err != nil {
				t.Fatal(err)
			}
			c.Forecast = o
			c.ForecastHorizon = 6
		},
	}
	for name, attach := range policies {
		cfg := harvestConfig(t, 21, scarceDiurnal(t, base))
		// Ample but not unlimited energy so policies both admit and refuse.
		attach(&cfg)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		trained := 0
		for _, tr := range res.TrainedSteps {
			trained += tr
		}
		if trained == 0 {
			t.Fatalf("%s: no node ever trained", name)
		}
		if res.ConsumedWh <= 0 || res.HarvestedWh <= 0 {
			t.Fatalf("%s: fleet ledgers empty (consumed %v, harvested %v)", name, res.ConsumedWh, res.HarvestedWh)
		}
	}
}

// Under scarce energy the engine must produce genuine brown-out/wake
// cycles: interrupts counted, outage share in (0, 1), and training still
// making progress between outages.
func TestAsyncHarvestBrownoutWakeCycle(t *testing.T) {
	cfg := harvestConfig(t, 22, nil)
	cfg.Trace = scarceDiurnal(t, cfg)
	cfg.FleetOptions = harvest.Options{CapacityRounds: 4, InitialSoC: 0.15, CutoffSoC: 0.1, IdleWh: 0.3 * meanStepWh(cfg)}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Brownouts == 0 {
		t.Fatal("scarce diurnal run produced no brown-outs")
	}
	if res.BrownoutShare <= 0 || res.BrownoutShare >= 1 {
		t.Fatalf("brown-out share %v outside (0, 1)", res.BrownoutShare)
	}
	steps := 0
	for _, s := range res.StepsPerNode {
		steps += s
	}
	if steps == 0 {
		t.Fatal("fleet never stepped")
	}
	// TotalTrainWh counts completed steps only, and the fleet ledger must
	// cover training plus overheads.
	want := 0.0
	for i, tr := range res.TrainedSteps {
		want += float64(tr) * cfg.Devices[i].TrainRoundWh(cfg.Workload)
	}
	if math.Abs(res.TotalTrainWh-want) > 1e-9 {
		t.Fatalf("TotalTrainWh %v, completed steps account for %v", res.TotalTrainWh, want)
	}
	if res.ConsumedWh < res.TotalTrainWh {
		t.Fatalf("fleet consumed %v < training energy %v", res.ConsumedWh, res.TotalTrainWh)
	}
}

// The event-driven engine on a constant trace with ample energy (no
// brown-outs, costs always affordable) must reproduce the budget-contract
// path exactly: same step counts, same gossip count, same accuracy — the
// battery machinery is energy-transparent when energy never binds.
func TestAsyncHarvestParityWithBudgetPath(t *testing.T) {
	plain, err := Run(testConfig(t, 23))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, 23)
	cfg.Trace = harvest.Constant{Wh: 1} // far above any per-round draw
	cfg.FleetOptions = harvest.Options{CapacityRounds: 1000, InitialSoC: 1, CutoffSoC: 0}
	rich, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rich.Brownouts != 0 {
		t.Fatalf("ample-energy run browned out %d times", rich.Brownouts)
	}
	if plain.FinalMeanAcc != rich.FinalMeanAcc {
		t.Fatalf("accuracy diverged: plain %v, harvest %v", plain.FinalMeanAcc, rich.FinalMeanAcc)
	}
	if plain.GossipsSent != rich.GossipsSent {
		t.Fatalf("gossip diverged: plain %d, harvest %d", plain.GossipsSent, rich.GossipsSent)
	}
	for i := range plain.StepsPerNode {
		if plain.StepsPerNode[i] != rich.StepsPerNode[i] || plain.TrainedSteps[i] != rich.TrainedSteps[i] {
			t.Fatalf("node %d steps diverged: plain %d/%d, harvest %d/%d", i,
				plain.StepsPerNode[i], plain.TrainedSteps[i], rich.StepsPerNode[i], rich.TrainedSteps[i])
		}
	}
}

// Harvest-coupled async runs stay bit-reproducible, on both trace
// families (the Markov chain is sampled once per node-round through the
// step integrator, on the same per-node streams as the round engines).
func TestAsyncHarvestDeterministic(t *testing.T) {
	for _, family := range []string{"diurnal", "markov"} {
		mk := func() Config {
			cfg := harvestConfig(t, 24, nil)
			if family == "diurnal" {
				cfg.Trace = scarceDiurnal(t, cfg)
			} else {
				cfg.Trace = scarceMarkov(t, cfg, 24)
			}
			return cfg
		}
		r1, err := Run(mk())
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(mk())
		if err != nil {
			t.Fatal(err)
		}
		if r1.FinalMeanAcc != r2.FinalMeanAcc || r1.Brownouts != r2.Brownouts ||
			r1.GossipsSent != r2.GossipsSent || r1.BrownoutShare != r2.BrownoutShare ||
			r1.ConsumedWh != r2.ConsumedWh || r1.HarvestedWh != r2.HarvestedWh {
			t.Fatalf("%s: runs differ: %+v vs %+v", family, r1, r2)
		}
		for i := range r1.StepsPerNode {
			if r1.StepsPerNode[i] != r2.StepsPerNode[i] {
				t.Fatalf("%s: node %d step counts differ", family, i)
			}
		}
	}
}

// The async telemetry stream — VTime-stamped brownouts, revivals, and
// eval-tick energy ledgers — must pass every auditor invariant on both
// trace families.
func TestAsyncHarvestAuditorClean(t *testing.T) {
	for _, family := range []string{"diurnal", "markov"} {
		cfg := harvestConfig(t, 25, nil)
		if family == "diurnal" {
			cfg.Trace = scarceDiurnal(t, cfg)
		} else {
			cfg.Trace = scarceMarkov(t, cfg, 25)
		}
		cfg.FleetOptions = harvest.Options{CapacityRounds: 4, InitialSoC: 0.15, CutoffSoC: 0.1, IdleWh: 0.3 * meanStepWh(cfg)}
		auditor := analyze.NewAuditor()
		mem := obs.NewMemory()
		cfg.Probe = obs.NewProbe(obs.Multi(mem, auditor))
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		auditor.Close()
		if !auditor.Ok() {
			t.Fatalf("%s: auditor found violations:\n%s", family, auditor.Summary())
		}
		if res.Brownouts > 0 && mem.Count(obs.KindBrownout) == 0 {
			t.Fatalf("%s: %d brown-outs but no brownout events", family, res.Brownouts)
		}
		if mem.Count(obs.KindRoundEnd) == 0 {
			t.Fatalf("%s: no ledger checkpoints in the stream", family)
		}
		// Ledger checkpoints and brownouts carry the virtual clock.
		for _, ev := range mem.Events() {
			if ev.Kind == obs.KindRoundEnd && ev.VTime <= 0 {
				t.Fatalf("%s: ledger checkpoint without virtual time: %+v", family, ev)
			}
		}
	}
}

// A revived node reports its outage length in trace rounds, and the
// alternation brownout → revival shows up in stream order.
func TestAsyncHarvestRevivalStaleness(t *testing.T) {
	cfg := harvestConfig(t, 26, nil)
	cfg.Trace = scarceDiurnal(t, cfg)
	cfg.FleetOptions = harvest.Options{CapacityRounds: 4, InitialSoC: 0.15, CutoffSoC: 0.1, IdleWh: 0.3 * meanStepWh(cfg)}
	mem := obs.NewMemory()
	cfg.Probe = obs.NewProbe(mem)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	revivals := 0
	downAt := map[int]float64{}
	for _, ev := range mem.Events() {
		switch ev.Kind {
		case obs.KindBrownout:
			downAt[ev.Node] = ev.VTime
		case obs.KindRevival:
			revivals++
			if _, ok := downAt[ev.Node]; !ok {
				t.Fatalf("revival of node %d without a prior brownout", ev.Node)
			}
			if ev.VTime < downAt[ev.Node] {
				t.Fatalf("node %d revived at %v before its brownout at %v", ev.Node, ev.VTime, downAt[ev.Node])
			}
			if ev.Staleness < 0 {
				t.Fatalf("negative staleness %d", ev.Staleness)
			}
			delete(downAt, ev.Node)
		}
	}
	if revivals == 0 {
		t.Fatal("no revival ever happened under a diurnal trace")
	}
}
