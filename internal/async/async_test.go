package async

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/harvest"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
)

func testConfig(t *testing.T, seed uint64) Config {
	t.Helper()
	g, err := graph.Regular(12, 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dataset.SyntheticConfig{Classes: 6, Dim: 8, Train: 480, Test: 240, Noise: 1.5, Seed: seed}
	train, test, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	part, err := dataset.ShardPartition(train, 12, 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Graph:   g,
		Algo:    core.SkipTrain(core.Gamma{GammaTrain: 2, GammaSync: 2}),
		Horizon: 200,
		ModelFactory: func(node int, r *rng.RNG) *nn.Network {
			return nn.LogisticRegression(8, 6, r)
		},
		LR: 0.1, BatchSize: 8, LocalSteps: 2,
		Partition: part, Test: test,
		Devices:          energy.AssignDevices(12, energy.Devices()),
		Workload:         energy.CIFAR10Workload(),
		EvalEverySeconds: 50,
		EvalSubsample:    120,
		Seed:             seed,
	}
}

func TestAsyncLearns(t *testing.T) {
	res, err := Run(testConfig(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalMeanAcc < 0.35 { // chance = 1/6
		t.Fatalf("async run did not learn: %.3f", res.FinalMeanAcc)
	}
	if res.GossipsSent == 0 {
		t.Fatal("no gossip happened")
	}
	if len(res.History) < 3 {
		t.Fatalf("expected periodic evaluations, got %d", len(res.History))
	}
}

func TestAsyncDeterministic(t *testing.T) {
	r1, err := Run(testConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(testConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if r1.FinalMeanAcc != r2.FinalMeanAcc || r1.GossipsSent != r2.GossipsSent {
		t.Fatalf("async runs differ: %.6f/%d vs %.6f/%d",
			r1.FinalMeanAcc, r1.GossipsSent, r2.FinalMeanAcc, r2.GossipsSent)
	}
	for i := range r1.StepsPerNode {
		if r1.StepsPerNode[i] != r2.StepsPerNode[i] {
			t.Fatal("per-node step counts differ across identical runs")
		}
	}
}

func TestAsyncHeterogeneousPacing(t *testing.T) {
	// The OnePlus Nord 2 (2.34 s/round) must complete more steps than the
	// Poco X3 (6.12 s/round) in the same horizon — the defining property
	// of the asynchronous engine.
	res, err := Run(testConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Devices assigned round-robin: index 2 is Nord 2, index 3 is Poco X3.
	fast := res.StepsPerNode[2] + res.StepsPerNode[6] + res.StepsPerNode[10]
	slow := res.StepsPerNode[3] + res.StepsPerNode[7] + res.StepsPerNode[11]
	if fast <= slow {
		t.Fatalf("fast devices took %d steps, slow took %d; pacing broken", fast, slow)
	}
}

func TestAsyncScheduleReducesEnergy(t *testing.T) {
	// SkipTrain(1,1) vs all-train at the same virtual horizon. Unlike the
	// synchronous engine, skipping does not halve energy here: a gossip
	// step is 10x faster than a training step, so a (1,1) node reaches its
	// next training step after 1 + 1/10 training-durations. The analytic
	// prediction is ratio = speedup/(speedup+1) = 0.909 — asynchronous
	// energy savings are governed by the sync/train *duration* ratio, not
	// the schedule alone. This is a genuine finding of the async extension
	// (see package docs) and the engine must match it.
	cfgSkip := testConfig(t, 4)
	cfgSkip.Algo = core.SkipTrain(core.Gamma{GammaTrain: 1, GammaSync: 1})
	skip, err := Run(cfgSkip)
	if err != nil {
		t.Fatal(err)
	}
	cfgFull := testConfig(t, 4)
	cfgFull.Algo = core.DPSGD()
	full, err := Run(cfgFull)
	if err != nil {
		t.Fatal(err)
	}
	ratio := skip.TotalTrainWh / full.TotalTrainWh
	want := cfgSkip.SyncSpeedup
	if want == 0 {
		want = 10
	}
	predicted := want / (want + 1)
	if math.Abs(ratio-predicted) > 0.06 {
		t.Fatalf("energy ratio %.3f, analytic prediction %.3f", ratio, predicted)
	}
	// With slow gossip (speedup 1), the saving approaches the synchronous
	// engine's one half.
	cfgSlow := testConfig(t, 4)
	cfgSlow.Algo = core.SkipTrain(core.Gamma{GammaTrain: 1, GammaSync: 1})
	cfgSlow.SyncSpeedup = 1
	slow, err := Run(cfgSlow)
	if err != nil {
		t.Fatal(err)
	}
	slowRatio := slow.TotalTrainWh / full.TotalTrainWh
	if math.Abs(slowRatio-0.5) > 0.08 {
		t.Fatalf("speedup-1 energy ratio %.3f, want ~0.5", slowRatio)
	}
	// Training steps obey the alternating pattern per node: trained steps
	// are about half of total steps.
	for i, steps := range skip.StepsPerNode {
		if steps < 2 {
			continue
		}
		frac := float64(skip.TrainedSteps[i]) / float64(steps)
		if frac < 0.3 || frac > 0.7 {
			t.Fatalf("node %d trained %.0f%% of steps under (1,1) schedule", i, frac*100)
		}
	}
}

func TestAsyncConsensusShrinks(t *testing.T) {
	cfg := testConfig(t, 5)
	// Gossip-only run: zero budgets mean nobody ever trains, so gossip
	// must contract the consensus distance.
	cfg.Algo = core.Greedy(energy.NewBudget(make([]int, 12)))
	cfg.EvalEverySeconds = 25
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := res.History[0].Consensus
	last := res.History[len(res.History)-1].Consensus
	if last >= first {
		t.Fatalf("gossip did not contract consensus: %.4f -> %.4f", first, last)
	}
}

func TestAsyncBudgetRespected(t *testing.T) {
	cfg := testConfig(t, 6)
	budgets := make([]int, 12)
	for i := range budgets {
		budgets[i] = 3
	}
	cfg.Algo = core.Greedy(energy.NewBudget(budgets))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range res.TrainedSteps {
		if tr > 3 {
			t.Fatalf("node %d trained %d steps with budget 3", i, tr)
		}
	}
}

func TestAsyncStepsCap(t *testing.T) {
	cfg := testConfig(t, 7)
	cfg.StepsPerNode = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.StepsPerNode {
		if s > 5 {
			t.Fatalf("node %d took %d steps, cap is 5", i, s)
		}
	}
}

func TestAsyncValidation(t *testing.T) {
	mutations := map[string]func(*Config){
		"nil graph":  func(c *Config) { c.Graph = nil },
		"horizon":    func(c *Config) { c.Horizon = 0 },
		"factory":    func(c *Config) { c.ModelFactory = nil },
		"lr":         func(c *Config) { c.LR = 0 },
		"nil test":   func(c *Config) { c.Test = nil },
		"devices":    func(c *Config) { c.Devices = c.Devices[:3] },
		"partition":  func(c *Config) { c.Partition = c.Partition[:3] },
		"nil policy": func(c *Config) { c.Algo.Policy = nil },
		// Battery/forecast policies run natively when a trace is attached
		// (see harvest_test.go); without one they would silently never
		// train, so the config is rejected.
		"battery policy": func(c *Config) {
			p, err := harvest.NewSoCThreshold(0.2)
			if err != nil {
				t.Fatal(err)
			}
			c.Algo.Policy = p
		},
		"forecast policy": func(c *Config) {
			p, err := harvest.NewHorizonPlan(0.05)
			if err != nil {
				t.Fatal(err)
			}
			c.Algo.Policy = p
		},
	}
	for name, mutate := range mutations {
		cfg := testConfig(t, 8)
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Fatalf("%s: want validation error", name)
		}
	}
	// Harvest-specific knobs need a consistent configuration too.
	harvestMutations := map[string]func(*Config){
		"negative round seconds": func(c *Config) { c.RoundSeconds = -1 },
		"forecast without trace": func(c *Config) {
			o, err := harvest.NewOracle(harvest.Constant{Wh: 0.01})
			if err != nil {
				t.Fatal(err)
			}
			c.Forecast = o
			c.ForecastHorizon = 4
		},
		"fhorizon without forecast": func(c *Config) { c.ForecastHorizon = 4 },
		"forecast without horizon": func(c *Config) {
			c.Trace = harvest.Constant{Wh: 0.01}
			o, err := harvest.NewOracle(harvest.Constant{Wh: 0.01})
			if err != nil {
				t.Fatal(err)
			}
			c.Forecast = o
		},
		"learning forecaster": func(c *Config) {
			c.Trace = harvest.Constant{Wh: 0.01}
			p, err := harvest.NewPersistence(12, 6)
			if err != nil {
				t.Fatal(err)
			}
			c.Forecast = p
			c.ForecastHorizon = 4
		},
		"bad fleet options": func(c *Config) {
			c.Trace = harvest.Constant{Wh: 0.01}
			c.FleetOptions = harvest.Options{CutoffSoC: 2}
		},
	}
	for name, mutate := range harvestMutations {
		cfg := testConfig(t, 8)
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Fatalf("%s: want validation error", name)
		}
	}
}

func TestAsyncEnergyAccountingMatchesSteps(t *testing.T) {
	cfg := testConfig(t, 9)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i, tr := range res.TrainedSteps {
		want += float64(tr) * cfg.Devices[i].TrainRoundWh(cfg.Workload)
	}
	if math.Abs(res.TotalTrainWh-want) > 1e-9 {
		t.Fatalf("energy %.6f, expected %.6f from step counts", res.TotalTrainWh, want)
	}
}

func TestEventQueueOrdering(t *testing.T) {
	q := &eventQueue{}
	*q = append(*q, event{time: 2, node: 0, seq: 0}, event{time: 1, node: 1, seq: 1},
		event{time: 1, node: 2, seq: 2})
	// heap.Init via Run path; test Less directly.
	if !(*q).Less(1, 0) {
		t.Fatal("earlier time must order first")
	}
	if !(*q).Less(1, 2) {
		t.Fatal("equal times must order by sequence")
	}
}

// Telemetry must be invisible to the async engine too: identical results
// with a probe attached, plus a stamped manifest and a closed event stream.
func TestAsyncTelemetry(t *testing.T) {
	plain, err := Run(testConfig(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, 5)
	mem := obs.NewMemory()
	cfg.Probe = obs.NewProbe(mem)
	probed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.FinalMeanAcc != probed.FinalMeanAcc || plain.GossipsSent != probed.GossipsSent {
		t.Fatal("telemetry changed the async run")
	}
	if probed.Manifest.Engine != "async" || probed.Manifest.ConfigHash == "" {
		t.Fatalf("bad manifest: %+v", probed.Manifest)
	}
	if plain.Manifest.ConfigHash != probed.Manifest.ConfigHash {
		t.Fatal("identical configs hashed differently")
	}
	if mem.Count(obs.KindRunStart) != 1 || mem.Count(obs.KindRunEnd) != 1 {
		t.Fatalf("run events: %d start, %d end", mem.Count(obs.KindRunStart), mem.Count(obs.KindRunEnd))
	}
	if got, want := mem.Count(obs.KindEval), len(probed.History); got != want {
		t.Fatalf("eval events = %d, want %d (one per snapshot)", got, want)
	}
	for _, ev := range mem.Events() {
		if ev.Kind == obs.KindEval && ev.VTime <= 0 {
			t.Fatalf("eval event missing virtual time: %+v", ev)
		}
	}
}

// Eval ticks are heap events now, so a sparse event stream cannot skip
// evaluation periods: two slow nodes stepping every ~6 virtual seconds
// with a 5-second eval period must still produce every snapshot. The old
// pop-coupled catch-up fired at most one eval per popped event and
// silently dropped the rest.
func TestAsyncEvalCatchUpOnSparseStreams(t *testing.T) {
	g, err := graph.Complete(2)
	if err != nil {
		t.Fatal(err)
	}
	cfgData := dataset.SyntheticConfig{Classes: 4, Dim: 6, Train: 64, Test: 64, Noise: 1.5, Seed: 11}
	train, test, err := dataset.Generate(cfgData)
	if err != nil {
		t.Fatal(err)
	}
	part, err := dataset.ShardPartition(train, 2, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	devices := energy.Devices()
	slow := []energy.Device{devices[3], devices[3]} // Poco X3: 6.12 s/step
	cfg := Config{
		Graph:   g,
		Algo:    core.DPSGD(),
		Horizon: 100,
		ModelFactory: func(node int, r *rng.RNG) *nn.Network {
			return nn.LogisticRegression(6, 4, r)
		},
		LR: 0.1, BatchSize: 8, LocalSteps: 1,
		Partition: part, Test: test,
		Devices:          slow,
		Workload:         energy.CIFAR10Workload(),
		EvalEverySeconds: 5,
		Seed:             11,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Ticks at 5, 10, ..., 95 plus the final evaluation at the horizon.
	if want := 20; len(res.History) != want {
		t.Fatalf("history has %d snapshots, want %d", len(res.History), want)
	}
	for i, snap := range res.History[:len(res.History)-1] {
		if want := float64(i+1) * 5; snap.Time != want {
			t.Fatalf("snapshot %d at t=%v, want %v", i, snap.Time, want)
		}
	}
	if last := res.History[len(res.History)-1]; last.Time != 100 {
		t.Fatalf("final snapshot at t=%v, want horizon 100", last.Time)
	}
}

// horizonRecorder captures the contexts a policy sees.
type horizonRecorder struct {
	horizons map[int][]int
}

func (h *horizonRecorder) Participate(node int, ctx core.RoundContext, _ *rng.RNG) bool {
	if h.horizons == nil {
		h.horizons = map[int][]int{}
	}
	h.horizons[node] = append(h.horizons[node], ctx.Horizon)
	return true
}

func (h *horizonRecorder) Name() string { return "horizon-recorder" }

// The async engine threads a real step-count horizon into every round
// context (the old engine hardcoded 0, degenerating horizon-aware
// schedules). Each node's horizon is how many of its training-step
// durations fit in the virtual horizon, clamped by StepsPerNode.
func TestAsyncContextCarriesHorizon(t *testing.T) {
	cfg := testConfig(t, 12)
	rec := &horizonRecorder{}
	cfg.Algo = core.Algorithm{Label: "rec", Schedule: core.AllTrain{}, Policy: rec}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	for node, hs := range rec.horizons {
		want := int(math.Ceil(cfg.Horizon / cfg.Devices[node].TrainRoundSeconds(cfg.Workload)))
		for _, h := range hs {
			if h != want {
				t.Fatalf("node %d saw horizon %d, want %d", node, h, want)
			}
		}
	}
	capped := testConfig(t, 12)
	capped.StepsPerNode = 3
	rec2 := &horizonRecorder{}
	capped.Algo = core.Algorithm{Label: "rec", Schedule: core.AllTrain{}, Policy: rec2}
	if _, err := Run(capped); err != nil {
		t.Fatal(err)
	}
	for node, hs := range rec2.horizons {
		for _, h := range hs {
			if h != 3 {
				t.Fatalf("node %d saw horizon %d with StepsPerNode 3", node, h)
			}
		}
	}
}
