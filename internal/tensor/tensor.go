// Package tensor implements the dense float64 vector and matrix kernels the
// learning stack is built on. It is deliberately small: decentralized
// learning needs vector arithmetic for model mixing (weighted averaging of
// flat parameter vectors) and matrix-vector products for dense layers.
//
// All kernels are allocation-free when given destination slices, so the hot
// training loop produces no garbage. Parallel variants split work across
// goroutines for the large vectors that appear when mixing whole models.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Zero sets every element of v to 0.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every element of v to x.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// AddTo computes dst = a + b. The three slices must have equal length.
func AddTo(dst, a, b Vector) {
	checkLen3(len(dst), len(a), len(b))
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// SubTo computes dst = a - b.
func SubTo(dst, a, b Vector) {
	checkLen3(len(dst), len(a), len(b))
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// ScaleTo computes dst = s * a.
func ScaleTo(dst Vector, s float64, a Vector) {
	checkLen2(len(dst), len(a))
	for i := range dst {
		dst[i] = s * a[i]
	}
}

// AXPY computes dst += alpha * x, the workhorse of both SGD updates and
// weighted model aggregation.
func AXPY(dst Vector, alpha float64, x Vector) {
	checkLen2(len(dst), len(x))
	for i, xv := range x {
		dst[i] += alpha * xv
	}
}

// Dot returns the inner product of a and b.
func Dot(a, b Vector) float64 {
	checkLen2(len(a), len(b))
	s := 0.0
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v Vector) float64 { return math.Sqrt(Dot(v, v)) }

// Dist2 returns the Euclidean distance between a and b.
func Dist2(a, b Vector) float64 {
	checkLen2(len(a), len(b))
	s := 0.0
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Sum returns the sum of the elements of v.
func Sum(v Vector) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty vector.
func Mean(v Vector) float64 {
	if len(v) == 0 {
		return 0
	}
	return Sum(v) / float64(len(v))
}

// Std returns the population standard deviation of v.
func Std(v Vector) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	s := 0.0
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}

// ArgMax returns the index of the largest element of v; ties resolve to the
// lowest index. It panics on an empty vector.
func ArgMax(v Vector) int {
	if len(v) == 0 {
		panic("tensor: ArgMax of empty vector")
	}
	best, bi := v[0], 0
	for i := 1; i < len(v); i++ {
		if v[i] > best {
			best, bi = v[i], i
		}
	}
	return bi
}

// WeightedSumTo computes dst = sum_k weights[k] * vecs[k]. All vectors must
// share dst's length. This is the aggregation step of D-PSGD (Algorithm 1,
// line 8): the new model is the W-weighted average of neighborhood models.
func WeightedSumTo(dst Vector, weights []float64, vecs []Vector) {
	if len(weights) != len(vecs) {
		panic(fmt.Sprintf("tensor: %d weights for %d vectors", len(weights), len(vecs)))
	}
	dst.Zero()
	for k, w := range weights {
		AXPY(dst, w, vecs[k])
	}
}

// MeanVectorTo computes dst = the element-wise mean of vecs, the all-reduce
// consensus model. It panics when vecs is empty.
func MeanVectorTo(dst Vector, vecs []Vector) {
	if len(vecs) == 0 {
		panic("tensor: mean of no vectors")
	}
	dst.Zero()
	inv := 1.0 / float64(len(vecs))
	for _, v := range vecs {
		AXPY(dst, inv, v)
	}
}

// parallelThreshold is the vector length below which parallel kernels fall
// back to the serial path; goroutine fan-out only pays off for big models.
const parallelThreshold = 1 << 14

// ParallelAXPY computes dst += alpha * x using all available cores for
// large vectors.
func ParallelAXPY(dst Vector, alpha float64, x Vector) {
	checkLen2(len(dst), len(x))
	n := len(dst)
	workers := runtime.GOMAXPROCS(0)
	if n < parallelThreshold || workers < 2 {
		AXPY(dst, alpha, x)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			d, s := dst[lo:hi], x[lo:hi]
			for i, xv := range s {
				d[i] += alpha * xv
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MatVecTo computes dst = m * x (dst length Rows, x length Cols).
func MatVecTo(dst Vector, m *Matrix, x Vector) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch: (%dx%d) * %d -> %d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, w := range row {
			s += w * x[j]
		}
		dst[i] = s
	}
}

// MatTVecTo computes dst = m^T * x (dst length Cols, x length Rows).
func MatTVecTo(dst Vector, m *Matrix, x Vector) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: MatTVec shape mismatch: (%dx%d)^T * %d -> %d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	dst.Zero()
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, w := range row {
			dst[j] += w * xi
		}
	}
}

// OuterAcc accumulates m += a * b^T (a length Rows, b length Cols), used for
// dense-layer weight gradients.
func OuterAcc(m *Matrix, a, b Vector) {
	if len(a) != m.Rows || len(b) != m.Cols {
		panic(fmt.Sprintf("tensor: Outer shape mismatch: %d x %d into (%dx%d)",
			len(a), len(b), m.Rows, m.Cols))
	}
	for i, av := range a {
		if av == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, bv := range b {
			row[j] += av * bv
		}
	}
}

// MatMulTo computes dst = a * b. Shapes must satisfy a.Cols == b.Rows,
// dst.Rows == a.Rows, dst.Cols == b.Cols. dst must not alias a or b.
func MatMulTo(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch: (%dx%d)*(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

func checkLen2(a, b int) {
	if a != b {
		panic(fmt.Sprintf("tensor: length mismatch %d vs %d", a, b))
	}
}

func checkLen3(a, b, c int) {
	if a != b || b != c {
		panic(fmt.Sprintf("tensor: length mismatch %d vs %d vs %d", a, b, c))
	}
}
