package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

const eps = 1e-12

func almost(a, b float64) bool { return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b)) }

func TestAddSubScale(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{4, 5, 6}
	dst := NewVector(3)
	AddTo(dst, a, b)
	for i, want := range []float64{5, 7, 9} {
		if dst[i] != want {
			t.Fatalf("AddTo[%d] = %v", i, dst[i])
		}
	}
	SubTo(dst, b, a)
	for i, want := range []float64{3, 3, 3} {
		if dst[i] != want {
			t.Fatalf("SubTo[%d] = %v", i, dst[i])
		}
	}
	ScaleTo(dst, 2, a)
	for i, want := range []float64{2, 4, 6} {
		if dst[i] != want {
			t.Fatalf("ScaleTo[%d] = %v", i, dst[i])
		}
	}
}

func TestAXPY(t *testing.T) {
	dst := Vector{1, 1, 1}
	AXPY(dst, 3, Vector{1, 2, 3})
	for i, want := range []float64{4, 7, 10} {
		if dst[i] != want {
			t.Fatalf("AXPY[%d] = %v", i, dst[i])
		}
	}
}

func TestDotNormDist(t *testing.T) {
	if got := Dot(Vector{1, 2}, Vector{3, 4}); got != 11 {
		t.Fatalf("Dot = %v", got)
	}
	if got := Norm2(Vector{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v", got)
	}
	if got := Dist2(Vector{1, 1}, Vector{4, 5}); got != 5 {
		t.Fatalf("Dist2 = %v", got)
	}
}

func TestStats(t *testing.T) {
	v := Vector{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(v) != 5 {
		t.Fatalf("Mean = %v", Mean(v))
	}
	if Std(v) != 2 {
		t.Fatalf("Std = %v", Std(v))
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("empty vector stats should be 0")
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax(Vector{1, 5, 3}) != 1 {
		t.Fatal("ArgMax basic")
	}
	if ArgMax(Vector{5, 5, 3}) != 0 {
		t.Fatal("ArgMax tie should pick lowest index")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ArgMax(empty) should panic")
		}
	}()
	ArgMax(nil)
}

func TestWeightedSum(t *testing.T) {
	dst := NewVector(2)
	WeightedSumTo(dst, []float64{0.5, 0.5}, []Vector{{2, 4}, {6, 8}})
	if dst[0] != 4 || dst[1] != 6 {
		t.Fatalf("WeightedSumTo = %v", dst)
	}
}

func TestWeightedSumDoublyStochasticFixedPoint(t *testing.T) {
	// Property: if all inputs equal x, any weights summing to 1 return x.
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		k := 2 + r.Intn(5)
		w := make([]float64, k)
		sum := 0.0
		for i := range w {
			w[i] = r.Float64()
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
		x := Vector{1.5, -2.5, 3.25}
		vecs := make([]Vector, k)
		for i := range vecs {
			vecs[i] = x.Clone()
		}
		dst := NewVector(3)
		WeightedSumTo(dst, w, vecs)
		for i := range dst {
			if !almost(dst[i], x[i]) {
				t.Fatalf("consensus fixed point violated: %v vs %v", dst, x)
			}
		}
	}
}

func TestMeanVector(t *testing.T) {
	dst := NewVector(2)
	MeanVectorTo(dst, []Vector{{1, 2}, {3, 4}, {5, 6}})
	if dst[0] != 3 || dst[1] != 4 {
		t.Fatalf("MeanVectorTo = %v", dst)
	}
}

func TestParallelAXPYMatchesSerial(t *testing.T) {
	r := rng.New(2)
	for _, n := range []int{0, 1, 100, parallelThreshold, parallelThreshold + 17, 1 << 16} {
		x := NewVector(n)
		d1 := NewVector(n)
		for i := range x {
			x[i] = r.NormFloat64()
			d1[i] = r.NormFloat64()
		}
		d2 := d1.Clone()
		AXPY(d1, 0.37, x)
		ParallelAXPY(d2, 0.37, x)
		for i := range d1 {
			if d1[i] != d2[i] {
				t.Fatalf("n=%d: parallel differs from serial at %d", n, i)
			}
		}
	}
}

func TestMatVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	dst := NewVector(2)
	MatVecTo(dst, m, Vector{1, 1, 1})
	if dst[0] != 6 || dst[1] != 15 {
		t.Fatalf("MatVecTo = %v", dst)
	}
}

func TestMatTVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	dst := NewVector(3)
	MatTVecTo(dst, m, Vector{1, 2})
	want := []float64{9, 12, 15}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MatTVecTo = %v", dst)
		}
	}
}

func TestOuterAcc(t *testing.T) {
	m := NewMatrix(2, 2)
	OuterAcc(m, Vector{1, 2}, Vector{3, 4})
	want := []float64{3, 4, 6, 8}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("OuterAcc = %v", m.Data)
		}
	}
	OuterAcc(m, Vector{1, 0}, Vector{1, 1}) // accumulation, zero-skip path
	if m.Data[0] != 4 || m.Data[1] != 5 || m.Data[2] != 6 {
		t.Fatalf("OuterAcc accumulate = %v", m.Data)
	}
}

func TestMatMul(t *testing.T) {
	a := NewMatrix(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	b := NewMatrix(3, 2)
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	dst := NewMatrix(2, 2)
	MatMulTo(dst, a, b)
	want := []float64{58, 64, 139, 154}
	for i := range want {
		if dst.Data[i] != want[i] {
			t.Fatalf("MatMulTo = %v", dst.Data)
		}
	}
}

func TestMatVecTransposeConsistency(t *testing.T) {
	// Property: y^T (M x) == (M^T y)^T x for random shapes.
	r := rng.New(3)
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+r.Intn(8), 1+r.Intn(8)
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = r.NormFloat64()
		}
		x, y := NewVector(cols), NewVector(rows)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		for i := range y {
			y[i] = r.NormFloat64()
		}
		mx, mty := NewVector(rows), NewVector(cols)
		MatVecTo(mx, m, x)
		MatTVecTo(mty, m, y)
		if !almost(Dot(y, mx), Dot(mty, x)) {
			t.Fatalf("adjoint identity violated: %v vs %v", Dot(y, mx), Dot(mty, x))
		}
	}
}

func TestShapePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"AddTo":    func() { AddTo(NewVector(2), NewVector(3), NewVector(2)) },
		"AXPY":     func() { AXPY(NewVector(2), 1, NewVector(3)) },
		"Dot":      func() { Dot(NewVector(2), NewVector(3)) },
		"MatVec":   func() { MatVecTo(NewVector(2), NewMatrix(2, 3), NewVector(2)) },
		"MatTVec":  func() { MatTVecTo(NewVector(2), NewMatrix(2, 3), NewVector(2)) },
		"Outer":    func() { OuterAcc(NewMatrix(2, 2), NewVector(3), NewVector(2)) },
		"MatMul":   func() { MatMulTo(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(2, 2)) },
		"Weighted": func() { WeightedSumTo(NewVector(1), []float64{1}, nil) },
		"MeanVec":  func() { MeanVectorTo(NewVector(1), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: want panic on shape mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(3, 2)
	m.Set(1, 1, 42)
	if m.At(1, 1) != 42 {
		t.Fatal("Set/At roundtrip")
	}
	row := m.Row(1)
	row[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row should be a view")
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone should be deep")
	}
}

func TestVectorCloneZeroFill(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 9
	if v[0] != 1 {
		t.Fatal("Clone aliases source")
	}
	v.Fill(5)
	if v[2] != 5 {
		t.Fatal("Fill failed")
	}
	v.Zero()
	if Sum(v) != 0 {
		t.Fatal("Zero failed")
	}
}

func TestDotCommutativeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) > 32 {
			raw = raw[:32]
		}
		a := Vector(raw)
		b := make(Vector, len(a))
		for i := range b {
			b[i] = float64(i) - 3.5
		}
		d1, d2 := Dot(a, b), Dot(b, a)
		return (math.IsNaN(d1) && math.IsNaN(d2)) || d1 == d2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAXPY90K(b *testing.B) {
	// Model-size vector: the CIFAR-10 CNN of the paper has 89,834 params.
	x, d := NewVector(89834), NewVector(89834)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AXPY(d, 0.5, x)
	}
}

func BenchmarkParallelAXPY1M7(b *testing.B) {
	// FEMNIST CNN of the paper: 1,690,046 params.
	x, d := NewVector(1690046), NewVector(1690046)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ParallelAXPY(d, 0.5, x)
	}
}
