package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRing(t *testing.T) {
	g, err := Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsRegular(2) || !g.IsConnected() || !g.IsSymmetric() {
		t.Fatal("ring(5) should be 2-regular, connected, symmetric")
	}
	if !g.HasEdge(0, 4) || !g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Fatal("ring adjacency wrong")
	}
	if _, err := Ring(2); err == nil {
		t.Fatal("ring(2) should error")
	}
}

func TestComplete(t *testing.T) {
	g, err := Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsRegular(5) || g.NumEdges() != 15 {
		t.Fatal("complete(6) wrong")
	}
	if _, err := Complete(1); err == nil {
		t.Fatal("complete(1) should error")
	}
}

func TestCirculantEvenDegree(t *testing.T) {
	g, err := Circulant(10, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsRegular(6) || !g.IsConnected() || !g.IsSymmetric() {
		t.Fatal("circulant(10, 1..3) should be 6-regular")
	}
}

func TestCirculantHalfOffset(t *testing.T) {
	// Offset n/2 on even n contributes one edge -> odd degree possible.
	g, err := Circulant(8, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsRegular(3) {
		t.Fatalf("circulant(8, {1,4}) degrees: %d", g.Degree(0))
	}
}

func TestCirculantValidation(t *testing.T) {
	if _, err := Circulant(8, []int{0}); err == nil {
		t.Fatal("offset 0 should error")
	}
	if _, err := Circulant(8, []int{5}); err == nil {
		t.Fatal("offset > n/2 should error")
	}
	if _, err := Circulant(8, []int{2, 2}); err == nil {
		t.Fatal("duplicate offset should error")
	}
}

func TestRegularPaperTopologies(t *testing.T) {
	// The paper's exact settings: 256 nodes, d in {6, 8, 10}.
	for _, d := range []int{6, 8, 10} {
		g, err := Regular(256, d, 42)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsRegular(d) {
			t.Fatalf("%d-regular graph is not regular", d)
		}
		if !g.IsConnected() {
			t.Fatalf("%d-regular graph is not connected", d)
		}
		if !g.IsSymmetric() {
			t.Fatalf("%d-regular graph is not symmetric", d)
		}
	}
}

func TestRegularSmall(t *testing.T) {
	g, err := Regular(8, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsRegular(3) || !g.IsConnected() {
		t.Fatal("Regular(8,3) invalid")
	}
}

func TestRegularValidation(t *testing.T) {
	if _, err := Regular(5, 3, 1); err == nil {
		t.Fatal("odd n*d should error")
	}
	if _, err := Regular(4, 4, 1); err == nil {
		t.Fatal("d >= n should error")
	}
	if _, err := Regular(10, 1, 1); err == nil {
		t.Fatal("d < 2 should error")
	}
}

func TestRegularDeterministic(t *testing.T) {
	a, _ := Regular(32, 4, 7)
	b, _ := Regular(32, 4, 7)
	for i := 0; i < 32; i++ {
		if len(a.Adj[i]) != len(b.Adj[i]) {
			t.Fatal("Regular not deterministic")
		}
		for k := range a.Adj[i] {
			if a.Adj[i][k] != b.Adj[i][k] {
				t.Fatal("Regular not deterministic")
			}
		}
	}
}

func TestRegularProperty(t *testing.T) {
	f := func(seed uint64, nRaw, dRaw uint8) bool {
		n := 8 + int(nRaw)%56 // 8..63
		d := 2 + int(dRaw)%5  // 2..6
		if d >= n || n*d%2 != 0 {
			return true
		}
		g, err := Regular(n, d, seed)
		if err != nil {
			return false
		}
		return g.IsRegular(d) && g.IsConnected() && g.IsSymmetric()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMetropolisDoublyStochastic(t *testing.T) {
	for _, d := range []int{6, 8, 10} {
		g, _ := Regular(64, d, 3)
		w := Metropolis(g)
		if err := w.CheckDoublyStochastic(g, 1e-12); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if err := w.CheckSymmetric(g, 1e-12); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
	}
}

func TestMetropolisIrregularGraph(t *testing.T) {
	// A path graph: degrees 1 and 2; Metropolis must stay doubly stochastic.
	g := &Graph{N: 4, Adj: [][]int{{1}, {0, 2}, {1, 3}, {2}}}
	w := Metropolis(g)
	if err := w.CheckDoublyStochastic(g, 1e-12); err != nil {
		t.Fatal(err)
	}
	// W_01 = 1/(max(1,2)+1) = 1/3.
	if math.Abs(w.Nbr[0][0]-1.0/3) > 1e-12 {
		t.Fatalf("W_01 = %v, want 1/3", w.Nbr[0][0])
	}
}

func TestUniformOnRegularEqualsMetropolis(t *testing.T) {
	g, _ := Regular(32, 4, 5)
	mh, un := Metropolis(g), Uniform(g)
	for i := 0; i < g.N; i++ {
		if math.Abs(mh.Self[i]-un.Self[i]) > 1e-12 {
			t.Fatal("MH != uniform on regular graph")
		}
		for k := range mh.Nbr[i] {
			if math.Abs(mh.Nbr[i][k]-un.Nbr[i][k]) > 1e-12 {
				t.Fatal("MH != uniform on regular graph")
			}
		}
	}
}

func TestUniformNotDoublyStochasticOnIrregular(t *testing.T) {
	g := &Graph{N: 4, Adj: [][]int{{1}, {0, 2}, {1, 3}, {2}}}
	if err := Uniform(g).CheckDoublyStochastic(g, 1e-12); err == nil {
		t.Fatal("uniform weights on a path should not be doubly stochastic")
	}
}

func TestApplyPreservesConsensus(t *testing.T) {
	g, _ := Regular(16, 4, 9)
	w := Metropolis(g)
	src := make([]float64, 16)
	for i := range src {
		src[i] = 3.25
	}
	dst := make([]float64, 16)
	w.Apply(g, dst, src)
	for i, v := range dst {
		if math.Abs(v-3.25) > 1e-12 {
			t.Fatalf("consensus not fixed point at %d: %v", i, v)
		}
	}
}

func TestApplyPreservesMean(t *testing.T) {
	// Doubly stochastic => mean preserved (sum invariance).
	g, _ := Regular(16, 6, 10)
	w := Metropolis(g)
	src := make([]float64, 16)
	for i := range src {
		src[i] = float64(i * i % 7)
	}
	sum := 0.0
	for _, v := range src {
		sum += v
	}
	dst := make([]float64, 16)
	w.Apply(g, dst, src)
	sum2 := 0.0
	for _, v := range dst {
		sum2 += v
	}
	if math.Abs(sum-sum2) > 1e-9 {
		t.Fatalf("mean not preserved: %v -> %v", sum, sum2)
	}
}

func TestSpectralGapOrdering(t *testing.T) {
	// Denser regular topologies mix faster: gap(d=10) > gap(d=6) > gap(ring).
	ring, _ := Ring(64)
	g6, _ := Regular(64, 6, 1)
	g10, _ := Regular(64, 10, 1)
	gapRing := Metropolis(ring).SpectralGap(ring, 300, 1)
	gap6 := Metropolis(g6).SpectralGap(g6, 300, 1)
	gap10 := Metropolis(g10).SpectralGap(g10, 300, 1)
	if !(gap10 > gap6 && gap6 > gapRing) {
		t.Fatalf("spectral gaps out of order: ring=%v d6=%v d10=%v", gapRing, gap6, gap10)
	}
}

func TestSpectralGapComplete(t *testing.T) {
	// Complete graph with MH weights mixes in one step: lambda_2 = 0, gap = 1.
	g, _ := Complete(16)
	gap := Metropolis(g).SpectralGap(g, 100, 2)
	if math.Abs(gap-1) > 1e-6 {
		t.Fatalf("complete graph gap = %v, want 1", gap)
	}
}

func TestSpectralGapRingAnalytic(t *testing.T) {
	// For the n-cycle with MH weights (1/3 self, 1/3 each neighbor),
	// lambda_2 = 1/3 + 2/3*cos(2*pi/n).
	n := 32
	ring, _ := Ring(n)
	gap := Metropolis(ring).SpectralGap(ring, 2000, 3)
	want := 1 - (1.0/3 + 2.0/3*math.Cos(2*math.Pi/float64(n)))
	if math.Abs(gap-want) > 1e-4 {
		t.Fatalf("ring gap = %v, want %v", gap, want)
	}
}

func TestNumEdgesRegular(t *testing.T) {
	g, _ := Regular(20, 6, 11)
	if g.NumEdges() != 20*6/2 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
}

func TestDisconnectedDetection(t *testing.T) {
	g := &Graph{N: 4, Adj: [][]int{{1}, {0}, {3}, {2}}}
	if g.IsConnected() {
		t.Fatal("two components reported connected")
	}
}
