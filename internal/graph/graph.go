package graph

import (
	"fmt"
	"hash/fnv"

	"repro/internal/rng"
)

// Graph is an undirected graph as adjacency lists. Neighbor lists are
// sorted, contain no duplicates, and never include the node itself.
type Graph struct {
	N   int
	Adj [][]int
}

// Degree returns the degree of node i.
func (g *Graph) Degree(i int) int { return len(g.Adj[i]) }

// Fingerprint hashes the topology — node count plus full adjacency — into
// a stable 64-bit digest (FNV-1a). Runs on different graphs never share a
// fingerprint, so it anchors the run manifests' config hashes.
func (g *Graph) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(g.N))
	for i, adj := range g.Adj {
		put(uint64(i)<<32 | uint64(len(adj)))
		for _, j := range adj {
			put(uint64(j))
		}
	}
	return h.Sum64()
}

// HasEdge reports whether (i, j) is an edge.
func (g *Graph) HasEdge(i, j int) bool {
	for _, k := range g.Adj[i] {
		if k == j {
			return true
		}
	}
	return false
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, nbrs := range g.Adj {
		total += len(nbrs)
	}
	return total / 2
}

// IsRegular reports whether every node has degree d.
func (g *Graph) IsRegular(d int) bool {
	for i := 0; i < g.N; i++ {
		if g.Degree(i) != d {
			return false
		}
	}
	return true
}

// IsConnected reports whether the graph is connected (BFS from node 0).
// The empty graph and the single-node graph are connected.
func (g *Graph) IsConnected() bool {
	if g.N <= 1 {
		return true
	}
	seen := make([]bool, g.N)
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count == g.N
}

// IsSymmetric reports whether every edge appears in both adjacency lists.
func (g *Graph) IsSymmetric() bool {
	for i := 0; i < g.N; i++ {
		for _, j := range g.Adj[i] {
			if !g.HasEdge(j, i) {
				return false
			}
		}
	}
	return true
}

// Ring returns the cycle graph on n nodes (2-regular for n >= 3).
func Ring(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: ring needs >= 3 nodes, got %d", n)
	}
	return Circulant(n, []int{1})
}

// Complete returns the fully connected graph on n nodes.
func Complete(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: complete graph needs >= 2 nodes, got %d", n)
	}
	g := &Graph{N: n, Adj: make([][]int, n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				g.Adj[i] = append(g.Adj[i], j)
			}
		}
	}
	return g, nil
}

// Circulant returns the circulant graph where node i connects to
// i ± off (mod n) for every offset off. Offsets must lie in [1, n/2].
// An offset of exactly n/2 (n even) contributes a single edge, so degree
// is 2*len(offsets) or 2*len(offsets)-1 in that case.
func Circulant(n int, offsets []int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: circulant needs >= 3 nodes, got %d", n)
	}
	g := &Graph{N: n, Adj: make([][]int, n)}
	seen := map[int]bool{}
	for _, off := range offsets {
		if off < 1 || off > n/2 {
			return nil, fmt.Errorf("graph: circulant offset %d out of [1,%d]", off, n/2)
		}
		if seen[off] {
			return nil, fmt.Errorf("graph: duplicate circulant offset %d", off)
		}
		seen[off] = true
	}
	for i := 0; i < n; i++ {
		for _, off := range offsets {
			j := (i + off) % n
			k := (i - off + n) % n
			g.Adj[i] = append(g.Adj[i], j)
			if k != j {
				g.Adj[i] = append(g.Adj[i], k)
			}
		}
	}
	sortAdj(g)
	return g, nil
}

// Regular returns a connected d-regular graph on n nodes. It first tries
// random regular graphs via stub matching (the standard pairing model) and
// falls back to a circulant construction if sampling fails repeatedly.
// n*d must be even and d < n.
func Regular(n, d int, seed uint64) (*Graph, error) {
	if d < 2 || d >= n {
		return nil, fmt.Errorf("graph: degree %d invalid for %d nodes", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: n*d must be even (n=%d, d=%d)", n, d)
	}
	r := rng.Derive(seed, 0x9a4f)
	for attempt := 0; attempt < 100; attempt++ {
		g, ok := tryPairing(n, d, r)
		if ok && g.IsConnected() {
			return g, nil
		}
	}
	// Deterministic fallback: circulant with offsets 1..d/2 (+ n/2 if odd d).
	offsets := make([]int, 0, d/2+1)
	for k := 1; k <= d/2; k++ {
		offsets = append(offsets, k)
	}
	if d%2 == 1 {
		offsets = append(offsets, n/2)
	}
	g, err := Circulant(n, offsets)
	if err != nil {
		return nil, err
	}
	if !g.IsRegular(d) || !g.IsConnected() {
		return nil, fmt.Errorf("graph: could not build %d-regular graph on %d nodes", d, n)
	}
	return g, nil
}

// tryPairing runs the pairing/configuration model with edge-swap repair:
// d stubs per node are randomly matched, then self-loops and multi-edges
// are removed by double-edge swaps. Plain rejection sampling is hopeless
// for d >= 6 (the probability that a random matching is simple decays like
// exp(-(d*d-1)/4)), whereas repair converges in O(n*d) swaps and keeps the
// distribution close to uniform over simple d-regular graphs.
func tryPairing(n, d int, r *rng.RNG) (*Graph, bool) {
	m := n * d / 2
	stubs := make([]int, 0, n*d)
	for i := 0; i < n; i++ {
		for k := 0; k < d; k++ {
			stubs = append(stubs, i)
		}
	}
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })

	ea := make([]int, m)
	eb := make([]int, m)
	count := map[[2]int]int{}
	norm := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	for i := 0; i < m; i++ {
		ea[i], eb[i] = stubs[2*i], stubs[2*i+1]
		count[norm(ea[i], eb[i])]++
	}
	bad := func(i int) bool { return ea[i] == eb[i] || count[norm(ea[i], eb[i])] > 1 }

	queue := make([]int, 0, m)
	inQueue := make([]bool, m)
	push := func(i int) {
		if !inQueue[i] && bad(i) {
			inQueue[i] = true
			queue = append(queue, i)
		}
	}
	for i := 0; i < m; i++ {
		push(i)
	}
	remove := func(i int) {
		k := norm(ea[i], eb[i])
		count[k]--
		if count[k] == 0 {
			delete(count, k)
		}
	}
	add := func(i int) { count[norm(ea[i], eb[i])]++ }

	for guard := 0; len(queue) > 0; guard++ {
		if guard > 200*m {
			return nil, false // pathological instance; caller reshuffles
		}
		i := queue[0]
		queue = queue[1:]
		inQueue[i] = false
		if !bad(i) {
			continue
		}
		j := r.Intn(m)
		a, b, c, dd := ea[i], eb[i], ea[j], eb[j]
		// Propose the double swap (a,b),(c,dd) -> (a,dd),(c,b).
		if j == i || a == dd || c == b {
			push(i)
			continue
		}
		remove(i)
		remove(j)
		if count[norm(a, dd)] > 0 || count[norm(c, b)] > 0 {
			add(i)
			add(j)
			push(i)
			continue
		}
		eb[i], eb[j] = dd, b
		add(i)
		add(j)
		push(i)
		push(j)
	}

	g := &Graph{N: n, Adj: make([][]int, n)}
	for i := 0; i < m; i++ {
		g.Adj[ea[i]] = append(g.Adj[ea[i]], eb[i])
		g.Adj[eb[i]] = append(g.Adj[eb[i]], ea[i])
	}
	sortAdj(g)
	return g, true
}

func sortAdj(g *Graph) {
	for i := range g.Adj {
		insertionSort(g.Adj[i])
	}
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
