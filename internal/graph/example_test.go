package graph_test

import (
	"fmt"

	"repro/internal/graph"
)

// Build the paper's mixing matrix for a small topology and inspect one row:
// on a ring every node has degree 2, so each neighbor weight is
// 1/(max(2,2)+1) = 1/3 and the self weight absorbs the rest.
func ExampleMetropolis() {
	g, err := graph.Ring(6)
	if err != nil {
		panic(err)
	}
	w := graph.Metropolis(g)
	fmt.Printf("neighbors of 0: %v\n", g.Adj[0])
	fmt.Printf("W_01 = %.3f, W_05 = %.3f, W_00 = %.3f\n", w.Nbr[0][0], w.Nbr[0][1], w.Self[0])
	fmt.Printf("doubly stochastic: %v\n", w.CheckDoublyStochastic(g, 1e-12) == nil)
	// Output:
	// neighbors of 0: [1 5]
	// W_01 = 0.333, W_05 = 0.333, W_00 = 0.333
	// doubly stochastic: true
}

// Brown out two opposite nodes of a ring: the live subgraph splits into two
// arcs, and RenormalizeLive rebuilds Metropolis-Hastings weights over it so
// mixing stays doubly stochastic — dead rows become the identity.
func ExampleRenormalizeLive() {
	g, err := graph.Ring(6)
	if err != nil {
		panic(err)
	}
	live := []bool{true, false, true, true, false, true}
	fmt.Printf("live components: %d\n", g.LiveComponents(live))
	fmt.Printf("live degree of 0: %d\n", g.LiveDegree(live, 0))

	w := graph.RenormalizeLive(g, live)
	// Node 0 kept only the edge to node 5 (both now degree 1): weight 1/2.
	fmt.Printf("W_01 = %.1f, W_05 = %.1f, W_00 = %.1f\n", w.Nbr[0][0], w.Nbr[0][1], w.Self[0])
	// Dead node 1 holds its state: identity row.
	fmt.Printf("W_11 = %.1f\n", w.Self[1])
	fmt.Printf("still doubly stochastic: %v\n", w.CheckDoublyStochastic(g, 1e-12) == nil)
	// Output:
	// live components: 2
	// live degree of 0: 1
	// W_01 = 0.0, W_05 = 0.5, W_00 = 0.5
	// W_11 = 1.0
	// still doubly stochastic: true
}
