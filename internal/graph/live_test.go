package graph

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestLiveDegree(t *testing.T) {
	g := &Graph{N: 4, Adj: [][]int{{1, 2}, {0, 2}, {0, 1, 3}, {2}}}
	live := []bool{true, false, true, true}
	wants := []int{1, 0, 2, 1} // node 1 dead: its degree 0, its edges gone
	for i, want := range wants {
		if d := g.LiveDegree(live, i); d != want {
			t.Fatalf("LiveDegree(%d) = %d, want %d", i, d, want)
		}
	}
	// nil mask = full degrees.
	for i := 0; i < g.N; i++ {
		if g.LiveDegree(nil, i) != g.Degree(i) {
			t.Fatalf("nil mask should give full degree at %d", i)
		}
	}
}

func TestMeanLiveDegree(t *testing.T) {
	g := &Graph{N: 4, Adj: [][]int{{1, 2}, {0, 2}, {0, 1, 3}, {2}}}
	live := []bool{true, false, true, true}
	want := (1.0 + 2.0 + 1.0) / 3.0
	if got := g.MeanLiveDegree(live); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanLiveDegree = %v, want %v", got, want)
	}
	if got := g.MeanLiveDegree([]bool{false, false, false, false}); got != 0 {
		t.Fatalf("all-dead MeanLiveDegree = %v, want 0", got)
	}
}

func TestLiveComponents(t *testing.T) {
	ring, err := Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		live []bool
		want int
	}{
		{nil, 1},
		{[]bool{true, true, true, true, true, true}, 1},
		// Killing two opposite nodes cuts the ring into two arcs.
		{[]bool{true, false, true, true, false, true}, 2},
		// Killing every other node leaves three isolated nodes.
		{[]bool{true, false, true, false, true, false}, 3},
		{[]bool{false, false, false, false, false, false}, 0},
	}
	for _, c := range cases {
		if got := ring.LiveComponents(c.live); got != c.want {
			t.Fatalf("LiveComponents(%v) = %d, want %d", c.live, got, c.want)
		}
	}
}

func TestRenormalizeLiveNilEqualsMetropolis(t *testing.T) {
	g, _ := Regular(24, 4, 17)
	mh, rn := Metropolis(g), RenormalizeLive(g, nil)
	allLive := make([]bool, g.N)
	for i := range allLive {
		allLive[i] = true
	}
	rnAll := RenormalizeLive(g, allLive)
	for i := 0; i < g.N; i++ {
		if mh.Self[i] != rn.Self[i] || mh.Self[i] != rnAll.Self[i] {
			t.Fatalf("self weight differs at %d", i)
		}
		for k := range mh.Nbr[i] {
			if mh.Nbr[i][k] != rn.Nbr[i][k] || mh.Nbr[i][k] != rnAll.Nbr[i][k] {
				t.Fatalf("neighbor weight differs at (%d,%d)", i, k)
			}
		}
	}
}

func TestRenormalizeLiveDeadRowsIdentity(t *testing.T) {
	g, _ := Regular(16, 4, 23)
	live := make([]bool, g.N)
	for i := range live {
		live[i] = i%3 != 0
	}
	w := RenormalizeLive(g, live)
	for i := 0; i < g.N; i++ {
		if live[i] {
			continue
		}
		if w.Self[i] != 1 {
			t.Fatalf("dead node %d self weight %v, want 1", i, w.Self[i])
		}
		for k, v := range w.Nbr[i] {
			if v != 0 {
				t.Fatalf("dead node %d edge %d weight %v, want 0", i, k, v)
			}
		}
	}
}

// TestRenormalizeLiveProperty is the acceptance property of the brown-out
// topology: over 1000 random (graph, live-set) draws, the renormalized
// mixing matrix is symmetric and row-stochastic (indeed doubly stochastic:
// dead rows and columns reduce to the identity), and applying it preserves
// the live component's total mass — the consensus invariant aggregation
// relies on every drop round.
func TestRenormalizeLiveProperty(t *testing.T) {
	const draws = 1000
	for draw := 0; draw < draws; draw++ {
		r := rng.Derive(0x11fe, uint64(draw))
		n := 8 + r.Intn(40) // 8..47 nodes
		d := 2 + r.Intn(5)  // degree 2..6
		if d >= n || n*d%2 != 0 {
			d = 2
		}
		g, err := Regular(n, d, r.Uint64())
		if err != nil {
			t.Fatalf("draw %d: %v", draw, err)
		}
		density := 0.1 + 0.8*r.Float64()
		live := make([]bool, n)
		for i := range live {
			live[i] = r.Float64() < density
		}
		w := RenormalizeLive(g, live)
		if err := w.CheckSymmetric(g, 1e-12); err != nil {
			t.Fatalf("draw %d (n=%d d=%d): %v", draw, n, d, err)
		}
		// Row AND column stochasticity on the full index set.
		if err := w.CheckDoublyStochastic(g, 1e-12); err != nil {
			t.Fatalf("draw %d (n=%d d=%d): %v", draw, n, d, err)
		}
		// Mass on the live component is invariant under one mixing step.
		src := make([]float64, n)
		for i := range src {
			src[i] = r.NormFloat64()
		}
		dst := make([]float64, n)
		w.Apply(g, dst, src)
		var liveBefore, liveAfter float64
		for i := range src {
			if live[i] {
				liveBefore += src[i]
				liveAfter += dst[i]
			} else if dst[i] != src[i] {
				t.Fatalf("draw %d: dead node %d value changed %v -> %v", draw, i, src[i], dst[i])
			}
		}
		if math.Abs(liveBefore-liveAfter) > 1e-9 {
			t.Fatalf("draw %d: live mass %v -> %v", draw, liveBefore, liveAfter)
		}
	}
}
