package graph

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Weights is a sparse, row-indexed mixing matrix W aligned with a Graph:
// row i holds the self weight W_ii and one weight per neighbor, in the same
// order as Graph.Adj[i]. The aggregation step of Algorithm 1 (line 8) is
// x_i <- Self[i]*x_i + sum_k Nbr[i][k]*x_{Adj[i][k]}.
type Weights struct {
	Self []float64
	Nbr  [][]float64
}

// Metropolis computes the Metropolis-Hastings weights of Section 2.2:
//
//	W_ij = 1 / (max(deg(i), deg(j)) + 1)   for edges (i,j)
//	W_ii = 1 - sum_j W_ij
//
// The result is symmetric and doubly stochastic for any undirected graph,
// the condition D-PSGD needs to converge to a stationary point of Eq. (1).
func Metropolis(g *Graph) *Weights {
	w := &Weights{Self: make([]float64, g.N), Nbr: make([][]float64, g.N)}
	for i := 0; i < g.N; i++ {
		row := make([]float64, len(g.Adj[i]))
		sum := 0.0
		for k, j := range g.Adj[i] {
			row[k] = 1.0 / float64(max(g.Degree(i), g.Degree(j))+1)
			sum += row[k]
		}
		w.Nbr[i] = row
		w.Self[i] = 1 - sum
	}
	return w
}

// Uniform computes plain neighborhood averaging: W_ij = 1/(deg(i)+1) for
// each neighbor and self. It is row-stochastic but NOT doubly stochastic on
// irregular graphs; on regular graphs it coincides with Metropolis-Hastings.
// Included as the ablation baseline for the mixing-matrix choice.
func Uniform(g *Graph) *Weights {
	w := &Weights{Self: make([]float64, g.N), Nbr: make([][]float64, g.N)}
	for i := 0; i < g.N; i++ {
		share := 1.0 / float64(g.Degree(i)+1)
		row := make([]float64, len(g.Adj[i]))
		for k := range row {
			row[k] = share
		}
		w.Nbr[i] = row
		w.Self[i] = share
	}
	return w
}

// CheckDoublyStochastic verifies that rows and columns of W sum to 1 within
// tol and that all entries are non-negative. Column sums require the graph
// for indexing.
func (w *Weights) CheckDoublyStochastic(g *Graph, tol float64) error {
	colSum := make([]float64, g.N)
	for i := 0; i < g.N; i++ {
		if w.Self[i] < -tol {
			return fmt.Errorf("graph: negative self weight at %d: %v", i, w.Self[i])
		}
		row := w.Self[i]
		colSum[i] += w.Self[i]
		for k, j := range g.Adj[i] {
			v := w.Nbr[i][k]
			if v < -tol {
				return fmt.Errorf("graph: negative weight (%d,%d): %v", i, j, v)
			}
			row += v
			colSum[j] += v
		}
		if math.Abs(row-1) > tol {
			return fmt.Errorf("graph: row %d sums to %v", i, row)
		}
	}
	for j, s := range colSum {
		if math.Abs(s-1) > tol {
			return fmt.Errorf("graph: column %d sums to %v", j, s)
		}
	}
	return nil
}

// CheckSymmetric verifies W_ij == W_ji within tol.
func (w *Weights) CheckSymmetric(g *Graph, tol float64) error {
	for i := 0; i < g.N; i++ {
		for k, j := range g.Adj[i] {
			// find i in j's adjacency
			wji := math.NaN()
			for k2, i2 := range g.Adj[j] {
				if i2 == i {
					wji = w.Nbr[j][k2]
					break
				}
			}
			if math.IsNaN(wji) || math.Abs(w.Nbr[i][k]-wji) > tol {
				return fmt.Errorf("graph: W[%d,%d]=%v but W[%d,%d]=%v", i, j, w.Nbr[i][k], j, i, wji)
			}
		}
	}
	return nil
}

// Apply computes dst = W * src for per-node scalar values (used by the
// spectral estimator; the simulator applies the same contraction to whole
// model vectors).
func (w *Weights) Apply(g *Graph, dst, src []float64) {
	for i := 0; i < g.N; i++ {
		s := w.Self[i] * src[i]
		for k, j := range g.Adj[i] {
			s += w.Nbr[i][k] * src[j]
		}
		dst[i] = s
	}
}

// SpectralGap estimates 1 - |lambda_2(W)| by power iteration on the
// subspace orthogonal to the all-ones vector. Larger gaps mean faster
// consensus; the paper's intuition that denser topologies need fewer
// synchronization rounds (Section 4.3) is this quantity.
func (w *Weights) SpectralGap(g *Graph, iters int, seed uint64) float64 {
	if g.N < 2 {
		return 1
	}
	r := rng.Derive(seed, 0x57ec)
	x := make([]float64, g.N)
	y := make([]float64, g.N)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	deflate(x)
	normalize(x)
	lambda := 0.0
	for it := 0; it < iters; it++ {
		w.Apply(g, y, x)
		deflate(y)
		lambda = norm(y)
		if lambda == 0 {
			return 1
		}
		for i := range y {
			y[i] /= lambda
		}
		x, y = y, x
	}
	return 1 - math.Abs(lambda)
}

func deflate(x []float64) {
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for i := range x {
		x[i] -= mean
	}
}

func norm(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func normalize(x []float64) {
	n := norm(x)
	if n == 0 {
		return
	}
	for i := range x {
		x[i] /= n
	}
}
