package graph

// Live-set support: a browned-out node silences its radio, so for the
// duration of a round every edge incident to it disappears from the
// topology. The functions below operate on the induced subgraph G[live] —
// the graph restricted to the powered nodes — without materializing it:
// callers keep one static Graph and pass a per-round liveness mask.
//
// A liveness mask is a []bool of length Graph.N where live[i] reports that
// node i is powered this round. A nil mask means "all nodes live"
// everywhere below, so callers can use one code path for both the static
// and the intermittently-powered regime.

// LiveDegree returns node i's degree in the induced subgraph G[live]: the
// number of live neighbors. A dead node has live degree 0 by convention
// (its edges are down regardless of the neighbors' state).
func (g *Graph) LiveDegree(live []bool, i int) int {
	if live == nil {
		return g.Degree(i)
	}
	if !live[i] {
		return 0
	}
	d := 0
	for _, j := range g.Adj[i] {
		if live[j] {
			d++
		}
	}
	return d
}

// MeanLiveDegree returns the average LiveDegree over live nodes — the
// effective connectivity the mixing step actually sees this round. It is 0
// when no node is live.
func (g *Graph) MeanLiveDegree(live []bool) float64 {
	total, count := 0, 0
	for i := 0; i < g.N; i++ {
		if live != nil && !live[i] {
			continue
		}
		total += g.LiveDegree(live, i)
		count++
	}
	if count == 0 {
		return 0
	}
	return float64(total) / float64(count)
}

// LiveComponents counts the connected components of the induced subgraph
// G[live]. A connected topology can fragment when brown-outs remove cut
// nodes; each fragment then runs consensus in isolation for the round.
// Dead nodes belong to no component; zero live nodes means zero components.
func (g *Graph) LiveComponents(live []bool) int {
	seen := make([]bool, g.N)
	queue := make([]int, 0, g.N)
	components := 0
	for s := 0; s < g.N; s++ {
		if seen[s] || (live != nil && !live[s]) {
			continue
		}
		components++
		seen[s] = true
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Adj[u] {
				if !seen[v] && (live == nil || live[v]) {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	return components
}

// RenormalizeLive rebuilds the Metropolis-Hastings mixing matrix over the
// induced subgraph G[live], keeping the Weights aligned with the full
// graph's adjacency so the aggregation loop needs no re-indexing:
//
//	W_ij = 1 / (max(dlive(i), dlive(j)) + 1)  for live i, j with edge (i,j)
//	W_ij = 0                                  when i or j is dead
//	W_ii = 1 - Σ_j W_ij                       for live i
//	W_ii = 1                                  for dead i
//
// where dlive is LiveDegree. The result is symmetric and row-stochastic,
// and — because dead rows and columns reduce to the identity — doubly
// stochastic on the whole index set, so CheckDoublyStochastic and
// CheckSymmetric hold verbatim. On the live component this is exactly
// Metropolis applied to G[live]: consensus contracts there while dead
// nodes hold their state, which is the drop-and-renormalize aggregation
// rule for brown-out rounds. A nil mask returns Metropolis(g).
func RenormalizeLive(g *Graph, live []bool) *Weights {
	if live == nil {
		return Metropolis(g)
	}
	w := &Weights{Self: make([]float64, g.N), Nbr: make([][]float64, g.N)}
	for i := 0; i < g.N; i++ {
		row := make([]float64, len(g.Adj[i]))
		w.Nbr[i] = row
		if !live[i] {
			w.Self[i] = 1
			continue
		}
		di := g.LiveDegree(live, i)
		sum := 0.0
		for k, j := range g.Adj[i] {
			if !live[j] {
				continue
			}
			row[k] = 1.0 / float64(max(di, g.LiveDegree(live, j))+1)
			sum += row[k]
		}
		w.Self[i] = 1 - sum
	}
	return w
}
