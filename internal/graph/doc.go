// Package graph builds and analyzes the communication topologies of the
// paper — undirected d-regular graphs on n nodes (the paper uses
// d ∈ {6, 8, 10} on n = 256), plus rings and complete graphs for baselines
// — and the mixing matrices decentralized SGD averages models with.
//
// # Topologies
//
// Regular samples a connected random d-regular graph via the pairing
// (configuration) model with double-edge-swap repair; Ring, Complete, and
// Circulant cover the deterministic baselines. All constructions are
// deterministic in their seed.
//
// # Mixing matrices
//
// Metropolis computes the Metropolis-Hastings weights of Section 2.2,
//
//	W_ij = 1 / (max(deg(i), deg(j)) + 1)   for each edge (i, j)
//	W_ii = 1 - Σ_j W_ij,
//
// which are symmetric and doubly stochastic on any undirected graph — the
// condition D-PSGD needs to converge. Uniform neighborhood averaging is
// included as the ablation baseline (row-stochastic only). Weights are
// stored row-indexed against Graph.Adj so the simulator's aggregation loop
// reads them with no searching; CheckDoublyStochastic, CheckSymmetric, and
// SpectralGap provide the diagnostics the ablations report.
//
// # Live sets and brown-outs
//
// Intermittently-powered fleets lose nodes mid-run: a browned-out battery
// silences the node's radio, taking every incident edge down for the
// round. The live-set API (live.go) treats that as an induced subgraph
// G[live] over the powered nodes: LiveDegree, MeanLiveDegree, and
// LiveComponents describe the effective topology, and RenormalizeLive
// rebuilds the Metropolis-Hastings matrix over G[live] — dead rows become
// the identity, so the matrix stays symmetric and doubly stochastic on the
// whole index set while the live component mixes exactly as Metropolis
// would on G[live]. The simulation engine calls it once per round when
// dead-node dropout is enabled (sim.Config.DropDeadNodes).
package graph
