// Package harvest models per-node battery dynamics and ambient energy
// harvesting for intermittently-powered fleets, generalizing the paper's
// static energy budgets τ_i (Section 2.3) to live battery state.
//
// The paper's SkipTrain-constrained policy spreads a fixed, monotonically
// draining budget across the horizon with p_i = min(τ_i / T_train, 1)
// (Eq. 5). Real intermittently-powered deployments recharge: solar panels
// follow the sun, phones sit on chargers overnight, RF-powered sensors see
// bursty ambient energy. This package models that regime round by round:
//
//   - a Battery is a per-node charge state machine: capacity in Wh, a
//     brown-out cutoff below which the node cannot operate, harvesting
//     clamped at capacity, and all-or-nothing training consumption;
//   - a Trace generates the per-round harvested energy — constant trickle,
//     diurnal/solar sinusoid with per-node phase (longitude), a Markov
//     on-off chain for bursty sources, or a CSV replay;
//   - a Fleet binds one battery per node to its device's training cost
//     (energy.Device × energy.Workload) and advances all batteries each
//     round: pay idle and communication draw, then harvest;
//   - the policies in policy.go implement core.Policy from live
//     state-of-charge, generalizing Eq. 5's static p_i to p_i^t = f(SoC_i^t).
//
// Every stochastic trace owns per-node RNG streams derived from the
// experiment seed, and all fleet state is strictly per-node, so simulations
// remain bit-reproducible regardless of GOMAXPROCS or goroutine
// interleaving.
package harvest

import "fmt"

// Battery is one node's charge state. Construct with NewBattery; the zero
// value is not usable.
type Battery struct {
	// CapacityWh is the storage capacity; harvesting beyond it is wasted.
	CapacityWh float64
	// CutoffWh is the brown-out level: a battery at or below the cutoff
	// cannot power the node (Usable reports false), and training may never
	// drain charge below it.
	CutoffWh float64

	chargeWh float64
}

// NewBattery returns a battery with the given capacity, initial charge and
// brown-out cutoff (all Wh). The initial charge is clamped into
// [0, capacity].
func NewBattery(capacityWh, initialWh, cutoffWh float64) (Battery, error) {
	switch {
	case capacityWh <= 0:
		return Battery{}, fmt.Errorf("harvest: non-positive capacity %v", capacityWh)
	case cutoffWh < 0 || cutoffWh >= capacityWh:
		return Battery{}, fmt.Errorf("harvest: cutoff %v outside [0, capacity %v)", cutoffWh, capacityWh)
	}
	b := Battery{CapacityWh: capacityWh, CutoffWh: cutoffWh, chargeWh: clamp(initialWh, 0, capacityWh)}
	return b, nil
}

// ChargeWh returns the current charge level in Wh.
func (b *Battery) ChargeWh() float64 { return b.chargeWh }

// SoC returns the state of charge as a fraction of capacity in [0, 1].
func (b *Battery) SoC() float64 { return b.chargeWh / b.CapacityWh }

// Usable reports whether the battery is above the brown-out cutoff.
func (b *Battery) Usable() bool { return b.chargeWh > b.CutoffWh }

// Harvest stores up to wh watt-hours and returns the amount actually stored;
// the remainder (a full battery) is wasted. Negative input is ignored.
func (b *Battery) Harvest(wh float64) float64 {
	if wh <= 0 {
		return 0
	}
	stored := wh
	if room := b.CapacityWh - b.chargeWh; stored > room {
		stored = room
	}
	b.chargeWh += stored
	return stored
}

// Drain removes up to wh watt-hours for loads the node cannot refuse (idle
// and communication draw), clamping at empty, and returns the amount
// actually drained.
func (b *Battery) Drain(wh float64) float64 {
	if wh <= 0 {
		return 0
	}
	if wh > b.chargeWh {
		wh = b.chargeWh
	}
	b.chargeWh -= wh
	return wh
}

// TryConsume atomically spends wh watt-hours on a training round. It is
// all-or-nothing and never takes the battery below the cutoff: a node must
// not brown out mid-round.
func (b *Battery) TryConsume(wh float64) bool {
	if wh < 0 || b.chargeWh-wh < b.CutoffWh {
		return false
	}
	b.chargeWh -= wh
	return true
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
