package harvest

import (
	"fmt"
	"math"
)

// Battery is one node's charge state. Construct with NewBattery; the zero
// value is not usable.
type Battery struct {
	// CapacityWh is the storage capacity; harvesting beyond it is wasted.
	CapacityWh float64
	// CutoffWh is the brown-out level: a battery at or below the cutoff
	// cannot power the node (Usable reports false), and training may never
	// drain charge below it.
	CutoffWh float64

	chargeWh float64
	// clock is the battery's virtual-time cursor, advanced by AdvanceTo.
	// Round-driven engines (Fleet.EndRound) never touch it; the
	// continuous-time VFleet advances it per event.
	clock float64
}

// NewBattery returns a battery with the given capacity, initial charge and
// brown-out cutoff (all Wh). The initial charge is clamped into
// [0, capacity].
func NewBattery(capacityWh, initialWh, cutoffWh float64) (Battery, error) {
	switch {
	case capacityWh <= 0:
		return Battery{}, fmt.Errorf("harvest: non-positive capacity %v", capacityWh)
	case cutoffWh < 0 || cutoffWh >= capacityWh:
		return Battery{}, fmt.Errorf("harvest: cutoff %v outside [0, capacity %v)", cutoffWh, capacityWh)
	}
	b := Battery{CapacityWh: capacityWh, CutoffWh: cutoffWh, chargeWh: clamp(initialWh, 0, capacityWh)}
	return b, nil
}

// ChargeWh returns the current charge level in Wh.
func (b *Battery) ChargeWh() float64 { return b.chargeWh }

// SoC returns the state of charge as a fraction of capacity in [0, 1].
func (b *Battery) SoC() float64 { return b.chargeWh / b.CapacityWh }

// Usable reports whether the battery is above the brown-out cutoff.
func (b *Battery) Usable() bool { return b.chargeWh > b.CutoffWh }

// Harvest stores up to wh watt-hours and returns the amount actually stored;
// the remainder (a full battery) is wasted. Negative input is ignored.
func (b *Battery) Harvest(wh float64) float64 {
	if wh <= 0 {
		return 0
	}
	stored := wh
	if room := b.CapacityWh - b.chargeWh; stored > room {
		stored = room
	}
	b.chargeWh += stored
	return stored
}

// Drain removes up to wh watt-hours for loads the node cannot refuse (idle
// and communication draw), clamping at empty, and returns the amount
// actually drained.
func (b *Battery) Drain(wh float64) float64 {
	if wh <= 0 {
		return 0
	}
	if wh > b.chargeWh {
		wh = b.chargeWh
	}
	b.chargeWh -= wh
	return wh
}

// TryConsume atomically spends wh watt-hours on a training round. It is
// all-or-nothing and never takes the battery below the cutoff: a node must
// not brown out mid-round.
func (b *Battery) TryConsume(wh float64) bool {
	if wh < 0 || b.chargeWh-wh < b.CutoffWh {
		return false
	}
	b.chargeWh -= wh
	return true
}

// Clock returns the battery's virtual-time cursor: how far AdvanceTo has
// integrated. Batteries driven round-by-round stay at 0.
func (b *Battery) Clock() float64 { return b.clock }

// AdvanceTo integrates constant harvest and drain rates (Wh per unit of
// virtual time) from the battery's clock to t, paying drain before storing
// harvest — the same settle order Fleet.EndRound applies per round — and
// moves the clock to t. It returns the energy actually stored and actually
// drained (both clamp: a full battery wastes arrivals, an empty one cannot
// pay). Callers split intervals at rate changes (trace round boundaries)
// and at the crossing times TimeToCharge/TimeToCutoff solve for, so the
// rates are genuinely constant within one call; t at or before the clock
// is a no-op.
func (b *Battery) AdvanceTo(t, harvestRateWh, drainRateWh float64) (storedWh, drainedWh float64) {
	dt := t - b.clock
	if dt <= 0 {
		return 0, 0
	}
	b.clock = t
	drainedWh = b.Drain(drainRateWh * dt)
	storedWh = b.Harvest(harvestRateWh * dt)
	return storedWh, drainedWh
}

// TimeToCharge solves the charge-arrival crossing: how long until the
// battery reaches targetWh under a constant net inflow rate (Wh per unit
// of virtual time). 0 when already there; +Inf when the net rate is
// non-positive or the target exceeds capacity. The event-driven engine
// schedules wake-ups at this crossing instead of polling per round.
func (b *Battery) TimeToCharge(targetWh, netRateWh float64) float64 {
	return timeToCharge(b.chargeWh, targetWh, b.CapacityWh, netRateWh)
}

// TimeToCutoff solves the brown-out crossing: how long until the battery
// drains to its cutoff under a constant net load rate (Wh per unit of
// virtual time, positive = net outflow). 0 when already at or below the
// cutoff; +Inf when the battery is not losing charge.
func (b *Battery) TimeToCutoff(loadRateWh float64) float64 {
	return timeToCutoff(b.chargeWh, b.CutoffWh, -loadRateWh)
}

// timeToCharge is the shared rising-crossing solver under a constant net
// inflow netRateWh (signed; Wh per unit time): the first time a store at
// chargeWh reaches targetWh, given ceiling capacityWh. Both Battery and
// SoAFleet expose it so the two engines cannot drift on crossing math.
func timeToCharge(chargeWh, targetWh, capacityWh, netRateWh float64) float64 {
	if chargeWh >= targetWh {
		return 0
	}
	if netRateWh <= 0 || targetWh > capacityWh {
		return math.Inf(1)
	}
	return (targetWh - chargeWh) / netRateWh
}

// timeToCutoff is the shared falling-crossing solver under a constant net
// inflow netRateWh (signed): the first time a store at chargeWh falls to
// cutoffWh. +Inf when the store is not falling.
func timeToCutoff(chargeWh, cutoffWh, netRateWh float64) float64 {
	if chargeWh <= cutoffWh {
		return 0
	}
	if netRateWh >= 0 {
		return math.Inf(1)
	}
	return (chargeWh - cutoffWh) / -netRateWh
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
