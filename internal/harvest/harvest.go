package harvest

import "fmt"

// Battery is one node's charge state. Construct with NewBattery; the zero
// value is not usable.
type Battery struct {
	// CapacityWh is the storage capacity; harvesting beyond it is wasted.
	CapacityWh float64
	// CutoffWh is the brown-out level: a battery at or below the cutoff
	// cannot power the node (Usable reports false), and training may never
	// drain charge below it.
	CutoffWh float64

	chargeWh float64
}

// NewBattery returns a battery with the given capacity, initial charge and
// brown-out cutoff (all Wh). The initial charge is clamped into
// [0, capacity].
func NewBattery(capacityWh, initialWh, cutoffWh float64) (Battery, error) {
	switch {
	case capacityWh <= 0:
		return Battery{}, fmt.Errorf("harvest: non-positive capacity %v", capacityWh)
	case cutoffWh < 0 || cutoffWh >= capacityWh:
		return Battery{}, fmt.Errorf("harvest: cutoff %v outside [0, capacity %v)", cutoffWh, capacityWh)
	}
	b := Battery{CapacityWh: capacityWh, CutoffWh: cutoffWh, chargeWh: clamp(initialWh, 0, capacityWh)}
	return b, nil
}

// ChargeWh returns the current charge level in Wh.
func (b *Battery) ChargeWh() float64 { return b.chargeWh }

// SoC returns the state of charge as a fraction of capacity in [0, 1].
func (b *Battery) SoC() float64 { return b.chargeWh / b.CapacityWh }

// Usable reports whether the battery is above the brown-out cutoff.
func (b *Battery) Usable() bool { return b.chargeWh > b.CutoffWh }

// Harvest stores up to wh watt-hours and returns the amount actually stored;
// the remainder (a full battery) is wasted. Negative input is ignored.
func (b *Battery) Harvest(wh float64) float64 {
	if wh <= 0 {
		return 0
	}
	stored := wh
	if room := b.CapacityWh - b.chargeWh; stored > room {
		stored = room
	}
	b.chargeWh += stored
	return stored
}

// Drain removes up to wh watt-hours for loads the node cannot refuse (idle
// and communication draw), clamping at empty, and returns the amount
// actually drained.
func (b *Battery) Drain(wh float64) float64 {
	if wh <= 0 {
		return 0
	}
	if wh > b.chargeWh {
		wh = b.chargeWh
	}
	b.chargeWh -= wh
	return wh
}

// TryConsume atomically spends wh watt-hours on a training round. It is
// all-or-nothing and never takes the battery below the cutoff: a node must
// not brown out mid-round.
func (b *Battery) TryConsume(wh float64) bool {
	if wh < 0 || b.chargeWh-wh < b.CutoffWh {
		return false
	}
	b.chargeWh -= wh
	return true
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
