package harvest

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

// traceFactory builds a fresh trace of one family from a draw's
// parameters, so the property tests below can sweep shapes.
type traceFactory struct {
	name  string
	build func(r *rng.RNG, nodes int) Trace
}

func forecastFactories(seedBase uint64) []traceFactory {
	return []traceFactory{
		{"constant", func(r *rng.RNG, _ int) Trace {
			return Constant{Wh: r.Float64()}
		}},
		{"diurnal", func(r *rng.RNG, nodes int) Trace {
			d, err := NewDiurnal(0.01+r.Float64(), 2+r.Intn(30), LongitudePhase(nodes))
			if err != nil {
				panic(err)
			}
			return d
		}},
		{"replay", func(r *rng.RNG, nodes int) Trace {
			wh := make([][]float64, 4+r.Intn(24))
			for t := range wh {
				wh[t] = make([]float64, nodes)
				for i := range wh[t] {
					wh[t][i] = r.Float64()
				}
			}
			p, err := NewReplay(wh)
			if err != nil {
				panic(err)
			}
			return p
		}},
	}
}

// TestOracleForecastMatchesRealizedProperty is the oracle's defining
// property, 1k draws per trace family: the forecast window issued before
// the rounds happen is byte-identical to the harvest subsequently realized
// by HarvestWh. Replay draws keep the window inside the recording, where
// the recording is still evidence (see TestReplayForecastClampsPastEnd for
// the boundary).
func TestOracleForecastMatchesRealizedProperty(t *testing.T) {
	r := rng.New(0xf0ca)
	for _, f := range forecastFactories(1) {
		for draw := 0; draw < 1000; draw++ {
			nodes := 1 + r.Intn(5)
			trace := f.build(r, nodes)
			oracle, err := NewOracle(trace)
			if err != nil {
				t.Fatalf("%s: %v", f.name, err)
			}
			start := r.Intn(16)
			window := 1 + r.Intn(12)
			if rp, ok := trace.(*Replay); ok {
				// Stay inside the recording: wrap the start and clip the
				// window to the rows that remain.
				start %= rp.Rounds()
				if max := rp.Rounds() - start; window > max {
					window = max
				}
			}
			node := r.Intn(nodes)
			forecast := make([]float64, window)
			// Realize rounds 0..start-1 first, as a run would.
			for tt := 0; tt < start; tt++ {
				for i := 0; i < nodes; i++ {
					trace.HarvestWh(i, tt)
				}
			}
			oracle.Forecast(node, start, forecast)
			for k := 0; k < window; k++ {
				realized := trace.HarvestWh(node, start+k)
				if math.Float64bits(realized) != math.Float64bits(forecast[k]) {
					t.Fatalf("%s draw %d: node %d round %d: forecast %v, realized %v",
						f.name, draw, node, start+k, forecast[k], realized)
				}
			}
		}
	}
}

// TestMarkovOracleForecastMatchesRealized extends the byte-identity
// property to the stateful chain: the fork-based lookahead predicts
// exactly the trajectory the live chain then realizes.
func TestMarkovOracleForecastMatchesRealized(t *testing.T) {
	r := rng.New(0x3a11)
	for draw := 0; draw < 1000; draw++ {
		nodes := 1 + r.Intn(4)
		m, err := NewMarkovOnOff(nodes, 0.01, r.Float64(), r.Float64(), uint64(draw))
		if err != nil {
			t.Fatal(err)
		}
		start := r.Intn(10)
		for tt := 0; tt < start; tt++ {
			for i := 0; i < nodes; i++ {
				m.HarvestWh(i, tt)
			}
		}
		node := r.Intn(nodes)
		forecast := make([]float64, 1+r.Intn(12))
		m.ForecastWh(node, start, forecast)
		for k := range forecast {
			realized := m.HarvestWh(node, start+k)
			if math.Float64bits(realized) != math.Float64bits(forecast[k]) {
				t.Fatalf("draw %d: node %d step %d: forecast %v, realized %v",
					draw, node, k, forecast[k], realized)
			}
		}
	}
}

// TestMarkovForecastNeverPerturbsChain is the fork-the-RNG check: two
// identical chains, one forecast repeatedly (different nodes, different
// windows) and one never touched, must realize bit-identical trajectories.
func TestMarkovForecastNeverPerturbsChain(t *testing.T) {
	const nodes = 6
	mk := func() *MarkovOnOff {
		m, err := NewMarkovOnOff(nodes, 0.02, 0.3, 0.4, 99)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	probed, clean := mk(), mk()
	r := rng.New(0xbeef)
	scratch := make([]float64, 16)
	for tt := 0; tt < 200; tt++ {
		// Forecast a random node's window — several times — before the
		// round realizes.
		for probes := 0; probes < 1+r.Intn(3); probes++ {
			probed.ForecastWh(r.Intn(nodes), tt, scratch[:1+r.Intn(len(scratch))])
		}
		for i := 0; i < nodes; i++ {
			a := probed.HarvestWh(i, tt)
			b := clean.HarvestWh(i, tt)
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("round %d node %d: probed chain %v, clean chain %v — forecasting perturbed the chain", tt, i, a, b)
			}
		}
	}
}

// TestReplayForecastClampsPastEnd is the regression test for the lookahead
// edge: forecasting past a short recording's final row must clamp to zero
// harvest — not panic on index-out-of-range, and not invent the cyclic
// wrap that HarvestWh applies.
func TestReplayForecastClampsPastEnd(t *testing.T) {
	// A short CSV trace: 3 recorded rounds, 2 nodes.
	csv := strings.NewReader(strings.Join([]string{
		"round,node,harvest_wh",
		"0,0,0.5", "0,1,0.25",
		"1,0,0.4", "1,1,0.2",
		"2,0,0.3", "2,1,0.15",
	}, "\n"))
	replay, err := ReadReplay(csv)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 6)
	replay.ForecastWh(0, 1, out) // rounds 1..6 of a 3-round recording
	want := []float64{0.4, 0.3, 0, 0, 0, 0}
	for k := range want {
		if out[k] != want[k] {
			t.Fatalf("forecast %v, want %v", out, want)
		}
	}
	// Entirely past the end: all zero.
	replay.ForecastWh(1, 10, out)
	for k, v := range out {
		if v != 0 {
			t.Fatalf("slot %d past the recording forecast %v, want 0", k, v)
		}
	}
	// The realized trace, by contrast, wraps.
	if got := replay.HarvestWh(0, 3); got != 0.5 {
		t.Fatalf("HarvestWh(0, 3) = %v, want cyclic wrap 0.5", got)
	}
}

// unforeseeable is a trace with no Lookahead: NewOracle must reject it.
type unforeseeable struct{}

func (unforeseeable) HarvestWh(int, int) float64 { return 1 }
func (unforeseeable) Name() string               { return "unforeseeable" }

func TestNewOracleRejectsNonLookaheadTrace(t *testing.T) {
	if _, err := NewOracle(unforeseeable{}); err == nil {
		t.Fatal("oracle over a trace without lookahead should error")
	}
	if _, err := NewOracle(nil); err == nil {
		t.Fatal("nil trace should error")
	}
	if _, err := NewOracle(Constant{1}); err != nil {
		t.Fatalf("constant trace supports lookahead: %v", err)
	}
}

func TestNoisyOracle(t *testing.T) {
	d, err := NewDiurnal(1, 8, LongitudePhase(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNoisyOracle(d, -0.1, 1); err == nil {
		t.Fatal("negative sigma should error")
	}
	// sigma = 0: byte-identical to the oracle.
	exact, err := NewOracle(d)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := NewNoisyOracle(d, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := make([]float64, 8), make([]float64, 8)
	exact.Forecast(2, 3, a)
	zero.Forecast(2, 3, b)
	for k := range a {
		if math.Float64bits(a[k]) != math.Float64bits(b[k]) {
			t.Fatalf("sigma=0 noisy oracle differs at slot %d: %v vs %v", k, a[k], b[k])
		}
	}
	// Noise is a pure function of (seed, node, round): repeat calls agree,
	// different nodes differ, and values stay non-negative.
	noisy, err := NewNoisyOracle(d, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	n1, n2, other := make([]float64, 8), make([]float64, 8), make([]float64, 8)
	noisy.Forecast(1, 2, n1)
	noisy.Forecast(1, 2, n2)
	noisy.Forecast(2, 2, other)
	same := true
	for k := range n1 {
		if n1[k] != n2[k] {
			t.Fatalf("repeat forecast differs at slot %d", k)
		}
		if n1[k] < 0 {
			t.Fatalf("negative noisy forecast %v", n1[k])
		}
		if n1[k] != other[k] {
			same = false
		}
	}
	if same {
		t.Fatal("distinct nodes saw identical noise")
	}
}

func TestPersistenceForecast(t *testing.T) {
	if _, err := NewPersistence(0, 4); err == nil {
		t.Fatal("zero nodes should error")
	}
	if _, err := NewPersistence(2, 0); err == nil {
		t.Fatal("zero period should error")
	}
	p, err := NewPersistence(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 4)
	// Cold start: nothing observed, forecast zero.
	p.Forecast(0, 0, out)
	for k, v := range out {
		if v != 0 {
			t.Fatalf("cold-start slot %d forecast %v, want 0", k, v)
		}
	}
	// One observation: flat persistence of the last arrival for unseen
	// phases.
	p.Observe(0, []float64{0.5, 0.1})
	p.Forecast(0, 1, out)
	for k, v := range out[:3] {
		if v != 0.5 {
			t.Fatalf("flat-persistence slot %d forecast %v, want 0.5", k, v)
		}
	}
	// Slot 3 of the window is round 4 = phase 0, which has been observed.
	if out[3] != 0.5 {
		t.Fatalf("phase-0 forecast %v, want observed 0.5", out[3])
	}
	// A full day observed: tomorrow's forecast equals today's arrivals,
	// phase by phase.
	day := [][]float64{{1, 10}, {2, 20}, {3, 30}, {4, 40}}
	q, err := NewPersistence(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for tt, arr := range day {
		q.Observe(tt, arr)
	}
	q.Forecast(1, 4, out)
	want := []float64{10, 20, 30, 40}
	for k := range want {
		if out[k] != want[k] {
			t.Fatalf("day-2 forecast %v, want %v", out, want)
		}
	}
	// Reset forgets everything.
	q.Reset()
	q.Forecast(1, 4, out)
	for k, v := range out {
		if v != 0 {
			t.Fatalf("post-Reset slot %d forecast %v, want 0", k, v)
		}
	}
}
