package harvest

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/energy"
)

// VFleet is the continuous-virtual-time fleet engine behind the
// event-driven async simulator: the same battery geometry and ledgers as
// Fleet/SoAFleet (built from the same validated fleetSpec), but advanced
// along a per-node clock measured in virtual seconds instead of closed in
// lockstep rounds. The engine maps wall-ish virtual seconds onto trace
// rounds through RoundSeconds — trace round k spans seconds
// [k·RoundSeconds, (k+1)·RoundSeconds) — and VFleet quantizes every trace
// to a per-round-uniform rate whose round totals come from the trace's
// continuous face (ContinuousTrace.EnergyBetween: exact closed form for
// Constant/Diurnal, step integration for Markov/Replay). Within one trace
// round the trajectory is therefore linear, which makes the brown-out and
// charge-arrival crossings exactly solvable by the shared
// timeToCharge/timeToCutoff solvers: the engine schedules them as events
// instead of polling per round.
//
// Accounting model, mirroring the round engines at finer granularity:
// each AdvanceTo sub-interval (at most one trace round) pays drain before
// storing harvest, drain clamping at empty and harvest at capacity; the
// harvested/consumed/wasted ledgers accumulate exactly what the batteries
// realize, so harvested − consumed − wasted = ΔCharge holds to float
// round-off — the invariant analyze.Auditor checks on the async telemetry
// stream. Training energy is spread uniformly over the step that spends
// it; a step whose battery hits the cutoff mid-flight aborts at the
// crossing with its partial energy already charged (the power-failure
// semantics of intermittent computing). Communication is a lump at gossip
// time. Crossing *searches* (ScanAfford) are pure simulations of the same
// lump arithmetic and never touch battery state.
//
// VFleet is driven from the async engine's single event-loop goroutine
// and makes no concurrency promises.
type VFleet struct {
	trace    ContinuousTrace
	roundSec float64

	batteries []Battery
	trainWh   []float64
	commWh    []float64
	idleWh    float64 // per trace round

	// pending marks nodes whose TryTrain was admitted but whose training
	// drain has not been realized yet (TrainStep does that continuously).
	pending []bool

	harvested []float64 // cumulative stored harvest per node
	consumed  []float64 // cumulative train+idle+comm drain per node
	wasted    []float64 // per-node harvest that arrived with the battery full
}

// NewVFleet builds the continuous-time engine for the same fleet shape
// NewFleet accepts, plus the seconds-per-trace-round mapping.
func NewVFleet(devices []energy.Device, w energy.Workload, trace Trace, opt Options, roundSeconds float64) (*VFleet, error) {
	if roundSeconds <= 0 || math.IsNaN(roundSeconds) || math.IsInf(roundSeconds, 0) {
		return nil, fmt.Errorf("harvest: invalid round duration %v seconds", roundSeconds)
	}
	spec, err := buildFleetSpec(devices, w, trace, opt)
	if err != nil {
		return nil, err
	}
	n := len(devices)
	f := &VFleet{
		trace:     AsContinuous(trace, n),
		roundSec:  roundSeconds,
		batteries: make([]Battery, n),
		trainWh:   spec.trainWh,
		commWh:    spec.commWh,
		idleWh:    spec.idleWh,
		pending:   make([]bool, n),
		harvested: make([]float64, n),
		consumed:  make([]float64, n),
		wasted:    make([]float64, n),
	}
	for i := range f.batteries {
		f.batteries[i] = Battery{
			CapacityWh: spec.capacityWh[i],
			CutoffWh:   spec.cutoffWh[i],
			chargeWh:   spec.initialWh[i],
		}
	}
	return f, nil
}

// Nodes returns the fleet size.
func (f *VFleet) Nodes() int { return len(f.batteries) }

// RoundSeconds returns the virtual seconds one trace round spans.
func (f *VFleet) RoundSeconds() float64 { return f.roundSec }

// TraceRound returns the trace round in effect at virtual second t.
func (f *VFleet) TraceRound(t float64) int { return int(t / f.roundSec) }

// Clock returns node i's virtual-time cursor in seconds.
func (f *VFleet) Clock(i int) float64 { return f.batteries[i].Clock() }

// SoC returns node i's state of charge in [0, 1] (core.BatteryView).
func (f *VFleet) SoC(i int) float64 { return f.batteries[i].SoC() }

// ChargeWh returns node i's charge level in Wh (core.BatteryView).
func (f *VFleet) ChargeWh(i int) float64 { return f.batteries[i].ChargeWh() }

// CapacityWh returns node i's battery capacity in Wh (core.BatteryView).
func (f *VFleet) CapacityWh(i int) float64 { return f.batteries[i].CapacityWh }

// CutoffWh returns node i's brown-out level in Wh (core.BatteryView).
func (f *VFleet) CutoffWh(i int) float64 { return f.batteries[i].CutoffWh }

// TrainCostWh returns the training cost of one step on node i's device
// (core.BatteryView).
func (f *VFleet) TrainCostWh(i int) float64 { return f.trainWh[i] }

// CommCostWh returns node i's per-gossip communication lump — what
// TrySync spends.
func (f *VFleet) CommCostWh(i int) float64 { return f.commWh[i] }

// OverheadWh returns the non-training draw node i pays per trace round —
// idle plus one gossip's communication cost (core.BatteryView). For the
// planning policies this is the same per-round approximation the
// synchronous fleet charges; the realized async draw differs when a node
// gossips more or less than once per trace round.
func (f *VFleet) OverheadWh(i int) float64 { return f.idleWh + f.commWh[i] }

// Usable reports whether node i is above its brown-out cutoff.
func (f *VFleet) Usable(i int) bool { return f.batteries[i].Usable() }

// LiveCount returns how many nodes are above their cutoff.
func (f *VFleet) LiveCount() int { return len(f.batteries) - f.DepletedCount() }

// DepletedCount returns how many nodes sit at or below their cutoff.
func (f *VFleet) DepletedCount() int {
	n := 0
	for i := range f.batteries {
		if !f.batteries[i].Usable() {
			n++
		}
	}
	return n
}

// MeanSoC returns the fleet-average state of charge.
func (f *VFleet) MeanSoC() float64 {
	s := 0.0
	for i := range f.batteries {
		s += f.batteries[i].SoC()
	}
	return s / float64(len(f.batteries))
}

// TotalChargeWh returns the fleet's total stored energy — the audit
// baseline on run_start and the ChargeWh field of ledger checkpoints.
func (f *VFleet) TotalChargeWh() float64 {
	s := 0.0
	for i := range f.batteries {
		s += f.batteries[i].ChargeWh()
	}
	return s
}

// HarvestedWh returns total energy stored from harvesting so far.
func (f *VFleet) HarvestedWh() float64 { return sum(f.harvested) }

// ConsumedWh returns total energy drained (training + comm + idle).
func (f *VFleet) ConsumedWh() float64 { return sum(f.consumed) }

// WastedWh returns harvest that arrived while batteries were full.
func (f *VFleet) WastedWh() float64 { return sum(f.wasted) }

// NodeConsumedWh returns node i's cumulative drain.
func (f *VFleet) NodeConsumedWh(i int) float64 { return f.consumed[i] }

// TraceName reports the attached trace's identity.
func (f *VFleet) TraceName() string { return f.trace.Name() }

// TryTrain admits or refuses node i's next training step by the same
// all-or-nothing affordability rule as Battery.TryConsume — the charge
// must cover the full training cost without dipping below the cutoff —
// but defers the drain itself to TrainStep, which realizes it
// continuously across the step (core.BatteryView; the battery policies
// end their decision with this call). The node must be advanced to the
// decision time first. A second admission before the first is realized or
// cleared just re-reports it.
func (f *VFleet) TryTrain(i int) bool {
	if f.pending[i] {
		return true
	}
	b := &f.batteries[i]
	if b.ChargeWh()-f.trainWh[i] < b.CutoffWh {
		return false
	}
	f.pending[i] = true
	return true
}

// Pending reports whether node i has an admitted, unrealized training
// step.
func (f *VFleet) Pending(i int) bool { return f.pending[i] }

// ClearPending withdraws an admitted training step that the engine
// decided not to run (e.g. the schedule made the step gossip-only after a
// policy probed affordability).
func (f *VFleet) ClearPending(i int) { f.pending[i] = false }

// TrySync atomically spends node i's per-gossip communication energy as a
// lump at its current clock, reporting affordability — the async
// counterpart of the per-round comm draw EndRound levies on live nodes.
func (f *VFleet) TrySync(i int) bool {
	if !f.batteries[i].TryConsume(f.commWh[i]) {
		return false
	}
	f.consumed[i] += f.commWh[i]
	return true
}

// rateWhPerSec returns the harvest rate (Wh/s) in effect during trace
// round k: the round's continuous-time energy spread uniformly over its
// seconds — the per-round-uniform quantization all VFleet trajectories
// use.
func (f *VFleet) rateWhPerSec(i, k int) float64 {
	return f.trace.EnergyBetween(i, float64(k), float64(k+1)) / f.roundSec
}

// AdvanceNode integrates node i's idle draw and harvest from its clock to
// virtual second t. Brown-out crossings are not detected here — the
// engine schedules those from ScanAfford before putting a node to sleep.
func (f *VFleet) AdvanceNode(i int, t float64) { f.run(i, t, 0, false) }

// AdvanceDetect advances node i's idle draw like AdvanceNode but stops at
// the first brown-out crossing — the walker for intervals where the node
// is occupied (a gossip-only step whose comm lump was already paid) and
// dipping below the cutoff must interrupt it. Returns the time reached
// and whether it stopped at a crossing.
func (f *VFleet) AdvanceDetect(i int, t float64) (stopT float64, browned bool) {
	return f.run(i, t, 0, true)
}

// AdvanceAll advances every node whose clock lags t — the whole-fleet
// checkpoint the engine takes at eval ticks so the ledger snapshot is
// consistent. Nodes mid-step have already realized their step eagerly
// (clock ahead of t) and are left alone.
func (f *VFleet) AdvanceAll(t float64) {
	for i := range f.batteries {
		if f.batteries[i].Clock() < t {
			f.run(i, t, 0, false)
		}
	}
}

// TrainStep realizes the training step the last TryTrain(i) admitted over
// [the node's clock, end): the step's energy is spread uniformly on top
// of the idle draw while harvest arrives per the trace. If the battery
// hits its cutoff mid-step, the step aborts at the crossing time with the
// partial energy already charged — the caller discards the computation
// and schedules the brown-out event at the returned time. Returns the
// time reached (end, or the crossing) and whether it browned out.
func (f *VFleet) TrainStep(i int, end float64) (stopT float64, browned bool) {
	if !f.pending[i] {
		panic("harvest: TrainStep without an admitted TryTrain")
	}
	f.pending[i] = false
	start := f.batteries[i].Clock()
	if end <= start {
		return start, false
	}
	return f.run(i, end, f.trainWh[i]/(end-start), true)
}

// run integrates node i from its clock to t under idle draw plus loadW
// (Wh/s), splitting at trace round boundaries so rates are constant per
// sub-interval. With detect set it stops at the first brown-out crossing,
// solved exactly on the linear sub-interval trajectory. Returns the time
// reached and whether it stopped at a crossing.
func (f *VFleet) run(i int, t float64, loadW float64, detect bool) (float64, bool) {
	b := &f.batteries[i]
	idleW := f.idleWh / f.roundSec
	for b.Clock() < t {
		k := int(b.Clock() / f.roundSec)
		segEnd := math.Min(t, float64(k+1)*f.roundSec)
		if segEnd <= b.Clock() { // float dust on a round boundary
			segEnd = t
		}
		harvestW := f.rateWhPerSec(i, k)
		drainW := idleW + loadW
		if detect && b.Usable() {
			if rel := b.TimeToCutoff(drainW - harvestW); b.Clock()+rel < segEnd {
				cross := b.Clock() + rel
				f.settle(i, cross, harvestW, drainW)
				// The crossing time is exact in real arithmetic; float
				// round-off can leave the charge a few ulps off the
				// cutoff. Snap onto it, booking the dust, so a browned
				// node is never Usable.
				if b.ChargeWh() > b.CutoffWh {
					f.consumed[i] += b.Drain(b.ChargeWh() - b.CutoffWh)
				}
				return cross, true
			}
		}
		f.settle(i, segEnd, harvestW, drainW)
	}
	return t, false
}

// settle advances node i's battery to t under constant rates and books
// the chunk into the ledgers.
func (f *VFleet) settle(i int, t, harvestW, drainW float64) {
	b := &f.batteries[i]
	dt := t - b.Clock()
	stored, drained := b.AdvanceTo(t, harvestW, drainW)
	f.harvested[i] += stored
	f.consumed[i] += drained
	f.wasted[i] += harvestW*dt - stored
}

// ScanAfford simulates node i forward from its current state under idle
// draw and trace harvest and returns the first time its charge reaches
// cutoff + costWh (wake — the charge-arrival crossing the engine turns
// into a wake-up event) along with the first time it crosses its cutoff
// on the way down (brown; +Inf when the trajectory never dips). The scan
// replays exactly the lump arithmetic run will realize, is pure — battery
// state and ledgers untouched — and is bounded by deadline: wake is +Inf
// when the target is not reached by then. Scanning a stateful trace
// samples its future rounds through the Integrator cache; that future is
// simply realized early and replays identically when the clock reaches
// it.
func (f *VFleet) ScanAfford(i int, costWh, deadline float64) (wake, brown float64) {
	b := &f.batteries[i]
	target := b.CutoffWh + costWh
	charge := b.ChargeWh()
	clock := b.Clock()
	idleW := f.idleWh / f.roundSec
	brown = math.Inf(1)
	if charge >= target {
		return clock, brown
	}
	for clock < deadline {
		k := int(clock / f.roundSec)
		segEnd := math.Min(deadline, float64(k+1)*f.roundSec)
		if segEnd <= clock {
			segEnd = deadline
		}
		net := f.rateWhPerSec(i, k) - idleW
		if math.IsInf(brown, 1) && charge > b.CutoffWh {
			if rel := timeToCutoff(charge, b.CutoffWh, net); clock+rel < segEnd {
				brown = clock + rel
			}
		}
		if rel := timeToCharge(charge, target, b.CapacityWh, net); clock+rel <= segEnd {
			return clock + rel, brown
		}
		// Settle the segment with the same clamp order run applies.
		dt := segEnd - clock
		charge -= math.Min(idleW*dt, charge)
		charge += math.Min(f.rateWhPerSec(i, k)*dt, b.CapacityWh-charge)
		clock = segEnd
		if charge >= target {
			return clock, brown
		}
	}
	return math.Inf(1), brown
}

// A VFleet is the battery state charge-aware policies see through the
// round context in the async engine.
var _ core.BatteryView = (*VFleet)(nil)
