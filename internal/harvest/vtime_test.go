package harvest

import (
	"math"
	"testing"

	"repro/internal/energy"
)

func TestConstantEnergyBetween(t *testing.T) {
	c := Constant{Wh: 0.4}
	if got := c.EnergyBetween(0, 1.5, 4.0); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("EnergyBetween(1.5, 4.0) = %v, want 1.0", got)
	}
	if got := c.EnergyBetween(0, 3, 3); got != 0 {
		t.Fatalf("empty interval = %v, want 0", got)
	}
	if got := c.EnergyBetween(0, 5, 2); got != 0 {
		t.Fatalf("reversed interval = %v, want 0", got)
	}
}

func TestDiurnalEnergyBetweenClosedForm(t *testing.T) {
	const peak, period = 2.0, 24
	d, err := NewDiurnal(peak, period, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One whole period integrates the daylight half-sine exactly:
	// peak·period/π.
	want := peak * float64(period) / math.Pi
	if got := d.EnergyBetween(0, 0, period); math.Abs(got-want) > 1e-9 {
		t.Fatalf("whole period = %v, want %v", got, want)
	}
	// Any period-long window sees the same energy regardless of offset.
	if got := d.EnergyBetween(0, 7.3, 7.3+period); math.Abs(got-want) > 1e-9 {
		t.Fatalf("offset period = %v, want %v", got, want)
	}
	// The night half contributes nothing.
	if got := d.EnergyBetween(0, period/2, period); got != 0 {
		t.Fatalf("night half = %v, want 0", got)
	}
	// Closed form matches numerical integration of the instantaneous rate.
	rate := func(x float64) float64 {
		if s := math.Sin(2 * math.Pi * x / period); s > 0 {
			return peak * s
		}
		return 0
	}
	t0, t1 := 3.25, 17.8
	num, steps := 0.0, 200000
	h := (t1 - t0) / float64(steps)
	for i := 0; i < steps; i++ {
		num += rate(t0+(float64(i)+0.5)*h) * h
	}
	if got := d.EnergyBetween(0, t0, t1); math.Abs(got-num) > 1e-6 {
		t.Fatalf("closed form %v vs numerical %v", got, num)
	}
}

func TestDiurnalEnergyBetweenPhaseShift(t *testing.T) {
	d, err := NewDiurnal(1.0, 12, LongitudePhase(4))
	if err != nil {
		t.Fatal(err)
	}
	// Node 2 is phase-shifted half a period from node 0: its energy over
	// [0, 6) equals node 0's over [6, 12).
	a := d.EnergyBetween(2, 0, 6)
	b := d.EnergyBetween(0, 6, 12)
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("phase shift broken: node2[0,6)=%v node0[6,12)=%v", a, b)
	}
}

func TestEnergyBetweenAdditive(t *testing.T) {
	rep, err := NewReplay([][]float64{{0.5}, {0.0}, {1.25}})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := NewDiurnal(1.5, 6, nil)
	for _, tr := range []ContinuousTrace{Constant{Wh: 0.3}, d, rep} {
		whole := tr.EnergyBetween(0, 0.4, 5.7)
		split := tr.EnergyBetween(0, 0.4, 2.1) + tr.EnergyBetween(0, 2.1, 5.7)
		if math.Abs(whole-split) > 1e-12 {
			t.Fatalf("%s not additive: whole %v split %v", tr.Name(), whole, split)
		}
	}
}

func TestReplayEnergyBetweenWraps(t *testing.T) {
	rep, err := NewReplay([][]float64{{1.0}, {2.0}})
	if err != nil {
		t.Fatal(err)
	}
	// [1.5, 3.5) covers half of round 1 (rate 2), all of round 2 (wraps to
	// rate 1), half of round 3 (rate 2): 1 + 1 + 1 = 3.
	if got := rep.EnergyBetween(0, 1.5, 3.5); math.Abs(got-3.0) > 1e-12 {
		t.Fatalf("wrap integral = %v, want 3.0", got)
	}
	// Negative start clamps to 0.
	if got := rep.EnergyBetween(0, -2, 1); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("clamped start = %v, want 1.0", got)
	}
}

// countingTrace records every (node, round) HarvestWh call to pin the
// once-per-round discipline through the Integrator.
type countingTrace struct {
	calls map[[2]int]int
}

func (c *countingTrace) HarvestWh(node, t int) float64 {
	if c.calls == nil {
		c.calls = map[[2]int]int{}
	}
	c.calls[[2]int{node, t}]++
	return float64(t + 1)
}

func (c *countingTrace) Name() string { return "counting" }

func TestIntegratorSamplesOncePerRound(t *testing.T) {
	ct := &countingTrace{}
	in := NewIntegrator(ct, 2)
	// Query overlapping intervals and repeat lookups; the generator must
	// see each (node, round) exactly once, in increasing round order.
	in.EnergyBetween(0, 0, 3)
	in.EnergyBetween(0, 1.5, 2.5)
	in.EnergyBetween(0, 0, 4)
	if got := in.HarvestWh(0, 2); math.Abs(got-3.0) > 1e-12 {
		t.Fatalf("HarvestWh(0,2) = %v, want 3", got)
	}
	in.HarvestWh(0, 2) // repeat must hit the cache
	for k := 0; k < 4; k++ {
		if n := ct.calls[[2]int{0, k}]; n != 1 {
			t.Fatalf("round %d sampled %d times, want 1", k, n)
		}
	}
	if len(ct.calls) != 4 {
		t.Fatalf("generator saw %d samples, want 4", len(ct.calls))
	}
	// Step integration of the cached rates: rounds 0..2 have rates 1,2,3.
	if got := in.EnergyBetween(0, 0.5, 2.5); math.Abs(got-(0.5+2+1.5)) > 1e-12 {
		t.Fatalf("integrator EnergyBetween = %v, want 4.0", got)
	}
}

func TestIntegratorWrapsMarkovDeterministically(t *testing.T) {
	mk := func() *Integrator {
		tr, err := NewMarkovOnOff(3, 0.8, 0.3, 0.4, 99)
		if err != nil {
			t.Fatal(err)
		}
		return NewIntegrator(tr, 3)
	}
	a, b := mk(), mk()
	for node := 0; node < 3; node++ {
		for k := 0; k < 16; k++ {
			if a.HarvestWh(node, k) != b.HarvestWh(node, k) {
				t.Fatalf("markov integrator not deterministic at node %d round %d", node, k)
			}
		}
	}
	// ResetTrace replays the identical sequence.
	want := a.EnergyBetween(1, 0, 16)
	a.ResetTrace()
	if got := a.EnergyBetween(1, 0, 16); got != want {
		t.Fatalf("post-reset energy %v, want %v", got, want)
	}
}

func TestAsContinuous(t *testing.T) {
	c := Constant{Wh: 1}
	if _, ok := AsContinuous(c, 4).(Constant); !ok {
		t.Fatal("Constant should pass through AsContinuous unwrapped")
	}
	tr, err := NewMarkovOnOff(4, 1, 0.5, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := AsContinuous(tr, 4).(*Integrator); !ok {
		t.Fatal("MarkovOnOff should wrap in an Integrator")
	}
}

func TestBatteryAdvanceTo(t *testing.T) {
	b, err := NewBattery(10, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Net +0.5/s for 4s: drain 2, harvest 4.
	stored, drained := b.AdvanceTo(4, 1.0, 0.5)
	if math.Abs(stored-4) > 1e-12 || math.Abs(drained-2) > 1e-12 {
		t.Fatalf("stored %v drained %v, want 4, 2", stored, drained)
	}
	if math.Abs(b.ChargeWh()-7) > 1e-12 || b.Clock() != 4 {
		t.Fatalf("charge %v clock %v, want 7, 4", b.ChargeWh(), b.Clock())
	}
	// Time at or before the clock is a no-op.
	if s, d := b.AdvanceTo(4, 1, 1); s != 0 || d != 0 {
		t.Fatalf("no-op advance moved energy: %v, %v", s, d)
	}
	// Harvest clamps at capacity: 7 + 10·1 caps at 10, 7 wasted implicitly.
	stored, _ = b.AdvanceTo(14, 1.0, 0)
	if math.Abs(stored-3) > 1e-12 || math.Abs(b.ChargeWh()-10) > 1e-12 {
		t.Fatalf("clamped store %v charge %v, want 3, 10", stored, b.ChargeWh())
	}
	// Drain clamps at empty.
	_, drained = b.AdvanceTo(100, 0, 1.0)
	if math.Abs(drained-10) > 1e-12 || b.ChargeWh() != 0 {
		t.Fatalf("clamped drain %v charge %v, want 10, 0", drained, b.ChargeWh())
	}
}

func TestBatteryCrossingSolvers(t *testing.T) {
	b, err := NewBattery(10, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.TimeToCharge(7, 0.5); math.Abs(got-6) > 1e-12 {
		t.Fatalf("TimeToCharge rising = %v, want 6", got)
	}
	if got := b.TimeToCharge(3, -2); got != 0 {
		t.Fatalf("TimeToCharge already there = %v, want 0", got)
	}
	if got := b.TimeToCharge(7, 0); !math.IsInf(got, 1) {
		t.Fatalf("TimeToCharge flat = %v, want +Inf", got)
	}
	if got := b.TimeToCharge(11, 5); !math.IsInf(got, 1) {
		t.Fatalf("TimeToCharge beyond capacity = %v, want +Inf", got)
	}
	if got := b.TimeToCutoff(0.5); math.Abs(got-6) > 1e-12 {
		t.Fatalf("TimeToCutoff falling = %v, want 6", got)
	}
	if got := b.TimeToCutoff(-0.5); !math.IsInf(got, 1) {
		t.Fatalf("TimeToCutoff charging = %v, want +Inf", got)
	}
	drained, err2 := NewBattery(10, 1, 1)
	if err2 != nil {
		t.Fatal(err2)
	}
	if got := drained.TimeToCutoff(0.5); got != 0 {
		t.Fatalf("TimeToCutoff at cutoff = %v, want 0", got)
	}
}

func TestSoAFleetCrossingSolversMatchBattery(t *testing.T) {
	devs := energy.AssignDevices(4, energy.Devices())
	f, err := NewSoAFleet(devs, energy.CIFAR10Workload(), Constant{Wh: 0}, Options{CapacityRounds: 8, InitialSoC: 0.5, CutoffSoC: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f.Nodes(); i++ {
		b := Battery{CapacityWh: f.CapacityWh(i), CutoffWh: f.CutoffWh(i), chargeWh: f.ChargeWh(i)}
		target := f.CutoffWh(i) + 2*f.TrainCostWh(i)
		if got, want := f.TimeToCharge(i, target, 0.25), b.TimeToCharge(target, 0.25); got != want {
			t.Fatalf("node %d TimeToCharge: soa %v battery %v", i, got, want)
		}
		if got, want := f.TimeToCutoff(i, 0.125), b.TimeToCutoff(0.125); got != want {
			t.Fatalf("node %d TimeToCutoff: soa %v battery %v", i, got, want)
		}
	}
}
