package harvest

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Replay I/O: harvest schedules travel as long-form CSV so recorded ambient
// traces (solar logs, RF measurements) can be shipped, inspected, and
// replayed — the same interchange role energy/traceio.go plays for device
// profiles.
//
// Format (header required, rows in any order, every (round, node) cell of
// the rectangle exactly once):
//
//	round,node,harvest_wh
//	0,0,0.0065
//	0,1,0

const replayHeader = "round,node,harvest_wh"

// WriteReplay writes a harvest schedule (wh[t][node]) as CSV.
func WriteReplay(w io.Writer, wh [][]float64) error {
	if _, err := NewReplay(wh); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, replayHeader); err != nil {
		return err
	}
	for t, row := range wh {
		for i, v := range row {
			if _, err := fmt.Fprintf(bw, "%d,%d,%g\n", t, i, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadReplay parses a harvest schedule from CSV, validating that the rounds
// and nodes form a complete rectangle with no duplicate cells.
func ReadReplay(r io.Reader) (*Replay, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("harvest: empty replay file")
	}
	if header := strings.TrimSpace(sc.Text()); header != replayHeader {
		return nil, fmt.Errorf("harvest: unexpected replay header %q", header)
	}
	type cell struct{ t, node int }
	values := map[cell]float64{}
	maxT, maxNode := -1, -1
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("harvest: line %d: want 3 fields, got %d", line, len(parts))
		}
		t, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil || t < 0 {
			return nil, fmt.Errorf("harvest: line %d: bad round %q", line, parts[0])
		}
		node, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil || node < 0 {
			return nil, fmt.Errorf("harvest: line %d: bad node %q", line, parts[1])
		}
		wh, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("harvest: line %d: bad harvest: %w", line, err)
		}
		c := cell{t, node}
		if _, dup := values[c]; dup {
			return nil, fmt.Errorf("harvest: line %d: duplicate cell round=%d node=%d", line, t, node)
		}
		values[c] = wh
		if t > maxT {
			maxT = t
		}
		if node > maxNode {
			maxNode = node
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("harvest: replay file has no cells")
	}
	if want := (maxT + 1) * (maxNode + 1); len(values) != want {
		return nil, fmt.Errorf("harvest: replay has %d cells, rectangle %dx%d needs %d",
			len(values), maxT+1, maxNode+1, want)
	}
	wh := make([][]float64, maxT+1)
	for t := range wh {
		wh[t] = make([]float64, maxNode+1)
		for i := range wh[t] {
			wh[t][i] = values[cell{t, i}]
		}
	}
	return NewReplay(wh)
}
