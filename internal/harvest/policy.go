package harvest

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// The policies below implement core.Policy from live battery state,
// generalizing the paper's static SkipTrain-constrained rule
// p_i = min(τ_i / T_train, 1) (Eq. 5) to charge-aware rules
// p_i^t = f(SoC_i^t). They are declared against the same
// Participate(node, t, rng) contract, so they drop into core.Algorithm and
// the sim engine unchanged; each consults — and on success drains — the
// shared Fleet, which is safe for concurrent use across distinct nodes.

// SoCThreshold trains whenever the node's state of charge is at least
// MinSoC and the battery can afford a full round: the simplest
// duty-cycling rule of intermittent computing.
type SoCThreshold struct {
	Fleet  *Fleet
	MinSoC float64
}

// NewSoCThreshold validates and returns a threshold policy.
func NewSoCThreshold(f *Fleet, minSoC float64) (*SoCThreshold, error) {
	if f == nil {
		return nil, fmt.Errorf("harvest: nil fleet")
	}
	if minSoC < 0 || minSoC > 1 {
		return nil, fmt.Errorf("harvest: threshold SoC %v outside [0, 1]", minSoC)
	}
	return &SoCThreshold{Fleet: f, MinSoC: minSoC}, nil
}

// Participate trains iff SoC ≥ MinSoC and the round is affordable.
func (p *SoCThreshold) Participate(node, _ int, _ *rng.RNG) bool {
	if p.Fleet.SoC(node) < p.MinSoC {
		return false
	}
	return p.Fleet.TryTrain(node)
}

// Name returns "soc-threshold".
func (*SoCThreshold) Name() string { return "soc-threshold" }

// SoCHysteresis duty-cycles with two thresholds to avoid oscillating at a
// single cutoff: a node that falls below Low goes dormant and only resumes
// training after recharging above High — the checkpoint/restore pattern of
// intermittently-powered devices.
type SoCHysteresis struct {
	fleet     *Fleet
	low, high float64
	dormant   []bool
}

// NewSoCHysteresis validates 0 ≤ low < high ≤ 1 and returns the policy.
func NewSoCHysteresis(f *Fleet, low, high float64) (*SoCHysteresis, error) {
	if f == nil {
		return nil, fmt.Errorf("harvest: nil fleet")
	}
	if low < 0 || high > 1 || low >= high {
		return nil, fmt.Errorf("harvest: hysteresis band [%v, %v] invalid", low, high)
	}
	return &SoCHysteresis{fleet: f, low: low, high: high, dormant: make([]bool, f.Nodes())}, nil
}

// Participate applies the two-threshold rule. Dormancy state is strictly
// per-node, so concurrent calls for distinct nodes are race-free.
func (p *SoCHysteresis) Participate(node, _ int, _ *rng.RNG) bool {
	soc := p.fleet.SoC(node)
	if p.dormant[node] {
		if soc < p.high {
			return false
		}
		p.dormant[node] = false
	} else if soc < p.low {
		p.dormant[node] = true
		return false
	}
	return p.fleet.TryTrain(node)
}

// Name returns "soc-hysteresis".
func (*SoCHysteresis) Name() string { return "soc-hysteresis" }

// Dormant reports whether node is currently in the dormant phase.
func (p *SoCHysteresis) Dormant(node int) bool { return p.dormant[node] }

// Reset wakes every node: the policy's dormancy is run state, not
// configuration, so a fleet rewound with Fleet.Reset needs its hysteresis
// policy Reset too (or rebuilt) for the next run to replay the first
// bit-for-bit. The threshold and proportional policies are stateless and
// need no counterpart.
func (p *SoCHysteresis) Reset() {
	for i := range p.dormant {
		p.dormant[i] = false
	}
}

// SoCProportional trains with probability p_i^t = SoC_i^t raised to
// Exponent: the charge-aware generalization of Eq. 5, spreading expected
// consumption in proportion to available charge instead of a static budget
// ratio. Exponent 1 is linear; larger exponents hoard charge (train only
// when nearly full), smaller ones spend it eagerly.
type SoCProportional struct {
	Fleet    *Fleet
	Exponent float64
}

// NewSoCProportional validates and returns a proportional policy.
func NewSoCProportional(f *Fleet, exponent float64) (*SoCProportional, error) {
	if f == nil {
		return nil, fmt.Errorf("harvest: nil fleet")
	}
	if exponent <= 0 {
		return nil, fmt.Errorf("harvest: non-positive exponent %v", exponent)
	}
	return &SoCProportional{Fleet: f, Exponent: exponent}, nil
}

// Probability returns the node's current training probability f(SoC).
func (p *SoCProportional) Probability(node int) float64 {
	return math.Pow(p.Fleet.SoC(node), p.Exponent)
}

// Participate flips the charge-proportional coin and consumes battery only
// when actually training (mirroring Algorithm 2 lines 5-11).
func (p *SoCProportional) Participate(node, _ int, r *rng.RNG) bool {
	if r.Float64() <= p.Probability(node) {
		return p.Fleet.TryTrain(node)
	}
	return false
}

// Name returns "soc-proportional".
func (*SoCProportional) Name() string { return "soc-proportional" }
