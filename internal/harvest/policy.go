package harvest

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/rng"
)

// The policies below implement core.Policy from live battery state,
// generalizing the paper's static SkipTrain-constrained rule
// p_i = min(τ_i / T_train, 1) (Eq. 5) to charge-aware rules
// p_i^t = f(SoC_i^t). They read the battery through the round context
// (core.RoundContext.Battery) rather than holding a fleet pointer of their
// own, so one policy value works against any fleet the engine attaches;
// all of them are marked core.BatteryDependent, and sim.Run rejects a run
// that pairs one with no fleet. HorizonPlan additionally consumes the
// context's harvest forecast window — the MPC-style planner the forecaster
// layer (forecast.go) exists to feed.

// SoCThreshold trains whenever the node's state of charge is at least
// MinSoC and the battery can afford a full round: the simplest
// duty-cycling rule of intermittent computing.
type SoCThreshold struct {
	MinSoC float64
}

// NewSoCThreshold validates and returns a threshold policy.
func NewSoCThreshold(minSoC float64) (*SoCThreshold, error) {
	if minSoC < 0 || minSoC > 1 {
		return nil, fmt.Errorf("harvest: threshold SoC %v outside [0, 1]", minSoC)
	}
	return &SoCThreshold{MinSoC: minSoC}, nil
}

// Participate trains iff SoC ≥ MinSoC and the round is affordable.
func (p *SoCThreshold) Participate(node int, ctx core.RoundContext, _ *rng.RNG) bool {
	b := ctx.Battery
	if b == nil || b.SoC(node) < p.MinSoC {
		return false
	}
	return b.TryTrain(node)
}

// Name returns "soc-threshold".
func (*SoCThreshold) Name() string { return "soc-threshold" }

// RequiresBattery marks the policy core.BatteryDependent.
func (*SoCThreshold) RequiresBattery() {}

// SoCHysteresis duty-cycles with two thresholds to avoid oscillating at a
// single cutoff: a node that falls below Low goes dormant and only resumes
// training after recharging above High — the checkpoint/restore pattern of
// intermittently-powered devices.
type SoCHysteresis struct {
	low, high float64
	dormant   []bool
}

// NewSoCHysteresis validates 0 ≤ low < high ≤ 1 and returns the policy for
// a fleet of the given size.
func NewSoCHysteresis(nodes int, low, high float64) (*SoCHysteresis, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("harvest: hysteresis policy for %d nodes", nodes)
	}
	if low < 0 || high > 1 || low >= high {
		return nil, fmt.Errorf("harvest: hysteresis band [%v, %v] invalid", low, high)
	}
	return &SoCHysteresis{low: low, high: high, dormant: make([]bool, nodes)}, nil
}

// Participate applies the two-threshold rule. Dormancy state is strictly
// per-node, so concurrent calls for distinct nodes are race-free.
func (p *SoCHysteresis) Participate(node int, ctx core.RoundContext, _ *rng.RNG) bool {
	b := ctx.Battery
	if b == nil {
		return false
	}
	soc := b.SoC(node)
	if p.dormant[node] {
		if soc < p.high {
			return false
		}
		p.dormant[node] = false
	} else if soc < p.low {
		p.dormant[node] = true
		return false
	}
	return b.TryTrain(node)
}

// Name returns "soc-hysteresis".
func (*SoCHysteresis) Name() string { return "soc-hysteresis" }

// RequiresBattery marks the policy core.BatteryDependent.
func (*SoCHysteresis) RequiresBattery() {}

// Dormant reports whether node is currently in the dormant phase.
func (p *SoCHysteresis) Dormant(node int) bool { return p.dormant[node] }

// Reset wakes every node (core.ResettablePolicy): dormancy is run state,
// not configuration, so a fleet rewound with Fleet.Reset needs its
// hysteresis policy Reset too (or rebuilt) for the next run to replay the
// first bit-for-bit. The threshold, proportional, and horizon-plan
// policies are stateless and need no counterpart.
func (p *SoCHysteresis) Reset() {
	for i := range p.dormant {
		p.dormant[i] = false
	}
}

// Consumed reports whether any node is dormant (core.ResettablePolicy):
// the only run state the policy carries, and exactly what a second run
// would silently inherit. sim.Run rejects a consumed policy.
func (p *SoCHysteresis) Consumed() bool {
	for _, d := range p.dormant {
		if d {
			return true
		}
	}
	return false
}

// SoCProportional trains with probability p_i^t = SoC_i^t raised to
// Exponent: the charge-aware generalization of Eq. 5, spreading expected
// consumption in proportion to available charge instead of a static budget
// ratio. Exponent 1 is linear; larger exponents hoard charge (train only
// when nearly full), smaller ones spend it eagerly.
type SoCProportional struct {
	Exponent float64
}

// NewSoCProportional validates and returns a proportional policy.
func NewSoCProportional(exponent float64) (*SoCProportional, error) {
	if exponent <= 0 {
		return nil, fmt.Errorf("harvest: non-positive exponent %v", exponent)
	}
	return &SoCProportional{Exponent: exponent}, nil
}

// Probability returns the training probability f(soc) = soc^Exponent.
func (p *SoCProportional) Probability(soc float64) float64 {
	return math.Pow(soc, p.Exponent)
}

// Participate flips the charge-proportional coin and consumes battery only
// when actually training (mirroring Algorithm 2 lines 5-11).
func (p *SoCProportional) Participate(node int, ctx core.RoundContext, r *rng.RNG) bool {
	b := ctx.Battery
	if b == nil {
		return false
	}
	if r.Float64() <= p.Probability(b.SoC(node)) {
		return b.TryTrain(node)
	}
	return false
}

// Name returns "soc-proportional".
func (*SoCProportional) Name() string { return "soc-proportional" }

// RequiresBattery marks the policy core.BatteryDependent.
func (*SoCProportional) RequiresBattery() {}

// HorizonPlan is the MPC-style forecast-aware policy: each round it solves
// a greedy knapsack over the node's forecast window — train in the rounds
// whose projected charge clears the training cost, subject to the
// coordinated Γ schedule and to never letting the projected trajectory dip
// below the brown-out cutoff plus a reserve margin — then executes only
// the window's first decision and replans next round. The lookahead is
// what the SoC rules above cannot have: a node facing a long forecast
// trough conserves charge to survive it, while a node about to waste
// arrivals on a full battery spends them on training instead.
type HorizonPlan struct {
	// ReserveSoC is the safety margin, as a fraction of capacity, kept
	// above the brown-out cutoff throughout the planned trajectory.
	ReserveSoC float64
}

// NewHorizonPlan validates the reserve margin and returns the policy.
func NewHorizonPlan(reserveSoC float64) (*HorizonPlan, error) {
	if reserveSoC < 0 || reserveSoC >= 1 {
		return nil, fmt.Errorf("harvest: horizon-plan reserve SoC %v outside [0, 1)", reserveSoC)
	}
	return &HorizonPlan{ReserveSoC: reserveSoC}, nil
}

// Name returns "horizon-plan".
func (*HorizonPlan) Name() string { return "horizon-plan" }

// RequiresBattery marks the policy core.BatteryDependent.
func (*HorizonPlan) RequiresBattery() {}

// RequiresForecast marks the policy core.ForecastDependent: with an empty
// window there is nothing to plan over, and the policy refuses to train
// rather than degrade into a silent threshold rule.
func (*HorizonPlan) RequiresForecast() {}

// planState captures the per-node constants of one planning problem.
type planState struct {
	cost, overhead, capacity, reserve float64
}

func (p *HorizonPlan) state(node int, b core.BatteryView) planState {
	capacity := b.CapacityWh(node)
	return planState{
		cost:     b.TrainCostWh(node),
		overhead: b.OverheadWh(node),
		capacity: capacity,
		reserve:  b.CutoffWh(node) + p.ReserveSoC*capacity,
	}
}

// survives reports whether a trajectory starting at charge just after the
// round-k training decision stays at or above the reserve through the rest
// of the window with no further training: each remaining round pays
// overhead (the low point, checked against the reserve), then harvests the
// forecast arrival, clamped at capacity — the same order the fleet's
// battery update applies.
func survives(charge float64, k int, forecast []float64, s planState) bool {
	for j := k; j < len(forecast); j++ {
		charge -= s.overhead
		if charge < s.reserve {
			return false
		}
		charge += forecast[j]
		if charge > s.capacity {
			charge = s.capacity
		}
	}
	return true
}

// trainSlot reports whether round ctx.Round+k is a coordinated training
// round; a nil schedule means every round trains.
func trainSlot(ctx core.RoundContext, k int) bool {
	return ctx.Schedule == nil || ctx.Schedule.Kind(ctx.Round+k) == core.RoundTrain
}

// Plan solves the window's greedy knapsack and returns the per-round
// training decisions: walking the window forward, each coordinated
// training slot trains when the debited trajectory still survives to the
// window's end with room for the reserve. Only plan[0] is ever executed
// (Participate); the rest is the policy's forward view, exposed for tests
// and introspection. Plan is read-only on the battery.
func (p *HorizonPlan) Plan(node int, ctx core.RoundContext) []bool {
	plan := make([]bool, len(ctx.Forecast))
	b := ctx.Battery
	if b == nil || len(ctx.Forecast) == 0 {
		return plan
	}
	s := p.state(node, b)
	charge := b.ChargeWh(node)
	for k := range plan {
		if trainSlot(ctx, k) && charge-s.cost >= s.reserve && survives(charge-s.cost, k, ctx.Forecast, s) {
			plan[k] = true
			charge -= s.cost
		}
		charge -= s.overhead
		if charge < 0 {
			charge = 0
		}
		charge += ctx.Forecast[k]
		if charge > s.capacity {
			charge = s.capacity
		}
	}
	return plan
}

// Participate executes the plan's first decision: train now iff the round
// is affordable above the reserve and the debited trajectory survives the
// forecast window. Equivalent to Plan(node, ctx)[0] without materializing
// the rest of the window.
func (p *HorizonPlan) Participate(node int, ctx core.RoundContext, _ *rng.RNG) bool {
	b := ctx.Battery
	if b == nil || len(ctx.Forecast) == 0 {
		return false
	}
	if !trainSlot(ctx, 0) {
		return false
	}
	s := p.state(node, b)
	charge := b.ChargeWh(node)
	if charge-s.cost < s.reserve || !survives(charge-s.cost, 0, ctx.Forecast, s) {
		return false
	}
	return b.TryTrain(node)
}
