package harvest

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Trace generates the ambient energy arriving at each node each round.
//
// A Fleet calls HarvestWh(node, t) exactly once per node per round, with t
// strictly increasing; stateful traces (MarkovOnOff) rely on this call
// discipline. Implementations keep all mutable state strictly per-node so
// concurrent calls for distinct nodes are race-free and deterministic.
type Trace interface {
	// HarvestWh returns the energy (Wh) node harvests during round t.
	HarvestWh(node, t int) float64
	// Name identifies the trace in reports.
	Name() string
}

// TraceResetter is implemented by stateful traces that can rewind to their
// initial state — re-deriving any per-node RNG streams from the original
// seed, so the replayed trajectory is bit-identical to the first one.
// Fleet.Reset calls it when present; stateless traces (Constant, Diurnal,
// Replay are pure functions of (node, t)) need no reset. Custom stateful
// Trace implementations must implement it for their fleets to be reusable
// across runs.
type TraceResetter interface {
	ResetTrace()
}

// RowTrace is implemented by traces that can fill a whole round's harvest
// values in one call: HarvestRowWh(t, out) must leave out[i] bit-identical
// to what HarvestWh(i, t) would have returned, for every i in range, and
// must advance any per-node state exactly as len(out) individual calls
// would. A fleet engine uses it in place of the per-node calls — at most
// once per round, from a single goroutine — so implementations may keep
// whole-row caches that HarvestWh itself must never touch (per-node
// HarvestWh calls stay race-free across nodes).
//
// All built-in traces implement RowTrace. Constant and Replay fill rows
// trivially; Diurnal amortizes its per-node sinusoid through a day-row
// cache; MarkovOnOff advances every chain in index order.
type RowTrace interface {
	Trace
	HarvestRowWh(t int, out []float64)
}

// Constant harvests the same amount every round on every node. Wh = 0 models
// the paper's no-recharge setting where batteries only drain.
type Constant struct{ Wh float64 }

// HarvestWh returns the constant amount.
func (c Constant) HarvestWh(int, int) float64 { return c.Wh }

// ForecastWh fills out with the constant amount (Lookahead).
func (c Constant) ForecastWh(_, _ int, out []float64) {
	for k := range out {
		out[k] = c.Wh
	}
}

// HarvestRowWh fills the whole row with the constant amount (RowTrace).
func (c Constant) HarvestRowWh(_ int, out []float64) {
	for i := range out {
		out[i] = c.Wh
	}
}

// Name returns e.g. "constant(0.005)".
func (c Constant) Name() string { return fmt.Sprintf("constant(%g)", c.Wh) }

// Diurnal is a clipped solar sinusoid: nodes harvest
//
//	max(0, PeakWh * sin(2π (t/Period + phase(node))))
//
// so each simulated day is Period rounds, half of it night (zero harvest).
// The per-node phase places nodes at different longitudes: a fleet spread
// around the globe trains in waves as the sun moves.
type Diurnal struct {
	peakWh float64
	period int
	phase  func(node int) float64

	// rows caches one harvest row per day slot (t mod period) for the
	// RowTrace bulk path. HarvestWh computes its value from t mod period
	// too, so a cached row is bit-identical to recomputing it — the sun on
	// day two is exactly the sun on day one. Only HarvestRowWh (documented
	// single-goroutine) touches the cache; per-node HarvestWh never does,
	// keeping concurrent per-node calls race-free. The cache is capped at
	// diurnalRowCacheMaxValues values so million-node fleets don't pin
	// period×nodes floats; past the cap rows are recomputed each call.
	rows map[int][]float64
}

// diurnalRowCacheMaxValues caps the day-row cache at 8M float64s (64 MB).
const diurnalRowCacheMaxValues = 8 << 20

// NewDiurnal validates and returns a diurnal trace. phase maps a node to its
// day-fraction offset in [0, 1); nil means all nodes share the same sun.
func NewDiurnal(peakWh float64, period int, phase func(node int) float64) (*Diurnal, error) {
	if peakWh <= 0 {
		return nil, fmt.Errorf("harvest: non-positive diurnal peak %v", peakWh)
	}
	if period < 2 {
		return nil, fmt.Errorf("harvest: diurnal period %d < 2 rounds", period)
	}
	if phase == nil {
		phase = func(int) float64 { return 0 }
	}
	return &Diurnal{peakWh: peakWh, period: period, phase: phase}, nil
}

// HarvestWh returns the clipped sinusoid at round t for the node's phase.
// The day fraction is computed from t mod period, so the value for round t
// is bit-identical to the value for round t+period — the exact periodicity
// the day-row cache of HarvestRowWh relies on. (Dividing the raw round
// index instead would drift by an ulp across day boundaries.)
func (d *Diurnal) HarvestWh(node, t int) float64 {
	frac := math.Mod(float64(t%d.period)/float64(d.period)+d.phase(node), 1)
	if s := math.Sin(2 * math.Pi * frac); s > 0 {
		return d.peakWh * s
	}
	return 0
}

// HarvestRowWh fills the whole round-t row (RowTrace), serving repeats of a
// day slot from the row cache: after the first simulated day the sinusoid
// is never evaluated again, which is what carries the struct-of-arrays
// fleet past the pointer engine on diurnal workloads.
func (d *Diurnal) HarvestRowWh(t int, out []float64) {
	slot := t % d.period
	if row, ok := d.rows[slot]; ok && len(row) == len(out) {
		copy(out, row)
		return
	}
	for i := range out {
		out[i] = d.HarvestWh(i, t)
	}
	if d.period*len(out) > diurnalRowCacheMaxValues {
		return
	}
	if d.rows == nil {
		d.rows = make(map[int][]float64, d.period)
	}
	row := make([]float64, len(out))
	copy(row, out)
	d.rows[slot] = row
}

// ForecastWh fills out[k] with the exact sinusoid value of round t+k
// (Lookahead): the sun's future is a pure function of time.
func (d *Diurnal) ForecastWh(node, t int, out []float64) {
	for k := range out {
		out[k] = d.HarvestWh(node, t+k)
	}
}

// Name returns e.g. "diurnal(peak=0.01,period=24)".
func (d *Diurnal) Name() string {
	return fmt.Sprintf("diurnal(peak=%g,period=%d)", d.peakWh, d.period)
}

// LongitudePhase spreads n nodes evenly around the globe: node i sits at
// phase i/n of a day. Use as the phase function of NewDiurnal.
func LongitudePhase(n int) func(node int) float64 {
	return func(node int) float64 { return float64(node%n) / float64(n) }
}

// MarkovOnOff is a bursty two-state source (RF, wind, kinetic): each node
// runs an independent on-off Markov chain and harvests OnWh per round while
// on. Chains start in the on state; transitions use per-node RNG streams
// derived from the seed, so trajectories are reproducible bit-for-bit.
type MarkovOnOff struct {
	onWh           float64
	pOnOff, pOffOn float64
	seed           uint64
	on             []bool
	rngs           []*rng.RNG
}

// markovStreamTag derives the per-node chain streams from the seed.
const markovStreamTag = 0x4a2e57

// NewMarkovOnOff validates and returns a chain trace for n nodes.
func NewMarkovOnOff(n int, onWh, pOnOff, pOffOn float64, seed uint64) (*MarkovOnOff, error) {
	switch {
	case n < 1:
		return nil, fmt.Errorf("harvest: markov trace for %d nodes", n)
	case onWh <= 0:
		return nil, fmt.Errorf("harvest: non-positive on-state harvest %v", onWh)
	case pOnOff < 0 || pOnOff > 1 || pOffOn < 0 || pOffOn > 1:
		return nil, fmt.Errorf("harvest: markov probabilities (%v, %v) outside [0,1]", pOnOff, pOffOn)
	}
	m := &MarkovOnOff{onWh: onWh, pOnOff: pOnOff, pOffOn: pOffOn, seed: seed,
		on: make([]bool, n), rngs: make([]*rng.RNG, n)}
	m.ResetTrace()
	return m, nil
}

// ResetTrace rewinds every chain to the on state and re-derives the
// per-node RNG streams from the original seed, so the next trajectory is
// bit-identical to a freshly constructed trace (TraceResetter).
func (m *MarkovOnOff) ResetTrace() {
	for i := range m.on {
		m.on[i] = true
		m.rngs[i] = rng.Derive(m.seed, uint64(i), markovStreamTag)
	}
}

// HarvestWh advances node's chain one step and returns its harvest. It must
// be called exactly once per (node, round); see Trace.
func (m *MarkovOnOff) HarvestWh(node, _ int) float64 {
	r := m.rngs[node]
	if m.on[node] {
		if r.Bernoulli(m.pOnOff) {
			m.on[node] = false
		}
	} else if r.Bernoulli(m.pOffOn) {
		m.on[node] = true
	}
	if m.on[node] {
		return m.onWh
	}
	return 0
}

// ForecastWh forks node's chain — a copy of its on/off state and a Clone
// of its RNG stream — and replays it len(out) steps into the future
// (Lookahead). The live chain is never touched, so forecasting any number
// of times leaves the subsequently realized trajectory bit-identical, and
// the forecast itself is exactly what HarvestWh will return for those
// rounds. The round parameter is ignored: a chain can only be forked from
// its live state, so the forecast starts at the generator's present (the
// round the next HarvestWh call realizes — see Lookahead). Safe for
// concurrent use across distinct nodes.
func (m *MarkovOnOff) ForecastWh(node, _ int, out []float64) {
	r := m.rngs[node].Clone()
	on := m.on[node]
	for k := range out {
		if on {
			if r.Bernoulli(m.pOnOff) {
				on = false
			}
		} else if r.Bernoulli(m.pOffOn) {
			on = true
		}
		if on {
			out[k] = m.onWh
		} else {
			out[k] = 0
		}
	}
}

// HarvestRowWh advances every node's chain one step in index order and
// fills the row (RowTrace). Chains are per-node, so the row is
// bit-identical to len(out) individual HarvestWh calls in any order; like
// those calls it must happen exactly once per round.
func (m *MarkovOnOff) HarvestRowWh(t int, out []float64) {
	for i := range out {
		out[i] = m.HarvestWh(i, t)
	}
}

// Name returns e.g. "markov(on=0.01,p10=0.2,p01=0.3)".
func (m *MarkovOnOff) Name() string {
	return fmt.Sprintf("markov(on=%g,p10=%g,p01=%g)", m.onWh, m.pOnOff, m.pOffOn)
}

// Replay plays back a recorded harvest schedule: wh[t][node] watt-hours,
// wrapping around when the run outlives the recording. Build one directly
// from a matrix or from CSV with ReadReplay.
type Replay struct {
	wh [][]float64
}

// NewReplay validates the schedule: at least one round, rectangular rows,
// non-negative entries.
func NewReplay(wh [][]float64) (*Replay, error) {
	if len(wh) == 0 || len(wh[0]) == 0 {
		return nil, fmt.Errorf("harvest: empty replay schedule")
	}
	nodes := len(wh[0])
	for t, row := range wh {
		if len(row) != nodes {
			return nil, fmt.Errorf("harvest: replay round %d has %d nodes, round 0 has %d", t, len(row), nodes)
		}
		for i, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("harvest: replay round %d node %d has invalid harvest %v", t, i, v)
			}
		}
	}
	return &Replay{wh: wh}, nil
}

// Rounds returns the length of the recording before it wraps.
func (p *Replay) Rounds() int { return len(p.wh) }

// Nodes returns the number of nodes in the recording.
func (p *Replay) Nodes() int { return len(p.wh[0]) }

// HarvestWh returns the recorded value, wrapping the recording cyclically.
func (p *Replay) HarvestWh(node, t int) float64 {
	return p.wh[t%len(p.wh)][node]
}

// ForecastWh reveals the remaining recorded rows (Lookahead): out[k] is the
// row for round t+k, and rounds past the final row clamp to zero harvest.
// A recording is evidence only up to its last row — the cyclic wrap of
// HarvestWh is a simulation convenience, not a prediction — and the naive
// wh[t+k] indexing a forecaster would otherwise reach for panics out of
// range there.
func (p *Replay) ForecastWh(node, t int, out []float64) {
	for k := range out {
		if t+k < len(p.wh) {
			out[k] = p.wh[t+k][node]
		} else {
			out[k] = 0
		}
	}
}

// HarvestRowWh copies the recorded row for round t (RowTrace), wrapping
// cyclically like HarvestWh.
func (p *Replay) HarvestRowWh(t int, out []float64) {
	copy(out, p.wh[t%len(p.wh)])
}

// Name returns e.g. "replay(96x24)".
func (p *Replay) Name() string { return fmt.Sprintf("replay(%dx%d)", p.Nodes(), p.Rounds()) }
