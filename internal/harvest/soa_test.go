package harvest

import (
	"runtime"
	"testing"

	"repro/internal/energy"
)

func testSoAFleet(t *testing.T, trace Trace, opt Options) *SoAFleet {
	t.Helper()
	devices := energy.AssignDevices(8, energy.Devices())
	f, err := NewSoAFleet(devices, energy.CIFAR10Workload(), trace, opt)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// driveSoAFleet mirrors driveFleet: greedy training, returning the
// per-round (trained count, mean SoC) trajectory fingerprint.
func driveSoAFleet(f *SoAFleet, rounds int) (trained []int, meanSoC []float64) {
	for t := 0; t < rounds; t++ {
		n := 0
		for i := 0; i < f.Nodes(); i++ {
			if f.TryTrain(i) {
				n++
			}
		}
		f.EndRound(t)
		trained = append(trained, n)
		meanSoC = append(meanSoC, f.MeanSoC())
	}
	return trained, meanSoC
}

// TestSoAFleetConsumedByTryTrainOnly mirrors the PR 4 regression on the SoA
// engine: training drain alone, with no round ever closed, must already
// mark the fleet consumed so sim.Run refuses to build on it.
func TestSoAFleetConsumedByTryTrainOnly(t *testing.T) {
	f := testSoAFleet(t, Constant{Wh: 0}, Options{CapacityRounds: 6, InitialSoC: 0.5})
	if f.Consumed() {
		t.Fatal("fresh fleet reports consumed")
	}
	if !f.TryTrain(0) {
		t.Fatal("affordable round refused")
	}
	if !f.Consumed() {
		t.Fatal("TryTrain drain not reflected in Consumed")
	}
	if err := f.Reset(); err != nil {
		t.Fatal(err)
	}
	if f.Consumed() {
		t.Fatal("fleet still consumed after Reset")
	}
}

// TestSoAFleetResetAfterPartialRound resets a fleet that trained and closed
// only part of its horizon — mid-grid-cell abandonment — and requires the
// replay to be bit-identical from the start.
func TestSoAFleetResetAfterPartialRound(t *testing.T) {
	trace, err := NewMarkovOnOff(8, 0.004, 0.3, 0.3, 99)
	if err != nil {
		t.Fatal(err)
	}
	f := testSoAFleet(t, trace, Options{CapacityRounds: 6, InitialSoC: 0.5})
	soc0 := f.SoCs()
	trained1, soc1 := driveSoAFleet(f, 12)
	// Leave the fleet mid-round: extra training drain after the last
	// close-out, so Reset must also rewind uncommitted TryTrain spending.
	f.TryTrain(0)
	f.TryTrain(3)
	if err := f.Reset(); err != nil {
		t.Fatal(err)
	}
	if f.Consumed() {
		t.Fatal("fleet still consumed after Reset")
	}
	if f.HarvestedWh() != 0 || f.ConsumedWh() != 0 || f.WastedWh() != 0 {
		t.Fatalf("ledgers not zeroed: harvested %v consumed %v wasted %v",
			f.HarvestedWh(), f.ConsumedWh(), f.WastedWh())
	}
	for i, s := range f.SoCs() {
		if s != soc0[i] {
			t.Fatalf("node %d SoC %v after Reset, want initial %v", i, s, soc0[i])
		}
	}
	trained2, soc2 := driveSoAFleet(f, 12)
	for i := range trained1 {
		if trained1[i] != trained2[i] || soc1[i] != soc2[i] {
			t.Fatalf("round %d differs after Reset: (%d, %v) vs (%d, %v)",
				i, trained1[i], soc1[i], trained2[i], soc2[i])
		}
	}
}

// TestSoAFleetResetRestoresClampedInitialCharge pins that Reset restores
// the post-clamp construction charge, not the raw option value.
func TestSoAFleetResetRestoresClampedInitialCharge(t *testing.T) {
	f := testSoAFleet(t, Constant{Wh: 0}, Options{CapacityRounds: 4, InitialRounds: 100})
	if f.SoC(0) != 1 {
		t.Fatalf("construction SoC %v, want clamped full", f.SoC(0))
	}
	f.TryTrain(0)
	f.EndRound(0)
	if err := f.Reset(); err != nil {
		t.Fatal(err)
	}
	if f.SoC(0) != 1 {
		t.Fatalf("Reset SoC %v, want clamped full", f.SoC(0))
	}
}

// TestSoAFleetResetTraceHandling: stateless traces reset fine, a stateful
// trace without TraceResetter must refuse.
func TestSoAFleetResetTraceHandling(t *testing.T) {
	for _, trace := range []Trace{Constant{Wh: 0.001}, mustDiurnal(t), mustReplay(t)} {
		f := testSoAFleet(t, trace, Options{CapacityRounds: 6, InitialSoC: 0.5})
		f.EndRound(0)
		if err := f.Reset(); err != nil {
			t.Fatalf("%s: %v", trace.Name(), err)
		}
	}
	f := testSoAFleet(t, &statefulTrace{}, Options{CapacityRounds: 6, InitialSoC: 0.5})
	f.EndRound(0)
	if err := f.Reset(); err == nil {
		t.Fatal("Reset accepted a stateful, non-resettable trace")
	}
}

// TestSweepMatchesThreePassSequence pins the fusion invariant: one Sweep
// call must leave per-node charge, ledgers, and scratch slices bit-identical
// to the decide-loop + EndRound sequence it replaces, with trained, live,
// and depleted counts exactly matching the staged drive.
func TestSweepMatchesThreePassSequence(t *testing.T) {
	mk := func() (*SoAFleet, *SoAFleet) {
		trace1, err := NewDiurnal(0.01, 8, LongitudePhase(8))
		if err != nil {
			t.Fatal(err)
		}
		trace2, err := NewDiurnal(0.01, 8, LongitudePhase(8))
		if err != nil {
			t.Fatal(err)
		}
		opt := Options{CapacityRounds: 5, InitialSoC: 0.6, CutoffSoC: 0.2, IdleWh: 0.0005}
		return testSoAFleet(t, trace1, opt), testSoAFleet(t, trace2, opt)
	}
	fused, staged := mk()
	decide := func(i int, soc float64) bool { return soc > 0.3 }
	for r := 0; r < 16; r++ {
		stats := fused.Sweep(r, decide)
		trained := 0
		for i := 0; i < staged.Nodes(); i++ {
			if decide(i, staged.SoC(i)) && staged.TryTrain(i) {
				trained++
			}
		}
		staged.EndRound(r)
		_, _, depleted := staged.SoCStats(nil)
		if stats.Trained != trained {
			t.Fatalf("round %d: Sweep trained %d, staged %d", r, stats.Trained, trained)
		}
		if stats.Depleted != depleted || stats.Live != staged.Nodes()-depleted {
			t.Fatalf("round %d: Sweep depleted/live (%d, %d), staged (%d, %d)",
				r, stats.Depleted, stats.Live, depleted, staged.Nodes()-depleted)
		}
		// State bit-identity makes the post-round SoC statistics trivially
		// equal too; pin it anyway since callers sample them after Sweep.
		fm, fmin, fd := fused.SoCStats(nil)
		sm, smin, sd := staged.SoCStats(nil)
		if fm != sm || fmin != smin || fd != sd {
			t.Fatalf("round %d: SoCStats diverge after Sweep: (%v, %v, %d) vs (%v, %v, %d)",
				r, fm, fmin, fd, sm, smin, sd)
		}
		for i := 0; i < fused.Nodes(); i++ {
			if fused.ChargeWh(i) != staged.ChargeWh(i) {
				t.Fatalf("round %d node %d: Sweep charge %v, staged %v", r, i, fused.ChargeWh(i), staged.ChargeWh(i))
			}
			if fused.NodeConsumedWh(i) != staged.NodeConsumedWh(i) || fused.NodeHarvestedWh(i) != staged.NodeHarvestedWh(i) {
				t.Fatalf("round %d node %d: Sweep ledgers diverge", r, i)
			}
		}
		for i, v := range fused.RoundArrivedWh() {
			if v != staged.RoundArrivedWh()[i] {
				t.Fatalf("round %d node %d: Sweep arrived %v, staged %v", r, i, v, staged.RoundArrivedWh()[i])
			}
		}
	}
	if fused.Consumed() != staged.Consumed() {
		t.Fatal("Consumed diverges between Sweep and staged drive")
	}
}

// TestSweepThresholdMatchesClosure pins the specialized threshold sweep
// bit-identical to the generic Sweep with the equivalent closure — the
// two shard loops are maintained as mirror copies and this is the test
// that catches them drifting apart.
func TestSweepThresholdMatchesClosure(t *testing.T) {
	const nodes = sweepShardSize + 256 // two shards, last one ragged
	mk := func() *SoAFleet {
		trace, err := NewDiurnal(0.01, 8, LongitudePhase(nodes))
		if err != nil {
			t.Fatal(err)
		}
		devices := energy.AssignDevices(nodes, energy.Devices())
		f, err := NewSoAFleet(devices, energy.CIFAR10Workload(), trace,
			Options{CapacityRounds: 5, InitialSoC: 0.6, CutoffSoC: 0.2, IdleWh: 0.0005})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	const minSoC = 0.3
	special, generic := mk(), mk()
	for r := 0; r < 16; r++ {
		ss := special.SweepThreshold(r, minSoC)
		gs := generic.Sweep(r, func(i int, soc float64) bool { return soc > minSoC })
		if ss != gs {
			t.Fatalf("round %d: SweepThreshold stats %+v, Sweep %+v", r, ss, gs)
		}
	}
	specialSoCs, genericSoCs := special.SoCs(), generic.SoCs()
	for i := range specialSoCs {
		if specialSoCs[i] != genericSoCs[i] {
			t.Fatalf("node %d SoC diverges: threshold %v, closure %v", i, specialSoCs[i], genericSoCs[i])
		}
	}
	if special.ConsumedWh() != generic.ConsumedWh() || special.HarvestedWh() != generic.HarvestedWh() ||
		special.WastedWh() != generic.WastedWh() {
		t.Fatal("fleet ledgers diverge between SweepThreshold and Sweep")
	}
}

// TestSweepParallelMatchesSerial pins Sweep's GOMAXPROCS independence on a
// fleet spanning multiple fixed-size shards: state and statistics must be
// bit-identical whether the shards run on one worker or eight, because the
// shard structure is a function of fleet size only and partial statistics
// merge in shard index order.
func TestSweepParallelMatchesSerial(t *testing.T) {
	const nodes = 2*sweepShardSize + 512 // three shards, last one ragged
	decide := func(i int, soc float64) bool { return soc > 0.3 }
	run := func(procs int) ([]float64, []SweepStats) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		trace, err := NewDiurnal(0.01, 8, LongitudePhase(nodes))
		if err != nil {
			t.Fatal(err)
		}
		devices := energy.AssignDevices(nodes, energy.Devices())
		f, err := NewSoAFleet(devices, energy.CIFAR10Workload(), trace,
			Options{CapacityRounds: 5, InitialSoC: 0.6, CutoffSoC: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		var stats []SweepStats
		for r := 0; r < 10; r++ {
			stats = append(stats, f.Sweep(r, decide))
		}
		return f.SoCs(), stats
	}
	socSerial, statsSerial := run(1)
	socParallel, statsParallel := run(8)
	for i := range socSerial {
		if socSerial[i] != socParallel[i] {
			t.Fatalf("node %d SoC diverges across GOMAXPROCS: %v vs %v", i, socSerial[i], socParallel[i])
		}
	}
	for r := range statsSerial {
		if statsSerial[r] != statsParallel[r] {
			t.Fatalf("round %d SweepStats diverge across GOMAXPROCS: %+v vs %+v", r, statsSerial[r], statsParallel[r])
		}
	}
}

// TestSoAEndRoundParallelMatchesSerial pins the sharded close-out path of
// the SoA engine the way TestEndRoundParallelMatchesSerial pins the
// pointer fleet's: lowering the parallel threshold must not change a bit.
func TestSoAEndRoundParallelMatchesSerial(t *testing.T) {
	run := func(minNodes int) []float64 {
		old := parallelMinNodes
		parallelMinNodes = minNodes
		defer func() { parallelMinNodes = old }()
		trace, err := NewDiurnal(0.01, 8, LongitudePhase(64))
		if err != nil {
			t.Fatal(err)
		}
		devices := energy.AssignDevices(64, energy.Devices())
		f, err := NewSoAFleet(devices, energy.CIFAR10Workload(), trace,
			Options{CapacityRounds: 5, InitialSoC: 0.6, CutoffSoC: 0.2, IdleWh: 0.0005})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 12; r++ {
			for i := 0; i < f.Nodes(); i++ {
				f.TryTrain(i)
			}
			f.EndRound(r)
		}
		return f.SoCs()
	}
	serial := run(1 << 30)
	parallel := run(2)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("node %d SoC diverges serial/parallel: %v vs %v", i, serial[i], parallel[i])
		}
	}
}
