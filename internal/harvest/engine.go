package harvest

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
)

// Engine is the whole-fleet battery surface the simulation stack drives:
// sim.Run, the gamma-grid runner, and cmd/harvestsim all accept any Engine.
// Two implementations exist with bit-identical behavior — Fleet keeps one
// Battery struct per node, SoAFleet keeps the same state as flat parallel
// slices for million-node hot loops — pinned against each other by the
// differential harness in internal/harvest/difftest.
//
// The concurrency contract is Fleet's: per-node calls (the BatteryView
// methods) are safe for concurrent use across distinct nodes; the
// whole-fleet calls (EndRound*, the statistics, Reset, Consumed) must not
// race with them or each other.
type Engine interface {
	core.BatteryView

	// Nodes returns the fleet size.
	Nodes() int
	// Usable reports whether node i is above its brown-out cutoff.
	Usable(i int) bool
	// Live snapshots the per-node liveness mask (above-cutoff nodes).
	Live() []bool
	// LiveCount returns how many nodes are above their cutoff.
	LiveCount() int
	// EndRound closes round t: every node pays idle+comm draw, then
	// harvests trace energy. Returns per-node stored harvest (slice reused
	// by the next call).
	EndRound(t int) []float64
	// EndRoundLive closes round t with dead nodes paying idle draw only.
	EndRoundLive(t int, live []bool) []float64
	// RoundArrivedWh returns the per-node harvest that arrived during the
	// last closed round, before the capacity clamp (slice reused).
	RoundArrivedWh() []float64
	// SoCStats computes mean/min SoC and the depleted count in one pass,
	// streaming every SoC through observe when non-nil.
	SoCStats(observe func(soc float64)) (mean, min float64, depleted int)
	// SoCs returns a snapshot of every node's state of charge.
	SoCs() []float64
	// MeanSoC returns the fleet-average state of charge.
	MeanSoC() float64
	// MinSoC returns the lowest state of charge in the fleet.
	MinSoC() float64
	// DepletedCount returns how many nodes sit at or below their cutoff.
	DepletedCount() int
	// HarvestedWh returns total energy stored from harvesting so far.
	HarvestedWh() float64
	// ConsumedWh returns total energy drained (training + comm + idle).
	ConsumedWh() float64
	// WastedWh returns harvest that arrived while batteries were full.
	WastedWh() float64
	// NodeHarvestedWh returns node i's cumulative stored harvest.
	NodeHarvestedWh(i int) float64
	// NodeConsumedWh returns node i's cumulative drain.
	NodeConsumedWh(i int) float64
	// TraceName reports the attached trace's identity.
	TraceName() string
	// Consumed reports whether the fleet carries history a new run would
	// silently inherit (closed rounds or training drain).
	Consumed() bool
	// Reset rewinds to construction state; fails on a stateful trace that
	// is not a TraceResetter.
	Reset() error
	// Context returns the direct-drive round context for round t.
	Context(t int) core.RoundContext
}

var (
	_ Engine = (*Fleet)(nil)
	_ Engine = (*SoAFleet)(nil)
)

// Engine kind names accepted by NewEngine and the cmd/harvestsim -engine
// flag.
const (
	EnginePointer = "pointer"
	EngineSoA     = "soa"
)

// NewEngine builds a fleet engine by kind name: "pointer" (or "") for the
// per-node-struct Fleet, "soa" for the struct-of-arrays SoAFleet.
func NewEngine(kind string, devices []energy.Device, w energy.Workload, trace Trace, opt Options) (Engine, error) {
	switch kind {
	case "", EnginePointer:
		return NewFleet(devices, w, trace, opt)
	case EngineSoA:
		return NewSoAFleet(devices, w, trace, opt)
	default:
		return nil, fmt.Errorf("harvest: unknown fleet engine %q (want %q or %q)", kind, EnginePointer, EngineSoA)
	}
}

// fleetSpec is the validated per-node state both fleet engines are built
// from: one slice entry per node, initial charge already clamped into
// [0, capacity] exactly as NewBattery clamps it.
type fleetSpec struct {
	trainWh    []float64
	commWh     []float64
	capacityWh []float64
	cutoffWh   []float64
	initialWh  []float64
	idleWh     float64
}

// buildFleetSpec validates options and derives every node's costs, battery
// geometry, and initial charge from its device profile — the shared
// constructor core of NewFleet and NewSoAFleet, so the two engines cannot
// drift in how a fleet shape is interpreted.
func buildFleetSpec(devices []energy.Device, w energy.Workload, trace Trace, opt Options) (fleetSpec, error) {
	var s fleetSpec
	if len(devices) == 0 {
		return s, fmt.Errorf("harvest: fleet needs at least one device")
	}
	if trace == nil {
		return s, fmt.Errorf("harvest: nil trace")
	}
	if err := w.Validate(); err != nil {
		return s, err
	}
	opt = opt.defaults()
	if opt.CutoffSoC < 0 || opt.CutoffSoC >= 1 {
		return s, fmt.Errorf("harvest: cutoff SoC %v outside [0, 1)", opt.CutoffSoC)
	}
	if opt.IdleWh < 0 {
		return s, fmt.Errorf("harvest: negative idle draw %v", opt.IdleWh)
	}
	if opt.CapacityRounds < 0 {
		return s, fmt.Errorf("harvest: negative capacity rounds %v", opt.CapacityRounds)
	}
	if opt.InitialSoC < 0 || opt.InitialSoC > 1 {
		return s, fmt.Errorf("harvest: initial SoC %v outside [0, 1]", opt.InitialSoC)
	}
	if opt.InitialRounds < 0 {
		return s, fmt.Errorf("harvest: negative initial rounds %v", opt.InitialRounds)
	}
	n := len(devices)
	s = fleetSpec{
		trainWh:    make([]float64, n),
		commWh:     make([]float64, n),
		capacityWh: make([]float64, n),
		cutoffWh:   make([]float64, n),
		initialWh:  make([]float64, n),
		idleWh:     opt.IdleWh,
	}
	for i, d := range devices {
		s.trainWh[i] = d.TrainRoundWh(w)
		s.commWh[i] = s.trainWh[i] * opt.CommFrac
		capacity := d.BatteryWh
		if opt.CapacityRounds > 0 {
			capacity = opt.CapacityRounds * s.trainWh[i]
		}
		initial := opt.InitialSoC * capacity
		if opt.InitialRounds > 0 {
			initial = opt.InitialRounds * s.trainWh[i]
		}
		if opt.StartEmpty {
			initial = 0
		}
		// NewBattery owns the geometry validation and the initial-charge
		// clamp; routing through it keeps the spec exactly what a Battery
		// would hold.
		b, err := NewBattery(capacity, initial, opt.CutoffSoC*capacity)
		if err != nil {
			return fleetSpec{}, fmt.Errorf("harvest: node %d (%s): %w", i, d.Name, err)
		}
		s.capacityWh[i] = b.CapacityWh
		s.cutoffWh[i] = b.CutoffWh
		s.initialWh[i] = b.ChargeWh()
	}
	return s, nil
}
