package harvest_test

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/harvest"
)

// A battery with a brown-out cutoff: training is all-or-nothing and never
// crosses the cutoff, while unavoidable idle draw (Drain) can — that is
// how a node browns out.
func ExampleBattery() {
	b, err := harvest.NewBattery(10, 5, 2) // capacity 10 Wh, charge 5, cutoff 2
	if err != nil {
		panic(err)
	}
	fmt.Printf("usable: %v\n", b.Usable())
	fmt.Printf("can train for 4 Wh: %v\n", b.TryConsume(4)) // 5-4 < cutoff: refused
	fmt.Printf("can train for 3 Wh: %v\n", b.TryConsume(3)) // lands exactly on cutoff
	fmt.Printf("usable after training: %v\n", b.Usable())
	b.Harvest(6)
	fmt.Printf("charge after harvesting 6 Wh: %v\n", b.ChargeWh())
	// Output:
	// usable: true
	// can train for 4 Wh: false
	// can train for 3 Wh: true
	// usable after training: false
	// charge after harvesting 6 Wh: 8
}

// A two-node fleet on supercap-scale batteries with no recharge: each node
// affords exactly two training rounds, then leaves the live set only once
// idle draw pushes it below the cutoff.
func ExampleFleet() {
	devices := energy.AssignDevices(2, energy.Devices())
	fleet, err := harvest.NewFleet(devices, energy.CIFAR10Workload(), harvest.Constant{Wh: 0},
		harvest.Options{CapacityRounds: 2, InitialSoC: 1, CommFrac: -1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("round 1 trains: %v\n", fleet.TryTrain(0))
	fmt.Printf("round 2 trains: %v\n", fleet.TryTrain(0))
	fmt.Printf("round 3 trains: %v\n", fleet.TryTrain(0))
	fmt.Printf("live: %v, SoC of node 0: %.1f\n", fleet.Live(), fleet.SoC(0))
	// Output:
	// round 1 trains: true
	// round 2 trains: true
	// round 3 trains: false
	// live: [false true], SoC of node 0: 0.0
}
