package harvest

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/rng"
)

// The harvest policies must satisfy the engine's policy contract.
var (
	_ core.Policy = (*SoCThreshold)(nil)
	_ core.Policy = (*SoCHysteresis)(nil)
	_ core.Policy = (*SoCProportional)(nil)
)

func policyFleet(t *testing.T, trace Trace, opt Options) *Fleet {
	t.Helper()
	devices := energy.AssignDevices(4, energy.Devices())
	f, err := NewFleet(devices, energy.CIFAR10Workload(), trace, opt)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSoCThreshold(t *testing.T) {
	f := policyFleet(t, Constant{0}, Options{InitialSoC: 0.5})
	p, err := NewSoCThreshold(f, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	if !p.Participate(0, 0, r) {
		t.Fatal("SoC 0.5 >= 0.4 should train")
	}
	p.MinSoC = 0.6
	if p.Participate(0, 1, r) {
		t.Fatal("SoC below threshold should skip")
	}
	if _, err := NewSoCThreshold(nil, 0.5); err == nil {
		t.Fatal("nil fleet should error")
	}
	if _, err := NewSoCThreshold(f, 1.5); err == nil {
		t.Fatal("threshold > 1 should error")
	}
}

func TestSoCThresholdDrainsExactlyOnTrain(t *testing.T) {
	f := policyFleet(t, Constant{0}, Options{InitialRounds: 2})
	p, err := NewSoCThreshold(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	before := f.ChargeWh(1)
	if !p.Participate(1, 0, r) {
		t.Fatal("affordable round refused")
	}
	if got := before - f.ChargeWh(1); math.Abs(got-f.TrainCostWh(1)) > 1e-12 {
		t.Fatalf("train drained %v, want %v", got, f.TrainCostWh(1))
	}
}

func TestSoCHysteresisBand(t *testing.T) {
	// Start with no recharge: the node trains down through the low
	// threshold, goes dormant, and stays dormant until recharged above the
	// high threshold. One training round on this device drops SoC by
	// ~3.7e-4, so the band sits a few rounds below the initial charge.
	f := policyFleet(t, Constant{0}, Options{InitialSoC: 0.002})
	p, err := NewSoCHysteresis(f, 0.001, 0.0015)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	trained := 0
	for round := 0; round < 200 && !p.Dormant(0); round++ {
		if p.Participate(0, round, r) {
			trained++
		}
	}
	if trained == 0 {
		t.Fatal("node never trained before going dormant")
	}
	if !p.Dormant(0) {
		t.Fatal("draining node never went dormant")
	}
	// Recharge into the band but below high: still dormant.
	f.batteries[0].chargeWh = 0.0012 * f.batteries[0].CapacityWh
	if p.Participate(0, 999, r) || !p.Dormant(0) {
		t.Fatal("node inside the band must stay dormant")
	}
	// Recharge above high: resumes.
	f.batteries[0].chargeWh = 0.5 * f.batteries[0].CapacityWh
	if !p.Participate(0, 1000, r) {
		t.Fatal("recharged node should resume training")
	}
	if p.Dormant(0) {
		t.Fatal("resumed node still marked dormant")
	}
}

func TestSoCHysteresisValidates(t *testing.T) {
	f := policyFleet(t, Constant{0}, Options{})
	if _, err := NewSoCHysteresis(nil, 0.1, 0.2); err == nil {
		t.Fatal("nil fleet should error")
	}
	if _, err := NewSoCHysteresis(f, 0.3, 0.2); err == nil {
		t.Fatal("low >= high should error")
	}
	if _, err := NewSoCHysteresis(f, -0.1, 0.2); err == nil {
		t.Fatal("negative low should error")
	}
}

func TestSoCProportionalProbabilityFollowsCharge(t *testing.T) {
	f := policyFleet(t, Constant{0}, Options{InitialSoC: 0.25})
	p, err := NewSoCProportional(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Probability(0); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("linear probability %v, want 0.25", got)
	}
	p.Exponent = 2
	if got := p.Probability(0); math.Abs(got-0.0625) > 1e-12 {
		t.Fatalf("quadratic probability %v, want 0.0625", got)
	}
	// Empirical rate over many flips tracks the probability.
	p.Exponent = 1
	r := rng.New(5)
	hits := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		if r.Float64() <= p.Probability(0) {
			hits++
		}
	}
	if rate := float64(hits) / trials; math.Abs(rate-0.25) > 0.03 {
		t.Fatalf("empirical rate %v far from 0.25", rate)
	}
}

func TestSoCProportionalConsumesOnlyWhenTraining(t *testing.T) {
	f := policyFleet(t, Constant{0}, Options{InitialRounds: 100})
	p, err := NewSoCProportional(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	before := f.ChargeWh(0)
	trained := 0
	for round := 0; round < 50; round++ {
		if p.Participate(0, round, r) {
			trained++
		}
	}
	drained := before - f.ChargeWh(0)
	if want := float64(trained) * f.TrainCostWh(0); math.Abs(drained-want) > 1e-9 {
		t.Fatalf("drained %v for %d trained rounds, want %v", drained, trained, want)
	}
	if _, err := NewSoCProportional(f, 0); err == nil {
		t.Fatal("zero exponent should error")
	}
	if _, err := NewSoCProportional(nil, 1); err == nil {
		t.Fatal("nil fleet should error")
	}
}

// TestSoCHysteresisResetReplays pins the policy-side half of fleet reuse:
// dormancy is run state, so Fleet.Reset alone leaves a hysteresis fleet
// diverging on its second run, while Fleet.Reset + policy Reset replays
// the first run bit-for-bit.
func TestSoCHysteresisResetReplays(t *testing.T) {
	mk := func() (*Fleet, *SoCHysteresis) {
		devices := energy.AssignDevices(4, energy.Devices())
		f, err := NewFleet(devices, energy.CIFAR10Workload(), Constant{0},
			Options{CapacityRounds: 4, InitialSoC: 0.6})
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewSoCHysteresis(f, 0.3, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		return f, p
	}
	drive := func(f *Fleet, p *SoCHysteresis, rounds int) []int {
		var trained []int
		for tt := 0; tt < rounds; tt++ {
			n := 0
			for i := 0; i < f.Nodes(); i++ {
				if p.Participate(i, tt, nil) {
					n++
				}
			}
			f.EndRound(tt)
			trained = append(trained, n)
		}
		return trained
	}
	f, p := mk()
	first := drive(f, p, 4) // every node trains twice, then goes dormant
	if first[0] == 0 || first[3] != 0 {
		t.Fatalf("scenario does not exercise dormancy: %v", first)
	}
	// Fleet reset alone: dormancy leaks, the replay diverges (nodes start
	// dormant below the resume threshold and never train).
	if err := f.Reset(); err != nil {
		t.Fatal(err)
	}
	leaked := drive(f, p, 4)
	if leaked[0] != 0 {
		t.Fatalf("dormancy did not leak; the hazard this test pins is gone: %v", leaked)
	}
	// Fleet reset + policy reset: bit-identical replay.
	if err := f.Reset(); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	replay := drive(f, p, 4)
	for i := range first {
		if replay[i] != first[i] {
			t.Fatalf("round %d: replay %v, first run %v", i, replay, first)
		}
	}
}
