package harvest

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/rng"
)

// The harvest policies must satisfy the engine's policy contract; the
// stateful one must be resettable, and all of them must declare their
// battery dependence so sim.Run can reject a fleet-less run.
var (
	_ core.Policy           = (*SoCThreshold)(nil)
	_ core.Policy           = (*SoCHysteresis)(nil)
	_ core.Policy           = (*SoCProportional)(nil)
	_ core.Policy           = (*HorizonPlan)(nil)
	_ core.ResettablePolicy = (*SoCHysteresis)(nil)

	_ core.BatteryDependent  = (*SoCThreshold)(nil)
	_ core.BatteryDependent  = (*SoCHysteresis)(nil)
	_ core.BatteryDependent  = (*SoCProportional)(nil)
	_ core.BatteryDependent  = (*HorizonPlan)(nil)
	_ core.ForecastDependent = (*HorizonPlan)(nil)
)

func policyFleet(t *testing.T, trace Trace, opt Options) *Fleet {
	t.Helper()
	devices := energy.AssignDevices(4, energy.Devices())
	f, err := NewFleet(devices, energy.CIFAR10Workload(), trace, opt)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSoCThreshold(t *testing.T) {
	f := policyFleet(t, Constant{0}, Options{InitialSoC: 0.5})
	p, err := NewSoCThreshold(0.4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	if !p.Participate(0, f.Context(0), r) {
		t.Fatal("SoC 0.5 >= 0.4 should train")
	}
	p.MinSoC = 0.6
	if p.Participate(0, f.Context(1), r) {
		t.Fatal("SoC below threshold should skip")
	}
	if _, err := NewSoCThreshold(1.5); err == nil {
		t.Fatal("threshold > 1 should error")
	}
	if _, err := NewSoCThreshold(-0.1); err == nil {
		t.Fatal("negative threshold should error")
	}
}

func TestSoCThresholdDrainsExactlyOnTrain(t *testing.T) {
	f := policyFleet(t, Constant{0}, Options{InitialRounds: 2})
	p, err := NewSoCThreshold(0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	before := f.ChargeWh(1)
	if !p.Participate(1, f.Context(0), r) {
		t.Fatal("affordable round refused")
	}
	if got := before - f.ChargeWh(1); math.Abs(got-f.TrainCostWh(1)) > 1e-12 {
		t.Fatalf("train drained %v, want %v", got, f.TrainCostWh(1))
	}
}

// TestPoliciesRefuseWithoutBattery pins the context contract: a round
// context with no battery attached means the policy has nothing to decide
// from, so every charge-aware policy skips rather than panics. (sim.Run
// rejects such a configuration up front; direct drivers get the safe
// behavior.)
func TestPoliciesRefuseWithoutBattery(t *testing.T) {
	threshold, _ := NewSoCThreshold(0)
	hysteresis, _ := NewSoCHysteresis(4, 0.1, 0.5)
	proportional, _ := NewSoCProportional(1)
	mpc, _ := NewHorizonPlan(0)
	ctx := core.ContextAt(nil, 0, 0)
	ctx.Forecast = []float64{1, 1}
	r := rng.New(7)
	for _, p := range []core.Policy{threshold, hysteresis, proportional, mpc} {
		if p.Participate(0, ctx, r) {
			t.Fatalf("%s trained with no battery in the context", p.Name())
		}
	}
}

func TestSoCHysteresisBand(t *testing.T) {
	// Start with no recharge: the node trains down through the low
	// threshold, goes dormant, and stays dormant until recharged above the
	// high threshold. One training round on this device drops SoC by
	// ~3.7e-4, so the band sits a few rounds below the initial charge.
	f := policyFleet(t, Constant{0}, Options{InitialSoC: 0.002})
	p, err := NewSoCHysteresis(f.Nodes(), 0.001, 0.0015)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	trained := 0
	for round := 0; round < 200 && !p.Dormant(0); round++ {
		if p.Participate(0, f.Context(round), r) {
			trained++
		}
	}
	if trained == 0 {
		t.Fatal("node never trained before going dormant")
	}
	if !p.Dormant(0) {
		t.Fatal("draining node never went dormant")
	}
	// Recharge into the band but below high: still dormant.
	f.batteries[0].chargeWh = 0.0012 * f.batteries[0].CapacityWh
	if p.Participate(0, f.Context(999), r) || !p.Dormant(0) {
		t.Fatal("node inside the band must stay dormant")
	}
	// Recharge above high: resumes.
	f.batteries[0].chargeWh = 0.5 * f.batteries[0].CapacityWh
	if !p.Participate(0, f.Context(1000), r) {
		t.Fatal("recharged node should resume training")
	}
	if p.Dormant(0) {
		t.Fatal("resumed node still marked dormant")
	}
}

func TestSoCHysteresisValidates(t *testing.T) {
	if _, err := NewSoCHysteresis(0, 0.1, 0.2); err == nil {
		t.Fatal("zero nodes should error")
	}
	if _, err := NewSoCHysteresis(4, 0.3, 0.2); err == nil {
		t.Fatal("low >= high should error")
	}
	if _, err := NewSoCHysteresis(4, -0.1, 0.2); err == nil {
		t.Fatal("negative low should error")
	}
}

func TestSoCProportionalProbabilityFollowsCharge(t *testing.T) {
	f := policyFleet(t, Constant{0}, Options{InitialSoC: 0.25})
	p, err := NewSoCProportional(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Probability(f.SoC(0)); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("linear probability %v, want 0.25", got)
	}
	p.Exponent = 2
	if got := p.Probability(f.SoC(0)); math.Abs(got-0.0625) > 1e-12 {
		t.Fatalf("quadratic probability %v, want 0.0625", got)
	}
	// Empirical rate over many flips tracks the probability.
	p.Exponent = 1
	r := rng.New(5)
	hits := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		if r.Float64() <= p.Probability(f.SoC(0)) {
			hits++
		}
	}
	if rate := float64(hits) / trials; math.Abs(rate-0.25) > 0.03 {
		t.Fatalf("empirical rate %v far from 0.25", rate)
	}
}

func TestSoCProportionalConsumesOnlyWhenTraining(t *testing.T) {
	f := policyFleet(t, Constant{0}, Options{InitialRounds: 100})
	p, err := NewSoCProportional(1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	before := f.ChargeWh(0)
	trained := 0
	for round := 0; round < 50; round++ {
		if p.Participate(0, f.Context(round), r) {
			trained++
		}
	}
	drained := before - f.ChargeWh(0)
	if want := float64(trained) * f.TrainCostWh(0); math.Abs(drained-want) > 1e-9 {
		t.Fatalf("drained %v for %d trained rounds, want %v", drained, trained, want)
	}
	if _, err := NewSoCProportional(0); err == nil {
		t.Fatal("zero exponent should error")
	}
}

// TestSoCHysteresisResetReplays pins the policy-side half of fleet reuse:
// dormancy is run state, so Fleet.Reset alone leaves a hysteresis fleet
// diverging on its second run, while Fleet.Reset + policy Reset replays
// the first run bit-for-bit. Consumed must track exactly that hazard.
func TestSoCHysteresisResetReplays(t *testing.T) {
	mk := func() (*Fleet, *SoCHysteresis) {
		devices := energy.AssignDevices(4, energy.Devices())
		f, err := NewFleet(devices, energy.CIFAR10Workload(), Constant{0},
			Options{CapacityRounds: 4, InitialSoC: 0.6})
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewSoCHysteresis(4, 0.3, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		return f, p
	}
	drive := func(f *Fleet, p *SoCHysteresis, rounds int) []int {
		var trained []int
		for tt := 0; tt < rounds; tt++ {
			n := 0
			for i := 0; i < f.Nodes(); i++ {
				if p.Participate(i, f.Context(tt), nil) {
					n++
				}
			}
			f.EndRound(tt)
			trained = append(trained, n)
		}
		return trained
	}
	f, p := mk()
	if p.Consumed() {
		t.Fatal("fresh hysteresis policy reports consumed")
	}
	first := drive(f, p, 4) // every node trains twice, then goes dormant
	if first[0] == 0 || first[3] != 0 {
		t.Fatalf("scenario does not exercise dormancy: %v", first)
	}
	if !p.Consumed() {
		t.Fatal("dormant nodes not reported as consumed state")
	}
	// Fleet reset alone: dormancy leaks, the replay diverges (nodes start
	// dormant below the resume threshold and never train).
	if err := f.Reset(); err != nil {
		t.Fatal(err)
	}
	leaked := drive(f, p, 4)
	if leaked[0] != 0 {
		t.Fatalf("dormancy did not leak; the hazard this test pins is gone: %v", leaked)
	}
	// Fleet reset + policy reset: bit-identical replay.
	if err := f.Reset(); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	if p.Consumed() {
		t.Fatal("Reset left the policy consumed")
	}
	replay := drive(f, p, 4)
	for i := range first {
		if replay[i] != first[i] {
			t.Fatalf("round %d: replay %v, first run %v", i, replay, first)
		}
	}
}

// fakeBattery is a single-node battery view with hand-set constants, so
// HorizonPlan's planning arithmetic can be pinned exactly.
type fakeBattery struct {
	charge, capacity, cutoff, cost, overhead float64
	trained                                  int
}

func (b *fakeBattery) SoC(int) float64         { return b.charge / b.capacity }
func (b *fakeBattery) ChargeWh(int) float64    { return b.charge }
func (b *fakeBattery) CapacityWh(int) float64  { return b.capacity }
func (b *fakeBattery) CutoffWh(int) float64    { return b.cutoff }
func (b *fakeBattery) TrainCostWh(int) float64 { return b.cost }
func (b *fakeBattery) OverheadWh(int) float64  { return b.overhead }
func (b *fakeBattery) TryTrain(int) bool {
	if b.charge-b.cost < b.cutoff {
		return false
	}
	b.charge -= b.cost
	b.trained++
	return true
}

func planCtx(b core.BatteryView, s core.Schedule, t int, forecast []float64) core.RoundContext {
	ctx := core.ContextAt(s, t, 0)
	ctx.Battery = b
	ctx.Forecast = forecast
	return ctx
}

// TestHorizonPlanSurplus: under abundant forecast arrivals every slot in
// the window is planned and the first decision executes.
func TestHorizonPlanSurplus(t *testing.T) {
	p, err := NewHorizonPlan(0)
	if err != nil {
		t.Fatal(err)
	}
	b := &fakeBattery{charge: 5, capacity: 10, cost: 1}
	forecast := []float64{1, 1, 1, 1, 1, 1}
	plan := p.Plan(0, planCtx(b, nil, 0, forecast))
	for k, train := range plan {
		if !train {
			t.Fatalf("surplus plan skipped slot %d: %v", k, plan)
		}
	}
	if !p.Participate(0, planCtx(b, nil, 0, forecast), nil) {
		t.Fatal("surplus first decision refused")
	}
	if b.trained != 1 {
		t.Fatalf("Participate trained %d times, want 1", b.trained)
	}
}

// TestHorizonPlanConservesThroughTrough is the forecast-awareness pin: the
// same battery state trains when the window promises early recharge and
// refuses when the window is dark — a decision no SoC rule can make.
func TestHorizonPlanConservesThroughTrough(t *testing.T) {
	p, err := NewHorizonPlan(0)
	if err != nil {
		t.Fatal(err)
	}
	// Charge 3, cost 1, overhead 0.5/round, 6-round window. Training now
	// leaves 2; overhead alone burns 3 over the window, so a dark window
	// browns the node out — but sun at k=2 refills it in time.
	dark := []float64{0, 0, 0, 0, 0, 0}
	sunny := []float64{0, 0, 4, 0, 0, 0}
	mk := func() *fakeBattery {
		return &fakeBattery{charge: 3, capacity: 10, cutoff: 0, cost: 1, overhead: 0.5}
	}
	if p.Participate(0, planCtx(mk(), nil, 0, dark), nil) {
		t.Fatal("trained into a dark window it cannot survive")
	}
	if !p.Participate(0, planCtx(mk(), nil, 0, sunny), nil) {
		t.Fatal("refused to train despite forecast recharge")
	}
	// The dark-window node still refuses even though the round itself is
	// affordable — exactly what separates it from SoCThreshold(0).
	if b := mk(); b.charge-b.cost < b.cutoff {
		t.Fatal("scenario broken: the round must be affordable in isolation")
	}
}

// TestHorizonPlanHonorsSchedule: sync slots of the coordinated Γ schedule
// are never planned, and the plan's training count is bounded by the
// window's train slots.
func TestHorizonPlanHonorsSchedule(t *testing.T) {
	p, err := NewHorizonPlan(0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.NewGamma(1, 1) // alternating train/sync
	if err != nil {
		t.Fatal(err)
	}
	b := &fakeBattery{charge: 8, capacity: 10, cost: 1}
	forecast := []float64{1, 1, 1, 1, 1, 1}
	plan := p.Plan(0, planCtx(b, g, 0, forecast))
	for k, train := range plan {
		if wantSlot := g.Kind(k) == core.RoundTrain; train && !wantSlot {
			t.Fatalf("planned training in sync slot %d: %v", k, plan)
		} else if wantSlot && !train {
			t.Fatalf("surplus plan skipped train slot %d: %v", k, plan)
		}
	}
	// Starting the window on a sync round, the first decision is a skip.
	if p.Participate(0, planCtx(b, g, 1, forecast), nil) {
		t.Fatal("trained in a coordinated sync round")
	}
}

// TestHorizonPlanParticipateMatchesPlan: Participate must execute exactly
// the plan's first decision across a spread of random scenarios.
func TestHorizonPlanParticipateMatchesPlan(t *testing.T) {
	p, err := NewHorizonPlan(0.1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(13)
	for trial := 0; trial < 1000; trial++ {
		b := &fakeBattery{
			charge:   10 * r.Float64(),
			capacity: 10,
			cutoff:   2 * r.Float64(),
			cost:     0.5 + r.Float64(),
			overhead: 0.5 * r.Float64(),
		}
		forecast := make([]float64, 1+r.Intn(12))
		for k := range forecast {
			forecast[k] = 2 * r.Float64()
		}
		planned := p.Plan(0, planCtx(b, nil, 0, forecast))[0]
		got := p.Participate(0, planCtx(b, nil, 0, forecast), nil)
		if got != planned {
			t.Fatalf("trial %d: Participate %v, Plan[0] %v (battery %+v, forecast %v)",
				trial, got, planned, b, forecast)
		}
		if got && b.trained != 1 || !got && b.trained != 0 {
			t.Fatalf("trial %d: TryTrain count %d inconsistent with decision %v", trial, b.trained, got)
		}
	}
}

func TestHorizonPlanValidatesAndRefusesEmptyWindow(t *testing.T) {
	if _, err := NewHorizonPlan(-0.1); err == nil {
		t.Fatal("negative reserve should error")
	}
	if _, err := NewHorizonPlan(1); err == nil {
		t.Fatal("reserve >= 1 should error")
	}
	p, err := NewHorizonPlan(0.05)
	if err != nil {
		t.Fatal(err)
	}
	b := &fakeBattery{charge: 10, capacity: 10, cost: 1}
	if p.Participate(0, planCtx(b, nil, 0, nil), nil) {
		t.Fatal("trained with no forecast window to plan over")
	}
	if got := p.Plan(0, planCtx(b, nil, 0, nil)); len(got) != 0 {
		t.Fatalf("empty window planned %v", got)
	}
}

// TestHorizonPlanReserveBinds: the reserve margin shifts the refusal point
// above the raw cutoff.
func TestHorizonPlanReserveBinds(t *testing.T) {
	loose, _ := NewHorizonPlan(0)
	tight, _ := NewHorizonPlan(0.4)
	forecast := []float64{0, 0}
	mk := func() *fakeBattery { return &fakeBattery{charge: 4.2, capacity: 10, cost: 1} }
	if !loose.Participate(0, planCtx(mk(), nil, 0, forecast), nil) {
		t.Fatal("no-reserve plan refused an affordable round")
	}
	// With reserve 0.4 the trajectory must stay above 4 Wh: training from
	// 4.2 dips to 3.2 and is refused.
	if tight.Participate(0, planCtx(mk(), nil, 0, forecast), nil) {
		t.Fatal("reserve margin did not bind")
	}
}
