package harvest

import "repro/internal/par"

// parallelMinNodes is the fleet size below which the round close-out stays
// serial: goroutine fan-out only pays for itself on large fleets. A test
// hook lowers it to pin serial/parallel bit-identity.
var parallelMinNodes = 256

// parallelFor shards fn(0..n-1) across workers (internal/par). Every
// caller writes node-i state only, so results are bit-identical to a
// serial loop; small fleets take the serial path outright.
func parallelFor(n int, fn func(i int)) {
	par.For(n, parallelMinNodes, fn)
}
