package difftest

import (
	"runtime"
	"testing"

	"repro/internal/harvest"
)

// TestEnginesBitIdentical runs every cell of the differential table: for
// each (trace × policy × liveness × cutoff) scenario the pointer fleet and
// the SoA fleet must agree exactly — per-node charge, ledgers, statistics,
// and sketch quantiles — after every round.
func TestEnginesBitIdentical(t *testing.T) {
	for _, s := range Scenarios() {
		t.Run(s.Name, func(t *testing.T) {
			if err := Diff(s); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestEnginesBitIdenticalAcrossGOMAXPROCS pins the sharded close-out path:
// a fleet past the parallel threshold must produce the same bits whether
// rounds close on one worker or eight. CI additionally runs the whole
// package under GOMAXPROCS=1 and 8 with -race.
func TestEnginesBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	s := Scenario{
		Name:    "gomaxprocs",
		Nodes:   512,
		Rounds:  16,
		Seed:    7,
		Trace:   TraceDiurnal,
		Policy:  PolicyThreshold,
		Options: harvest.Options{CapacityRounds: 6, InitialSoC: 0.55, CutoffSoC: 0.2},
	}
	run := func(procs int) []float64 {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		if err := Diff(s); err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		// Also capture one engine's final state to compare across settings.
		inst, err := s.Build(harvest.EngineSoA)
		if err != nil {
			t.Fatal(err)
		}
		policy := inst.Policy
		for tt := 0; tt < s.Rounds; tt++ {
			for i := 0; i < s.Nodes; i++ {
				// Threshold policies ignore the RNG; Context builds the
				// minimal battery-backed round context.
				policy.Participate(i, inst.Engine.Context(tt), nil)
			}
			inst.Engine.EndRound(tt)
		}
		return inst.Engine.SoCs()
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("node %d SoC diverges across GOMAXPROCS: 1 worker %v, 8 workers %v", i, serial[i], parallel[i])
		}
	}
}

// TestScenarioBuildersReject pins that malformed cells surface as errors
// instead of half-built instances.
func TestScenarioBuildersReject(t *testing.T) {
	s := Scenarios()[0]
	s.Trace = "no-such-trace"
	if _, err := s.Build(harvest.EnginePointer); err == nil {
		t.Fatal("unknown trace kind built successfully")
	}
	s = Scenarios()[0]
	s.Policy = "no-such-policy"
	if _, err := s.Build(harvest.EnginePointer); err == nil {
		t.Fatal("unknown policy kind built successfully")
	}
	if _, err := harvest.NewEngine("no-such-engine", s.Devices(), s.Workload(), harvest.Constant{Wh: 1}, harvest.Options{}); err == nil {
		t.Fatal("unknown engine kind built successfully")
	}
}
