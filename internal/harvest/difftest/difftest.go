// Package difftest is the differential test harness for the two fleet
// engines: it drives a pointer-based harvest.Fleet and a struct-of-arrays
// harvest.SoAFleet through identical randomized scenario schedules and
// verifies they stay bit-identical — full per-node state, cumulative
// ledgers, whole-fleet statistics, and the streaming SoC quantile sketch —
// after every round.
//
// The harness doubles as reusable test infrastructure: Scenarios()
// generates the (trace × policy × liveness × cutoff) table, and a Scenario
// builds fresh traces, fleets, policies, and forecasters on demand, so
// fleet, forecast, and checkpoint tests in other packages can draw
// well-formed harvest setups from one table instead of hand-rolling their
// own. (harvest's own in-package tests cannot import this package — it
// imports harvest — which is why the differential tests live here.)
package difftest

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/harvest"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Trace kinds a Scenario can name. Each builds a fresh, independently
// seeded generator per call, so the two engines never share trace state.
const (
	TraceConstant = "constant"
	TraceDiurnal  = "diurnal"
	TraceMarkov   = "markov"
	TraceReplay   = "replay"
)

// Policy kinds a Scenario can name.
const (
	PolicyAlways       = "always"
	PolicyThreshold    = "threshold"
	PolicyHysteresis   = "hysteresis"
	PolicyProportional = "proportional"
	PolicyHorizon      = "horizon"
)

// Scenario is one cell of the differential table: a fleet shape, an energy
// arrival process, a participation policy, and a liveness pattern. The
// zero value is not runnable; take cells from Scenarios or fill every
// field.
type Scenario struct {
	// Name labels the cell in test output.
	Name string
	// Nodes and Rounds size the run.
	Nodes  int
	Rounds int
	// Seed derives every random stream in the cell: trace seeds, replay
	// matrices, policy RNGs, and the liveness masks.
	Seed uint64
	// Trace and Policy pick from the Trace*/Policy* kinds above.
	Trace  string
	Policy string
	// Options is the fleet shape (capacity, cutoff, idle draw, …).
	Options harvest.Options
	// Gamma > 0 runs a SkipTrain(Gamma, Gamma) schedule instead of
	// all-train, so sync rounds (policy never consulted) interleave.
	Gamma int
	// DropProb > 0 drives rounds through EndRoundLive with a random
	// liveness mask that marks each node dead with this probability — the
	// dead-radio accounting path. 0 closes rounds with EndRound.
	DropProb float64
	// Horizon > 0 attaches an oracle forecaster with this lookahead
	// window (required by PolicyHorizon).
	Horizon int
	// ResetAt > 0 resets fleets and policies after that many rounds and
	// keeps going — the grid-search reuse path.
	ResetAt int
}

// Workload returns the per-round workload every scenario prices devices
// under (the paper's CIFAR-10 setting).
func (s Scenario) Workload() energy.Workload { return energy.CIFAR10Workload() }

// Devices returns the scenario's device assignment: the paper's device mix
// cycled over Nodes.
func (s Scenario) Devices() []energy.Device {
	return energy.AssignDevices(s.Nodes, energy.Devices())
}

// meanTrainWh is the fleet-average per-round training cost, the natural
// scale for harvest rates.
func (s Scenario) meanTrainWh() float64 {
	return energy.NetworkRoundWh(s.Nodes, energy.Devices(), s.Workload()) / float64(s.Nodes)
}

// NewTrace builds a fresh trace generator for the scenario. Every call
// returns an independent instance with identical behavior — the property
// the differential driver needs to feed two engines the same arrivals.
func (s Scenario) NewTrace() (harvest.Trace, error) {
	mean := s.meanTrainWh()
	switch s.Trace {
	case TraceConstant:
		return harvest.Constant{Wh: 0.6 * mean}, nil
	case TraceDiurnal:
		return harvest.NewDiurnal(1.5*mean, 8, harvest.LongitudePhase(s.Nodes))
	case TraceMarkov:
		return harvest.NewMarkovOnOff(s.Nodes, 1.2*mean, 0.3, 0.4, s.Seed)
	case TraceReplay:
		r := rng.Derive(s.Seed, 0x7e91a7)
		wh := make([][]float64, 2*s.Rounds/3+1)
		for t := range wh {
			row := make([]float64, s.Nodes)
			for i := range row {
				row[i] = 2 * mean * r.Float64()
			}
			wh[t] = row
		}
		return harvest.NewReplay(wh)
	default:
		return nil, fmt.Errorf("difftest: unknown trace kind %q", s.Trace)
	}
}

// NewPolicy builds a fresh participation policy for the scenario. Stateful
// policies (hysteresis dormancy) are per-engine state, so the driver calls
// this once per engine.
func (s Scenario) NewPolicy() (core.Policy, error) {
	switch s.Policy {
	case PolicyAlways:
		return core.AlwaysTrain{}, nil
	case PolicyThreshold:
		return harvest.NewSoCThreshold(0.35)
	case PolicyHysteresis:
		return harvest.NewSoCHysteresis(s.Nodes, 0.25, 0.55)
	case PolicyProportional:
		return harvest.NewSoCProportional(1)
	case PolicyHorizon:
		return harvest.NewHorizonPlan(0.1)
	default:
		return nil, fmt.Errorf("difftest: unknown policy kind %q", s.Policy)
	}
}

// Schedule returns the scenario's coordinated round schedule.
func (s Scenario) Schedule() core.Schedule {
	if s.Gamma > 0 {
		return core.Gamma{GammaTrain: s.Gamma, GammaSync: s.Gamma}
	}
	return core.AllTrain{}
}

// Instance is one engine's complete scenario binding: the engine plus its
// private trace, policy, and (optional) forecaster instances.
type Instance struct {
	Engine     harvest.Engine
	Trace      harvest.Trace
	Policy     core.Policy
	Forecaster harvest.Forecaster
}

// Build constructs a fresh Instance for the given engine kind
// (harvest.EnginePointer or harvest.EngineSoA). Nothing is shared with any
// other Instance, so two of them can be driven in lockstep and compared.
func (s Scenario) Build(kind string) (*Instance, error) {
	trace, err := s.NewTrace()
	if err != nil {
		return nil, err
	}
	eng, err := harvest.NewEngine(kind, s.Devices(), s.Workload(), trace, s.Options)
	if err != nil {
		return nil, err
	}
	policy, err := s.NewPolicy()
	if err != nil {
		return nil, err
	}
	inst := &Instance{Engine: eng, Trace: trace, Policy: policy}
	if s.Horizon > 0 {
		if inst.Forecaster, err = harvest.NewOracle(trace); err != nil {
			return nil, err
		}
	}
	return inst, nil
}

// Fleet builds a fresh pointer-based fleet with its own trace — the
// builder sim and experiment tests use for well-formed harvest setups.
func (s Scenario) Fleet() (*harvest.Fleet, error) {
	trace, err := s.NewTrace()
	if err != nil {
		return nil, err
	}
	return harvest.NewFleet(s.Devices(), s.Workload(), trace, s.Options)
}

// SoAFleet builds a fresh struct-of-arrays fleet with its own trace.
func (s Scenario) SoAFleet() (*harvest.SoAFleet, error) {
	trace, err := s.NewTrace()
	if err != nil {
		return nil, err
	}
	return harvest.NewSoAFleet(s.Devices(), s.Workload(), trace, s.Options)
}

// Scenarios generates the differential table: the cross product of every
// trace kind and policy kind, under shapes that exercise both liveness
// paths, both schedules, a brown-out cutoff, idle draw, and the
// serial/parallel threshold (small fleets stay serial, large ones shard).
func Scenarios() []Scenario {
	traces := []string{TraceConstant, TraceDiurnal, TraceMarkov, TraceReplay}
	policies := []string{PolicyAlways, PolicyThreshold, PolicyHysteresis, PolicyProportional, PolicyHorizon}
	var out []Scenario
	for ti, tr := range traces {
		for pi, pol := range policies {
			// Vary the shape deterministically across cells so cutoffs,
			// idle draw, liveness masks, schedules, and fleet sizes all get
			// coverage without a combinatorial blow-up.
			k := ti*len(policies) + pi
			s := Scenario{
				Name:   tr + "/" + pol,
				Nodes:  48 + 32*(k%3), // 48, 80, 112
				Rounds: 40,
				Seed:   0x9e3779b9 + uint64(k),
				Trace:  tr,
				Policy: pol,
				Options: harvest.Options{
					CapacityRounds: 6,
					InitialSoC:     0.6,
				},
			}
			if k%2 == 1 {
				s.Options.CutoffSoC = 0.25
				s.DropProb = 0.3
			}
			if k%3 == 2 {
				s.Options.IdleWh = 0.2 * s.meanTrainWh()
			}
			if k%4 == 3 {
				s.Gamma = 2
			}
			if pol == PolicyHorizon {
				s.Horizon = 8
			}
			out = append(out, s)
		}
	}
	// The sharded close-out path: fleets past harvest's parallel threshold
	// (256 nodes), one per trace kind, with mid-run reset on the stateful
	// combinations.
	for ti, tr := range traces {
		s := Scenario{
			Name:    tr + "/large",
			Nodes:   384,
			Rounds:  24,
			Seed:    0xc0ffee + uint64(ti),
			Trace:   tr,
			Policy:  PolicyHysteresis,
			Options: harvest.Options{CapacityRounds: 5, InitialSoC: 0.5, CutoffSoC: 0.2},
			ResetAt: 12,
		}
		out = append(out, s)
	}
	return out
}

// Diff drives a fresh pointer fleet and a fresh SoA fleet through the
// scenario in lockstep and returns an error describing the first
// divergence — any comparison is exact (==), never within-epsilon. A nil
// return means the two engines were bit-identical after every round.
func Diff(s Scenario) error {
	a, err := s.Build(harvest.EnginePointer)
	if err != nil {
		return fmt.Errorf("difftest %s: pointer build: %w", s.Name, err)
	}
	b, err := s.Build(harvest.EngineSoA)
	if err != nil {
		return fmt.Errorf("difftest %s: soa build: %w", s.Name, err)
	}
	if err := compare(-1, s, a.Engine, b.Engine); err != nil {
		return err
	}
	schedule := s.Schedule()
	// Per-node decision RNGs: one set per engine, identically derived, so
	// a probabilistic policy draws the same stream on both sides.
	rngsA := decisionRNGs(s)
	rngsB := decisionRNGs(s)
	maskRNG := rng.Derive(s.Seed, 0xd1ffe)
	var scratchA, scratchB []float64
	if s.Horizon > 0 {
		scratchA = make([]float64, s.Horizon)
		scratchB = make([]float64, s.Horizon)
	}
	for t := 0; t < s.Rounds; t++ {
		if s.ResetAt > 0 && t == s.ResetAt {
			if err := resetInstance(a); err != nil {
				return fmt.Errorf("difftest %s: pointer reset: %w", s.Name, err)
			}
			if err := resetInstance(b); err != nil {
				return fmt.Errorf("difftest %s: soa reset: %w", s.Name, err)
			}
			rngsA, rngsB = decisionRNGs(s), decisionRNGs(s)
		}
		kind := schedule.Kind(t)
		if kind == core.RoundTrain {
			for i := 0; i < s.Nodes; i++ {
				da := decide(a, i, t, s, kind, schedule, scratchA, rngsA[i])
				db := decide(b, i, t, s, kind, schedule, scratchB, rngsB[i])
				if da != db {
					return fmt.Errorf("difftest %s: round %d node %d: pointer decision %v, soa decision %v", s.Name, t, i, da, db)
				}
			}
		}
		// The same liveness mask feeds both engines; harvest rows come
		// from each engine's private trace.
		var ra, rb []float64
		if s.DropProb > 0 {
			mask := make([]bool, s.Nodes)
			for i := range mask {
				mask[i] = !maskRNG.Bernoulli(s.DropProb)
			}
			ra = a.Engine.EndRoundLive(t, mask)
			rb = b.Engine.EndRoundLive(t, mask)
		} else {
			ra = a.Engine.EndRound(t)
			rb = b.Engine.EndRound(t)
		}
		if err := compareRows("round harvest", t, s, ra, rb); err != nil {
			return err
		}
		if err := compareRows("arrived", t, s, a.Engine.RoundArrivedWh(), b.Engine.RoundArrivedWh()); err != nil {
			return err
		}
		if err := compare(t, s, a.Engine, b.Engine); err != nil {
			return err
		}
	}
	if a.Engine.Consumed() != b.Engine.Consumed() {
		return fmt.Errorf("difftest %s: Consumed() diverges: pointer %v, soa %v", s.Name, a.Engine.Consumed(), b.Engine.Consumed())
	}
	return nil
}

// decide runs one node's participation decision against one engine,
// building the same round context the sim engine would.
func decide(inst *Instance, i, t int, s Scenario, kind core.RoundKind, schedule core.Schedule, scratch []float64, r *rng.RNG) bool {
	ctx := core.RoundContext{
		Round:    t,
		Horizon:  s.Rounds,
		Kind:     kind,
		Schedule: schedule,
		Battery:  inst.Engine,
	}
	if inst.Forecaster != nil {
		inst.Forecaster.Forecast(i, t, scratch)
		ctx.Forecast = scratch
	}
	return inst.Policy.Participate(i, ctx, r)
}

func decisionRNGs(s Scenario) []*rng.RNG {
	out := make([]*rng.RNG, s.Nodes)
	for i := range out {
		out[i] = rng.Derive(s.Seed, uint64(i), 0xdec1de)
	}
	return out
}

func resetInstance(inst *Instance) error {
	if err := inst.Engine.Reset(); err != nil {
		return err
	}
	if rp, ok := inst.Policy.(core.ResettablePolicy); ok {
		rp.Reset()
	}
	return nil
}

// sketchQuantiles are the probe points compared between the two engines'
// SoC sketches each round.
var sketchQuantiles = []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}

// compare checks every whole-fleet statistic and every per-node view the
// Engine surface exposes, plus the obs SoC sketch both engines feed
// through SoCStats. t = -1 labels the pre-run comparison.
func compare(t int, s Scenario, a, b harvest.Engine) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("difftest %s: round %d: %s", s.Name, t, fmt.Sprintf(format, args...))
	}
	if a.Nodes() != b.Nodes() {
		return fail("nodes %d vs %d", a.Nodes(), b.Nodes())
	}
	for i := 0; i < a.Nodes(); i++ {
		type nodeProbe struct {
			name string
			fn   func(harvest.Engine, int) float64
		}
		for _, p := range []nodeProbe{
			{"ChargeWh", harvest.Engine.ChargeWh},
			{"SoC", harvest.Engine.SoC},
			{"CapacityWh", harvest.Engine.CapacityWh},
			{"CutoffWh", harvest.Engine.CutoffWh},
			{"TrainCostWh", harvest.Engine.TrainCostWh},
			{"OverheadWh", harvest.Engine.OverheadWh},
			{"NodeHarvestedWh", harvest.Engine.NodeHarvestedWh},
			{"NodeConsumedWh", harvest.Engine.NodeConsumedWh},
		} {
			if va, vb := p.fn(a, i), p.fn(b, i); va != vb {
				return fail("node %d %s: pointer %v, soa %v", i, p.name, va, vb)
			}
		}
		if ua, ub := a.Usable(i), b.Usable(i); ua != ub {
			return fail("node %d Usable: pointer %v, soa %v", i, ua, ub)
		}
	}
	type fleetProbe struct {
		name string
		fn   func(harvest.Engine) float64
	}
	for _, p := range []fleetProbe{
		{"MeanSoC", harvest.Engine.MeanSoC},
		{"MinSoC", harvest.Engine.MinSoC},
		{"HarvestedWh", harvest.Engine.HarvestedWh},
		{"ConsumedWh", harvest.Engine.ConsumedWh},
		{"WastedWh", harvest.Engine.WastedWh},
	} {
		if va, vb := p.fn(a), p.fn(b); va != vb {
			return fail("%s: pointer %v, soa %v", p.name, va, vb)
		}
	}
	if da, db := a.DepletedCount(), b.DepletedCount(); da != db {
		return fail("DepletedCount: pointer %d, soa %d", da, db)
	}
	if la, lb := a.LiveCount(), b.LiveCount(); la != lb {
		return fail("LiveCount: pointer %d, soa %d", la, lb)
	}
	if err := compareRows("SoCs", t, s, a.SoCs(), b.SoCs()); err != nil {
		return err
	}
	la, lb := a.Live(), b.Live()
	for i := range la {
		if la[i] != lb[i] {
			return fail("Live mask node %d: pointer %v, soa %v", i, la[i], lb[i])
		}
	}
	skA, skB := obs.NewSoCSketch(), obs.NewSoCSketch()
	meanA, minA, depA := a.SoCStats(skA.Observe)
	meanB, minB, depB := b.SoCStats(skB.Observe)
	if meanA != meanB || minA != minB || depA != depB {
		return fail("SoCStats: pointer (%v, %v, %d), soa (%v, %v, %d)", meanA, minA, depA, meanB, minB, depB)
	}
	for _, q := range sketchQuantiles {
		qa, qb := skA.Quantile(q), skB.Quantile(q)
		if qa != qb && !(math.IsNaN(qa) && math.IsNaN(qb)) {
			return fail("sketch quantile %g: pointer %v, soa %v", q, qa, qb)
		}
	}
	return nil
}

func compareRows(what string, t int, s Scenario, a, b []float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("difftest %s: round %d: %s length %d vs %d", s.Name, t, what, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("difftest %s: round %d: %s node %d: pointer %v, soa %v", s.Name, t, what, i, a[i], b[i])
		}
	}
	return nil
}
