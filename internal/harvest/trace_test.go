package harvest

import (
	"math"
	"strings"
	"testing"
)

// TestDiurnalGoldenValues pins the diurnal generator to hand-computed
// values: peak 1 Wh, 24-round day, zero phase. sin(2π t/24) at t=0,6,12,18
// is 0, 1, 0, -1 (night, clipped to 0), and t=3 gives sin(π/4)=√2/2.
func TestDiurnalGoldenValues(t *testing.T) {
	d, err := NewDiurnal(1, 24, nil)
	if err != nil {
		t.Fatal(err)
	}
	golden := map[int]float64{
		0:  0,
		3:  math.Sqrt2 / 2,
		6:  1,
		9:  math.Sqrt2 / 2,
		12: 0,
		15: 0, // night
		18: 0, // night
		21: 0, // night
		24: 0, // next day wraps
		30: 1, // next day's noon
	}
	for round, want := range golden {
		if got := d.HarvestWh(0, round); math.Abs(got-want) > 1e-12 {
			t.Fatalf("diurnal t=%d: %v, want %v", round, got, want)
		}
	}
}

func TestDiurnalPhaseShiftsNoon(t *testing.T) {
	// Node phase 0.25 advances the day by 6 rounds: its noon is t=0.
	d, err := NewDiurnal(2, 24, func(int) float64 { return 0.25 })
	if err != nil {
		t.Fatal(err)
	}
	if got := d.HarvestWh(0, 0); math.Abs(got-2) > 1e-12 {
		t.Fatalf("phase-shifted noon harvest %v, want 2", got)
	}
	if got := d.HarvestWh(0, 12); got != 0 {
		t.Fatalf("phase-shifted night harvest %v, want 0", got)
	}
}

func TestLongitudePhaseSpread(t *testing.T) {
	phase := LongitudePhase(4)
	want := []float64{0, 0.25, 0.5, 0.75}
	for i, w := range want {
		if got := phase(i); math.Abs(got-w) > 1e-12 {
			t.Fatalf("node %d phase %v, want %v", i, got, w)
		}
	}
}

func TestDiurnalValidates(t *testing.T) {
	if _, err := NewDiurnal(0, 24, nil); err == nil {
		t.Fatal("zero peak should error")
	}
	if _, err := NewDiurnal(1, 1, nil); err == nil {
		t.Fatal("degenerate period should error")
	}
}

func TestMarkovOnOffDeterministicPerSeed(t *testing.T) {
	run := func() []float64 {
		m, err := NewMarkovOnOff(4, 0.5, 0.3, 0.4, 7)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for round := 0; round < 64; round++ {
			for node := 0; node < 4; node++ {
				out = append(out, m.HarvestWh(node, round))
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("markov trace diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// A different seed must eventually diverge.
	m2, _ := NewMarkovOnOff(4, 0.5, 0.3, 0.4, 8)
	diverged := false
	for round := 0; round < 64 && !diverged; round++ {
		for node := 0; node < 4; node++ {
			if m2.HarvestWh(node, round) != a[round*4+node] {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical 64-round trajectories")
	}
}

func TestMarkovOnOffSpendsTimeInBothStates(t *testing.T) {
	m, err := NewMarkovOnOff(1, 1, 0.5, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	on, off := 0, 0
	for round := 0; round < 400; round++ {
		if m.HarvestWh(0, round) > 0 {
			on++
		} else {
			off++
		}
	}
	// Symmetric chain: stationary distribution is 50/50.
	if on < 100 || off < 100 {
		t.Fatalf("chain stuck: on=%d off=%d", on, off)
	}
}

func TestMarkovOnOffValidates(t *testing.T) {
	if _, err := NewMarkovOnOff(0, 1, 0.5, 0.5, 1); err == nil {
		t.Fatal("zero nodes should error")
	}
	if _, err := NewMarkovOnOff(2, 0, 0.5, 0.5, 1); err == nil {
		t.Fatal("zero on-harvest should error")
	}
	if _, err := NewMarkovOnOff(2, 1, 1.5, 0.5, 1); err == nil {
		t.Fatal("probability > 1 should error")
	}
}

func TestReplayWrapsAround(t *testing.T) {
	p, err := NewReplay([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Rounds() != 3 || p.Nodes() != 2 {
		t.Fatalf("shape %dx%d", p.Nodes(), p.Rounds())
	}
	if got := p.HarvestWh(1, 4); got != 4 {
		t.Fatalf("wrapped harvest %v, want 4 (round 4 ≡ 1)", got)
	}
}

func TestReplayValidates(t *testing.T) {
	if _, err := NewReplay(nil); err == nil {
		t.Fatal("empty schedule should error")
	}
	if _, err := NewReplay([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged schedule should error")
	}
	if _, err := NewReplay([][]float64{{-1}}); err == nil {
		t.Fatal("negative harvest should error")
	}
	if _, err := NewReplay([][]float64{{math.NaN()}}); err == nil {
		t.Fatal("NaN harvest should error")
	}
}

func TestReplayCSVRoundTrip(t *testing.T) {
	wh := [][]float64{{0, 0.5, 1.25}, {2, 0, 0.0065}}
	var sb strings.Builder
	if err := WriteReplay(&sb, wh); err != nil {
		t.Fatal(err)
	}
	p, err := ReadReplay(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for round := range wh {
		for node := range wh[round] {
			if got := p.HarvestWh(node, round); got != wh[round][node] {
				t.Fatalf("cell (%d,%d) = %v, want %v", round, node, got, wh[round][node])
			}
		}
	}
}

func TestReadReplayRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad header":  "round,node,wh\n0,0,1\n",
		"no cells":    "round,node,harvest_wh\n",
		"bad round":   "round,node,harvest_wh\nx,0,1\n",
		"bad node":    "round,node,harvest_wh\n0,-1,1\n",
		"bad value":   "round,node,harvest_wh\n0,0,zap\n",
		"duplicate":   "round,node,harvest_wh\n0,0,1\n0,0,2\n",
		"incomplete":  "round,node,harvest_wh\n0,0,1\n1,1,2\n",
		"field count": "round,node,harvest_wh\n0,0\n",
	}
	for name, input := range cases {
		if _, err := ReadReplay(strings.NewReader(input)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestMarkovResetTraceReplaysBitIdentical(t *testing.T) {
	m, err := NewMarkovOnOff(4, 0.01, 0.3, 0.4, 7)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 200
	first := make([][]float64, 4)
	for node := range first {
		first[node] = make([]float64, rounds)
	}
	for tt := 0; tt < rounds; tt++ {
		for node := 0; node < 4; node++ {
			first[node][tt] = m.HarvestWh(node, tt)
		}
	}
	m.ResetTrace()
	fresh, err := NewMarkovOnOff(4, 0.01, 0.3, 0.4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < rounds; tt++ {
		for node := 0; node < 4; node++ {
			replayed := m.HarvestWh(node, tt)
			if replayed != first[node][tt] {
				t.Fatalf("node %d round %d: replay %v, first run %v", node, tt, replayed, first[node][tt])
			}
			if got := fresh.HarvestWh(node, tt); got != replayed {
				t.Fatalf("node %d round %d: reset trace %v, fresh trace %v", node, tt, replayed, got)
			}
		}
	}
}

// TestRowTraceMatchesPerNode pins the RowTrace contract for every built-in
// trace: one HarvestRowWh call must leave out[i] bit-identical to what a
// twin instance returns from per-node HarvestWh calls, round after round —
// including stateful chain advancement on MarkovOnOff.
func TestRowTraceMatchesPerNode(t *testing.T) {
	const nodes, rounds = 24, 40
	mkReplay := func() Trace {
		wh := make([][]float64, 16)
		for r := range wh {
			row := make([]float64, nodes)
			for i := range row {
				row[i] = float64(r*nodes+i) * 0.0001
			}
			wh[r] = row
		}
		p, err := NewReplay(wh)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name string
		mk   func() Trace
	}{
		{"constant", func() Trace { return Constant{Wh: 0.004} }},
		{"diurnal", func() Trace {
			d, err := NewDiurnal(0.01, 8, LongitudePhase(nodes))
			if err != nil {
				t.Fatal(err)
			}
			return d
		}},
		{"markov", func() Trace {
			m, err := NewMarkovOnOff(nodes, 0.01, 0.3, 0.4, 42)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}},
		{"replay", mkReplay},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bulk, ok := tc.mk().(RowTrace)
			if !ok {
				t.Fatalf("%s does not implement RowTrace", tc.name)
			}
			perNode := tc.mk()
			row := make([]float64, nodes)
			for r := 0; r < rounds; r++ {
				bulk.HarvestRowWh(r, row)
				for i := 0; i < nodes; i++ {
					if want := perNode.HarvestWh(i, r); row[i] != want {
						t.Fatalf("round %d node %d: row %v, per-node %v", r, i, row[i], want)
					}
				}
			}
		})
	}
}

// TestDiurnalPeriodicityExact pins the property the day-row cache relies
// on: the harvest at round t and round t+period are the same bits, for
// every phase, because the day fraction is computed from t mod period.
func TestDiurnalPeriodicityExact(t *testing.T) {
	d, err := NewDiurnal(0.01, 24, LongitudePhase(7))
	if err != nil {
		t.Fatal(err)
	}
	for node := 0; node < 7; node++ {
		for tt := 0; tt < 24; tt++ {
			base := d.HarvestWh(node, tt)
			for _, later := range []int{tt + 24, tt + 240, tt + 24*1000} {
				if got := d.HarvestWh(node, later); got != base {
					t.Fatalf("node %d: round %d harvest %v != round %d harvest %v", node, later, got, tt, base)
				}
			}
		}
	}
}
