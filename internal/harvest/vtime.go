package harvest

import "math"

// Continuous virtual time. The round-driven engines sample a Trace once
// per (node, round); the event-driven async engine lives between rounds —
// a training step starts and ends at arbitrary virtual times, and
// brown-out/wake crossings fall mid-round. ContinuousTrace is the
// continuous-time face that makes this well-defined: EnergyBetween
// integrates the harvest rate over an interval measured in rounds, where
// round k spans [k, k+1).
//
// Two kinds of implementation exist. The pure-function traces integrate
// exactly: Constant and Diurnal via closed form (Diurnal's continuous face
// is the underlying clipped sinusoid itself, of which the per-round sample
// is the rate at the round's start), Replay as the exact sum of its
// recorded piecewise-constant rows. Stateful traces (MarkovOnOff) cannot
// be integrated in closed form; the Integrator adapter step-integrates
// them, sampling HarvestWh once per (node, round) behind per-node caches
// so the Trace call discipline is preserved no matter how often intervals
// are queried or how far crossing searches look ahead.
type ContinuousTrace interface {
	Trace
	// EnergyBetween returns the energy (Wh) arriving at node over the
	// virtual interval [t0, t1), time measured in rounds. It is additive
	// over adjacent intervals and 0 when t1 <= t0. Implementations keep
	// any mutable state strictly per-node (see Integrator).
	EnergyBetween(node int, t0, t1 float64) float64
}

// AsContinuous gives any trace a continuous-time face: traces that already
// implement ContinuousTrace are returned as-is, stateful ones are wrapped
// in a step-integrating adapter sized for n nodes.
func AsContinuous(t Trace, n int) ContinuousTrace {
	if ct, ok := t.(ContinuousTrace); ok {
		return ct
	}
	return NewIntegrator(t, n)
}

// The pure-function traces integrate without an adapter.
var (
	_ ContinuousTrace = Constant{}
	_ ContinuousTrace = (*Diurnal)(nil)
	_ ContinuousTrace = (*Replay)(nil)
	_ ContinuousTrace = (*Integrator)(nil)
)

// EnergyBetween integrates the constant rate exactly: Wh per round times
// the interval length (ContinuousTrace).
func (c Constant) EnergyBetween(_ int, t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	return c.Wh * (t1 - t0)
}

// EnergyBetween integrates the clipped solar sinusoid in closed form
// (ContinuousTrace): with x = t/Period + phase(node) the instantaneous
// rate is PeakWh·max(0, sin 2πx), whose antiderivative over one period is
// 1/π·PeakWh·Period (daylight half contributes (1−cos 2πx)/2π, night
// contributes nothing). The per-round HarvestWh sample is this rate at the
// round's start; the integral is exact for the continuous sun, not a sum
// of the samples.
func (d *Diurnal) EnergyBetween(node int, t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	p := float64(d.period)
	ph := d.phase(node)
	return d.peakWh * p * (diurnalCum(t1/p+ph) - diurnalCum(t0/p+ph))
}

// diurnalCum is the closed-form cumulative ∫₀ˣ max(0, sin 2πv) dv: each
// whole period contributes 1/π, the fractional part contributes the
// daylight arc up to min(frac, 1/2).
func diurnalCum(x float64) float64 {
	n := math.Floor(x)
	y := x - n
	if y > 0.5 {
		y = 0.5
	}
	return n/math.Pi + (1-math.Cos(2*math.Pi*y))/(2*math.Pi)
}

// EnergyBetween sums the recorded piecewise-constant schedule exactly over
// [t0, t1), wrapping cyclically like HarvestWh (ContinuousTrace). The
// recording is the rate: round k delivers wh[k mod Rounds][node] spread
// uniformly over [k, k+1).
func (p *Replay) EnergyBetween(node int, t0, t1 float64) float64 {
	return stepEnergyBetween(func(k int) float64 { return p.wh[k%len(p.wh)][node] }, t0, t1)
}

// stepEnergyBetween integrates a piecewise-constant rate (rate(k) Wh per
// round over [k, k+1)) across [t0, t1), clamping negative times to 0.
func stepEnergyBetween(rate func(k int) float64, t0, t1 float64) float64 {
	if t0 < 0 {
		t0 = 0
	}
	if t1 <= t0 {
		return 0
	}
	sum := 0.0
	for k := int(math.Floor(t0)); float64(k) < t1; k++ {
		lo := math.Max(t0, float64(k))
		hi := math.Min(t1, float64(k+1))
		if hi > lo {
			sum += rate(k) * (hi - lo)
		}
	}
	return sum
}

// Integrator adapts a stateful Trace to the ContinuousTrace contract by
// step integration: the rate over [k, k+1) is HarvestWh(node, k), sampled
// exactly once per (node, round) in increasing round order — the Trace
// call discipline — and cached per node, so repeated interval queries and
// forward-looking crossing searches replay cached rates instead of
// advancing the generator again. The cache grows with the highest round
// touched (one float per node per round), which is fine at event-driven
// scale; million-node round-driven sweeps never build one.
//
// All mutable state is strictly per-node, so concurrent calls for
// distinct nodes are race-free, matching the Trace contract.
type Integrator struct {
	trace Trace
	rates [][]float64 // rates[node][k]: sampled HarvestWh(node, k)
}

// NewIntegrator wraps trace for a fleet of n nodes.
func NewIntegrator(trace Trace, n int) *Integrator {
	return &Integrator{trace: trace, rates: make([][]float64, n)}
}

// rateAt returns the sampled rate for round k, extending node's cache —
// and advancing the underlying generator — only for rounds not yet
// sampled.
func (in *Integrator) rateAt(node, k int) float64 {
	for next := len(in.rates[node]); next <= k; next++ {
		in.rates[node] = append(in.rates[node], in.trace.HarvestWh(node, next))
	}
	return in.rates[node][k]
}

// EnergyBetween step-integrates the sampled per-round rates over [t0, t1)
// (ContinuousTrace).
func (in *Integrator) EnergyBetween(node int, t0, t1 float64) float64 {
	return stepEnergyBetween(func(k int) float64 { return in.rateAt(node, k) }, t0, t1)
}

// HarvestWh returns round t's sampled rate (Trace). Unlike the wrapped
// generator it is idempotent — the cache absorbs repeats — so the adapter
// relaxes the once-per-round discipline for its callers while honoring it
// toward the generator.
func (in *Integrator) HarvestWh(node, t int) float64 { return in.rateAt(node, t) }

// Name reports the wrapped trace's identity (Trace).
func (in *Integrator) Name() string { return in.trace.Name() }

// ResetTrace rewinds the wrapped generator when it is resettable and
// drops the sampled caches (TraceResetter). Wrapping a stateless trace,
// the caches alone are dropped — resampling is bit-identical anyway.
func (in *Integrator) ResetTrace() {
	if tr, ok := in.trace.(TraceResetter); ok {
		tr.ResetTrace()
	}
	for i := range in.rates {
		in.rates[i] = nil
	}
}
