package harvest

import (
	"fmt"

	"repro/internal/rng"
)

// Charge forecasting: the trace generators are known to the simulator but
// were invisible to policies, so no policy could plan against the future of
// its own harvest. A Forecaster closes that gap — the engine asks it for a
// per-node lookahead window each round and threads the prediction through
// core.RoundContext.Forecast, where planning policies (HorizonPlan) consume
// it. Three implementations span the knowledge spectrum: Oracle reads the
// generator itself (perfect information, the planning upper bound),
// NoisyOracle corrupts it with reproducible noise (sensitivity studies),
// and Persistence predicts tomorrow from yesterday (deployable knowledge).

// Forecaster predicts per-node harvest arrivals. Forecast must not mutate
// any generator state and must be safe for concurrent use across distinct
// nodes — the engine calls it from the per-node training fan-out.
type Forecaster interface {
	// Forecast fills out[k] with the predicted energy (Wh) node will
	// harvest during round t+k, for k = 0..len(out)-1. t is the round
	// being decided; its harvest has not arrived yet.
	Forecast(node, t int, out []float64)
	// Name identifies the forecaster in reports.
	Name() string
}

// ForecastObserver is implemented by forecasters that learn from realized
// arrivals (Persistence). The engine calls Observe exactly once per closed
// round, serially, after the fleet's battery update; arrivedWh is the
// per-node energy that arrived that round (stored plus wasted) and is only
// valid for the duration of the call.
type ForecastObserver interface {
	Observe(t int, arrivedWh []float64)
}

// Lookahead is implemented by traces whose future can be revealed without
// advancing generator state: pure-function traces compute it directly,
// stateful ones fork their chains (see MarkovOnOff.ForecastWh). All four
// built-in traces implement it.
//
// t must be the generator's present: the round the next HarvestWh call
// will realize. Pure-function traces honor any t, but a stateful trace
// can only fork from its live state — MarkovOnOff forecasts from wherever
// its chains currently stand regardless of t — so forecasting the past,
// or a future the chain has not reached, is not part of the contract.
// The engine always satisfies this (it forecasts round t while deciding
// round t, before EndRound(t) advances the trace).
type Lookahead interface {
	// ForecastWh fills out[k] with the exact energy node will harvest in
	// round t+k, leaving the generator untouched.
	ForecastWh(node, t int, out []float64)
}

// The built-in traces all support lookahead.
var (
	_ Lookahead = Constant{}
	_ Lookahead = (*Diurnal)(nil)
	_ Lookahead = (*MarkovOnOff)(nil)
	_ Lookahead = (*Replay)(nil)
)

// Oracle forecasts by reading the trace generator itself: predictions are
// byte-identical to the subsequently realized arrivals (up to a Replay
// recording's final row, past which the forecast clamps to zero). It is
// the perfect-information upper bound for planning policies.
type Oracle struct {
	trace Trace
	look  Lookahead
}

// NewOracle wraps a trace that supports lookahead; traces that do not
// implement Lookahead are rejected rather than silently mispredicted.
func NewOracle(trace Trace) (*Oracle, error) {
	if trace == nil {
		return nil, fmt.Errorf("harvest: nil trace")
	}
	look, ok := trace.(Lookahead)
	if !ok {
		return nil, fmt.Errorf("harvest: trace %s does not support lookahead (implement Lookahead)", trace.Name())
	}
	return &Oracle{trace: trace, look: look}, nil
}

// Forecast reads the trace's future verbatim.
func (o *Oracle) Forecast(node, t int, out []float64) { o.look.ForecastWh(node, t, out) }

// Name returns e.g. "oracle(diurnal(peak=0.01,period=24))".
func (o *Oracle) Name() string { return "oracle(" + o.trace.Name() + ")" }

// noiseStreamTag derives the per-(node, round) noise streams of NoisyOracle.
const noiseStreamTag = 0x5eefc4

// NoisyOracle is the oracle with reproducible multiplicative error: each
// predicted value is scaled by max(0, 1 + sigma·z) with z a standard
// normal drawn from a stream derived from (seed, node, t). The noise is a
// pure function of those coordinates — re-forecasting the same round gives
// the same corruption, and no call order or worker count can change it.
type NoisyOracle struct {
	oracle *Oracle
	sigma  float64
	seed   uint64
}

// NewNoisyOracle validates sigma >= 0 and wraps the trace's oracle.
func NewNoisyOracle(trace Trace, sigma float64, seed uint64) (*NoisyOracle, error) {
	if sigma < 0 {
		return nil, fmt.Errorf("harvest: negative forecast noise %v", sigma)
	}
	oracle, err := NewOracle(trace)
	if err != nil {
		return nil, err
	}
	return &NoisyOracle{oracle: oracle, sigma: sigma, seed: seed}, nil
}

// Forecast reads the true future and corrupts it.
func (n *NoisyOracle) Forecast(node, t int, out []float64) {
	n.oracle.Forecast(node, t, out)
	r := rng.Derive(n.seed, uint64(node), uint64(t), noiseStreamTag)
	for k := range out {
		scale := 1 + n.sigma*r.NormFloat64()
		if scale < 0 {
			scale = 0
		}
		out[k] *= scale
	}
}

// Name returns e.g. "noisy-oracle(sigma=0.3,markov(...))".
func (n *NoisyOracle) Name() string {
	return fmt.Sprintf("noisy-oracle(sigma=%g,%s)", n.sigma, n.oracle.trace.Name())
}

// Persistence predicts that tomorrow looks like today: the forecast for
// round t+k is the arrival observed one period earlier at the same phase
// of the cycle. Until a phase has been observed the forecaster falls back
// to the node's most recent arrival (flat persistence), and before any
// observation it predicts zero — the conservative cold start of a freshly
// deployed device that has not yet seen a full day.
//
// Persistence carries run state (its observation history); like a harvest
// fleet it must be rebuilt or Reset between runs.
type Persistence struct {
	period   int
	hist     [][]float64 // hist[node][t mod period]: newest arrival at that phase
	last     []float64   // most recent arrival per node
	observed int         // rounds observed so far
}

// NewPersistence returns a persistence forecaster for a fleet of the given
// size with the given cycle length in rounds.
func NewPersistence(nodes, period int) (*Persistence, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("harvest: persistence forecaster for %d nodes", nodes)
	}
	if period < 1 {
		return nil, fmt.Errorf("harvest: persistence period %d < 1 round", period)
	}
	hist := make([][]float64, nodes)
	for i := range hist {
		hist[i] = make([]float64, period)
	}
	return &Persistence{period: period, hist: hist, last: make([]float64, nodes)}, nil
}

// Observe records round t's realized arrivals (ForecastObserver).
func (p *Persistence) Observe(t int, arrivedWh []float64) {
	slot := t % p.period
	for i, wh := range arrivedWh {
		p.hist[i][slot] = wh
		p.last[i] = wh
	}
	p.observed = t + 1
}

// Forecast predicts each future round from the newest observation at the
// same cycle phase, falling back to flat persistence of the last arrival
// while the first cycle is still filling in.
func (p *Persistence) Forecast(node, t int, out []float64) {
	for k := range out {
		slot := (t + k) % p.period
		switch {
		case p.observed >= p.period || slot < p.observed:
			out[k] = p.hist[node][slot]
		case p.observed > 0:
			out[k] = p.last[node]
		default:
			out[k] = 0
		}
	}
}

// Consumed reports whether the forecaster carries observations from a
// prior run — state a new run would silently inherit. sim.Run rejects a
// consumed forecaster the same way it rejects a consumed fleet; call
// Reset (or build a fresh forecaster) between runs.
func (p *Persistence) Consumed() bool { return p.observed > 0 }

// Reset forgets all observations, rewinding the forecaster to its
// construction state for a fresh run.
func (p *Persistence) Reset() {
	for i := range p.hist {
		for j := range p.hist[i] {
			p.hist[i][j] = 0
		}
		p.last[i] = 0
	}
	p.observed = 0
}

// Name returns e.g. "persistence(period=24)".
func (p *Persistence) Name() string { return fmt.Sprintf("persistence(period=%d)", p.period) }
