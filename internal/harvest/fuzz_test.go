package harvest

import (
	"bytes"
	"testing"
)

// FuzzReplayTraceCSV throws arbitrary bytes at the replay CSV parser and
// checks the invariants that hold for anything it accepts:
//
//   - a parsed schedule is a complete rectangle of finite, non-negative
//     values (NewReplay's contract, reachable through the parser);
//   - WriteReplay/ReadReplay round-trips the parsed schedule bit-exactly
//     (%g prints the shortest form that parses back to the same float64);
//   - ForecastWh clamps past the end of the recording to zero instead of
//     wrapping or panicking, for windows starting inside and past the
//     recorded rounds.
func FuzzReplayTraceCSV(f *testing.F) {
	f.Add([]byte("round,node,harvest_wh\n0,0,0.0065\n0,1,0\n"))
	f.Add([]byte("round,node,harvest_wh\n1,0,2\n0,0,1e-3\n"))
	f.Add([]byte("round,node,harvest_wh\n0,0,0.5\n0,0,0.5\n")) // duplicate cell
	f.Add([]byte("round,node,harvest_wh\n0,1,0.5\n"))          // hole in rectangle
	f.Add([]byte("round,node,harvest_wh\n0,0,-1\n"))           // negative harvest
	f.Add([]byte("round,node,harvest_wh\n0,0,NaN\n"))
	f.Add([]byte("not,a,header\n0,0,1\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		replay, err := ReadReplay(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		rounds, nodes := replay.Rounds(), replay.Nodes()
		if rounds < 1 || nodes < 1 {
			t.Fatalf("accepted replay with empty shape %dx%d", rounds, nodes)
		}
		wh := make([][]float64, rounds)
		for tt := 0; tt < rounds; tt++ {
			wh[tt] = make([]float64, nodes)
			for i := 0; i < nodes; i++ {
				v := replay.HarvestWh(i, tt)
				if !(v >= 0) {
					t.Fatalf("accepted invalid harvest %v at round %d node %d", v, tt, i)
				}
				wh[tt][i] = v
			}
		}
		var buf bytes.Buffer
		if err := WriteReplay(&buf, wh); err != nil {
			t.Fatalf("re-serializing an accepted schedule failed: %v", err)
		}
		again, err := ReadReplay(&buf)
		if err != nil {
			t.Fatalf("re-parsing serialized schedule failed: %v", err)
		}
		if again.Rounds() != rounds || again.Nodes() != nodes {
			t.Fatalf("round-trip shape %dx%d, want %dx%d", again.Rounds(), again.Nodes(), rounds, nodes)
		}
		for tt := 0; tt < rounds; tt++ {
			for i := 0; i < nodes; i++ {
				if again.HarvestWh(i, tt) != wh[tt][i] {
					t.Fatalf("round-trip value at round %d node %d: %v, want %v",
						tt, i, again.HarvestWh(i, tt), wh[tt][i])
				}
			}
		}
		// Lookahead clamping: windows reaching past the last recorded row
		// must read zero there, never wrap, never panic.
		out := make([]float64, rounds+2)
		for _, start := range []int{0, rounds - 1, rounds, rounds + 3} {
			replay.ForecastWh(0, start, out)
			for k, v := range out {
				if start+k < rounds {
					if v != wh[start+k][0] {
						t.Fatalf("forecast[%d] from round %d: %v, want recorded %v", k, start, v, wh[start+k][0])
					}
				} else if v != 0 {
					t.Fatalf("forecast[%d] from round %d reaches past the recording but is %v, want 0", k, start, v)
				}
			}
		}
	})
}
