package harvest

import (
	"math"
	"testing"
)

func TestNewBatteryValidates(t *testing.T) {
	if _, err := NewBattery(0, 0, 0); err == nil {
		t.Fatal("zero capacity should error")
	}
	if _, err := NewBattery(10, 5, -1); err == nil {
		t.Fatal("negative cutoff should error")
	}
	if _, err := NewBattery(10, 5, 10); err == nil {
		t.Fatal("cutoff >= capacity should error")
	}
	b, err := NewBattery(10, 99, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b.ChargeWh() != 10 {
		t.Fatalf("initial charge not clamped to capacity: %v", b.ChargeWh())
	}
	b, _ = NewBattery(10, -3, 1)
	if b.ChargeWh() != 0 {
		t.Fatalf("initial charge not clamped at 0: %v", b.ChargeWh())
	}
}

func TestBatteryHarvestClampsAtCapacity(t *testing.T) {
	b, _ := NewBattery(10, 9, 0)
	if stored := b.Harvest(5); stored != 1 {
		t.Fatalf("stored %v, want 1 (room)", stored)
	}
	if b.ChargeWh() != 10 {
		t.Fatalf("charge %v, want full", b.ChargeWh())
	}
	if stored := b.Harvest(-2); stored != 0 {
		t.Fatalf("negative harvest stored %v", stored)
	}
}

func TestBatteryDrainClampsAtEmpty(t *testing.T) {
	b, _ := NewBattery(10, 3, 0)
	if got := b.Drain(5); got != 3 {
		t.Fatalf("drained %v, want 3", got)
	}
	if b.ChargeWh() != 0 {
		t.Fatalf("charge %v after over-drain", b.ChargeWh())
	}
	if got := b.Drain(-1); got != 0 {
		t.Fatalf("negative drain removed %v", got)
	}
}

func TestBatteryTryConsumeRespectsCutoff(t *testing.T) {
	b, _ := NewBattery(10, 5, 2)
	if !b.TryConsume(3) {
		t.Fatal("affordable round refused")
	}
	if b.ChargeWh() != 2 {
		t.Fatalf("charge %v, want 2", b.ChargeWh())
	}
	// Next round would brown out: 2 - 0.5 < cutoff 2.
	if b.TryConsume(0.5) {
		t.Fatal("round below cutoff accepted")
	}
	if b.ChargeWh() != 2 {
		t.Fatal("refused consume must not change charge")
	}
	if b.Usable() {
		t.Fatal("battery at cutoff should not be usable")
	}
	b.Harvest(4)
	if !b.Usable() || !b.TryConsume(4) {
		t.Fatal("recharged battery should train again")
	}
}

func TestBatterySoC(t *testing.T) {
	b, _ := NewBattery(20, 5, 0)
	if math.Abs(b.SoC()-0.25) > 1e-12 {
		t.Fatalf("SoC %v, want 0.25", b.SoC())
	}
}
