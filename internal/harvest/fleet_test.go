package harvest

import (
	"math"
	"sync"
	"testing"

	"repro/internal/energy"
)

func testFleet(t *testing.T, trace Trace, opt Options) *Fleet {
	t.Helper()
	devices := energy.AssignDevices(8, energy.Devices())
	f, err := NewFleet(devices, energy.CIFAR10Workload(), trace, opt)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFleetValidates(t *testing.T) {
	w := energy.CIFAR10Workload()
	devices := energy.AssignDevices(4, energy.Devices())
	if _, err := NewFleet(nil, w, Constant{0}, Options{}); err == nil {
		t.Fatal("empty fleet should error")
	}
	if _, err := NewFleet(devices, w, nil, Options{}); err == nil {
		t.Fatal("nil trace should error")
	}
	if _, err := NewFleet(devices, energy.Workload{}, Constant{0}, Options{}); err == nil {
		t.Fatal("invalid workload should error")
	}
	if _, err := NewFleet(devices, w, Constant{0}, Options{CutoffSoC: 1.5}); err == nil {
		t.Fatal("bad cutoff should error")
	}
	if _, err := NewFleet(devices, w, Constant{0}, Options{IdleWh: -1}); err == nil {
		t.Fatal("negative idle should error")
	}
}

func TestFleetInitialRounds(t *testing.T) {
	f := testFleet(t, Constant{0}, Options{InitialRounds: 4})
	for i := 0; i < f.Nodes(); i++ {
		want := 4 * f.TrainCostWh(i)
		if got := f.ChargeWh(i); math.Abs(got-want) > 1e-12 {
			t.Fatalf("node %d initial charge %v, want %v", i, got, want)
		}
	}
	// Exactly 4 training rounds are affordable, then the battery refuses.
	for r := 0; r < 4; r++ {
		if !f.TryTrain(0) {
			t.Fatalf("round %d should be affordable", r)
		}
	}
	if f.TryTrain(0) {
		t.Fatal("fifth round should be refused")
	}
}

func TestFleetDefaultsToFullBatteries(t *testing.T) {
	f := testFleet(t, Constant{0}, Options{})
	for i := 0; i < f.Nodes(); i++ {
		if f.SoC(i) != 1 {
			t.Fatalf("node %d SoC %v, want full", i, f.SoC(i))
		}
	}
}

// TestFleetEnergyConservation checks the battery ledger: final charge equals
// initial charge plus stored harvest minus drained consumption, per node.
func TestFleetEnergyConservation(t *testing.T) {
	trace, err := NewMarkovOnOff(8, 0.004, 0.3, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	f := testFleet(t, trace, Options{InitialRounds: 3, IdleWh: 0.0002})
	initial := make([]float64, f.Nodes())
	for i := range initial {
		initial[i] = f.ChargeWh(i)
	}
	for round := 0; round < 50; round++ {
		for i := 0; i < f.Nodes(); i++ {
			if round%2 == i%2 { // arbitrary but deterministic participation
				f.TryTrain(i)
			}
		}
		f.EndRound(round)
	}
	for i := 0; i < f.Nodes(); i++ {
		want := initial[i] + f.NodeHarvestedWh(i) - f.NodeConsumedWh(i)
		if got := f.ChargeWh(i); math.Abs(got-want) > 1e-9 {
			t.Fatalf("node %d ledger mismatch: charge %v, want %v", i, got, want)
		}
	}
	if f.HarvestedWh() <= 0 {
		t.Fatal("markov trace should have harvested something in 50 rounds")
	}
}

func TestFleetWastedWh(t *testing.T) {
	// Full batteries + constant harvest and no draw: everything is wasted.
	f := testFleet(t, Constant{0.5}, Options{CommFrac: -1})
	f.EndRound(0)
	if f.HarvestedWh() != 0 {
		t.Fatalf("full batteries stored %v Wh", f.HarvestedWh())
	}
	if want := 0.5 * float64(f.Nodes()); math.Abs(f.WastedWh()-want) > 1e-12 {
		t.Fatalf("wasted %v, want %v", f.WastedWh(), want)
	}
}

func TestFleetDepletedCountAndStats(t *testing.T) {
	f := testFleet(t, Constant{0}, Options{InitialRounds: 1, IdleWh: 1})
	if f.DepletedCount() != 0 {
		t.Fatal("fresh fleet should have no depleted nodes")
	}
	for i := 0; i < f.Nodes(); i++ {
		f.TryTrain(i)
	}
	f.EndRound(0) // the huge idle draw empties what's left
	if got := f.DepletedCount(); got != f.Nodes() {
		t.Fatalf("depleted %d, want all %d", got, f.Nodes())
	}
	if f.MinSoC() > 1e-9 || f.MeanSoC() > 1e-9 {
		t.Fatalf("stats nonzero on empty fleet: min=%v mean=%v", f.MinSoC(), f.MeanSoC())
	}
	socs := f.SoCs()
	if len(socs) != f.Nodes() {
		t.Fatalf("SoCs length %d", len(socs))
	}
}

// TestFleetParallelTryTrainDeterministic drives TryTrain from one goroutine
// per node — the engine's worst-case interleaving — and checks the SoC
// trajectory is bit-identical to a serial run. All fleet state is per-node,
// so scheduling must not matter.
func TestFleetParallelTryTrainDeterministic(t *testing.T) {
	trace := func() Trace {
		d, err := NewDiurnal(0.01, 12, LongitudePhase(8))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	run := func(parallel bool) [][]float64 {
		f := testFleet(t, trace(), Options{InitialRounds: 2})
		var history [][]float64
		for round := 0; round < 40; round++ {
			if parallel {
				var wg sync.WaitGroup
				for i := 0; i < f.Nodes(); i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						if f.SoC(i) > 0.0001 {
							f.TryTrain(i)
						}
					}(i)
				}
				wg.Wait()
			} else {
				for i := 0; i < f.Nodes(); i++ {
					if f.SoC(i) > 0.0001 {
						f.TryTrain(i)
					}
				}
			}
			f.EndRound(round)
			history = append(history, f.SoCs())
		}
		return history
	}
	serial, concurrent := run(false), run(true)
	for round := range serial {
		for i := range serial[round] {
			if serial[round][i] != concurrent[round][i] {
				t.Fatalf("round %d node %d: serial SoC %v != parallel SoC %v",
					round, i, serial[round][i], concurrent[round][i])
			}
		}
	}
}

// TestEndRoundParallelMatchesSerial pins the sharded round close-out: with
// the parallel path forced on (threshold lowered to cover the test fleet),
// every ledger and battery trajectory must be bit-identical to the serial
// path — all EndRound state is per-node, so worker count cannot matter.
func TestEndRoundParallelMatchesSerial(t *testing.T) {
	const nodes, rounds = 64, 60
	run := func(minNodes int) (socs []float64, harvested, consumed, wasted float64) {
		old := parallelMinNodes
		parallelMinNodes = minNodes
		defer func() { parallelMinNodes = old }()
		devices := energy.AssignDevices(nodes, energy.Devices())
		trace, err := NewMarkovOnOff(nodes, 0.01, 0.3, 0.4, 5)
		if err != nil {
			t.Fatal(err)
		}
		f, err := NewFleet(devices, energy.CIFAR10Workload(), trace,
			Options{CapacityRounds: 6, InitialSoC: 0.9, IdleWh: 1e-4, CutoffSoC: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		live := make([]bool, nodes)
		for round := 0; round < rounds; round++ {
			for i := 0; i < nodes; i++ {
				if f.SoC(i) > 0.3 {
					f.TryTrain(i)
				}
				live[i] = f.Usable(i)
			}
			if round%2 == 0 {
				f.EndRound(round)
			} else {
				f.EndRoundLive(round, live)
			}
		}
		return f.SoCs(), f.HarvestedWh(), f.ConsumedWh(), f.WastedWh()
	}
	serialSoC, sh, sc, sw := run(nodes + 1) // threshold above fleet: serial
	parSoC, ph, pc, pw := run(1)            // threshold below fleet: parallel
	if sh != ph || sc != pc || sw != pw {
		t.Fatalf("ledgers differ: serial (%v,%v,%v) vs parallel (%v,%v,%v)", sh, sc, sw, ph, pc, pw)
	}
	for i := range serialSoC {
		if serialSoC[i] != parSoC[i] {
			t.Fatalf("node %d SoC %v (serial) != %v (parallel)", i, serialSoC[i], parSoC[i])
		}
	}
	if sw <= 0 {
		t.Fatal("scenario wasted no harvest; WastedWh ledger untested")
	}
}

func TestFleetCapacityRoundsOverride(t *testing.T) {
	f := testFleet(t, Constant{0}, Options{CapacityRounds: 10, InitialSoC: 0.5})
	for i := 0; i < f.Nodes(); i++ {
		if got, want := f.ChargeWh(i), 5*f.TrainCostWh(i); math.Abs(got-want) > 1e-12 {
			t.Fatalf("node %d charge %v, want %v (5 rounds of a 10-round cap)", i, got, want)
		}
		if math.Abs(f.SoC(i)-0.5) > 1e-12 {
			t.Fatalf("node %d SoC %v, want 0.5", i, f.SoC(i))
		}
	}
	if _, err := NewFleet(energy.AssignDevices(2, energy.Devices()), energy.CIFAR10Workload(),
		Constant{0}, Options{CapacityRounds: -1}); err == nil {
		t.Fatal("negative capacity rounds should error")
	}
}

func TestFleetInitialOptionsValidationAndStartEmpty(t *testing.T) {
	devices := energy.AssignDevices(2, energy.Devices())
	w := energy.CIFAR10Workload()
	if _, err := NewFleet(devices, w, Constant{0}, Options{InitialSoC: 1.5}); err == nil {
		t.Fatal("InitialSoC > 1 should error")
	}
	if _, err := NewFleet(devices, w, Constant{0}, Options{InitialSoC: -0.2}); err == nil {
		t.Fatal("negative InitialSoC should error")
	}
	if _, err := NewFleet(devices, w, Constant{0}, Options{InitialRounds: -1}); err == nil {
		t.Fatal("negative InitialRounds should error")
	}
	f, err := NewFleet(devices, w, Constant{0}, Options{InitialSoC: 0.8, StartEmpty: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f.Nodes(); i++ {
		if f.ChargeWh(i) != 0 {
			t.Fatalf("StartEmpty node %d has charge %v", i, f.ChargeWh(i))
		}
	}
}

func TestFleetLiveSnapshot(t *testing.T) {
	f := testFleet(t, Constant{0}, Options{CapacityRounds: 4, InitialSoC: 1, CutoffSoC: 0.5})
	live := f.Live()
	if len(live) != f.Nodes() {
		t.Fatalf("live set covers %d nodes, fleet has %d", len(live), f.Nodes())
	}
	for i, l := range live {
		if !l {
			t.Fatalf("full node %d reported dead", i)
		}
	}
	if f.LiveCount() != f.Nodes() {
		t.Fatalf("LiveCount = %d, want %d", f.LiveCount(), f.Nodes())
	}
	// Brown node 0 out (idle draw can push past the cutoff where training
	// cannot): it leaves the live set, others stay.
	f.batteries[0].Drain(f.ChargeWh(0))
	live = f.Live()
	if live[0] {
		t.Fatal("browned-out node 0 still reported live")
	}
	if !live[1] {
		t.Fatal("node 1 should still be live")
	}
	if f.LiveCount() != f.Nodes()-1 {
		t.Fatalf("LiveCount = %d, want %d", f.LiveCount(), f.Nodes()-1)
	}
	// The snapshot is a copy: mutating it does not touch fleet state.
	live[1] = false
	if !f.Usable(1) {
		t.Fatal("snapshot aliased fleet state")
	}
}

func TestEndRoundLiveSkipsCommDrawForDead(t *testing.T) {
	// Two otherwise-identical fleets: one closes the round with a dead set,
	// the other with EndRound. Dead nodes must save exactly the comm draw.
	const idle = 1e-6
	mk := func() *Fleet {
		return testFleet(t, Constant{0}, Options{CapacityRounds: 8, InitialSoC: 0.5, IdleWh: idle})
	}
	a, b := mk(), mk()
	live := make([]bool, a.Nodes())
	for i := range live {
		live[i] = i%2 == 0
	}
	a.EndRoundLive(0, live)
	b.EndRound(0)
	for i := 0; i < a.Nodes(); i++ {
		if live[i] {
			if a.ChargeWh(i) != b.ChargeWh(i) {
				t.Fatalf("live node %d charge differs: %v vs %v", i, a.ChargeWh(i), b.ChargeWh(i))
			}
			continue
		}
		want := b.ChargeWh(i) + a.commWh[i]
		if math.Abs(a.ChargeWh(i)-want) > 1e-15 {
			t.Fatalf("dead node %d paid comm draw: %v, want %v", i, a.ChargeWh(i), want)
		}
	}
	// Nil mask is exactly EndRound.
	c, d := mk(), mk()
	c.EndRoundLive(0, nil)
	d.EndRound(0)
	for i := 0; i < c.Nodes(); i++ {
		if c.ChargeWh(i) != d.ChargeWh(i) {
			t.Fatalf("nil-mask EndRoundLive differs at node %d", i)
		}
	}
}

// driveFleet steps the fleet through rounds of greedy training and returns
// the per-round (trained count, mean SoC) trajectory — a fingerprint fine
// enough that any leaked battery or chain state shows up.
func driveFleet(f *Fleet, rounds int) (trained []int, meanSoC []float64) {
	for t := 0; t < rounds; t++ {
		n := 0
		for i := 0; i < f.Nodes(); i++ {
			if f.TryTrain(i) {
				n++
			}
		}
		f.EndRound(t)
		trained = append(trained, n)
		meanSoC = append(meanSoC, f.MeanSoC())
	}
	return trained, meanSoC
}

// TestFleetReuseDiverges demonstrates the bug Reset exists to fix: driving
// the same fleet through two "identical" runs silently carries drained
// batteries, ledgers, and Markov chain state into the second, so the second
// trajectory diverges from the first.
func TestFleetReuseDiverges(t *testing.T) {
	trace, err := NewMarkovOnOff(8, 0.004, 0.3, 0.3, 99)
	if err != nil {
		t.Fatal(err)
	}
	f := testFleet(t, trace, Options{CapacityRounds: 6, InitialSoC: 0.5})
	first, _ := driveFleet(f, 12)
	if !f.Consumed() {
		t.Fatal("fleet not marked consumed after a run")
	}
	second, _ := driveFleet(f, 12)
	same := true
	for i := range first {
		if first[i] != second[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("naive reuse did not diverge; the leak this test pins is gone: %v vs %v", first, second)
	}
	if f.ConsumedWh() <= 0 {
		t.Fatal("consumption ledger empty after two runs")
	}
}

// TestFleetResetReplaysBitIdentical is the fix: after Reset the fleet —
// batteries, ledgers, and re-seeded Markov chains — reproduces its first
// trajectory bit-for-bit.
func TestFleetResetReplaysBitIdentical(t *testing.T) {
	trace, err := NewMarkovOnOff(8, 0.004, 0.3, 0.3, 99)
	if err != nil {
		t.Fatal(err)
	}
	f := testFleet(t, trace, Options{CapacityRounds: 6, InitialSoC: 0.5})
	soc0 := f.SoCs()
	trained1, soc1 := driveFleet(f, 12)
	if err := f.Reset(); err != nil {
		t.Fatal(err)
	}
	if f.Consumed() {
		t.Fatal("fleet still consumed after Reset")
	}
	if f.HarvestedWh() != 0 || f.ConsumedWh() != 0 || f.WastedWh() != 0 {
		t.Fatalf("ledgers not zeroed: harvested %v consumed %v wasted %v",
			f.HarvestedWh(), f.ConsumedWh(), f.WastedWh())
	}
	for i, s := range f.SoCs() {
		if s != soc0[i] {
			t.Fatalf("node %d SoC %v after Reset, want initial %v", i, s, soc0[i])
		}
	}
	trained2, soc2 := driveFleet(f, 12)
	for i := range trained1 {
		if trained1[i] != trained2[i] || soc1[i] != soc2[i] {
			t.Fatalf("round %d differs after Reset: (%d, %v) vs (%d, %v)",
				i, trained1[i], soc1[i], trained2[i], soc2[i])
		}
	}
}

// statefulTrace is a deliberately non-resettable stateful trace.
type statefulTrace struct{ calls int }

func (s *statefulTrace) HarvestWh(int, int) float64 { s.calls++; return 0 }
func (s *statefulTrace) Name() string               { return "stateful" }

func TestFleetResetTraceHandling(t *testing.T) {
	// Stateless traces reset fine.
	for _, trace := range []Trace{Constant{0.001}, mustDiurnal(t), mustReplay(t)} {
		f := testFleet(t, trace, Options{CapacityRounds: 6, InitialSoC: 0.5})
		f.EndRound(0)
		if err := f.Reset(); err != nil {
			t.Fatalf("%s: %v", trace.Name(), err)
		}
	}
	// A stateful trace without TraceResetter must refuse: rewinding the
	// batteries but not the chain would splice two trajectories.
	f := testFleet(t, &statefulTrace{}, Options{CapacityRounds: 6, InitialSoC: 0.5})
	f.EndRound(0)
	if err := f.Reset(); err == nil {
		t.Fatal("Reset accepted a stateful, non-resettable trace")
	}
}

func mustDiurnal(t *testing.T) Trace {
	t.Helper()
	d, err := NewDiurnal(0.004, 12, LongitudePhase(8))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustReplay(t *testing.T) Trace {
	t.Helper()
	row := make([]float64, 8)
	for i := range row {
		row[i] = 0.001
	}
	r, err := NewReplay([][]float64{row})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestFleetResetRestoresClampedInitialCharge pins that Reset restores the
// post-clamp construction charge, not the raw option value.
func TestFleetResetRestoresClampedInitialCharge(t *testing.T) {
	// InitialRounds beyond capacity clamps to full at construction.
	f := testFleet(t, Constant{0}, Options{CapacityRounds: 4, InitialRounds: 100})
	if f.SoC(0) != 1 {
		t.Fatalf("construction SoC %v, want clamped full", f.SoC(0))
	}
	f.TryTrain(0)
	f.EndRound(0)
	if err := f.Reset(); err != nil {
		t.Fatal(err)
	}
	if f.SoC(0) != 1 {
		t.Fatalf("Reset SoC %v, want clamped full", f.SoC(0))
	}
}

// TestFleetConsumedByTryTrainOnly: training drain alone (no EndRound ever
// closed) must already mark the fleet consumed — probing TryTrain before a
// run drains real charge, and sim.Run must refuse to build on it.
func TestFleetConsumedByTryTrainOnly(t *testing.T) {
	f := testFleet(t, Constant{0}, Options{CapacityRounds: 6, InitialSoC: 0.5})
	if f.Consumed() {
		t.Fatal("fresh fleet reports consumed")
	}
	if !f.TryTrain(0) {
		t.Fatal("affordable round refused")
	}
	if !f.Consumed() {
		t.Fatal("TryTrain drain not reflected in Consumed")
	}
	if err := f.Reset(); err != nil {
		t.Fatal(err)
	}
	if f.Consumed() {
		t.Fatal("fleet still consumed after Reset")
	}
}

// SoCStats must be bit-identical to the three single-statistic passes it
// replaces, and feed every SoC to the observer in index order.
func TestFleetSoCStats(t *testing.T) {
	trace, err := NewDiurnal(0.01, 8, LongitudePhase(8))
	if err != nil {
		t.Fatal(err)
	}
	f := testFleet(t, trace, Options{CapacityRounds: 4, InitialSoC: 0.5, CutoffSoC: 0.2})
	for r := 0; r < 6; r++ {
		for i := 0; i < f.Nodes(); i++ {
			f.TryTrain(i)
		}
		f.EndRound(r)
		var observed []float64
		mean, min, depleted := f.SoCStats(func(s float64) { observed = append(observed, s) })
		if mean != f.MeanSoC() || min != f.MinSoC() || depleted != f.DepletedCount() {
			t.Fatalf("round %d: SoCStats (%v, %v, %d) != (%v, %v, %d)",
				r, mean, min, depleted, f.MeanSoC(), f.MinSoC(), f.DepletedCount())
		}
		socs := f.SoCs()
		if len(observed) != len(socs) {
			t.Fatalf("round %d: observer saw %d values, fleet has %d", r, len(observed), len(socs))
		}
		for i := range socs {
			if observed[i] != socs[i] {
				t.Fatalf("round %d node %d: observer saw %v, snapshot %v", r, i, observed[i], socs[i])
			}
		}
	}
	// A nil observer is the stats-only fast path.
	if mean, _, _ := f.SoCStats(nil); mean != f.MeanSoC() {
		t.Fatal("nil-observer SoCStats disagrees with MeanSoC")
	}
}
