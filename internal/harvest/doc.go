// Package harvest models per-node battery dynamics and ambient energy
// harvesting for intermittently-powered fleets, generalizing the paper's
// static energy budgets τ_i (Section 2.3) to live battery state.
//
// The paper's SkipTrain-constrained policy spreads a fixed, monotonically
// draining budget across the horizon with p_i = min(τ_i / T_train, 1)
// (Eq. 5). Real intermittently-powered deployments recharge: solar panels
// follow the sun, phones sit on chargers overnight, RF-powered sensors see
// bursty ambient energy. This package models that regime round by round.
//
// # Components
//
//   - Battery is a per-node charge state machine: capacity in Wh, a
//     brown-out cutoff below which the node cannot operate, harvesting
//     clamped at capacity, and all-or-nothing training consumption
//     (TryConsume never takes a node below its cutoff mid-round).
//   - Trace generates the per-round harvested energy — constant trickle,
//     diurnal/solar sinusoid with per-node phase (longitude), a Markov
//     on-off chain for bursty sources, or a CSV replay.
//   - Fleet binds one battery per node to its device's training cost
//     (energy.Device × energy.Workload) and advances all batteries each
//     round: pay idle and communication draw, then harvest. EndRoundLive
//     is the brown-out-aware variant where dead nodes owe idle draw only —
//     their radio never powered up.
//   - The policies in policy.go implement core.Policy from live
//     state-of-charge, generalizing Eq. 5's static p_i to p_i^t =
//     f(SoC_i^t): threshold, hysteresis (dormant until recharged),
//     charge-proportional, and the forecast-aware HorizonPlan (MPC:
//     plan a greedy training knapsack over the forecast window, execute
//     the first decision, replan next round). Policies read the battery
//     through the engine's round context (core.RoundContext.Battery),
//     never through fleet pointers of their own.
//   - The forecasters in forecast.go predict per-node arrivals for the
//     round context's forecast window: Oracle reads the trace generator
//     itself (traces expose their future via Lookahead without advancing
//     state), NoisyOracle corrupts it reproducibly, and Persistence
//     learns "tomorrow looks like today" from realized arrivals.
//
// # Liveness
//
// A node at or below its brown-out cutoff is dead: Usable reports false
// and Fleet.Live snapshots the whole fleet's mask. The simulation engine
// takes that snapshot at the start of every round; with dead-node dropout
// enabled (sim.Config.DropDeadNodes) the mask also silences the node's
// edges (transport.DeadNode) and re-normalizes the mixing matrix
// (graph.RenormalizeLive), so a brown-out affects computation and
// communication alike.
//
// Every stochastic trace owns per-node RNG streams derived from the
// experiment seed, and all fleet state is strictly per-node, so simulations
// remain bit-reproducible regardless of GOMAXPROCS or goroutine
// interleaving.
package harvest
